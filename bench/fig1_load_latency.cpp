// F1: load-latency on an 8x8 mesh under uniform traffic.
// Part A (substrate): the classic VC sensitivity — the saturation knee moves
// right as VCs increase. Part B (controllers): a DRL agent trained on a
// load-ladder workload matches static-max latency below saturation while
// spending less power, and avoids static-min's early collapse.
//
// Every measured point is an independent simulation, so the whole figure
// fans out over the experiment engine; pass --jobs N to bound the worker
// count (results are identical at any N).
#include <iostream>

#include "bench_common.h"
#include "noc/simulator.h"
#include "util/config.h"

using namespace drlnoc;

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const int size = cfg.get("size", 8);
  const int episodes = cfg.get("episodes", 60);
  const core::ExperimentRunner runner = bench::runner_from(cfg);

  std::cout << "F1: load-latency, " << size << "x" << size
            << " mesh, uniform traffic (jobs=" << runner.jobs() << ")\n\n";

  // ---- Part A: VC sensitivity (pure substrate) ----------------------------
  std::cout << "Part A: average latency vs offered load per VC count\n";
  const std::vector<int> vc_options = {1, 2, 4};
  std::vector<double> rates;
  for (double rate = 0.02; rate <= 0.145; rate += 0.02) rates.push_back(rate);

  std::vector<noc::SweepPoint> points;
  for (double rate : rates) {
    for (int vcs : vc_options) {
      noc::SweepPoint pt;
      pt.net.width = pt.net.height = size;
      pt.net.seed = 11;
      pt.net.initial_config = {vcs, 8, 3};
      pt.pattern = "uniform";
      pt.rate = rate;
      pt.run.warmup_cycles = 1500;
      pt.run.measure_cycles = 4000;
      pt.run.drain_limit = 40000;
      points.push_back(pt);
    }
  }
  const auto part_a = noc::measure_points(points, runner.jobs());

  util::Table a({"offered", "lat_vc1", "lat_vc2", "lat_vc4"});
  for (std::size_t r = 0; r < rates.size(); ++r) {
    util::Table& row = a.row();
    row.cell(rates[r], 3);
    for (std::size_t v = 0; v < vc_options.size(); ++v) {
      const auto& res = part_a[r * vc_options.size() + v];
      row.cell(res.saturated ? 9999.0 : res.stats.avg_latency, 1);
    }
  }
  a.print(std::cout);
  std::cout << "(9999 marks saturation)\n\n";

  // The knee shift is easiest to read off the saturation throughput: the
  // accepted rate under deep overload grows with the VC count.
  std::cout << "saturation throughput (accepted pkt/node/cycle @ offered "
               "0.30):\n";
  std::vector<noc::SweepPoint> sat_points;
  for (int vcs : vc_options) {
    noc::SweepPoint pt;
    pt.net.width = pt.net.height = size;
    pt.net.seed = 13;
    pt.net.initial_config = {vcs, 8, 3};
    pt.pattern = "uniform";
    pt.rate = 0.30;
    pt.run.warmup_cycles = 2000;
    pt.run.measure_cycles = 4000;
    pt.run.drain_limit = 1;  // no need to drain a deeply saturated network
    sat_points.push_back(pt);
  }
  const auto sat_res = noc::measure_points(sat_points, runner.jobs());
  util::Table sat({"vcs", "sat_throughput"});
  for (std::size_t v = 0; v < vc_options.size(); ++v) {
    sat.row()
        .cell(static_cast<long long>(vc_options[v]))
        .cell(sat_res[v].stats.accepted_rate, 4);
  }
  sat.print(std::cout);
  std::cout << '\n';

  // ---- Part B: controllers across the load range --------------------------
  std::cout << "Part B: DRL vs static configurations (latency | power mW)\n";
  // Train on a ladder of uniform loads so the agent sees the whole range.
  core::NocEnvParams train_ep;
  train_ep.net.width = train_ep.net.height = size;
  train_ep.net.seed = 21;
  train_ep.phases = {{"uniform", 0.01, 4e3, "bernoulli"},
                     {"uniform", 0.04, 4e3, "bernoulli"},
                     {"uniform", 0.07, 4e3, "bernoulli"},
                     {"uniform", 0.10, 4e3, "bernoulli"}};
  train_ep.epoch_cycles = 512;
  train_ep.epochs_per_episode = 32;
  core::NocConfigEnv train_env(train_ep);
  auto agent = bench::train_agent(train_env, episodes);
  const double power_ref = train_env.power_ref_mw();
  const std::size_t state_size = train_env.state_size();
  const int num_actions = train_env.num_actions();

  // One task per offered rate: each evaluates the three controllers against
  // its own private environments, with a frozen clone of the trained policy.
  struct RateRow {
    core::EpisodeResult drl, smax, smin;
  };
  const std::vector<double> eval_rates = {0.02, 0.05, 0.08, 0.11};
  const auto part_b = runner.map<RateRow>(
      static_cast<int>(eval_rates.size()), [&](int i) {
        core::NocEnvParams ep = train_ep;
        ep.phases = {{"uniform", eval_rates[static_cast<std::size_t>(i)], 1e6,
                      "bernoulli"}};
        ep.epochs_per_episode = 20;
        ep.reward.power_ref_mw = power_ref;
        core::NocConfigEnv env(ep);
        const auto policy =
            bench::clone_policy(*agent, state_size, num_actions);
        core::DrlController drl(env.actions(), *policy);
        auto smax = core::StaticController::maximal(env.actions());
        auto smin = core::StaticController::minimal(env.actions());
        RateRow row;
        row.drl = core::evaluate(env, drl);
        row.smax = core::evaluate(env, *smax);
        row.smin = core::evaluate(env, *smin);
        return row;
      });

  util::Table b({"offered", "drl_lat", "drl_mW", "max_lat", "max_mW",
                 "min_lat", "min_mW"});
  for (std::size_t i = 0; i < eval_rates.size(); ++i) {
    const RateRow& r = part_b[i];
    b.row()
        .cell(eval_rates[i], 2)
        .cell(r.drl.mean_latency, 1)
        .cell(r.drl.mean_power_mw, 1)
        .cell(r.smax.mean_latency, 1)
        .cell(r.smax.mean_power_mw, 1)
        .cell(r.smin.mean_latency, 1)
        .cell(r.smin.mean_power_mw, 1);
  }
  b.print(std::cout);
  std::cout << "\nshape check: knee moves right with VCs; DRL tracks "
               "static-max latency at lower power; static-min collapses "
               "first.\n";
  return 0;
}
