// F1: load-latency on an 8x8 mesh under uniform traffic.
// Part A (substrate): the classic VC sensitivity — the saturation knee moves
// right as VCs increase. Part B (controllers): a DRL agent trained on a
// load-ladder workload matches static-max latency below saturation while
// spending less power, and avoids static-min's early collapse.
#include <iostream>

#include "bench_common.h"
#include "noc/simulator.h"
#include "util/config.h"

using namespace drlnoc;

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const int size = cfg.get("size", 8);
  const int episodes = cfg.get("episodes", 60);

  std::cout << "F1: load-latency, " << size << "x" << size
            << " mesh, uniform traffic\n\n";

  // ---- Part A: VC sensitivity (pure substrate) ----------------------------
  std::cout << "Part A: average latency vs offered load per VC count\n";
  util::Table a({"offered", "lat_vc1", "lat_vc2", "lat_vc4"});
  for (double rate = 0.02; rate <= 0.145; rate += 0.02) {
    util::Table& row = a.row();
    row.cell(rate, 3);
    for (int vcs : {1, 2, 4}) {
      noc::NetworkParams p;
      p.width = p.height = size;
      p.seed = 11;
      p.initial_config = {vcs, 8, 3};
      noc::SteadyRunParams run;
      run.warmup_cycles = 1500;
      run.measure_cycles = 4000;
      run.drain_limit = 40000;
      const auto res = noc::measure_point(p, "uniform", rate, run);
      row.cell(res.saturated ? 9999.0 : res.stats.avg_latency, 1);
    }
  }
  a.print(std::cout);
  std::cout << "(9999 marks saturation)\n\n";

  // The knee shift is easiest to read off the saturation throughput: the
  // accepted rate under deep overload grows with the VC count.
  std::cout << "saturation throughput (accepted pkt/node/cycle @ offered "
               "0.30):\n";
  util::Table sat({"vcs", "sat_throughput"});
  for (int vcs : {1, 2, 4}) {
    noc::NetworkParams p;
    p.width = p.height = size;
    p.seed = 13;
    p.initial_config = {vcs, 8, 3};
    noc::SteadyRunParams run;
    run.warmup_cycles = 2000;
    run.measure_cycles = 4000;
    run.drain_limit = 1;  // no need to drain a deeply saturated network
    const auto res = noc::measure_point(p, "uniform", 0.30, run);
    sat.row().cell(static_cast<long long>(vcs)).cell(res.stats.accepted_rate, 4);
  }
  sat.print(std::cout);
  std::cout << '\n';

  // ---- Part B: controllers across the load range --------------------------
  std::cout << "Part B: DRL vs static configurations (latency | power mW)\n";
  // Train on a ladder of uniform loads so the agent sees the whole range.
  core::NocEnvParams train_ep;
  train_ep.net.width = train_ep.net.height = size;
  train_ep.net.seed = 21;
  train_ep.phases = {{"uniform", 0.01, 4e3, "bernoulli"},
                     {"uniform", 0.04, 4e3, "bernoulli"},
                     {"uniform", 0.07, 4e3, "bernoulli"},
                     {"uniform", 0.10, 4e3, "bernoulli"}};
  train_ep.epoch_cycles = 512;
  train_ep.epochs_per_episode = 32;
  core::NocConfigEnv train_env(train_ep);
  auto agent = bench::train_agent(train_env, episodes);
  const double power_ref = train_env.power_ref_mw();

  util::Table b({"offered", "drl_lat", "drl_mW", "max_lat", "max_mW",
                 "min_lat", "min_mW"});
  for (double rate : {0.02, 0.05, 0.08, 0.11}) {
    core::NocEnvParams ep = train_ep;
    ep.phases = {{"uniform", rate, 1e6, "bernoulli"}};
    ep.epochs_per_episode = 20;
    ep.reward.power_ref_mw = power_ref;
    core::NocConfigEnv env(ep);
    core::DrlController drl(env.actions(), *agent);
    auto smax = core::StaticController::maximal(env.actions());
    auto smin = core::StaticController::minimal(env.actions());
    const auto rd = core::evaluate(env, drl);
    const auto rx = core::evaluate(env, *smax);
    const auto rn = core::evaluate(env, *smin);
    b.row()
        .cell(rate, 2)
        .cell(rd.mean_latency, 1)
        .cell(rd.mean_power_mw, 1)
        .cell(rx.mean_latency, 1)
        .cell(rx.mean_power_mw, 1)
        .cell(rn.mean_latency, 1)
        .cell(rn.mean_power_mw, 1);
  }
  b.print(std::cout);
  std::cout << "\nshape check: knee moves right with VCs; DRL tracks "
               "static-max latency at lower power; static-min collapses "
               "first.\n";
  return 0;
}
