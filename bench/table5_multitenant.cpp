// T5: multi-tenant interference — DRL vs static controllers on a scenario
// mixing a dependency-gated DNN-pipeline trace tenant with synthetic
// background traffic on one fabric. Expected shape: under interference the
// DRL controller holds the trace tenant's latency closer to its
// no-background level than static-min/static-max do, at lower energy than
// static-max; per-tenant metrics make the victim/aggressor split visible.
//
// Replication fans out over the experiment engine; results (including the
// emitted JSON) are bit-identical at any --jobs value. `--smoke` shrinks
// everything for CI; `out=FILE.json` dumps per-tenant metrics via
// bench/bench_json.h.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "scenario/scenario.h"
#include "trace/generators.h"
#include "util/config.h"
#include "util/log.h"

using namespace drlnoc;

namespace {

/// Per-tenant mean + 95% CI over the replicas of one controller.
struct TenantCi {
  core::MetricSummary latency;
  core::MetricSummary p95;
  core::MetricSummary throughput;
};

std::vector<TenantCi> tenant_cis(const core::ReplicationResult& rep,
                                 std::size_t num_tenants) {
  std::vector<TenantCi> out(num_tenants);
  for (std::size_t t = 0; t < num_tenants; ++t) {
    std::vector<double> lat, p95, thru;
    for (const core::Replica& r : rep.replicas) {
      const core::TenantEpisodeSummary& s = r.result.tenants[t];
      lat.push_back(s.mean_latency);
      p95.push_back(s.p95_latency);
      thru.push_back(s.accepted_rate);
    }
    out[t].latency = bench::summarize_metric(lat);
    out[t].p95 = bench::summarize_metric(p95);
    out[t].throughput = bench::summarize_metric(thru);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // `--smoke` is a bare flag (no value); strip it before Config parsing.
  std::vector<const char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    const std::string tok = argv[i];
    if (tok == "--smoke" || tok == "smoke") {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  const util::Config cfg =
      util::Config::from_args(static_cast<int>(args.size()), args.data());
  util::init_log(cfg.get("log", std::string()));

  const int size = cfg.get("size", smoke ? 4 : 8);
  const int episodes = cfg.get("episodes", smoke ? 2 : 80);
  const int replicas = cfg.get("replicas", smoke ? 2 : 8);
  const double bg_rate = cfg.get("bg_rate", 0.04);
  const double rate_scale = cfg.get("rate_scale", 1.0);
  const core::ExperimentRunner runner = bench::runner_from(cfg);

  // --- the scenario: a 16-endpoint DNN pipeline + fabric-wide background ---
  auto s = std::make_shared<scenario::Scenario>();
  s->name = "dnn_plus_background";
  s->net.width = s->net.height = size;
  s->net.seed = 42;
  {
    scenario::TenantSpec dnn;
    dnn.name = "dnn";
    dnn.kind = scenario::WorkloadKind::kTrace;
    trace::DnnPipelineParams dp;
    dp.nodes = 16;
    dp.batches = smoke ? 2 : 4;
    dnn.trace = std::make_shared<const trace::Trace>(
        trace::generate_dnn_pipeline(dp));
    dnn.rate_scale = rate_scale;
    dnn.loop = true;  // RL episodes of any length stay fed
    dnn.nodes = scenario::parse_node_set("0-15", size * size);
    s->tenants.push_back(std::move(dnn));

    scenario::TenantSpec bg;
    bg.name = "background";
    bg.kind = scenario::WorkloadKind::kSteady;
    bg.pattern = "uniform";
    bg.rate = bg_rate;
    s->tenants.push_back(std::move(bg));
  }
  // Horizon for standalone (scenarioctl-style) runs; RL episodes are
  // bounded by epochs_per_episode instead.
  s->duration = 1e6;

  core::NocEnvParams ep;
  ep.scenario = s;
  ep.net.seed = s->net.seed;  // base of the per-replica seed stream
  ep.epoch_cycles = smoke ? 256 : 512;
  ep.epochs_per_episode = smoke ? 4 : 48;
  core::NocConfigEnv env(ep);

  std::cout << "T5: multi-tenant interference (mesh " << size << "x" << size
            << "; dnn trace on nodes 0-15 x" << rate_scale
            << " + uniform background @" << bg_rate
            << "; power_ref = " << env.power_ref_mw()
            << " mW; jobs = " << runner.jobs() << ")\n\n";

  auto agent = bench::train_agent(env, episodes);

  // --- replication: frozen policies vs statics across traffic seeds -------
  const std::size_t state_size = env.state_size();
  const int num_actions = env.num_actions();
  core::NocEnvParams rep = ep;
  rep.reward.power_ref_mw = env.power_ref_mw();  // comparable across seeds

  struct Entry {
    std::string name;
    core::ReplicationResult rep;
  };
  std::vector<Entry> entries;
  entries.push_back(
      {"drl", core::evaluate_many(
                  rep,
                  [&](const core::NocConfigEnv& e)
                      -> std::unique_ptr<core::Controller> {
                    auto policy =
                        bench::clone_policy(*agent, state_size, num_actions);
                    return std::make_unique<core::OwningDrlController>(
                        e.actions(), std::move(policy));
                  },
                  replicas, runner)});
  entries.push_back(
      {"heuristic",
       core::evaluate_many(
           rep,
           [&](const core::NocConfigEnv& e)
               -> std::unique_ptr<core::Controller> {
             core::HeuristicParams hp;
             hp.num_nodes = size * size;
             return std::make_unique<core::HeuristicController>(e.actions(),
                                                                hp);
           },
           replicas, runner)});
  entries.push_back(
      {"static-max",
       core::evaluate_many(
           rep,
           [](const core::NocConfigEnv& e)
               -> std::unique_ptr<core::Controller> {
             return core::StaticController::maximal(e.actions());
           },
           replicas, runner)});
  entries.push_back(
      {"static-min",
       core::evaluate_many(
           rep,
           [](const core::NocConfigEnv& e)
               -> std::unique_ptr<core::Controller> {
             return core::StaticController::minimal(e.actions());
           },
           replicas, runner)});

  const std::size_t num_tenants = s->tenants.size();
  std::cout << "per-tenant metrics over " << replicas
            << " traffic seeds (mean +/- 95% CI):\n";
  util::Table tab({"controller", "tenant", "latency", "ci95", "p95", "ci95",
                   "thru(pkt/node/cyc)", "ci95", "reward"});
  std::vector<std::pair<std::string, double>> metrics;
  for (const Entry& e : entries) {
    const std::vector<TenantCi> cis = tenant_cis(e.rep, num_tenants);
    for (std::size_t t = 0; t < num_tenants; ++t) {
      tab.row()
          .cell(e.name)
          .cell(s->tenants[t].name)
          .cell(cis[t].latency.mean, 2)
          .cell(cis[t].latency.ci95, 2)
          .cell(cis[t].p95.mean, 1)
          .cell(cis[t].p95.ci95, 1)
          .cell(cis[t].throughput.mean, 5)
          .cell(cis[t].throughput.ci95, 5)
          .cell(t == 0 ? util::fmt(e.rep.reward.mean, 2) : std::string());
      const std::string key = e.name + "." + s->tenants[t].name;
      metrics.emplace_back(key + ".latency", cis[t].latency.mean);
      metrics.emplace_back(key + ".latency_ci95", cis[t].latency.ci95);
      metrics.emplace_back(key + ".p95", cis[t].p95.mean);
      metrics.emplace_back(key + ".throughput", cis[t].throughput.mean);
      metrics.emplace_back(key + ".throughput_ci95", cis[t].throughput.ci95);
    }
    metrics.emplace_back(e.name + ".reward", e.rep.reward.mean);
    metrics.emplace_back(e.name + ".power_mw", e.rep.power_mw.mean);
  }
  tab.print(std::cout);
  std::cout << "\nshape check: the background tenant's load bleeds into the "
               "dnn tenant's latency; DRL rides the interference with less "
               "victim-latency inflation than static-min and less power "
               "than static-max.\n";

  const std::string out_path = cfg.get("out", std::string());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      LOG_ERROR << "table5: cannot write " << out_path;
      return 1;
    }
    bench::write_metrics_json(out, "table5_multitenant", metrics, {},
                              "mixed (core-cycle latency, pkt/node/cycle "
                              "throughput, mW)");
    std::cout << "wrote " << out_path << "\n";
  }
  // Optional observability pass (after the measured comparisons, so every
  // table cell above is observer-free).
  return bench::maybe_traced_run(cfg, *s) ? 0 : 1;
}
