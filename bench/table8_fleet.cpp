// T8: fleet evaluation — controllers compared not on one scenario but
// across a generated scenario *space*: a churned multi-tenant base swept
// over background load, churn intensity and fault severity, with seed
// replicas (src/fleet/). Each controller runs the whole fleet through the
// sharded/resumable harness and is judged by the scorecard: per-class SLO
// hit rates, power, and the worst-case scenario it produced. Expected
// shape: the DRL policy (trained on one corner of the space, aggregate
// features) degrades gracefully toward the heuristic as churn and faults
// move the fleet away from its training point, while static-max buys its
// SLO hit rate with the highest power.
//
// The bench writes its base scenario + `.drlfs` spec under workdir= (so the
// same artifacts replay via fleetctl), fleets every controller into one
// shared results directory (result keys disambiguate), and emits the
// comparison as TABLE8 JSON via bench/bench_json.h. `--smoke` shrinks the
// space for CI. Results are bit-identical at any --jobs value.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "fleet/fleet.h"
#include "fleet/scenario_space.h"
#include "fleet/scorecard.h"
#include "util/config.h"
#include "util/log.h"

using namespace drlnoc;

namespace {

std::string base_scenario_text(int size, bool smoke) {
  std::ostringstream os;
  os << "drlsc 1\n"
     << "name = fleet_base\n"
     << "topology = mesh\n"
     << "width = " << size << "\n"
     << "height = " << size << "\n"
     << "seed = 7\n"
     << "duration = " << (smoke ? 20000 : 60000) << "\n"
     << "tenants = 2\n"
     << "tenant0.name = critical\n"
     << "tenant0.workload = steady\n"
     << "tenant0.pattern = uniform\n"
     << "tenant0.rate = 0.02\n"
     << "tenant0.qos = latency_critical\n"
     << "tenant0.p95_target = 300\n"
     << "tenant1.name = background\n"
     << "tenant1.workload = steady\n"
     << "tenant1.pattern = uniform\n"
     << "tenant1.rate = 0.04\n"
     << "tenant1.qos = background\n"
     << "\n[churn]\n"
     << "seed = 11\n"
     << "arrival_rate = 0.0001\n"
     << "capacity = 3\n"
     << "max_arrivals = 64\n"
     << "templates = 1\n"
     << "template0.tenant = 1\n"
     << "template0.lifetime = exponential\n"
     << "template0.lifetime_mean = " << (smoke ? 4000 : 8000) << "\n";
  return os.str();
}

std::string spec_text(bool smoke) {
  std::ostringstream os;
  os << "drlfs 1\n"
     << "name = table8\n"
     << "base = base.drlsc\n"
     << "seeds = " << (smoke ? 2 : 3) << "\n";
  if (smoke) {
    os << "axes = 1\n"
       << "axis0.key = tenant1.rate\n"
       << "axis0.values = 0.03,0.06\n";
  } else {
    os << "axes = 3\n"
       << "axis0.key = tenant1.rate\n"
       << "axis0.values = 0.03,0.06\n"
       << "axis1.key = churn.arrival_rate\n"
       << "axis1.values = 0.00005,0.0002\n"
       << "axis2.key = faults.link_fault_rate\n"
       << "axis2.values = 0,0.0005\n";
  }
  return os.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("table8: cannot write " + path);
  os << text;
}

}  // namespace

int main(int argc, char** argv) {
  // `--smoke` is a bare flag (no value); strip it before Config parsing.
  std::vector<const char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    const std::string tok = argv[i];
    if (tok == "--smoke" || tok == "smoke") {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  const util::Config cfg =
      util::Config::from_args(static_cast<int>(args.size()), args.data());
  util::init_log(cfg.get("log", std::string()));

  const int size = cfg.get("size", smoke ? 4 : 8);
  const int episodes = cfg.get("episodes", smoke ? 2 : 40);
  const int epochs = cfg.get("epochs", smoke ? 4 : 24);
  const long long epoch_cycles = cfg.get("epoch_cycles",
                                         smoke ? 256LL : 512LL);
  const std::string workdir = cfg.get("workdir", std::string("table8_work"));
  const core::ExperimentRunner runner = bench::runner_from(cfg);

  std::filesystem::create_directories(workdir);
  write_file(workdir + "/base.drlsc", base_scenario_text(size, smoke));
  write_file(workdir + "/table8.drlfs", spec_text(smoke));
  const fleet::ScenarioSpace space =
      fleet::ScenarioSpaceReader::read_file(workdir + "/table8.drlfs");

  std::cout << "T8: fleet evaluation (mesh " << size << "x" << size << "; "
            << space.size() << " scenarios = " << space.seeds
            << " seeds x " << (space.size() / space.seeds)
            << " axis points; " << epochs << " epochs x " << epoch_cycles
            << " cycles per scenario; jobs = " << runner.jobs() << ")\n\n";

  // Train the DRL entry on one corner of the space (index 0) with the
  // aggregate feature set — churn varies the tenant population across the
  // fleet, so per-tenant QoS features would change the state size from
  // scenario to scenario and no single policy could span them.
  const fleet::ExpandedScenario train_point = space.expand(0);
  core::NocEnvParams train_ep;
  train_ep.scenario =
      std::make_shared<scenario::Scenario>(train_point.scenario);
  train_ep.net.seed = train_point.scenario.net.seed;
  train_ep.scenario_qos = false;
  train_ep.epoch_cycles = static_cast<std::uint64_t>(epoch_cycles);
  train_ep.epochs_per_episode = epochs;
  core::NocConfigEnv train_env(train_ep);
  auto agent = bench::train_agent(train_env, episodes);
  const std::string policy_path = workdir + "/table8.policy";
  {
    std::ofstream out(policy_path, std::ios::binary);
    if (!out) {
      LOG_ERROR << "table8: cannot write " << policy_path;
      return 1;
    }
    agent->save(out);
  }

  struct Entry {
    std::string controller;
    fleet::Scorecard card;
  };
  std::vector<Entry> entries;
  for (const std::string& controller :
       {std::string("drl"), std::string("heuristic"),
        std::string("static-max"), std::string("static-min")}) {
    fleet::FleetParams fp;
    fp.controller = controller;
    if (controller == "drl") {
      fp.policy_file = policy_path;
      std::ifstream in(policy_path, std::ios::binary);
      std::stringstream ss;
      ss << in.rdbuf();
      fp.policy_blob = ss.str();
    }
    fp.epochs = epochs;
    fp.epoch_cycles = static_cast<std::uint64_t>(epoch_cycles);
    fp.results_dir = workdir + "/results";
    const fleet::FleetRunOutcome outcome =
        fleet::run_fleet(space, fp, runner);
    const fleet::Scorecard card = fleet::score_fleet(
        fleet::load_results(space, fp), space.size(), space.name, 1);
    std::cout << "fleet[" << controller << "]: ran " << outcome.ran
              << ", resumed past " << outcome.skipped << "\n";
    entries.push_back({controller, card});
  }
  std::cout << "\n";

  util::Table tab({"controller", "slo_hit(crit)", "worst_slo", "p95_mean",
                   "power_mW", "dropped", "worst scenario"});
  std::vector<std::pair<std::string, double>> metrics;
  for (const Entry& e : entries) {
    const auto it = e.card.classes.find("latency_critical");
    const fleet::ClassScore cls =
        it == e.card.classes.end() ? fleet::ClassScore{} : it->second;
    tab.row()
        .cell(e.controller)
        .cell(util::fmt(100.0 * cls.slo_hit_rate, 1) + "%")
        .cell(util::fmt(100.0 * cls.worst_slo_hit_rate, 1) + "%")
        .cell(cls.p95_mean, 1)
        .cell(e.card.power_mw.mean, 1)
        .cell(static_cast<long long>(e.card.flits_dropped))
        .cell(e.card.worst.empty() ? std::string("-")
                                   : e.card.worst.front().label);
    metrics.emplace_back(e.controller + ".slo_hit_rate", cls.slo_hit_rate);
    metrics.emplace_back(e.controller + ".worst_slo_hit_rate",
                         cls.worst_slo_hit_rate);
    metrics.emplace_back(e.controller + ".p95_mean", cls.p95_mean);
    metrics.emplace_back(e.controller + ".p95_p95", cls.p95_p95);
    metrics.emplace_back(e.controller + ".power_mw", e.card.power_mw.mean);
    metrics.emplace_back(e.controller + ".reward", e.card.reward.mean);
  }
  tab.print(std::cout);
  std::cout << "\nshape check: static-max holds the best SLO hit rate at the "
               "highest power; the DRL policy and the heuristic trade a few "
               "SLO points for power, and the gap to static-max widens on "
               "the churned/faulted corners (the worst-scenario column).\n";

  const std::string out_path = cfg.get("out", std::string());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      LOG_ERROR << "table8: cannot write " << out_path;
      return 1;
    }
    bench::write_metrics_json(out, "table8_fleet", metrics, {},
                              "mixed (SLO hit fraction, core-cycle latency, "
                              "mW)");
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
