// Shared JSON metric emission for the headless benchmarks (perf_smoke,
// trace_replay): a flat "metrics" object of rates, an optional "baseline"
// echo and per-key "speedup" block when comparing against a previous
// BENCH_*.json. Keeping the format in one place keeps every tracked
// trajectory file diffable by the same tooling.
#pragma once

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/log.h"

// Injected by the build (CMake runs `git describe --always --dirty`); the
// fallback keeps out-of-tree or tarball builds compiling.
#ifndef DRLNOC_GIT_DESCRIBE
#define DRLNOC_GIT_DESCRIBE "unknown"
#endif

namespace drlnoc::bench {

/// Version of the benchmark JSON layout below. Bump when fields are added,
/// renamed or re-typed so downstream diff tooling can gate on it.
inline constexpr int kBenchJsonSchema = 2;

/// Extracts the flat numeric "metrics" object from a previous benchmark
/// JSON file. Tolerant hand parser: finds `"metrics"`, then reads
/// `"key": number` pairs until the object closes.
inline std::map<std::string, double> read_baseline_metrics(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    LOG_WARN << "bench: cannot read baseline file " << path;
    return {};
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::map<std::string, double> metrics;
  std::size_t pos = text.find("\"metrics\"");
  if (pos == std::string::npos) return metrics;
  pos = text.find('{', pos);
  if (pos == std::string::npos) return metrics;
  const std::size_t end = text.find('}', pos);
  std::size_t cursor = pos;
  while (cursor < end) {
    const std::size_t k0 = text.find('"', cursor);
    if (k0 == std::string::npos || k0 > end) break;
    const std::size_t k1 = text.find('"', k0 + 1);
    const std::size_t colon = text.find(':', k1);
    if (k1 == std::string::npos || colon == std::string::npos || colon > end)
      break;
    const std::string key = text.substr(k0 + 1, k1 - k0 - 1);
    try {
      metrics[key] = std::stod(text.substr(colon + 1));
    } catch (const std::exception&) {
      // Tolerant parser: skip malformed values instead of crashing.
    }
    cursor = text.find(',', colon);
    if (cursor == std::string::npos || cursor > end) break;
  }
  return metrics;
}

/// Writes the benchmark JSON block: metrics, then baseline + speedup when a
/// baseline is provided. `units` labels the metric values (throughput
/// benches use the default "per_second"; mixed-metric tables pass their
/// own label).
inline void write_metrics_json(
    std::ostream& os, const std::string& bench_name,
    const std::vector<std::pair<std::string, double>>& metrics,
    const std::map<std::string, double>& baseline,
    const std::string& units = "per_second", const std::string& note = "") {
  os.precision(6);
  os << "{\n  \"bench\": \"" << bench_name
     << "\",\n  \"schema\": " << kBenchJsonSchema
     << ",\n  \"git\": \"" << DRLNOC_GIT_DESCRIBE
     << "\",\n  \"units\": \"" << units << "\",\n";
  if (!note.empty()) os << "  \"note\": \"" << note << "\",\n";
  os << "  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    os << "    \"" << metrics[i].first << "\": " << metrics[i].second
       << (i + 1 == metrics.size() ? "\n" : ",\n");
  }
  os << "  }";
  if (!baseline.empty()) {
    os << ",\n  \"baseline\": {\n";
    std::size_t i = 0;
    for (const auto& [k, v] : baseline) {
      os << "    \"" << k << "\": " << v
         << (++i == baseline.size() ? "\n" : ",\n");
    }
    os << "  },\n  \"speedup\": {\n";
    std::vector<std::string> lines;
    for (const auto& [key, rate] : metrics) {
      const auto it = baseline.find(key);
      if (it == baseline.end() || it->second <= 0.0) continue;
      std::ostringstream line;
      line.precision(3);
      line << "    \"" << key << "\": " << rate / it->second;
      lines.push_back(line.str());
    }
    for (std::size_t j = 0; j < lines.size(); ++j) {
      os << lines[j] << (j + 1 == lines.size() ? "\n" : ",\n");
    }
    os << "  }";
  }
  os << "\n}\n";
}

}  // namespace drlnoc::bench
