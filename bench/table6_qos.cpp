// T6: QoS-aware multi-tenant control — DRL trained on the tenant-aware QoS
// objective (SLO penalty for the latency-critical trace tenant, energy
// credit for throttling background) vs DRL trained on the aggregate
// objective vs static controllers, all evaluated on the same trace +
// background interference scenario. Expected shape: DRL-QoS holds the
// latency-critical tenant's SLO hit rate above DRL-aggregate's (which
// happily trades victim p95 for fabric-wide energy) while spending less
// power than static-max.
//
// Training uses the multi-actor collector (round= is semantic, actors= is
// thread fan-out only) and replication fans out over the experiment engine;
// results (including the emitted JSON) are bit-identical at any
// --jobs/actors= value. `--smoke` shrinks everything for CI; `out=FILE.json`
// dumps per-tenant metrics via bench/bench_json.h.
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "scenario/scenario.h"
#include "trace/generators.h"
#include "util/config.h"
#include "util/log.h"

using namespace drlnoc;

namespace {

/// Per-tenant mean + 95% CI over the replicas of one controller.
struct TenantCi {
  core::MetricSummary latency;
  core::MetricSummary p95;
  core::MetricSummary throughput;
  core::MetricSummary slo_hit_rate;
};

std::vector<TenantCi> tenant_cis(const core::ReplicationResult& rep,
                                 std::size_t num_tenants) {
  std::vector<TenantCi> out(num_tenants);
  for (std::size_t t = 0; t < num_tenants; ++t) {
    std::vector<double> lat, p95, thru, slo;
    for (const core::Replica& r : rep.replicas) {
      const core::TenantEpisodeSummary& s = r.result.tenants[t];
      lat.push_back(s.mean_latency);
      p95.push_back(s.p95_latency);
      thru.push_back(s.accepted_rate);
      slo.push_back(s.slo_hit_rate);
    }
    out[t].latency = bench::summarize_metric(lat);
    out[t].p95 = bench::summarize_metric(p95);
    out[t].throughput = bench::summarize_metric(thru);
    out[t].slo_hit_rate = bench::summarize_metric(slo);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // `--smoke` is a bare flag (no value); strip it before Config parsing.
  std::vector<const char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    const std::string tok = argv[i];
    if (tok == "--smoke" || tok == "smoke") {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  const util::Config cfg =
      util::Config::from_args(static_cast<int>(args.size()), args.data());
  util::init_log(cfg.get("log", std::string()));

  const int size = cfg.get("size", smoke ? 4 : 8);
  const int episodes = cfg.get("episodes", smoke ? 2 : 80);
  // Multi-actor training (PR 10): `round` is semantic (part of the
  // experiment definition), `actors` is pure wall-clock fan-out — the table
  // and the emitted JSON are bit-identical at any actors/jobs value.
  const int round = cfg.get("round", 8);
  const int actors = cfg.get("actors", 0);
  const int replicas = cfg.get("replicas", smoke ? 2 : 8);
  const double bg_rate = cfg.get("bg_rate", 0.05);
  const double rate_scale = cfg.get("rate_scale", 1.0);
  const double p95_target = cfg.get("p95_target", smoke ? 200.0 : 300.0);
  const core::ExperimentRunner runner = bench::runner_from(cfg);

  // --- the scenario: latency-critical DNN pipeline + background sweep ------
  auto s = std::make_shared<scenario::Scenario>();
  s->name = "qos_dnn_vs_background";
  s->net.width = s->net.height = size;
  s->net.seed = 42;
  {
    scenario::TenantSpec dnn;
    dnn.name = "dnn";
    dnn.kind = scenario::WorkloadKind::kTrace;
    trace::DnnPipelineParams dp;
    dp.nodes = 16;
    dp.batches = smoke ? 2 : 4;
    dnn.trace = std::make_shared<const trace::Trace>(
        trace::generate_dnn_pipeline(dp));
    dnn.rate_scale = rate_scale;
    dnn.loop = true;  // RL episodes of any length stay fed
    dnn.nodes = scenario::parse_node_set("0-15", size * size);
    dnn.qos = scenario::QosClass::kLatencyCritical;
    dnn.p95_target = p95_target;
    s->tenants.push_back(std::move(dnn));

    scenario::TenantSpec bg;
    bg.name = "background";
    bg.kind = scenario::WorkloadKind::kSteady;
    bg.pattern = "uniform";
    bg.rate = bg_rate;
    bg.qos = scenario::QosClass::kBackground;
    s->tenants.push_back(std::move(bg));
  }
  s->duration = 1e6;  // horizon for standalone runs; episodes bound RL use

  // Two training environments over one scenario: the QoS objective (SLO
  // penalty + background energy credit + per-tenant features) and the
  // aggregate ablation (scenario_qos=false ignores the annotations).
  core::NocEnvParams qos_ep;
  qos_ep.scenario = s;
  qos_ep.net.seed = s->net.seed;  // base of the per-replica seed stream
  qos_ep.epoch_cycles = smoke ? 256 : 512;
  qos_ep.epochs_per_episode = smoke ? 4 : 48;
  core::NocEnvParams agg_ep = qos_ep;
  agg_ep.scenario_qos = false;

  core::NocConfigEnv qos_env(qos_ep);
  core::NocConfigEnv agg_env(agg_ep);

  std::cout << "T6: QoS-aware multi-tenant control (mesh " << size << "x"
            << size << "; dnn trace on 0-15 x" << rate_scale
            << " latency_critical p95<=" << p95_target
            << " + uniform background @" << bg_rate
            << "; power_ref = " << qos_env.power_ref_mw()
            << " mW; round = " << round << "; jobs = " << runner.jobs()
            << ")\n\n";

  auto qos_agent = bench::train_agent_parallel(qos_ep, episodes, round, actors);
  auto agg_agent = bench::train_agent_parallel(agg_ep, episodes, round, actors);

  // `save_policy=FILE` persists the QoS-trained policy so a `.drlsc`
  // [controller] block can replay this row via `scenarioctl run`. The
  // checkpoint carries the scenario content hash + building commit, so the
  // replay warns if it serves a different scenario.
  const std::string policy_path = cfg.get("save_policy", std::string());
  if (!policy_path.empty()) {
    std::ofstream out(policy_path, std::ios::binary);
    if (!out) {
      LOG_ERROR << "table6: cannot write " << policy_path;
      return 1;
    }
    rl::PolicyMeta meta;
    meta.scenario_hash = scenario::content_hash_hex(*s);
    meta.git = DRLNOC_GIT_DESCRIBE;
    qos_agent->save(out, meta);
    std::cout << "saved QoS policy to " << policy_path << "\n";
  }

  // --- replication: frozen policies vs statics across traffic seeds -------
  core::NocEnvParams qos_rep = qos_ep;
  qos_rep.reward.power_ref_mw = qos_env.power_ref_mw();
  core::NocEnvParams agg_rep = agg_ep;
  agg_rep.reward.power_ref_mw = agg_env.power_ref_mw();

  struct Entry {
    std::string name;
    core::ReplicationResult rep;
  };
  std::vector<Entry> entries;
  entries.push_back(
      {"drl-qos",
       core::evaluate_many(
           qos_rep,
           [&](const core::NocConfigEnv& e)
               -> std::unique_ptr<core::Controller> {
             auto policy = bench::clone_policy(*qos_agent,
                                               qos_env.state_size(),
                                               qos_env.num_actions());
             return std::make_unique<core::OwningDrlController>(
                 e.actions(), std::move(policy));
           },
           replicas, runner)});
  entries.push_back(
      {"drl-aggregate",
       core::evaluate_many(
           agg_rep,
           [&](const core::NocConfigEnv& e)
               -> std::unique_ptr<core::Controller> {
             auto policy = bench::clone_policy(*agg_agent,
                                               agg_env.state_size(),
                                               agg_env.num_actions());
             return std::make_unique<core::OwningDrlController>(
                 e.actions(), std::move(policy));
           },
           replicas, runner)});
  entries.push_back(
      {"static-max",
       core::evaluate_many(
           qos_rep,
           [](const core::NocConfigEnv& e)
               -> std::unique_ptr<core::Controller> {
             return core::StaticController::maximal(e.actions());
           },
           replicas, runner)});
  entries.push_back(
      {"static-min",
       core::evaluate_many(
           qos_rep,
           [](const core::NocConfigEnv& e)
               -> std::unique_ptr<core::Controller> {
             return core::StaticController::minimal(e.actions());
           },
           replicas, runner)});

  const std::size_t num_tenants = s->tenants.size();
  std::cout << "per-tenant metrics over " << replicas
            << " traffic seeds (mean +/- 95% CI):\n";
  util::Table tab({"controller", "tenant", "slo_hit", "ci95", "p95", "ci95",
                   "latency", "thru(pkt/node/cyc)", "power_mW"});
  std::vector<std::pair<std::string, double>> metrics;
  for (const Entry& e : entries) {
    const std::vector<TenantCi> cis = tenant_cis(e.rep, num_tenants);
    for (std::size_t t = 0; t < num_tenants; ++t) {
      const bool critical = s->tenants[t].p95_target > 0.0;
      tab.row()
          .cell(e.name)
          .cell(s->tenants[t].name)
          .cell(critical ? util::fmt(100.0 * cis[t].slo_hit_rate.mean, 1) + "%"
                         : std::string("-"))
          .cell(critical ? util::fmt(100.0 * cis[t].slo_hit_rate.ci95, 1)
                         : std::string())
          .cell(cis[t].p95.mean, 1)
          .cell(cis[t].p95.ci95, 1)
          .cell(cis[t].latency.mean, 2)
          .cell(cis[t].throughput.mean, 5)
          .cell(t == 0 ? util::fmt(e.rep.power_mw.mean, 1) : std::string());
      const std::string key = e.name + "." + s->tenants[t].name;
      metrics.emplace_back(key + ".slo_hit_rate", cis[t].slo_hit_rate.mean);
      metrics.emplace_back(key + ".slo_hit_rate_ci95",
                           cis[t].slo_hit_rate.ci95);
      metrics.emplace_back(key + ".p95", cis[t].p95.mean);
      metrics.emplace_back(key + ".p95_ci95", cis[t].p95.ci95);
      metrics.emplace_back(key + ".latency", cis[t].latency.mean);
      metrics.emplace_back(key + ".throughput", cis[t].throughput.mean);
    }
    metrics.emplace_back(e.name + ".reward", e.rep.reward.mean);
    metrics.emplace_back(e.name + ".power_mw", e.rep.power_mw.mean);
  }
  tab.print(std::cout);
  std::cout << "\nshape check: DRL-QoS protects the dnn tenant's p95 SLO "
               "under background interference (hit rate toward static-max's) "
               "at lower power than static-max; DRL-aggregate sits between, "
               "trading victim p95 for fabric-wide energy.\n";

  const std::string out_path = cfg.get("out", std::string());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      LOG_ERROR << "table6: cannot write " << out_path;
      return 1;
    }
    bench::write_metrics_json(out, "table6_qos", metrics, {},
                              "mixed (SLO hit fraction, core-cycle latency, "
                              "pkt/node/cycle throughput, mW)");
    std::cout << "wrote " << out_path << "\n";
  }
  // Optional observability pass (after the measured comparisons, so every
  // table cell above is observer-free).
  return bench::maybe_traced_run(cfg, *s) ? 0 : 1;
}
