// F4: self-configuration in action — the configuration a trained agent picks
// at every epoch across the phased workload, next to the load it observed.
// Expected shape: minimal resources + low DVFS during the idle phase,
// escalation (VCs/depth up, DVFS up) on the moderate/burst phases, and
// relaxation afterwards.
#include <iostream>

#include "bench_common.h"
#include "util/config.h"

using namespace drlnoc;

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const int episodes = cfg.get("episodes", 150);

  core::NocEnvParams ep;
  ep.net.width = ep.net.height = cfg.get("size", 4);
  ep.net.seed = 42;
  ep.epoch_cycles = 512;
  ep.epochs_per_episode = 48;
  core::NocConfigEnv env(ep);

  std::cout << "F4: configuration timeline (trained DRL, standard 4-phase "
               "workload: idle -> uniform 0.08 -> hotspot burst -> "
               "structured 0.06)\n\n";

  auto agent = bench::train_agent(env, episodes);
  core::DrlController drl(env.actions(), *agent);
  const auto result = core::evaluate(env, drl, /*keep_epochs=*/true);

  util::Table t({"epoch", "offered", "accepted", "latency", "occup",
                 "backlog", "vcs", "depth", "dvfs", "power_mW"});
  for (std::size_t i = 0; i < result.epochs.size(); ++i) {
    const auto& s = result.epochs[i];
    t.row()
        .cell(static_cast<long long>(i))
        .cell(s.offered_rate, 3)
        .cell(s.accepted_rate, 3)
        .cell(s.avg_latency, 1)
        .cell(s.avg_buffer_occupancy, 2)
        .cell(static_cast<long long>(s.source_queue_total))
        .cell(static_cast<long long>(s.config.active_vcs))
        .cell(static_cast<long long>(s.config.active_depth))
        .cell(static_cast<long long>(s.config.dvfs_level))
        .cell(s.avg_power_mw(2.0), 1);
  }
  t.print(std::cout);

  // Aggregate the chosen DVFS level per workload intensity bucket.
  double idle_dvfs = 0.0, busy_dvfs = 0.0;
  int idle_n = 0, busy_n = 0;
  for (const auto& s : result.epochs) {
    if (s.offered_rate < 0.02) {
      idle_dvfs += s.config.dvfs_level;
      ++idle_n;
    } else if (s.offered_rate > 0.05) {
      busy_dvfs += s.config.dvfs_level;
      ++busy_n;
    }
  }
  if (idle_n && busy_n) {
    std::cout << "\nmean DVFS level: idle epochs "
              << util::fmt(idle_dvfs / idle_n, 2) << " vs busy epochs "
              << util::fmt(busy_dvfs / busy_n, 2)
              << "\nshape check: busy-phase capability >= idle-phase "
                 "capability; no persistent backlog.\n";
  }
  return 0;
}
