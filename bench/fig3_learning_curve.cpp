// F3: the DQN learning curve on the standard phased workload — training
// return and mean TD loss per episode, with periodic greedy evaluations.
// Expected shape: return rises from the random-policy level and plateaus
// near (or above) the best static configuration's return.
#include <iostream>

#include "bench_common.h"
#include "util/config.h"

using namespace drlnoc;

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const int episodes = cfg.get("episodes", 150);

  core::NocEnvParams ep;
  ep.net.width = ep.net.height = cfg.get("size", 4);
  ep.net.seed = 42;
  ep.epoch_cycles = 512;
  ep.epochs_per_episode = 48;
  ep.seed = 1;
  core::NocConfigEnv env(ep);

  std::cout << "F3: DQN learning curve (mesh " << ep.net.width << "x"
            << ep.net.height << ", standard phased workload, " << episodes
            << " episodes)\n"
            << "power_ref = " << env.power_ref_mw() << " mW\n\n";

  const auto steps = static_cast<std::uint64_t>(episodes) * 48;
  rl::DqnAgent agent(env.state_size(), env.num_actions(),
                     bench::standard_dqn(steps));
  core::TrainParams tp;
  tp.episodes = episodes;
  tp.eval_every = 10;
  const core::TrainResult tr = core::train_dqn(env, agent, tp);

  util::Table t({"episode", "return(ma5)", "td_loss", "greedy_eval"});
  std::size_t eval_idx = 0;
  for (std::size_t i = 0; i < tr.episode_returns.size(); ++i) {
    if ((i + 1) % 10 != 0) continue;
    // 5-episode moving average of the training return.
    double ma = 0.0;
    int n = 0;
    for (std::size_t j = i >= 4 ? i - 4 : 0; j <= i; ++j, ++n) {
      ma += tr.episode_returns[j];
    }
    ma /= n;
    std::string eval = "-";
    if (eval_idx < tr.eval_episodes.size() &&
        static_cast<std::size_t>(tr.eval_episodes[eval_idx]) == i + 1) {
      eval = util::fmt(tr.eval_rewards[eval_idx], 2);
      ++eval_idx;
    }
    t.row()
        .cell(static_cast<long long>(i + 1))
        .cell(ma, 2)
        .cell(tr.episode_loss[i], 4)
        .cell(eval);
  }
  t.print(std::cout);

  // Reference lines: the static extremes and the oracle.
  auto smax = core::StaticController::maximal(env.actions());
  auto smin = core::StaticController::minimal(env.actions());
  const auto rx = core::evaluate(env, *smax);
  const auto rn = core::evaluate(env, *smin);
  const auto sweep = core::sweep_static(env, cfg.get("jobs", 0));
  core::DrlController drl(env.actions(), agent);
  const auto rd = core::evaluate(env, drl);
  std::cout << "\nreference returns:  static-max " << util::fmt(rx.total_reward, 2)
            << "   static-min " << util::fmt(rn.total_reward, 2)
            << "   oracle-static " << util::fmt(sweep[0].total_reward, 2)
            << " (" << sweep[0].controller << ")"
            << "\nfinal greedy DRL:   " << util::fmt(rd.total_reward, 2)
            << "\nshape check: curve rises and plateaus; final DRL beats "
               "static-max and approaches/beats oracle-static.\n";
  return 0;
}
