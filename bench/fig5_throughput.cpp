// F5: accepted throughput vs offered load, mesh and torus, uniform traffic.
// Expected shape: accepted == offered until the saturation knee, then a flat
// plateau; the torus (double bisection bandwidth) saturates later.
#include <iostream>

#include "noc/simulator.h"
#include "util/config.h"
#include "util/table.h"

using namespace drlnoc;

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const int size = cfg.get("size", 8);
  const double step = cfg.get("step", 0.04);
  const double max_rate = cfg.get("max_rate", 0.44);

  std::cout << "F5: throughput vs offered load (uniform traffic, " << size
            << "x" << size << ")\n\n";
  util::Table table({"offered", "mesh_accepted", "mesh_latency",
                     "torus_accepted", "torus_latency"});

  for (double rate = step; rate <= max_rate + 1e-9; rate += step) {
    noc::NetworkParams mesh;
    mesh.topology = "mesh";
    mesh.width = mesh.height = size;
    mesh.seed = 101;

    noc::NetworkParams torus = mesh;
    torus.topology = "torus";

    noc::SteadyRunParams run;
    run.warmup_cycles = 1500;
    run.measure_cycles = 5000;
    run.drain_limit = 30000;

    const auto m = noc::measure_point(mesh, "uniform", rate, run);
    const auto t = noc::measure_point(torus, "uniform", rate, run);
    table.row()
        .cell(rate, 3)
        .cell(m.stats.accepted_rate, 4)
        .cell(m.stats.avg_latency, 1)
        .cell(t.stats.accepted_rate, 4)
        .cell(t.stats.avg_latency, 1);
  }
  table.print(std::cout);
  std::cout << "\nshape check: accepted tracks offered until the knee, then "
               "plateaus; torus knee is to the right of mesh.\n";
  return 0;
}
