// F5: accepted throughput vs offered load, mesh and torus, uniform traffic.
// Expected shape: accepted == offered until the saturation knee, then a flat
// plateau; the torus (double bisection bandwidth) saturates later.
#include <iostream>

#include "noc/simulator.h"
#include "util/config.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace drlnoc;

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const int size = cfg.get("size", 8);
  const double step = cfg.get("step", 0.04);
  const double max_rate = cfg.get("max_rate", 0.44);
  const int jobs = util::ThreadPool::resolve_jobs(cfg.get("jobs", 0));

  std::cout << "F5: throughput vs offered load (uniform traffic, " << size
            << "x" << size << ", jobs=" << jobs << ")\n\n";

  // Every (rate, topology) point is an independent simulation: build the
  // whole grid, measure it in parallel, print in order.
  std::vector<noc::SweepPoint> points;
  for (double rate = step; rate <= max_rate + 1e-9; rate += step) {
    noc::SweepPoint mesh;
    mesh.net.topology = "mesh";
    mesh.net.width = mesh.net.height = size;
    mesh.net.seed = 101;
    mesh.pattern = "uniform";
    mesh.rate = rate;
    mesh.run.warmup_cycles = 1500;
    mesh.run.measure_cycles = 5000;
    mesh.run.drain_limit = 30000;

    noc::SweepPoint torus = mesh;
    torus.net.topology = "torus";
    points.push_back(mesh);
    points.push_back(torus);
  }
  const auto results = noc::measure_points(points, jobs);

  util::Table table({"offered", "mesh_accepted", "mesh_latency",
                     "torus_accepted", "torus_latency"});
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const auto& m = results[i];
    const auto& t = results[i + 1];
    table.row()
        .cell(points[i].rate, 3)
        .cell(m.stats.accepted_rate, 4)
        .cell(m.stats.avg_latency, 1)
        .cell(t.stats.accepted_rate, 4)
        .cell(t.stats.avg_latency, 1);
  }
  table.print(std::cout);
  std::cout << "\nshape check: accepted tracks offered until the knee, then "
               "plateaus; torus knee is to the right of mesh.\n";
  return 0;
}
