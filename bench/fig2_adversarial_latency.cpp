// F2: controller behaviour under adversarial spatial patterns (transpose,
// hotspot) across the load range, including the heuristic baseline.
// Expected shape: same ordering as F1 but with earlier saturation; DRL keeps
// tracking static-max latency and stays ahead of the heuristic on power.
#include <iostream>

#include "bench_common.h"
#include "util/config.h"

using namespace drlnoc;

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const int episodes = cfg.get("episodes", 120);
  const int size = cfg.get("size", 4);

  // Train once on a pattern-and-load ladder.
  core::NocEnvParams train_ep;
  train_ep.net.width = train_ep.net.height = size;
  train_ep.net.seed = 33;
  train_ep.epoch_cycles = 512;
  train_ep.epochs_per_episode = 36;
  train_ep.phases = {{"transpose", 0.02, 4e3, "bernoulli"},
                     {"transpose", 0.08, 4e3, "bernoulli"},
                     {"hotspot", 0.03, 4e3, "burst"},
                     {"hotspot", 0.07, 4e3, "burst"},
                     {"uniform", 0.005, 4e3, "bernoulli"}};
  core::NocConfigEnv train_env(train_ep);
  auto agent = bench::train_agent(train_env, episodes);
  const double power_ref = train_env.power_ref_mw();

  std::cout << "F2: adversarial-pattern latency (mesh " << size << "x" << size
            << ")\n\n";

  for (const char* pattern : {"transpose", "hotspot"}) {
    std::cout << "pattern: " << pattern << "\n";
    util::Table t({"offered", "drl_lat", "drl_mW", "heur_lat", "heur_mW",
                   "max_lat", "max_mW", "min_lat"});
    for (double rate : {0.02, 0.05, 0.08}) {
      core::NocEnvParams ep = train_ep;
      ep.phases = {{pattern, rate, 1e6,
                    std::string(pattern) == "hotspot" ? "burst" : "bernoulli"}};
      ep.epochs_per_episode = 20;
      ep.reward.power_ref_mw = power_ref;
      core::NocConfigEnv env(ep);

      core::DrlController drl(env.actions(), *agent);
      core::HeuristicParams hp;
      hp.num_nodes = size * size;
      core::HeuristicController heuristic(env.actions(), hp);
      auto smax = core::StaticController::maximal(env.actions());
      auto smin = core::StaticController::minimal(env.actions());

      const auto rd = core::evaluate(env, drl);
      const auto rh = core::evaluate(env, heuristic);
      const auto rx = core::evaluate(env, *smax);
      const auto rn = core::evaluate(env, *smin);
      t.row()
          .cell(rate, 2)
          .cell(rd.mean_latency, 1)
          .cell(rd.mean_power_mw, 1)
          .cell(rh.mean_latency, 1)
          .cell(rh.mean_power_mw, 1)
          .cell(rx.mean_latency, 1)
          .cell(rx.mean_power_mw, 1)
          .cell(rn.mean_latency, 1);
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "shape check: DRL latency ~ static-max at lower power; "
               "heuristic lags on power or latency; static-min saturates "
               "first.\n";
  return 0;
}
