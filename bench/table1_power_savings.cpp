// T1: per-pattern power & EDP savings of DRL self-configuration vs the
// static worst-case configuration, and the latency penalty vs static-min.
// One agent is trained on a pattern-mixed workload, then evaluated on each
// pattern separately.
// Expected shape: double-digit power savings vs static-max at small latency
// cost; static-min's latency is orders of magnitude worse.
#include <iostream>

#include "bench_common.h"
#include "util/config.h"

using namespace drlnoc;

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const int episodes = cfg.get("episodes", 150);
  const int size = cfg.get("size", 4);
  const double rate = cfg.get("rate", 0.06);

  // Train on a mix so the agent generalizes across spatial patterns. Each
  // phase alternates with an idle window (the saving opportunity).
  core::NocEnvParams ep;
  ep.net.width = ep.net.height = size;
  ep.net.seed = 42;
  ep.epoch_cycles = 512;
  ep.epochs_per_episode = 48;
  ep.phases = {{"uniform", 0.005, 4e3, "bernoulli"},
               {"uniform", rate, 4e3, "bernoulli"},
               {"transpose", rate, 4e3, "bernoulli"},
               {"hotspot", rate * 0.8, 4e3, "burst"},
               {"bitcomp", rate, 4e3, "bernoulli"}};
  core::NocConfigEnv train_env(ep);
  auto agent = bench::train_agent(train_env, episodes);
  const double power_ref = train_env.power_ref_mw();

  std::cout << "T1: power & EDP savings per traffic pattern (mesh " << size
            << "x" << size << ", rate " << rate << ")\n\n";
  util::Table t({"pattern", "drl_lat", "max_lat", "min_lat", "drl_mW",
                 "max_mW", "power_save%", "drl_reward", "max_reward",
                 "min_lat_penalty_x"});

  for (const char* pattern : {"uniform", "transpose", "bitcomp", "hotspot"}) {
    core::NocEnvParams eval_ep = ep;
    // Alternate the pattern with idle windows: self-configuration's value
    // is exactly in riding that variation.
    eval_ep.phases = {{"uniform", 0.005, 4e3, "bernoulli"},
                      {pattern, rate, 4e3, "bernoulli"}};
    eval_ep.reward.power_ref_mw = power_ref;
    core::NocConfigEnv env(eval_ep);

    core::DrlController drl(env.actions(), *agent);
    auto smax = core::StaticController::maximal(env.actions());
    auto smin = core::StaticController::minimal(env.actions());
    const auto rd = core::evaluate(env, drl);
    const auto rx = core::evaluate(env, *smax);
    const auto rn = core::evaluate(env, *smin);

    const double power_save =
        100.0 * (1.0 - rd.mean_power_mw / rx.mean_power_mw);
    const double min_penalty =
        rn.mean_latency / std::max(1.0, rd.mean_latency);
    t.row()
        .cell(pattern)
        .cell(rd.mean_latency, 1)
        .cell(rx.mean_latency, 1)
        .cell(rn.mean_latency, 1)
        .cell(rd.mean_power_mw, 1)
        .cell(rx.mean_power_mw, 1)
        .cell(power_save, 1)
        .cell(rd.total_reward, 1)
        .cell(rx.total_reward, 1)
        .cell(min_penalty, 1);
  }
  t.print(std::cout);
  std::cout << "\nshape check: positive double-digit power savings and a "
               "better reward than static-max on every pattern (the reward "
               "tolerates a bounded latency increase in exchange); "
               "static-min latency penalty >> 1x.\n";
  return 0;
}
