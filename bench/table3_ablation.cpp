// T3: agent & reward ablation on the standard phased workload:
//   * DQN vs Double-DQN vs prioritized replay vs tabular Q-learning
//   * reward weight sweep (power weight 0.5 / 1.0 / 2.0)
// Expected shape: all deep variants land in the same band and beat tabular;
// raising the power weight trades latency for lower power.
#include <iostream>

#include "bench_common.h"
#include "rl/qtable.h"
#include "util/config.h"

using namespace drlnoc;

namespace {

core::NocEnvParams base_env(int size) {
  core::NocEnvParams ep;
  ep.net.width = ep.net.height = size;
  ep.net.seed = 42;
  ep.epoch_cycles = 512;
  ep.epochs_per_episode = 32;
  return ep;
}

/// Tabular Q-learning baseline with the same interaction protocol.
class QTableController : public core::Controller {
 public:
  explicit QTableController(rl::QTableAgent& agent) : agent_(agent) {}
  std::string name() const override { return "tabular-q"; }
  int decide(const noc::EpochStats&, const rl::State& state) override {
    return agent_.act_greedy(state);
  }

 private:
  rl::QTableAgent& agent_;
};

void train_qtable(core::NocConfigEnv& env, rl::QTableAgent& agent,
                  int episodes) {
  for (int ep = 0; ep < episodes; ++ep) {
    rl::State s = env.reset();
    bool done = false;
    while (!done) {
      const int a = agent.act(s);
      const rl::StepResult r = env.step(a);
      agent.observe(rl::Transition{s, a, r.reward, r.next_state, r.done});
      s = r.next_state;
      done = r.done;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const int episodes = cfg.get("episodes", 120);
  const int size = cfg.get("size", 4);

  std::cout << "T3: ablation (mesh " << size << "x" << size << ", " << episodes
            << " training episodes each)\n\n";

  util::Table t(bench::result_headers());

  // --- agent variants -------------------------------------------------------
  struct Variant {
    std::string label;
    bool double_dqn;
    bool prioritized;
    bool dueling = false;
    int n_step = 1;
  };
  for (const Variant& v :
       {Variant{"dqn", false, false}, Variant{"double-dqn", true, false},
        Variant{"ddqn+per", true, true},
        Variant{"ddqn+dueling", true, false, true},
        Variant{"ddqn+3step", true, false, false, 3}}) {
    core::NocConfigEnv env(base_env(size));
    rl::DqnParams dp = bench::standard_dqn(
        static_cast<std::uint64_t>(episodes) * 32);
    dp.double_dqn = v.double_dqn;
    dp.prioritized = v.prioritized;
    dp.dueling = v.dueling;
    dp.n_step = v.n_step;
    rl::DqnAgent agent(env.state_size(), env.num_actions(), dp);
    core::TrainParams tp;
    tp.episodes = episodes;
    tp.eval_every = 0;
    core::train_dqn(env, agent, tp);
    core::DrlController drl(env.actions(), agent, v.label);
    bench::result_row(t, core::evaluate(env, drl));
  }

  // --- tabular baseline -----------------------------------------------------
  {
    core::NocConfigEnv env(base_env(size));
    rl::QTableParams qp;
    qp.bins_per_feature = 3;
    qp.epsilon_decay_steps = static_cast<std::uint64_t>(episodes) * 24;
    rl::QTableAgent agent(env.state_size(), env.num_actions(), qp);
    train_qtable(env, agent, episodes);
    QTableController controller(agent);
    bench::result_row(t, core::evaluate(env, controller));
  }

  t.print(std::cout);

  // --- reward weight sweep --------------------------------------------------
  std::cout << "\nreward-weight sweep (Double-DQN):\n";
  util::Table w({"w_power", "latency", "power_mW", "EDP(1e6pJcyc)"});
  for (double w_power : {0.5, 1.0, 2.0}) {
    core::NocEnvParams ep = base_env(size);
    ep.reward.w_power = w_power;
    core::NocConfigEnv env(ep);
    auto agent = bench::train_agent(env, episodes);
    core::DrlController drl(env.actions(), *agent);
    const auto r = core::evaluate(env, drl);
    w.row()
        .cell(w_power, 1)
        .cell(r.mean_latency, 1)
        .cell(r.mean_power_mw, 1)
        .cell(r.mean_edp / 1e6, 3);
  }
  w.print(std::cout);
  std::cout << "\nshape check: deep variants cluster together and beat "
               "tabular; higher power weight lowers power at some latency "
               "cost.\n";
  return 0;
}
