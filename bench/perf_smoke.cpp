// perf_smoke: headless hot-path throughput suite. Runs the fig6 substrate
// benchmarks without google-benchmark and emits a flat JSON metrics block,
// seeding the tracked BENCH_*.json trajectory (see README "Performance").
//
//   ./bench/perf_smoke                           # print JSON to stdout
//   ./bench/perf_smoke out=BENCH.json            # also write to a file
//   ./bench/perf_smoke baseline=BENCH_PR2.json   # add baseline + speedup
//   ./bench/perf_smoke scale=0.2                 # quicker, noisier run
//
// Every metric is a rate (higher is better), measured as the best of
// `repeats` timed windows so one scheduler hiccup cannot poison the number.
// The baseline file may be any previous perf_smoke output (or a tracked
// BENCH_*.json); its "metrics" object is compared key-by-key.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_json.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "noc/network.h"
#include "noc/workload.h"
#include "rl/dqn.h"
#include "util/config.h"

namespace {

using Clock = std::chrono::steady_clock;
using drlnoc::util::Rng;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-of-`repeats` rate (items/sec) of `body`, which must perform `items`
/// units of work per call. One untimed call warms caches and allocators.
double measure_rate(std::uint64_t items, int repeats,
                    const std::function<void()>& body) {
  body();  // warm-up: steady-state capacities, code + data caches
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    body();
    const double dt = seconds_since(t0);
    if (dt > 0.0) best = std::max(best, static_cast<double>(items) / dt);
  }
  return best;
}

/// Router cycles per second at a uniform injection `rate` (packets per node
/// per core cycle). 0.08 saturates every size (the historical metrics keep
/// it for comparability); the `_low`/`_med` variants run below saturation,
/// where the event-driven core skips quiescent routers (see docs/BENCHMARKS.md).
double bench_network(int size, int vcs, double rate, std::uint64_t cycles,
                     int repeats) {
  drlnoc::noc::NetworkParams p;
  p.width = p.height = size;
  p.initial_config.active_vcs = vcs;
  p.seed = 1;
  drlnoc::noc::Network net(p);
  drlnoc::noc::SteadyWorkload w =
      drlnoc::noc::SteadyWorkload::make(net.topology(), "uniform", rate);
  return measure_rate(cycles, repeats, [&] {
    for (std::uint64_t i = 0; i < cycles; ++i) net.step(&w);
  });
}

double bench_mlp_forward(std::size_t batch, std::uint64_t iters, int repeats) {
  Rng rng(1);
  drlnoc::nn::Mlp mlp({20, 64, 64, 36}, drlnoc::nn::Activation::kReLU, rng);
  drlnoc::nn::Matrix x(batch, 20);
  for (double& v : x.raw()) v = rng.uniform(-1.0, 1.0);
  double sink = 0.0;
  const double rate = measure_rate(iters * batch, repeats, [&] {
    for (std::uint64_t i = 0; i < iters; ++i) {
      sink += mlp.forward(x).at(0, 0);
    }
  });
  if (sink == 42.125) std::cerr << "";  // defeat dead-code elimination
  return rate;
}

/// The allocation-free workspace path (what act()/learn() actually run);
/// the plain `mlp_forward_rows_*` metrics keep measuring the value API for
/// comparability with older baselines.
double bench_mlp_forward_ws(std::size_t batch, std::uint64_t iters,
                            int repeats) {
  Rng rng(1);
  drlnoc::nn::Mlp mlp({20, 64, 64, 36}, drlnoc::nn::Activation::kReLU, rng);
  drlnoc::nn::Matrix x(batch, 20);
  for (double& v : x.raw()) v = rng.uniform(-1.0, 1.0);
  double sink = 0.0;
  const double rate = measure_rate(iters * batch, repeats, [&] {
    for (std::uint64_t i = 0; i < iters; ++i) {
      sink += mlp.infer_ws(x).at(0, 0);
    }
  });
  if (sink == 42.125) std::cerr << "";
  return rate;
}

double bench_mlp_train(std::uint64_t iters, int repeats) {
  Rng rng(2);
  drlnoc::nn::Mlp mlp({20, 64, 64, 36}, drlnoc::nn::Activation::kReLU, rng);
  drlnoc::nn::Adam opt(1e-3);
  drlnoc::nn::Matrix x(32, 20), t(32, 36);
  for (double& v : x.raw()) v = rng.uniform(-1.0, 1.0);
  for (double& v : t.raw()) v = rng.uniform(-1.0, 1.0);
  return measure_rate(iters, repeats, [&] {
    for (std::uint64_t i = 0; i < iters; ++i) {
      mlp.zero_grads();
      const drlnoc::nn::LossResult lr = drlnoc::nn::mse_loss(mlp.forward(x), t);
      mlp.backward(lr.grad);
      opt.step(mlp.params(), mlp.grads());
    }
  });
}

double bench_dqn_learn(std::uint64_t iters, int repeats) {
  drlnoc::rl::DqnParams p;
  p.hidden = {64, 64};
  p.min_replay = 64;
  p.replay_capacity = 4096;
  drlnoc::rl::DqnAgent agent(20, 36, p);
  Rng rng(4);
  drlnoc::rl::Transition t;
  t.state.assign(20, 0.0);
  t.next_state.assign(20, 0.0);
  auto observe_one = [&] {
    for (double& v : t.state) v = rng.uniform();
    for (double& v : t.next_state) v = rng.uniform();
    t.action = static_cast<int>(rng.below(36));
    t.reward = -rng.uniform();
    (void)agent.observe(t);
  };
  // Fill replay past min_replay so every timed observe() is a learn step.
  for (int i = 0; i < 128; ++i) observe_one();
  return measure_rate(iters, repeats, [&] {
    for (std::uint64_t i = 0; i < iters; ++i) observe_one();
  });
}

}  // namespace

int main(int argc, char** argv) {
  // from_args skips argv[0] itself (program-name slot); passing argv + 1
  // here used to silently drop the *first* key=value argument.
  const drlnoc::util::Config cfg = drlnoc::util::Config::from_args(argc, argv);
  drlnoc::util::init_log(cfg.get("log", std::string()));
  const double scale = cfg.get("scale", 1.0);
  const int repeats = cfg.get("repeats", 3);
  const auto n = [&](double base) {
    return static_cast<std::uint64_t>(std::max(1.0, base * scale));
  };

  // Read the baseline before the (minutes-long) timed runs so a bad path
  // fails fast instead of after the whole suite.
  std::map<std::string, double> baseline;
  if (cfg.has("baseline")) {
    const std::string path = cfg.get("baseline", std::string());
    baseline = drlnoc::bench::read_baseline_metrics(path);
    if (baseline.empty()) {
      LOG_WARN << "perf_smoke: baseline " << path
               << " yielded no metrics; speedup block will be omitted";
    }
  }

  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("net_step_4x4_vc4",
                       bench_network(4, 4, 0.08, n(20000), repeats));
  metrics.emplace_back("net_step_8x8_vc4",
                       bench_network(8, 4, 0.08, n(6000), repeats));
  metrics.emplace_back("net_step_16x16_vc4",
                       bench_network(16, 4, 0.08, n(1500), repeats));
  metrics.emplace_back("net_step_16x16_vc4_low",
                       bench_network(16, 4, 0.005, n(12000), repeats));
  metrics.emplace_back("net_step_16x16_vc4_med",
                       bench_network(16, 4, 0.01, n(8000), repeats));
  metrics.emplace_back("net_step_32x32_vc4_low",
                       bench_network(32, 4, 0.005, n(3000), repeats));
  metrics.emplace_back("net_step_32x32_vc4_med",
                       bench_network(32, 4, 0.01, n(2000), repeats));
  metrics.emplace_back("mlp_forward_rows_b1",
                       bench_mlp_forward(1, n(20000), repeats));
  metrics.emplace_back("mlp_forward_rows_b32",
                       bench_mlp_forward(32, n(2000), repeats));
  metrics.emplace_back("mlp_forward_ws_rows_b1",
                       bench_mlp_forward_ws(1, n(20000), repeats));
  metrics.emplace_back("mlp_forward_ws_rows_b32",
                       bench_mlp_forward_ws(32, n(2000), repeats));
  metrics.emplace_back("mlp_train_steps_b32", bench_mlp_train(n(1000), repeats));
  metrics.emplace_back("dqn_learn_steps", bench_dqn_learn(n(800), repeats));

  drlnoc::bench::write_metrics_json(std::cout, "perf_smoke", metrics, baseline);
  if (cfg.has("out")) {
    std::ofstream out(cfg.get("out", std::string()));
    drlnoc::bench::write_metrics_json(out, "perf_smoke", metrics, baseline);
  }
  return 0;
}
