// T4: scalability of DRL self-configuration across mesh sizes and
// topologies. Larger networks use fewer training episodes (wall-clock
// budget), which the table notes — the *shape* (DRL saves power at ~static-
// max latency) must hold at every size.
#include <iostream>

#include "bench_common.h"
#include "util/config.h"

using namespace drlnoc;

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);

  std::cout << "T4: scalability across sizes and topologies (standard "
               "phased workload)\n\n";
  util::Table t({"network", "episodes", "drl_lat", "max_lat", "drl_mW",
                 "max_mW", "power_save%", "drl_reward", "max_reward"});

  struct Case {
    std::string topology;
    int width;
    int height;
    int episodes;
    bool two_class;
  };
  const std::vector<Case> cases = {
      {"mesh", 4, 4, cfg.get("episodes_4", 120), false},
      {"mesh", 8, 8, cfg.get("episodes_8", 40), false},
      {"mesh", 16, 16, cfg.get("episodes_16", 12), false},
      {"torus", 4, 4, cfg.get("episodes_t", 80), true},
      {"ring", 8, 1, cfg.get("episodes_r", 80), true},
  };

  for (const Case& c : cases) {
    core::NocEnvParams ep;
    ep.net.topology = c.topology;
    ep.net.width = c.width;
    ep.net.height = c.height;
    ep.net.seed = 42;
    ep.epoch_cycles = 512;
    ep.epochs_per_episode = 32;
    if (c.two_class) ep.actions = core::ActionSpace::standard_two_class();
    core::NocConfigEnv env(ep);

    auto agent = bench::train_agent(env, c.episodes);
    core::DrlController drl(env.actions(), *agent);
    auto smax = core::StaticController::maximal(env.actions());
    const auto rd = core::evaluate(env, drl);
    const auto rx = core::evaluate(env, *smax);
    const double save = 100.0 * (1.0 - rd.mean_power_mw / rx.mean_power_mw);

    const std::string name =
        c.topology +
        (c.topology == "ring" ? std::to_string(c.width * c.height)
                              : std::to_string(c.width) + "x" +
                                    std::to_string(c.height));
    t.row()
        .cell(name)
        .cell(static_cast<long long>(c.episodes))
        .cell(rd.mean_latency, 1)
        .cell(rx.mean_latency, 1)
        .cell(rd.mean_power_mw, 1)
        .cell(rx.mean_power_mw, 1)
        .cell(save, 1)
        .cell(rd.total_reward, 1)
        .cell(rx.total_reward, 1);
  }
  t.print(std::cout);
  std::cout << "\nshape check: power savings positive at every size and "
               "topology; latency stays in the static-max band (the 16x16 "
               "row trains on a reduced budget).\n";
  return 0;
}
