// T4: scalability of DRL self-configuration across mesh sizes and
// topologies. Larger networks use fewer training episodes (wall-clock
// budget), which the table notes — the *shape* (DRL saves power at ~static-
// max latency) must hold at every size.
//
// Each row (train + evaluate) is an independent task, so the whole table
// fans out over the experiment engine. A second section measures the engine
// itself: the static-config sweep at 1 worker vs N workers, with identical
// output and the wall-clock speedup printed.
//
// Modes:
//   table4_scalability                    # full paper table + engine scaling
//   table4_scalability --smoke            # reduced episode budget, no engine
//                                         # scaling section (CI-sized)
//   table4_scalability rows=32x32         # only rows whose name contains the
//                                         # substring (e.g. mesh32x32)
//   table4_scalability out=T4.json        # also write row metrics as JSON
#include <chrono>
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "bench_json.h"
#include "util/config.h"
#include "util/log.h"

using namespace drlnoc;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  // `--smoke` is a bare flag; strip it before the key=value parser.
  bool smoke = false;
  std::vector<const char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  const util::Config cfg =
      util::Config::from_args(static_cast<int>(args.size()), args.data());
  util::init_log(cfg.get("log", std::string()));
  smoke = cfg.get("smoke", smoke);
  const std::string rows_filter = cfg.get("rows", std::string());
  const core::ExperimentRunner runner = bench::runner_from(cfg);

  std::cout << "T4: scalability across sizes and topologies (standard "
               "phased workload, jobs=" << runner.jobs()
            << (smoke ? ", SMOKE budget" : "") << ")\n\n";
  util::Table t({"network", "episodes", "drl_lat", "max_lat", "drl_mW",
                 "max_mW", "power_save%", "drl_reward", "max_reward"});

  struct Case {
    std::string topology;
    int width;
    int height;
    int episodes;
    bool two_class;
  };
  // Larger fabrics get smaller training budgets (wall clock); the 32x32 row
  // exists at all because the event-driven network core skips quiescent
  // routers — cycle-stepping 1024 routers made it unaffordable.
  std::vector<Case> cases = {
      {"mesh", 4, 4, cfg.get("episodes_4", smoke ? 8 : 120), false},
      {"mesh", 8, 8, cfg.get("episodes_8", smoke ? 4 : 40), false},
      {"mesh", 16, 16, cfg.get("episodes_16", smoke ? 2 : 12), false},
      {"mesh", 32, 32, cfg.get("episodes_32", smoke ? 1 : 6), false},
      {"torus", 4, 4, cfg.get("episodes_t", smoke ? 6 : 80), true},
      {"ring", 8, 1, cfg.get("episodes_r", smoke ? 6 : 80), true},
  };
  auto case_name = [](const Case& c) {
    return c.topology +
           (c.topology == "ring" ? std::to_string(c.width * c.height)
                                 : std::to_string(c.width) + "x" +
                                       std::to_string(c.height));
  };
  if (!rows_filter.empty()) {
    std::erase_if(cases, [&](const Case& c) {
      return case_name(c).find(rows_filter) == std::string::npos;
    });
    if (cases.empty()) {
      LOG_ERROR << "table4: rows=" << rows_filter << " matches nothing";
      return 2;
    }
  }

  struct CaseResult {
    core::EpisodeResult drl, smax;
  };
  // One task per row: each trains its own agent in its own environment, so
  // rows share nothing and run concurrently.
  const auto results =
      runner.map<CaseResult>(static_cast<int>(cases.size()), [&](int i) {
        const Case& c = cases[static_cast<std::size_t>(i)];
        core::NocEnvParams ep;
        ep.net.topology = c.topology;
        ep.net.width = c.width;
        ep.net.height = c.height;
        ep.net.seed = 42;
        ep.epoch_cycles = 512;
        ep.epochs_per_episode = 32;
        if (c.two_class) ep.actions = core::ActionSpace::standard_two_class();
        core::NocConfigEnv env(ep);

        auto agent = bench::train_agent(env, c.episodes);
        core::DrlController drl(env.actions(), *agent);
        auto smax = core::StaticController::maximal(env.actions());
        CaseResult r;
        r.drl = core::evaluate(env, drl);
        r.smax = core::evaluate(env, *smax);
        return r;
      });

  std::vector<std::pair<std::string, double>> json_metrics;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    const CaseResult& r = results[i];
    const double save =
        100.0 * (1.0 - r.drl.mean_power_mw / r.smax.mean_power_mw);
    const std::string name = case_name(c);
    json_metrics.emplace_back(name + "_drl_latency", r.drl.mean_latency);
    json_metrics.emplace_back(name + "_smax_latency", r.smax.mean_latency);
    json_metrics.emplace_back(name + "_drl_power_mw", r.drl.mean_power_mw);
    json_metrics.emplace_back(name + "_smax_power_mw", r.smax.mean_power_mw);
    json_metrics.emplace_back(name + "_power_save_pct", save);
    t.row()
        .cell(name)
        .cell(static_cast<long long>(c.episodes))
        .cell(r.drl.mean_latency, 1)
        .cell(r.smax.mean_latency, 1)
        .cell(r.drl.mean_power_mw, 1)
        .cell(r.smax.mean_power_mw, 1)
        .cell(save, 1)
        .cell(r.drl.total_reward, 1)
        .cell(r.smax.total_reward, 1);
  }
  t.print(std::cout);
  std::cout << "\nshape check: power savings positive at every size and "
               "topology; latency stays in the static-max band (the 16x16 "
               "and 32x32 rows train on reduced budgets).\n\n";

  if (cfg.has("out")) {
    std::ofstream out(cfg.get("out", std::string()));
    bench::write_metrics_json(out, smoke ? "table4_smoke" : "table4",
                              json_metrics, {}, "mixed");
  }
  // Smoke runs exist for CI: rows only, no engine-scaling section.
  if (smoke) return 0;

  // ---- Engine scaling: the same sweep, serial vs parallel -----------------
  // sweep_static evaluates all static configs (36 on the standard space);
  // every config is an independent episode, so wall-clock should fall
  // roughly linearly with workers while the sorted results stay
  // bit-identical.
  core::NocEnvParams ep;
  ep.net.width = ep.net.height = cfg.get("sweep_size", 8);
  ep.net.seed = 42;
  ep.epoch_cycles = 512;
  ep.epochs_per_episode = cfg.get("sweep_epochs", 16);

  std::cout << "engine scaling: sweep_static over "
            << ep.actions.size() << " configs, mesh " << ep.net.width << "x"
            << ep.net.height << "\n";
  util::Table s({"jobs", "seconds", "speedup", "oracle_config",
                 "oracle_EDP(1e6)"});
  double serial_seconds = 0.0;
  std::vector<int> job_counts = {1};
  if (runner.jobs() > 1) job_counts.push_back(runner.jobs());
  for (int jobs : job_counts) {
    const core::ExperimentRunner r(jobs);
    const auto t0 = std::chrono::steady_clock::now();
    const auto sweep = core::sweep_static_parallel(ep, r);
    const double secs = seconds_since(t0);
    if (jobs == 1) serial_seconds = secs;
    s.row()
        .cell(static_cast<long long>(jobs))
        .cell(secs, 2)
        .cell(serial_seconds > 0.0 ? serial_seconds / secs : 1.0, 2)
        .cell(sweep.front().controller)
        .cell(sweep.front().mean_edp / 1e6, 3);
  }
  s.print(std::cout);
  std::cout << "\nshape check: identical oracle config and EDP at every jobs "
               "value; speedup approaches the worker count on idle "
               "machines.\n";
  return 0;
}
