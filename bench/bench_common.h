// Shared helpers for the experiment harnesses in bench/. Each binary prints
// one paper table/figure; these helpers keep the training and evaluation
// protocol identical across experiments.
#pragma once

#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/env_noc.h"
#include "core/parallel.h"
#include "core/trainer.h"
#include "obs/session.h"
#include "rl/dqn.h"
#include "scenario/runtime.h"
#include "util/config.h"
#include "util/table.h"

namespace drlnoc::bench {

/// Resolves the shared `--jobs N` flag (also accepted as `jobs=N`). The
/// default 0 means one worker per hardware thread. Every experiment is
/// bit-identical at any jobs value — the flag only buys wall-clock.
inline core::ExperimentRunner runner_from(const util::Config& cfg) {
  return core::ExperimentRunner(cfg.get("jobs", 0));
}

/// Clones a trained agent's policy network. Worker threads must not share
/// one DqnAgent (forward passes cache activations), so each parallel
/// evaluation task gets its own frozen copy; greedy actions are identical to
/// the original's because the weights are.
inline std::unique_ptr<rl::DqnAgent> clone_policy(const rl::DqnAgent& agent,
                                                  std::size_t state_size,
                                                  int num_actions) {
  std::stringstream weights;
  agent.save(weights);
  auto copy = std::make_unique<rl::DqnAgent>(state_size, num_actions,
                                             agent.params());
  copy->load_weights(weights);
  return copy;
}

/// DQN hyper-parameters used by every experiment (kept in one place so the
/// tables are comparable).
inline rl::DqnParams standard_dqn(std::uint64_t total_env_steps,
                                  std::uint64_t seed = 7) {
  rl::DqnParams dp;
  dp.hidden = {64, 64};
  dp.gamma = 0.9;
  dp.lr = 1e-3;
  dp.min_replay = 128;
  dp.batch_size = 32;
  dp.target_sync_every = 250;
  dp.double_dqn = true;
  dp.epsilon_decay_steps = total_env_steps * 3 / 4;
  dp.seed = seed;
  return dp;
}

/// Trains a fresh agent on `env` and returns it.
inline std::unique_ptr<rl::DqnAgent> train_agent(core::NocConfigEnv& env,
                                                 int episodes,
                                                 std::uint64_t seed = 7) {
  const auto steps =
      static_cast<std::uint64_t>(episodes) *
      static_cast<std::uint64_t>(env.params().epochs_per_episode);
  auto agent = std::make_unique<rl::DqnAgent>(
      env.state_size(), env.num_actions(), standard_dqn(steps, seed));
  core::TrainParams tp;
  tp.episodes = episodes;
  tp.eval_every = 0;
  core::train_dqn(env, *agent, tp);
  return agent;
}

/// Trains a fresh agent with the multi-actor collector
/// (core::train_dqn_parallel). `round` is part of the experiment definition
/// (changing it changes the curve, like a seed); `actors` only fans the
/// environment stepping across threads — results are bit-identical at any
/// value, so tables stay actors-invariant while training buys wall-clock.
inline std::unique_ptr<rl::DqnAgent> train_agent_parallel(
    const core::NocEnvParams& ep, int episodes, int round, int actors,
    std::uint64_t seed = 7) {
  const auto steps = static_cast<std::uint64_t>(episodes) *
                     static_cast<std::uint64_t>(ep.epochs_per_episode);
  core::NocConfigEnv probe(ep);  // observation/action dims only
  auto agent = std::make_unique<rl::DqnAgent>(
      probe.state_size(), probe.num_actions(), standard_dqn(steps, seed));
  core::ParallelTrainParams tp;
  tp.episodes = episodes;
  tp.round = round;
  tp.actors = actors;
  tp.eval_every = 0;
  core::train_dqn_parallel(ep, *agent, tp);
  return agent;
}

/// Mean + normal-approximation 95% CI of one metric across replica values.
/// Thin alias for core::summarize_metric (the implementation moved into the
/// library so the fleet harness and tests share it); kept so the table
/// benches read as before.
inline core::MetricSummary summarize_metric(const std::vector<double>& xs) {
  return core::summarize_metric(xs);
}

/// Honors `--trace-out=` / `--metrics-out=` / `--trace-sample=` on the table
/// benches: when any flag is set, runs `scenario` once more with the
/// observability taps attached and writes the artifacts. Runs AFTER the
/// measured comparisons so every timed/aggregated cell stays observer-free;
/// `duration_cap` bounds the extra run. Returns false when an artifact
/// could not be written (benches fold this into their exit code).
inline bool maybe_traced_run(const util::Config& cfg,
                             const scenario::Scenario& scenario,
                             double duration_cap = 20000.0) {
  obs::ObsSession session(obs::ObsOptions::from_config(cfg));
  if (!session.enabled()) return true;
  scenario.validate();
  auto net = scenario::build_network(scenario);
  auto workload = scenario::build_workload(scenario, net->topology());
  session.attach(*net);
  session.annotate_scenario(scenario);
  scenario::ScenarioRunParams rp;
  rp.cycle_limit = scenario.cycle_limit;
  rp.duration = scenario.duration > 0.0
                    ? std::min(scenario.duration, duration_cap)
                    : duration_cap;
  scenario::run_scenario(*net, *workload, rp);
  return session.finish();
}

/// Appends one controller-comparison row.
inline void result_row(util::Table& table, const core::EpisodeResult& r) {
  table.row()
      .cell(r.controller)
      .cell(r.total_reward, 2)
      .cell(r.mean_latency, 1)
      .cell(r.p95_latency, 1)
      .cell(r.mean_power_mw, 1)
      .cell(r.mean_edp / 1e6, 3)
      .cell(static_cast<long long>(r.backlog_end));
}

inline std::vector<std::string> result_headers() {
  return {"controller", "reward",       "latency", "p95",
          "power_mW",   "EDP(1e6pJcyc)", "backlog"};
}

}  // namespace drlnoc::bench
