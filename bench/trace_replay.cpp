// trace_replay: the trace subsystem's benchmark. Part one sweeps the
// rate-scale knob over generated task-graph traces (fig1-style: one
// independent simulation per point, fanned out over the experiment engine)
// and prints how dependency-gated completion time and latency respond to
// replay speed. Part two emits hot-path JSON metrics in the perf_smoke
// baseline-comparison format (bench_json.h), so the tracked BENCH_*.json
// trajectory covers trace generation, I/O, and replay.
//
//   ./bench/trace_replay                          # table + JSON to stdout
//   ./bench/trace_replay size=8 --jobs 4
//   ./bench/trace_replay scale=0.3 baseline=B.json out=BENCH_current.json
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "noc/network.h"
#include "trace/generators.h"
#include "trace/trace_io.h"
#include "trace/trace_workload.h"
#include "util/config.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace drlnoc;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-of-`repeats` rate (items/sec), perf_smoke-style: one untimed
/// warm-up call, then the best timed window.
double measure_rate(std::uint64_t items, int repeats,
                    const std::function<void()>& body) {
  body();
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    body();
    const double dt = seconds_since(t0);
    if (dt > 0.0) best = std::max(best, static_cast<double>(items) / dt);
  }
  return best;
}

trace::TraceReplayResult replay_once(const noc::NetworkParams& net_params,
                                     std::shared_ptr<const trace::Trace> t,
                                     double rate_scale,
                                     std::uint64_t cycle_limit) {
  noc::Network net(net_params);
  trace::TraceWorkloadParams tw;
  tw.rate_scale = rate_scale;
  trace::TraceWorkload workload(std::move(t), tw);
  return trace::run_trace_replay(net, workload, cycle_limit);
}

double bench_replay_cycles(const noc::NetworkParams& net_params,
                           const std::shared_ptr<const trace::Trace>& t,
                           int repeats) {
  // measure_rate's untimed warm-up call doubles as the cycle-count pass
  // (replay is deterministic, so every run consumes the same cycles).
  std::uint64_t cycles = 0;
  const auto body = [&] {
    cycles = replay_once(net_params, t, 1.0, 2000000).cycles;
  };
  body();
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = Clock::now();
    body();
    const double dt = seconds_since(t0);
    if (dt > 0.0) best = std::max(best, static_cast<double>(cycles) / dt);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const int size = cfg.get("size", 8);
  const double scale = cfg.get("scale", 1.0);  // work scale for the metrics
  const int repeats = cfg.get("repeats", 3);
  const int jobs = util::ThreadPool::resolve_jobs(cfg.get("jobs", 0));

  noc::NetworkParams net_params;
  net_params.width = net_params.height = size;
  net_params.seed = 1;
  const int nodes = size * size;

  trace::DnnPipelineParams dnn;
  dnn.nodes = nodes;
  dnn.layers = 6;
  dnn.tiles_per_layer = std::min(8, std::max(2, nodes / 8));
  dnn.batches = 6;
  const auto dnn_trace =
      std::make_shared<const trace::Trace>(trace::generate_dnn_pipeline(dnn));

  trace::AllToAllParams a2a;
  a2a.nodes = nodes;
  a2a.rounds = 3;
  const auto a2a_trace =
      std::make_shared<const trace::Trace>(trace::generate_alltoall(a2a));

  std::cout << "trace_replay: " << size << "x" << size << " mesh, dnn="
            << dnn_trace->records.size() << " rec, alltoall="
            << a2a_trace->records.size() << " rec (jobs=" << jobs << ")\n\n";

  // ---- Part 1: rate-scale sweep (dependency feedback vs replay speed) -----
  struct SweepTask {
    const char* name;
    std::shared_ptr<const trace::Trace> trace;
    double rate_scale;
  };
  std::vector<SweepTask> tasks;
  const std::vector<double> scales = {0.5, 1.0, 2.0, 4.0};
  for (double s : scales) tasks.push_back({"dnn", dnn_trace, s});
  for (double s : scales) tasks.push_back({"alltoall", a2a_trace, s});

  const auto results = util::parallel_map<trace::TraceReplayResult>(
      static_cast<int>(tasks.size()), jobs, [&](int i) {
        const SweepTask& task = tasks[static_cast<std::size_t>(i)];
        return replay_once(net_params, task.trace, task.rate_scale, 4000000);
      });

  util::Table t({"trace", "rate_scale", "core_cycles", "packets", "avg_lat",
                 "p95_lat", "energy_uJ", "complete"});
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto& r = results[i];
    t.row()
        .cell(tasks[i].name)
        .cell(tasks[i].rate_scale, 2)
        .cell(r.stats.core_cycles, 0)
        .cell(static_cast<long long>(r.stats.packets_received))
        .cell(r.stats.avg_latency, 1)
        .cell(r.stats.p95_latency, 1)
        .cell(r.stats.total_energy_pj() / 1e6, 2)
        .cell(r.completed ? "yes" : "NO");
  }
  t.print(std::cout);
  std::cout << "\ndependency gating makes completion sub-linear in "
               "rate_scale: past the fabric's capacity, extra replay speed "
               "just moves waiting from release times into the network.\n\n";

  // ---- Part 2: JSON hot-path metrics --------------------------------------
  const auto n = [&](double base) {
    return static_cast<std::uint64_t>(std::max(1.0, base * scale));
  };
  std::vector<std::pair<std::string, double>> metrics;

  // Generation rate (records/sec), on a fixed mid-size task graph.
  {
    trace::DnnPipelineParams gp = dnn;
    const std::uint64_t records =
        trace::generate_dnn_pipeline(gp).records.size();
    const std::uint64_t iters = n(50);
    metrics.emplace_back(
        "trace_gen_dnn_records",
        measure_rate(records * iters, repeats, [&] {
          for (std::uint64_t i = 0; i < iters; ++i) {
            (void)trace::generate_dnn_pipeline(gp);
          }
        }));
  }

  // Binary round-trip rate (records/sec through write + read).
  {
    const std::uint64_t iters = n(50);
    metrics.emplace_back(
        "trace_io_roundtrip_records",
        measure_rate(dnn_trace->records.size() * iters, repeats, [&] {
          for (std::uint64_t i = 0; i < iters; ++i) {
            std::stringstream buf;
            trace::TraceWriter::write_binary(buf, *dnn_trace);
            (void)trace::TraceReader::read_binary(buf);
          }
        }));
  }

  // Replay throughput (router cycles/sec) including dependency tracking.
  metrics.emplace_back("trace_replay_dnn_cps",
                       bench_replay_cycles(net_params, dnn_trace, repeats));
  metrics.emplace_back("trace_replay_a2a_cps",
                       bench_replay_cycles(net_params, a2a_trace, repeats));

  std::map<std::string, double> baseline;
  if (cfg.has("baseline")) {
    baseline = bench::read_baseline_metrics(cfg.get("baseline", std::string()));
  }
  bench::write_metrics_json(std::cout, "trace_replay", metrics, baseline);
  if (cfg.has("out")) {
    std::ofstream out(cfg.get("out", std::string()));
    bench::write_metrics_json(out, "trace_replay", metrics, baseline);
  }
  return 0;
}
