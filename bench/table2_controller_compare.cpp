// T2: the headline controller comparison on the standard phased workload —
// DRL vs heuristic vs oracle-static vs static-max vs static-min.
// Expected shape: DRL-best reward/EDP among online controllers; near or
// better than oracle-static; static-min unusable.
#include <iostream>

#include "bench_common.h"
#include "util/config.h"

using namespace drlnoc;

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const int episodes = cfg.get("episodes", 150);
  const int size = cfg.get("size", 4);

  core::NocEnvParams ep;
  ep.net.width = ep.net.height = size;
  ep.net.seed = 42;
  ep.epoch_cycles = 512;
  ep.epochs_per_episode = 48;
  core::NocConfigEnv env(ep);

  std::cout << "T2: controller comparison (mesh " << size << "x" << size
            << ", standard phased workload; power_ref = "
            << env.power_ref_mw() << " mW)\n\n";

  auto agent = bench::train_agent(env, episodes);

  util::Table t(bench::result_headers());

  core::DrlController drl(env.actions(), *agent);
  bench::result_row(t, core::evaluate(env, drl));

  core::HeuristicParams hp;
  hp.num_nodes = size * size;
  core::HeuristicController heuristic(env.actions(), hp);
  bench::result_row(t, core::evaluate(env, heuristic));

  const auto sweep = core::sweep_static(env);
  core::EpisodeResult oracle = sweep.front();
  oracle.controller = "oracle-" + oracle.controller;
  bench::result_row(t, oracle);

  auto smax = core::StaticController::maximal(env.actions());
  auto smin = core::StaticController::minimal(env.actions());
  bench::result_row(t, core::evaluate(env, *smax));
  bench::result_row(t, core::evaluate(env, *smin));

  t.print(std::cout);
  std::cout << "\nshape check: DRL beats heuristic and static-max on reward "
               "and EDP, approaches oracle-static, and avoids static-min's "
               "collapse.\n";
  return 0;
}
