// T2: the headline controller comparison on the standard phased workload —
// DRL vs heuristic vs oracle-static vs static-max vs static-min.
// Expected shape: DRL-best reward/EDP among online controllers; near or
// better than oracle-static; static-min unusable.
//
// The oracle sweep (36 static configs) and the multi-seed replication both
// fan out over the experiment engine; --jobs N bounds the worker count.
#include <iostream>

#include "bench_common.h"
#include "util/config.h"

using namespace drlnoc;

int main(int argc, char** argv) {
  const util::Config cfg = util::Config::from_args(argc, argv);
  const int episodes = cfg.get("episodes", 150);
  const int size = cfg.get("size", 4);
  const int replicas = cfg.get("replicas", 8);
  const core::ExperimentRunner runner = bench::runner_from(cfg);

  core::NocEnvParams ep;
  ep.net.width = ep.net.height = size;
  ep.net.seed = 42;
  ep.epoch_cycles = 512;
  ep.epochs_per_episode = 48;
  core::NocConfigEnv env(ep);

  std::cout << "T2: controller comparison (mesh " << size << "x" << size
            << ", standard phased workload; power_ref = "
            << env.power_ref_mw() << " mW; jobs = " << runner.jobs()
            << ")\n\n";

  auto agent = bench::train_agent(env, episodes);

  util::Table t(bench::result_headers());

  core::DrlController drl(env.actions(), *agent);
  bench::result_row(t, core::evaluate(env, drl));

  core::HeuristicParams hp;
  hp.num_nodes = size * size;
  core::HeuristicController heuristic(env.actions(), hp);
  bench::result_row(t, core::evaluate(env, heuristic));

  const auto sweep = core::sweep_static_parallel(ep, runner);
  core::EpisodeResult oracle = sweep.front();
  oracle.controller = "oracle-" + oracle.controller;
  bench::result_row(t, oracle);

  auto smax = core::StaticController::maximal(env.actions());
  auto smin = core::StaticController::minimal(env.actions());
  bench::result_row(t, core::evaluate(env, *smax));
  bench::result_row(t, core::evaluate(env, *smin));

  t.print(std::cout);
  std::cout << "\nshape check: DRL beats heuristic and static-max on reward "
               "and EDP, approaches oracle-static, and avoids static-min's "
               "collapse.\n\n";

  // ---- Multi-seed replication: is the headline robust to traffic seed? ----
  // Each replica evaluates one frozen policy on a fresh traffic seed
  // (base_seed + replica index); the engine runs replicas concurrently.
  std::cout << "replication over " << replicas
            << " traffic seeds (mean +/- 95% CI):\n";
  const std::size_t state_size = env.state_size();
  const int num_actions = env.num_actions();
  core::NocEnvParams rep = ep;
  rep.reward.power_ref_mw = env.power_ref_mw();  // comparable across seeds

  const auto drl_rep = core::evaluate_many(
      rep,
      [&](const core::NocConfigEnv& e) -> std::unique_ptr<core::Controller> {
        auto policy = bench::clone_policy(*agent, state_size, num_actions);
        return std::make_unique<core::OwningDrlController>(e.actions(),
                                                           std::move(policy));
      },
      replicas, runner);
  const auto max_rep = core::evaluate_many(
      rep,
      [](const core::NocConfigEnv& e) -> std::unique_ptr<core::Controller> {
        return core::StaticController::maximal(e.actions());
      },
      replicas, runner);

  util::Table r({"controller", "reward", "ci95", "latency", "ci95",
                 "power_mW", "ci95"});
  const auto rep_row = [&r](const std::string& name,
                            const core::ReplicationResult& res) {
    r.row()
        .cell(name)
        .cell(res.reward.mean, 2)
        .cell(res.reward.ci95, 2)
        .cell(res.latency.mean, 1)
        .cell(res.latency.ci95, 1)
        .cell(res.power_mw.mean, 1)
        .cell(res.power_mw.ci95, 1);
  };
  rep_row("drl", drl_rep);
  rep_row("static-max", max_rep);
  r.print(std::cout);
  std::cout << "\nshape check: DRL's reward advantage over static-max "
               "exceeds the CIs, so T2 is not a single-seed artifact.\n";
  return 0;
}
