// F6: microbenchmarks (google-benchmark) for the substrate hot paths:
// simulator cycle throughput vs mesh size / VC count, NN forward/backward,
// replay buffer operations, and the DQN learn step.
#include <benchmark/benchmark.h>

#include "nn/layers.h"
#include "nn/loss.h"
#include "noc/network.h"
#include "noc/workload.h"
#include "rl/dqn.h"
#include "rl/replay.h"

using namespace drlnoc;

namespace {

void BM_NetworkStep(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  const int vcs = static_cast<int>(state.range(1));
  noc::NetworkParams p;
  p.width = p.height = size;
  p.initial_config.active_vcs = vcs;
  p.seed = 1;
  noc::Network net(p);
  noc::SteadyWorkload w =
      noc::SteadyWorkload::make(net.topology(), "uniform", 0.08);
  for (auto _ : state) {
    net.step(&w);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(net.num_nodes()));
  state.counters["flits"] = static_cast<double>(net.total_flits_ejected());
}
BENCHMARK(BM_NetworkStep)
    ->Args({4, 4})
    ->Args({8, 1})
    ->Args({8, 4})
    ->Args({16, 4});

void BM_MlpForward(benchmark::State& state) {
  util::Rng rng(1);
  nn::Mlp mlp({20, 64, 64, 36}, nn::Activation::kReLU, rng);
  nn::Matrix x(static_cast<std::size_t>(state.range(0)), 20);
  for (double& v : x.raw()) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MlpForward)->Arg(1)->Arg(32);

void BM_MlpTrainStep(benchmark::State& state) {
  util::Rng rng(2);
  nn::Mlp mlp({20, 64, 64, 36}, nn::Activation::kReLU, rng);
  nn::Adam opt(1e-3);
  nn::Matrix x(32, 20), t(32, 36);
  for (double& v : x.raw()) v = rng.normal();
  for (double& v : t.raw()) v = rng.normal();
  for (auto _ : state) {
    mlp.zero_grads();
    const nn::LossResult lr = nn::mse_loss(mlp.forward(x), t);
    mlp.backward(lr.grad);
    opt.step(mlp.params(), mlp.grads());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_MlpTrainStep);

void BM_ReplayPushSample(benchmark::State& state) {
  const bool prioritized = state.range(0) != 0;
  util::Rng rng(3);
  rl::Transition t;
  t.state.assign(20, 0.5);
  t.next_state.assign(20, 0.5);
  if (prioritized) {
    rl::PrioritizedReplayBuffer buf(20000);
    for (int i = 0; i < 1000; ++i) buf.push(t);
    for (auto _ : state) {
      buf.push(t);
      auto batch = buf.sample(32, rng);
      buf.update_priorities(batch.indices,
                            std::vector<double>(batch.indices.size(), 1.0));
      benchmark::DoNotOptimize(batch);
    }
  } else {
    rl::ReplayBuffer buf(20000);
    for (int i = 0; i < 1000; ++i) buf.push(t);
    for (auto _ : state) {
      buf.push(t);
      auto batch = buf.sample(32, rng);
      benchmark::DoNotOptimize(batch);
    }
  }
}
BENCHMARK(BM_ReplayPushSample)->Arg(0)->Arg(1);

void BM_DqnObserve(benchmark::State& state) {
  rl::DqnParams p;
  p.hidden = {64, 64};
  p.min_replay = 64;
  rl::DqnAgent agent(20, 36, p);
  util::Rng rng(4);
  rl::Transition t;
  t.state.assign(20, 0.0);
  t.next_state.assign(20, 0.0);
  for (auto _ : state) {
    for (double& v : t.state) v = rng.uniform();
    for (double& v : t.next_state) v = rng.uniform();
    t.action = static_cast<int>(rng.below(36));
    t.reward = -rng.uniform();
    benchmark::DoNotOptimize(agent.observe(t));
  }
}
BENCHMARK(BM_DqnObserve);

}  // namespace

BENCHMARK_MAIN();
