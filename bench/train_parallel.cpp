// Multi-actor training wall-clock bench (PR 10): times DQN training on the
// T6 QoS scenario three ways — the serial trainer (core::train_dqn), the
// multi-actor collector pinned to one worker (its overhead floor), and the
// collector at `actors=` workers — and emits the speedups in the tracked
// BENCH_*.json format (bench_json.h).
//
//   ./bench/train_parallel                     # full scale, actors=8
//   ./bench/train_parallel --smoke             # CI scale
//   ./bench/train_parallel actors=8 jobs=8 out=BENCH_PR10.json
//
// The collector's learning curve differs from the serial trainer's (rounds
// change the replay merge order — `round` is part of the experiment
// definition), so this compares wall clock only; bit-identity across
// `actors` values is pinned separately by tests/train_parallel_test.cpp.
// Timings are machine-dependent: refresh on an idle machine, best of
// `repeats` runs.
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "scenario/scenario.h"
#include "trace/generators.h"
#include "util/config.h"
#include "util/log.h"

using namespace drlnoc;

namespace {

/// Best-of-`repeats` wall-clock seconds of `fn`.
template <typename Fn>
double best_seconds(int repeats, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  // `--smoke` is a bare flag (no value); strip it before Config parsing.
  std::vector<const char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    const std::string tok = argv[i];
    if (tok == "--smoke" || tok == "smoke") {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  const util::Config cfg =
      util::Config::from_args(static_cast<int>(args.size()), args.data());
  util::init_log(cfg.get("log", std::string()));

  const int size = cfg.get("size", smoke ? 4 : 8);
  const int episodes = cfg.get("episodes", smoke ? 4 : 16);
  const int round = cfg.get("round", 8);
  const int actors = cfg.get("actors", 8);
  const int repeats = cfg.get("repeats", smoke ? 1 : 3);

  // The T6 scenario (table6_qos.cpp): latency-critical DNN pipeline over a
  // background sweep — the training workload whose wall clock this PR
  // targets.
  auto s = std::make_shared<scenario::Scenario>();
  s->name = "qos_dnn_vs_background";
  s->net.width = s->net.height = size;
  s->net.seed = 42;
  {
    scenario::TenantSpec dnn;
    dnn.name = "dnn";
    dnn.kind = scenario::WorkloadKind::kTrace;
    trace::DnnPipelineParams dp;
    dp.nodes = 16;
    dp.batches = smoke ? 2 : 4;
    dnn.trace = std::make_shared<const trace::Trace>(
        trace::generate_dnn_pipeline(dp));
    dnn.loop = true;
    dnn.nodes = scenario::parse_node_set("0-15", size * size);
    dnn.qos = scenario::QosClass::kLatencyCritical;
    dnn.p95_target = smoke ? 200.0 : 300.0;
    s->tenants.push_back(std::move(dnn));

    scenario::TenantSpec bg;
    bg.name = "background";
    bg.kind = scenario::WorkloadKind::kSteady;
    bg.pattern = "uniform";
    bg.rate = 0.05;
    bg.qos = scenario::QosClass::kBackground;
    s->tenants.push_back(std::move(bg));
  }
  s->duration = 1e6;

  core::NocEnvParams ep;
  ep.scenario = s;
  ep.net.seed = s->net.seed;
  ep.epoch_cycles = smoke ? 256 : 512;
  ep.epochs_per_episode = smoke ? 4 : 48;

  std::cout << "train_parallel: " << episodes << " episodes x "
            << ep.epochs_per_episode << " epochs on mesh " << size << "x"
            << size << " (round " << round << ", best of " << repeats
            << ")\n";

  const double serial_s = best_seconds(repeats, [&] {
    core::NocConfigEnv env(ep);
    bench::train_agent(env, episodes);
  });
  std::cout << "  serial (train_dqn):        " << util::fmt(serial_s, 2)
            << " s\n";
  const double par1_s = best_seconds(repeats, [&] {
    bench::train_agent_parallel(ep, episodes, round, /*actors=*/1);
  });
  std::cout << "  collector, 1 actor:        " << util::fmt(par1_s, 2)
            << " s\n";
  const double parN_s = best_seconds(repeats, [&] {
    bench::train_agent_parallel(ep, episodes, round, actors);
  });
  std::cout << "  collector, " << actors
            << " actors:       " << util::fmt(parN_s, 2) << " s\n"
            << "  speedup vs serial:         " << util::fmt(serial_s / parN_s, 2)
            << "x\n";

  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("build_host_threads",
                       static_cast<double>(
                           std::thread::hardware_concurrency()));
  metrics.emplace_back("train_serial_s", serial_s);
  metrics.emplace_back("train_actors1_s", par1_s);
  metrics.emplace_back("train_actors" + std::to_string(actors) + "_s", parN_s);
  metrics.emplace_back("speedup_actors1_vs_serial", serial_s / par1_s);
  metrics.emplace_back("speedup_actors" + std::to_string(actors) + "_vs_serial",
                       serial_s / parN_s);

  const std::string out_path = cfg.get("out", std::string());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      LOG_ERROR << "train_parallel: cannot write " << out_path;
      return 1;
    }
    bench::write_metrics_json(
        out, "train_parallel", metrics, {},
        "seconds (and dimensionless speedups)",
        "T6 QoS-scenario training wall clock: serial train_dqn vs the "
        "multi-actor collector. Speedup scales with build_host_threads — on "
        "a single-core host the collector's batched forwards (computed for "
        "every lane each step, exploring or not, so curves stay "
        "bit-identical at any actors count) cost wall clock instead of "
        "hiding behind parallel env stepping; expect >=3x at actors=8 on an "
        ">=8-thread machine. Refresh with: ./build/bench/train_parallel "
        "actors=8 out=BENCH_PR10.json");
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
