// T7: graceful degradation under deterministic fault injection — DRL
// (trained on the healthy fabric) vs the heuristic ladder vs static-max,
// all evaluated on the same two-tenant scenario under escalating fault
// severity: healthy, then rising transient link-fault rates, then a
// permanent link death on top. Reported per tenant: SLO hit rate and
// delivered throughput *retention* (throughput at this severity / the same
// controller's healthy throughput), plus fabric-level retry/loss/reroute
// accounting. Expected shape: every controller's retention decays with the
// fault rate, retries absorb transient corruption (packets_lost stays ~0
// until budgets exhaust), and the permanent-link level shows nonzero
// rerouted_hops with throughput largely retained.
//
// Replication fans out over the experiment engine; results (including the
// emitted JSON) are bit-identical at any --jobs value. `--smoke` shrinks
// everything for CI; `out=FILE.json` dumps the metrics via
// bench/bench_json.h.
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "noc/faults.h"
#include "scenario/scenario.h"
#include "util/config.h"
#include "util/log.h"

using namespace drlnoc;

namespace {

/// One severity step of the escalation: a label plus the fault model that
/// every controller is evaluated under at that step.
struct FaultLevel {
  std::string name;
  noc::FaultParams faults;
};

/// Escalation ladder: healthy -> transient-low -> transient-high ->
/// transient-high plus one permanent east link death near the fabric
/// centre. The permanent level exercises minimal-path rerouting on top of
/// the retry machinery. All levels share one fault seed so severity is the
/// only variable.
std::vector<FaultLevel> fault_levels(int size, double low, double high) {
  std::vector<FaultLevel> levels;
  levels.push_back({"healthy", {}});

  noc::FaultParams base;
  base.seed = 1009;
  base.retry_timeout = 32;
  base.retry_backoff = 2.0;
  base.retry_budget = 4;

  noc::FaultParams f = base;
  f.link_fault_rate = low;
  levels.push_back({"transient-low", f});

  f = base;
  f.link_fault_rate = high;
  levels.push_back({"transient-high", f});

  f = base;
  f.link_fault_rate = high;
  noc::FaultEvent dead;
  dead.kind = noc::FaultEvent::Kind::kLinkDown;
  dead.at_cycle = 0;
  dead.node = size + 1;  // (1,1): interior for size >= 3, east link exists
  dead.port = 1;         // kEast
  f.events.push_back(dead);
  levels.push_back({"link-dead", f});
  return levels;
}

/// Per-tenant mean + 95% CI over the replicas of one (controller, level)
/// cell, plus the fabric-level fault accounting averaged per replica.
struct CellCi {
  core::MetricSummary slo_hit_rate;
  core::MetricSummary p95;
  core::MetricSummary throughput;
};

std::vector<CellCi> tenant_cis(const core::ReplicationResult& rep,
                               std::size_t num_tenants) {
  std::vector<CellCi> out(num_tenants);
  for (std::size_t t = 0; t < num_tenants; ++t) {
    std::vector<double> slo, p95, thru;
    for (const core::Replica& r : rep.replicas) {
      const core::TenantEpisodeSummary& s = r.result.tenants[t];
      slo.push_back(s.slo_hit_rate);
      p95.push_back(s.p95_latency);
      thru.push_back(s.accepted_rate);
    }
    out[t].slo_hit_rate = bench::summarize_metric(slo);
    out[t].p95 = bench::summarize_metric(p95);
    out[t].throughput = bench::summarize_metric(thru);
  }
  return out;
}

struct FaultTotals {
  double retries = 0.0;        ///< mean per replica
  double packets_lost = 0.0;   ///< mean per replica
  double rerouted_hops = 0.0;  ///< mean per replica
};

FaultTotals fault_totals(const core::ReplicationResult& rep) {
  FaultTotals ft;
  if (rep.replicas.empty()) return ft;
  for (const core::Replica& r : rep.replicas) {
    ft.retries += static_cast<double>(r.result.retries);
    ft.packets_lost += static_cast<double>(r.result.packets_lost);
    ft.rerouted_hops += static_cast<double>(r.result.rerouted_hops);
  }
  const auto n = static_cast<double>(rep.replicas.size());
  ft.retries /= n;
  ft.packets_lost /= n;
  ft.rerouted_hops /= n;
  return ft;
}

}  // namespace

int main(int argc, char** argv) {
  // `--smoke` is a bare flag (no value); strip it before Config parsing.
  std::vector<const char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    const std::string tok = argv[i];
    if (tok == "--smoke" || tok == "smoke") {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  const util::Config cfg =
      util::Config::from_args(static_cast<int>(args.size()), args.data());
  util::init_log(cfg.get("log", std::string()));

  const int size = cfg.get("size", smoke ? 4 : 8);
  const int episodes = cfg.get("episodes", smoke ? 2 : 60);
  const int replicas = cfg.get("replicas", smoke ? 2 : 8);
  const double critical_rate = cfg.get("critical_rate", 0.03);
  const double bg_rate = cfg.get("bg_rate", 0.05);
  const double p95_target = cfg.get("p95_target", smoke ? 200.0 : 150.0);
  const double rate_low = cfg.get("fault_rate_low", 0.002);
  const double rate_high = cfg.get("fault_rate_high", 0.01);
  const core::ExperimentRunner runner = bench::runner_from(cfg);

  // --- the scenario: latency-critical service + background sweep ----------
  // Both tenants are steady injectors; faults are the experiment's only
  // source of disturbance, so throughput retention isolates degradation.
  auto s = std::make_shared<scenario::Scenario>();
  s->name = "faults_service_vs_background";
  s->net.width = s->net.height = size;
  s->net.seed = 42;
  {
    scenario::TenantSpec svc;
    svc.name = "service";
    svc.kind = scenario::WorkloadKind::kSteady;
    svc.pattern = "uniform";
    svc.rate = critical_rate;
    svc.qos = scenario::QosClass::kLatencyCritical;
    svc.p95_target = p95_target;
    s->tenants.push_back(std::move(svc));

    scenario::TenantSpec bg;
    bg.name = "background";
    bg.kind = scenario::WorkloadKind::kSteady;
    bg.pattern = "uniform";
    bg.rate = bg_rate;
    bg.qos = scenario::QosClass::kBackground;
    s->tenants.push_back(std::move(bg));
  }
  s->duration = 1e6;  // horizon for standalone runs; episodes bound RL use

  core::NocEnvParams ep;
  ep.scenario = s;
  ep.net.seed = s->net.seed;  // base of the per-replica seed stream
  ep.epoch_cycles = smoke ? 256 : 512;
  ep.epochs_per_episode = smoke ? 4 : 32;
  core::NocConfigEnv env(ep);

  const std::vector<FaultLevel> levels =
      fault_levels(size, rate_low, rate_high);

  std::cout << "T7: graceful degradation under faults (mesh " << size << "x"
            << size << "; service @" << critical_rate
            << " latency_critical p95<=" << p95_target
            << " + uniform background @" << bg_rate
            << "; transient rates " << rate_low << "/" << rate_high
            << ", link-dead node " << size + 1 << " east"
            << "; power_ref = " << env.power_ref_mw()
            << " mW; jobs = " << runner.jobs() << ")\n\n";

  // DRL trains once, on the healthy fabric — the fault levels then probe
  // how the frozen policy degrades, mirroring deployment (faults are not
  // in the training distribution).
  auto agent = bench::train_agent(env, episodes);

  struct Cell {
    std::string controller;
    std::string level;
    std::vector<CellCi> tenants;
    FaultTotals faults;
    double power_mw = 0.0;
  };
  std::vector<Cell> cells;

  const std::vector<std::string> controllers = {"drl", "heuristic",
                                                "static-max"};
  for (const FaultLevel& level : levels) {
    // Every controller at one severity shares one faulted scenario copy;
    // env construction re-validates it against the topology.
    auto sf = std::make_shared<scenario::Scenario>(*s);
    sf->faults = level.faults;
    core::NocEnvParams rep_ep = ep;
    rep_ep.scenario = sf;
    rep_ep.reward.power_ref_mw = env.power_ref_mw();

    for (const std::string& name : controllers) {
      core::ControllerFactory factory;
      if (name == "drl") {
        factory = [&](const core::NocConfigEnv& e)
            -> std::unique_ptr<core::Controller> {
          auto policy = bench::clone_policy(*agent, env.state_size(),
                                            env.num_actions());
          return std::make_unique<core::OwningDrlController>(
              e.actions(), std::move(policy));
        };
      } else if (name == "heuristic") {
        factory = [size](const core::NocConfigEnv& e)
            -> std::unique_ptr<core::Controller> {
          core::HeuristicParams hp;
          hp.num_nodes = size * size;
          return std::make_unique<core::HeuristicController>(e.actions(), hp);
        };
      } else {
        factory = [](const core::NocConfigEnv& e)
            -> std::unique_ptr<core::Controller> {
          return core::StaticController::maximal(e.actions());
        };
      }
      const core::ReplicationResult rep =
          core::evaluate_many(rep_ep, factory, replicas, runner);
      Cell cell;
      cell.controller = name;
      cell.level = level.name;
      cell.tenants = tenant_cis(rep, s->tenants.size());
      cell.faults = fault_totals(rep);
      cell.power_mw = rep.power_mw.mean;
      cells.push_back(std::move(cell));
    }
  }

  // Throughput retention: this cell's per-tenant delivered throughput over
  // the same controller's healthy-level throughput (1.0 at "healthy" by
  // construction; < 1 as faults bite).
  auto healthy_thru = [&](const std::string& controller, std::size_t t) {
    for (const Cell& c : cells) {
      if (c.controller == controller && c.level == "healthy") {
        return c.tenants[t].throughput.mean;
      }
    }
    return 0.0;
  };

  std::cout << "per-tenant metrics over " << replicas
            << " traffic seeds (mean +/- 95% CI):\n";
  util::Table tab({"level", "controller", "tenant", "slo_hit", "ci95", "p95",
                   "thru(pkt/node/cyc)", "retention", "retries", "lost",
                   "rerouted"});
  std::vector<std::pair<std::string, double>> metrics;
  for (const Cell& c : cells) {
    for (std::size_t t = 0; t < s->tenants.size(); ++t) {
      const bool critical = s->tenants[t].p95_target > 0.0;
      const double base = healthy_thru(c.controller, t);
      const double retention =
          base > 0.0 ? c.tenants[t].throughput.mean / base : 0.0;
      tab.row()
          .cell(c.level)
          .cell(c.controller)
          .cell(s->tenants[t].name)
          .cell(critical
                    ? util::fmt(100.0 * c.tenants[t].slo_hit_rate.mean, 1) +
                          "%"
                    : std::string("-"))
          .cell(critical
                    ? util::fmt(100.0 * c.tenants[t].slo_hit_rate.ci95, 1)
                    : std::string())
          .cell(c.tenants[t].p95.mean, 1)
          .cell(c.tenants[t].throughput.mean, 5)
          .cell(util::fmt(100.0 * retention, 1) + "%")
          .cell(t == 0 ? util::fmt(c.faults.retries, 1) : std::string())
          .cell(t == 0 ? util::fmt(c.faults.packets_lost, 1) : std::string())
          .cell(t == 0 ? util::fmt(c.faults.rerouted_hops, 1)
                       : std::string());
      const std::string key =
          c.level + "." + c.controller + "." + s->tenants[t].name;
      metrics.emplace_back(key + ".slo_hit_rate",
                           c.tenants[t].slo_hit_rate.mean);
      metrics.emplace_back(key + ".slo_hit_rate_ci95",
                           c.tenants[t].slo_hit_rate.ci95);
      metrics.emplace_back(key + ".p95", c.tenants[t].p95.mean);
      metrics.emplace_back(key + ".throughput",
                           c.tenants[t].throughput.mean);
      metrics.emplace_back(key + ".throughput_ci95",
                           c.tenants[t].throughput.ci95);
      metrics.emplace_back(key + ".retention", retention);
    }
    const std::string key = c.level + "." + c.controller;
    metrics.emplace_back(key + ".retries", c.faults.retries);
    metrics.emplace_back(key + ".packets_lost", c.faults.packets_lost);
    metrics.emplace_back(key + ".rerouted_hops", c.faults.rerouted_hops);
    metrics.emplace_back(key + ".power_mw", c.power_mw);
  }
  tab.print(std::cout);
  std::cout << "\nshape check: retention decays with the transient rate for "
               "every controller while retries absorb the corruption "
               "(packets_lost ~0 until budgets exhaust); the link-dead "
               "level adds nonzero rerouted_hops with throughput largely "
               "retained.\n";

  const std::string out_path = cfg.get("out", std::string());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      LOG_ERROR << "table7: cannot write " << out_path;
      return 1;
    }
    bench::write_metrics_json(out, "table7_faults", metrics, {},
                              "mixed (SLO hit fraction, core-cycle latency, "
                              "pkt/node/cycle throughput, retention "
                              "fraction, mean per-replica fault counts, "
                              "mW)");
    std::cout << "wrote " << out_path << "\n";
  }
  // Optional observability pass at the worst severity (after the measured
  // comparisons, so every table cell above is observer-free).
  scenario::Scenario traced = *s;
  traced.faults = levels.back().faults;
  return bench::maybe_traced_run(cfg, traced) ? 0 : 1;
}
