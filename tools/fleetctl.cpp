// fleetctl: generate, describe, run, resume, and score `.drlfs` scenario
// fleets (src/fleet/).
//
//   fleetctl describe spec=sweep.drlfs
//   fleetctl generate spec=sweep.drlfs out=DIR [count=N]
//   fleetctl run      spec=sweep.drlfs results=DIR [controller=...] ...
//   fleetctl resume   (alias of run — completed scenarios are skipped)
//   fleetctl score    spec=sweep.drlfs results=DIR out=scorecard.json ...
//
// A fleet run is sharded (shard=/shards=) and resumable: every scenario
// writes its own result file keyed by a content hash of (spec, index,
// controller, policy, schedule), so re-running after a kill — or running
// `resume` — skips completed work. `score` aggregates ALL result files into
// the scorecard JSON; the controller flags must match the run so the result
// keys agree.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "fleet/fleet.h"
#include "fleet/scenario_space.h"
#include "fleet/scorecard.h"
#include "obs/session.h"
#include "rl/policy_io.h"
#include "scenario/scenario_io.h"
#include "util/config.h"
#include "util/log.h"
#include "util/table.h"

using namespace drlnoc;

namespace {

constexpr const char* kUsage =
    "usage: fleetctl <describe|generate|run|resume|score> spec=X "
    "[key=value...]\n"
    "  describe spec=X\n"
    "  generate spec=X out=DIR [count=N]\n"
    "  run      spec=X results=DIR [controller=heuristic|static-max|\n"
    "           static-min|drl] [policy=FILE] [policy_pin=HEX16]\n"
    "           [epochs=N] [epoch_cycles=N]\n"
    "           [qos_features=0|1] [shard=I] [shards=N] [jobs=J]\n"
    "  resume   (alias of run; completed scenarios are skipped)\n"
    "  score    spec=X results=DIR out=FILE [worst=K] [--metrics-out=DIR]\n"
    "           plus the same controller flags as run (keys must match)\n"
    "Common: [--log=debug|info|warn|error|off] (or DRLNOC_LOG env var).\n"
    "Pass --help after a subcommand for details; the .drlfs format is\n"
    "specified in docs/FORMATS.md.\n";

int usage() {
  std::cerr << kUsage;
  return 2;
}

int help(const std::string& command) {
  if (command == "describe") {
    std::cout
        << "fleetctl describe spec=X\n"
           "Parse a .drlfs scenario-space spec (and its base scenario) and\n"
           "print the sweep axes, seed replicas, and total point count,\n"
           "plus the first few expanded point labels.\n";
  } else if (command == "generate") {
    std::cout
        << "fleetctl generate spec=X out=DIR [count=N]\n"
           "Expand the first N points (default 8) of the space into\n"
           "standalone .drlsc files under DIR, for inspection or for\n"
           "running individually with scenarioctl. Every point is always\n"
           "reproducible from (spec, index) alone; generated files are a\n"
           "convenience, not the source of truth.\n";
  } else if (command == "run" || command == "resume") {
    std::cout
        << "fleetctl run spec=X results=DIR [controller=...] [policy=FILE]\n"
           "            [policy_pin=HEX16] [epochs=N] [epoch_cycles=N]\n"
           "            [qos_features=0|1] [shard=I] [shards=N] [jobs=J]\n"
           "Evaluate the controller across this shard's slice of the\n"
           "space (index % shards == shard), one result file per scenario\n"
           "under DIR, in parallel across J jobs (results bit-identical at\n"
           "any J). Scenarios whose result file already exists are skipped,\n"
           "so a killed run resumes where it stopped — `resume` is the\n"
           "same command under the honest name. controller=drl requires\n"
           "policy=FILE (a DqnAgent::save artifact); policy_pin=HEX16\n"
           "refuses to run unless the policy's fingerprint (printed by\n"
           "scenarioctl train and by this command) matches, and every\n"
           "result file records the served version as policy_version=.\n"
           "qos_features=1 uses per-tenant QoS feature slices (the state\n"
           "size then depends on the tenant count — only for policies\n"
           "trained that way).\n";
  } else if (command == "score") {
    std::cout
        << "fleetctl score spec=X results=DIR out=FILE [worst=K]\n"
           "              [--metrics-out=DIR] [controller flags as in run]\n"
           "Aggregate every result file of the space into the scorecard\n"
           "JSON: per-QoS-class SLO hit rates and p95 distributions,\n"
           "aggregate metric summaries, degradation counters, and the\n"
           "worst-K scenarios by tenant SLO hit rate, named. The\n"
           "controller flags must match the run's so the result keys\n"
           "agree. With --metrics-out=DIR the worst-K scenarios are\n"
           "re-run serially with the metrics tap attached, writing\n"
           "per-router heatmap CSVs (worst-<index>_heatmap.csv) under\n"
           "DIR. Exit 0 when every point was scored, 3 when some results\n"
           "are missing (scorecard still written).\n";
  } else {
    std::cout << kUsage;
  }
  return 0;
}

bool wants_help(int argc, char** argv) {
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") return true;
  }
  return false;
}

fleet::ScenarioSpace load_space(const util::Config& cfg) {
  const std::string path = cfg.get("spec", std::string());
  if (path.empty()) {
    throw std::invalid_argument("fleetctl: spec=<file.drlfs> is required");
  }
  return fleet::ScenarioSpaceReader::read_file(path);
}

fleet::FleetParams params_from(const util::Config& cfg) {
  fleet::FleetParams p;
  p.controller = cfg.get("controller", p.controller);
  p.policy_file = cfg.get("policy", std::string());
  if (!p.policy_file.empty()) {
    std::ifstream in(p.policy_file, std::ios::binary);
    if (!in) {
      throw std::invalid_argument("fleetctl: cannot open policy file " +
                                  p.policy_file);
    }
    std::stringstream ss;
    ss << in.rdbuf();
    p.policy_blob = ss.str();
  }
  p.policy_pin = cfg.get("policy_pin", std::string());
  const long long cycles =
      cfg.get("epoch_cycles", static_cast<long long>(p.epoch_cycles));
  if (cycles <= 0) {
    throw std::invalid_argument("fleetctl: epoch_cycles must be > 0");
  }
  p.epoch_cycles = static_cast<std::uint64_t>(cycles);
  p.epochs = cfg.get("epochs", p.epochs);
  p.qos_features = cfg.get("qos_features", p.qos_features);
  p.results_dir = cfg.get("results", std::string());
  p.shard = cfg.get("shard", p.shard);
  p.shards = cfg.get("shards", p.shards);
  return p;
}

int cmd_describe(const util::Config& cfg) {
  const fleet::ScenarioSpace space = load_space(cfg);
  std::cout << "fleet spec: " << space.name << "\n"
            << "  base   " << space.base_file << "\n"
            << "  seeds  " << space.seeds << "\n"
            << "  points " << space.size() << "\n";
  if (!space.axes.empty()) {
    std::cout << "\n";
    util::Table tab({"axis", "key", "values"});
    for (std::size_t i = 0; i < space.axes.size(); ++i) {
      const fleet::SpaceAxis& axis = space.axes[i];
      std::string values;
      for (std::size_t k = 0; k < axis.values.size(); ++k) {
        if (k > 0) values += ",";
        values += axis.values[k];
      }
      tab.row().cell(static_cast<long long>(i)).cell(axis.key).cell(values);
    }
    tab.print(std::cout);
  }
  std::cout << "\nfirst points:\n";
  const std::size_t show = std::min<std::size_t>(space.size(), 4);
  for (std::size_t i = 0; i < show; ++i) {
    std::cout << "  " << space.point(i).label << "\n";
  }
  return 0;
}

int cmd_generate(const util::Config& cfg) {
  const fleet::ScenarioSpace space = load_space(cfg);
  const std::string out_dir = cfg.get("out", std::string());
  if (out_dir.empty()) {
    throw std::invalid_argument("fleetctl: out=<dir> is required");
  }
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    throw std::runtime_error("fleetctl: cannot create " + out_dir + ": " +
                             ec.message());
  }
  const std::size_t count = std::min<std::size_t>(
      space.size(), static_cast<std::size_t>(cfg.get("count", 8)));
  for (std::size_t i = 0; i < count; ++i) {
    fleet::ExpandedScenario point = space.expand(i);
    // Generated files sit in out_dir while trace/policy paths in the base
    // stay relative to the base scenario's directory; rewrite them so the
    // generated file loads standalone.
    for (scenario::TenantSpec& t : point.scenario.tenants) {
      if (!t.trace_file.empty() && t.trace_file.front() != '/' &&
          !space.base_dir.empty()) {
        t.trace_file = space.base_dir + "/" + t.trace_file;
      }
    }
    if (!point.scenario.controller.policy_file.empty() &&
        point.scenario.controller.policy_file.front() != '/' &&
        !space.base_dir.empty()) {
      point.scenario.controller.policy_file =
          space.base_dir + "/" + point.scenario.controller.policy_file;
    }
    const std::string path =
        out_dir + "/point-" + std::to_string(i) + ".drlsc";
    scenario::ScenarioWriter::write_file(path, point.scenario);
    std::cout << path << "  # " << point.label << "\n";
  }
  if (count < space.size()) {
    std::cout << "(" << (space.size() - count)
              << " more points not generated; raise count= or expand by "
                 "index with the fleet API)\n";
  }
  return 0;
}

int cmd_run(const util::Config& cfg) {
  const fleet::ScenarioSpace space = load_space(cfg);
  const fleet::FleetParams params = params_from(cfg);
  if (params.controller == "drl") {
    // Say which policy version this fleet serves before any work starts;
    // with policy_pin= a mismatch aborts inside run_fleet's first build.
    std::cout << "policy version "
              << rl::policy_fingerprint(params.policy_blob)
              << (params.policy_pin.empty() ? ""
                                            : " (pinned " + params.policy_pin +
                                                  ")")
              << "\n";
  }
  const core::ExperimentRunner runner(cfg.get("jobs", 0));
  const fleet::FleetRunOutcome outcome =
      fleet::run_fleet(space, params, runner);
  std::cout << "fleet '" << space.name << "': shard " << params.shard << "/"
            << params.shards << " owns " << outcome.owned << " of "
            << space.size() << " scenarios; ran " << outcome.ran
            << ", skipped " << outcome.skipped
            << " already-complete (jobs=" << runner.jobs() << ")\n";
  return 0;
}

int cmd_score(const util::Config& cfg) {
  const fleet::ScenarioSpace space = load_space(cfg);
  const fleet::FleetParams params = params_from(cfg);
  const std::string out_path = cfg.get("out", std::string());
  if (out_path.empty()) {
    throw std::invalid_argument("fleetctl: out=<scorecard.json> is required");
  }
  const std::vector<fleet::FleetScenarioResult> results =
      fleet::load_results(space, params);
  const fleet::Scorecard card = fleet::score_fleet(
      results, space.size(), space.name, cfg.get("worst", 4));
  {
    std::ofstream os(out_path);
    if (!os) {
      throw std::runtime_error("fleetctl: cannot write " + out_path);
    }
    fleet::write_scorecard_json(os, card);
  }
  std::cout << "scored " << card.scored << "/" << card.space_size
            << " scenarios -> " << out_path << "\n";
  for (const fleet::WorstEntry& w : card.worst) {
    std::cout << "  worst: " << w.label << " (min slo "
              << util::fmt(100.0 * w.min_slo_hit_rate, 1) << "%, p95 "
              << util::fmt(w.worst_p95, 1) << ")\n";
  }

  // Worst-k heatmap reruns: serial (the taps are single-threaded), one
  // metrics JSON + per-router heatmap CSV per worst scenario.
  const std::string metrics_dir = cfg.get("metrics-out", std::string());
  if (!metrics_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(metrics_dir, ec);
    if (ec) {
      throw std::runtime_error("fleetctl: cannot create " + metrics_dir +
                               ": " + ec.message());
    }
    for (const fleet::WorstEntry& w : card.worst) {
      obs::ObsOptions opts;
      opts.metrics_out =
          metrics_dir + "/worst-" + std::to_string(w.index) + ".json";
      obs::ObsSession session(opts);
      const fleet::ExpandedScenario point = space.expand(w.index);
      session.annotate_scenario(point.scenario);
      const int nodes =
          point.scenario.net.width * point.scenario.net.height;
      fleet::evaluate_scenario(point, params, session.recorder(),
                               session.metrics(nodes));
      if (!session.finish()) return 1;
      std::cout << "  heatmap: " << obs::heatmap_path_for(opts.metrics_out)
                << "\n";
    }
  }
  return card.missing == 0 ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    std::cout << kUsage;
    return 0;
  }
  if (wants_help(argc, argv)) return help(command);
  try {
    // Config::from_args skips its argv[0] slot; shift past the subcommand.
    const util::Config cfg = util::Config::from_args(argc - 1, argv + 1);
    util::init_log(cfg.get("log", std::string()));
    if (command == "describe") return cmd_describe(cfg);
    if (command == "generate") return cmd_generate(cfg);
    if (command == "run" || command == "resume") return cmd_run(cfg);
    if (command == "score") return cmd_score(cfg);
    LOG_ERROR << "fleetctl: unknown command '" << command << "'";
    return usage();
  } catch (const std::exception& e) {
    LOG_ERROR << "fleetctl: " << e.what();
    return 1;
  }
}
