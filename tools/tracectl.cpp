// tracectl: inspect, convert, generate, and replay application traces.
//
//   tracectl info file=app.drltrc [show=8]
//   tracectl stats file=app.drltrc [top=8]
//   tracectl convert in=app.drltrc out=app.drltrb
//   tracectl generate kind=dnn|allreduce|alltoall out=app.drltrc [nodes=16 ...]
//   tracectl replay file=app.drltrc [size=4] [topology=mesh] [scale=1.0]
//            [cycle_limit=1000000]
//
// The text format (.drltrc) and binary format (.drltrb) are documented in
// src/trace/trace_io.h; `generate` parameters mirror the structs in
// src/trace/generators.h (layers=, tiles=, batches=, rounds=, flits=,
// compute=, interval=).
#include <algorithm>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "noc/network.h"
#include "trace/generators.h"
#include "trace/trace_io.h"
#include "trace/trace_workload.h"
#include "util/config.h"
#include "util/log.h"
#include "util/table.h"

using namespace drlnoc;

namespace {

constexpr const char* kUsage =
    "usage: tracectl <info|stats|convert|generate|replay> key=value...\n"
    "  info     file=X [show=N]\n"
    "  stats    file=X [top=N]        (per-node histograms + "
    "dependency depth)\n"
    "  convert  in=X out=Y            (.drltrc text, .drltrb "
    "binary)\n"
    "  generate kind=dnn|allreduce|alltoall out=X [nodes=16]\n"
    "           [layers=4 tiles=4 batches=4 interval=64]  (dnn)\n"
    "           [rounds=N compute=C flits=F start=T]\n"
    "  replay   file=X [size=4] [topology=mesh] [scale=1.0]\n"
    "           [cycle_limit=1000000]\n"
    "Pass --help after a subcommand for its full option list; formats are\n"
    "specified in docs/FORMATS.md.\n";

int usage() {
  std::cerr << kUsage;
  return 2;
}

/// Detailed per-subcommand help, printed to stdout for `tracectl <cmd>
/// --help` (exit 0, unlike the exit-2 usage() error path).
int help(const std::string& command) {
  if (command == "info") {
    std::cout
        << "tracectl info file=X [show=N]\n"
           "Print a trace's header and summary (records, roots, dependency\n"
           "edges, time span, offered root rate, total flits). show=N also\n"
           "lists the first N records. Reads .drltrc (text) or .drltrb\n"
           "(binary); the encoding is sniffed from the file contents.\n";
  } else if (command == "stats") {
    std::cout
        << "tracectl stats file=X [top=N]\n"
           "Per-node packet/flit histograms plus a dependency-depth summary\n"
           "(depth = longest predecessor chain; roots are depth 0) — the\n"
           "quick shape check before replaying an unfamiliar trace.\n"
           "top=N shows the N busiest nodes (default 8; top=0 for all).\n";
  } else if (command == "convert") {
    std::cout
        << "tracectl convert in=X out=Y\n"
           "Re-encode a trace. The output encoding is chosen by extension:\n"
           ".drltrb is packed binary (32-byte record stride), anything else\n"
           "is text. Both directions round-trip bit-exactly.\n";
  } else if (command == "generate") {
    std::cout
        << "tracectl generate kind=K out=X [params...]\n"
           "Synthesize a task-graph trace. Kinds and their parameters:\n"
           "  dnn        layer-pipeline DNN: nodes= layers= tiles= batches=\n"
           "             interval= compute= flits=\n"
           "  allreduce  ring all-reduce: nodes= rounds= compute= flits=\n"
           "             start=\n"
           "  alltoall   barrier-separated rounds: nodes= rounds= compute=\n"
           "             flits= start=\n"
           "Defaults mirror the structs in src/trace/generators.h.\n";
  } else if (command == "replay") {
    std::cout
        << "tracectl replay file=X [size=4] [topology=mesh] [scale=1.0]\n"
           "               [cycle_limit=1000000]\n"
           "Replay a trace on a fresh fabric and print latency/energy\n"
           "metrics. size= (or width=/height=) must cover the trace's node\n"
           "count; scale= divides all release times (load knob); seed= sets\n"
           "the network seed. Exit 1 if the cycle limit is hit first.\n";
  } else {
    std::cout << kUsage;
  }
  return 0;
}

int cmd_info(const util::Config& cfg) {
  const std::string path = cfg.get("file", std::string());
  if (path.empty()) return usage();
  const trace::Trace t = trace::TraceReader::read_file(path);
  const trace::TraceSummary s = t.summary();
  std::cout << "trace: " << path << "\n"
            << "  nodes          " << t.nodes << "\n"
            << "  default_length " << t.default_length << " flits\n"
            << "  records        " << s.records << "\n"
            << "  roots          " << s.roots << "\n"
            << "  dep_edges      " << s.dep_edges << "\n"
            << "  span           " << util::fmt(s.span, 1)
            << " core cycles (roots)\n"
            << "  offered_rate   " << util::fmt(s.offered_rate, 5)
            << " root pkts/node/cycle\n"
            << "  total_flits    " << s.total_flits << "\n";
  const int show = cfg.get("show", 0);
  if (show > 0) {
    util::Table tab({"id", "src", "dst", "time", "flits", "deps"});
    int shown = 0;
    for (const trace::TraceRecord& r : t.records) {
      if (shown++ >= show) break;
      std::string deps;
      for (std::size_t i = 0; i < r.deps.size(); ++i) {
        deps += (i ? "," : "") + std::to_string(r.deps[i]);
      }
      tab.row()
          .cell(static_cast<long long>(r.id))
          .cell(r.src)
          .cell(r.dst)
          .cell(r.time, 2)
          .cell(r.length)
          .cell(deps.empty() ? "-" : deps);
    }
    tab.print(std::cout);
  }
  return 0;
}

/// Per-source/per-destination packet and flit histograms plus a
/// dependency-depth summary (depth = longest predecessor chain; roots are
/// depth 0) — the quick shape check before replaying an unfamiliar trace.
int cmd_stats(const util::Config& cfg) {
  const std::string path = cfg.get("file", std::string());
  if (path.empty()) return usage();
  const trace::Trace t = trace::TraceReader::read_file(path);

  struct NodeCounts {
    std::uint64_t pkts_out = 0, flits_out = 0;
    std::uint64_t pkts_in = 0, flits_in = 0;
  };
  std::vector<NodeCounts> nodes(static_cast<std::size_t>(t.nodes));
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(t.records.size());
  std::vector<std::uint32_t> depth(t.records.size(), 0);
  std::uint32_t max_depth = 0;
  double depth_sum = 0.0;
  for (std::size_t i = 0; i < t.records.size(); ++i) {
    const trace::TraceRecord& r = t.records[i];
    const auto flits = static_cast<std::uint64_t>(
        r.length > 0 ? r.length : t.default_length);
    nodes[static_cast<std::size_t>(r.src)].pkts_out += 1;
    nodes[static_cast<std::size_t>(r.src)].flits_out += flits;
    nodes[static_cast<std::size_t>(r.dst)].pkts_in += 1;
    nodes[static_cast<std::size_t>(r.dst)].flits_in += flits;
    for (std::uint64_t dep : r.deps) {
      // validate() guarantees deps were declared earlier.
      depth[i] = std::max(depth[i], depth[index.at(dep)] + 1);
    }
    index.emplace(r.id, i);
    max_depth = std::max(max_depth, depth[i]);
    depth_sum += static_cast<double>(depth[i]);
  }

  const trace::TraceSummary s = t.summary();
  std::cout << "trace: " << path << " (" << s.records << " records, "
            << t.nodes << " nodes, " << s.dep_edges << " dep edges)\n\n";

  std::vector<int> order(static_cast<std::size_t>(t.nodes));
  for (int i = 0; i < t.nodes; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&nodes](int a, int b) {
    const NodeCounts& x = nodes[static_cast<std::size_t>(a)];
    const NodeCounts& y = nodes[static_cast<std::size_t>(b)];
    const std::uint64_t xa = x.pkts_out + x.pkts_in;
    const std::uint64_t ya = y.pkts_out + y.pkts_in;
    return xa != ya ? xa > ya : a < b;
  });
  int top = cfg.get("top", 8);
  if (top <= 0 || top > t.nodes) top = t.nodes;
  std::cout << "busiest " << top << " of " << t.nodes
            << " nodes (pass top=0 for all):\n";
  util::Table per_node({"node", "pkts_out", "flits_out", "pkts_in",
                        "flits_in"});
  for (int k = 0; k < top; ++k) {
    const int n = order[static_cast<std::size_t>(k)];
    const NodeCounts& c = nodes[static_cast<std::size_t>(n)];
    per_node.row()
        .cell(n)
        .cell(static_cast<long long>(c.pkts_out))
        .cell(static_cast<long long>(c.flits_out))
        .cell(static_cast<long long>(c.pkts_in))
        .cell(static_cast<long long>(c.flits_in));
  }
  per_node.print(std::cout);

  std::cout << "\ndependency depth (longest predecessor chain; roots are "
               "depth 0):\n"
            << "  max  " << max_depth << "\n"
            << "  mean "
            << util::fmt(t.records.empty()
                             ? 0.0
                             : depth_sum /
                                   static_cast<double>(t.records.size()),
                         2)
            << "\n";
  std::vector<std::uint64_t> per_depth(max_depth + 1, 0);
  for (std::uint32_t d : depth) ++per_depth[d];
  util::Table dep_tab({"depth", "records"});
  for (std::size_t d = 0; d < per_depth.size(); ++d) {
    dep_tab.row()
        .cell(static_cast<long long>(d))
        .cell(static_cast<long long>(per_depth[d]));
  }
  dep_tab.print(std::cout);
  return 0;
}

int cmd_convert(const util::Config& cfg) {
  const std::string in = cfg.get("in", std::string());
  const std::string out = cfg.get("out", std::string());
  if (in.empty() || out.empty()) return usage();
  const trace::Trace t = trace::TraceReader::read_file(in);
  trace::TraceWriter::write_file(out, t);
  std::cout << "converted " << in << " -> " << out << " (" << t.records.size()
            << " records)\n";
  return 0;
}

int cmd_generate(const util::Config& cfg) {
  const std::string kind = cfg.get("kind", std::string());
  const std::string out = cfg.get("out", std::string());
  if (kind.empty() || out.empty()) return usage();
  trace::Trace t;
  if (kind == "dnn") {
    trace::DnnPipelineParams p;
    p.nodes = cfg.get("nodes", p.nodes);
    p.layers = cfg.get("layers", p.layers);
    p.tiles_per_layer = cfg.get("tiles", p.tiles_per_layer);
    p.batches = cfg.get("batches", p.batches);
    p.batch_interval = cfg.get("interval", p.batch_interval);
    p.compute_delay = cfg.get("compute", p.compute_delay);
    p.activation_flits = cfg.get("flits", p.activation_flits);
    t = trace::generate_dnn_pipeline(p);
  } else if (kind == "allreduce") {
    trace::AllReduceRingParams p;
    p.nodes = cfg.get("nodes", p.nodes);
    p.rounds = cfg.get("rounds", p.rounds);
    p.compute_delay = cfg.get("compute", p.compute_delay);
    p.chunk_flits = cfg.get("flits", p.chunk_flits);
    p.start_time = cfg.get("start", p.start_time);
    t = trace::generate_allreduce_ring(p);
  } else if (kind == "alltoall") {
    trace::AllToAllParams p;
    p.nodes = cfg.get("nodes", p.nodes);
    p.rounds = cfg.get("rounds", p.rounds);
    p.compute_delay = cfg.get("compute", p.compute_delay);
    p.flits = cfg.get("flits", p.flits);
    p.start_time = cfg.get("start", p.start_time);
    t = trace::generate_alltoall(p);
  } else {
    LOG_ERROR << "tracectl: unknown kind '" << kind << "'";
    return usage();
  }
  trace::TraceWriter::write_file(out, t);
  const trace::TraceSummary s = t.summary();
  std::cout << "generated " << kind << " trace: " << out << " ("
            << s.records << " records, " << s.dep_edges << " dep edges, "
            << t.nodes << " nodes)\n";
  return 0;
}

int cmd_replay(const util::Config& cfg) {
  const std::string path = cfg.get("file", std::string());
  if (path.empty()) return usage();
  trace::Trace t = trace::TraceReader::read_file(path);

  noc::NetworkParams p;
  p.topology = cfg.get("topology", std::string("mesh"));
  const int size = cfg.get("size", 4);
  p.width = cfg.get("width", size);
  p.height = cfg.get("height", size);
  p.seed = cfg.get("seed", 1);
  if (p.width * p.height < t.nodes) {
    LOG_ERROR << "tracectl: trace needs " << t.nodes << " nodes, network has "
              << p.width * p.height << " (pass size=/width=/height=)";
    return 1;
  }

  trace::TraceWorkloadParams tw;
  tw.rate_scale = cfg.get("scale", 1.0);
  noc::Network net(p);
  trace::TraceWorkload workload(std::move(t), tw);
  const auto limit =
      static_cast<std::uint64_t>(cfg.get("cycle_limit", 1000000LL));
  const trace::TraceReplayResult r =
      trace::run_trace_replay(net, workload, limit);

  std::cout << "replayed " << path << " on " << p.topology << " " << p.width
            << "x" << p.height << " at scale " << util::fmt(tw.rate_scale, 2)
            << (r.completed ? "" : "  [HIT CYCLE LIMIT]") << "\n";
  util::Table tab({"metric", "value"});
  tab.row().cell("router_cycles").cell(static_cast<long long>(r.cycles));
  tab.row().cell("core_cycles").cell(r.stats.core_cycles, 1);
  tab.row().cell("packets").cell(
      static_cast<long long>(r.stats.packets_received));
  tab.row().cell("avg_latency").cell(r.stats.avg_latency, 2);
  tab.row().cell("p95_latency").cell(r.stats.p95_latency, 2);
  tab.row().cell("avg_hops").cell(r.stats.avg_hops, 2);
  tab.row().cell("energy_pJ").cell(r.stats.total_energy_pj(), 1);
  tab.print(std::cout);
  return r.completed ? 0 : 1;
}

bool wants_help(int argc, char** argv) {
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    std::cout << kUsage;
    return 0;
  }
  if (wants_help(argc, argv)) return help(command);
  try {
    // Config::from_args skips its argv[0] slot; shift past the subcommand.
    const util::Config cfg = util::Config::from_args(argc - 1, argv + 1);
    util::init_log(cfg.get("log", std::string()));
    if (command == "info") return cmd_info(cfg);
    if (command == "stats") return cmd_stats(cfg);
    if (command == "convert") return cmd_convert(cfg);
    if (command == "generate") return cmd_generate(cfg);
    if (command == "replay") return cmd_replay(cfg);
    LOG_ERROR << "tracectl: unknown command '" << command << "'";
    return usage();
  } catch (const std::exception& e) {
    LOG_ERROR << "tracectl: " << e.what();
    return 1;
  }
}
