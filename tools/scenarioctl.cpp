// scenarioctl: validate, describe, run, and train on multi-tenant `.drlsc`
// scenarios.
//
//   scenarioctl validate file=mix.drlsc
//   scenarioctl describe file=mix.drlsc
//   scenarioctl run      file=mix.drlsc [cycle_limit=N] [duration=T] [seed=S]
//   scenarioctl train    file=mix.drlsc out=policy.drlpol [episodes=N]
//
// The `.drlsc` format is documented in src/scenario/scenario_io.h. `run`
// executes the scenario on its fabric and prints aggregate plus per-tenant
// latency/throughput/energy; the exit code is 0 only when every tenant
// finished and the fabric drained within the cycle limit
// (cycle_limit=/duration= override the file). When the file carries a
// [controller] block, `run` instead replays the scenario under that
// controller schedule (static/heuristic/trained-DRL policy) and reports
// per-tenant latency and SLO hit rates; scheduled runs are fixed-length
// policy evaluations (epochs=/epoch_cycles= override the schedule;
// cycle_limit/duration do not apply) and exit 0 whenever they complete.
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/env_noc.h"
#include "core/trainer.h"
#include "obs/session.h"
#include "rl/dqn.h"
#include "rl/policy_io.h"
#include "scenario/runtime.h"
#include "scenario/scenario_io.h"
#include "util/config.h"
#include "util/log.h"
#include "util/table.h"

using namespace drlnoc;

namespace {

constexpr const char* kUsage =
    "usage: scenarioctl <validate|describe|run|train> file=X [key=value...]\n"
    "  validate file=X\n"
    "  describe file=X\n"
    "  run      file=X [cycle_limit=N] [duration=T] [seed=S]\n"
    "           [fault_rate=P] [fault_seed=S] [fault_timeout=N]\n"
    "           [fault_backoff=B] [fault_budget=N]\n"
    "           [--trace-out=F] [--metrics-out=F] [--trace-sample=P]\n"
    "           [--trace-capacity=N]\n"
    "           (scheduled: [epochs=N] [epoch_cycles=N] [pin=HEX16])\n"
    "  train    file=X out=F [episodes=N] [round=N] [actors=N]\n"
    "           [eval_every=N] [seed=S] [epochs=N] [epoch_cycles=N]\n"
    "           [qos_features=0|1]\n"
    "Common: [--log=debug|info|warn|error|off] (or DRLNOC_LOG env var).\n"
    "Pass --help after a subcommand for its full option list; the .drlsc\n"
    "format is specified in docs/FORMATS.md.\n";

int usage() {
  std::cerr << kUsage;
  return 2;
}

/// Detailed per-subcommand help, printed to stdout for `scenarioctl <cmd>
/// --help` (exit 0, unlike the exit-2 usage() error path).
int help(const std::string& command) {
  if (command == "validate") {
    std::cout
        << "scenarioctl validate file=X\n"
           "Parse and fully validate a .drlsc scenario — key/section typos,\n"
           "tenant specs, QoS constraints, and eager loading of referenced\n"
           "traces and policy files (relative to the scenario file). Prints\n"
           "a one-line summary on success; exit 1 with a diagnostic on any\n"
           "error.\n";
  } else if (command == "describe") {
    std::cout
        << "scenarioctl describe file=X\n"
           "Print the parsed scenario: fabric, horizon, one row per tenant\n"
           "(workload, node set, activity window, QoS class) and the\n"
           "[controller] schedule when present.\n";
  } else if (command == "run") {
    std::cout
        << "scenarioctl run file=X [cycle_limit=N] [duration=T] [seed=S]\n"
           "Execute the scenario and print aggregate plus per-tenant\n"
           "latency/throughput/energy. Exit 0 only when every tenant\n"
           "finished and the fabric drained within the cycle limit\n"
           "(cycle_limit=/duration=/seed= override the file).\n"
           "Fault overrides — fault_rate= fault_seed= fault_timeout=\n"
           "fault_backoff= fault_budget= — tweak (or switch on) the\n"
           "scenario's [faults] section; the merged config is re-validated,\n"
           "so out-of-range overrides fail like a bad file.\n"
           "With a [controller] block the run is instead a fixed-length\n"
           "scheduled policy evaluation (static/heuristic/trained-DRL)\n"
           "reporting per-tenant latency and SLO hit rates; epochs= and\n"
           "epoch_cycles= override the schedule, cycle_limit/duration do\n"
           "not apply, and completion exits 0.\n"
           "For a drl schedule, pin=HEX16 overrides the file's `pin` key:\n"
           "the run refuses to start unless the policy file's fingerprint\n"
           "(rl::policy_fingerprint, printed by `train`) matches.\n"
           "Observability (see docs/OBSERVABILITY.md): --trace-out=F writes\n"
           "a Chrome trace-event JSON of sampled packet lifecycles and\n"
           "scenario/fault/config events (open in Perfetto);\n"
           "--trace-sample=P sets the sampled packet fraction (default 1.0)\n"
           "and --trace-capacity=N the ring size. --metrics-out=F writes\n"
           "per-epoch metrics JSON (plus profiler phase timings) and a\n"
           "per-router link-utilization heatmap CSV next to it. Observers\n"
           "never change simulation results.\n";
  } else if (command == "train") {
    std::cout
        << "scenarioctl train file=X out=F [episodes=N] [round=N]\n"
           "                 [actors=N] [eval_every=N] [seed=S]\n"
           "                 [epochs=N] [epoch_cycles=N] [qos_features=0|1]\n"
           "Train a DQN policy on the scenario's epoch MDP with the\n"
           "multi-actor collector (core::train_dqn_parallel) and save a\n"
           "versioned `drlpol 1` checkpoint to F, stamped with the\n"
           "scenario's content hash and the building commit. `round` is\n"
           "part of the experiment definition (like a seed); `actors` is\n"
           "purely the worker-thread count — results are bit-identical at\n"
           "any value (0 = one per hardware thread). epochs=/epoch_cycles=\n"
           "override the decision schedule (defaults: the [controller]\n"
           "block when present, else 24 x 512). qos_features=1 (default)\n"
           "trains with per-tenant QoS feature slices as scheduled runs\n"
           "use; pass qos_features=0 for a policy a fleet (aggregate\n"
           "features) can serve. Prints the policy version (the checkpoint\n"
           "fingerprint) to pin in runs and fleets.\n";
  } else {
    std::cout << kUsage;
  }
  return 0;
}

bool wants_help(int argc, char** argv) {
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") return true;
  }
  return false;
}

void describe_tenants(const scenario::Scenario& s) {
  util::Table tab({"tenant", "workload", "detail", "nodes", "window", "qos"});
  for (const scenario::TenantSpec& t : s.tenants) {
    std::string detail;
    switch (t.kind) {
      case scenario::WorkloadKind::kTrace:
        detail = t.trace_file + " x" + util::fmt(t.rate_scale, 2) +
                 (t.loop ? " loop" : "") + " (" +
                 std::to_string(t.trace->records.size()) + " rec)";
        break;
      case scenario::WorkloadKind::kSteady:
        detail = t.pattern + "/" + t.process + " @" + util::fmt(t.rate, 4);
        break;
      case scenario::WorkloadKind::kPhased:
        detail = t.phases.empty()
                     ? "standard x" + util::fmt(t.phase_scale, 2)
                     : std::to_string(t.phases.size()) + " phases";
        break;
    }
    const std::string window =
        util::fmt(t.start, 0) + ".." +
        (std::isinf(t.stop) ? std::string("inf") : util::fmt(t.stop, 0));
    std::string qos = scenario::to_string(t.qos);
    if (t.qos == scenario::QosClass::kLatencyCritical) {
      qos += " p95<=" + util::fmt(t.p95_target, 0);
    }
    tab.row()
        .cell(t.name)
        .cell(scenario::to_string(t.kind))
        .cell(detail)
        .cell(scenario::format_node_set(t.nodes))
        .cell(window)
        .cell(qos);
  }
  tab.print(std::cout);
  if (s.controller.scheduled()) {
    std::cout << "\ncontroller: " << s.controller.type
              << (s.controller.type == "drl"
                      ? " (policy " + s.controller.policy_file + ")"
                      : "")
              << ", " << s.controller.epochs << " epochs x "
              << s.controller.epoch_cycles << " router cycles\n";
  }
  if (s.faults.enabled()) {
    std::cout << "\nfaults: seed " << s.faults.seed << ", link_fault_rate "
              << util::fmt(s.faults.link_fault_rate, 6) << ", retry timeout "
              << s.faults.retry_timeout << " x backoff "
              << util::fmt(s.faults.retry_backoff, 2) << ", budget "
              << s.faults.retry_budget << "\n";
    for (std::size_t k = 0; k < s.faults.events.size(); ++k) {
      const noc::FaultEvent& ev = s.faults.events[k];
      std::cout << "  event" << k << ": cycle " << ev.at_cycle << " "
                << noc::to_string(ev.kind) << " node " << ev.node;
      if (ev.kind == noc::FaultEvent::Kind::kLinkDown) {
        std::cout << " port " << ev.port;
      } else {
        std::cout << " factor " << ev.factor;
      }
      std::cout << "\n";
    }
  }
}

int cmd_validate(const util::Config& cfg) {
  const std::string path = cfg.get("file", std::string());
  if (path.empty()) return usage();
  const scenario::Scenario s = scenario::ScenarioReader::read_file(path);
  std::cout << "OK: " << path << " (scenario '" << s.name << "', "
            << s.net.topology << " " << s.net.width << "x" << s.net.height
            << ", " << s.tenants.size() << " tenant"
            << (s.tenants.size() == 1 ? "" : "s") << ")\n";
  return 0;
}

int cmd_describe(const util::Config& cfg) {
  const std::string path = cfg.get("file", std::string());
  if (path.empty()) return usage();
  const scenario::Scenario s = scenario::ScenarioReader::read_file(path);
  std::cout << "scenario: " << s.name << "\n"
            << "  fabric      " << s.net.topology << " " << s.net.width << "x"
            << s.net.height << ", routing " << s.net.routing << ", seed "
            << s.net.seed << "\n"
            << "  duration    "
            << (s.duration > 0.0 ? util::fmt(s.duration, 0) + " core cycles"
                                 : std::string("until tenants finish"))
            << "\n"
            << "  cycle_limit " << s.cycle_limit << "\n\n";
  describe_tenants(s);
  return 0;
}

/// A scheduled run: the scenario's [controller] block drives the fabric
/// epoch by epoch (the paper-row replay path). Prints episode metrics plus
/// per-tenant latency and SLO hit rate.
int run_with_schedule(const scenario::Scenario& s, obs::ObsSession& session) {
  if (session.enabled()) session.annotate_scenario(s);
  const scenario::ScheduledRunResult r = scenario::run_scheduled(
      s, session.recorder(), session.metrics(s.net.width * s.net.height));
  const core::EpisodeResult& ep = r.episode;
  std::cout << "ran '" << s.name << "' under controller '" << ep.controller
            << "': " << ep.actions.size() << " epochs x "
            << s.controller.epoch_cycles << " router cycles (power_ref "
            << util::fmt(r.power_ref_mw, 1) << " mW)\n\n";

  util::Table agg({"metric", "value"});
  agg.row().cell("reward").cell(ep.total_reward, 2);
  agg.row().cell("mean_latency").cell(ep.mean_latency, 2);
  agg.row().cell("p95_latency").cell(ep.p95_latency, 2);
  agg.row().cell("mean_power_mW").cell(ep.mean_power_mw, 1);
  agg.row().cell("accepted_rate").cell(ep.accepted_rate, 5);
  agg.row().cell("backlog_end").cell(static_cast<long long>(ep.backlog_end));
  if (s.faults.enabled()) {
    agg.row().cell("flits_dropped").cell(
        static_cast<long long>(ep.flits_dropped));
    agg.row().cell("retries").cell(static_cast<long long>(ep.retries));
    agg.row().cell("packets_lost").cell(
        static_cast<long long>(ep.packets_lost));
    agg.row().cell("rerouted_hops").cell(
        static_cast<long long>(ep.rerouted_hops));
  }
  agg.print(std::cout);

  if (!ep.tenants.empty()) {
    std::cout << "\nper-tenant:\n";
    util::Table tab({"tenant", "qos", "offered", "delivered", "avg_lat",
                     "p95_lat", "slo_hit"});
    for (std::size_t i = 0; i < ep.tenants.size(); ++i) {
      const core::TenantEpisodeSummary& t = ep.tenants[i];
      const scenario::TenantSpec& spec = s.tenants[i];
      tab.row()
          .cell(spec.name)
          .cell(scenario::to_string(spec.qos))
          .cell(static_cast<long long>(t.packets_offered))
          .cell(static_cast<long long>(t.packets_received))
          .cell(t.mean_latency, 2)
          .cell(t.p95_latency, 2)
          .cell(spec.p95_target > 0.0
                    ? util::fmt(100.0 * t.slo_hit_rate, 1) + "%"
                    : std::string("-"));
    }
    tab.print(std::cout);
  }
  return 0;
}

/// `run` fault overrides: tweak (or switch on) the [faults] section from the
/// command line. Validation of the merged parameters happens in
/// Scenario::validate below, so a disconnecting or out-of-range override is
/// rejected exactly like a bad file.
void apply_fault_overrides(const util::Config& cfg, scenario::Scenario& s) {
  s.faults.link_fault_rate = cfg.get("fault_rate", s.faults.link_fault_rate);
  s.faults.seed = static_cast<std::uint64_t>(
      cfg.get("fault_seed", static_cast<long long>(s.faults.seed)));
  const long long timeout = cfg.get(
      "fault_timeout", static_cast<long long>(s.faults.retry_timeout));
  if (timeout < 1) {
    throw std::invalid_argument("scenarioctl: fault_timeout must be >= 1");
  }
  s.faults.retry_timeout = static_cast<noc::Cycle>(timeout);
  s.faults.retry_backoff = cfg.get("fault_backoff", s.faults.retry_backoff);
  s.faults.retry_budget = cfg.get("fault_budget", s.faults.retry_budget);
}

/// `train`: multi-actor DQN training on the scenario's epoch MDP, saving a
/// versioned policy checkpoint stamped with the scenario content hash and
/// the building commit. The printed fingerprint is the policy version to
/// pin (scenarioctl run pin= / fleetctl policy_pin=).
int cmd_train(const util::Config& cfg) {
  const std::string path = cfg.get("file", std::string());
  const std::string out = cfg.get("out", std::string());
  if (path.empty() || out.empty()) return usage();
  const scenario::Scenario s = scenario::ScenarioReader::read_file(path);

  // Decision schedule: the [controller] block when present, else the fleet
  // defaults; overridable either way.
  const long long cycles = cfg.get(
      "epoch_cycles",
      static_cast<long long>(
          s.controller.scheduled() ? s.controller.epoch_cycles : 512));
  if (cycles <= 0) {
    LOG_ERROR << "scenarioctl: epoch_cycles must be > 0";
    return 2;
  }
  const int epochs =
      cfg.get("epochs", s.controller.scheduled() ? s.controller.epochs : 24);
  if (epochs <= 0) {
    LOG_ERROR << "scenarioctl: epochs must be > 0";
    return 2;
  }

  core::NocEnvParams ep;
  ep.scenario = std::make_shared<scenario::Scenario>(s);
  ep.net.seed = s.net.seed;
  ep.epoch_cycles = static_cast<std::uint64_t>(cycles);
  ep.epochs_per_episode = epochs;
  // Per-tenant QoS feature slices (the scheduled-run default) scale the
  // state with the tenant count; train with qos_features=0 for a policy a
  // fleet (aggregate features) can serve.
  ep.scenario_qos = cfg.get("qos_features", ep.scenario_qos);

  core::ParallelTrainParams tp;
  tp.episodes = cfg.get("episodes", tp.episodes);
  tp.round = cfg.get("round", tp.round);
  tp.actors = cfg.get("actors", tp.actors);
  tp.eval_every = cfg.get("eval_every", tp.eval_every);
  tp.verbose = true;

  // The experiment-wide hyper-parameters (bench/bench_common.h's
  // standard_dqn), sized to the training horizon.
  rl::DqnParams dp;
  dp.hidden = {64, 64};
  dp.gamma = 0.9;
  dp.lr = 1e-3;
  dp.min_replay = 128;
  dp.batch_size = 32;
  dp.target_sync_every = 250;
  dp.double_dqn = true;
  dp.epsilon_decay_steps = static_cast<std::uint64_t>(tp.episodes) *
                           static_cast<std::uint64_t>(epochs) * 3 / 4;
  dp.seed = static_cast<std::uint64_t>(cfg.get("seed", 7LL));

  // A throwaway env just for the observation/action dimensions; training
  // builds its own calibrated lanes.
  core::NocConfigEnv probe(ep);
  rl::DqnAgent agent(probe.state_size(), probe.num_actions(), dp);
  const core::TrainResult r = core::train_dqn_parallel(ep, agent, tp);

  rl::PolicyMeta meta;
  meta.scenario_hash = scenario::content_hash_hex(s);
  meta.git = DRLNOC_GIT_DESCRIBE;
  std::ostringstream blob;
  agent.save(blob, meta);
  {
    std::ofstream os(out, std::ios::binary);
    if (!os || !(os << blob.str()).flush()) {
      LOG_ERROR << "scenarioctl: cannot write " << out;
      return 1;
    }
  }
  const double final_return =
      r.episode_returns.empty() ? 0.0 : r.episode_returns.back();
  std::cout << "trained '" << s.name << "': " << tp.episodes << " episodes x "
            << epochs << " epochs (round " << tp.round << "), final return "
            << util::fmt(final_return, 2) << "\n"
            << "wrote " << out << " (scenario hash " << meta.scenario_hash
            << ", git " << meta.git << ")\n"
            << "policy version " << rl::policy_fingerprint(blob.str())
            << "  # pin with scenarioctl run pin= / fleetctl policy_pin=\n";
  return 0;
}

int cmd_run(const util::Config& cfg) {
  const std::string path = cfg.get("file", std::string());
  if (path.empty()) return usage();
  obs::ObsSession session(obs::ObsOptions::from_config(cfg));
  scenario::Scenario s = scenario::ScenarioReader::read_file(path);
  s.cycle_limit = static_cast<std::uint64_t>(
      cfg.get("cycle_limit", static_cast<long long>(s.cycle_limit)));
  s.duration = cfg.get("duration", s.duration);
  s.net.seed = static_cast<std::uint64_t>(
      cfg.get("seed", static_cast<long long>(s.net.seed)));
  apply_fault_overrides(cfg, s);
  if (s.controller.scheduled()) {
    // Scheduled runs are fixed-length evaluations; their knobs are the
    // schedule's, not the drain-run horizon.
    const long long cycles = cfg.get(
        "epoch_cycles", static_cast<long long>(s.controller.epoch_cycles));
    if (cycles <= 0) {
      LOG_ERROR << "scenarioctl: epoch_cycles must be > 0";
      return 2;
    }
    s.controller.epoch_cycles = static_cast<std::uint64_t>(cycles);
    s.controller.epochs = cfg.get("epochs", s.controller.epochs);
    s.controller.policy_pin = cfg.get("pin", s.controller.policy_pin);
    s.validate();  // overrides may have broken the schedule
    const int rc = run_with_schedule(s, session);
    if (!session.finish() && rc == 0) return 1;
    return rc;
  }
  s.validate();  // overrides may have broken the horizon invariant

  auto net = scenario::build_network(s);
  auto workload = scenario::build_workload(s, net->topology());
  session.attach(*net);
  session.annotate_scenario(s);
  scenario::ScenarioRunParams rp;
  rp.cycle_limit = s.cycle_limit;
  rp.duration = s.duration;
  const scenario::ScenarioRunResult r =
      scenario::run_scenario(*net, *workload, rp);
  std::cout << "ran '" << s.name << "' on " << s.net.topology << " "
            << s.net.width << "x" << s.net.height << ": "
            << r.cycles << " router cycles, "
            << util::fmt(r.stats.core_cycles, 0) << " core cycles"
            << (r.completed ? "" : "  [HIT CYCLE LIMIT]") << "\n\n";

  util::Table agg({"metric", "value"});
  agg.row().cell("packets").cell(
      static_cast<long long>(r.stats.packets_received));
  agg.row().cell("avg_latency").cell(r.stats.avg_latency, 2);
  agg.row().cell("p95_latency").cell(r.stats.p95_latency, 2);
  agg.row().cell("avg_hops").cell(r.stats.avg_hops, 2);
  agg.row().cell("energy_pJ").cell(r.stats.total_energy_pj(), 1);
  if (s.faults.enabled()) {
    agg.row().cell("flits_dropped").cell(
        static_cast<long long>(r.stats.flits_dropped));
    agg.row().cell("retries").cell(static_cast<long long>(r.stats.retries));
    agg.row().cell("packets_lost").cell(
        static_cast<long long>(r.stats.packets_lost));
    agg.row().cell("rerouted_hops").cell(
        static_cast<long long>(r.stats.rerouted_hops));
  }
  agg.print(std::cout);

  std::cout << "\nper-tenant:\n";
  util::Table tab({"tenant", "offered", "delivered", "flits", "avg_lat",
                   "p95_lat", "thru(pkt/node/cyc)", "energy_pJ"});
  for (const scenario::TenantReport& t :
       scenario::tenant_reports(s, r.stats)) {
    tab.row()
        .cell(t.name)
        .cell(static_cast<long long>(t.packets_offered))
        .cell(static_cast<long long>(t.packets_received))
        .cell(static_cast<long long>(t.flits_ejected))
        .cell(t.avg_latency, 2)
        .cell(t.p95_latency, 2)
        .cell(t.throughput, 5)
        .cell(t.energy_share_pj, 1);
  }
  tab.print(std::cout);
  const bool obs_ok = session.finish();
  return r.completed && obs_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    std::cout << kUsage;
    return 0;
  }
  if (wants_help(argc, argv)) return help(command);
  try {
    // Config::from_args skips its argv[0] slot; shift past the subcommand.
    const util::Config cfg = util::Config::from_args(argc - 1, argv + 1);
    util::init_log(cfg.get("log", std::string()));
    if (command == "validate") return cmd_validate(cfg);
    if (command == "describe") return cmd_describe(cfg);
    if (command == "run") return cmd_run(cfg);
    if (command == "train") return cmd_train(cfg);
    LOG_ERROR << "scenarioctl: unknown command '" << command << "'";
    return usage();
  } catch (const std::exception& e) {
    LOG_ERROR << "scenarioctl: " << e.what();
    return 1;
  }
}
