// util::RingBuffer (the allocation-free deque replacement) and the
// ring-backed Channel: wraparound, growth, capacity edges, slot reuse.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "noc/channel.h"
#include "util/ring_buffer.h"

namespace drlnoc {
namespace {

TEST(RingBuffer, StartsEmpty) {
  util::RingBuffer<int> rb;
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 0u);
}

TEST(RingBuffer, CapacityHintRoundsToPowerOfTwo) {
  util::RingBuffer<int> rb(5);
  EXPECT_EQ(rb.capacity(), 8u);
  util::RingBuffer<int> exact(8);
  EXPECT_EQ(exact.capacity(), 8u);
}

TEST(RingBuffer, FifoOrder) {
  util::RingBuffer<int> rb(4);
  for (int i = 0; i < 4; ++i) rb.push_back(i);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapsAroundWithoutGrowing) {
  util::RingBuffer<int> rb(4);
  const std::size_t cap = rb.capacity();
  // Interleave pushes and pops so the head crosses the physical end many
  // times; occupancy never exceeds capacity, so no growth may happen.
  int next_push = 0, next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    while (rb.size() < cap) rb.push_back(next_push++);
    while (rb.size() > 1) {
      EXPECT_EQ(rb.front(), next_pop++);
      rb.pop_front();
    }
  }
  EXPECT_EQ(rb.capacity(), cap);
}

TEST(RingBuffer, GrowsPreservingOrderAcrossWrap) {
  util::RingBuffer<int> rb(4);
  // Misalign head first so growth has to re-linearise a wrapped ring.
  for (int i = 0; i < 3; ++i) rb.push_back(-1);
  for (int i = 0; i < 3; ++i) rb.pop_front();
  for (int i = 0; i < 10; ++i) rb.push_back(i);  // forces growth mid-way
  EXPECT_GE(rb.capacity(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rb[static_cast<std::size_t>(i)], i);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
}

TEST(RingBuffer, PushExactlyToCapacityThenGrow) {
  util::RingBuffer<int> rb(2);
  rb.push_back(1);
  rb.push_back(2);
  EXPECT_EQ(rb.size(), rb.capacity());
  rb.push_back(3);  // the push that finds the ring full
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.front(), 1);
  EXPECT_EQ(rb.back(), 3);
}

TEST(RingBuffer, IndexingAndBack) {
  util::RingBuffer<std::string> rb(4);
  rb.push_back("a");
  rb.push_back("b");
  rb.push_back("c");
  EXPECT_EQ(rb[0], "a");
  EXPECT_EQ(rb[2], "c");
  EXPECT_EQ(rb.back(), "c");
  rb.pop_front();
  EXPECT_EQ(rb[0], "b");
}

TEST(RingBuffer, ClearKeepsCapacity) {
  util::RingBuffer<int> rb(16);
  for (int i = 0; i < 10; ++i) rb.push_back(i);
  const std::size_t cap = rb.capacity();
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.capacity(), cap);
  rb.push_back(42);
  EXPECT_EQ(rb.front(), 42);
}

TEST(RingBuffer, SlotReusePreservesElementCapacity) {
  // Popped slots keep their element alive; a later push copy-assigns into
  // it, so heap-owning elements reuse their allocation.
  util::RingBuffer<std::vector<int>> rb(2);
  rb.push_back(std::vector<int>(100, 7));
  rb.pop_front();
  std::vector<int> small(100, 9);
  rb.push_back(small);  // copy-assign into the retained slot
  EXPECT_EQ(rb.front().size(), 100u);
  EXPECT_EQ(rb.front()[0], 9);
}

TEST(RingBuffer, PushBackSlotOverwrite) {
  util::RingBuffer<int> rb(2);
  rb.push_back_slot() = 5;
  EXPECT_EQ(rb.size(), 1u);
  EXPECT_EQ(rb.front(), 5);
}

// --- Channel on top of the ring ---------------------------------------------

TEST(ChannelRing, ManyInFlightBeyondInitialCapacity) {
  // A depth-reconfiguration credit burst can exceed latency+1 entries; the
  // ring must grow transparently and stay FIFO.
  noc::CreditChannel ch(1);
  for (int i = 0; i < 40; ++i) ch.send(noc::Credit{i % 4}, 0);
  int received = 0;
  while (ch.ready(1)) {
    EXPECT_EQ(ch.receive(1).vc, received % 4);
    ++received;
  }
  EXPECT_EQ(received, 40);
  EXPECT_TRUE(ch.empty());
}

TEST(ChannelRing, SteadyStateReusesCapacity) {
  noc::FlitChannel ch(2);
  noc::Flit f;
  // Long steady-state streaming: one send + receives per cycle.
  for (noc::Cycle t = 0; t < 1000; ++t) {
    f.packet_id = t;
    ch.send(f, t);
    while (ch.ready(t)) {
      EXPECT_EQ(ch.receive(t).packet_id, t - 2);
    }
  }
  EXPECT_LE(ch.in_flight(), 3u);
}

TEST(ChannelRing, PeekAndReceiveInto) {
  noc::FlitChannel ch(1);
  noc::Flit f;
  f.packet_id = 99;
  f.vc = 3;
  ch.send_from(f, 0);
  ASSERT_TRUE(ch.ready(1));
  EXPECT_EQ(ch.peek(1).vc, 3);
  noc::Flit out;
  ch.receive_into(out, 1);
  EXPECT_EQ(out.packet_id, 99u);
  EXPECT_TRUE(ch.empty());
}

}  // namespace
}  // namespace drlnoc
