#include <gtest/gtest.h>

#include "noc/routing.h"

namespace drlnoc::noc {
namespace {

constexpr PortId kEast = 1, kWest = 2, kNorth = 3, kSouth = 4;

Flit head_flit(NodeId src, NodeId dst, std::uint8_t cls = 0) {
  Flit f;
  f.src = src;
  f.dst = dst;
  f.type = FlitType::kHead;
  f.vc_class = cls;
  return f;
}

// Walks a deterministic route from src to dst and returns the hop count;
// asserts progress and termination.
int walk(const Topology& topo, const RoutingAlgorithm& algo, NodeId src,
         NodeId dst) {
  Flit f = head_flit(src, dst);
  NodeId cur = src;
  PortId in_port = kLocalPort;
  int hops = 0;
  while (true) {
    std::vector<RouteChoice> cands;
    algo.route(f, cur, in_port, cands);
    EXPECT_FALSE(cands.empty());
    const RouteChoice c = cands.front();
    if (c.port == kLocalPort) {
      EXPECT_EQ(cur, dst);
      return hops;
    }
    const auto next = topo.neighbor(cur, c.port);
    EXPECT_TRUE(next.has_value());
    f.vc_class = c.vc_class;
    in_port = next->port;
    cur = next->node;
    ++hops;
    EXPECT_LE(hops, 4 * topo.num_nodes()) << "routing loop";
    if (hops > 4 * topo.num_nodes()) return hops;
  }
}

TEST(MeshXY, RoutesXThenY) {
  Mesh2D mesh(4, 4);
  MeshXY xy(mesh);
  std::vector<RouteChoice> cands;
  // From (0,0) to (2,3): must go east first.
  xy.route(head_flit(0, mesh.node_at(2, 3)), 0, kLocalPort, cands);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].port, kEast);
  cands.clear();
  // Same column: go north.
  xy.route(head_flit(0, mesh.node_at(0, 3)), 0, kLocalPort, cands);
  EXPECT_EQ(cands[0].port, kNorth);
  cands.clear();
  // At destination: local.
  xy.route(head_flit(0, 5), 5, kWest, cands);
  EXPECT_EQ(cands[0].port, kLocalPort);
}

TEST(MeshYX, RoutesYThenX) {
  Mesh2D mesh(4, 4);
  MeshYX yx(mesh);
  std::vector<RouteChoice> cands;
  yx.route(head_flit(0, mesh.node_at(2, 3)), 0, kLocalPort, cands);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].port, kNorth);
}

class MinimalRoutingWalk
    : public ::testing::TestWithParam<const char*> {};

// Property: every (src, dst) pair is delivered in exactly min_hops hops for
// the deterministic and the adaptive (first-candidate) mesh algorithms.
TEST_P(MinimalRoutingWalk, DeliversInMinimalHops) {
  Mesh2D mesh(5, 4);
  auto algo = make_routing(GetParam(), mesh);
  for (NodeId s = 0; s < mesh.num_nodes(); ++s) {
    for (NodeId d = 0; d < mesh.num_nodes(); ++d) {
      if (s == d) continue;
      EXPECT_EQ(walk(mesh, *algo, s, d), mesh.min_hops(s, d))
          << "src=" << s << " dst=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MeshAlgos, MinimalRoutingWalk,
                         ::testing::Values("xy", "yx", "westfirst",
                                           "oddeven"));

TEST(MeshWestFirst, WestIsExclusive) {
  Mesh2D mesh(5, 5);
  MeshWestFirst wf(mesh);
  std::vector<RouteChoice> cands;
  // Destination strictly west and north: only west allowed first.
  wf.route(head_flit(mesh.node_at(3, 1), mesh.node_at(1, 3)),
           mesh.node_at(3, 1), kLocalPort, cands);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].port, kWest);
  cands.clear();
  // Destination east and north: both adaptive candidates offered.
  wf.route(head_flit(mesh.node_at(1, 1), mesh.node_at(3, 3)),
           mesh.node_at(1, 1), kLocalPort, cands);
  EXPECT_EQ(cands.size(), 2u);
}

TEST(MeshOddEven, ForbidsEastTurnsAtEvenColumns) {
  Mesh2D mesh(6, 6);
  MeshOddEven oe(mesh);
  // Chiu rule 1: at an even column (not the source column), an eastbound
  // packet may not turn north/south -> candidates restricted.
  std::vector<RouteChoice> cands;
  // src odd column so "cur_x == src_x" does not apply; cur at even column 2,
  // dest east and north with ex == 1 and even dest column 3? dest column 3 is
  // odd -> east allowed; vertical not allowed (even column, cx != sx).
  const NodeId src = mesh.node_at(1, 0);
  const NodeId cur = mesh.node_at(2, 0);
  const NodeId dst = mesh.node_at(3, 2);
  Flit f = head_flit(src, dst);
  oe.route(f, cur, kWest, cands);
  for (const auto& c : cands) {
    EXPECT_TRUE(c.port == kEast) << "unexpected candidate port " << c.port;
  }
}

TEST(TorusDor, UsesShortestWrapDirection) {
  Torus2D torus(6, 6);
  TorusDor dor(torus);
  std::vector<RouteChoice> cands;
  // From x=0 to x=5: west (wrap) is 1 hop, east is 5 hops.
  dor.route(head_flit(torus.node_at(0, 0), torus.node_at(5, 0)),
            torus.node_at(0, 0), kLocalPort, cands);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].port, kWest);
  // Crossing the -x wrap sets class 1.
  EXPECT_EQ(cands[0].vc_class, 1);
}

TEST(TorusDor, DatelineClassResetsOnDimensionChange) {
  Torus2D torus(6, 6);
  TorusDor dor(torus);
  std::vector<RouteChoice> cands;
  // Packet that crossed the x dateline (class 1) now turns into y at an
  // x-port entry: class must reset to 0 unless the y hop wraps.
  Flit f = head_flit(torus.node_at(0, 0), torus.node_at(5, 2), /*cls=*/1);
  // Currently at destination column x=5 arriving from east-west travel.
  dor.route(f, torus.node_at(5, 0), kEast, cands);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].port, kNorth);
  EXPECT_EQ(cands[0].vc_class, 0);
}

TEST(TorusDor, DeliversAllPairsMinimally) {
  Torus2D torus(5, 5);
  TorusDor dor(torus);
  for (NodeId s = 0; s < torus.num_nodes(); ++s) {
    for (NodeId d = 0; d < torus.num_nodes(); ++d) {
      if (s == d) continue;
      EXPECT_EQ(walk(torus, dor, s, d), torus.min_hops(s, d));
    }
  }
}

TEST(RingShortest, PicksShortSideAndDatelines) {
  Ring ring(8);
  RingShortest rs(ring);
  for (NodeId s = 0; s < 8; ++s) {
    for (NodeId d = 0; d < 8; ++d) {
      if (s == d) continue;
      EXPECT_EQ(walk(ring, rs, s, d), ring.min_hops(s, d));
    }
  }
}

TEST(RoutingFactory, AutoPicksNaturalAlgorithm) {
  Mesh2D mesh(4, 4);
  Torus2D torus(4, 4);
  Ring ring(6);
  EXPECT_EQ(make_routing("auto", mesh)->name(), "xy");
  EXPECT_EQ(make_routing("auto", torus)->name(), "torus_dor");
  EXPECT_EQ(make_routing("auto", ring)->name(), "ring_shortest");
  EXPECT_THROW(make_routing("xy", torus), std::invalid_argument);
}

}  // namespace
}  // namespace drlnoc::noc
