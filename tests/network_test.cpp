#include <gtest/gtest.h>

#include <map>
#include <set>

#include "noc/network.h"
#include "noc/simulator.h"
#include "noc/workload.h"

namespace drlnoc::noc {
namespace {

NetworkParams small_mesh(std::uint64_t seed = 1) {
  NetworkParams p;
  p.topology = "mesh";
  p.width = 4;
  p.height = 4;
  p.max_vcs = 4;
  p.max_depth = 8;
  p.flits_per_packet = 4;
  p.seed = seed;
  return p;
}

// Runs traffic then drains; returns (injected flits, ejected flits).
void run_and_drain(Network& net, TrafficInjector& w, int cycles) {
  for (int i = 0; i < cycles; ++i) net.step(&w);
  int guard = 0;
  while (!net.drained() && guard < 200000) {
    net.step(nullptr);
    ++guard;
  }
  ASSERT_TRUE(net.drained()) << "network failed to drain";
}

TEST(Network, DeliversSinglePacket) {
  Network net(small_mesh());
  // Hand-inject one packet from node 0 to node 15.
  net.nic(0).offer_packet(15, 0.0, true, 1);
  int guard = 0;
  while (!net.drained() && guard < 10000) {
    net.step(nullptr);
    ++guard;
  }
  ASSERT_TRUE(net.drained());
  auto records = net.drain_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].src, 0);
  EXPECT_EQ(records[0].dst, 15);
  EXPECT_EQ(records[0].length, 4);
  EXPECT_EQ(records[0].hops, 7u);  // 6 inter-router hops + ejection router
}

TEST(Network, FlitConservationUniform) {
  Network net(small_mesh(7));
  SteadyWorkload w = SteadyWorkload::make(net.topology(), "uniform", 0.05);
  run_and_drain(net, w, 5000);
  EXPECT_EQ(net.total_packets_offered(), net.total_packets_received());
  EXPECT_EQ(net.total_flits_injected(), net.total_flits_ejected());
  EXPECT_EQ(net.total_flits_injected(), net.total_packets_offered() * 4);
}

TEST(Network, NoPacketLostOrDuplicated) {
  Network net(small_mesh(11));
  SteadyWorkload w = SteadyWorkload::make(net.topology(), "uniform", 0.08);
  run_and_drain(net, w, 4000);
  auto records = net.drain_records();
  std::set<std::uint64_t> ids;
  for (const auto& r : records) {
    EXPECT_TRUE(ids.insert(r.packet_id).second)
        << "duplicate packet " << r.packet_id;
  }
  EXPECT_EQ(ids.size(), net.total_packets_offered());
}

TEST(Network, LatencyRespectsLowerBound) {
  Network net(small_mesh(13));
  SteadyWorkload w = SteadyWorkload::make(net.topology(), "uniform", 0.02);
  run_and_drain(net, w, 4000);
  const auto& topo = net.topology();
  for (const auto& r : net.drain_records()) {
    // Lower bound: the head must cross min_hops inter-router links plus the
    // injection and ejection links (1 cycle each, single-cycle routers), and
    // the tail trails by the serialization latency. Core cycles == router
    // cycles at the top DVFS level.
    const double lower = topo.min_hops(r.src, r.dst) + 2 + (r.length - 1);
    EXPECT_GE(r.eject_time - r.inject_time, lower - 1e-9)
        << r.src << "->" << r.dst;
    EXPECT_GE(static_cast<int>(r.hops), topo.min_hops(r.src, r.dst) + 1);
  }
}

TEST(Network, DeterministicAcrossRuns) {
  auto run = [] {
    Network net(small_mesh(21));
    SteadyWorkload w = SteadyWorkload::make(net.topology(), "uniform", 0.06);
    for (int i = 0; i < 3000; ++i) net.step(&w);
    EpochStats s = net.drain_epoch_stats();
    return std::tuple{s.packets_received, s.avg_latency, s.flits_injected,
                      s.dynamic_energy_pj};
  };
  EXPECT_EQ(run(), run());
}

TEST(Network, TorusAndRingDeliverEverything) {
  for (const char* kind : {"torus", "ring"}) {
    NetworkParams p = small_mesh(31);
    p.topology = kind;
    p.initial_config.active_vcs = 4;
    Network net(p);
    SteadyWorkload w = SteadyWorkload::make(net.topology(), "uniform", 0.05);
    run_and_drain(net, w, 5000);
    EXPECT_EQ(net.total_packets_offered(), net.total_packets_received())
        << kind;
  }
}

TEST(Network, AdaptiveRoutingDelivers) {
  for (const char* algo : {"westfirst", "oddeven"}) {
    NetworkParams p = small_mesh(17);
    p.routing = algo;
    Network net(p);
    SteadyWorkload w = SteadyWorkload::make(net.topology(), "transpose", 0.1);
    run_and_drain(net, w, 5000);
    EXPECT_EQ(net.total_packets_offered(), net.total_packets_received())
        << algo;
  }
}

TEST(Network, HigherLoadHigherLatency) {
  auto latency_at = [](double rate) {
    NetworkParams p = small_mesh(5);
    return measure_point(p, "uniform", rate).stats.avg_latency;
  };
  const double low = latency_at(0.02);
  const double high = latency_at(0.20);
  EXPECT_GT(low, 0.0);
  EXPECT_GT(high, 1.3 * low);
}

TEST(Network, MoreVcsRaiseSaturationThroughput) {
  auto accepted_at = [](int vcs, double rate) {
    NetworkParams p = small_mesh(9);
    p.initial_config.active_vcs = vcs;
    Network net(p);
    SteadyWorkload w = SteadyWorkload::make(net.topology(), "uniform", rate);
    SteadyRunParams rp;
    rp.drain_limit = 20000;
    return run_steady_state(net, w, rp).stats.accepted_rate;
  };
  // Past the 1-VC saturation point, 4 VCs must carry clearly more traffic
  // (measured: ~0.169 vs ~0.150 packets/node/cycle on this setup).
  EXPECT_GT(accepted_at(4, 0.25), 1.08 * accepted_at(1, 0.25));
}

TEST(Network, ReconfigSafetyUnderRandomChanges) {
  // Invariant 6: random live reconfiguration never loses flits.
  NetworkParams p = small_mesh(23);
  Network net(p);
  SteadyWorkload w = SteadyWorkload::make(net.topology(), "uniform", 0.10);
  util::Rng rng(99);
  const std::vector<int> vcs = {1, 2, 4};
  const std::vector<int> depths = {2, 4, 8};
  for (int burst = 0; burst < 40; ++burst) {
    NocConfig c;
    c.active_vcs = vcs[rng.below(3)];
    c.active_depth = depths[rng.below(3)];
    c.dvfs_level = static_cast<int>(rng.below(4));
    net.apply_config(c);
    for (int i = 0; i < 200; ++i) net.step(&w);
  }
  net.apply_config(NocConfig{4, 8, 3});
  int guard = 0;
  while (!net.drained() && guard < 200000) {
    net.step(nullptr);
    ++guard;
  }
  ASSERT_TRUE(net.drained());
  EXPECT_EQ(net.total_packets_offered(), net.total_packets_received());
  EXPECT_EQ(net.total_flits_injected(), net.total_flits_ejected());
}

TEST(Network, CreditAdvertisementInvariant) {
  // Shrink is lazy (credits are withheld as flits drain), so after a shrink
  // the advertised capacity sits in [target, max_depth]; growth is eager, so
  // after growing back every input VC advertises exactly the new depth.
  NetworkParams p = small_mesh(25);
  Network net(p);
  SteadyWorkload w = SteadyWorkload::make(net.topology(), "uniform", 0.08);
  for (int i = 0; i < 1000; ++i) net.step(&w);
  net.apply_config(NocConfig{2, 3, 2});
  for (int i = 0; i < 2000; ++i) net.step(&w);
  for (int node = 0; node < net.num_nodes(); ++node) {
    Router& r = net.router(node);
    for (int port = 0; port < net.topology().radix(); ++port) {
      for (int vc = 0; vc < p.max_vcs; ++vc) {
        const int adv = r.advertised_capacity(port, vc);
        EXPECT_GE(adv, 3) << "node " << node << " port " << port;
        EXPECT_LE(adv, p.max_depth);
      }
    }
  }
  net.apply_config(NocConfig{4, 8, 3});
  int guard = 0;
  while (!net.drained() && guard < 100000) {
    net.step(nullptr);
    ++guard;
  }
  ASSERT_TRUE(net.drained());
  for (int node = 0; node < net.num_nodes(); ++node) {
    Router& r = net.router(node);
    for (int port = 0; port < net.topology().radix(); ++port) {
      for (int vc = 0; vc < p.max_vcs; ++vc) {
        EXPECT_EQ(r.advertised_capacity(port, vc), 8)
            << "node " << node << " port " << port << " vc " << vc;
      }
    }
  }
}

TEST(Network, DvfsSlowdownRaisesLatencyLowersPower) {
  auto stats_at = [](int level) {
    NetworkParams p = small_mesh(27);
    p.initial_config.dvfs_level = level;
    Network net(p);
    SteadyWorkload w = SteadyWorkload::make(net.topology(), "uniform", 0.03);
    SteadyRunParams rp;
    return run_steady_state(net, w, rp).stats;
  };
  const EpochStats slow = stats_at(0);
  const EpochStats fast = stats_at(3);
  EXPECT_GT(slow.avg_latency, 1.5 * fast.avg_latency);
  EXPECT_LT(slow.avg_power_mw(2.0), fast.avg_power_mw(2.0));
}

TEST(Network, GatingReducesStaticEnergy) {
  auto static_energy = [](int vcs, int depth) {
    NetworkParams p = small_mesh(29);
    p.initial_config.active_vcs = vcs;
    p.initial_config.active_depth = depth;
    Network net(p);
    SteadyWorkload w = SteadyWorkload::make(net.topology(), "uniform", 0.02);
    return net.run_epoch(&w, 2000).static_energy_pj;
  };
  EXPECT_LT(static_energy(1, 2), static_energy(4, 8));
}

TEST(Network, EpochStatsRatesConsistent) {
  Network net(small_mesh(33));
  SteadyWorkload w = SteadyWorkload::make(net.topology(), "uniform", 0.05);
  const EpochStats s = net.run_epoch(&w, 4000);
  EXPECT_NEAR(s.offered_rate, 0.05, 0.01);
  EXPECT_GT(s.packets_received, 0u);
  EXPECT_EQ(s.router_cycles, 4000u);
  EXPECT_DOUBLE_EQ(s.core_cycles, 4000.0);  // top DVFS level: divisor 1
  EXPECT_GT(s.dynamic_energy_pj, 0.0);
  EXPECT_GT(s.static_energy_pj, 0.0);
}

TEST(Network, RejectsBadConfig) {
  Network net(small_mesh());
  EXPECT_THROW(net.apply_config(NocConfig{0, 8, 3}), std::invalid_argument);
  EXPECT_THROW(net.apply_config(NocConfig{4, 9, 3}), std::invalid_argument);
  EXPECT_THROW(net.apply_config(NocConfig{4, 8, 4}), std::invalid_argument);
}

TEST(Network, PipelineStagesRaiseLatencyProportionally) {
  auto latency_with = [](int stages) {
    NetworkParams p = small_mesh(41);
    p.pipeline_stages = stages;
    return measure_point(p, "uniform", 0.02).stats;
  };
  const EpochStats one = latency_with(1);
  const EpochStats four = latency_with(4);
  // Each router traversal adds (stages - 1) extra cycles; uniform 4x4 mesh
  // averages ~3.7 traversals.
  EXPECT_NEAR(four.avg_latency - one.avg_latency, 3.0 * one.avg_hops, 3.0);
  EXPECT_EQ(one.packets_offered, four.packets_offered);  // same seed
}

TEST(Network, PipelinedNetworkStillConservesFlits) {
  NetworkParams p = small_mesh(43);
  p.pipeline_stages = 3;
  Network net(p);
  SteadyWorkload w = SteadyWorkload::make(net.topology(), "transpose", 0.08);
  run_and_drain(net, w, 3000);
  EXPECT_EQ(net.total_packets_offered(), net.total_packets_received());
}

TEST(Network, CustomPacketLengthsHonored) {
  Network net(small_mesh(45));
  net.nic(0).offer_packet(5, 0.0, true, 1, /*length=*/1);
  net.nic(0).offer_packet(5, 0.0, true, 2, /*length=*/9);
  int guard = 0;
  while (!net.drained() && guard < 10000) {
    net.step(nullptr);
    ++guard;
  }
  ASSERT_TRUE(net.drained());
  const auto records = net.drain_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].length + records[1].length, 10);
  EXPECT_EQ(net.total_flits_injected(), 10u);
}

TEST(Network, PhasePacketLengthFlowsThrough) {
  NetworkParams p = small_mesh(47);
  Network net(p);
  std::vector<Phase> phases = {
      {"uniform", 0.05, 1e9, "bernoulli", /*flits_per_packet=*/2}};
  PhasedWorkload w(net.topology(), phases);
  run_and_drain(net, w, 2000);
  const auto records = net.drain_records();
  ASSERT_FALSE(records.empty());
  for (const auto& r : records) EXPECT_EQ(r.length, 2);
}

TEST(Network, PerRouterConfigValidation) {
  Network net(small_mesh());
  std::vector<NocConfig> configs(15, NocConfig{2, 4, 2});
  EXPECT_THROW(net.apply_per_router(configs), std::invalid_argument);
  configs.resize(16, NocConfig{2, 4, 2});
  configs[3].dvfs_level = 1;  // mixed clock domains are not modelled
  EXPECT_THROW(net.apply_per_router(configs), std::invalid_argument);
  configs[3].dvfs_level = 2;
  EXPECT_NO_THROW(net.apply_per_router(configs));
  EXPECT_EQ(net.config_of(5), (NocConfig{2, 4, 2}));
}

TEST(Network, HeterogeneousConfigConservesFlits) {
  Network net(small_mesh(51));
  // Provision a 2x2 hotspot region fully, starve the rest.
  std::vector<NocConfig> configs(16, NocConfig{1, 2, 3});
  for (NodeId n : {5, 6, 9, 10}) {
    configs[static_cast<std::size_t>(n)] = NocConfig{4, 8, 3};
  }
  net.apply_per_router(configs);
  SteadyWorkload w = SteadyWorkload::make(net.topology(), "hotspot", 0.08);
  for (int i = 0; i < 4000; ++i) net.step(&w);
  int guard = 0;
  while (!net.drained() && guard < 200000) {
    net.step(nullptr);
    ++guard;
  }
  ASSERT_TRUE(net.drained());
  EXPECT_EQ(net.total_packets_offered(), net.total_packets_received());
}

TEST(Network, DownstreamGatingRespectedOnHeterogeneousLinks) {
  // Router 1 keeps 1 VC; its upstream neighbour (router 0) must never place
  // flits on router 1's gated VCs even though router 0 itself has 4 active.
  Network net(small_mesh(53));
  std::vector<NocConfig> configs(16, NocConfig{4, 8, 3});
  configs[1] = NocConfig{1, 8, 3};
  net.apply_per_router(configs);
  EXPECT_EQ(net.router(0).output_active_vcs(1), 1);  // east port toward 1
  SteadyWorkload w = SteadyWorkload::make(net.topology(), "uniform", 0.15);
  for (int i = 0; i < 3000; ++i) {
    net.step(&w);
    for (int vc = 1; vc < 4; ++vc) {
      // Router 1's west input (port 2, fed by router 0).
      EXPECT_EQ(net.router(1).input_occupancy(2, vc), 0)
          << "cycle " << i << " vc " << vc;
    }
  }
}

TEST(Network, HeterogeneousStaticEnergyBetweenExtremes) {
  auto energy_of = [](std::vector<NocConfig> configs) {
    NetworkParams p = small_mesh(55);
    Network net(p);
    if (!configs.empty()) net.apply_per_router(configs);
    SteadyWorkload w = SteadyWorkload::make(net.topology(), "uniform", 0.02);
    return net.run_epoch(&w, 1000).static_energy_pj;
  };
  const double uniform_max = energy_of(std::vector<NocConfig>(16, {4, 8, 3}));
  const double uniform_min = energy_of(std::vector<NocConfig>(16, {1, 2, 3}));
  std::vector<NocConfig> mixed(16, NocConfig{1, 2, 3});
  for (int i = 0; i < 8; ++i) mixed[static_cast<std::size_t>(i)] = {4, 8, 3};
  const double hetero = energy_of(mixed);
  EXPECT_LT(uniform_min, hetero);
  EXPECT_LT(hetero, uniform_max);
}

// Cross-product stress: flit conservation and drain must hold for every
// combination of topology/routing, VC budget and pipeline depth, under a
// bursty hotspot workload with a mid-run reconfiguration (the union of
// invariants 1, 2 and 6).
struct StressCase {
  const char* topology;
  const char* routing;
  int vcs;
  int pipeline;
};

class ConservationStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(ConservationStress, NoFlitEverLost) {
  const StressCase& c = GetParam();
  NetworkParams p;
  p.topology = c.topology;
  p.width = 4;
  p.height = 4;
  p.routing = c.routing;
  p.pipeline_stages = c.pipeline;
  p.initial_config.active_vcs = c.vcs;
  p.seed = 77;
  Network net(p);
  SteadyWorkload w = SteadyWorkload::make(net.topology(), "hotspot", 0.10,
                                          "burst");
  for (int i = 0; i < 1500; ++i) net.step(&w);
  // Mid-run squeeze and re-expansion.
  net.apply_config(NocConfig{std::max(c.vcs / 2, net.topology().required_vc_classes()),
                             2, 1});
  for (int i = 0; i < 1500; ++i) net.step(&w);
  net.apply_config(NocConfig{4, 8, 3});
  int guard = 0;
  while (!net.drained() && guard < 300000) {
    net.step(nullptr);
    ++guard;
  }
  ASSERT_TRUE(net.drained());
  EXPECT_EQ(net.total_packets_offered(), net.total_packets_received());
  EXPECT_EQ(net.total_flits_injected(), net.total_flits_ejected());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConservationStress,
    ::testing::Values(StressCase{"mesh", "xy", 4, 1},
                      StressCase{"mesh", "xy", 2, 3},
                      StressCase{"mesh", "yx", 4, 1},
                      StressCase{"mesh", "westfirst", 4, 1},
                      StressCase{"mesh", "oddeven", 4, 2},
                      StressCase{"torus", "auto", 4, 1},
                      StressCase{"torus", "auto", 2, 2},
                      StressCase{"ring", "auto", 4, 1},
                      StressCase{"ring", "auto", 2, 3}),
    [](const ::testing::TestParamInfo<StressCase>& info) {
      return std::string(info.param.topology) + "_" + info.param.routing +
             "_vc" + std::to_string(info.param.vcs) + "_p" +
             std::to_string(info.param.pipeline);
    });

TEST(PhasedWorkload, PhaseLookupAndLooping) {
  Mesh2D mesh(4, 4);
  std::vector<Phase> phases = {{"uniform", 0.05, 100.0, "bernoulli"},
                               {"hotspot", 0.1, 50.0, "bernoulli"}};
  PhasedWorkload w(mesh, phases);
  EXPECT_EQ(w.phase_index(0.0), 0u);
  EXPECT_EQ(w.phase_index(99.9), 0u);
  EXPECT_EQ(w.phase_index(100.0), 1u);
  EXPECT_EQ(w.phase_index(149.9), 1u);
  EXPECT_EQ(w.phase_index(150.0), 0u);  // loops
  EXPECT_DOUBLE_EQ(w.total_duration(), 150.0);
}

}  // namespace
}  // namespace drlnoc::noc
