// Kernel-equivalence tests: the register-blocked matmul kernels must be
// BIT-identical to the naive reference loops (the determinism contract's
// summation-order rule) across odd shapes, sparsity patterns, and signed
// zeros.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "nn/matrix.h"
#include "util/rng.h"

namespace drlnoc::nn {
namespace {

// Naive references: exactly the seed implementation's loops.

Matrix ref_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix ref_matmul_tn(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols(), 0.0);
  for (std::size_t k = 0; k < a.rows(); ++k) {
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = a.at(k, i);
      if (aki == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aki * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix ref_matmul_nt(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += a.at(i, k) * b.at(j, k);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

void expect_bit_identical(const Matrix& got, const Matrix& want,
                          const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.raw()[i]),
              std::bit_cast<std::uint64_t>(want.raw()[i]))
        << what << " element " << i << ": " << got.raw()[i]
        << " != " << want.raw()[i];
  }
}

Matrix random_matrix(std::size_t r, std::size_t c, util::Rng& rng,
                     double zero_prob) {
  Matrix m(r, c);
  for (double& v : m.raw()) {
    if (rng.uniform() < zero_prob) {
      // Mix +0 and -0: the zero-skip must treat both identically.
      v = rng.chance(0.5) ? 0.0 : -0.0;
    } else {
      v = rng.uniform(-2.0, 2.0);
    }
  }
  return m;
}

class KernelEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(KernelEquivalence, MatmulAcrossOddShapes) {
  util::Rng rng(31);
  const double zero_prob = GetParam();
  const std::size_t dims[] = {1, 2, 3, 5, 7, 8, 9, 13, 17, 33};
  for (std::size_t m : dims) {
    for (std::size_t k : dims) {
      for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                            std::size_t{17}, std::size_t{36}}) {
        const Matrix a = random_matrix(m, k, rng, zero_prob);
        const Matrix b = random_matrix(k, n, rng, zero_prob);
        expect_bit_identical(matmul(a, b), ref_matmul(a, b), "matmul");
      }
    }
  }
}

TEST_P(KernelEquivalence, MatmulTnAcrossOddShapes) {
  util::Rng rng(32);
  const double zero_prob = GetParam();
  for (std::size_t rows : {1u, 2u, 5u, 9u, 32u}) {
    for (std::size_t m : {1u, 3u, 7u, 20u, 33u}) {
      for (std::size_t n : {1u, 5u, 8u, 36u}) {
        const Matrix a = random_matrix(rows, m, rng, zero_prob);
        const Matrix b = random_matrix(rows, n, rng, zero_prob);
        expect_bit_identical(matmul_tn(a, b), ref_matmul_tn(a, b),
                             "matmul_tn");
      }
    }
  }
}

TEST_P(KernelEquivalence, MatmulNtAcrossOddShapes) {
  util::Rng rng(33);
  const double zero_prob = GetParam();
  for (std::size_t m : {1u, 2u, 7u, 31u}) {
    for (std::size_t n : {1u, 4u, 9u, 33u}) {
      for (std::size_t k : {1u, 3u, 8u, 21u}) {
        const Matrix a = random_matrix(m, k, rng, zero_prob);
        const Matrix b = random_matrix(n, k, rng, zero_prob);
        expect_bit_identical(matmul_nt(a, b), ref_matmul_nt(a, b),
                             "matmul_nt");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sparsity, KernelEquivalence,
                         ::testing::Values(0.0, 0.5, 0.97));

TEST(KernelEquivalence, TransposedFormulationOfWeightGradIsBitIdentical) {
  // The adaptive weight-gradient path computes xᵀg either directly or as
  // (gᵀx)ᵀ; both must agree bit for bit even with masked-sparse g (exactly
  // one nonzero per row, like the DQN loss gradient).
  util::Rng rng(34);
  const Matrix x = random_matrix(32, 64, rng, 0.5);
  Matrix g(32, 36, 0.0);
  for (std::size_t r = 0; r < g.rows(); ++r) {
    g.at(r, rng.below(36)) = rng.uniform(-1.0, 1.0);
  }
  Matrix direct, swapped, swapped_t;
  matmul_tn_into(direct, x, g);
  matmul_tn_into(swapped, g, x);
  transpose_into(swapped_t, swapped);
  expect_bit_identical(swapped_t, direct, "weight-grad swap");
}

TEST(KernelEquivalence, IntoVariantsReuseStorage) {
  util::Rng rng(35);
  const Matrix a = random_matrix(9, 13, rng, 0.3);
  const Matrix b = random_matrix(13, 11, rng, 0.3);
  Matrix c;
  matmul_into(c, a, b);
  const double* data_before = c.data();
  matmul_into(c, a, b);  // same shape: must not reallocate
  EXPECT_EQ(c.data(), data_before);
  expect_bit_identical(c, ref_matmul(a, b), "matmul_into reuse");
}

TEST(KernelEquivalence, TransposeRoundTrip) {
  util::Rng rng(36);
  const Matrix a = random_matrix(7, 12, rng, 0.2);
  Matrix t, tt;
  transpose_into(t, a);
  ASSERT_EQ(t.rows(), 12u);
  ASSERT_EQ(t.cols(), 7u);
  transpose_into(tt, t);
  expect_bit_identical(tt, a, "transpose round trip");
}

TEST(ArgmaxRow, MatchesFirstMaxSemantics) {
  Matrix m(2, 4);
  m.set_row(0, {1.0, 3.0, 3.0, 2.0});
  m.set_row(1, {-5.0, -1.0, -2.0, -1.0});
  EXPECT_EQ(argmax_row(m, 0), 1u);  // ties: lowest index wins
  EXPECT_EQ(argmax_row(m, 1), 1u);
  EXPECT_EQ(m.row_data(0)[1], 3.0);
}

}  // namespace
}  // namespace drlnoc::nn
