// Fault-injection subsystem tests: parameter/scenario validation messages,
// `.drlsc` [faults] round-trips, the retry/backoff/budget state machine,
// minimal-path rerouting around dead links (with conservation: nothing is
// lost beyond the retry budget), and determinism — a faulted run is
// bit-identical across repeated runs and experiment-thread counts, and a
// build with faults *disabled* must not perturb the healthy-path goldens.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>

#include "core/controller.h"
#include "core/parallel.h"
#include "noc/faults.h"
#include "noc/network.h"
#include "noc/workload.h"
#include "scenario/runtime.h"
#include "scenario/scenario.h"
#include "scenario/scenario_io.h"

namespace drlnoc {
namespace {

/// FNV-1a over 64-bit words (same helper as tests/determinism_test.cpp).
class Fnv {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

void mix_stats(Fnv& h, const noc::EpochStats& s) {
  h.mix(s.packets_offered);
  h.mix(s.packets_received);
  h.mix(s.flits_injected);
  h.mix(s.flits_ejected);
  h.mix(s.avg_latency);
  h.mix(s.p95_latency);
  h.mix(s.max_latency);
  h.mix(s.avg_hops);
  h.mix(s.flits_dropped);
  h.mix(s.retries);
  h.mix(s.packets_lost);
  h.mix(s.retry_latency);
  h.mix(s.rerouted_hops);
}

template <typename Fn>
std::string rejection(Fn&& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

// --- parameter validation ---------------------------------------------------

TEST(FaultParams, ValidationMessages) {
  noc::FaultParams bad_rate;
  bad_rate.link_fault_rate = 1.5;
  EXPECT_EQ(rejection([&] { bad_rate.validate(); }),
            "faults: link_fault_rate must be finite in [0, 1]");

  noc::FaultParams bad_timeout;
  bad_timeout.retry_timeout = 0;
  EXPECT_EQ(rejection([&] { bad_timeout.validate(); }),
            "faults: retry_timeout must be >= 1");

  noc::FaultParams bad_backoff;
  bad_backoff.retry_backoff = 0.5;
  EXPECT_EQ(rejection([&] { bad_backoff.validate(); }),
            "faults: retry_backoff must be finite and >= 1");

  noc::FaultParams bad_budget;
  bad_budget.retry_budget = -1;
  EXPECT_EQ(rejection([&] { bad_budget.validate(); }),
            "faults: retry_budget must be >= 0");

  noc::FaultParams bad_factor;
  noc::FaultEvent slow;
  slow.kind = noc::FaultEvent::Kind::kSlowdown;
  slow.factor = 0;
  bad_factor.events = {slow};
  EXPECT_EQ(rejection([&] { bad_factor.validate(); }),
            "faults: event0: slowdown factor must be >= 1");
}

TEST(FaultParams, TopologyValidation) {
  const auto topo = noc::make_topology("mesh", 4, 4);

  noc::FaultParams bad_node;
  noc::FaultEvent ev;
  ev.kind = noc::FaultEvent::Kind::kLinkDown;
  ev.node = 16;  // mesh has nodes 0..15
  ev.port = 1;
  bad_node.events = {ev};
  EXPECT_NO_THROW(bad_node.validate());  // needs the topology to know
  EXPECT_NE(rejection([&] { bad_node.validate(*topo); }).find("node outside"),
            std::string::npos);

  noc::FaultParams bad_port;
  ev.node = 3;   // north-east corner: no east neighbor
  ev.port = 1;   // east
  bad_port.events = {ev};
  EXPECT_NE(rejection([&] {
              bad_port.validate(*topo);
            }).find("port is not a connected link"),
            std::string::npos);

  // Killing both directions around node 0 at cycle 0 disconnects it; the
  // config is rejected up front instead of mid-run.
  noc::FaultParams disconnect;
  noc::FaultEvent east;
  east.kind = noc::FaultEvent::Kind::kLinkDown;
  east.at_cycle = 0;
  east.node = 0;
  east.port = 1;  // 0 -> 1
  noc::FaultEvent north;
  north.kind = noc::FaultEvent::Kind::kLinkDown;
  north.at_cycle = 0;
  north.node = 0;
  north.port = 3;  // 0 -> 4 (north)
  disconnect.events = {east, north};
  const std::string msg = rejection([&] { disconnect.validate(*topo); });
  EXPECT_NE(msg.find("cycle-0 events reject"), std::string::npos) << msg;
  EXPECT_NE(msg.find("disconnect"), std::string::npos) << msg;
}

// --- retry state machine ----------------------------------------------------

TEST(FaultModel, RetryBackoffAndBudget) {
  const auto topo = noc::make_topology("mesh", 4, 4);
  noc::FaultParams fp;
  fp.link_fault_rate = 0.01;  // enabled; the hash path is not used here
  fp.retry_timeout = 10;
  fp.retry_backoff = 2.0;
  fp.retry_budget = 3;
  noc::FaultModel model(fp, *topo);

  noc::PacketRecord rec;
  rec.packet_id = 77;
  rec.src = 0;
  rec.dst = 5;
  rec.length = 4;
  rec.corrupted = true;

  // Attempt 1: due at 100 + 10 * 2^0.
  EXPECT_EQ(model.on_corrupt_delivery(rec, 100),
            noc::FaultModel::RetryVerdict::kRetryScheduled);
  EXPECT_TRUE(model.retries_pending());
  EXPECT_EQ(model.next_retry_due(), 110u);
  noc::FaultModel::Retry r;
  EXPECT_FALSE(model.pop_due_retry(109, r));
  ASSERT_TRUE(model.pop_due_retry(110, r));
  EXPECT_EQ(r.packet_id, 77u);
  EXPECT_EQ(r.src, 0);
  EXPECT_EQ(model.attempts_of(77), 1);

  // Attempt 2: backoff doubles the delay (10 * 2^1 = 20).
  EXPECT_EQ(model.on_corrupt_delivery(rec, 150),
            noc::FaultModel::RetryVerdict::kRetryScheduled);
  EXPECT_EQ(model.next_retry_due(), 170u);
  ASSERT_TRUE(model.pop_due_retry(170, r));

  // Attempt 3: 10 * 2^2 = 40.
  EXPECT_EQ(model.on_corrupt_delivery(rec, 200),
            noc::FaultModel::RetryVerdict::kRetryScheduled);
  EXPECT_EQ(model.next_retry_due(), 240u);
  ASSERT_TRUE(model.pop_due_retry(240, r));

  // Budget of 3 exhausted: the fourth corruption loses the packet and drops
  // its bookkeeping.
  EXPECT_EQ(model.on_corrupt_delivery(rec, 300),
            noc::FaultModel::RetryVerdict::kLost);
  EXPECT_FALSE(model.retries_pending());
  EXPECT_EQ(model.attempts_of(77), 0);
}

TEST(FaultModel, CleanDeliveryForgetsAttempts) {
  const auto topo = noc::make_topology("mesh", 4, 4);
  noc::FaultParams fp;
  fp.link_fault_rate = 0.01;
  fp.retry_budget = 1;
  noc::FaultModel model(fp, *topo);

  noc::PacketRecord rec;
  rec.packet_id = 9;
  rec.corrupted = true;
  rec.src = 0;
  rec.dst = 1;
  EXPECT_EQ(model.on_corrupt_delivery(rec, 0),
            noc::FaultModel::RetryVerdict::kRetryScheduled);
  EXPECT_EQ(model.attempts_of(9), 1);
  model.forget(9);  // the retry delivered clean
  EXPECT_EQ(model.attempts_of(9), 0);
  // A later corruption of a *reused* id starts from a fresh budget.
  EXPECT_EQ(model.on_corrupt_delivery(rec, 500),
            noc::FaultModel::RetryVerdict::kRetryScheduled);
}

// Deterministic corruption: pure hash of (seed, link, cycle, packet, seq) —
// same inputs, same verdict; different seeds decorrelate.
TEST(FaultModel, CorruptionHashIsDeterministic) {
  const auto topo = noc::make_topology("mesh", 4, 4);
  noc::FaultParams fp;
  fp.seed = 123;
  fp.link_fault_rate = 0.3;
  noc::FaultModel a(fp, *topo);
  noc::FaultModel b(fp, *topo);
  fp.seed = 124;
  noc::FaultModel c(fp, *topo);

  noc::Flit f;
  int differ = 0;
  for (std::uint64_t pkt = 1; pkt <= 200; ++pkt) {
    f.packet_id = pkt;
    f.seq = static_cast<int>(pkt % 5);
    const bool va = a.corrupt_on_link(5, 1, f, 1000 + pkt);
    EXPECT_EQ(va, b.corrupt_on_link(5, 1, f, 1000 + pkt));
    if (va != c.corrupt_on_link(5, 1, f, 1000 + pkt)) ++differ;
  }
  EXPECT_GT(differ, 0);  // a different seed must change the fault pattern
}

// --- rerouting around dead links --------------------------------------------

// A permanent link failure on an otherwise fault-free fabric: every packet
// still delivers (conservation), detours show up as rerouted_hops, and no
// retry machinery engages.
TEST(FaultRouting, PermanentLinkFailureReroutesWithoutLoss) {
  noc::NetworkParams p;
  p.width = p.height = 4;
  p.seed = 21;
  noc::Network net(p);

  noc::FaultParams fp;
  noc::FaultEvent ev;
  ev.kind = noc::FaultEvent::Kind::kLinkDown;
  ev.at_cycle = 0;
  ev.node = 5;
  ev.port = 1;  // 5 -> 6, on many XY minimal paths
  fp.events = {ev};
  net.set_fault_model(fp);

  noc::SteadyWorkload w =
      noc::SteadyWorkload::make(net.topology(), "uniform", 0.10);
  noc::EpochStats total = net.run_epoch(&w, 2000);
  int guard = 0;
  while (!net.drained() && ++guard < 10000) net.step(nullptr);
  ASSERT_TRUE(net.drained());
  const noc::EpochStats tail = net.drain_epoch_stats();

  const std::uint64_t offered = total.packets_offered + tail.packets_offered;
  const std::uint64_t received =
      total.packets_received + tail.packets_received;
  EXPECT_GT(offered, 0u);
  EXPECT_EQ(received, offered);  // nothing lost: reroute, don't drop
  EXPECT_GT(total.rerouted_hops + tail.rerouted_hops, 0u);
  EXPECT_EQ(total.retries + tail.retries, 0u);
  EXPECT_EQ(total.packets_lost + tail.packets_lost, 0u);
  EXPECT_EQ(total.flits_dropped + tail.flits_dropped, 0u);
}

// Transient corruption end-to-end: dropped flits are retried and, within
// budget, eventually deliver — offered packets are conserved as
// received + lost, and losses can only happen after budget retries.
TEST(FaultRouting, TransientFaultsConservePackets) {
  noc::NetworkParams p;
  p.width = p.height = 4;
  p.seed = 33;
  noc::Network net(p);

  noc::FaultParams fp;
  fp.seed = 9;
  fp.link_fault_rate = 0.02;
  fp.retry_timeout = 32;
  fp.retry_budget = 6;
  net.set_fault_model(fp);

  noc::SteadyWorkload w =
      noc::SteadyWorkload::make(net.topology(), "uniform", 0.08);
  noc::EpochStats total = net.run_epoch(&w, 3000);
  int guard = 0;
  while (!net.drained() && ++guard < 50000) net.step(nullptr);
  ASSERT_TRUE(net.drained());
  const noc::EpochStats tail = net.drain_epoch_stats();

  const std::uint64_t offered = total.packets_offered + tail.packets_offered;
  const std::uint64_t received =
      total.packets_received + tail.packets_received;
  const std::uint64_t lost = total.packets_lost + tail.packets_lost;
  EXPECT_GT(offered, 0u);
  EXPECT_GT(total.retries + tail.retries, 0u);
  EXPECT_GT(total.flits_dropped + tail.flits_dropped, 0u);
  EXPECT_EQ(received + lost, offered);
}

// --- determinism ------------------------------------------------------------

noc::EpochStats faulted_run(int seed_offset) {
  noc::NetworkParams p;
  p.width = p.height = 4;
  p.seed = 42 + static_cast<std::uint64_t>(seed_offset);
  noc::Network net(p);
  noc::FaultParams fp;
  fp.seed = 5;
  fp.link_fault_rate = 0.01;
  fp.retry_timeout = 24;
  noc::FaultEvent down;
  down.kind = noc::FaultEvent::Kind::kLinkDown;
  down.at_cycle = 500;
  down.node = 9;
  down.port = 2;  // 9 -> 8
  noc::FaultEvent slow;
  slow.kind = noc::FaultEvent::Kind::kSlowdown;
  slow.at_cycle = 800;
  slow.node = 6;
  slow.factor = 3;
  fp.events = {down, slow};
  net.set_fault_model(fp);
  noc::SteadyWorkload w =
      noc::SteadyWorkload::make(net.topology(), "uniform", 0.09);
  noc::EpochStats s = net.run_epoch(&w, 2000);
  int guard = 0;
  while (!net.drained() && ++guard < 50000) net.step(nullptr);
  const noc::EpochStats tail = net.drain_epoch_stats();
  s.rerouted_hops += tail.rerouted_hops;
  s.retries += tail.retries;
  s.packets_lost += tail.packets_lost;
  s.packets_received += tail.packets_received;
  return s;
}

// A faulted run (transient corruption + a mid-run link death + a slowdown)
// is bit-identical on repeated runs: no hidden RNG stream, no global state.
TEST(FaultDeterminism, RepeatedFaultedRunsAreBitIdentical) {
  Fnv a, b;
  mix_stats(a, faulted_run(0));
  mix_stats(b, faulted_run(0));
  EXPECT_EQ(a.value(), b.value());

  Fnv c;
  mix_stats(c, faulted_run(1));  // different traffic seed must differ
  EXPECT_NE(a.value(), c.value());
}

// Faulted evaluation is bit-identical at any experiment-thread count: each
// replica builds its own Network + FaultModel from the same scenario, so
// thread scheduling cannot reorder any fault decision.
TEST(FaultDeterminism, FaultedEvaluationBitIdenticalAcrossJobs) {
  auto scn = std::make_shared<scenario::Scenario>();
  scn->name = "faulted_jobs";
  scn->net.width = scn->net.height = 4;
  scn->net.seed = 3;
  scn->duration = 1500;
  scenario::TenantSpec t;
  t.name = "uniform";
  t.kind = scenario::WorkloadKind::kSteady;
  t.pattern = "uniform";
  t.rate = 0.08;
  t.stop = 1500.0;
  scn->tenants = {t};
  scn->faults.seed = 11;
  scn->faults.link_fault_rate = 0.01;
  scn->faults.retry_timeout = 32;

  core::NocEnvParams ep;
  ep.scenario = scn;
  ep.net.seed = scn->net.seed;
  ep.epoch_cycles = 500;
  ep.epochs_per_episode = 3;

  const core::ControllerFactory heuristic =
      [&](const core::NocConfigEnv& env) {
        core::HeuristicParams hp;
        hp.num_nodes = 16;
        return std::make_unique<core::HeuristicController>(env.actions(), hp);
      };

  std::vector<std::uint64_t> hashes;
  for (int jobs : {1, 2, 8}) {
    const core::ReplicationResult r = core::evaluate_many(
        ep, heuristic, /*replicas=*/4, core::ExperimentRunner(jobs));
    Fnv h;
    for (const core::Replica& rep : r.replicas) {
      h.mix(rep.seed);
      h.mix(rep.result.total_reward);
      h.mix(rep.result.mean_latency);
      h.mix(rep.result.flits_dropped);
      h.mix(rep.result.retries);
      h.mix(rep.result.packets_lost);
      h.mix(rep.result.rerouted_hops);
    }
    hashes.push_back(h.value());
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
}

// Golden pin for the faulted fabric itself: repeated-run identity above
// proves stability, this value pins it against future refactors (captured
// from the first fault-layer build).
constexpr std::uint64_t kFaultedGolden = 6244405601593279142ULL;

TEST(FaultDeterminism, FaultedRunGoldenHash) {
  Fnv h;
  mix_stats(h, faulted_run(0));
  EXPECT_EQ(h.value(), kFaultedGolden);
}

// --- scenario [faults] IO ---------------------------------------------------

scenario::Scenario faulted_scenario() {
  scenario::Scenario s;
  s.name = "faulty";
  s.net.width = s.net.height = 4;
  s.net.seed = 5;
  s.duration = 2000;
  scenario::TenantSpec t;
  t.name = "uni";
  t.kind = scenario::WorkloadKind::kSteady;
  t.pattern = "uniform";
  t.rate = 0.05;
  t.stop = 2000.0;
  s.tenants = {t};
  s.faults.seed = 77;
  s.faults.link_fault_rate = 0.015;
  s.faults.retry_timeout = 48;
  s.faults.retry_backoff = 1.5;
  s.faults.retry_budget = 5;
  noc::FaultEvent down;
  down.kind = noc::FaultEvent::Kind::kLinkDown;
  down.at_cycle = 700;
  down.node = 5;
  down.port = 1;
  noc::FaultEvent slow;
  slow.kind = noc::FaultEvent::Kind::kSlowdown;
  slow.at_cycle = 900;
  slow.node = 2;
  slow.factor = 4;
  s.faults.events = {down, slow};
  return s;
}

TEST(ScenarioFaults, WriteReadRoundTrips) {
  const scenario::Scenario s = faulted_scenario();
  std::ostringstream os;
  scenario::ScenarioWriter::write_text(os, s);
  EXPECT_NE(os.str().find("[faults]"), std::string::npos);

  const scenario::Scenario back = scenario::ScenarioReader::read_text(os.str());
  EXPECT_EQ(back.faults.seed, 77u);
  EXPECT_DOUBLE_EQ(back.faults.link_fault_rate, 0.015);
  EXPECT_EQ(back.faults.retry_timeout, 48u);
  EXPECT_DOUBLE_EQ(back.faults.retry_backoff, 1.5);
  EXPECT_EQ(back.faults.retry_budget, 5);
  ASSERT_EQ(back.faults.events.size(), 2u);
  EXPECT_EQ(back.faults.events[0].kind, noc::FaultEvent::Kind::kLinkDown);
  EXPECT_EQ(back.faults.events[0].at_cycle, 700u);
  EXPECT_EQ(back.faults.events[0].node, 5);
  EXPECT_EQ(back.faults.events[0].port, 1);
  EXPECT_EQ(back.faults.events[1].kind, noc::FaultEvent::Kind::kSlowdown);
  EXPECT_EQ(back.faults.events[1].factor, 4);
}

TEST(ScenarioFaults, FaultFreeScenarioSerialisesWithoutFaultsBlock) {
  scenario::Scenario s = faulted_scenario();
  s.faults = noc::FaultParams{};
  std::ostringstream os;
  scenario::ScenarioWriter::write_text(os, s);
  EXPECT_EQ(os.str().find("[faults]"), std::string::npos);
}

TEST(ScenarioFaults, ParserRejectionMessages) {
  const std::string base =
      "drlsc 1\nwidth = 4\nheight = 4\nduration = 1000\n"
      "tenants = 1\ntenant0.workload = steady\ntenant0.rate = 0.05\n"
      "tenant0.stop = 1000\n";

  EXPECT_EQ(rejection([&] {
              scenario::ScenarioReader::read_text(
                  base + "[faults]\nretry_timeout = 0\n");
            }),
            "scenario: faults.retry_timeout must be >= 1, got 0");

  EXPECT_EQ(rejection([&] {
              scenario::ScenarioReader::read_text(
                  base + "[faults]\nevents = 1\nevent0.kind = melt\n");
            }),
            "scenario: faults.event0.kind must be link_down|slowdown, got "
            "'melt'");

  EXPECT_EQ(rejection([&] {
              scenario::ScenarioReader::read_text(
                  base + "[faults]\nlink_fault_rate = 0.1\n"
                         "[faults]\nlink_fault_rate = 0.2\n");
            }),
            "scenario: duplicate [faults] block (line 11)");

  // Unknown keys inside [faults] are rejected, not ignored.
  EXPECT_NE(rejection([&] {
              scenario::ScenarioReader::read_text(
                  base + "[faults]\nlink_fault_rte = 0.1\n");
            }).find("link_fault_rte"),
            std::string::npos);

  // Strict numeric parsing applies inside the section too.
  EXPECT_NE(rejection([&] {
              scenario::ScenarioReader::read_text(
                  base + "[faults]\nlink_fault_rate = 0.1x\n");
            }).find("trailing characters"),
            std::string::npos);

  // Out-of-range rate flows through FaultParams::validate.
  EXPECT_EQ(rejection([&] {
              scenario::ScenarioReader::read_text(
                  base + "[faults]\nlink_fault_rate = 2.0\n");
            }),
            "faults: link_fault_rate must be finite in [0, 1]");
}

TEST(ScenarioFaults, ValidateRejectsDisconnectingCycleZeroEvents) {
  scenario::Scenario s = faulted_scenario();
  s.faults.events.clear();
  noc::FaultEvent east;
  east.kind = noc::FaultEvent::Kind::kLinkDown;
  east.at_cycle = 0;
  east.node = 0;
  east.port = 1;
  noc::FaultEvent north;
  north.kind = noc::FaultEvent::Kind::kLinkDown;
  north.at_cycle = 0;
  north.node = 0;
  north.port = 3;  // 0 -> 4 (north)
  s.faults.events = {east, north};
  const std::string msg = rejection([&] { s.validate(); });
  EXPECT_NE(msg.find("cycle-0 events reject"), std::string::npos) << msg;

  // The same events at a later cycle pass static validation (the run itself
  // will then fail loudly at the event) — only time-0 is checked up front.
  s.faults.events[0].at_cycle = 100;
  s.faults.events[1].at_cycle = 100;
  EXPECT_NO_THROW(s.validate());
}

// A scenario run with scripted faults completes and reports fault metrics.
TEST(ScenarioFaults, ScriptedFaultsFlowIntoRunMetrics) {
  scenario::Scenario s = faulted_scenario();
  const scenario::ScenarioRunResult r = scenario::run_scenario(s);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.stats.packets_offered, 0u);
  EXPECT_GT(r.stats.retries + r.stats.flits_dropped, 0u);
  EXPECT_GT(r.stats.rerouted_hops, 0u);  // the cycle-700 link death detours
  ASSERT_EQ(r.stats.tenants.size(), 1u);
  EXPECT_EQ(r.stats.tenants[0].packets_received + r.stats.packets_lost,
            r.stats.tenants[0].packets_offered);
}

}  // namespace
}  // namespace drlnoc
