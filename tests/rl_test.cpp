#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "rl/dqn.h"
#include "rl/qtable.h"
#include "rl/replay.h"
#include "rl/schedule.h"

namespace drlnoc::rl {
namespace {

Transition make_transition(int tag) {
  Transition t;
  t.state = {static_cast<double>(tag), 0.0};
  t.action = tag % 3;
  t.reward = static_cast<double>(tag);
  t.next_state = {static_cast<double>(tag + 1), 0.0};
  t.done = false;
  return t;
}

TEST(ReplayBuffer, FifoEvictionAtCapacity) {
  ReplayBuffer buf(4);
  for (int i = 0; i < 6; ++i) buf.push(make_transition(i));
  EXPECT_EQ(buf.size(), 4u);
  // Slots 0 and 1 were overwritten by 4 and 5.
  std::map<double, int> rewards;
  for (std::size_t i = 0; i < buf.size(); ++i) ++rewards[buf.at(i).reward];
  EXPECT_EQ(rewards.count(0.0), 0u);
  EXPECT_EQ(rewards.count(1.0), 0u);
  EXPECT_EQ(rewards.count(4.0), 1u);
  EXPECT_EQ(rewards.count(5.0), 1u);
}

TEST(ReplayBuffer, SampleUniformAndWeightsAreOne) {
  ReplayBuffer buf(100);
  for (int i = 0; i < 100; ++i) buf.push(make_transition(i));
  util::Rng rng(1);
  std::map<double, int> counts;
  for (int rep = 0; rep < 500; ++rep) {
    const SampledBatch b = buf.sample(20, rng);
    EXPECT_EQ(b.transitions.size(), 20u);
    for (double w : b.weights) EXPECT_DOUBLE_EQ(w, 1.0);
    for (const auto& t : b.transitions) ++counts[t.reward];
  }
  // Roughly uniform coverage.
  for (const auto& [r, c] : counts) EXPECT_NEAR(c, 100, 60) << r;
}

TEST(SumTree, TotalAndFind) {
  SumTree tree(6);  // rounds up to 8 leaves
  tree.update(0, 1.0);
  tree.update(3, 2.0);
  tree.update(5, 3.0);
  EXPECT_DOUBLE_EQ(tree.total(), 6.0);
  EXPECT_EQ(tree.find(0.5), 0u);
  EXPECT_EQ(tree.find(1.5), 3u);
  EXPECT_EQ(tree.find(2.999), 3u);
  EXPECT_EQ(tree.find(3.0), 5u);
  EXPECT_EQ(tree.find(5.999), 5u);
  EXPECT_DOUBLE_EQ(tree.max_priority(), 3.0);
  EXPECT_DOUBLE_EQ(tree.min_nonzero_priority(), 1.0);
  tree.update(3, 0.5);
  EXPECT_DOUBLE_EQ(tree.total(), 4.5);
}

TEST(PrioritizedReplay, SamplesProportionallyToPriority) {
  PrioritizedReplayBuffer buf(8, /*alpha=*/1.0, /*beta=*/0.0, /*eps=*/0.0);
  for (int i = 0; i < 8; ++i) buf.push(make_transition(i));
  // Set priorities: slot i gets priority i+1.
  std::vector<std::size_t> idx(8);
  std::vector<double> td(8);
  for (int i = 0; i < 8; ++i) {
    idx[static_cast<std::size_t>(i)] = static_cast<std::size_t>(i);
    td[static_cast<std::size_t>(i)] = static_cast<double>(i) + 1.0;
  }
  buf.update_priorities(idx, td);
  util::Rng rng(3);
  std::map<double, int> counts;
  const int reps = 3000;
  for (int rep = 0; rep < reps; ++rep) {
    const SampledBatch b = buf.sample(4, rng);
    for (const auto& t : b.transitions) ++counts[t.reward];
  }
  const double total_mass = 36.0;  // 1+2+...+8
  for (int i = 0; i < 8; ++i) {
    const double expected = reps * 4 * (i + 1) / total_mass;
    EXPECT_NEAR(counts[static_cast<double>(i)], expected, expected * 0.25 + 30)
        << "slot " << i;
  }
}

TEST(PrioritizedReplay, ImportanceWeightsFavorRareSamples) {
  PrioritizedReplayBuffer buf(4, 1.0, 1.0, 0.0);
  for (int i = 0; i < 4; ++i) buf.push(make_transition(i));
  buf.update_priorities({0, 1, 2, 3}, {10.0, 1.0, 1.0, 1.0});
  util::Rng rng(5);
  double w_hot = -1.0, w_cold = -1.0;
  for (int rep = 0; rep < 200; ++rep) {
    const SampledBatch b = buf.sample(4, rng);
    for (std::size_t i = 0; i < b.indices.size(); ++i) {
      if (b.indices[i] == 0) w_hot = b.weights[i];
      else w_cold = b.weights[i];
    }
  }
  ASSERT_GE(w_hot, 0.0);
  ASSERT_GE(w_cold, 0.0);
  EXPECT_LT(w_hot, w_cold);  // frequently sampled -> down-weighted
  EXPECT_LE(w_cold, 1.0 + 1e-12);
}

TEST(Schedules, LinearAndExponential) {
  LinearSchedule lin(1.0, 0.1, 100);
  EXPECT_DOUBLE_EQ(lin.value(0), 1.0);
  EXPECT_NEAR(lin.value(50), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(lin.value(100), 0.1);
  EXPECT_DOUBLE_EQ(lin.value(1000), 0.1);
  ExponentialSchedule exp(1.0, 0.01, 0.9);
  EXPECT_DOUBLE_EQ(exp.value(0), 1.0);
  EXPECT_NEAR(exp.value(10), std::pow(0.9, 10), 1e-12);
  EXPECT_DOUBLE_EQ(exp.value(10000), 0.01);
}

// A tiny deterministic chain MDP: states 0..4, action 1 moves right, action 0
// resets to 0. Reward 1 only on reaching state 4 (episode end). Optimal
// policy: always go right; optimal return = 1.
class ChainEnv : public Environment {
 public:
  std::string name() const override { return "chain"; }
  std::size_t state_size() const override { return 5; }
  int num_actions() const override { return 2; }
  State reset() override {
    pos_ = 0;
    return encode();
  }
  StepResult step(int action) override {
    if (action == 1) ++pos_;
    else pos_ = 0;
    StepResult r;
    r.done = pos_ == 4;
    r.reward = r.done ? 1.0 : -0.01;
    r.next_state = encode();
    return r;
  }

 private:
  State encode() const {
    State s(5, 0.0);
    s[static_cast<std::size_t>(pos_)] = 1.0;
    return s;
  }
  int pos_ = 0;
};

class DqnVariants : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(DqnVariants, SolvesChainMdp) {
  const auto [double_dqn, prioritized] = GetParam();
  ChainEnv env;
  DqnParams p;
  p.hidden = {24};
  p.gamma = 0.95;
  p.lr = 5e-3;
  p.min_replay = 64;
  p.batch_size = 16;
  p.target_sync_every = 50;
  p.double_dqn = double_dqn;
  p.prioritized = prioritized;
  p.epsilon_decay_steps = 1500;
  p.seed = 17;
  DqnAgent agent(env.state_size(), env.num_actions(), p);

  for (int episode = 0; episode < 120; ++episode) {
    State s = env.reset();
    for (int step = 0; step < 50; ++step) {
      const int a = agent.act(s);
      const StepResult r = env.step(a);
      Transition t{s, a, r.reward, r.next_state, r.done};
      agent.observe(t);
      s = r.next_state;
      if (r.done) break;
    }
  }
  // Greedy policy must walk straight to the goal.
  State s = env.reset();
  for (int step = 0; step < 4; ++step) {
    const int a = agent.act_greedy(s);
    EXPECT_EQ(a, 1) << "greedy policy not optimal at step " << step;
    s = env.step(a).next_state;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, DqnVariants,
    ::testing::Values(std::tuple{false, false}, std::tuple{true, false},
                      std::tuple{true, true}));

class DqnExtensions
    : public ::testing::TestWithParam<std::tuple<bool, int, double>> {};

// Dueling / n-step / soft-update variants must also solve the chain MDP.
TEST_P(DqnExtensions, SolvesChainMdp) {
  const auto [dueling, n_step, tau] = GetParam();
  ChainEnv env;
  DqnParams p;
  p.hidden = {24};
  p.gamma = 0.95;
  p.lr = 5e-3;
  p.min_replay = 64;
  p.batch_size = 16;
  p.target_sync_every = 50;
  p.dueling = dueling;
  p.n_step = n_step;
  p.tau = tau;
  p.epsilon_decay_steps = 1500;
  p.seed = 29;
  DqnAgent agent(env.state_size(), env.num_actions(), p);
  for (int episode = 0; episode < 150; ++episode) {
    State s = env.reset();
    for (int step = 0; step < 50; ++step) {
      const int a = agent.act(s);
      const StepResult r = env.step(a);
      agent.observe(Transition{s, a, r.reward, r.next_state, r.done});
      s = r.next_state;
      if (r.done) break;
    }
  }
  State s = env.reset();
  for (int step = 0; step < 4; ++step) {
    EXPECT_EQ(agent.act_greedy(s), 1) << "step " << step;
    s = env.step(1).next_state;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Extensions, DqnExtensions,
    ::testing::Values(std::tuple{true, 1, 0.0},    // dueling
                      std::tuple{false, 3, 0.0},   // 3-step returns
                      std::tuple{false, 1, 0.01},  // Polyak target
                      std::tuple{true, 3, 0.01})); // all together

TEST(DqnAgent, NStepAggregationFoldsRewards) {
  // With n_step=3 and gamma=0.5: feeding r=1,1,1 then done must produce a
  // front transition with reward 1 + 0.5 + 0.25 and discount 0.125 (unused
  // since done). Verify indirectly: replay fills only after flush.
  DqnParams p;
  p.hidden = {8};
  p.n_step = 3;
  p.gamma = 0.5;
  p.min_replay = 1000;  // never learns; we only watch the buffer
  DqnAgent agent(2, 2, p);
  Transition t{{0.0, 0.0}, 0, 1.0, {0.0, 0.0}, false};
  agent.observe(t);
  agent.observe(t);
  EXPECT_EQ(agent.replay_size(), 0u);  // window not full yet
  agent.observe(t);
  EXPECT_EQ(agent.replay_size(), 1u);  // first aggregate emitted
  Transition done = t;
  done.done = true;
  agent.observe(done);
  // Window flushes completely on done: 3 more aggregates.
  EXPECT_EQ(agent.replay_size(), 4u);
}

TEST(DqnAgent, RejectsBadNStep) {
  DqnParams p;
  p.n_step = 0;
  EXPECT_THROW(DqnAgent(2, 2, p), std::invalid_argument);
}

TEST(DqnAgent, EpsilonAnneals) {
  DqnParams p;
  p.epsilon_start = 1.0;
  p.epsilon_end = 0.1;
  p.epsilon_decay_steps = 10;
  DqnAgent agent(2, 2, p);
  EXPECT_DOUBLE_EQ(agent.epsilon(), 1.0);
  ChainEnv env;
  (void)env;
  Transition t{{0.0, 0.0}, 0, 0.0, {0.0, 0.0}, false};
  for (int i = 0; i < 20; ++i) agent.observe(t);
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.1);
}

TEST(DqnAgent, SaveLoadPreservesPolicy) {
  DqnParams p;
  p.hidden = {16};
  p.seed = 3;
  DqnAgent a(4, 3, p);
  const State s = {0.1, 0.9, 0.4, 0.2};
  std::stringstream ss;
  a.save(ss);
  DqnAgent b(4, 3, p);
  b.load_weights(ss);
  EXPECT_EQ(a.q_values(s), b.q_values(s));
  EXPECT_EQ(a.act_greedy(s), b.act_greedy(s));
}

TEST(QTable, DiscretizesConsistently) {
  QTableParams p;
  p.bins_per_feature = 4;
  QTableAgent agent(2, 2, p);
  EXPECT_EQ(agent.key_of({0.1, 0.9}), agent.key_of({0.2, 0.8}));
  EXPECT_NE(agent.key_of({0.1, 0.9}), agent.key_of({0.9, 0.1}));
  // Out-of-range values clamp.
  EXPECT_EQ(agent.key_of({-5.0, 2.0}), agent.key_of({0.0, 0.99}));
}

TEST(QTable, SolvesChainMdp) {
  ChainEnv env;
  QTableParams p;
  p.alpha = 0.3;
  p.gamma = 0.95;
  p.epsilon_decay_steps = 2000;
  QTableAgent agent(env.state_size(), env.num_actions(), p);
  for (int episode = 0; episode < 200; ++episode) {
    State s = env.reset();
    for (int step = 0; step < 50; ++step) {
      const int a = agent.act(s);
      const StepResult r = env.step(a);
      agent.observe(Transition{s, a, r.reward, r.next_state, r.done});
      s = r.next_state;
      if (r.done) break;
    }
  }
  State s = env.reset();
  for (int step = 0; step < 4; ++step) {
    EXPECT_EQ(agent.act_greedy(s), 1);
    s = env.step(1).next_state;
  }
  EXPECT_GT(agent.table_size(), 0u);
}

}  // namespace
}  // namespace drlnoc::rl
