#include <gtest/gtest.h>

#include "core/action_space.h"
#include "core/controller.h"
#include "core/env_noc.h"
#include "core/features.h"
#include "core/reward.h"
#include "core/trainer.h"

namespace drlnoc::core {
namespace {

TEST(ActionSpace, SizeAndRoundTrip) {
  ActionSpace space = ActionSpace::standard();
  EXPECT_EQ(space.size(), 36);
  for (int a = 0; a < space.size(); ++a) {
    EXPECT_EQ(space.index_of(space.decode(a)), a);
  }
  EXPECT_THROW(space.decode(36), std::out_of_range);
  EXPECT_THROW(space.decode(-1), std::out_of_range);
}

TEST(ActionSpace, ExtremesAreMinAndMax) {
  ActionSpace space = ActionSpace::standard();
  const noc::NocConfig lo = space.decode(space.min_action());
  const noc::NocConfig hi = space.decode(space.max_action());
  EXPECT_EQ(lo.active_vcs, 1);
  EXPECT_EQ(lo.active_depth, 2);
  EXPECT_EQ(lo.dvfs_level, 0);
  EXPECT_EQ(hi.active_vcs, 4);
  EXPECT_EQ(hi.active_depth, 8);
  EXPECT_EQ(hi.dvfs_level, 3);
}

TEST(ActionSpace, IndexOfRejectsForeignConfig) {
  ActionSpace space = ActionSpace::standard();
  EXPECT_THROW(space.index_of(noc::NocConfig{3, 8, 3}),
               std::invalid_argument);
}

TEST(ActionSpace, TwoClassVariantExcludesSingleVc) {
  ActionSpace space = ActionSpace::standard_two_class();
  for (int a = 0; a < space.size(); ++a) {
    EXPECT_GE(space.decode(a).active_vcs, 2);
  }
}

TEST(Features, NormalizedAndSized) {
  ActionSpace space = ActionSpace::standard();
  FeatureExtractor fx(space, 16);
  EXPECT_EQ(fx.state_size(), 10u + 3 + 3 + 4);
  EXPECT_EQ(fx.feature_names().size(), fx.state_size());

  noc::EpochStats s;
  s.offered_rate = 0.1;
  s.accepted_rate = 0.09;
  s.avg_latency = 50.0;
  s.p95_latency = 120.0;
  s.avg_buffer_occupancy = 0.3;
  s.hotspot_skew = 3.0;
  s.source_queue_total = 64;
  s.config = {2, 4, 1};
  const rl::State state = fx.extract(s);
  ASSERT_EQ(state.size(), fx.state_size());
  for (double v : state) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Config one-hots: exactly 3 ones.
  double onehot_sum = 0.0;
  for (std::size_t i = 10; i < state.size(); ++i) onehot_sum += state[i];
  EXPECT_DOUBLE_EQ(onehot_sum, 3.0);
}

TEST(Features, EwmaSmoothsAcrossEpochsAndResets) {
  ActionSpace space = ActionSpace::standard();
  FeatureExtractor fx(space, 16);
  noc::EpochStats lo;
  lo.offered_rate = 0.0;
  lo.config = {1, 2, 0};
  noc::EpochStats hi = lo;
  hi.offered_rate = 0.25;
  fx.extract(lo);
  const rl::State after_jump = fx.extract(hi);
  // load_ewma (index 2) must lag the instantaneous offered rate (index 0).
  EXPECT_LT(after_jump[2], after_jump[0]);
  fx.reset();
  const rl::State fresh = fx.extract(lo);
  EXPECT_DOUBLE_EQ(fresh[2], 0.0);
}

TEST(Reward, PrefersFastAndFrugal) {
  RewardParams rp;
  rp.power_ref_mw = 100.0;
  RewardFunction reward(rp);
  noc::EpochStats good;
  good.avg_latency = 10.0;
  good.offered_rate = good.accepted_rate = 0.05;
  good.packets_offered = good.packets_received = 100;
  good.dynamic_energy_pj = 1000.0;
  good.static_energy_pj = 1000.0;
  good.core_cycles = 1000.0;
  noc::EpochStats slow = good;
  slow.avg_latency = 500.0;
  noc::EpochStats hungry = good;
  hungry.dynamic_energy_pj = 100000.0;
  EXPECT_GT(reward.compute(good), reward.compute(slow));
  EXPECT_GT(reward.compute(good), reward.compute(hungry));
}

TEST(Reward, SaturationDominates) {
  RewardParams rp;
  rp.power_ref_mw = 100.0;
  RewardFunction reward(rp);
  noc::EpochStats sat;
  sat.avg_latency = 200.0;
  sat.offered_rate = 0.2;
  sat.accepted_rate = 0.05;  // carrying 25% of offered
  sat.packets_offered = 400;
  sat.packets_received = 100;
  sat.source_queue_total = 2000;
  sat.core_cycles = 1000.0;
  const auto b = reward.breakdown(sat);
  EXPECT_GT(b.saturation_term, b.latency_term);
  EXPECT_GT(b.saturation_term, 2.0);
  EXPECT_LT(b.reward, -3.0);
}

TEST(Reward, ZeroDeliveryCountsAsSaturated) {
  RewardParams rp;
  rp.power_ref_mw = 100.0;
  RewardFunction reward(rp);
  noc::EpochStats dead;
  dead.packets_offered = 50;
  dead.packets_received = 0;
  dead.offered_rate = 0.1;
  dead.accepted_rate = 0.0;
  dead.core_cycles = 500.0;
  const auto b = reward.breakdown(dead);
  EXPECT_DOUBLE_EQ(b.latency_term, rp.w_latency);
}

TEST(Controllers, StaticFactories) {
  ActionSpace space = ActionSpace::standard();
  auto mx = StaticController::maximal(space);
  auto mn = StaticController::minimal(space);
  EXPECT_EQ(mx->action(), space.max_action());
  EXPECT_EQ(mn->action(), space.min_action());
  EXPECT_EQ(mx->name(), "static-max");
  noc::EpochStats s;
  rl::State st;
  EXPECT_EQ(mx->decide(s, st), space.max_action());
  EXPECT_THROW(StaticController(space, 99, "x"), std::out_of_range);
}

TEST(Controllers, HeuristicEscalatesAndRelaxes) {
  ActionSpace space = ActionSpace::standard();
  HeuristicParams hp;
  hp.num_nodes = 16;
  HeuristicController h(space, hp);
  h.begin_episode();
  EXPECT_EQ(h.ladder_position(), h.ladder_size() - 1);  // starts provisioned

  rl::State st;
  noc::EpochStats calm;
  calm.avg_buffer_occupancy = 0.01;
  calm.avg_latency = 10.0;
  calm.source_queue_total = 0;
  // Several calm epochs -> steps down the ladder.
  for (int i = 0; i < 12; ++i) h.decide(calm, st);
  EXPECT_LT(h.ladder_position(), h.ladder_size() - 1);
  const int relaxed = h.ladder_position();

  noc::EpochStats pressure;
  pressure.avg_buffer_occupancy = 0.8;
  pressure.avg_latency = 500.0;
  pressure.source_queue_total = 1000;
  h.decide(pressure, st);
  EXPECT_GT(h.ladder_position(), relaxed);  // escalates immediately
}

TEST(Controllers, HeuristicLadderIsMonotone) {
  ActionSpace space = ActionSpace::standard();
  HeuristicController h(space);
  // Walk the ladder from bottom to top: capability must not decrease.
  rl::State st;
  noc::EpochStats pressure;
  pressure.avg_buffer_occupancy = 1.0;
  pressure.avg_latency = 1e6;
  pressure.source_queue_total = 1 << 20;
  h.begin_episode();
  noc::EpochStats calm;
  calm.avg_latency = 1.0;
  for (int i = 0; i < 100; ++i) h.decide(calm, st);  // sink to the bottom
  int prev_cap = -1;
  for (int i = 0; i < h.ladder_size() + 2; ++i) {
    const int action = h.decide(pressure, st);
    const noc::NocConfig c = space.decode(action);
    const int cap = c.active_vcs * c.active_depth * (c.dvfs_level + 1);
    EXPECT_GE(cap, prev_cap);
    prev_cap = cap;
  }
}

NocEnvParams small_env() {
  NocEnvParams ep;
  ep.net.width = ep.net.height = 4;
  ep.net.seed = 3;
  ep.epoch_cycles = 256;
  ep.epochs_per_episode = 6;
  ep.reward.power_ref_mw = 300.0;  // skip auto-calibration for speed
  return ep;
}

TEST(NocConfigEnv, ResetAndStepShapes) {
  NocConfigEnv env(small_env());
  EXPECT_EQ(env.num_actions(), 36);
  const rl::State s0 = env.reset();
  EXPECT_EQ(s0.size(), env.state_size());
  rl::StepResult r = env.step(env.actions().max_action());
  EXPECT_EQ(r.next_state.size(), env.state_size());
  EXPECT_LT(r.reward, 0.0);
  EXPECT_FALSE(r.done);
  for (int i = 0; i < 5; ++i) r = env.step(env.actions().max_action());
  EXPECT_TRUE(r.done);
}

TEST(NocConfigEnv, StepBeforeResetThrows) {
  NocConfigEnv env(small_env());
  EXPECT_THROW(env.step(0), std::logic_error);
}

TEST(NocConfigEnv, RejectsOversizedActionSpace) {
  NocEnvParams ep = small_env();
  ep.net.max_vcs = 2;  // but the standard space includes 4 VCs
  EXPECT_THROW(NocConfigEnv env(ep), std::invalid_argument);
}

TEST(NocConfigEnv, AppliedConfigReflectedInStats) {
  NocConfigEnv env(small_env());
  env.reset();
  const int a = env.actions().index_of(noc::NocConfig{2, 4, 1});
  env.step(a);
  EXPECT_EQ(env.last_stats().config, (noc::NocConfig{2, 4, 1}));
}

TEST(NocConfigEnv, EvalModeIsReproducible) {
  NocConfigEnv env(small_env());
  auto run = [&] {
    StaticController c(env.actions(), env.actions().max_action(), "s");
    const EpisodeResult r = evaluate(env, c);
    return std::pair{r.total_reward, r.mean_latency};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

TEST(NocConfigEnv, TrainingEpisodesVary) {
  NocConfigEnv env(small_env());
  auto episode_reward = [&] {
    env.reset();
    double total = 0.0;
    for (int i = 0; i < 6; ++i) total += env.step(35).reward;
    return total;
  };
  EXPECT_NE(episode_reward(), episode_reward());
}

TEST(Trainer, EvaluateRecordsEpochsAndActions) {
  NocConfigEnv env(small_env());
  StaticController c(env.actions(), 10, "probe");
  const EpisodeResult r = evaluate(env, c, /*keep_epochs=*/true);
  EXPECT_EQ(r.epochs.size(), 6u);
  EXPECT_EQ(r.actions.size(), 6u);
  for (int a : r.actions) EXPECT_EQ(a, 10);
  EXPECT_EQ(r.controller, "probe");
  EXPECT_GT(r.mean_power_mw, 0.0);
}

TEST(Trainer, StaticSweepSortedByEdp) {
  NocEnvParams ep = small_env();
  ep.epochs_per_episode = 3;
  NocConfigEnv env(ep);
  const auto sweep = sweep_static(env);
  ASSERT_EQ(sweep.size(), 36u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i - 1].mean_edp, sweep[i].mean_edp);
  }
}

TEST(Trainer, TrainingIsDeterministicForSeed) {
  // DESIGN invariant 9 end-to-end: same seeds => identical training returns.
  auto run = [] {
    NocEnvParams ep = small_env();
    ep.epochs_per_episode = 6;
    NocConfigEnv env(ep);
    rl::DqnParams dp;
    dp.hidden = {16};
    dp.min_replay = 16;
    dp.batch_size = 8;
    dp.seed = 5;
    rl::DqnAgent agent(env.state_size(), env.num_actions(), dp);
    TrainParams tp;
    tp.episodes = 4;
    tp.eval_every = 0;
    return train_dqn(env, agent, tp).episode_returns;
  };
  EXPECT_EQ(run(), run());
}

TEST(Trainer, TrainDqnRunsAndImproves) {
  NocEnvParams ep = small_env();
  ep.epochs_per_episode = 8;
  NocConfigEnv env(ep);
  rl::DqnParams dp;
  dp.hidden = {16};
  dp.min_replay = 16;
  dp.batch_size = 8;
  dp.epsilon_decay_steps = 60;
  rl::DqnAgent agent(env.state_size(), env.num_actions(), dp);
  TrainParams tp;
  tp.episodes = 10;
  tp.eval_every = 5;
  const TrainResult r = train_dqn(env, agent, tp);
  EXPECT_EQ(r.episode_returns.size(), 10u);
  EXPECT_EQ(r.eval_rewards.size(), 2u);
  EXPECT_GT(agent.learn_steps(), 0u);
  // Sanity: returns are finite and negative (cost-shaped reward).
  for (double ret : r.episode_returns) {
    EXPECT_TRUE(std::isfinite(ret));
    EXPECT_LT(ret, 0.0);
  }
}

}  // namespace
}  // namespace drlnoc::core
