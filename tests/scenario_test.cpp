// Scenario subsystem tests: node-set parsing, `.drlsc` round-trips and
// strict-key validation, deterministic composite merging (single-tenant
// bit-identity to direct replay, tenant attribution, windows, placements),
// per-tenant statistics, injector hook ordering across reconfiguration, RL
// environment wiring, and the golden thread-invariance hash.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

#include "core/env_noc.h"
#include "core/trainer.h"
#include "noc/simulator.h"
#include "noc/workload.h"
#include "scenario/composite_workload.h"
#include "scenario/runtime.h"
#include "scenario/scenario_io.h"
#include "trace/generators.h"
#include "trace/trace_io.h"
#include "trace/trace_workload.h"
#include "util/thread_pool.h"

namespace drlnoc::scenario {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// FNV-1a over the full delivered-packet stream, tenant tags included.
std::uint64_t stream_hash(const std::vector<noc::PacketRecord>& records) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(records.size());
  for (const noc::PacketRecord& r : records) {
    mix(r.packet_id);
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(r.src)));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(r.dst)));
    mix(r.length);
    mix(std::bit_cast<std::uint64_t>(r.inject_time));
    mix(std::bit_cast<std::uint64_t>(r.eject_time));
    mix(r.hops);
    mix(r.measured ? 1u : 0u);
    mix(r.tenant);
  }
  return h;
}

trace::Trace dnn_trace() {
  return trace::generate_dnn_pipeline({16, 4, 4, 3, 64.0, 32.0, 8});
}

/// The reference multi-tenant scenario used across these tests: a DNN
/// pipeline trace sharing a 4x4 mesh with windowed uniform background.
Scenario mixed_scenario(std::uint64_t seed = 42) {
  Scenario s;
  s.name = "test_mix";
  s.net.width = s.net.height = 4;
  s.net.seed = seed;
  TenantSpec dnn;
  dnn.name = "dnn";
  dnn.kind = WorkloadKind::kTrace;
  dnn.trace = std::make_shared<const trace::Trace>(dnn_trace());
  s.tenants.push_back(std::move(dnn));
  TenantSpec bg;
  bg.name = "bg";
  bg.kind = WorkloadKind::kSteady;
  bg.rate = 0.05;
  bg.start = 100.0;
  bg.stop = 3000.0;
  s.tenants.push_back(std::move(bg));
  return s;
}

// --- node sets -------------------------------------------------------------

TEST(NodeSet, ParsesIdsRangesAndAll) {
  EXPECT_TRUE(parse_node_set("all", 16).empty());
  EXPECT_TRUE(parse_node_set("", 16).empty());
  EXPECT_EQ(parse_node_set("3", 16), (std::vector<noc::NodeId>{3}));
  EXPECT_EQ(parse_node_set("0-3", 16), (std::vector<noc::NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(parse_node_set("12,5,8-10", 16),
            (std::vector<noc::NodeId>{12, 5, 8, 9, 10}));
}

TEST(NodeSet, RejectsMalformedSets) {
  EXPECT_THROW(parse_node_set("16", 16), std::invalid_argument);   // range
  EXPECT_THROW(parse_node_set("-1", 16), std::invalid_argument);
  EXPECT_THROW(parse_node_set("5-2", 16), std::invalid_argument);  // inverted
  EXPECT_THROW(parse_node_set("1,,2", 16), std::invalid_argument);
  EXPECT_THROW(parse_node_set("abc", 16), std::invalid_argument);
  EXPECT_THROW(parse_node_set("1x", 16), std::invalid_argument);
  EXPECT_THROW(parse_node_set("3,3", 16), std::invalid_argument);  // dup
  EXPECT_THROW(parse_node_set("2-5,4", 16), std::invalid_argument);
}

TEST(NodeSet, FormatsCanonically) {
  EXPECT_EQ(format_node_set({}), "all");
  EXPECT_EQ(format_node_set({5}), "5");
  EXPECT_EQ(format_node_set({0, 1, 2, 3, 8, 10, 11, 12}), "0-3,8,10-12");
  EXPECT_EQ(format_node_set({4, 5}), "4,5");
}

// --- validation ------------------------------------------------------------

TEST(ScenarioValidate, CatchesBadTenants) {
  Scenario s = mixed_scenario();
  EXPECT_NO_THROW(s.validate());

  Scenario bad_scale = mixed_scenario();
  bad_scale.tenants[0].rate_scale = 0.0;
  EXPECT_THROW(bad_scale.validate(), std::invalid_argument);

  Scenario bad_rate = mixed_scenario();
  bad_rate.tenants[1].rate = -0.5;
  EXPECT_THROW(bad_rate.validate(), std::invalid_argument);

  Scenario bad_window = mixed_scenario();
  bad_window.tenants[1].stop = bad_window.tenants[1].start;
  EXPECT_THROW(bad_window.validate(), std::invalid_argument);

  Scenario dup_node = mixed_scenario();
  dup_node.tenants[1].nodes = {3, 3};
  EXPECT_THROW(dup_node.validate(), std::invalid_argument);

  Scenario small_placement = mixed_scenario();
  small_placement.tenants[0].nodes = {0, 1, 2};  // trace needs 16
  EXPECT_THROW(small_placement.validate(), std::invalid_argument);

  // Open-ended background with no duration would never terminate.
  Scenario unbounded = mixed_scenario();
  unbounded.tenants[1].stop = kInf;
  EXPECT_THROW(unbounded.validate(), std::invalid_argument);
  unbounded.duration = 5000.0;  // a horizon makes it well-defined
  EXPECT_NO_THROW(unbounded.validate());

  // A looping trace is unbounded too.
  Scenario looping = mixed_scenario();
  looping.tenants[0].loop = true;
  EXPECT_THROW(looping.validate(), std::invalid_argument);
}

// --- .drlsc IO -------------------------------------------------------------

TEST(ScenarioIo, WriteReadRoundTrips) {
  const std::string trace_path = ::testing::TempDir() + "scn_rt.drltrc";
  trace::TraceWriter::write_file(trace_path, dnn_trace());

  Scenario s = mixed_scenario(7);
  s.tenants[0].trace_file = "scn_rt.drltrc";
  s.tenants[0].nodes = parse_node_set("0-15", 16);
  s.duration = 4096.0;
  s.tenants[1].phase_scale = 1.0;

  std::ostringstream os;
  ScenarioWriter::write_text(os, s);
  const Scenario back = ScenarioReader::read_text(os.str(),
                                                  ::testing::TempDir());
  EXPECT_EQ(back.name, s.name);
  EXPECT_EQ(back.net.width, s.net.width);
  EXPECT_EQ(back.net.seed, s.net.seed);
  EXPECT_DOUBLE_EQ(back.duration, s.duration);
  ASSERT_EQ(back.tenants.size(), s.tenants.size());
  EXPECT_EQ(back.tenants[0].kind, WorkloadKind::kTrace);
  EXPECT_EQ(*back.tenants[0].trace, *s.tenants[0].trace);
  EXPECT_EQ(back.tenants[0].nodes, s.tenants[0].nodes);
  EXPECT_EQ(back.tenants[1].kind, WorkloadKind::kSteady);
  EXPECT_DOUBLE_EQ(back.tenants[1].rate, s.tenants[1].rate);
  EXPECT_DOUBLE_EQ(back.tenants[1].start, s.tenants[1].start);
  EXPECT_DOUBLE_EQ(back.tenants[1].stop, s.tenants[1].stop);
}

TEST(ScenarioIo, RejectsBadInput) {
  // Missing magic.
  EXPECT_THROW(ScenarioReader::read_text("width = 4\n"), std::runtime_error);
  // Wrong version.
  EXPECT_THROW(ScenarioReader::read_text("drlsc 99\ntenants = 1\n"),
               std::runtime_error);
  // Unknown (misspelled) keys are rejected, not ignored.
  EXPECT_THROW(ScenarioReader::read_text(
                   "drlsc 1\nwidth = 4\nheight = 4\ntenants = 1\n"
                   "tenant0.workload = steady\ntenant0.rtae = 0.1\n"),
               std::invalid_argument);
  // Tenant values flow through validation (scenario-level rate checks).
  EXPECT_THROW(ScenarioReader::read_text(
                   "drlsc 1\nwidth = 4\nheight = 4\nduration = 100\n"
                   "tenants = 1\ntenant0.workload = steady\n"
                   "tenant0.rate = 0\n"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioReader::read_text("drlsc 1\nwidth = 4\nheight = 4\n"),
               std::invalid_argument);  // no tenants
}

TEST(ScenarioIo, InfiniteStopRoundTrips) {
  Scenario s = mixed_scenario();
  s.duration = 2000.0;
  s.tenants[1].stop = kInf;
  s.tenants[0].kind = WorkloadKind::kPhased;  // avoid trace_file plumbing
  s.tenants[0].trace.reset();
  std::ostringstream os;
  ScenarioWriter::write_text(os, s);
  const Scenario back = ScenarioReader::read_text(os.str());
  EXPECT_TRUE(std::isinf(back.tenants[1].stop));
}

// --- composite merging -----------------------------------------------------

TEST(ScenarioAcceptance, SingleTenantTraceBitIdenticalToDirectReplay) {
  const trace::Trace t = dnn_trace();

  // Direct replay: the trace workload drives the network itself.
  noc::NetworkParams p;
  p.width = p.height = 4;
  p.seed = 42;
  noc::Network direct_net(p);
  trace::TraceWorkload direct(t);
  const auto direct_result =
      trace::run_trace_replay(direct_net, direct, 500000);
  ASSERT_TRUE(direct_result.completed);
  const std::uint64_t direct_hash = stream_hash(direct_net.drain_records());

  // The same replay expressed as a single-tenant .drlsc scenario, loaded
  // from disk like a user would.
  const std::string trace_path = ::testing::TempDir() + "scn_accept.drltrc";
  trace::TraceWriter::write_file(trace_path, t);
  const std::string scn_path = ::testing::TempDir() + "scn_accept.drlsc";
  {
    std::ofstream os(scn_path);
    os << "drlsc 1\n"
          "name = single\n"
          "width = 4\nheight = 4\nseed = 42\n"
          "tenants = 1\n"
          "tenant0.name = dnn\n"
          "tenant0.workload = trace\n"
          "tenant0.trace = scn_accept.drltrc\n";
  }
  const Scenario s = ScenarioReader::read_file(scn_path);
  auto net = build_network(s);
  auto w = build_workload(s, net->topology());
  ScenarioRunParams rp;
  rp.cycle_limit = 500000;
  const ScenarioRunResult r = run_scenario(*net, *w, rp);
  EXPECT_TRUE(r.completed);

  // The delivered-packet stream — ids, endpoints, lengths, timestamps,
  // hops, tenant tags — must match bit for bit.
  EXPECT_EQ(stream_hash(net->drain_records()), direct_hash);
}

TEST(CompositeWorkloadTest, AttributesTenantsAndRespectsWindows) {
  const Scenario s = mixed_scenario();
  auto net = build_network(s);
  auto w = build_workload(s, net->topology());
  const ScenarioRunResult r = run_scenario(*net, *w);
  ASSERT_TRUE(r.completed);

  const auto records = net->drain_records();
  ASSERT_FALSE(records.empty());
  std::uint64_t dnn_count = 0, bg_count = 0;
  for (const noc::PacketRecord& rec : records) {
    if (rec.tenant == 0) {
      ++dnn_count;
    } else {
      ASSERT_EQ(rec.tenant, 1);
      ++bg_count;
      // The background window gates injection to [start, stop).
      EXPECT_GE(rec.inject_time, s.tenants[1].start);
      EXPECT_LT(rec.inject_time, s.tenants[1].stop);
    }
  }
  EXPECT_EQ(dnn_count, dnn_trace().records.size());
  EXPECT_GT(bg_count, 0u);

  // Per-tenant epoch slices partition the aggregate exactly.
  ASSERT_EQ(r.stats.tenants.size(), 2u);
  EXPECT_EQ(r.stats.tenants[0].packets_received +
                r.stats.tenants[1].packets_received,
            r.stats.packets_received);
  EXPECT_EQ(r.stats.tenants[0].packets_offered +
                r.stats.tenants[1].packets_offered,
            r.stats.packets_offered);
  EXPECT_EQ(r.stats.tenants[0].packets_received, dnn_count);
  EXPECT_GT(r.stats.tenants[0].avg_latency, 0.0);
  EXPECT_GT(r.stats.tenants[1].avg_latency, 0.0);
}

TEST(CompositeWorkloadTest, PlacementRemapsTraceEndpoints) {
  // A 4-endpoint chain placed on the far corner of the mesh: all of the
  // tenant's packets must travel between exactly those fabric nodes.
  trace::Trace t;
  t.nodes = 4;
  t.records = {{1, 0, 3, 0.0, 4, {}},
               {2, 3, 1, 2.0, 4, {1}},
               {3, 1, 2, 2.0, 4, {2}}};
  Scenario s;
  s.net.width = s.net.height = 4;
  s.net.seed = 5;
  TenantSpec ten;
  ten.name = "corner";
  ten.kind = WorkloadKind::kTrace;
  ten.trace = std::make_shared<const trace::Trace>(t);
  ten.nodes = {15, 14, 11, 10};  // placement order matters: local i -> [i]
  s.tenants.push_back(std::move(ten));

  auto net = build_network(s);
  auto w = build_workload(s, net->topology());
  const ScenarioRunResult r = run_scenario(*net, *w);
  ASSERT_TRUE(r.completed);
  const auto records = net->drain_records();
  ASSERT_EQ(records.size(), 3u);
  // Local (0->3, 3->1, 1->2) under placement {15,14,11,10}.
  EXPECT_EQ(records[0].src, 15);
  EXPECT_EQ(records[0].dst, 10);
  EXPECT_EQ(records[1].src, 10);
  EXPECT_EQ(records[1].dst, 14);
  EXPECT_EQ(records[2].src, 14);
  EXPECT_EQ(records[2].dst, 11);
}

TEST(CompositeWorkloadTest, WindowShiftsTraceReleaseTimes) {
  // A trace tenant starting at t=500 releases its roots on the local clock:
  // a record stamped 10.0 injects at global 510.
  trace::Trace t;
  t.nodes = 16;
  t.records = {{1, 0, 5, 10.0, 4, {}}};
  Scenario s;
  s.net.width = s.net.height = 4;
  TenantSpec ten;
  ten.name = "late";
  ten.kind = WorkloadKind::kTrace;
  ten.trace = std::make_shared<const trace::Trace>(t);
  ten.start = 500.0;
  s.tenants.push_back(std::move(ten));
  auto net = build_network(s);
  auto w = build_workload(s, net->topology());
  const ScenarioRunResult r = run_scenario(*net, *w);
  ASSERT_TRUE(r.completed);
  const auto records = net->drain_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].inject_time, 510.0);
}

TEST(CompositeWorkloadTest, TenantOrderBreaksSameTickTies) {
  // Two steady tenants on one node set: the lower tenant id wins every
  // contested injection slot, so the merge order is declaration order.
  Scenario s;
  s.net.width = s.net.height = 4;
  s.net.seed = 9;
  s.duration = 400.0;
  for (int i = 0; i < 2; ++i) {
    TenantSpec ten;
    ten.name = i == 0 ? "a" : "b";
    ten.kind = WorkloadKind::kSteady;
    ten.rate = 1.0;  // fire every tick: all slots contested
    ten.stop = 400.0;
    s.tenants.push_back(std::move(ten));
  }
  auto net = build_network(s);
  auto w = build_workload(s, net->topology());
  run_scenario(*net, *w);
  // Tenant 0 claimed every slot; tenant 1 never got polled into a win.
  EXPECT_GT(w->emitted(0), 0u);
  EXPECT_EQ(w->emitted(1), 0u);
}

// --- hook ordering across reconfiguration ----------------------------------

/// Wraps a steady workload and logs the injector hook sequence.
class RecordingInjector : public noc::TrafficInjector {
 public:
  explicit RecordingInjector(const noc::Topology& topo)
      : inner_(noc::SteadyWorkload::make(topo, "uniform", 0.10)) {}

  noc::NodeId generate(noc::NodeId src, double core_time,
                       util::Rng& rng) override {
    if (!enabled_) return noc::kInvalidNode;
    return inner_.generate(src, core_time, rng);
  }
  void on_packet_injected(noc::NodeId /*src*/, std::uint64_t packet_id,
                          double /*core_time*/) override {
    EXPECT_TRUE(injected_.insert(packet_id).second)
        << "packet " << packet_id << " injected twice";
  }
  void on_packet_delivered(const noc::PacketRecord& rec) override {
    EXPECT_TRUE(injected_.count(rec.packet_id))
        << "delivery hook for a packet that never passed injection";
    EXPECT_TRUE(delivered_.insert(rec.packet_id).second)
        << "packet " << rec.packet_id << " delivered twice";
    // Deliveries arrive in ejection order: core time never goes backwards.
    EXPECT_GE(rec.eject_time, last_eject_);
    last_eject_ = rec.eject_time;
  }
  std::string name() const override { return "recording"; }

  void stop_generating() { enabled_ = false; }
  std::size_t injected() const { return injected_.size(); }
  std::size_t delivered() const { return delivered_.size(); }

 private:
  noc::SteadyWorkload inner_;
  bool enabled_ = true;
  std::set<std::uint64_t> injected_;
  std::set<std::uint64_t> delivered_;
  double last_eject_ = 0.0;
};

TEST(InjectorHooks, OrderedAcrossReconfigurationEvents) {
  noc::NetworkParams p;
  p.width = p.height = 4;
  p.seed = 21;
  noc::Network net(p);
  RecordingInjector inj(net.topology());

  // Reconfigure mid-flight repeatedly: shrink, slow, restore — the hook
  // contract (inject-before-deliver, ejection order, exactly-once) must
  // hold through every transition.
  const noc::NocConfig configs[] = {{2, 4, 2}, {1, 2, 1}, {4, 8, 3}};
  for (const noc::NocConfig& c : configs) {
    for (int i = 0; i < 400; ++i) net.step(&inj);
    net.apply_config(c);
  }
  // Stop generating but keep the injector attached while draining, so
  // every in-flight packet still reports its delivery.
  inj.stop_generating();
  for (int i = 0; i < 50000 && !net.drained(); ++i) net.step(&inj);
  ASSERT_TRUE(net.drained());

  EXPECT_EQ(inj.injected(), net.total_packets_offered());
  EXPECT_EQ(inj.delivered(), net.total_packets_received());
  EXPECT_EQ(inj.injected(), inj.delivered());  // nothing lost in reconfigs
}

// --- determinism under the experiment engine -------------------------------

/// One full scenario run folded to a stream hash; seeds vary per task.
std::uint64_t scenario_run_hash(std::uint64_t seed) {
  Scenario s = mixed_scenario(seed);
  auto net = build_network(s);
  auto w = build_workload(s, net->topology());
  const ScenarioRunResult r = run_scenario(*net, *w);
  std::uint64_t h = stream_hash(net->drain_records());
  // Fold in the per-tenant accounting so attribution is pinned too.
  h ^= 0x9e3779b97f4a7c15ULL * (r.stats.tenants[0].packets_received + 1);
  h ^= 0xc2b2ae3d27d4eb4fULL * (r.stats.tenants[1].packets_received + 1);
  return h;
}

TEST(CompositeDeterminism, GoldenStreamHashInvariantAcrossThreads) {
  // Four scenario replays fanned over the experiment engine at 1/2/8
  // worker threads must produce one identical combined hash — and that
  // hash is pinned so composite merging cannot drift silently.
  std::uint64_t combined[3] = {};
  const int jobs_options[3] = {1, 2, 8};
  for (int k = 0; k < 3; ++k) {
    const auto hashes = util::parallel_map<std::uint64_t>(
        4, jobs_options[k],
        [](int i) { return scenario_run_hash(7 + static_cast<std::uint64_t>(i)); });
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t v : hashes) {
      h ^= v;
      h *= 0x100000001b3ULL;
    }
    combined[k] = h;
  }
  EXPECT_EQ(combined[0], combined[1]);
  EXPECT_EQ(combined[0], combined[2]);
  // Captured from the first composite-merge implementation; like the other
  // golden hashes this value only mixes +,-,*,/ arithmetic, so it is stable
  // across compilers and optimisation levels on IEEE-754 platforms.
  EXPECT_EQ(combined[0], 11117616280987195961ULL);
}

// --- RL environment wiring -------------------------------------------------

TEST(ScenarioEnv, EpisodesRunOnScenariosWithPerTenantStats) {
  auto s = std::make_shared<Scenario>(mixed_scenario());
  s->tenants[0].loop = true;  // keep every epoch fed
  s->tenants[1].stop = kInf;
  s->duration = 1e6;  // horizon for standalone runs; episodes bound RL use

  core::NocEnvParams ep;
  ep.scenario = s;
  ep.net.seed = 42;
  ep.epoch_cycles = 256;
  ep.epochs_per_episode = 4;
  core::NocConfigEnv env(ep);
  EXPECT_EQ(env.phased_workload(), nullptr);
  EXPECT_EQ(env.params().net.width, 4);  // fabric came from the scenario

  const rl::State s0 = env.reset();
  EXPECT_NE(env.composite_workload(), nullptr);  // built by reset()
  EXPECT_EQ(s0.size(), env.state_size());
  double traffic = 0.0;
  for (int a = 0; a < 3; ++a) {
    const rl::StepResult r = env.step(a % env.num_actions());
    EXPECT_EQ(r.next_state.size(), env.state_size());
    ASSERT_EQ(env.last_stats().tenants.size(), 2u);
    traffic += static_cast<double>(env.last_stats().packets_offered);
    EXPECT_EQ(env.last_stats().tenants[0].packets_offered +
                  env.last_stats().tenants[1].packets_offered,
              env.last_stats().packets_offered);
  }
  EXPECT_GT(traffic, 0.0);

  // evaluate() aggregates the per-tenant slices across epochs.
  auto ctrl = core::StaticController::maximal(env.actions());
  const core::EpisodeResult res = core::evaluate(env, *ctrl);
  ASSERT_EQ(res.tenants.size(), 2u);
  EXPECT_GT(res.tenants[0].packets_received, 0u);
  EXPECT_GT(res.tenants[1].packets_received, 0u);
  EXPECT_GT(res.tenants[0].mean_latency, 0.0);
  EXPECT_GT(res.tenants[0].p95_latency, 0.0);
  EXPECT_GT(res.tenants[1].accepted_rate, 0.0);
}

TEST(ScenarioEnv, RejectsTraceAndScenarioTogether) {
  core::NocEnvParams ep;
  ep.net.width = ep.net.height = 4;
  ep.scenario = std::make_shared<Scenario>(mixed_scenario());
  ep.trace = std::make_shared<const trace::Trace>(dnn_trace());
  EXPECT_THROW(core::NocConfigEnv{ep}, std::invalid_argument);
}

TEST(ScenarioEnv, ReplicaSeedsChangeBackgroundTraffic) {
  // The evaluation protocol's seed stream must reach scenario episodes:
  // different net.seed => different synthetic background arrivals.
  auto s = std::make_shared<Scenario>(mixed_scenario());
  s->tenants[1].stop = kInf;
  s->duration = 1e6;
  const auto offered_with_seed = [&](std::uint64_t seed) {
    core::NocEnvParams ep;
    ep.scenario = s;
    ep.net.seed = seed;
    ep.epoch_cycles = 512;
    ep.epochs_per_episode = 2;
    core::NocConfigEnv env(ep);
    env.set_eval_mode(true);
    env.reset();
    return env.last_stats().tenants[1].packets_offered;
  };
  EXPECT_NE(offered_with_seed(42), offered_with_seed(43));
}

}  // namespace
}  // namespace drlnoc::scenario
