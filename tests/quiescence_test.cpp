// Quiescence edge cases for the event-driven network core: a router leaves
// the active set only when it is *provably* idle (no buffered flits, no
// in-flight channel traffic, idle NIC) and must re-arm on every event that
// can touch it — reconfiguration credits, tenant window boundaries, and
// trace-replay dependency releases into an already-drained region.
//
// The golden hashes were captured from the pre-event-driven build (every
// router stepped every cycle), so these tests pin that skipping quiescent
// work never moves a single bit.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "noc/network.h"
#include "noc/workload.h"
#include "scenario/runtime.h"
#include "scenario/scenario.h"
#include "trace/trace_workload.h"
#include "util/rng.h"

namespace drlnoc {
namespace {

/// FNV-1a over 64-bit words; doubles are hashed by bit pattern (same helper
/// as tests/determinism_test.cpp).
class Fnv {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(int v) {
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

void mix_stats(Fnv& h, const noc::EpochStats& s) {
  h.mix(s.packets_offered);
  h.mix(s.packets_received);
  h.mix(s.flits_injected);
  h.mix(s.flits_ejected);
  h.mix(s.avg_latency);
  h.mix(s.p95_latency);
  h.mix(s.max_latency);
  h.mix(s.avg_hops);
  h.mix(s.avg_buffer_occupancy);
  h.mix(s.source_queue_total);
  for (const noc::TenantEpochStats& t : s.tenants) {
    h.mix(t.packets_offered);
    h.mix(t.packets_received);
    h.mix(t.packets_measured);
    h.mix(t.flits_ejected);
    h.mix(t.avg_latency);
    h.mix(t.p95_latency);
    h.mix(t.max_latency);
  }
}

void mix_records(Fnv& h, const std::vector<noc::PacketRecord>& records) {
  h.mix(static_cast<std::uint64_t>(records.size()));
  for (const noc::PacketRecord& r : records) {
    h.mix(r.packet_id);
    h.mix(r.src);
    h.mix(r.dst);
    h.mix(static_cast<std::uint64_t>(r.length));
    h.mix(r.inject_time);
    h.mix(r.eject_time);
    h.mix(static_cast<std::uint64_t>(r.hops));
    h.mix(static_cast<std::uint64_t>(r.measured ? 1 : 0));
  }
}

void mix_router_state(Fnv& h, noc::Network& net) {
  const int radix = net.topology().radix();
  const int vcs = net.params().max_vcs;
  for (int node = 0; node < net.num_nodes(); ++node) {
    noc::Router& r = net.router(node);
    h.mix(r.buffered_flits());
    for (int p = 0; p < radix; ++p) {
      for (int v = 0; v < vcs; ++v) {
        h.mix(r.input_occupancy(p, v));
        h.mix(r.advertised_capacity(p, v));
        h.mix(r.output_credits(p, v));
      }
    }
  }
}

/// Uniform traffic gated to two bursts with a long fully-idle gap between
/// them: [0, 200) and [1500, 1700) core cycles. Outside the windows no RNG
/// is drawn, so the burst traffic is identical whatever happens in the gap.
class WindowedUniform : public noc::TrafficInjector {
 public:
  WindowedUniform(const noc::Topology& topo, double rate)
      : inner_(noc::SteadyWorkload::make(topo, "uniform", rate)) {}

  noc::NodeId generate(noc::NodeId src, double t, util::Rng& rng) override {
    const bool in_window = t < 200.0 || (t >= 1500.0 && t < 1700.0);
    if (!in_window) return noc::kInvalidNode;
    return inner_.generate(src, t, rng);
  }
  std::string name() const override { return "windowed_uniform"; }

 private:
  noc::SteadyWorkload inner_;
};

// A mid-epoch reconfiguration lands while the whole fabric is quiescent:
// the depth growth floods bonus credits into every channel and the next
// burst must find every router re-armed with the new configuration. The
// hash covers both bursts, the drain, and the final microarchitectural
// state (advertised capacities prove the reconfig reached idle routers).
TEST(Quiescence, RearmAfterMidEpochReconfigWhileIdle) {
  noc::NetworkParams p;
  p.width = p.height = 8;
  p.seed = 17;
  p.initial_config = noc::NocConfig{4, 4, 3};
  noc::Network net(p);
  WindowedUniform w(net.topology(), 0.10);

  Fnv h;
  // Burst [0,200) plus full drain: the fabric is silent long before cycle
  // 700 (dvfs level 3 runs routers at the core clock).
  mix_stats(h, net.run_epoch(&w, 700));
  EXPECT_TRUE(net.drained());
  // The drained fabric must have fully quiesced: every node left the
  // active worklist.
  EXPECT_EQ(net.active_nodes(), 0);
  // Reconfigure the idle fabric: fewer VCs, *deeper* buffers (bonus credits
  // flow upstream through every channel), slower clock.
  net.apply_config(noc::NocConfig{2, 8, 2});
  // Reconfiguration re-arms everyone (gating and credits changed).
  EXPECT_EQ(net.active_nodes(), net.num_nodes());
  // Second burst [1500,1700) core time falls inside this epoch
  // (700 + 900 router cycles x divisor 4/3 = 1900 core cycles).
  mix_stats(h, net.run_epoch(&w, 900));
  mix_stats(h, net.run_epoch(&w, 600));  // drain tail
  EXPECT_TRUE(net.drained());
  mix_records(h, net.drain_records());
  mix_router_state(h, net);

  EXPECT_EQ(h.value(), 17408074369770322554ULL);
}

// Composite-workload tenant activation at a [start,stop) boundary: tenant 1
// wakes a fabric that fully drained after tenant 0's window closed. The
// per-tenant slices pin that the window edges (inclusive start, exclusive
// stop) did not move.
TEST(Quiescence, TenantActivationAtWindowBoundaryAfterDrain) {
  scenario::Scenario s;
  s.name = "window_boundary";
  s.net.width = s.net.height = 8;
  s.net.seed = 5;
  s.duration = 4000;
  s.cycle_limit = 100000;

  scenario::TenantSpec t0;
  t0.name = "early";
  t0.kind = scenario::WorkloadKind::kSteady;
  t0.pattern = "uniform";
  t0.rate = 0.06;
  for (int i = 0; i < 16; ++i) t0.nodes.push_back(i);
  t0.start = 0.0;
  t0.stop = 600.0;

  scenario::TenantSpec t1;
  t1.name = "late";
  t1.kind = scenario::WorkloadKind::kSteady;
  t1.pattern = "transpose";
  t1.rate = 0.05;
  for (int i = 48; i < 64; ++i) t1.nodes.push_back(i);
  t1.start = 2500.0;  // fabric fully drained long before this boundary
  t1.stop = 3200.0;

  s.tenants = {t0, t1};

  const scenario::ScenarioRunResult r = scenario::run_scenario(s);
  EXPECT_TRUE(r.completed);
  ASSERT_EQ(r.stats.tenants.size(), 2u);
  EXPECT_GT(r.stats.tenants[0].packets_received, 0u);
  EXPECT_GT(r.stats.tenants[1].packets_received, 0u);

  Fnv h;
  mix_stats(h, r.stats);
  h.mix(static_cast<std::uint64_t>(r.cycles));
  EXPECT_EQ(h.value(), 6449430330483873073ULL);
}

// Trace-replay dependency release into a quiescent region: each record
// depends on the previous one with a compute delay long enough for the
// whole fabric to drain in between, so every release after the first must
// re-arm sleeping routers at distant corners of the mesh.
TEST(Quiescence, DependencyReleaseIntoQuiescentRegion) {
  trace::Trace t;
  t.nodes = 64;
  t.default_length = 4;
  t.records = {
      {1, 0, 63, 0.0, 4, {}},
      {2, 63, 0, 3000.0, 4, {1}},    // fabric idle for ~3000 cycles first
      {3, 7, 56, 2500.0, 6, {2}},    // far corner pair, also after a gap
      {4, 56, 7, 10.0, 2, {3}},      // quick chained reply
  };

  noc::NetworkParams p;
  p.width = p.height = 8;
  p.seed = 9;
  noc::Network net(p);
  trace::TraceWorkload workload(std::move(t));

  const trace::TraceReplayResult r =
      trace::run_trace_replay(net, workload, 100000);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(workload.delivered(), 4u);

  Fnv h;
  mix_stats(h, r.stats);
  h.mix(static_cast<std::uint64_t>(r.cycles));
  mix_router_state(h, net);
  EXPECT_EQ(h.value(), 8664398725549031137ULL);
}

// A fully drained network must stay bit-frozen under further stepping: no
// statistics move and nothing is offered or delivered.
TEST(Quiescence, DrainedNetworkStepsAreNoOps) {
  noc::NetworkParams p;
  p.width = p.height = 4;
  p.seed = 3;
  noc::Network net(p);
  noc::SteadyWorkload w =
      noc::SteadyWorkload::make(net.topology(), "uniform", 0.10);
  (void)net.run_epoch(&w, 500);
  (void)net.run_epoch(nullptr, 2000);  // drain
  ASSERT_TRUE(net.drained());
  EXPECT_EQ(net.active_nodes(), 0);
  (void)net.drain_epoch_stats();

  const noc::EpochStats idle = net.run_epoch(nullptr, 1000);
  EXPECT_TRUE(net.drained());
  EXPECT_EQ(net.active_nodes(), 0);
  EXPECT_EQ(idle.avg_active_fraction, 0.0);
  EXPECT_EQ(idle.packets_offered, 0u);
  EXPECT_EQ(idle.packets_received, 0u);
  EXPECT_EQ(idle.flits_injected, 0u);
  EXPECT_EQ(idle.flits_ejected, 0u);
  EXPECT_EQ(idle.source_queue_total, 0u);
  EXPECT_EQ(idle.avg_buffer_occupancy, 0.0);
}

// --- fault events x quiescence ---------------------------------------------
// External mutation through the fault layer must re-arm exactly the nodes
// the event touches, and a re-armed idle node must re-quiesce on its own.

// A slowdown on a fully drained fabric wakes only the target node. The event
// cycle is chosen so the new divisor gates the first step (1001 % 4 != 0),
// which keeps the node observably armed; at the next divisor boundary the
// idle node steps once and leaves the worklist again.
TEST(Quiescence, SlowdownOnDrainedFabricArmsExactlyTarget) {
  noc::NetworkParams p;
  p.width = p.height = 4;
  p.seed = 11;
  noc::Network net(p);

  noc::FaultParams fp;
  noc::FaultEvent ev;
  ev.at_cycle = 1001;
  ev.kind = noc::FaultEvent::Kind::kSlowdown;
  ev.node = 10;
  ev.factor = 4;
  fp.events = {ev};
  net.set_fault_model(fp);

  noc::SteadyWorkload w =
      noc::SteadyWorkload::make(net.topology(), "uniform", 0.10);
  (void)net.run_epoch(&w, 400);
  (void)net.run_epoch(nullptr, 400);  // drained long before cycle 1001
  ASSERT_TRUE(net.drained());
  ASSERT_EQ(net.active_nodes(), 0);

  while (net.cycle() <= 1001) net.step(nullptr);
  EXPECT_EQ(net.active_nodes(), 1);
  EXPECT_TRUE(net.node_armed(10));

  for (int i = 0; i < 8; ++i) net.step(nullptr);  // crosses a %4 boundary
  EXPECT_EQ(net.active_nodes(), 0);
  EXPECT_TRUE(net.drained());
}

// A permanent link failure changes minimal paths fabric-wide, so the event
// must wake *every* node for exactly one step — even on an idle fabric —
// and they must all re-quiesce immediately after re-running under the new
// tables.
TEST(Quiescence, LinkDownOnDrainedFabricRearmsEveryNode) {
  noc::NetworkParams p;
  p.width = p.height = 4;
  p.seed = 13;
  noc::Network net(p);

  noc::FaultParams fp;
  noc::FaultEvent ev;
  ev.at_cycle = 900;
  ev.kind = noc::FaultEvent::Kind::kLinkDown;
  ev.node = 5;
  ev.port = 1;  // east output of node 5
  fp.events = {ev};
  net.set_fault_model(fp);

  noc::SteadyWorkload w =
      noc::SteadyWorkload::make(net.topology(), "uniform", 0.10);
  (void)net.run_epoch(&w, 300);
  (void)net.run_epoch(nullptr, 500);
  ASSERT_TRUE(net.drained());
  ASSERT_EQ(net.active_nodes(), 0);

  while (net.cycle() < 900) net.step(nullptr);  // idle run-up to the event
  const noc::EpochStats idle = net.drain_epoch_stats();
  EXPECT_EQ(idle.avg_active_fraction, 0.0);

  net.step(nullptr);  // cycle 900: link dies, routing recomputes
  const noc::EpochStats fire = net.drain_epoch_stats();
  EXPECT_EQ(fire.avg_active_fraction, 1.0);
  // Waking was exact, not sticky: every idle router stepped once under the
  // recomputed tables and immediately left the worklist again.
  EXPECT_EQ(net.active_nodes(), 0);
  EXPECT_TRUE(net.drained());
}

// A pending retransmission is in-system state: the fabric may be physically
// silent (zero armed nodes) yet must not report drained until the timer
// fires, and the firing must wake exactly the source NIC. With rate 1.0 the
// retry corrupts too, exhausting the budget of 1 and losing the packet.
TEST(Quiescence, PendingRetryBlocksDrainAndWakesExactlySource) {
  noc::NetworkParams p;
  p.width = p.height = 4;
  p.seed = 7;
  noc::Network net(p);

  noc::FaultParams fp;
  fp.link_fault_rate = 1.0;  // every link traversal corrupts
  fp.retry_timeout = 300;    // long enough for a full physical drain first
  fp.retry_backoff = 1.0;
  fp.retry_budget = 1;
  net.set_fault_model(fp);

  net.nic(0).offer_packet(/*dst=*/1, /*core_time=*/0.0, /*measured=*/true,
                          /*packet_id=*/1, /*length=*/4, /*tenant=*/0);
  int guard = 0;
  do {
    net.step(nullptr);
  } while (net.active_nodes() > 0 && ++guard < 1000);
  ASSERT_LT(guard, 1000);
  // Physically silent, but the retransmission timer holds the drain.
  EXPECT_EQ(net.active_nodes(), 0);
  EXPECT_FALSE(net.drained());

  guard = 0;
  while (net.active_nodes() == 0 && ++guard < 2000) net.step(nullptr);
  ASSERT_LT(guard, 2000);
  EXPECT_EQ(net.active_nodes(), 1);
  EXPECT_TRUE(net.node_armed(0));  // the retry woke exactly the source

  guard = 0;
  while (!net.drained() && ++guard < 2000) net.step(nullptr);
  EXPECT_TRUE(net.drained());
  const noc::EpochStats s = net.drain_epoch_stats();
  EXPECT_EQ(s.packets_received, 0u);  // both attempts arrived corrupted
  EXPECT_EQ(s.retries, 1u);
  EXPECT_EQ(s.packets_lost, 1u);
  EXPECT_EQ(s.flits_dropped, 8u);  // 4 flits on the first try + 4 retried
}

}  // namespace
}  // namespace drlnoc
