#include <gtest/gtest.h>

#include "noc/power.h"

namespace drlnoc::noc {
namespace {

RouterActivity some_activity() {
  RouterActivity a;
  a.buffer_writes = 100;
  a.buffer_reads = 100;
  a.vc_allocs = 25;
  a.sw_arbs = 110;
  a.xbar_traversals = 100;
  a.link_flits = 100;
  return a;
}

TEST(PowerModel, DefaultLevelsAreOrdered) {
  const auto levels = default_dvfs_levels();
  ASSERT_EQ(levels.size(), 4u);
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_GT(levels[i].freq_ghz, levels[i - 1].freq_ghz);
    EXPECT_GT(levels[i].voltage, levels[i - 1].voltage);
  }
}

TEST(PowerModel, ClockDivisorInverseToFrequency) {
  PowerModel pm({}, default_dvfs_levels());
  EXPECT_DOUBLE_EQ(pm.clock_divisor(3), 1.0);   // 2.0 / 2.0
  EXPECT_DOUBLE_EQ(pm.clock_divisor(1), 2.0);   // 2.0 / 1.0
  EXPECT_DOUBLE_EQ(pm.clock_divisor(0), 4.0);   // 2.0 / 0.5
  for (int l = 0; l < pm.num_levels(); ++l) EXPECT_GE(pm.clock_divisor(l), 1.0);
}

TEST(PowerModel, RejectsOverclockedLevels) {
  PowerParams pp;
  pp.core_freq_ghz = 1.0;
  EXPECT_THROW(PowerModel(pp, {{2.0, 1.0, "too-fast"}}),
               std::invalid_argument);
  EXPECT_THROW(PowerModel(pp, {}), std::invalid_argument);
}

TEST(PowerModel, DynamicEnergyVoltageSquaredLaw) {
  PowerParams pp;
  pp.v_nom = 1.0;
  PowerModel pm(pp, {{1.0, 0.5, "a"}, {1.0, 1.0, "b"}});
  const RouterActivity a = some_activity();
  EXPECT_NEAR(pm.dynamic_energy(a, 0), 0.25 * pm.dynamic_energy(a, 1), 1e-9);
}

TEST(PowerModel, DynamicEnergyLinearInActivity) {
  PowerModel pm({}, default_dvfs_levels());
  RouterActivity a = some_activity();
  RouterActivity twice = a;
  twice += a;
  EXPECT_NEAR(pm.dynamic_energy(twice, 2), 2.0 * pm.dynamic_energy(a, 2),
              1e-9);
  EXPECT_DOUBLE_EQ(pm.dynamic_energy(RouterActivity{}, 2), 0.0);
}

// Property: static energy is monotone in every resource axis (invariant 5).
class StaticMonotone : public ::testing::TestWithParam<int> {};

TEST_P(StaticMonotone, InResourcesAndTime) {
  PowerModel pm({}, default_dvfs_levels());
  const int level = GetParam();
  const double base = pm.static_energy(16, 5, 48, 2, 4, level, 1000.0);
  EXPECT_GT(pm.static_energy(16, 5, 48, 4, 4, level, 1000.0), base);
  EXPECT_GT(pm.static_energy(16, 5, 48, 2, 8, level, 1000.0), base);
  EXPECT_GT(pm.static_energy(32, 5, 48, 2, 4, level, 1000.0), base);
  EXPECT_GT(pm.static_energy(16, 5, 96, 2, 4, level, 1000.0), base);
  EXPECT_NEAR(pm.static_energy(16, 5, 48, 2, 4, level, 2000.0), 2.0 * base,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Levels, StaticMonotone, ::testing::Values(0, 1, 2, 3));

TEST(PowerModel, StaticEnergyMonotoneInVoltage) {
  PowerModel pm({}, default_dvfs_levels());
  double prev = 0.0;
  for (int level = 0; level < pm.num_levels(); ++level) {
    const double e = pm.static_energy(16, 5, 48, 4, 8, level, 1000.0);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(RouterActivityStruct, AccumulatesAndResets) {
  RouterActivity a = some_activity();
  RouterActivity b;
  b += a;
  b += a;
  EXPECT_EQ(b.buffer_writes, 200u);
  EXPECT_EQ(b.link_flits, 200u);
  b.reset();
  EXPECT_EQ(b.buffer_writes, 0u);
  EXPECT_EQ(b.sw_arbs, 0u);
}

}  // namespace
}  // namespace drlnoc::noc
