// Fleet subsystem tests: churn expansion (determinism, FIFO admission under
// a capacity cap, RNG stream stability, validation, `.drlsc` round-trips,
// and the no-churn goldens staying untouched), `.drlfs` scenario spaces
// (mixed-radix index mapping, spec rejection with line numbers), result-file
// round-trips, and the headline resumability contract: a fleet run that is
// killed mid-way and resumed — at any --jobs count — produces a scorecard
// byte-identical to an uninterrupted run. PR 10 adds policy versioning:
// drl fleets record the served rl::policy_fingerprint in every result file
// and a stale policy_pin is refused up front. Also covers the
// core::summarize_metric edge cases (n = 0/1, zero variance, NaN rejection)
// that the scorecard aggregation leans on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/env_noc.h"
#include "core/parallel.h"
#include "fleet/fleet.h"
#include "fleet/scenario_space.h"
#include "fleet/scorecard.h"
#include "rl/dqn.h"
#include "rl/policy_io.h"
#include "scenario/churn.h"
#include "scenario/scenario.h"
#include "scenario/scenario_io.h"

namespace drlnoc {
namespace {

/// Runs `fn`, expecting std::exception; returns its message ("" if none).
template <typename Fn>
std::string rejection(Fn&& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

scenario::ChurnParams basic_churn() {
  scenario::ChurnParams churn;
  churn.seed = 42;
  churn.arrival_rate = 0.002;
  churn.horizon = 10000.0;
  churn.max_arrivals = 64;
  scenario::ChurnTemplate t;
  t.tenant = 0;
  t.lifetime = "exponential";
  t.lifetime_mean = 1500.0;
  churn.templates.push_back(t);
  return churn;
}

// ------------------------------------------------------------ churn model ---

TEST(Churn, ExpansionIsDeterministic) {
  const scenario::ChurnParams churn = basic_churn();
  const auto a = scenario::expand_churn_windows(churn, 10000.0);
  const auto b = scenario::expand_churn_windows(churn, 10000.0);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].template_index, b[i].template_index);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].stop, b[i].stop);
  }

  scenario::ChurnParams other = churn;
  other.seed = 43;
  const auto c = scenario::expand_churn_windows(other, 10000.0);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = c[i].arrival != a[i].arrival;
  }
  EXPECT_TRUE(differs) << "different churn seeds produced identical arrivals";
}

TEST(Churn, CapacityQueuesFifo) {
  scenario::ChurnParams churn = basic_churn();
  churn.capacity = 1;
  // Fixed short lifetimes: the admission chain stays inside the horizon, so
  // several instances are admitted instead of one long-lived blocker.
  churn.templates[0].lifetime = "fixed";
  churn.templates[0].lifetime_mean = 400.0;
  const auto windows = scenario::expand_churn_windows(churn, 10000.0);
  ASSERT_GE(windows.size(), 2u);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    EXPECT_GE(windows[i].start, windows[i].arrival);
    EXPECT_GT(windows[i].stop, windows[i].start);
    // Capacity 1: the next instance starts no earlier than this one stops.
    if (i + 1 < windows.size()) {
      EXPECT_GE(windows[i + 1].start, windows[i].stop);
    }
  }

  // Without a cap every arrival is admitted immediately.
  churn.capacity = 0;
  for (const auto& w : scenario::expand_churn_windows(churn, 10000.0)) {
    EXPECT_EQ(w.start, w.arrival);
  }
}

TEST(Churn, CapacityDoesNotShiftRngDraws) {
  // Template + lifetime are drawn at arrival-generation time, so changing
  // the capacity cap must not perturb any arrival time or drawn lifetime —
  // only admission (start) times move.
  scenario::ChurnParams open = basic_churn();
  open.capacity = 0;
  scenario::ChurnParams capped = basic_churn();
  capped.capacity = 1;
  const auto a = scenario::expand_churn_windows(open, 10000.0);
  const auto b = scenario::expand_churn_windows(capped, 10000.0);
  // Queueing can drop instances anywhere in the sequence (queued past the
  // horizon), so match surviving capped instances to the uncapped run by
  // their (bit-exact) arrival time.
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_LE(b.size(), a.size());
  std::size_t matched = 0;
  for (const scenario::ChurnInstance& inst : b) {
    bool found = false;
    for (const scenario::ChurnInstance& ref : a) {
      if (ref.arrival == inst.arrival) {
        EXPECT_EQ(ref.template_index, inst.template_index);
        found = true;
        ++matched;
        break;
      }
    }
    EXPECT_TRUE(found) << "capped arrival " << inst.arrival
                       << " not in the uncapped stream";
  }
  EXPECT_EQ(matched, b.size());
}

TEST(Churn, ValidationRejectsBadParams) {
  const double duration = 10000.0;
  {
    scenario::ChurnParams c = basic_churn();
    c.templates.clear();
    EXPECT_NE(rejection([&] { c.validate(1, duration); })
                  .find("at least one template"),
              std::string::npos);
  }
  {
    scenario::ChurnParams c = basic_churn();
    c.templates[0].tenant = 5;
    EXPECT_NE(rejection([&] { c.validate(1, duration); }).find("out of range"),
              std::string::npos);
  }
  {
    scenario::ChurnParams c = basic_churn();
    c.templates[0].lifetime = "weibull";
    EXPECT_NE(rejection([&] { c.validate(1, duration); })
                  .find("exponential|fixed|uniform"),
              std::string::npos);
  }
  {
    scenario::ChurnParams c = basic_churn();
    c.templates[0].lifetime = "uniform";
    c.templates[0].lifetime_min = 10.0;
    c.templates[0].lifetime_max = 5.0;
    EXPECT_NE(rejection([&] { c.validate(1, duration); })
                  .find("lifetime_min <= lifetime_max"),
              std::string::npos);
  }
  {
    // arrival_rate > 0 but no finite window anywhere.
    scenario::ChurnParams c = basic_churn();
    c.horizon = 0.0;
    EXPECT_NE(rejection([&] { c.validate(1, 0.0); })
                  .find("finite arrival window"),
              std::string::npos);
  }
}

constexpr const char* kChurnScenarioText =
    "drlsc 1\n"
    "name = churny\n"
    "width = 4\n"
    "height = 4\n"
    "seed = 9\n"
    "duration = 8000\n"
    "tenants = 1\n"
    "tenant0.name = base\n"
    "tenant0.workload = steady\n"
    "tenant0.rate = 0.02\n"
    "\n"
    "[churn]\n"
    "seed = 7\n"
    "arrival_rate = 0.001\n"
    "capacity = 2\n"
    "max_arrivals = 16\n"
    "templates = 1\n"
    "template0.tenant = 0\n"
    "template0.lifetime = fixed\n"
    "template0.lifetime_mean = 2000\n";

TEST(Churn, ScenarioRoundTripReExpandsIdentically) {
  const scenario::Scenario s =
      scenario::ScenarioReader::read_text(kChurnScenarioText);
  ASSERT_TRUE(s.churn.enabled());
  EXPECT_EQ(s.num_declared_tenants(), 1);
  ASSERT_GT(s.tenants.size(), 1u) << "churn expanded no tenants";
  for (std::size_t i = 1; i < s.tenants.size(); ++i) {
    EXPECT_TRUE(s.tenants[i].churned);
    // Clone names use '@' (a '#' would start a comment in result files).
    EXPECT_NE(s.tenants[i].name.find('@'), std::string::npos);
  }

  // The writer emits the declared tenant + the [churn] block, never the
  // expanded clones; re-reading re-expands them bit-identically.
  std::ostringstream os;
  scenario::ScenarioWriter::write_text(os, s);
  const std::string written = os.str();
  EXPECT_NE(written.find("[churn]"), std::string::npos);
  EXPECT_NE(written.find("tenants = 1"), std::string::npos);
  EXPECT_EQ(written.find("@"), std::string::npos)
      << "writer leaked an expanded churn clone";

  const scenario::Scenario back = scenario::ScenarioReader::read_text(written);
  ASSERT_EQ(back.tenants.size(), s.tenants.size());
  for (std::size_t i = 0; i < s.tenants.size(); ++i) {
    EXPECT_EQ(back.tenants[i].name, s.tenants[i].name);
    EXPECT_EQ(back.tenants[i].start, s.tenants[i].start);
    EXPECT_EQ(back.tenants[i].stop, s.tenants[i].stop);
  }
  std::ostringstream os2;
  scenario::ScenarioWriter::write_text(os2, back);
  EXPECT_EQ(os2.str(), written);
}

TEST(Churn, ExpandIsIdempotent) {
  scenario::Scenario s = scenario::ScenarioReader::read_text(kChurnScenarioText);
  const std::size_t expanded = s.tenants.size();
  scenario::expand_churn(s);
  scenario::expand_churn(s);
  EXPECT_EQ(s.tenants.size(), expanded);
}

TEST(Churn, NoChurnScenariosUntouched) {
  // Without a [churn] block nothing expands, the params stay inert, and the
  // writer emits no churn section — so pre-churn scenario files and their
  // golden determinism hashes are unaffected by this subsystem.
  const std::string text =
      "drlsc 1\nwidth = 4\nheight = 4\nduration = 1000\n"
      "tenants = 1\ntenant0.workload = steady\ntenant0.rate = 0.05\n";
  const scenario::Scenario s = scenario::ScenarioReader::read_text(text);
  EXPECT_FALSE(s.churn.enabled());
  EXPECT_EQ(s.tenants.size(), 1u);
  EXPECT_EQ(s.num_declared_tenants(), 1);
  std::ostringstream os;
  scenario::ScenarioWriter::write_text(os, s);
  EXPECT_EQ(os.str().find("churn"), std::string::npos);
}

// ------------------------------------------- parse errors cite line numbers ---

TEST(ScenarioParse, ErrorsReportLineNumbers) {
  // Malformed value: the strict-parse error names the key AND the line.
  const std::string bad_value =
      "drlsc 1\nwidth = 4x\nheight = 4\nduration = 1000\n"
      "tenants = 1\ntenant0.workload = steady\ntenant0.rate = 0.05\n";
  const std::string msg1 =
      rejection([&] { scenario::ScenarioReader::read_text(bad_value); });
  EXPECT_NE(msg1.find("width"), std::string::npos) << msg1;
  EXPECT_NE(msg1.find("(line 2)"), std::string::npos) << msg1;

  // Unknown key: rejected with its line.
  const std::string unknown =
      "drlsc 1\nwidth = 4\nheight = 4\nduration = 1000\n"
      "tenants = 1\ntenant0.workload = steady\ntenant0.rate = 0.05\n"
      "frobnicate = 1\n";
  const std::string msg2 =
      rejection([&] { scenario::ScenarioReader::read_text(unknown); });
  EXPECT_NE(msg2.find("frobnicate"), std::string::npos) << msg2;
  EXPECT_NE(msg2.find("(line 8)"), std::string::npos) << msg2;

  // Churn-section keys carry line numbers too.
  const std::string bad_churn = std::string(kChurnScenarioText) +
                                "template0.weight = oops\n";
  const std::string msg3 =
      rejection([&] { scenario::ScenarioReader::read_text(bad_churn); });
  EXPECT_NE(msg3.find("line 21"), std::string::npos) << msg3;

  // Override values come from the caller, not the file: no stale line cited.
  const std::string msg4 = rejection([&] {
    scenario::ScenarioReader::read_text(
        "drlsc 1\nwidth = 4\nheight = 4\nduration = 1000\n"
        "tenants = 1\ntenant0.workload = steady\ntenant0.rate = 0.05\n",
        "", {{"width", "4x"}});
  });
  EXPECT_NE(msg4.find("width"), std::string::npos) << msg4;
  EXPECT_EQ(msg4.find("(line"), std::string::npos) << msg4;
}

// --------------------------------------------------------- scenario spaces ---

/// Writes a tiny base scenario + spec under dir; returns the spec path.
std::string write_space_files(const std::string& dir,
                              const std::string& spec_body) {
  std::filesystem::create_directories(dir);
  {
    std::ofstream base(dir + "/base.drlsc");
    base << "drlsc 1\nname = sp\nwidth = 4\nheight = 4\nseed = 5\n"
            "duration = 4000\ntenants = 1\ntenant0.workload = steady\n"
            "tenant0.rate = 0.02\ntenant0.qos = latency_critical\n"
            "tenant0.p95_target = 400\n";
  }
  const std::string spec_path = dir + "/space.drlfs";
  std::ofstream spec(spec_path);
  spec << spec_body;
  return spec_path;
}

TEST(ScenarioSpace, MixedRadixIndexMapping) {
  const std::string dir = ::testing::TempDir() + "fleet_space_map";
  const std::string spec = write_space_files(
      dir,
      "drlfs 1\nname = grid\nbase = base.drlsc\nseeds = 2\naxes = 2\n"
      "axis0.key = tenant0.rate\naxis0.values = 0.01,0.03,0.05\n"
      "axis1.key = width\naxis1.count = 2\naxis1.value0 = 4\n"
      "axis1.value1 = 5\n");
  const fleet::ScenarioSpace space = fleet::ScenarioSpaceReader::read_file(spec);
  EXPECT_EQ(space.size(), 2u * 3u * 2u);

  // Seed replica is innermost, then axes in declaration order.
  const fleet::ExpandedScenario p0 = space.point(0);
  EXPECT_EQ(p0.seed_offset, 0u);
  EXPECT_EQ(p0.overrides.at("tenant0.rate"), "0.01");
  EXPECT_EQ(p0.overrides.at("width"), "4");
  const fleet::ExpandedScenario p1 = space.point(1);
  EXPECT_EQ(p1.seed_offset, 1u);
  EXPECT_EQ(p1.overrides.at("tenant0.rate"), "0.01");
  const fleet::ExpandedScenario p2 = space.point(2);
  EXPECT_EQ(p2.seed_offset, 0u);
  EXPECT_EQ(p2.overrides.at("tenant0.rate"), "0.03");
  const fleet::ExpandedScenario last = space.point(space.size() - 1);
  EXPECT_EQ(last.seed_offset, 1u);
  EXPECT_EQ(last.overrides.at("tenant0.rate"), "0.05");
  EXPECT_EQ(last.overrides.at("width"), "5");

  // expand() applies the overrides and offsets net.seed by the replica.
  const fleet::ExpandedScenario e1 = space.expand(1);
  EXPECT_EQ(e1.scenario.net.seed, 5u + 1u);
  EXPECT_EQ(e1.scenario.name, e1.label);
  EXPECT_NE(e1.label.find("grid[1]"), std::string::npos) << e1.label;
  EXPECT_NE(e1.label.find("seed+1"), std::string::npos) << e1.label;

  EXPECT_NE(rejection([&] { space.expand(space.size()); }).find("out of"),
            std::string::npos);
}

TEST(ScenarioSpace, SpecRejectionMessages) {
  const std::string dir = ::testing::TempDir() + "fleet_space_err";
  // values= and count= on the same axis are mutually exclusive.
  EXPECT_NE(
      rejection([&] {
        fleet::ScenarioSpaceReader::read_file(write_space_files(
            dir + "/a",
            "drlfs 1\nname = x\nbase = base.drlsc\naxes = 1\n"
            "axis0.key = width\naxis0.values = 4,5\naxis0.count = 2\n"
            "axis0.value0 = 4\naxis0.value1 = 5\n"));
      }).find("mutually exclusive"),
      std::string::npos);

  // Unknown keys are rejected with their line number.
  const std::string msg = rejection([&] {
    fleet::ScenarioSpaceReader::read_file(write_space_files(
        dir + "/b",
        "drlfs 1\nname = x\nbase = base.drlsc\nseeeds = 2\n"));
  });
  EXPECT_NE(msg.find("seeeds"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;

  EXPECT_NE(
      rejection([&] {
        fleet::ScenarioSpaceReader::read_file(write_space_files(
            dir + "/c", "drlfs 1\nname = x\nbase = base.drlsc\nseeds = 0\n"));
      }).find("seeds must be >= 1"),
      std::string::npos);

  EXPECT_NE(
      rejection([&] {
        fleet::ScenarioSpaceReader::read_file(write_space_files(
            dir + "/d",
            "drlfs 1\nname = x\nbase = base.drlsc\naxes = 2\n"
            "axis0.key = width\naxis0.values = 4,5\n"
            "axis1.key = width\naxis1.values = 6,7\n"));
      }).find("duplicate axis key"),
      std::string::npos);

  EXPECT_NE(rejection([&] {
              fleet::ScenarioSpaceReader::read_text("drlfs 1\nname = x\n");
            }).find("base"),
            std::string::npos);
}

// ------------------------------------------------- summarize_metric edges ---

TEST(SummarizeMetric, EdgeCases) {
  const core::MetricSummary empty = core::summarize_metric({});
  EXPECT_EQ(empty.mean, 0.0);
  EXPECT_EQ(empty.stddev, 0.0);
  EXPECT_EQ(empty.ci95, 0.0);

  // n = 1: the value itself, with exactly zero spread.
  const core::MetricSummary one = core::summarize_metric({3.25});
  EXPECT_EQ(one.mean, 3.25);
  EXPECT_EQ(one.stddev, 0.0);
  EXPECT_EQ(one.ci95, 0.0);

  // Zero variance: stddev and ci95 are exactly zero, not a rounding residue.
  const core::MetricSummary flat = core::summarize_metric({7.5, 7.5, 7.5, 7.5});
  EXPECT_EQ(flat.mean, 7.5);
  EXPECT_EQ(flat.stddev, 0.0);
  EXPECT_EQ(flat.ci95, 0.0);

  // NaN is an upstream bug, not a sample.
  EXPECT_THROW(
      core::summarize_metric({1.0, std::numeric_limits<double>::quiet_NaN()}),
      std::invalid_argument);
}

// --------------------------------------------------------------- fleet runs ---

fleet::ScenarioSpace tiny_space(const std::string& dir) {
  const std::string spec = write_space_files(
      dir,
      "drlfs 1\nname = tiny\nbase = base.drlsc\nseeds = 2\naxes = 1\n"
      "axis0.key = tenant0.rate\naxis0.values = 0.02,0.05\n");
  return fleet::ScenarioSpaceReader::read_file(spec);
}

fleet::FleetParams tiny_params(const std::string& results_dir) {
  fleet::FleetParams p;
  p.controller = "heuristic";
  p.epoch_cycles = 128;
  p.epochs = 2;
  p.results_dir = results_dir;
  return p;
}

TEST(FleetResult, FileRoundTripIsExact) {
  const std::string dir = ::testing::TempDir() + "fleet_result_rt";
  std::filesystem::create_directories(dir);
  fleet::FleetScenarioResult r;
  r.index = 3;
  r.label = "tiny[3] tenant0.rate=0.05 seed+1";
  r.seed = 6;
  r.reward = 0.1;  // not exactly representable — precision 17 must hold it
  r.mean_latency = 123.456789012345678;
  r.p95_latency = 400.25;
  r.mean_power_mw = 1e-17;
  r.mean_edp = 3.0;
  r.flits_dropped = 7;
  r.retries = 2;
  fleet::FleetTenantOutcome t;
  t.name = "base@0";
  t.qos = "latency_critical";
  t.slo_hit_rate = 2.0 / 3.0;
  t.p95_latency = 333.5;
  t.accepted_rate = 0.9999999999999999;
  r.tenants.push_back(t);

  const std::string path = dir + "/r" + fleet::kFleetResultExtension;
  fleet::write_result_file(path, r);
  const auto back = fleet::read_result_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->index, r.index);
  EXPECT_EQ(back->label, r.label);
  EXPECT_EQ(back->seed, r.seed);
  EXPECT_EQ(back->reward, r.reward);
  EXPECT_EQ(back->mean_latency, r.mean_latency);
  EXPECT_EQ(back->mean_power_mw, r.mean_power_mw);
  EXPECT_EQ(back->flits_dropped, r.flits_dropped);
  ASSERT_EQ(back->tenants.size(), 1u);
  EXPECT_EQ(back->tenants[0].name, t.name);
  EXPECT_EQ(back->tenants[0].slo_hit_rate, t.slo_hit_rate);
  EXPECT_EQ(back->tenants[0].accepted_rate, t.accepted_rate);

  EXPECT_FALSE(fleet::read_result_file(dir + "/missing.drlfr").has_value());
}

TEST(FleetResult, KeyCoversEverythingThatChangesTheOutcome) {
  const std::string dir = ::testing::TempDir() + "fleet_keys";
  const fleet::ScenarioSpace space = tiny_space(dir);
  const fleet::FleetParams base = tiny_params(dir + "/results");
  const std::string k = fleet::result_key(space, 0, base);

  EXPECT_NE(fleet::result_key(space, 1, base), k);
  fleet::FleetParams other = base;
  other.controller = "static-max";
  EXPECT_NE(fleet::result_key(space, 0, other), k);
  other = base;
  other.epochs = 3;
  EXPECT_NE(fleet::result_key(space, 0, other), k);
  other = base;
  other.qos_features = true;
  EXPECT_NE(fleet::result_key(space, 0, other), k);
  // Same inputs -> same key (stable across processes: pure content hash).
  EXPECT_EQ(fleet::result_key(space, 0, base), k);
}

std::string score_bytes(const fleet::ScenarioSpace& space,
                        const fleet::FleetParams& params) {
  const fleet::Scorecard card = fleet::score_fleet(
      fleet::load_results(space, params), space.size(), space.name, 2);
  std::ostringstream os;
  fleet::write_scorecard_json(os, card);
  return os.str();
}

TEST(FleetRun, ResumedScorecardByteIdenticalAtAnyJobs) {
  // TempDir persists across runs; stale result files would turn every run
  // into a resume and break the ran/skipped accounting below.
  const std::string dir = ::testing::TempDir() + "fleet_resume";
  std::filesystem::remove_all(dir);
  const fleet::ScenarioSpace space = tiny_space(dir);
  core::ExperimentRunner jobs1(1), jobs2(2), jobs8(8);

  // Reference: one uninterrupted run at jobs = 1.
  fleet::FleetParams ref = tiny_params(dir + "/ref");
  const fleet::FleetRunOutcome full = fleet::run_fleet(space, ref, jobs1);
  EXPECT_EQ(full.ran, space.size());
  EXPECT_EQ(full.skipped, 0u);
  const std::string want = score_bytes(space, ref);
  EXPECT_NE(want.find("\"missing\": 0"), std::string::npos);

  // Interrupted runs: complete the fleet, delete half the result files (the
  // "killed mid-run" state), resume at several jobs counts. Each resumed
  // scorecard must be byte-identical to the uninterrupted one.
  int trial = 0;
  for (core::ExperimentRunner* resume_runner : {&jobs1, &jobs2, &jobs8}) {
    fleet::FleetParams p =
        tiny_params(dir + "/resume" + std::to_string(trial++));
    fleet::run_fleet(space, p, jobs2);
    std::size_t deleted = 0;
    for (std::size_t index = 0; index < space.size(); index += 2) {
      const std::string path = fleet::result_path(
          p.results_dir, index, fleet::result_key(space, index, p));
      ASSERT_TRUE(std::filesystem::remove(path)) << path;
      ++deleted;
    }
    ASSERT_EQ(deleted, space.size() / 2);

    const fleet::FleetRunOutcome resumed =
        fleet::run_fleet(space, p, *resume_runner);
    EXPECT_EQ(resumed.ran, deleted);
    EXPECT_EQ(resumed.skipped, space.size() - deleted);
    EXPECT_EQ(score_bytes(space, p), want)
        << "resumed scorecard diverged (trial " << trial << ")";
  }
}

TEST(FleetRun, ShardsPartitionTheSpace) {
  const std::string dir = ::testing::TempDir() + "fleet_shards";
  std::filesystem::remove_all(dir);  // rerun-safe: drop stale result files
  const fleet::ScenarioSpace space = tiny_space(dir);
  core::ExperimentRunner jobs1(1);

  fleet::FleetParams ref = tiny_params(dir + "/ref");
  fleet::run_fleet(space, ref, jobs1);
  const std::string want = score_bytes(space, ref);

  // Two shards into one shared results dir cover the space exactly once.
  fleet::FleetParams sharded = tiny_params(dir + "/sharded");
  sharded.shards = 2;
  sharded.shard = 0;
  const fleet::FleetRunOutcome s0 = fleet::run_fleet(space, sharded, jobs1);
  sharded.shard = 1;
  const fleet::FleetRunOutcome s1 = fleet::run_fleet(space, sharded, jobs1);
  EXPECT_EQ(s0.owned + s1.owned, space.size());
  EXPECT_EQ(s0.ran + s1.ran, space.size());
  EXPECT_EQ(score_bytes(space, sharded), want);

  // Scoring a half-finished fleet reports the gap instead of hiding it.
  fleet::FleetParams partial = tiny_params(dir + "/partial");
  partial.shards = 2;
  partial.shard = 0;
  fleet::run_fleet(space, partial, jobs1);
  const fleet::Scorecard card = fleet::score_fleet(
      fleet::load_results(space, partial), space.size(), space.name, 2);
  EXPECT_EQ(card.missing, space.size() - s0.owned);
}

TEST(FleetScorecard, QuantileAndWorstRanking) {
  EXPECT_EQ(fleet::quantile({}, 0.95), 0.0);
  EXPECT_EQ(fleet::quantile({5.0}, 0.95), 5.0);
  EXPECT_EQ(fleet::quantile({1.0, 3.0}, 0.5), 2.0);
  EXPECT_EQ(fleet::quantile({1.0, 2.0, 3.0, 4.0}, 1.0), 4.0);

  // Worst ranking: lowest min SLO hit rate first, ties by highest p95.
  std::vector<fleet::FleetScenarioResult> results(3);
  for (std::size_t i = 0; i < results.size(); ++i) {
    results[i].index = i;
    results[i].label = "r" + std::to_string(i);
    fleet::FleetTenantOutcome t;
    t.qos = "latency_critical";
    t.slo_hit_rate = (i == 1) ? 0.5 : 0.9;
    t.p95_latency = (i == 2) ? 900.0 : 100.0;
    results[i].tenants.push_back(t);
  }
  const fleet::Scorecard card = fleet::score_fleet(results, 3, "t", 2);
  ASSERT_EQ(card.worst.size(), 2u);
  EXPECT_EQ(card.worst[0].index, 1u);
  EXPECT_EQ(card.worst[0].min_slo_hit_rate, 0.5);
  EXPECT_EQ(card.worst[1].index, 2u);
  ASSERT_EQ(card.classes.count("latency_critical"), 1u);
  EXPECT_EQ(card.classes.at("latency_critical").worst_slo_hit_rate, 0.5);
}

// ---------------------------------------------------- policy versioning ---

/// A small DqnAgent checkpoint dimensioned for `space` under the aggregate
/// feature set `tiny_params` runs with (the only mode a fixed policy can
/// span a fleet in).
std::string tiny_policy_blob(const fleet::ScenarioSpace& space) {
  core::NocEnvParams ep;
  ep.scenario =
      std::make_shared<scenario::Scenario>(space.expand(0).scenario);
  ep.net.seed = ep.scenario->net.seed;
  ep.scenario_qos = false;
  ep.epoch_cycles = 128;
  ep.epochs_per_episode = 2;
  core::NocConfigEnv probe(ep);

  rl::DqnParams dp;
  dp.hidden = {8};
  dp.min_replay = 4;
  dp.batch_size = 2;
  rl::DqnAgent agent(probe.state_size(), probe.num_actions(), dp);
  std::ostringstream os;
  agent.save(os);
  return os.str();
}

TEST(FleetPolicy, ResultFilesRecordTheServedVersion) {
  const std::string dir = ::testing::TempDir() + "fleet_policy_ver";
  const fleet::ScenarioSpace space = tiny_space(dir);
  fleet::FleetParams params = tiny_params(dir + "/res");
  params.controller = "drl";
  params.policy_file = "tiny.drlpol";
  params.policy_blob = tiny_policy_blob(space);
  const std::string version = rl::policy_fingerprint(params.policy_blob);
  params.policy_pin = version;  // correct pin: the run must go through

  fleet::run_fleet(space, params, core::ExperimentRunner(1));
  const std::vector<fleet::FleetScenarioResult> results =
      fleet::load_results(space, params);
  ASSERT_EQ(results.size(), space.size());
  for (const fleet::FleetScenarioResult& r : results) {
    EXPECT_EQ(r.policy_version, version) << r.label;
  }

  // The key round-trips through the file verbatim.
  const std::string path = fleet::result_path(
      params.results_dir, 0, fleet::result_key(space, 0, params));
  const auto reread = fleet::read_result_file(path);
  ASSERT_TRUE(reread.has_value());
  EXPECT_EQ(reread->policy_version, version);

  // Policy-free results omit the key entirely, keeping their files
  // byte-compatible with the pre-versioning format.
  fleet::FleetParams heur = tiny_params(dir + "/res_heur");
  fleet::run_fleet(space, heur, core::ExperimentRunner(1));
  const std::string heur_path = fleet::result_path(
      heur.results_dir, 0, fleet::result_key(space, 0, heur));
  std::ifstream in(heur_path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.find("policy_version"), std::string::npos);
  const auto heur_result = fleet::read_result_file(heur_path);
  ASSERT_TRUE(heur_result.has_value());
  EXPECT_TRUE(heur_result->policy_version.empty());
}

TEST(FleetPolicy, PinRejectionMessages) {
  const std::string dir = ::testing::TempDir() + "fleet_policy_pin";
  const fleet::ScenarioSpace space = tiny_space(dir);

  // A stale pin is refused before any scenario runs.
  fleet::FleetParams params = tiny_params(dir + "/res");
  params.controller = "drl";
  params.policy_blob = tiny_policy_blob(space);
  params.policy_pin = "0000000000000000";
  const std::string msg = rejection(
      [&] { fleet::run_fleet(space, params, core::ExperimentRunner(1)); });
  EXPECT_NE(msg.find("does not match the pinned version"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("0000000000000000"), std::string::npos) << msg;

  // Pinning a policy-free controller is a config contradiction, not a no-op.
  fleet::FleetParams heur = tiny_params(dir + "/res2");
  heur.policy_pin = "0000000000000000";
  EXPECT_NE(
      rejection([&] {
        fleet::run_fleet(space, heur, core::ExperimentRunner(1));
      }).find("policy_pin is only meaningful with controller=drl"),
      std::string::npos);
}

}  // namespace
}  // namespace drlnoc
