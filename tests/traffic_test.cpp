#include <gtest/gtest.h>

#include <map>

#include "noc/traffic.h"
#include "noc/topology.h"
#include "util/stats.h"

namespace drlnoc::noc {
namespace {

TEST(UniformTraffic, NeverSelfAndCoversAll) {
  UniformTraffic u(16);
  util::Rng rng(1);
  std::map<NodeId, int> counts;
  for (int i = 0; i < 32000; ++i) {
    const NodeId d = u.dest(3, rng);
    ASSERT_NE(d, 3);
    ASSERT_GE(d, 0);
    ASSERT_LT(d, 16);
    ++counts[d];
  }
  EXPECT_EQ(counts.size(), 15u);
  for (const auto& [node, c] : counts) EXPECT_NEAR(c, 32000 / 15, 300);
}

TEST(TransposeTraffic, MapsCoordinates) {
  TransposeTraffic t(4, 4);
  util::Rng rng(1);
  // (1,2)=9 -> (2,1)=6.
  EXPECT_EQ(t.dest(9, rng), 6);
  // Diagonal maps to itself -> no packet.
  EXPECT_EQ(t.dest(0, rng), kInvalidNode);
  EXPECT_EQ(t.dest(5, rng), kInvalidNode);
  EXPECT_THROW(TransposeTraffic(4, 3), std::invalid_argument);
}

TEST(BitCompTraffic, Complements) {
  BitComplementTraffic b(16);
  util::Rng rng(1);
  EXPECT_EQ(b.dest(0, rng), 15);
  EXPECT_EQ(b.dest(5, rng), 10);
  EXPECT_THROW(BitComplementTraffic(12), std::invalid_argument);
}

TEST(BitRevTraffic, ReversesBits) {
  BitReverseTraffic b(8);
  util::Rng rng(1);
  EXPECT_EQ(b.dest(1, rng), 4);   // 001 -> 100
  EXPECT_EQ(b.dest(3, rng), 6);   // 011 -> 110
  EXPECT_EQ(b.dest(2, rng), kInvalidNode);  // 010 -> 010 self
}

TEST(ShuffleTraffic, RotatesLeft) {
  ShuffleTraffic s(8);
  util::Rng rng(1);
  EXPECT_EQ(s.dest(1, rng), 2);   // 001 -> 010
  EXPECT_EQ(s.dest(4, rng), 1);   // 100 -> 001
  EXPECT_EQ(s.dest(0, rng), kInvalidNode);
  EXPECT_EQ(s.dest(7, rng), kInvalidNode);
}

TEST(TornadoTraffic, HalfwayAround) {
  TornadoTraffic t(8, 8);
  util::Rng rng(1);
  // (0,0) -> (3,3) for 8x8: offset ceil(8/2)-1 = 3.
  EXPECT_EQ(t.dest(0, rng), 3 * 8 + 3);
}

TEST(NeighborTraffic, NextInRow) {
  NeighborTraffic n(4, 4);
  util::Rng rng(1);
  EXPECT_EQ(n.dest(0, rng), 1);
  EXPECT_EQ(n.dest(3, rng), 0);   // wraps within the row
  EXPECT_EQ(n.dest(5, rng), 6);
}

TEST(HotspotTraffic, ConcentratesOnHotspots) {
  HotspotTraffic h(64, {10, 20}, 0.5);
  util::Rng rng(2);
  int hot = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const NodeId d = h.dest(0, rng);
    ASSERT_NE(d, 0);
    if (d == 10 || d == 20) ++hot;
  }
  // 50% targeted + ~2/63 of the uniform half.
  EXPECT_NEAR(static_cast<double>(hot) / trials, 0.5 + 0.5 * 2.0 / 63.0, 0.02);
}

TEST(HotspotTraffic, Validation) {
  EXPECT_THROW(HotspotTraffic(16, {}, 0.5), std::invalid_argument);
  EXPECT_THROW(HotspotTraffic(16, {99}, 0.5), std::invalid_argument);
}

TEST(PatternFactory, AllKinds) {
  Mesh2D mesh(4, 4);
  for (const char* kind : {"uniform", "transpose", "bitcomp", "bitrev",
                           "shuffle", "tornado", "neighbor", "hotspot"}) {
    EXPECT_NO_THROW(make_pattern(kind, mesh)) << kind;
  }
  EXPECT_THROW(make_pattern("nope", mesh), std::invalid_argument);
}

TEST(BernoulliInjection, MatchesRate) {
  BernoulliInjection inj(1);
  util::Rng rng(3);
  int fires = 0;
  for (int i = 0; i < 100000; ++i) fires += inj.fire(0, 0.1, rng);
  EXPECT_NEAR(fires / 100000.0, 0.1, 0.005);
}

TEST(BurstInjection, LongRunMeanMatchesRate) {
  BurstInjection inj(1, 0.02, 0.08);
  util::Rng rng(5);
  int fires = 0;
  const int trials = 400000;
  for (int i = 0; i < trials; ++i) fires += inj.fire(0, 0.05, rng);
  EXPECT_NEAR(fires / static_cast<double>(trials), 0.05, 0.01);
}

TEST(BurstInjection, IsActuallyBursty) {
  // Variance of per-window counts must exceed Bernoulli's.
  const double rate = 0.05;
  util::Rng rng(7);
  BurstInjection burst(1, 0.02, 0.08);
  BernoulliInjection bern(1);
  auto window_variance = [&](InjectionProcess& p) {
    util::Accumulator acc;
    for (int w = 0; w < 400; ++w) {
      int count = 0;
      for (int i = 0; i < 200; ++i) count += p.fire(0, rate, rng);
      acc.add(count);
    }
    return acc.variance();
  };
  EXPECT_GT(window_variance(burst), 2.0 * window_variance(bern));
}

TEST(InjectionFactory, Kinds) {
  EXPECT_NO_THROW(make_injection("bernoulli", 4));
  EXPECT_NO_THROW(make_injection("burst", 4));
  EXPECT_THROW(make_injection("pareto", 4), std::invalid_argument);
}

}  // namespace
}  // namespace drlnoc::noc
