// Parallel training & versioned policy serving: actor-count invariance of
// train_dqn_parallel, drlpol checkpoint round-trips and rejection messages,
// batched greedy inference, and the DqnParams / Mlp::load hardening.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/env_noc.h"
#include "core/parallel.h"
#include "core/trainer.h"
#include "nn/layers.h"
#include "rl/dqn.h"
#include "rl/policy_io.h"
#include "scenario/scenario.h"
#include "util/rng.h"

namespace drlnoc::core {
namespace {

NocEnvParams small_env() {
  NocEnvParams ep;
  ep.net.width = ep.net.height = 4;
  ep.net.seed = 3;
  ep.epoch_cycles = 256;
  ep.epochs_per_episode = 6;
  ep.reward.power_ref_mw = 300.0;  // skip auto-calibration for speed
  return ep;
}

rl::DqnParams small_agent_params() {
  rl::DqnParams dp;
  dp.hidden = {16};
  dp.min_replay = 16;
  dp.batch_size = 8;
  dp.seed = 5;
  return dp;
}

/// One full parallel training run at the given actor count; returns the
/// trained agent's checkpoint bytes alongside the learning curve so tests
/// can compare both.
struct ParallelRun {
  TrainResult result;
  std::string checkpoint;
};

ParallelRun run_parallel(int actors, int episodes = 6, int round = 4) {
  const NocEnvParams ep = small_env();
  rl::DqnAgent agent(NocConfigEnv(ep).state_size(), 36, small_agent_params());
  ParallelTrainParams tp;
  tp.episodes = episodes;
  tp.round = round;
  tp.actors = actors;
  tp.eval_every = 3;
  ParallelRun out;
  out.result = train_dqn_parallel(ep, agent, tp);
  std::ostringstream os;
  agent.save(os);
  out.checkpoint = os.str();
  return out;
}

TEST(ParallelTraining, BitIdenticalAtAnyActorCount) {
  // The acceptance pin: 1, 2, and 8 actors produce the same learning curve
  // AND the same trained weights, byte for byte. `actors` is thread fan-out
  // only; the logical decomposition is fixed by `round`.
  const ParallelRun a1 = run_parallel(1);
  const ParallelRun a2 = run_parallel(2);
  const ParallelRun a8 = run_parallel(8);

  EXPECT_EQ(a1.result.episode_returns, a2.result.episode_returns);
  EXPECT_EQ(a1.result.episode_returns, a8.result.episode_returns);
  EXPECT_EQ(a1.result.episode_loss, a2.result.episode_loss);
  EXPECT_EQ(a1.result.episode_loss, a8.result.episode_loss);
  EXPECT_EQ(a1.result.eval_rewards, a2.result.eval_rewards);
  EXPECT_EQ(a1.result.eval_rewards, a8.result.eval_rewards);
  EXPECT_EQ(a1.result.eval_episodes, a8.result.eval_episodes);
  EXPECT_EQ(a1.checkpoint, a2.checkpoint);
  EXPECT_EQ(a1.checkpoint, a8.checkpoint);
  // And the run actually trained something.
  EXPECT_EQ(a1.result.episode_returns.size(), 6u);
  EXPECT_EQ(a1.result.eval_episodes.size(), 2u);
}

TEST(ParallelTraining, RoundSizeIsSemantic) {
  // Changing `round` legitimately changes the learning curve (merge order
  // and policy staleness differ) — the invariance contract is over actors,
  // not rounds. This guards against accidentally making round a no-op.
  const ParallelRun r4 = run_parallel(2, 6, 4);
  const ParallelRun r2 = run_parallel(2, 6, 2);
  EXPECT_NE(r4.checkpoint, r2.checkpoint);
}

TEST(ParallelTraining, LaneSeedsMatchTheSerialEpisodeStream) {
  // seek_episode contract: lane l of round r must reset into the same
  // traffic stream as serial episode r*round+l. Drive two envs — one
  // stepped serially to episode 3, one seeked directly — with a fixed
  // action and compare rewards.
  const NocEnvParams ep = small_env();
  NocConfigEnv serial(ep);
  for (int i = 0; i < 3; ++i) serial.reset();  // episodes 1..3
  NocConfigEnv seeked(ep);
  seeked.seek_episode(3);  // next reset() pre-increments to 4
  rl::State s1 = serial.reset();
  rl::State s2 = seeked.reset();
  EXPECT_EQ(s1, s2);
  for (int i = 0; i < 3; ++i) {
    const rl::StepResult r1 = serial.step(7);
    const rl::StepResult r2 = seeked.step(7);
    EXPECT_EQ(r1.reward, r2.reward);
    EXPECT_EQ(r1.next_state, r2.next_state);
  }
}

TEST(ParallelTraining, RejectsBadRoundAndEpisodes) {
  const NocEnvParams ep = small_env();
  rl::DqnAgent agent(NocConfigEnv(ep).state_size(), 36, small_agent_params());
  ParallelTrainParams tp;
  tp.round = 0;
  EXPECT_THROW(train_dqn_parallel(ep, agent, tp), std::invalid_argument);
  tp.round = 4;
  tp.episodes = -1;
  EXPECT_THROW(train_dqn_parallel(ep, agent, tp), std::invalid_argument);
  tp.episodes = 0;
  const TrainResult r = train_dqn_parallel(ep, agent, tp);
  EXPECT_TRUE(r.episode_returns.empty());
}

TEST(BatchedInference, MatchesPerStateGreedyActions) {
  rl::DqnParams dp;
  dp.hidden = {24, 24};
  dp.dueling = true;
  dp.seed = 17;
  rl::DqnAgent agent(8, 5, dp);
  util::Rng rng(123);
  nn::Matrix states(16, 8);
  std::vector<rl::State> rows(16, rl::State(8));
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      rows[r][c] = rng.uniform();
      states.at(r, c) = rows[r][c];
    }
  }
  std::vector<int> batched;
  agent.act_greedy_batch(states, batched);
  ASSERT_EQ(batched.size(), 16u);
  for (std::size_t r = 0; r < 16; ++r) {
    EXPECT_EQ(batched[r], agent.act_greedy(rows[r])) << "row " << r;
  }
}

// ---------------------------------------------------------------------------
// drlpol checkpoints

TEST(PolicyCheckpoint, SaveLoadEvaluateRoundTrip) {
  // A checkpoint must reproduce the saver's greedy policy exactly: evaluate
  // the saver and a fresh agent loaded from its bytes on the same env.
  const NocEnvParams ep = small_env();
  NocConfigEnv env(ep);
  rl::DqnAgent trained(env.state_size(), env.num_actions(),
                       small_agent_params());
  TrainParams tp;
  tp.episodes = 2;
  tp.eval_every = 0;
  train_dqn(env, trained, tp);

  DrlController c1(env.actions(), trained);
  const EpisodeResult before = evaluate(env, c1);

  std::ostringstream os;
  rl::PolicyMeta meta;
  meta.git = "test-build";
  trained.save(os, meta);

  rl::DqnAgent loaded(env.state_size(), env.num_actions(),
                      small_agent_params());
  std::istringstream is(os.str());
  loaded.load_weights(is);
  DrlController c2(env.actions(), loaded);
  const EpisodeResult after = evaluate(env, c2);

  EXPECT_EQ(before.total_reward, after.total_reward);
  EXPECT_EQ(before.mean_latency, after.mean_latency);
  EXPECT_EQ(before.mean_power_mw, after.mean_power_mw);
  EXPECT_EQ(before.mean_edp, after.mean_edp);
  EXPECT_EQ(before.actions, after.actions);
}

TEST(PolicyCheckpoint, HeaderRecordsArchitectureAndProvenance) {
  rl::DqnParams dp;
  dp.hidden = {32, 16};
  dp.dueling = true;
  rl::DqnAgent agent(10, 6, dp);
  std::ostringstream os;
  rl::PolicyMeta meta;
  meta.scenario_hash = "00deadbeef001234";
  meta.git = "v1.2-3-gabc";
  agent.save(os, meta);

  const rl::PolicyCheckpoint ckpt = rl::read_policy_blob(os.str());
  ASSERT_TRUE(ckpt.header.has_value());
  EXPECT_EQ(ckpt.header->obs, 10u);
  EXPECT_EQ(ckpt.header->actions, 6u);
  EXPECT_EQ(ckpt.header->hidden, (std::vector<std::size_t>{32, 16}));
  EXPECT_EQ(ckpt.header->activation, "relu");
  EXPECT_EQ(ckpt.header->head, "dueling");
  EXPECT_EQ(ckpt.header->scenario_hash, "00deadbeef001234");
  EXPECT_EQ(ckpt.header->git, "v1.2-3-gabc");
}

TEST(PolicyCheckpoint, LegacyBareBlobStillLoads) {
  rl::DqnParams dp;
  dp.hidden = {16};
  rl::DqnAgent agent(6, 4, dp);
  // A pre-versioning artifact: the raw Mlp blob with no drlpol header.
  std::ostringstream os;
  std::istringstream header_probe;
  {
    std::ostringstream full;
    agent.save(full);
    const std::string blob = full.str();
    const auto mlp_at = blob.find("mlp ");
    ASSERT_NE(mlp_at, std::string::npos);
    os << blob.substr(mlp_at);
  }
  const rl::PolicyCheckpoint ckpt = rl::read_policy_blob(os.str());
  EXPECT_FALSE(ckpt.header.has_value());
  EXPECT_EQ(ckpt.net.input_size(), 6u);
  EXPECT_EQ(ckpt.net.output_size(), 4u);
  rl::DqnAgent fresh(6, 4, dp);
  std::istringstream is(os.str());
  fresh.load_weights(is);  // no throw
}

TEST(PolicyCheckpoint, DimensionMismatchNamesBothSides) {
  rl::DqnParams dp;
  dp.hidden = {16};
  rl::DqnAgent agent(6, 4, dp);
  std::ostringstream os;
  agent.save(os);
  rl::DqnAgent other(9, 4, dp);  // wrong obs size
  std::istringstream is(os.str());
  try {
    other.load_weights(is);
    FAIL() << "expected dimension rejection";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("6"), std::string::npos) << msg;
    EXPECT_NE(msg.find("9"), std::string::npos) << msg;
  }
}

TEST(PolicyCheckpoint, CorruptHeadersAreNamedErrors) {
  rl::DqnParams dp;
  dp.hidden = {16};
  rl::DqnAgent agent(6, 4, dp);
  std::ostringstream os;
  agent.save(os);
  const std::string good = os.str();

  const auto expect_error = [](const std::string& blob,
                               const std::string& needle) {
    try {
      rl::read_policy_blob(blob);
      FAIL() << "expected rejection mentioning '" << needle << "'";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  // Unsupported version.
  std::string bad = good;
  bad.replace(bad.find("drlpol 1"), 8, "drlpol 9");
  expect_error(bad, "unsupported version 9");
  // Unknown activation token.
  bad = good;
  bad.replace(bad.find("activation relu"), 15, "activation gelu");
  expect_error(bad, "unknown activation 'gelu'");
  // Header/blob disagreement (header says 8 obs, blob holds 6).
  bad = good;
  bad.replace(bad.find("obs 6"), 5, "obs 8");
  expect_error(bad, "does not match embedded network input");
  // Malformed scenario hash.
  bad = good;
  bad.replace(bad.find("scenario -"), 10, "scenario xyz");
  expect_error(bad, "malformed scenario hash 'xyz'");
  // Truncated weight payload.
  bad = good.substr(0, good.size() / 2);
  expect_error(bad, "parameter");
}

TEST(PolicyCheckpoint, FingerprintIsStableAndSensitive) {
  const std::string a = "drlpol 1\n...";
  EXPECT_EQ(rl::policy_fingerprint(a), rl::policy_fingerprint(a));
  EXPECT_EQ(rl::policy_fingerprint(a).size(), 16u);
  EXPECT_NE(rl::policy_fingerprint(a), rl::policy_fingerprint(a + " "));
}

TEST(ScenarioContentHash, StableAndFieldSensitive) {
  scenario::Scenario s;
  s.name = "hash-probe";
  s.net.width = s.net.height = 4;
  scenario::TenantSpec t;
  t.name = "fg";
  t.rate = 0.05;
  t.stop = 5000.0;
  s.tenants.push_back(t);
  s.duration = 5000.0;

  const std::uint64_t h1 = scenario::content_hash(s);
  EXPECT_EQ(h1, scenario::content_hash(s));
  EXPECT_EQ(scenario::content_hash_hex(s).size(), 16u);

  scenario::Scenario s2 = s;
  s2.tenants[0].rate = 0.06;
  EXPECT_NE(scenario::content_hash(s2), h1);
  // The controller block is excluded (the policy lives there — circular).
  scenario::Scenario s3 = s;
  s3.controller.type = "static-max";
  EXPECT_EQ(scenario::content_hash(s3), h1);
}

// ---------------------------------------------------------------------------
// Bugfix regressions

TEST(DqnParamsValidation, SyncDisabledWithPolyakIsLegal) {
  // Regression: target_sync_every = 0 used to crash learn() with a modulo
  // by zero whenever tau was 0; with tau > 0 it is a legal configuration
  // (Polyak-only updates) and must run PAST the old crash point.
  rl::DqnParams dp;
  dp.hidden = {8};
  dp.min_replay = 4;
  dp.batch_size = 4;
  dp.target_sync_every = 0;
  dp.tau = 0.01;
  rl::DqnAgent agent(4, 3, dp);
  util::Rng rng(1);
  rl::Transition t;
  t.state.assign(4, 0.0);
  t.next_state.assign(4, 0.0);
  bool learned = false;
  for (int i = 0; i < 32; ++i) {
    for (double& v : t.state) v = rng.uniform();
    for (double& v : t.next_state) v = rng.uniform();
    t.action = static_cast<int>(rng.below(3));
    t.reward = -rng.uniform();
    t.done = (i % 8) == 7;
    if (agent.observe(t)) learned = true;
  }
  EXPECT_TRUE(learned);
  EXPECT_GT(agent.learn_steps(), 0u);
}

TEST(DqnParamsValidation, RejectsSyncDisabledWithoutPolyak) {
  rl::DqnParams dp;
  dp.target_sync_every = 0;
  dp.tau = 0.0;
  try {
    rl::DqnAgent agent(4, 3, dp);
    FAIL() << "expected rejection of target_sync_every=0 with tau=0";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("target_sync_every"),
              std::string::npos)
        << e.what();
  }
}

TEST(DqnParamsValidation, RejectsOutOfRangeFields) {
  const auto rejects = [](auto mutate) {
    rl::DqnParams dp;
    mutate(dp);
    EXPECT_THROW(rl::DqnAgent(4, 3, dp), std::invalid_argument);
  };
  rejects([](rl::DqnParams& p) { p.gamma = 0.0; });
  rejects([](rl::DqnParams& p) { p.gamma = 1.5; });
  rejects([](rl::DqnParams& p) { p.lr = -1e-3; });
  rejects([](rl::DqnParams& p) { p.batch_size = 0; });
  rejects([](rl::DqnParams& p) { p.replay_capacity = 8; p.batch_size = 16; });
  rejects([](rl::DqnParams& p) { p.n_step = 0; });
  rejects([](rl::DqnParams& p) { p.tau = -0.1; });
  rejects([](rl::DqnParams& p) { p.tau = 1.5; });
  rejects([](rl::DqnParams& p) { p.epsilon_start = 2.0; });
}

TEST(MlpLoadHardening, RejectsUnknownTokensAndImplausibleSizes) {
  util::Rng rng(1);
  nn::Mlp net({4, 8, 3}, nn::Activation::kReLU, rng, false);
  std::ostringstream os;
  net.save(os);
  const std::string good = os.str();

  const auto expect_error = [](const std::string& blob,
                               const std::string& needle) {
    std::istringstream is(blob);
    try {
      nn::Mlp::load(is);
      FAIL() << "expected rejection mentioning '" << needle << "'";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  // Unknown activation must NOT silently become ReLU.
  std::string bad = good;
  bad.replace(bad.find("relu"), 4, "gelu");
  expect_error(bad, "unknown activation 'gelu'");
  // Unknown head must NOT silently become plain.
  bad = good;
  bad.replace(bad.find("plain"), 5, "derp!");
  expect_error(bad, "unknown head 'derp!'");
  // An absurd layer count must be rejected BEFORE any allocation.
  expect_error("mlp 1000000000 ", "implausible layer count 1000000000");
  expect_error("mlp 1 4 relu plain", "implausible layer count 1");
  // An absurd width likewise.
  expect_error("mlp 3 4 99999999 3 relu plain", "implausible layer size");
  // Truncation names the parameter index.
  bad = good.substr(0, good.size() - good.size() / 3);
  expect_error(bad, "parameter");
  // Bad magic names the token.
  expect_error("pkl blob", "bad magic 'pkl'");
}

}  // namespace
}  // namespace drlnoc::core
