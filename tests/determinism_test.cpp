// Golden determinism tests: fixed-seed runs must reproduce exact bit
// patterns across refactors (README "Determinism contract"). The golden
// hashes below were captured from the pre-PR2 (allocation-heavy) build; the
// allocation-free hot paths must not move a single bit.
//
// Everything hashed here avoids libm transcendentals (only +,-,*,/ and the
// exactly-rounded sqrt reach the hashed values), so the goldens are stable
// across compilers, optimisation levels, and libc versions on IEEE-754
// platforms.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "noc/network.h"
#include "noc/workload.h"
#include "rl/dqn.h"
#include "util/rng.h"

namespace drlnoc {
namespace {

/// FNV-1a over 64-bit words; doubles are hashed by bit pattern.
class Fnv {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(int v) { mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

void mix_stats(Fnv& h, const noc::EpochStats& s) {
  h.mix(s.packets_offered);
  h.mix(s.packets_received);
  h.mix(s.flits_injected);
  h.mix(s.flits_ejected);
  h.mix(s.avg_latency);
  h.mix(s.p95_latency);
  h.mix(s.max_latency);
  h.mix(s.avg_hops);
  h.mix(s.avg_buffer_occupancy);
  h.mix(s.source_queue_total);
}

void mix_records(Fnv& h, const std::vector<noc::PacketRecord>& records) {
  h.mix(static_cast<std::uint64_t>(records.size()));
  for (const noc::PacketRecord& r : records) {
    h.mix(r.packet_id);
    h.mix(r.src);
    h.mix(r.dst);
    h.mix(static_cast<std::uint64_t>(r.length));
    h.mix(r.inject_time);
    h.mix(r.eject_time);
    h.mix(static_cast<std::uint64_t>(r.hops));
    h.mix(static_cast<std::uint64_t>(r.measured ? 1 : 0));
  }
}

/// Microarchitectural state: every input VC occupancy and advertised
/// capacity, every output VC credit count.
void mix_router_state(Fnv& h, noc::Network& net) {
  const int radix = net.topology().radix();
  const int vcs = net.params().max_vcs;
  for (int node = 0; node < net.num_nodes(); ++node) {
    noc::Router& r = net.router(node);
    h.mix(r.buffered_flits());
    for (int p = 0; p < radix; ++p) {
      for (int v = 0; v < vcs; ++v) {
        h.mix(r.input_occupancy(p, v));
        h.mix(r.advertised_capacity(p, v));
        h.mix(r.output_credits(p, v));
      }
    }
  }
}

TEST(GoldenDeterminism, Mesh8x8UniformWithReconfig) {
  noc::NetworkParams p;
  p.width = p.height = 8;
  p.seed = 42;
  noc::Network net(p);
  noc::SteadyWorkload w =
      noc::SteadyWorkload::make(net.topology(), "uniform", 0.10);

  Fnv h;
  mix_stats(h, net.run_epoch(&w, 1500));
  // Mid-run reconfiguration: fewer VCs, shallower buffers, slower clock —
  // exercises credit withholding and VC gating on live traffic.
  net.apply_config(noc::NocConfig{2, 4, 2});
  mix_stats(h, net.run_epoch(&w, 1500));
  mix_records(h, net.drain_records());
  mix_router_state(h, net);

  EXPECT_EQ(h.value(), 11893662481098957864ULL);
}

TEST(GoldenDeterminism, Mesh6x6OddEvenTranspose) {
  noc::NetworkParams p;
  p.width = p.height = 6;
  p.routing = "oddeven";  // adaptive: multiple candidates per route
  p.seed = 7;
  noc::Network net(p);
  noc::SteadyWorkload w =
      noc::SteadyWorkload::make(net.topology(), "transpose", 0.12);

  Fnv h;
  mix_stats(h, net.run_epoch(&w, 2000));
  mix_records(h, net.drain_records());
  mix_router_state(h, net);

  EXPECT_EQ(h.value(), 634678814998183288ULL);
}

TEST(GoldenDeterminism, Mesh16x16UniformLowLoadWithReconfig) {
  // Low load on the large mesh: most routers are idle most cycles, which is
  // exactly the regime the event-driven network core skips — the hash pins
  // that skipping provably idle work never changes simulated behavior.
  noc::NetworkParams p;
  p.width = p.height = 16;
  p.seed = 21;
  noc::Network net(p);
  noc::SteadyWorkload w =
      noc::SteadyWorkload::make(net.topology(), "uniform", 0.02);

  Fnv h;
  mix_stats(h, net.run_epoch(&w, 1200));
  net.apply_config(noc::NocConfig{2, 4, 2});
  mix_stats(h, net.run_epoch(&w, 1200));
  mix_records(h, net.drain_records());
  mix_router_state(h, net);

  EXPECT_EQ(h.value(), 10559580170762473702ULL);
}

TEST(GoldenDeterminism, Torus4x4DatelineClasses) {
  noc::NetworkParams p;
  p.topology = "torus";
  p.width = p.height = 4;
  p.seed = 13;
  noc::Network net(p);
  noc::SteadyWorkload w =
      noc::SteadyWorkload::make(net.topology(), "uniform", 0.15);

  Fnv h;
  mix_stats(h, net.run_epoch(&w, 2000));
  mix_records(h, net.drain_records());
  mix_router_state(h, net);

  EXPECT_EQ(h.value(), 375709662462404824ULL);
}

TEST(GoldenDeterminism, DqnLearningTrajectory) {
  rl::DqnParams dp;
  dp.hidden = {32, 32};
  dp.min_replay = 64;
  dp.batch_size = 16;
  dp.replay_capacity = 512;
  dp.n_step = 3;
  dp.dueling = true;
  dp.double_dqn = true;
  dp.seed = 11;
  rl::DqnAgent agent(10, 6, dp);

  util::Rng rng(99);
  rl::Transition t;
  t.state.assign(10, 0.0);
  t.next_state.assign(10, 0.0);
  Fnv h;
  double loss_sum = 0.0;
  for (int i = 0; i < 600; ++i) {
    for (double& v : t.state) v = rng.uniform();
    for (double& v : t.next_state) v = rng.uniform();
    t.action = static_cast<int>(rng.below(6));
    t.reward = -rng.uniform();
    t.done = (i % 50) == 49;
    if (const auto loss = agent.observe(t)) loss_sum += *loss;
  }
  h.mix(loss_sum);
  h.mix(agent.learn_steps());

  std::vector<double> probe(10);
  for (int k = 0; k < 3; ++k) {
    for (std::size_t i = 0; i < probe.size(); ++i) {
      probe[i] = 0.25 * (k + 1) + 0.01 * static_cast<double>(i);
    }
    for (double q : agent.q_values(probe)) h.mix(q);
    h.mix(agent.act_greedy(probe));
  }

  EXPECT_EQ(h.value(), 8150709562051516707ULL);
}

}  // namespace
}  // namespace drlnoc
