// Unit-level router tests on a 2x1 mesh driven through Network, exercising
// the credit protocol, VC allocation, ordering, and live reconfiguration.
#include <gtest/gtest.h>

#include "noc/network.h"
#include "noc/workload.h"

namespace drlnoc::noc {
namespace {

NetworkParams two_node(int depth = 4, int vcs = 2, Cycle link_latency = 1) {
  NetworkParams p;
  p.topology = "mesh";
  p.width = 2;
  p.height = 1;
  p.max_vcs = 4;
  p.max_depth = 8;
  p.initial_config = {vcs, depth, 3};
  p.flits_per_packet = 4;
  p.link_latency = link_latency;
  p.seed = 1;
  return p;
}

void drain(Network& net, int limit = 20000) {
  int guard = 0;
  while (!net.drained() && guard < limit) {
    net.step(nullptr);
    ++guard;
  }
  ASSERT_TRUE(net.drained());
}

TEST(Router, CreditConservationOnIdleLink) {
  Network net(two_node());
  // Router 0's east port (1) talks to router 1's west port (2).
  // At rest: credits held == advertised capacity, buffers empty.
  for (int vc = 0; vc < 4; ++vc) {
    EXPECT_EQ(net.router(0).output_credits(1, vc), 4);
    EXPECT_EQ(net.router(1).advertised_capacity(2, vc), 4);
    EXPECT_EQ(net.router(1).input_occupancy(2, vc), 0);
  }
}

TEST(Router, CreditsReturnAfterTraffic) {
  Network net(two_node());
  for (int i = 0; i < 20; ++i) {
    net.nic(0).offer_packet(1, 0.0, true, 100 + static_cast<std::uint64_t>(i));
  }
  drain(net);
  for (int vc = 0; vc < 4; ++vc) {
    EXPECT_EQ(net.router(0).output_credits(1, vc), 4) << "vc " << vc;
    EXPECT_EQ(net.router(1).input_occupancy(2, vc), 0);
  }
  EXPECT_EQ(net.total_packets_received(), 20u);
}

TEST(Router, BufferNeverExceedsConfiguredDepth) {
  // Depth 2 with a blocked receiver: at most 2 flits may sit in the input VC.
  Network net(two_node(/*depth=*/2));
  SteadyWorkload w = SteadyWorkload::make(net.topology(), "neighbor", 0.8);
  for (int i = 0; i < 500; ++i) {
    net.step(&w);
    for (int vc = 0; vc < 4; ++vc) {
      EXPECT_LE(net.router(1).input_occupancy(2, vc), 2);
      EXPECT_LE(net.router(0).input_occupancy(1, vc), 2);
    }
  }
}

TEST(Router, DepthOneStillDelivers) {
  Network net(two_node(/*depth=*/1, /*vcs=*/1));
  net.nic(0).offer_packet(1, 0.0, true, 1);
  drain(net);
  EXPECT_EQ(net.total_packets_received(), 1u);
}

TEST(Router, ShallowBuffersThrottleThroughputOnLongLinks) {
  // With link latency 4 the credit round trip is ~9 cycles; depth 1 caps a
  // single stream at ~1/9 flit/cycle while depth 8 covers the RTT.
  auto cycles_to_deliver = [](int depth) {
    NetworkParams p = two_node(depth, /*vcs=*/1, /*link_latency=*/4);
    Network net(p);
    for (int i = 0; i < 25; ++i) {
      net.nic(0).offer_packet(1, 0.0, true, static_cast<std::uint64_t>(i) + 1);
    }
    int guard = 0;
    while (!net.drained() && guard < 50000) {
      net.step(nullptr);
      ++guard;
    }
    EXPECT_EQ(net.total_packets_received(), 25u);
    return guard;
  };
  const int slow = cycles_to_deliver(1);
  const int fast = cycles_to_deliver(8);
  EXPECT_GT(slow, 3 * fast);
}

TEST(Router, PerVcPairOrderingPreserved) {
  // Deterministic routing: packets between one (src, dst) pair must eject in
  // injection order (heads cannot overtake across the same path when the
  // NIC reassembles per VC and records completion order).
  Network net(two_node());
  for (int i = 0; i < 50; ++i) {
    net.nic(0).offer_packet(1, static_cast<double>(i), true,
                            static_cast<std::uint64_t>(i) + 1);
  }
  drain(net);
  const auto records = net.drain_records();
  ASSERT_EQ(records.size(), 50u);
  // Completion times must be non-decreasing in inject order per packet id
  // stream... packets may ride different VCs; require: among packets on the
  // same VC path the eject order matches inject order. Weaker global check:
  // eject_time ordering respects inject_time ordering within each VC is not
  // observable here, so assert no packet finishes before an *earlier* packet
  // that shares its VC by checking tail flit ordering via packet ids per VC
  // is monotone. The NIC asserts in-order flit sequences internally; here we
  // check every packet arrived intact.
  for (const auto& r : records) {
    EXPECT_EQ(r.length, 4);
    EXPECT_EQ(r.src, 0);
    EXPECT_EQ(r.dst, 1);
  }
}

TEST(Router, VcGatingRestrictsNewAllocations) {
  // With 1 active VC, only VC 0 ever holds flits on the inter-router link.
  Network net(two_node(/*depth=*/4, /*vcs=*/1));
  SteadyWorkload w = SteadyWorkload::make(net.topology(), "neighbor", 0.5);
  for (int i = 0; i < 400; ++i) {
    net.step(&w);
    for (int vc = 1; vc < 4; ++vc) {
      EXPECT_EQ(net.router(1).input_occupancy(2, vc), 0) << "cycle " << i;
    }
  }
}

TEST(Router, DepthGrowthIsEagerAndExact) {
  Network net(two_node(/*depth=*/2));
  EXPECT_EQ(net.router(0).output_credits(1, 0), 2);
  net.apply_config(NocConfig{2, 7, 3});
  // Credits travel one link-latency cycle; step once without traffic.
  net.step(nullptr);
  net.step(nullptr);
  EXPECT_EQ(net.router(0).output_credits(1, 0), 7);
  EXPECT_EQ(net.router(1).advertised_capacity(2, 0), 7);
}

TEST(Router, DepthShrinkWithholdsCreditsLazily) {
  Network net(two_node(/*depth=*/8));
  net.apply_config(NocConfig{2, 2, 3});
  // No traffic has flowed: advertised stays 8 until dequeues happen.
  EXPECT_EQ(net.router(1).advertised_capacity(2, 0), 8);
  // Push traffic through VC 0; withholding shrinks the advertisement.
  for (int i = 0; i < 30; ++i) {
    net.nic(0).offer_packet(1, 0.0, true, static_cast<std::uint64_t>(i) + 1);
  }
  drain(net);
  for (int vc = 0; vc < 2; ++vc) {
    if (net.router(1).advertised_capacity(2, vc) == 8) continue;  // unused VC
    EXPECT_EQ(net.router(1).advertised_capacity(2, vc), 2);
    EXPECT_EQ(net.router(0).output_credits(1, vc), 2);
  }
  // At least one VC must have carried traffic and shrunk.
  EXPECT_LT(net.router(1).advertised_capacity(2, 0), 8);
}

TEST(Router, ActivityCountersTrackTraffic) {
  Network net(two_node());
  for (int i = 0; i < 10; ++i) {
    net.nic(0).offer_packet(1, 0.0, true, static_cast<std::uint64_t>(i) + 1);
  }
  drain(net);
  const RouterActivity& a0 = net.router(0).activity();
  // Router 0 forwarded 40 flits: 40 writes (from NIC), 40 reads, 40 xbar.
  EXPECT_EQ(a0.buffer_writes, 40u);
  EXPECT_EQ(a0.buffer_reads, 40u);
  EXPECT_EQ(a0.xbar_traversals, 40u);
  EXPECT_EQ(a0.vc_allocs, 10u);  // one per packet
  net.router(0).reset_activity();
  EXPECT_EQ(net.router(0).activity().buffer_writes, 0u);
}

TEST(Router, AdaptiveRoutingAvoidsCongestedPort) {
  // On a 3x3 mesh with west-first routing, a packet from (0,0) to (2,2) has
  // east and north candidates; jam the east link and check the router still
  // delivers everything (it can escape via north).
  NetworkParams p;
  p.topology = "mesh";
  p.width = 3;
  p.height = 3;
  p.routing = "westfirst";
  p.seed = 5;
  Network net(p);
  // Heavy east-row cross traffic + diagonal measured packets.
  for (int i = 0; i < 30; ++i) {
    net.nic(0).offer_packet(8, 0.0, true, 1000 + static_cast<std::uint64_t>(i));
    net.nic(1).offer_packet(2, 0.0, false, 2000 + static_cast<std::uint64_t>(i));
  }
  int guard = 0;
  while (!net.drained() && guard < 20000) {
    net.step(nullptr);
    ++guard;
  }
  ASSERT_TRUE(net.drained());
  EXPECT_EQ(net.total_packets_received(), 60u);
}

}  // namespace
}  // namespace drlnoc::noc
