// QoS battery: tenant-aware reward shaping (validation, per-tenant terms
// summing exactly to the scalar reward, SLO penalties, background energy
// credits), per-tenant feature slices, `.drlsc` QoS/[controller] parsing
// (negative cases + round-trips), controller-schedule execution, per-tenant
// accounting invariants under the experiment engine, and the pinning tests
// that keep QoS-off behavior bit-identical to the pre-QoS code.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

#include "core/env_noc.h"
#include "core/features.h"
#include "core/reward.h"
#include "core/trainer.h"
#include "rl/dqn.h"
#include "scenario/runtime.h"
#include "scenario/scenario_io.h"
#include "trace/generators.h"
#include "util/thread_pool.h"

namespace drlnoc {
namespace {

using core::RewardFunction;
using core::RewardParams;
using core::TenantQosClass;
using core::TenantQosSpec;

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- fixtures ---------------------------------------------------------------

/// A plausible mid-load epoch with two tenant slices.
noc::EpochStats two_tenant_stats() {
  noc::EpochStats s;
  s.core_cycles = 512.0;
  s.packets_offered = 120;
  s.packets_received = 110;
  s.avg_latency = 55.0;
  s.p95_latency = 140.0;
  s.offered_rate = 0.08;
  s.accepted_rate = 0.075;
  s.source_queue_total = 4;
  s.dynamic_energy_pj = 40000.0;
  s.static_energy_pj = 30000.0;
  s.tenants.resize(2);
  s.tenants[0].packets_offered = 50;
  s.tenants[0].packets_received = 48;
  s.tenants[0].packets_measured = 48;
  s.tenants[0].flits_ejected = 192;
  s.tenants[0].avg_latency = 60.0;
  s.tenants[0].p95_latency = 150.0;
  s.tenants[1].packets_offered = 70;
  s.tenants[1].packets_received = 62;
  s.tenants[1].packets_measured = 62;
  s.tenants[1].flits_ejected = 248;
  s.tenants[1].avg_latency = 50.0;
  s.tenants[1].p95_latency = 120.0;
  return s;
}

RewardParams qos_params(double target = 200.0) {
  RewardParams rp;
  rp.power_ref_mw = 300.0;
  rp.tenant_qos.resize(2);
  rp.tenant_qos[0].cls = TenantQosClass::kLatencyCritical;
  rp.tenant_qos[0].p95_target = target;
  rp.tenant_qos[1].cls = TenantQosClass::kBackground;
  return rp;
}

/// FNV-1a over the full delivered-packet stream, tenant tags included
/// (same folding as tests/scenario_test.cpp).
std::uint64_t stream_hash(const std::vector<noc::PacketRecord>& records) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(records.size());
  for (const noc::PacketRecord& r : records) {
    mix(r.packet_id);
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(r.src)));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(r.dst)));
    mix(r.length);
    mix(std::bit_cast<std::uint64_t>(r.inject_time));
    mix(std::bit_cast<std::uint64_t>(r.eject_time));
    mix(r.hops);
    mix(r.measured ? 1u : 0u);
    mix(r.tenant);
  }
  return h;
}

trace::Trace dnn_trace() {
  return trace::generate_dnn_pipeline({16, 4, 4, 3, 64.0, 32.0, 8});
}

/// DNN trace + windowed background on a 4x4 mesh; optionally QoS-annotated.
scenario::Scenario mixed_scenario(bool with_qos, std::uint64_t seed = 42) {
  scenario::Scenario s;
  s.name = "qos_mix";
  s.net.width = s.net.height = 4;
  s.net.seed = seed;
  scenario::TenantSpec dnn;
  dnn.name = "dnn";
  dnn.kind = scenario::WorkloadKind::kTrace;
  dnn.trace = std::make_shared<const trace::Trace>(dnn_trace());
  if (with_qos) {
    dnn.qos = scenario::QosClass::kLatencyCritical;
    dnn.p95_target = 250.0;
  }
  s.tenants.push_back(std::move(dnn));
  scenario::TenantSpec bg;
  bg.name = "bg";
  bg.kind = scenario::WorkloadKind::kSteady;
  bg.rate = 0.05;
  bg.start = 100.0;
  bg.stop = 3000.0;
  if (with_qos) bg.qos = scenario::QosClass::kBackground;
  s.tenants.push_back(std::move(bg));
  return s;
}

// --- RewardParams validation -------------------------------------------------

TEST(RewardValidate, RejectsBadWeightsAndRefs) {
  const auto expect_invalid = [](RewardParams rp) {
    EXPECT_THROW(RewardFunction{rp}, std::invalid_argument);
  };
  RewardParams rp;
  EXPECT_NO_THROW(RewardFunction{rp});  // defaults are valid

  rp = {}; rp.w_latency = -0.5; expect_invalid(rp);
  rp = {}; rp.w_power = std::nan(""); expect_invalid(rp);
  rp = {}; rp.w_saturation = -1.0; expect_invalid(rp);
  rp = {}; rp.w_slo = kInf; expect_invalid(rp);
  rp = {}; rp.w_background_energy = -0.1; expect_invalid(rp);
  rp = {}; rp.latency_ref = 0.0; expect_invalid(rp);
  rp = {}; rp.latency_ref = -60.0; expect_invalid(rp);
  rp = {}; rp.power_ref_mw = -1.0; expect_invalid(rp);
  rp = {}; rp.power_ref_mw = kInf; expect_invalid(rp);
  rp = {}; rp.core_freq_ghz = 0.0; expect_invalid(rp);
}

TEST(RewardValidate, RejectsContradictoryQosTargets) {
  // latency_critical without a target.
  RewardParams rp;
  rp.tenant_qos.resize(1);
  rp.tenant_qos[0].cls = TenantQosClass::kLatencyCritical;
  EXPECT_THROW(RewardFunction{rp}, std::invalid_argument);
  // ... or with a nonfinite / negative one.
  rp.tenant_qos[0].p95_target = kInf;
  EXPECT_THROW(RewardFunction{rp}, std::invalid_argument);
  rp.tenant_qos[0].p95_target = -5.0;
  EXPECT_THROW(RewardFunction{rp}, std::invalid_argument);
  rp.tenant_qos[0].p95_target = 200.0;
  EXPECT_NO_THROW(RewardFunction{rp});
  // Targets on non-critical classes are rejected.
  rp.tenant_qos[0].cls = TenantQosClass::kBestEffort;
  EXPECT_THROW(RewardFunction{rp}, std::invalid_argument);
  rp.tenant_qos[0].cls = TenantQosClass::kBackground;
  EXPECT_THROW(RewardFunction{rp}, std::invalid_argument);
  // The error message names the offending knob.
  try {
    RewardFunction{rp};
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("p95_target"), std::string::npos);
  }
}

// --- QoS reward shaping ------------------------------------------------------

TEST(QosReward, PerTenantTermsSumExactlyToScalarReward) {
  const RewardFunction reward(qos_params());
  const noc::EpochStats stats = two_tenant_stats();
  const auto b = reward.breakdown(stats);
  ASSERT_EQ(b.tenants.size(), 2u);

  double slo_sum = 0.0, credit_sum = 0.0;
  for (const auto& t : b.tenants) {
    slo_sum += t.slo_term;
    credit_sum += t.energy_credit;
  }
  // Exact (bit-level) identity, not approximate: the acceptance criterion
  // for QoS-mode inspectability.
  EXPECT_EQ(b.reward, -(b.latency_term + b.power_term + b.saturation_term +
                        slo_sum - credit_sum));
  EXPECT_EQ(reward.compute(stats), b.reward);
}

TEST(QosReward, SloPenaltyTracksTargetViolation) {
  const RewardFunction reward(qos_params(/*target=*/200.0));
  noc::EpochStats ok = two_tenant_stats();
  ok.tenants[0].p95_latency = 150.0;  // inside the SLO
  const auto b_ok = reward.breakdown(ok);
  EXPECT_EQ(b_ok.tenants[0].slo_term, 0.0);

  noc::EpochStats bad = ok;
  bad.tenants[0].p95_latency = 400.0;  // 2x the target
  const auto b_bad = reward.breakdown(bad);
  EXPECT_GT(b_bad.tenants[0].slo_term, 0.0);
  EXPECT_LT(b_bad.reward, b_ok.reward);

  noc::EpochStats worse = ok;
  worse.tenants[0].p95_latency = 800.0;  // 4x: penalty grows monotonically
  const auto b_worse = reward.breakdown(worse);
  EXPECT_GT(b_worse.tenants[0].slo_term, b_bad.tenants[0].slo_term);
  EXPECT_LE(b_worse.tenants[0].slo_term, reward.params().w_slo);  // bounded
}

TEST(QosReward, StarvedCriticalTenantTakesFullPenalty) {
  const RewardFunction reward(qos_params());
  noc::EpochStats starved = two_tenant_stats();
  starved.tenants[0].packets_received = 0;
  starved.tenants[0].packets_measured = 0;
  starved.tenants[0].p95_latency = 0.0;  // no deliveries, no percentile
  const auto b = reward.breakdown(starved);
  EXPECT_EQ(b.tenants[0].slo_term, reward.params().w_slo);
}

TEST(QosReward, BackgroundEarnsCreditOnlyWhenPowerRunsBelowRef) {
  RewardParams rp = qos_params();
  const RewardFunction reward(rp);
  noc::EpochStats stats = two_tenant_stats();
  // 70000 pJ over 512 cycles @2GHz = ~273 mW < 300 mW ref: saving exists.
  const auto b = reward.breakdown(stats);
  EXPECT_GT(b.tenants[1].energy_credit, 0.0);
  EXPECT_EQ(b.tenants[0].energy_credit, 0.0);  // critical tenants earn none

  // At/above the reference the credit vanishes.
  noc::EpochStats hot = stats;
  hot.dynamic_energy_pj = 200000.0;
  const auto b_hot = reward.breakdown(hot);
  EXPECT_EQ(b_hot.tenants[1].energy_credit, 0.0);

  // Credit scales with the background share of delivered flits.
  noc::EpochStats minority = stats;
  minority.tenants[1].flits_ejected = 62;  // shrink bg share
  const auto b_min = reward.breakdown(minority);
  EXPECT_LT(b_min.tenants[1].energy_credit, b.tenants[1].energy_credit);
}

TEST(QosReward, RejectsTenantCountMismatch) {
  const RewardFunction reward(qos_params());
  noc::EpochStats stats = two_tenant_stats();
  stats.tenants.resize(1);
  EXPECT_THROW(reward.breakdown(stats), std::invalid_argument);
  stats.tenants.clear();
  EXPECT_THROW(reward.compute(stats), std::invalid_argument);
}

TEST(QosReward, QosOffMatchesLegacyFormulaBitExactly) {
  // The aggregate objective must stay bit-identical to the pre-QoS
  // implementation; this reimplements that formula and compares exactly.
  RewardParams rp;
  rp.power_ref_mw = 250.0;
  const RewardFunction reward(rp);
  noc::EpochStats stats = two_tenant_stats();  // tenant slices are ignored
  const double l = stats.avg_latency / rp.latency_ref;
  const double lat_term = rp.w_latency * (l / (l + 1.0));
  const double power = stats.avg_power_mw(rp.core_freq_ghz);
  const double pow_term = rp.w_power * std::min(2.0, power / rp.power_ref_mw);
  double sat = std::max(0.0, stats.offered_rate - stats.accepted_rate) /
               stats.offered_rate;
  const double backlog_pressure =
      static_cast<double>(stats.source_queue_total) /
      std::max<double>(1.0,
                       static_cast<double>(stats.packets_offered) + 1.0);
  sat = std::min(1.0, sat + 0.5 * std::min(1.0, backlog_pressure));
  const double sat_term = rp.w_saturation * sat;
  const double expected = -(lat_term + pow_term + sat_term);

  EXPECT_EQ(reward.compute(stats), expected);
  const auto b = reward.breakdown(stats);
  EXPECT_TRUE(b.tenants.empty());
  EXPECT_EQ(b.reward, expected);
}

// --- per-tenant features -----------------------------------------------------

TEST(QosFeatures, AppendsThreeSlotsPerTenant) {
  const core::ActionSpace space = core::ActionSpace::standard();
  const core::FeatureExtractor plain(space, 16);
  std::vector<TenantQosSpec> qos(2);
  qos[0].cls = TenantQosClass::kLatencyCritical;
  qos[0].p95_target = 200.0;
  qos[1].cls = TenantQosClass::kBackground;
  core::FeatureExtractor tenant_aware(space, 16, {}, qos);
  EXPECT_EQ(tenant_aware.state_size(), plain.state_size() + 6);

  const auto names = tenant_aware.feature_names();
  ASSERT_EQ(names.size(), tenant_aware.state_size());
  EXPECT_EQ(names[names.size() - 6], "t0_share");
  EXPECT_EQ(names[names.size() - 5], "t0_p95");
  EXPECT_EQ(names[names.size() - 4], "t0_shortfall");
  EXPECT_EQ(names[names.size() - 1], "t1_shortfall");

  const rl::State s = tenant_aware.extract(two_tenant_stats());
  ASSERT_EQ(s.size(), tenant_aware.state_size());
  for (double v : s) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // t0: 50/120 offered share; p95 150 of a 200 SLO -> 150/400;
  // 2 of 50 packets undelivered.
  const std::size_t base = s.size() - 6;
  EXPECT_DOUBLE_EQ(s[base + 0], 50.0 / 120.0);
  EXPECT_DOUBLE_EQ(s[base + 1], 150.0 / 400.0);
  EXPECT_DOUBLE_EQ(s[base + 2], 1.0 - 48.0 / 50.0);
}

TEST(QosFeatures, RejectsTenantCountMismatch) {
  const core::ActionSpace space = core::ActionSpace::standard();
  std::vector<TenantQosSpec> qos(3);
  core::FeatureExtractor fx(space, 16, {}, qos);
  EXPECT_THROW(fx.extract(two_tenant_stats()), std::invalid_argument);
}

// --- environment wiring ------------------------------------------------------

TEST(QosEnv, ScenarioAnnotationsSwitchRewardAndFeatures) {
  auto s = std::make_shared<scenario::Scenario>(mixed_scenario(true));
  s->tenants[0].loop = true;
  s->tenants[1].stop = kInf;
  s->duration = 1e6;

  core::NocEnvParams ep;
  ep.scenario = s;
  ep.net.seed = 42;
  ep.epoch_cycles = 256;
  ep.epochs_per_episode = 3;
  core::NocConfigEnv env(ep);

  // Reward picked up the annotations...
  ASSERT_EQ(env.reward().params().tenant_qos.size(), 2u);
  EXPECT_EQ(env.reward().params().tenant_qos[0].cls,
            TenantQosClass::kLatencyCritical);
  EXPECT_DOUBLE_EQ(env.reward().params().tenant_qos[0].p95_target, 250.0);
  EXPECT_EQ(env.reward().params().tenant_qos[1].cls,
            TenantQosClass::kBackground);

  // ...and the observation grew the per-tenant slices.
  core::NocEnvParams agg = ep;
  agg.scenario_qos = false;
  core::NocConfigEnv agg_env(agg);
  EXPECT_EQ(env.state_size(), agg_env.state_size() + 6);
  EXPECT_TRUE(agg_env.reward().params().tenant_qos.empty());

  // Episodes run and produce finite QoS-shaped rewards.
  rl::State st = env.reset();
  EXPECT_EQ(st.size(), env.state_size());
  const rl::StepResult r = env.step(0);
  EXPECT_TRUE(std::isfinite(r.reward));
  EXPECT_EQ(r.next_state.size(), env.state_size());
}

TEST(QosEnv, QosFreeScenarioIsBitIdenticalEitherWay) {
  // Without annotations the scenario_qos flag must not change anything:
  // same state size, same features, same rewards.
  auto s = std::make_shared<scenario::Scenario>(mixed_scenario(false));
  s->tenants[0].loop = true;
  s->tenants[1].stop = kInf;
  s->duration = 1e6;
  const auto run = [&](bool qos_flag) {
    core::NocEnvParams ep;
    ep.scenario = s;
    ep.net.seed = 42;
    ep.epoch_cycles = 256;
    ep.epochs_per_episode = 2;
    ep.scenario_qos = qos_flag;
    core::NocConfigEnv env(ep);
    env.set_eval_mode(true);
    rl::State st = env.reset();
    const rl::StepResult r = env.step(1);
    st.insert(st.end(), r.next_state.begin(), r.next_state.end());
    st.push_back(r.reward);
    return st;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(QosEnv, RejectsQosSpecsWithoutScenario) {
  core::NocEnvParams ep;
  ep.net.width = ep.net.height = 4;
  ep.reward.power_ref_mw = 300.0;
  ep.reward.tenant_qos.resize(1);
  EXPECT_THROW(core::NocConfigEnv{ep}, std::invalid_argument);
}

TEST(QosEnv, RejectsQosSpecCountMismatch) {
  core::NocEnvParams ep;
  ep.scenario = std::make_shared<scenario::Scenario>(mixed_scenario(true));
  ep.reward.power_ref_mw = 300.0;
  ep.reward.tenant_qos.resize(3);  // scenario has 2 tenants
  for (auto& q : ep.reward.tenant_qos) q.cls = TenantQosClass::kBestEffort;
  EXPECT_THROW(core::NocConfigEnv{ep}, std::invalid_argument);
}

// --- .drlsc parsing ----------------------------------------------------------

namespace {
const char kQosScenarioText[] =
    "drlsc 1\n"
    "name = qos\n"
    "width = 4\nheight = 4\nseed = 7\nduration = 5000\n"
    "tenants = 2\n"
    "tenant0.name = svc\n"
    "tenant0.workload = steady\n"
    "tenant0.rate = 0.03\n"
    "tenant0.qos = latency_critical\n"
    "tenant0.p95_target = 220\n"
    "tenant1.name = bulk\n"
    "tenant1.workload = steady\n"
    "tenant1.rate = 0.05\n"
    "tenant1.qos = background\n";
}  // namespace

TEST(QosScenarioIo, ParsesQosKeysAndControllerBlock) {
  const std::string text = std::string(kQosScenarioText) +
                           "\n[controller]\n"
                           "type = static-max\n"
                           "epoch_cycles = 256\n"
                           "epochs = 8\n";
  const scenario::Scenario s = scenario::ScenarioReader::read_text(text);
  ASSERT_EQ(s.tenants.size(), 2u);
  EXPECT_EQ(s.tenants[0].qos, scenario::QosClass::kLatencyCritical);
  EXPECT_DOUBLE_EQ(s.tenants[0].p95_target, 220.0);
  EXPECT_EQ(s.tenants[1].qos, scenario::QosClass::kBackground);
  EXPECT_TRUE(s.has_qos());
  EXPECT_EQ(s.controller.type, "static-max");
  EXPECT_EQ(s.controller.epoch_cycles, 256u);
  EXPECT_EQ(s.controller.epochs, 8);
}

TEST(QosScenarioIo, NegativeParseCases) {
  // Unknown QoS class.
  EXPECT_THROW(
      scenario::ScenarioReader::read_text(
          "drlsc 1\nwidth = 4\nheight = 4\nduration = 100\ntenants = 1\n"
          "tenant0.workload = steady\ntenant0.qos = golden\n"),
      std::invalid_argument);
  // Malformed p95_target.
  EXPECT_THROW(
      scenario::ScenarioReader::read_text(
          "drlsc 1\nwidth = 4\nheight = 4\nduration = 100\ntenants = 1\n"
          "tenant0.workload = steady\n"
          "tenant0.qos = latency_critical\ntenant0.p95_target = fast\n"),
      std::invalid_argument);
  // latency_critical without a target.
  EXPECT_THROW(
      scenario::ScenarioReader::read_text(
          "drlsc 1\nwidth = 4\nheight = 4\nduration = 100\ntenants = 1\n"
          "tenant0.workload = steady\ntenant0.qos = latency_critical\n"),
      std::invalid_argument);
  // p95_target on a non-critical tenant.
  EXPECT_THROW(
      scenario::ScenarioReader::read_text(
          "drlsc 1\nwidth = 4\nheight = 4\nduration = 100\ntenants = 1\n"
          "tenant0.workload = steady\ntenant0.p95_target = 100\n"),
      std::invalid_argument);
  // Controller policy file missing.
  EXPECT_THROW(
      scenario::ScenarioReader::read_text(
          std::string(kQosScenarioText) +
          "[controller]\ntype = drl\npolicy = does_not_exist.policy\n"),
      std::invalid_argument);
  // drl schedule without a policy at all.
  EXPECT_THROW(
      scenario::ScenarioReader::read_text(std::string(kQosScenarioText) +
                                          "[controller]\ntype = drl\n"),
      std::invalid_argument);
  // Unknown controller type.
  EXPECT_THROW(
      scenario::ScenarioReader::read_text(std::string(kQosScenarioText) +
                                          "[controller]\ntype = pid\n"),
      std::invalid_argument);
  // Negative epoch_cycles must not wrap through the uint64 cast.
  EXPECT_THROW(
      scenario::ScenarioReader::read_text(
          std::string(kQosScenarioText) +
          "[controller]\ntype = heuristic\nepoch_cycles = -1\n"),
      std::invalid_argument);
  EXPECT_THROW(
      scenario::ScenarioReader::read_text(
          std::string(kQosScenarioText) +
          "[controller]\ntype = heuristic\nepochs = -3\n"),
      std::invalid_argument);
  // Duplicate [controller] block.
  EXPECT_THROW(
      scenario::ScenarioReader::read_text(
          std::string(kQosScenarioText) +
          "[controller]\ntype = heuristic\n[controller]\ntype = drl\n"),
      std::invalid_argument);
  // Unknown section.
  EXPECT_THROW(
      scenario::ScenarioReader::read_text(std::string(kQosScenarioText) +
                                          "[controllers]\n"),
      std::invalid_argument);
  // Unknown keys inside the controller block are typos too.
  EXPECT_THROW(
      scenario::ScenarioReader::read_text(
          std::string(kQosScenarioText) +
          "[controller]\ntype = heuristic\npolciy = x\n"),
      std::invalid_argument);
}

TEST(QosScenarioIo, QosAndControllerRoundTrip) {
  // A trained policy on disk, referenced from the [controller] block.
  scenario::Scenario s = scenario::ScenarioReader::read_text(kQosScenarioText);
  core::NocEnvParams probe_ep;
  probe_ep.scenario = std::make_shared<scenario::Scenario>(s);
  probe_ep.reward.power_ref_mw = 300.0;  // skip calibration
  core::NocConfigEnv probe(probe_ep);
  rl::DqnAgent agent(probe.state_size(), probe.num_actions(), rl::DqnParams{});
  std::ostringstream blob;
  agent.save(blob);
  const std::string policy_path = ::testing::TempDir() + "qos_rt.policy";
  {
    std::ofstream out(policy_path, std::ios::binary);
    out << blob.str();
  }
  s.controller.type = "drl";
  s.controller.policy_file = "qos_rt.policy";
  s.controller.policy_blob = blob.str();
  s.controller.epoch_cycles = 128;
  s.controller.epochs = 6;

  std::ostringstream os;
  scenario::ScenarioWriter::write_text(os, s);
  const scenario::Scenario back =
      scenario::ScenarioReader::read_text(os.str(), ::testing::TempDir());
  ASSERT_EQ(back.tenants.size(), 2u);
  EXPECT_EQ(back.tenants[0].qos, scenario::QosClass::kLatencyCritical);
  EXPECT_DOUBLE_EQ(back.tenants[0].p95_target, 220.0);
  EXPECT_EQ(back.tenants[1].qos, scenario::QosClass::kBackground);
  EXPECT_DOUBLE_EQ(back.tenants[1].p95_target, 0.0);
  EXPECT_EQ(back.controller.type, "drl");
  EXPECT_EQ(back.controller.policy_file, "qos_rt.policy");
  EXPECT_EQ(back.controller.policy_blob, s.controller.policy_blob);
  EXPECT_EQ(back.controller.epoch_cycles, 128u);
  EXPECT_EQ(back.controller.epochs, 6);
}

// --- controller schedules ----------------------------------------------------

TEST(ControllerSchedule, StaticScheduleDrivesTheRun) {
  scenario::Scenario s = mixed_scenario(true);
  s.tenants[0].loop = true;
  s.tenants[1].stop = kInf;
  s.duration = 1e6;
  s.controller.type = "static-max";
  s.controller.epoch_cycles = 256;
  s.controller.epochs = 4;

  const scenario::ScheduledRunResult r = scenario::run_scheduled(s);
  EXPECT_EQ(r.episode.controller, "static-max");
  EXPECT_EQ(r.episode.actions.size(), 4u);
  ASSERT_EQ(r.episode.tenants.size(), 2u);
  EXPECT_GT(r.episode.tenants[0].packets_received, 0u);
  // The critical tenant carries SLO accounting; background does not.
  EXPECT_GT(r.episode.tenants[0].slo_epochs, 0u);
  EXPECT_EQ(r.episode.tenants[1].slo_epochs, 0u);
  EXPECT_DOUBLE_EQ(r.episode.tenants[1].slo_hit_rate, 1.0);
  EXPECT_GE(r.episode.tenants[0].slo_hit_rate, 0.0);
  EXPECT_LE(r.episode.tenants[0].slo_hit_rate, 1.0);
  EXPECT_GT(r.power_ref_mw, 0.0);
}

TEST(ControllerSchedule, HeuristicScheduleRuns) {
  scenario::Scenario s = mixed_scenario(false);
  s.tenants[0].loop = true;
  s.tenants[1].stop = kInf;
  s.duration = 1e6;
  s.controller.type = "heuristic";
  s.controller.epoch_cycles = 256;
  s.controller.epochs = 3;
  const scenario::ScheduledRunResult r = scenario::run_scheduled(s);
  EXPECT_EQ(r.episode.controller, "heuristic");
  EXPECT_EQ(r.episode.actions.size(), 3u);
}

TEST(ControllerSchedule, DrlScheduleLoadsAndValidatesThePolicy) {
  scenario::Scenario s = mixed_scenario(true);
  s.tenants[0].loop = true;
  s.tenants[1].stop = kInf;
  s.duration = 1e6;

  // A policy with the matching (QoS-extended) dimensions runs...
  core::NocEnvParams ep;
  ep.scenario = std::make_shared<scenario::Scenario>(s);
  ep.reward.power_ref_mw = 300.0;
  core::NocConfigEnv env(ep);
  s.controller.type = "drl";
  s.controller.epoch_cycles = 256;
  s.controller.epochs = 3;
  rl::DqnAgent agent(env.state_size(), env.num_actions(), rl::DqnParams{});
  std::ostringstream blob;
  agent.save(blob);
  s.controller.policy_file = "fit.policy";
  s.controller.policy_blob = blob.str();
  const scenario::ScheduledRunResult r = scenario::run_scheduled(s);
  EXPECT_EQ(r.episode.actions.size(), 3u);

  // ...a mismatched one (trained without the QoS slices) is diagnosed...
  rl::DqnAgent small(env.state_size() - 6, env.num_actions(), rl::DqnParams{});
  std::ostringstream small_blob;
  small.save(small_blob);
  s.controller.policy_blob = small_blob.str();
  EXPECT_THROW(scenario::run_scheduled(s), std::invalid_argument);

  // ...and garbage is rejected as not-a-policy.
  s.controller.policy_blob = "not a policy";
  EXPECT_THROW(scenario::run_scheduled(s), std::invalid_argument);
}

TEST(ControllerSchedule, RequiresASchedule) {
  scenario::Scenario s = mixed_scenario(false);
  s.duration = 5000.0;
  EXPECT_THROW(scenario::run_scheduled(s), std::invalid_argument);
}

// --- per-tenant accounting invariants under the experiment engine ------------

/// Runs one merged scenario and checks the slice/aggregate invariants;
/// returns a fold of the per-tenant counters for the thread-invariance check.
std::uint64_t checked_accounting_fold(std::uint64_t seed) {
  scenario::Scenario s = mixed_scenario(true, seed);
  auto net = scenario::build_network(s);
  auto w = scenario::build_workload(s, net->topology());
  const scenario::ScenarioRunResult r = scenario::run_scenario(*net, *w);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.stats.tenants.size(), 2u);

  std::uint64_t offered = 0, received = 0, flits = 0;
  std::uint64_t fold = 0xcbf29ce484222325ULL;
  for (const noc::TenantEpochStats& ts : r.stats.tenants) {
    offered += ts.packets_offered;
    received += ts.packets_received;
    flits += ts.flits_ejected;
    EXPECT_LE(ts.packets_measured, ts.packets_received);
    if (ts.packets_measured > 0) {
      // The p95 of a latency distribution sits at or above its mean for
      // these workloads (pinned: a regression in the per-tenant histogram
      // plumbing would push p95 under the mean immediately).
      EXPECT_GE(ts.p95_latency, ts.avg_latency * 0.95);
      EXPECT_LE(ts.avg_latency, ts.max_latency);
      EXPECT_LE(ts.p95_latency, ts.max_latency + 2.0);  // bucket resolution
    }
    fold = (fold ^ ts.packets_offered) * 0x100000001b3ULL;
    fold = (fold ^ ts.packets_received) * 0x100000001b3ULL;
    fold = (fold ^ ts.flits_ejected) * 0x100000001b3ULL;
  }
  // Tenant slices partition the aggregate exactly.
  EXPECT_EQ(offered, r.stats.packets_offered);
  EXPECT_EQ(received, r.stats.packets_received);
  EXPECT_EQ(flits, r.stats.flits_ejected);
  return fold;
}

TEST(QosAccounting, TenantSlicesPartitionAggregateAtAnyThreadCount) {
  std::uint64_t combined[3] = {};
  const int jobs_options[3] = {1, 2, 8};
  for (int k = 0; k < 3; ++k) {
    const auto folds = util::parallel_map<std::uint64_t>(
        4, jobs_options[k], [](int i) {
          return checked_accounting_fold(11 + static_cast<std::uint64_t>(i));
        });
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t v : folds) {
      h ^= v;
      h *= 0x100000001b3ULL;
    }
    combined[k] = h;
  }
  EXPECT_EQ(combined[0], combined[1]);
  EXPECT_EQ(combined[0], combined[2]);
}

// --- QoS-off pinning ---------------------------------------------------------

TEST(QosPinning, AnnotationsNeverPerturbTheTrafficStream) {
  // QoS is an objective, not a workload: the same scenario with and without
  // annotations must deliver a bit-identical packet stream and identical
  // per-tenant accounting.
  const auto run = [](bool with_qos) {
    scenario::Scenario s = mixed_scenario(with_qos);
    auto net = scenario::build_network(s);
    auto w = scenario::build_workload(s, net->topology());
    const scenario::ScenarioRunResult r = scenario::run_scenario(*net, *w);
    EXPECT_TRUE(r.completed);
    std::uint64_t h = stream_hash(net->drain_records());
    h ^= 0x9e3779b97f4a7c15ULL * (r.stats.tenants[0].packets_received + 1);
    h ^= 0xc2b2ae3d27d4eb4fULL * (r.stats.tenants[1].packets_received + 1);
    return h;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(QosPinning, SloAccountingReachesEvaluate) {
  auto s = std::make_shared<scenario::Scenario>(mixed_scenario(true));
  s->tenants[0].loop = true;
  s->tenants[1].stop = kInf;
  s->duration = 1e6;

  const auto hit_rate_with_target = [&](double target) {
    auto scn = std::make_shared<scenario::Scenario>(*s);
    scn->tenants[0].p95_target = target;
    core::NocEnvParams ep;
    ep.scenario = scn;
    ep.net.seed = 42;
    ep.epoch_cycles = 256;
    ep.epochs_per_episode = 4;
    ep.reward.power_ref_mw = 300.0;
    core::NocConfigEnv env(ep);
    auto ctrl = core::StaticController::maximal(env.actions());
    const core::EpisodeResult res = core::evaluate(env, *ctrl);
    EXPECT_EQ(res.tenants[0].slo_hits + 0u,
              static_cast<std::uint64_t>(res.tenants[0].slo_hit_rate *
                                             static_cast<double>(
                                                 res.tenants[0].slo_epochs) +
                                         0.5));
    return res.tenants[0].slo_hit_rate;
  };
  // A generous SLO is always met; an absurdly tight one never is.
  EXPECT_DOUBLE_EQ(hit_rate_with_target(1e6), 1.0);
  EXPECT_DOUBLE_EQ(hit_rate_with_target(1e-3), 0.0);
}

}  // namespace
}  // namespace drlnoc
