// Channel delay-line semantics and NIC packetization/reassembly behaviour.
#include <gtest/gtest.h>

#include "noc/channel.h"
#include "noc/nic.h"

namespace drlnoc::noc {
namespace {

TEST(Channel, DeliversAfterExactLatency) {
  FlitChannel ch(3);
  Flit f;
  f.packet_id = 7;
  ch.send(f, /*now=*/10);
  for (Cycle t = 10; t < 13; ++t) EXPECT_FALSE(ch.ready(t)) << t;
  ASSERT_TRUE(ch.ready(13));
  EXPECT_EQ(ch.receive(13).packet_id, 7u);
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, PreservesFifoOrder) {
  Channel<int> ch(2);
  for (int i = 0; i < 5; ++i) ch.send(i, static_cast<Cycle>(i));
  std::vector<int> got;
  for (Cycle t = 0; t < 10; ++t) {
    while (ch.ready(t)) got.push_back(ch.receive(t));
  }
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, InFlightCount) {
  CreditChannel ch(5);
  EXPECT_EQ(ch.in_flight(), 0u);
  ch.send(Credit{1}, 0);
  ch.send(Credit{2}, 1);
  EXPECT_EQ(ch.in_flight(), 2u);
  (void)ch.receive(5);
  EXPECT_EQ(ch.in_flight(), 1u);
}

TEST(Channel, LateItemsStayReady) {
  Channel<int> ch(1);
  ch.send(42, 0);
  // Not picked up at cycle 1; still deliverable at cycle 10.
  EXPECT_TRUE(ch.ready(10));
  EXPECT_EQ(ch.receive(10), 42);
}

// NIC harness: wire a NIC to hand-held channels and step it manually.
class NicHarness : public ::testing::Test {
 protected:
  NicHarness()
      : nic_(0, NicParams{4, 8, 1, 4, 4}), inj_f_(1), inj_c_(1), ej_f_(1),
        ej_c_(1) {
    nic_.connect(&inj_f_, &inj_c_, &ej_f_, &ej_c_);
    nic_.init_credits(8);
  }

  Nic nic_;
  FlitChannel inj_f_;
  CreditChannel inj_c_;
  FlitChannel ej_f_;
  CreditChannel ej_c_;
};

TEST_F(NicHarness, PacketizesWithCorrectFlitTypes) {
  nic_.offer_packet(5, 0.0, true, 1);
  std::vector<Flit> flits;
  for (Cycle t = 0; t < 10 && flits.size() < 4; ++t) {
    nic_.step(t, static_cast<double>(t));
    while (inj_f_.ready(t + 1)) flits.push_back(inj_f_.receive(t + 1));
  }
  ASSERT_EQ(flits.size(), 4u);
  EXPECT_EQ(flits[0].type, FlitType::kHead);
  EXPECT_EQ(flits[1].type, FlitType::kBody);
  EXPECT_EQ(flits[2].type, FlitType::kBody);
  EXPECT_EQ(flits[3].type, FlitType::kTail);
  // All flits of one packet ride the same VC with increasing seq.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(flits[i].vc, flits[0].vc);
    EXPECT_EQ(flits[i].seq, i);
  }
  EXPECT_EQ(flits[0].packet_len, 4);
  EXPECT_EQ(nic_.injected_flits(), 4u);
}

TEST_F(NicHarness, SingleFlitPacketIsHeadTail) {
  nic_.offer_packet(3, 0.0, true, 1, /*length=*/1);
  nic_.step(0, 0.0);
  ASSERT_TRUE(inj_f_.ready(1));
  EXPECT_EQ(inj_f_.receive(1).type, FlitType::kHeadTail);
}

TEST_F(NicHarness, StopsWhenOutOfCredits) {
  nic_.init_credits(2);
  nic_.offer_packet(5, 0.0, true, 1);  // 4 flits but only 2 credits on VC
  int sent = 0;
  for (Cycle t = 0; t < 8; ++t) {
    nic_.step(t, static_cast<double>(t));
    while (inj_f_.ready(t + 1)) {
      ++sent;
      (void)inj_f_.receive(t + 1);
    }
  }
  EXPECT_EQ(sent, 2);
  EXPECT_FALSE(nic_.idle());  // transmission stuck mid-packet
  // Return credits; transmission resumes.
  inj_c_.send(Credit{0}, 8);
  inj_c_.send(Credit{0}, 9);
  for (Cycle t = 9; t < 14; ++t) {
    nic_.step(t, static_cast<double>(t));
    while (inj_f_.ready(t + 1)) {
      ++sent;
      (void)inj_f_.receive(t + 1);
    }
  }
  EXPECT_EQ(sent, 4);
}

TEST_F(NicHarness, ReassemblesAndRecordsLatency) {
  // Deliver a 3-flit packet addressed to this NIC.
  auto make = [](std::uint16_t seq, FlitType type) {
    Flit f;
    f.packet_id = 9;
    f.src = 5;
    f.dst = 0;
    f.seq = seq;
    f.packet_len = 3;
    f.type = type;
    f.inject_time = 2.0;
    f.measured = true;
    f.vc = 1;
    f.hops = 4;
    return f;
  };
  ej_f_.send(make(0, FlitType::kHead), 0);
  ej_f_.send(make(1, FlitType::kBody), 1);
  ej_f_.send(make(2, FlitType::kTail), 2);
  for (Cycle t = 0; t < 5; ++t) nic_.step(t, static_cast<double>(t) + 10.0);
  ASSERT_EQ(nic_.records().size(), 1u);
  const PacketRecord& r = nic_.records()[0];
  EXPECT_EQ(r.packet_id, 9u);
  EXPECT_EQ(r.length, 3);
  EXPECT_DOUBLE_EQ(r.inject_time, 2.0);
  EXPECT_GT(r.eject_time, r.inject_time);
  EXPECT_EQ(r.hops, 4u);
  // One credit returned per consumed flit.
  int credits = 0;
  for (Cycle t = 0; t < 10; ++t) {
    while (ej_c_.ready(t)) {
      EXPECT_EQ(ej_c_.receive(t).vc, 1);
      ++credits;
    }
  }
  EXPECT_EQ(credits, 3);
  EXPECT_EQ(nic_.ejected_flits(), 3u);
  EXPECT_EQ(nic_.received_packets(), 1u);
}

TEST_F(NicHarness, InterleavesPacketsAcrossVcs) {
  // Two queued packets: the NIC may pipeline them on different VCs; all
  // flits of each packet must still share one VC.
  nic_.offer_packet(5, 0.0, true, 1);
  nic_.offer_packet(6, 0.0, true, 2);
  std::map<std::uint64_t, VcId> vc_of;
  int got = 0;
  for (Cycle t = 0; t < 20 && got < 8; ++t) {
    nic_.step(t, static_cast<double>(t));
    while (inj_f_.ready(t + 1)) {
      const Flit f = inj_f_.receive(t + 1);
      auto [it, inserted] = vc_of.emplace(f.packet_id, f.vc);
      if (!inserted) {
        EXPECT_EQ(it->second, f.vc) << "packet " << f.packet_id;
      }
      ++got;
    }
  }
  EXPECT_EQ(got, 8);
  EXPECT_TRUE(nic_.idle());
}

TEST_F(NicHarness, RespectsActiveVcGating) {
  nic_.set_active_vcs(1);
  nic_.offer_packet(5, 0.0, true, 1);
  nic_.offer_packet(6, 0.0, true, 2);
  for (Cycle t = 0; t < 30; ++t) {
    nic_.step(t, static_cast<double>(t));
    while (inj_f_.ready(t + 1)) {
      EXPECT_EQ(inj_f_.receive(t + 1).vc, 0);
    }
  }
}

}  // namespace
}  // namespace drlnoc::noc
