// Steady-state allocation audit: a counting global operator new pins the
// "zero heap allocations in the hot loops" property — Network::step, the
// Mlp workspace paths, and the DQN observe/learn step must not allocate
// once their buffers are warm.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "noc/network.h"
#include "noc/workload.h"
#include "rl/dqn.h"
#include "util/rng.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace drlnoc {
namespace {

std::uint64_t alloc_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(SteadyStateAllocations, NetworkStepIsAllocationFree) {
  noc::NetworkParams p;
  p.width = p.height = 8;
  p.seed = 3;
  noc::Network net(p);
  // Well below saturation (~0.0625 for 8×8 uniform) so source-queue
  // high-water marks stop moving after warm-up.
  noc::SteadyWorkload w =
      noc::SteadyWorkload::make(net.topology(), "uniform", 0.04);
  const int kWindow = 2000;
  // Warm-up: reach steady state and establish every buffer capacity,
  // including the per-window record accumulators.
  for (int i = 0; i < 2 * kWindow; ++i) net.step(&w);
  (void)net.drain_epoch_stats();
  (void)net.drain_records();
  for (int i = 0; i < kWindow; ++i) net.step(&w);
  (void)net.drain_epoch_stats();
  (void)net.drain_records();

  const std::uint64_t before = alloc_count();
  for (int i = 0; i < kWindow; ++i) net.step(&w);
  const std::uint64_t after = alloc_count();
  EXPECT_EQ(after - before, 0u) << "Network::step allocated in steady state";
}

TEST(SteadyStateAllocations, NetworkStepAfterReconfigIsAllocationFree) {
  noc::NetworkParams p;
  p.width = p.height = 4;
  p.seed = 5;
  noc::Network net(p);
  noc::SteadyWorkload w =
      noc::SteadyWorkload::make(net.topology(), "transpose", 0.06);
  for (int i = 0; i < 3000; ++i) net.step(&w);
  net.apply_config(noc::NocConfig{2, 4, 2});
  for (int i = 0; i < 3000; ++i) net.step(&w);
  (void)net.drain_epoch_stats();
  (void)net.drain_records();
  for (int i = 0; i < 1500; ++i) net.step(&w);

  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 1000; ++i) net.step(&w);
  const std::uint64_t after = alloc_count();
  EXPECT_EQ(after - before, 0u);
}

TEST(SteadyStateAllocations, MlpWorkspacePathsAreAllocationFree) {
  util::Rng rng(7);
  nn::Mlp mlp({20, 64, 64, 36}, nn::Activation::kReLU, rng);
  nn::Adam opt(1e-3);
  nn::Matrix x(32, 20), target(32, 36);
  for (double& v : x.raw()) v = rng.uniform(-1.0, 1.0);
  for (double& v : target.raw()) v = rng.uniform(-1.0, 1.0);
  nn::LossResult loss;

  auto one_step = [&] {
    const nn::Matrix& y = mlp.forward_ws(x);
    (void)mlp.infer_ws(x);
    loss = nn::mse_loss(y, target);  // loss result reuses its capacity? no —
    // mse_loss allocates; keep it OUT of the audited window below.
    mlp.zero_grads();
    mlp.backward_ws(loss.grad);
    opt.step(mlp.params(), mlp.grads());
  };
  one_step();
  one_step();

  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 50; ++i) {
    (void)mlp.forward_ws(x);
    (void)mlp.infer_ws(x);
    mlp.zero_grads();
    mlp.backward_ws(loss.grad);
    mlp.backward_params_ws(loss.grad);
    (void)mlp.clip_grad_norm(10.0);
    opt.step(mlp.params(), mlp.grads());
  }
  const std::uint64_t after = alloc_count();
  EXPECT_EQ(after - before, 0u) << "Mlp workspace path allocated";
}

TEST(SteadyStateAllocations, DqnObserveIsAllocationFree) {
  rl::DqnParams dp;
  dp.hidden = {32, 32};
  dp.replay_capacity = 256;  // small: warm-up fills it completely
  dp.min_replay = 64;
  dp.batch_size = 16;
  rl::DqnAgent agent(12, 8, dp);
  util::Rng rng(9);
  rl::Transition t;
  t.state.assign(12, 0.0);
  t.next_state.assign(12, 0.0);
  auto observe_one = [&] {
    for (double& v : t.state) v = rng.uniform();
    for (double& v : t.next_state) v = rng.uniform();
    t.action = static_cast<int>(rng.below(8));
    t.reward = -rng.uniform();
    (void)agent.act(t.state);
    (void)agent.observe(t);
  };
  // Fill the replay buffer past capacity and warm every workspace,
  // including a hard target sync (every 250 learn steps).
  for (int i = 0; i < 600; ++i) observe_one();

  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 200; ++i) observe_one();
  const std::uint64_t after = alloc_count();
  EXPECT_EQ(after - before, 0u) << "DQN observe/learn allocated";
}

TEST(SteadyStateAllocations, PrioritizedDqnObserveIsAllocationFree) {
  rl::DqnParams dp;
  dp.hidden = {32, 32};
  dp.replay_capacity = 256;
  dp.min_replay = 64;
  dp.batch_size = 16;
  dp.prioritized = true;
  dp.n_step = 3;
  rl::DqnAgent agent(12, 8, dp);
  util::Rng rng(11);
  rl::Transition t;
  t.state.assign(12, 0.0);
  t.next_state.assign(12, 0.0);
  auto observe_one = [&] {
    for (double& v : t.state) v = rng.uniform();
    for (double& v : t.next_state) v = rng.uniform();
    t.action = static_cast<int>(rng.below(8));
    t.reward = -rng.uniform();
    t.done = (rng.below(50) == 0);
    (void)agent.observe(t);
  };
  for (int i = 0; i < 600; ++i) observe_one();

  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 200; ++i) observe_one();
  const std::uint64_t after = alloc_count();
  EXPECT_EQ(after - before, 0u) << "prioritized DQN observe/learn allocated";
}

}  // namespace
}  // namespace drlnoc
