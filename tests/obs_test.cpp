// Observability subsystem tests: flight-recorder ring/sampling semantics,
// Chrome trace export shape, metrics-registry kinds and bucket boundaries,
// profiler accounting — and the load-bearing guarantee: attaching every
// observer at full sampling must not move a single bit of the golden
// determinism hashes from determinism_test.cpp.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "noc/network.h"
#include "noc/workload.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/network_metrics.h"
#include "obs/profiler.h"
#include "obs/session.h"

namespace drlnoc {
namespace {

// --- flight recorder --------------------------------------------------------

TEST(FlightRecorder, RingOverwritesOldestAndCountsDrops) {
  obs::FlightRecorderParams p;
  p.capacity = 4;
  obs::FlightRecorder rec(p);
  for (std::uint64_t i = 0; i < 6; ++i) {
    rec.record(obs::EventKind::kPacketInject, static_cast<double>(i), i,
               /*packet_id=*/i + 1);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.recorded(), 6u);
  EXPECT_EQ(rec.dropped(), 2u);
  const std::vector<obs::TraceEvent> events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first: events 0 and 1 were overwritten.
  EXPECT_EQ(events.front().packet_id, 3u);
  EXPECT_EQ(events.back().packet_id, 6u);
}

TEST(FlightRecorder, SampleRateEndpoints) {
  obs::FlightRecorderParams all;
  all.sample_rate = 1.0;
  obs::FlightRecorder rec_all(all);
  obs::FlightRecorderParams none;
  none.sample_rate = 0.0;
  obs::FlightRecorder rec_none(none);
  for (std::uint64_t id = 1; id < 1000; ++id) {
    EXPECT_TRUE(rec_all.sampled(id));
    EXPECT_FALSE(rec_none.sampled(id));
  }
}

TEST(FlightRecorder, SamplingIsDeterministicAndRoughlyProportional) {
  obs::FlightRecorderParams p;
  p.sample_rate = 0.25;
  obs::FlightRecorder a(p);
  obs::FlightRecorder b(p);
  int hits = 0;
  const int n = 20000;
  for (std::uint64_t id = 1; id <= static_cast<std::uint64_t>(n); ++id) {
    const bool s = a.sampled(id);
    // Pure function of (seed, id): two recorders agree, and re-asking agrees.
    EXPECT_EQ(s, b.sampled(id));
    EXPECT_EQ(s, a.sampled(id));
    hits += s ? 1 : 0;
  }
  const double frac = static_cast<double>(hits) / n;
  EXPECT_NEAR(frac, 0.25, 0.02);
}

TEST(FlightRecorder, ChromeTraceShape) {
  obs::FlightRecorderParams p;
  p.capacity = 16;
  obs::FlightRecorder rec(p);
  rec.record(obs::EventKind::kPacketInject, 1.0, 1, /*packet_id=*/7, 0, 5, 4);
  rec.record(obs::EventKind::kPacketHop, 2.0, 2, /*packet_id=*/7, 1, 2, 1);
  rec.record(obs::EventKind::kPacketEject, 3.0, 3, /*packet_id=*/7, 5, 2, 0);
  rec.record(obs::EventKind::kConfigApply, 3.0, 3, 0, 4, 8, 0);
  rec.record(obs::EventKind::kTenantStart, 0.0, 0, 0, 1);
  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"schema\""), std::string::npos);
  // Packet lifecycle is an async begin/end pair keyed by the packet id.
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);
  // Scenario events are instants; config applies are counter tracks.
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
}

// --- metrics registry -------------------------------------------------------

TEST(MetricsRegistry, CounterResetsPerSampleGaugePersists) {
  obs::MetricsRegistry reg;
  const auto c = reg.add_counter("pkts");
  const auto g = reg.add_gauge("lat");
  reg.add_to_counter(c, 0, 3.0);
  reg.set_gauge(g, 0, 42.0);
  reg.commit_sample(1.0);
  reg.commit_sample(2.0);  // no updates in this window
  ASSERT_EQ(reg.samples(), 2u);
  EXPECT_DOUBLE_EQ(reg.sample_value(0, c), 3.0);
  EXPECT_DOUBLE_EQ(reg.sample_value(1, c), 0.0);  // counter reset
  EXPECT_DOUBLE_EQ(reg.sample_value(0, g), 42.0);
  EXPECT_DOUBLE_EQ(reg.sample_value(1, g), 42.0);  // gauge persists
}

TEST(MetricsRegistry, MultiInstanceHeatmapCsv) {
  obs::MetricsRegistry reg;
  const auto fam = reg.add_gauge("router.flits", /*instances=*/3);
  reg.set_gauge(fam, 0, 1.0);
  reg.set_gauge(fam, 2, 9.0);
  reg.commit_sample(10.0);
  std::ostringstream os;
  reg.write_heatmap_csv(os, "router.flits");
  const std::string csv = os.str();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "time,i0,i1,i2");
  EXPECT_NE(csv.find("10,1,0,9"), std::string::npos);
}

TEST(MetricsRegistry, HeatmapRejectsUnknownAndHistogramMetrics) {
  obs::MetricsRegistry reg;
  reg.add_histogram("lat_hist", 100.0, 10);
  std::ostringstream os;
  EXPECT_THROW(reg.write_heatmap_csv(os, "nope"), std::invalid_argument);
  EXPECT_THROW(reg.write_heatmap_csv(os, "lat_hist"), std::invalid_argument);
}

TEST(MetricsRegistry, HistogramBucketBoundaries) {
  obs::MetricsRegistry reg;
  // limit 100, 10 buckets => width 10: [0,10), [10,20), ... [90,100).
  const auto h = reg.add_histogram("lat", 100.0, 10);
  reg.observe(h, 0.0);    // first bucket, lower edge
  reg.observe(h, 9.999);  // still the first bucket
  reg.observe(h, 10.0);   // exactly on a boundary -> second bucket
  reg.observe(h, 99.999); // last bucket
  reg.observe(h, 100.0);  // == limit -> overflow, not last bucket
  reg.observe(h, 250.0);  // far overflow
  reg.observe(h, -5.0);   // clamped into the first bucket
  const util::Histogram& hist = reg.histogram(h);
  EXPECT_EQ(hist.count(), 7u);
  EXPECT_EQ(hist.buckets()[0], 3u);
  EXPECT_EQ(hist.buckets()[1], 1u);
  EXPECT_EQ(hist.buckets()[9], 1u);
  EXPECT_EQ(hist.overflow(), 2u);
}

TEST(MetricsRegistry, JsonExportContainsSeriesAndHistograms) {
  obs::MetricsRegistry reg;
  const auto c = reg.add_counter("pkts");
  const auto h = reg.add_histogram("lat", 10.0, 5);
  reg.add_to_counter(c, 0, 2.0);
  reg.observe(h, 3.0);
  reg.commit_sample(1.0);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"samples\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"pkts\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"counter\""), std::string::npos);
}

// --- profiler ---------------------------------------------------------------

TEST(Profiler, DisabledScopesRecordNothing) {
  obs::Profiler& prof = obs::Profiler::instance();
  prof.reset();
  prof.set_enabled(false);
  { obs::ScopedPhase scope(obs::Phase::kNetStep); }
  EXPECT_EQ(prof.totals(obs::Phase::kNetStep).count, 0u);
}

TEST(Profiler, EnabledScopesAccumulate) {
  obs::Profiler& prof = obs::Profiler::instance();
  prof.reset();
  prof.set_enabled(true);
  { obs::ScopedPhase scope(obs::Phase::kLearn); }
  { obs::ScopedPhase scope(obs::Phase::kLearn); }
  prof.set_enabled(false);
  EXPECT_EQ(prof.totals(obs::Phase::kLearn).count, 2u);
  std::ostringstream os;
  prof.write_json(os);
  EXPECT_NE(os.str().find("\"learn\""), std::string::npos);
  prof.reset();
}

// --- session plumbing -------------------------------------------------------

TEST(ObsSession, DisabledSessionIsInert) {
  obs::ObsOptions opts;  // no output paths
  obs::ObsSession session(opts);
  EXPECT_FALSE(session.enabled());
  EXPECT_EQ(session.recorder(), nullptr);
  EXPECT_EQ(session.metrics(16), nullptr);
  EXPECT_FALSE(obs::Profiler::instance().enabled());
  EXPECT_TRUE(session.finish());
}

TEST(ObsSession, HeatmapPathDerivation) {
  EXPECT_EQ(obs::heatmap_path_for("metrics.json"), "metrics_heatmap.csv");
  EXPECT_EQ(obs::heatmap_path_for("out/m"), "out/m_heatmap.csv");
}

// --- the non-perturbation guarantee ----------------------------------------
// Replicates determinism_test.cpp's Mesh8x8UniformWithReconfig hash with
// every observer attached at full sampling. The golden constant is the same
// one determinism_test pins for the bare fabric: observation must be free.

class Fnv {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(int v) {
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

void mix_stats(Fnv& h, const noc::EpochStats& s) {
  h.mix(s.packets_offered);
  h.mix(s.packets_received);
  h.mix(s.flits_injected);
  h.mix(s.flits_ejected);
  h.mix(s.avg_latency);
  h.mix(s.p95_latency);
  h.mix(s.max_latency);
  h.mix(s.avg_hops);
  h.mix(s.avg_buffer_occupancy);
  h.mix(s.source_queue_total);
}

void mix_records(Fnv& h, const std::vector<noc::PacketRecord>& records) {
  h.mix(static_cast<std::uint64_t>(records.size()));
  for (const noc::PacketRecord& r : records) {
    h.mix(r.packet_id);
    h.mix(r.src);
    h.mix(r.dst);
    h.mix(static_cast<std::uint64_t>(r.length));
    h.mix(r.inject_time);
    h.mix(r.eject_time);
    h.mix(static_cast<std::uint64_t>(r.hops));
    h.mix(static_cast<std::uint64_t>(r.measured ? 1 : 0));
  }
}

void mix_router_state(Fnv& h, noc::Network& net) {
  const int radix = net.topology().radix();
  const int vcs = net.params().max_vcs;
  for (int node = 0; node < net.num_nodes(); ++node) {
    noc::Router& r = net.router(node);
    h.mix(r.buffered_flits());
    for (int p = 0; p < radix; ++p) {
      for (int v = 0; v < vcs; ++v) {
        h.mix(r.input_occupancy(p, v));
        h.mix(r.advertised_capacity(p, v));
        h.mix(r.output_credits(p, v));
      }
    }
  }
}

std::uint64_t mesh8x8_hash(obs::FlightRecorder* rec,
                           obs::NetworkMetrics* metrics) {
  noc::NetworkParams p;
  p.width = p.height = 8;
  p.seed = 42;
  noc::Network net(p);
  if (rec != nullptr) net.set_flight_recorder(rec);
  if (metrics != nullptr) net.set_metrics(metrics);
  noc::SteadyWorkload w =
      noc::SteadyWorkload::make(net.topology(), "uniform", 0.10);
  Fnv h;
  mix_stats(h, net.run_epoch(&w, 1500));
  net.apply_config(noc::NocConfig{2, 4, 2});
  mix_stats(h, net.run_epoch(&w, 1500));
  mix_records(h, net.drain_records());
  mix_router_state(h, net);
  return h.value();
}

TEST(ObserverNonPerturbation, GoldenHashUnchangedWithAllObserversAttached) {
  obs::FlightRecorderParams rp;
  rp.sample_rate = 1.0;
  obs::FlightRecorder rec(rp);
  obs::NetworkMetrics metrics(64);
  obs::Profiler::instance().reset();
  obs::Profiler::instance().set_enabled(true);
  const std::uint64_t observed = mesh8x8_hash(&rec, &metrics);
  obs::Profiler::instance().set_enabled(false);
  obs::Profiler::instance().reset();
  // Golden constant from determinism_test.cpp — the bare-fabric value.
  EXPECT_EQ(observed, 11893662481098957864ULL);
  // The observers actually saw the run (they just didn't touch it).
  EXPECT_GT(rec.recorded(), 0u);
  EXPECT_GT(metrics.registry().samples(), 0u);
}

TEST(ObserverNonPerturbation, PartialSamplingMatchesBareRun) {
  obs::FlightRecorderParams rp;
  rp.sample_rate = 0.1;  // any rate must be behaviour-neutral
  obs::FlightRecorder rec(rp);
  EXPECT_EQ(mesh8x8_hash(&rec, nullptr), mesh8x8_hash(nullptr, nullptr));
}

}  // namespace
}  // namespace drlnoc
