#include <gtest/gtest.h>

#include <map>
#include <set>

#include "noc/topology.h"

namespace drlnoc::noc {
namespace {

TEST(Mesh2D, BasicGeometry) {
  Mesh2D mesh(4, 3);
  EXPECT_EQ(mesh.num_nodes(), 12);
  EXPECT_EQ(mesh.radix(), 5);
  EXPECT_EQ(mesh.node_at(2, 1), 6);
  EXPECT_EQ(mesh.x_of(6), 2);
  EXPECT_EQ(mesh.y_of(6), 1);
  EXPECT_EQ(mesh.required_vc_classes(), 1);
}

TEST(Mesh2D, LinkCountIsBidirectionalGrid) {
  Mesh2D mesh(4, 4);
  // 2 * (W-1)*H + 2 * W*(H-1) directed links.
  EXPECT_EQ(mesh.links().size(), 2u * 3 * 4 + 2u * 4 * 3);
  for (const Link& l : mesh.links()) EXPECT_FALSE(l.dateline);
}

TEST(Mesh2D, NeighborsConsistentWithLinks) {
  Mesh2D mesh(3, 3);
  // Node 4 is the centre at (1,1): east=5, west=3, north=7, south=1.
  EXPECT_EQ(mesh.neighbor(4, 1)->node, 5);
  EXPECT_EQ(mesh.neighbor(4, 2)->node, 3);
  EXPECT_EQ(mesh.neighbor(4, 3)->node, 7);
  EXPECT_EQ(mesh.neighbor(4, 4)->node, 1);
  EXPECT_FALSE(mesh.neighbor(4, 0).has_value());  // local port
  // Corner (0,0): no west, no south.
  EXPECT_FALSE(mesh.neighbor(0, 2).has_value());
  EXPECT_FALSE(mesh.neighbor(0, 4).has_value());
}

TEST(Mesh2D, LinksArePaired) {
  // Every directed link has a reverse twin on mirrored ports.
  Mesh2D mesh(4, 4);
  std::set<std::tuple<int, int, int, int>> links;
  for (const Link& l : mesh.links()) {
    links.insert({l.from.node, l.from.port, l.to.node, l.to.port});
  }
  for (const Link& l : mesh.links()) {
    EXPECT_TRUE(links.count({l.to.node, l.to.port == 1 ? 2 : l.to.port == 2 ? 1 : l.to.port == 3 ? 4 : 3,
                             l.from.node, l.from.port == 1 ? 2 : l.from.port == 2 ? 1 : l.from.port == 3 ? 4 : 3}) ||
                true);  // structural sanity exercised via neighbor() below
  }
  // in-port of a link must see the sender when looking back.
  for (const Link& l : mesh.links()) {
    const auto back = mesh.neighbor(l.to.node, l.to.port);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->node, l.from.node);
    EXPECT_EQ(back->port, l.from.port);
  }
}

TEST(Mesh2D, MinHopsIsManhattan) {
  Mesh2D mesh(8, 8);
  EXPECT_EQ(mesh.min_hops(0, 63), 14);
  EXPECT_EQ(mesh.min_hops(0, 0), 0);
  EXPECT_EQ(mesh.min_hops(mesh.node_at(2, 3), mesh.node_at(5, 1)), 5);
}

TEST(Mesh2D, RejectsDegenerate) {
  EXPECT_THROW(Mesh2D(1, 1), std::invalid_argument);
}

TEST(Torus2D, WrapLinksAndDatelines) {
  Torus2D torus(4, 4);
  EXPECT_EQ(torus.num_nodes(), 16);
  EXPECT_EQ(torus.required_vc_classes(), 2);
  // Every node has all four neighbours.
  for (int n = 0; n < 16; ++n) {
    for (int p = 1; p <= 4; ++p) {
      EXPECT_TRUE(torus.neighbor(n, p).has_value()) << n << ":" << p;
    }
  }
  // 4 directed links per node.
  EXPECT_EQ(torus.links().size(), 16u * 4);
  // The wrap column: east from x=3 crosses the dateline.
  EXPECT_TRUE(torus.crosses_dateline(torus.node_at(3, 0), 1));
  EXPECT_FALSE(torus.crosses_dateline(torus.node_at(1, 0), 1));
  // West from x=0 also crosses (wrap in -x).
  EXPECT_TRUE(torus.crosses_dateline(torus.node_at(0, 0), 2));
  EXPECT_FALSE(torus.crosses_dateline(torus.node_at(2, 0), 2));
}

TEST(Torus2D, MinHopsUsesWrap) {
  Torus2D torus(8, 8);
  EXPECT_EQ(torus.min_hops(torus.node_at(0, 0), torus.node_at(7, 0)), 1);
  EXPECT_EQ(torus.min_hops(torus.node_at(0, 0), torus.node_at(4, 4)), 8);
  EXPECT_EQ(torus.min_hops(torus.node_at(1, 1), torus.node_at(6, 7)), 3 + 2);
}

TEST(Torus2D, RejectsNarrowDimensions) {
  EXPECT_THROW(Torus2D(2, 4), std::invalid_argument);
}

TEST(Ring, GeometryAndDatelines) {
  Ring ring(8);
  EXPECT_EQ(ring.num_nodes(), 8);
  EXPECT_EQ(ring.radix(), 3);
  EXPECT_EQ(ring.links().size(), 16u);
  EXPECT_EQ(ring.min_hops(0, 7), 1);
  EXPECT_EQ(ring.min_hops(0, 4), 4);
  EXPECT_EQ(ring.neighbor(7, 1)->node, 0);
  EXPECT_EQ(ring.neighbor(0, 2)->node, 7);
  EXPECT_TRUE(ring.crosses_dateline(7, 1));   // CW wrap
  EXPECT_TRUE(ring.crosses_dateline(0, 2));   // CCW wrap
  EXPECT_FALSE(ring.crosses_dateline(3, 1));
}

TEST(TopologyFactory, MakesAllKinds) {
  EXPECT_EQ(make_topology("mesh", 4, 4)->name(), "mesh4x4");
  EXPECT_EQ(make_topology("torus", 4, 4)->name(), "torus4x4");
  EXPECT_EQ(make_topology("ring", 4, 2)->name(), "ring8");
  EXPECT_THROW(make_topology("hypercube", 4, 4), std::invalid_argument);
}

class MinHopsTriangle
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

// Property: min_hops satisfies the triangle inequality and symmetry.
TEST_P(MinHopsTriangle, MetricProperties) {
  const auto [w, h] = GetParam();
  Mesh2D mesh(w, h);
  Torus2D torus(std::max(3, w), std::max(3, h));
  for (const Topology* topo :
       std::initializer_list<const Topology*>{&mesh, &torus}) {
    const int n = topo->num_nodes();
    for (int a = 0; a < n; a += 3) {
      for (int b = 0; b < n; b += 3) {
        EXPECT_EQ(topo->min_hops(a, b), topo->min_hops(b, a));
        for (int c = 0; c < n; c += 5) {
          EXPECT_LE(topo->min_hops(a, c),
                    topo->min_hops(a, b) + topo->min_hops(b, c));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, MinHopsTriangle,
                         ::testing::Values(std::tuple{4, 4}, std::tuple{5, 3},
                                           std::tuple{8, 8}, std::tuple{3, 7}));

}  // namespace
}  // namespace drlnoc::noc
