#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/matrix.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace drlnoc::nn {
namespace {

TEST(Matrix, BasicOps) {
  Matrix a(2, 3, 1.0);
  Matrix b(2, 3, 2.0);
  a += b;
  EXPECT_DOUBLE_EQ(a.at(1, 2), 3.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  a *= 4.0;
  EXPECT_DOUBLE_EQ(a.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(Matrix(2, 2, 3.0).norm(), 6.0);
}

TEST(Matrix, MatmulAgainstHand) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  double av[] = {1, 2, 3, 4, 5, 6}, bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.raw().begin());
  std::copy(bv, bv + 6, b.raw().begin());
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(Matrix, TransposedProductsConsistent) {
  util::Rng rng(1);
  Matrix a(4, 3), b(4, 5), c(6, 3);
  for (double& v : a.raw()) v = rng.normal();
  for (double& v : b.raw()) v = rng.normal();
  for (double& v : c.raw()) v = rng.normal();
  // matmul_tn(a, b) == aᵀ b; check one element by explicit sum.
  const Matrix tn = matmul_tn(a, b);
  double expect = 0.0;
  for (int k = 0; k < 4; ++k) expect += a.at(k, 1) * b.at(k, 2);
  EXPECT_NEAR(tn.at(1, 2), expect, 1e-12);
  // matmul_nt(a, c) == a cᵀ (3 columns shared).
  const Matrix nt = matmul_nt(a, c);
  expect = 0.0;
  for (int k = 0; k < 3; ++k) expect += a.at(2, k) * c.at(4, k);
  EXPECT_NEAR(nt.at(2, 4), expect, 1e-12);
}

TEST(Matrix, SaveLoadRoundTrip) {
  util::Rng rng(2);
  Matrix m(3, 4);
  for (double& v : m.raw()) v = rng.normal();
  std::stringstream ss;
  m.save(ss);
  const Matrix n = Matrix::load(ss);
  ASSERT_EQ(n.rows(), 3u);
  ASSERT_EQ(n.cols(), 4u);
  for (std::size_t i = 0; i < m.raw().size(); ++i) {
    EXPECT_DOUBLE_EQ(m.raw()[i], n.raw()[i]);
  }
}

TEST(Linear, ForwardMatchesHand) {
  Linear lin(2, 2);
  lin.weights().at(0, 0) = 1.0;
  lin.weights().at(0, 1) = 2.0;
  lin.weights().at(1, 0) = 3.0;
  lin.weights().at(1, 1) = 4.0;
  lin.bias().at(0, 0) = 0.5;
  lin.bias().at(0, 1) = -0.5;
  Matrix x(1, 2);
  x.at(0, 0) = 1.0;
  x.at(0, 1) = 2.0;
  const Matrix y = lin.forward(x);
  EXPECT_DOUBLE_EQ(y.at(0, 0), 1.0 + 6.0 + 0.5);
  EXPECT_DOUBLE_EQ(y.at(0, 1), 2.0 + 8.0 - 0.5);
}

TEST(Activations, ForwardShapes) {
  ReLU relu;
  Tanh tanh_layer;
  Matrix x(2, 2);
  x.at(0, 0) = -1.0;
  x.at(0, 1) = 2.0;
  x.at(1, 0) = 0.0;
  x.at(1, 1) = -3.0;
  const Matrix r = relu.forward(x);
  EXPECT_DOUBLE_EQ(r.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r.at(0, 1), 2.0);
  const Matrix t = tanh_layer.forward(x);
  EXPECT_NEAR(t.at(0, 1), std::tanh(2.0), 1e-12);
}

// Finite-difference gradient check for the whole MLP (DESIGN invariant 8).
class GradCheck : public ::testing::TestWithParam<Activation> {};

TEST_P(GradCheck, MlpMatchesFiniteDifferences) {
  util::Rng rng(3);
  Mlp mlp({3, 8, 5, 2}, GetParam(), rng);
  Matrix x(4, 3);
  Matrix target(4, 2);
  for (double& v : x.raw()) v = rng.normal();
  for (double& v : target.raw()) v = rng.normal();

  auto loss_of = [&](Mlp& net) {
    return mse_loss(net.forward(x), target).loss;
  };

  // Analytic gradients.
  mlp.zero_grads();
  const LossResult lr = mse_loss(mlp.forward(x), target);
  mlp.backward(lr.grad);

  const double eps = 1e-6;
  auto params = mlp.params();
  auto grads = mlp.grads();
  int checked = 0;
  for (std::size_t p = 0; p < params.size(); ++p) {
    for (std::size_t i = 0; i < params[p]->raw().size(); i += 3) {
      double& w = params[p]->raw()[i];
      const double orig = w;
      w = orig + eps;
      const double up = loss_of(mlp);
      w = orig - eps;
      const double down = loss_of(mlp);
      w = orig;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = grads[p]->raw()[i];
      EXPECT_NEAR(analytic, numeric,
                  1e-4 * std::max(1.0, std::abs(numeric)))
          << "param " << p << " index " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 20);
}

INSTANTIATE_TEST_SUITE_P(Activations, GradCheck,
                         ::testing::Values(Activation::kReLU,
                                           Activation::kTanh));

TEST(Loss, MaskedHuberGradientMatchesFiniteDifference) {
  util::Rng rng(5);
  Matrix pred(3, 4);
  for (double& v : pred.raw()) v = rng.normal();
  const std::vector<int> actions = {1, 3, 0};
  const std::vector<double> targets = {0.5, -2.0, 4.0};  // one far (linear)
  const std::vector<double> weights = {1.0, 0.5, 2.0};

  const MaskedLossResult res =
      masked_huber_loss(pred, actions, targets, weights);
  const double eps = 1e-6;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      double& v = pred.at(r, c);
      const double orig = v;
      v = orig + eps;
      const double up =
          masked_huber_loss(pred, actions, targets, weights).loss;
      v = orig - eps;
      const double down =
          masked_huber_loss(pred, actions, targets, weights).loss;
      v = orig;
      EXPECT_NEAR(res.grad.at(r, c), (up - down) / (2 * eps) / 3.0 * 3.0,
                  1e-5);
    }
  }
  // TD errors reported per row.
  EXPECT_NEAR(res.td_abs[0], std::abs(pred.at(0, 1) - 0.5), 1e-12);
}

TEST(Mlp, CopyAndSoftUpdate) {
  util::Rng rng(7);
  Mlp a({2, 4, 2}, Activation::kReLU, rng);
  Mlp b({2, 4, 2}, Activation::kReLU, rng);
  b.copy_weights_from(a);
  Matrix x(1, 2, 0.3);
  EXPECT_EQ(a.forward(x).row(0), b.forward(x).row(0));

  Mlp c({2, 4, 2}, Activation::kReLU, rng);
  const double before = c.params()[0]->at(0, 0);
  const double src = a.params()[0]->at(0, 0);
  c.soft_update_from(a, 0.25);
  EXPECT_NEAR(c.params()[0]->at(0, 0), 0.25 * src + 0.75 * before, 1e-12);
}

TEST(Mlp, GradClipBoundsNorm) {
  util::Rng rng(9);
  Mlp mlp({3, 16, 3}, Activation::kReLU, rng);
  Matrix x(8, 3), t(8, 3);
  for (double& v : x.raw()) v = rng.normal() * 10;
  for (double& v : t.raw()) v = rng.normal() * 10;
  mlp.zero_grads();
  mlp.backward(mse_loss(mlp.forward(x), t).grad);
  mlp.clip_grad_norm(0.5);
  double total = 0.0;
  for (Matrix* g : mlp.grads()) total += g->norm() * g->norm();
  EXPECT_LE(std::sqrt(total), 0.5 + 1e-9);
}

TEST(Mlp, SaveLoadPreservesFunction) {
  util::Rng rng(11);
  Mlp mlp({4, 8, 3}, Activation::kTanh, rng);
  Matrix x(2, 4);
  for (double& v : x.raw()) v = rng.normal();
  const auto before = mlp.forward(x).row(0);
  std::stringstream ss;
  mlp.save(ss);
  Mlp loaded = Mlp::load(ss);
  const auto after = loaded.forward(x).row(0);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before[i], after[i], 1e-12);
  }
}

TEST(DuelingHead, QDecomposition) {
  DuelingHead head(3, 4);
  util::Rng rng(21);
  head.init_he(rng);
  Matrix x(2, 3);
  for (double& v : x.raw()) v = rng.normal();
  const Matrix q = head.forward(x);
  ASSERT_EQ(q.rows(), 2u);
  ASSERT_EQ(q.cols(), 4u);
  // Per construction, mean_c(Q_rc) == V_r, i.e. advantages are centred:
  // Q - rowmean(Q) must equal A - rowmean(A); check rowmean(Q) is finite
  // and the head has 2 param groups (value + advantage).
  EXPECT_EQ(head.params().size(), 4u);  // W_v, b_v, W_a, b_a
}

TEST(DuelingHead, GradientMatchesFiniteDifferences) {
  util::Rng rng(23);
  Mlp mlp({3, 8, 4}, Activation::kReLU, rng, /*dueling=*/true);
  Matrix x(5, 3), target(5, 4);
  for (double& v : x.raw()) v = rng.normal();
  for (double& v : target.raw()) v = rng.normal();
  mlp.zero_grads();
  const LossResult lr = mse_loss(mlp.forward(x), target);
  mlp.backward(lr.grad);
  auto params = mlp.params();
  auto grads = mlp.grads();
  const double eps = 1e-6;
  for (std::size_t p = 0; p < params.size(); ++p) {
    for (std::size_t i = 0; i < params[p]->raw().size(); i += 2) {
      double& w = params[p]->raw()[i];
      const double orig = w;
      w = orig + eps;
      const double up = mse_loss(mlp.forward(x), target).loss;
      w = orig - eps;
      const double down = mse_loss(mlp.forward(x), target).loss;
      w = orig;
      EXPECT_NEAR(grads[p]->raw()[i], (up - down) / (2 * eps), 1e-5)
          << "param " << p << " index " << i;
    }
  }
}

TEST(DuelingHead, SaveLoadRoundTrip) {
  util::Rng rng(25);
  Mlp mlp({4, 8, 3}, Activation::kReLU, rng, /*dueling=*/true);
  Matrix x(1, 4);
  for (double& v : x.raw()) v = rng.normal();
  const auto before = mlp.forward(x).row(0);
  std::stringstream ss;
  mlp.save(ss);
  Mlp loaded = Mlp::load(ss);
  const auto after = loaded.forward(x).row(0);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before[i], after[i], 1e-12);
  }
}

TEST(Optimizer, SgdDescendsQuadratic) {
  // Minimize (w - 3)^2 by hand-fed gradients.
  Matrix w(1, 1, 0.0), g(1, 1);
  Sgd opt(0.1);
  for (int i = 0; i < 200; ++i) {
    g.at(0, 0) = 2.0 * (w.at(0, 0) - 3.0);
    opt.step({&w}, {&g});
  }
  EXPECT_NEAR(w.at(0, 0), 3.0, 1e-6);
}

TEST(Optimizer, AdamDescendsQuadratic) {
  Matrix w(1, 1, -5.0), g(1, 1);
  Adam opt(0.2);
  for (int i = 0; i < 500; ++i) {
    g.at(0, 0) = 2.0 * (w.at(0, 0) - 3.0);
    opt.step({&w}, {&g});
  }
  EXPECT_NEAR(w.at(0, 0), 3.0, 1e-3);
}

TEST(Optimizer, MlpLearnsXor) {
  util::Rng rng(13);
  Mlp mlp({2, 16, 1}, Activation::kTanh, rng);
  Adam opt(0.05);
  Matrix x(4, 2), t(4, 1);
  const double xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const double ts[4] = {0, 1, 1, 0};
  for (int r = 0; r < 4; ++r) {
    x.at(r, 0) = xs[r][0];
    x.at(r, 1) = xs[r][1];
    t.at(r, 0) = ts[r];
  }
  double loss = 1.0;
  for (int i = 0; i < 2000 && loss > 1e-3; ++i) {
    mlp.zero_grads();
    const LossResult lr = mse_loss(mlp.forward(x), t);
    loss = lr.loss;
    mlp.backward(lr.grad);
    opt.step(mlp.params(), mlp.grads());
  }
  EXPECT_LT(loss, 1e-3);
}

TEST(Optimizer, FactoryKinds) {
  EXPECT_EQ(make_optimizer("sgd", 0.1)->name(), "sgd");
  EXPECT_EQ(make_optimizer("adam", 0.1)->name(), "adam");
  EXPECT_THROW(make_optimizer("rmsprop", 0.1), std::invalid_argument);
  EXPECT_THROW(Adam(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace drlnoc::nn
