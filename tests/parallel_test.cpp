// Tests for the parallel experiment engine: the determinism contract
// (parallel == serial, bit-identical, at any thread count) and exception
// propagation from worker tasks.
#include <algorithm>
#include <atomic>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "core/trainer.h"
#include "noc/simulator.h"
#include "util/thread_pool.h"

namespace drlnoc {
namespace {

// ------------------------------------------------------------ ThreadPool ---

TEST(ThreadPool, RunsAllSubmittedTasks) {
  util::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitPropagatesTaskException) {
  util::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("worker failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, UsableAfterPropagatedException) {
  util::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("first"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(64);
  util::parallel_for(64, 8, [&hits](int i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  EXPECT_THROW(util::parallel_for(16, 4,
                                  [](int i) {
                                    if (i == 7)
                                      throw std::invalid_argument("task 7");
                                  }),
               std::invalid_argument);
}

TEST(ParallelFor, InlineWhenSingleJob) {
  // jobs=1 must run on the caller's thread (no pool spin-up).
  const std::thread::id caller = std::this_thread::get_id();
  util::parallel_for(4, 1, [caller](int) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelMap, PreservesIndexOrder) {
  const auto out =
      util::parallel_map<int>(32, 4, [](int i) { return i * i; });
  ASSERT_EQ(out.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(out[i], i * i);
}

// ------------------------------------------------- experiment determinism ---

// A small, fast environment: 4x4 mesh, 8-action space, short episodes.
core::NocEnvParams small_env_params() {
  core::NocEnvParams ep;
  ep.net.width = ep.net.height = 4;
  ep.net.seed = 42;
  ep.actions = core::ActionSpace({1, 2}, {2, 4}, {1, 3});
  ep.epoch_cycles = 128;
  ep.epochs_per_episode = 3;
  return ep;
}

void expect_identical(const core::EpisodeResult& a,
                      const core::EpisodeResult& b) {
  EXPECT_EQ(a.controller, b.controller);
  // Bit-identical, not approximately equal: the engine's contract.
  EXPECT_EQ(a.total_reward, b.total_reward);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.p95_latency, b.p95_latency);
  EXPECT_EQ(a.mean_power_mw, b.mean_power_mw);
  EXPECT_EQ(a.mean_edp, b.mean_edp);
  EXPECT_EQ(a.backlog_end, b.backlog_end);
  EXPECT_EQ(a.actions, b.actions);
}

TEST(SweepStatic, ParallelMatchesSerialElementwise) {
  const core::NocEnvParams ep = small_env_params();

  // The serial reference: one shared environment, actions in order (the
  // pre-engine implementation).
  core::NocConfigEnv env(ep);
  std::vector<core::EpisodeResult> serial;
  for (int a = 0; a < env.actions().size(); ++a) {
    core::StaticController c(env.actions(), a,
                             "static[" + env.actions().describe(a) + "]");
    serial.push_back(core::evaluate(env, c));
  }
  std::sort(serial.begin(), serial.end(),
            [](const core::EpisodeResult& x, const core::EpisodeResult& y) {
              return x.mean_edp < y.mean_edp;
            });

  const auto parallel =
      core::sweep_static_parallel(ep, core::ExperimentRunner(4));
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    expect_identical(parallel[i], serial[i]);
}

TEST(SweepStatic, InvariantUnderThreadCount) {
  const core::NocEnvParams ep = small_env_params();
  const auto j1 = core::sweep_static_parallel(ep, core::ExperimentRunner(1));
  const auto j2 = core::sweep_static_parallel(ep, core::ExperimentRunner(2));
  const auto j8 = core::sweep_static_parallel(ep, core::ExperimentRunner(8));
  ASSERT_EQ(j1.size(), j2.size());
  ASSERT_EQ(j1.size(), j8.size());
  for (std::size_t i = 0; i < j1.size(); ++i) {
    expect_identical(j2[i], j1[i]);
    expect_identical(j8[i], j1[i]);
  }
}

std::vector<noc::SweepPoint> load_curve_points() {
  std::vector<noc::SweepPoint> points;
  for (double rate : {0.02, 0.05, 0.08}) {
    noc::SweepPoint pt;
    pt.net.width = pt.net.height = 4;
    pt.net.seed = 11;
    pt.pattern = "uniform";
    pt.rate = rate;
    pt.run.warmup_cycles = 200;
    pt.run.measure_cycles = 800;
    pt.run.drain_limit = 5000;
    points.push_back(pt);
  }
  return points;
}

TEST(MeasurePoints, ParallelMatchesSerialElementwise) {
  const auto points = load_curve_points();
  const auto parallel = noc::measure_points(points, 4);
  ASSERT_EQ(parallel.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto serial = noc::measure_point(
        points[i].net, points[i].pattern, points[i].rate, points[i].run);
    EXPECT_EQ(parallel[i].saturated, serial.saturated);
    EXPECT_EQ(parallel[i].drained, serial.drained);
    EXPECT_EQ(parallel[i].offered_rate, serial.offered_rate);
    EXPECT_EQ(parallel[i].stats.avg_latency, serial.stats.avg_latency);
    EXPECT_EQ(parallel[i].stats.p95_latency, serial.stats.p95_latency);
    EXPECT_EQ(parallel[i].stats.accepted_rate, serial.stats.accepted_rate);
    EXPECT_EQ(parallel[i].stats.packets_received,
              serial.stats.packets_received);
  }
}

TEST(MeasurePoints, InvariantUnderThreadCount) {
  const auto points = load_curve_points();
  const auto j1 = noc::measure_points(points, 1);
  const auto j2 = noc::measure_points(points, 2);
  const auto j8 = noc::measure_points(points, 8);
  ASSERT_EQ(j1.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(j2[i].stats.avg_latency, j1[i].stats.avg_latency);
    EXPECT_EQ(j8[i].stats.avg_latency, j1[i].stats.avg_latency);
    EXPECT_EQ(j2[i].stats.packets_received, j1[i].stats.packets_received);
    EXPECT_EQ(j8[i].stats.packets_received, j1[i].stats.packets_received);
  }
}

TEST(EvaluateMany, DeterministicSeedsAndThreadInvariance) {
  const core::NocEnvParams ep = small_env_params();
  const core::ControllerFactory factory =
      [](const core::NocConfigEnv& env) -> std::unique_ptr<core::Controller> {
    return core::StaticController::maximal(env.actions());
  };
  const auto j1 = core::evaluate_many(ep, factory, 4,
                                      core::ExperimentRunner(1));
  const auto j4 = core::evaluate_many(ep, factory, 4,
                                      core::ExperimentRunner(4));
  ASSERT_EQ(j1.replicas.size(), 4u);
  ASSERT_EQ(j4.replicas.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    // The per-task RNG stream: replica i always runs seed base + i.
    EXPECT_EQ(j1.replicas[i].seed, ep.net.seed + i);
    EXPECT_EQ(j4.replicas[i].seed, j1.replicas[i].seed);
    expect_identical(j4.replicas[i].result, j1.replicas[i].result);
  }
  EXPECT_EQ(j4.reward.mean, j1.reward.mean);
  EXPECT_EQ(j4.reward.ci95, j1.reward.ci95);
  // Different seeds should actually produce different traffic.
  EXPECT_NE(j1.replicas[0].result.total_reward,
            j1.replicas[1].result.total_reward);
}

TEST(EvaluateMany, WorkerExceptionPropagates) {
  core::NocEnvParams ep = small_env_params();
  const core::ControllerFactory broken =
      [](const core::NocConfigEnv&) -> std::unique_ptr<core::Controller> {
    throw std::runtime_error("factory failed");
  };
  EXPECT_THROW(
      core::evaluate_many(ep, broken, 4, core::ExperimentRunner(2)),
      std::runtime_error);
}

TEST(SweepStatic, TrainerEntryPointUsesEngine) {
  // The public sweep_static(env, jobs) must agree with the engine call for
  // any jobs value.
  const core::NocEnvParams ep = small_env_params();
  core::NocConfigEnv env(ep);
  const auto via_env = core::sweep_static(env, 2);
  const auto via_engine =
      core::sweep_static_parallel(ep, core::ExperimentRunner(2));
  ASSERT_EQ(via_env.size(), via_engine.size());
  for (std::size_t i = 0; i < via_env.size(); ++i)
    expect_identical(via_env[i], via_engine[i]);
}

}  // namespace
}  // namespace drlnoc
