#include <gtest/gtest.h>

#include "noc/topology.h"
#include "noc/workload.h"

namespace drlnoc::noc {
namespace {

TEST(SteadyWorkload, ValidatesInputs) {
  Mesh2D mesh(4, 4);
  EXPECT_THROW(SteadyWorkload::make(mesh, "uniform", 1.5),
               std::invalid_argument);
  EXPECT_THROW(SteadyWorkload::make(mesh, "uniform", -0.1),
               std::invalid_argument);
  EXPECT_NO_THROW(SteadyWorkload::make(mesh, "uniform", 0.0));
}

TEST(SteadyWorkload, GeneratesAtConfiguredRate) {
  Mesh2D mesh(4, 4);
  SteadyWorkload w = SteadyWorkload::make(mesh, "uniform", 0.2);
  util::Rng rng(1);
  int fired = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    if (w.generate(0, 0.0, rng) != kInvalidNode) ++fired;
  }
  EXPECT_NEAR(fired / static_cast<double>(trials), 0.2, 0.01);
  w.set_rate(0.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(w.generate(0, 0.0, rng), kInvalidNode);
}

TEST(SteadyWorkload, NameReflectsPattern) {
  Mesh2D mesh(4, 4);
  SteadyWorkload w = SteadyWorkload::make(mesh, "tornado", 0.1);
  EXPECT_NE(w.name().find("tornado"), std::string::npos);
}

TEST(PhasedWorkload, ValidatesPhases) {
  Mesh2D mesh(4, 4);
  EXPECT_THROW(PhasedWorkload(mesh, {}), std::invalid_argument);
  EXPECT_THROW(PhasedWorkload(mesh, {{"uniform", 0.1, 0.0, "bernoulli"}}),
               std::invalid_argument);
  EXPECT_THROW(PhasedWorkload(mesh, {{"warp", 0.1, 10.0, "bernoulli"}}),
               std::invalid_argument);
}

TEST(PhasedWorkload, OffsetShiftsPhaseLookup) {
  Mesh2D mesh(4, 4);
  PhasedWorkload w(mesh, {{"uniform", 0.05, 100.0, "bernoulli"},
                          {"hotspot", 0.1, 100.0, "bernoulli"}});
  EXPECT_EQ(w.phase_index(0.0), 0u);
  w.set_start_offset(100.0);
  EXPECT_EQ(w.phase_index(0.0), 1u);
  EXPECT_EQ(w.phase_index(100.0), 0u);  // wraps
  w.set_start_offset(150.0);
  EXPECT_EQ(w.phase_index(0.0), 1u);
  EXPECT_EQ(w.phase_index(49.9), 1u);
  EXPECT_EQ(w.phase_index(50.0), 0u);
}

TEST(PhasedWorkload, RateFollowsActivePhase) {
  Mesh2D mesh(4, 4);
  PhasedWorkload w(mesh, {{"uniform", 0.0, 1000.0, "bernoulli"},
                          {"uniform", 0.5, 1000.0, "bernoulli"}});
  util::Rng rng(3);
  int fired_phase0 = 0, fired_phase1 = 0;
  for (int i = 0; i < 2000; ++i) {
    if (w.generate(0, 500.0, rng) != kInvalidNode) ++fired_phase0;
    if (w.generate(0, 1500.0, rng) != kInvalidNode) ++fired_phase1;
  }
  EXPECT_EQ(fired_phase0, 0);
  EXPECT_NEAR(fired_phase1 / 2000.0, 0.5, 0.05);
}

TEST(PhasedWorkload, StandardPhasesSaneOnMeshAndRing) {
  Mesh2D mesh(4, 4);
  const auto mesh_phases = PhasedWorkload::standard_phases(mesh);
  ASSERT_EQ(mesh_phases.size(), 4u);
  EXPECT_EQ(mesh_phases[3].pattern, "transpose");  // square mesh
  for (const Phase& ph : mesh_phases) {
    EXPECT_GT(ph.duration_core_cycles, 0.0);
    EXPECT_GE(ph.rate, 0.0);
    EXPECT_LE(ph.rate, 0.2);
  }
  Ring ring(8);
  const auto ring_phases = PhasedWorkload::standard_phases(ring);
  EXPECT_EQ(ring_phases[3].pattern, "uniform");  // no transpose on a ring
  EXPECT_NO_THROW(PhasedWorkload(ring, ring_phases));
}

TEST(PhasedWorkload, ScaleMultipliesRates) {
  Mesh2D mesh(4, 4);
  const auto base = PhasedWorkload::standard_phases(mesh, 1.0);
  const auto scaled = PhasedWorkload::standard_phases(mesh, 0.5);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(scaled[i].rate, 0.5 * base[i].rate, 1e-12);
  }
}

}  // namespace
}  // namespace drlnoc::noc
