#include <gtest/gtest.h>

#include "noc/network.h"
#include "noc/topology.h"
#include "noc/workload.h"

namespace drlnoc::noc {
namespace {

TEST(SteadyWorkload, ValidatesInputs) {
  Mesh2D mesh(4, 4);
  EXPECT_THROW(SteadyWorkload::make(mesh, "uniform", 1.5),
               std::invalid_argument);
  EXPECT_THROW(SteadyWorkload::make(mesh, "uniform", -0.1),
               std::invalid_argument);
  EXPECT_NO_THROW(SteadyWorkload::make(mesh, "uniform", 0.0));
}

TEST(SteadyWorkload, GeneratesAtConfiguredRate) {
  Mesh2D mesh(4, 4);
  SteadyWorkload w = SteadyWorkload::make(mesh, "uniform", 0.2);
  util::Rng rng(1);
  int fired = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    if (w.generate(0, 0.0, rng) != kInvalidNode) ++fired;
  }
  EXPECT_NEAR(fired / static_cast<double>(trials), 0.2, 0.01);
  w.set_rate(0.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(w.generate(0, 0.0, rng), kInvalidNode);
}

TEST(SteadyWorkload, NameReflectsPattern) {
  Mesh2D mesh(4, 4);
  SteadyWorkload w = SteadyWorkload::make(mesh, "tornado", 0.1);
  EXPECT_NE(w.name().find("tornado"), std::string::npos);
}

TEST(PhasedWorkload, ValidatesPhases) {
  Mesh2D mesh(4, 4);
  EXPECT_THROW(PhasedWorkload(mesh, {}), std::invalid_argument);
  EXPECT_THROW(PhasedWorkload(mesh, {{"uniform", 0.1, 0.0, "bernoulli"}}),
               std::invalid_argument);
  EXPECT_THROW(PhasedWorkload(mesh, {{"warp", 0.1, 10.0, "bernoulli"}}),
               std::invalid_argument);
}

TEST(PhasedWorkload, OffsetShiftsPhaseLookup) {
  Mesh2D mesh(4, 4);
  PhasedWorkload w(mesh, {{"uniform", 0.05, 100.0, "bernoulli"},
                          {"hotspot", 0.1, 100.0, "bernoulli"}});
  EXPECT_EQ(w.phase_index(0.0), 0u);
  w.set_start_offset(100.0);
  EXPECT_EQ(w.phase_index(0.0), 1u);
  EXPECT_EQ(w.phase_index(100.0), 0u);  // wraps
  w.set_start_offset(150.0);
  EXPECT_EQ(w.phase_index(0.0), 1u);
  EXPECT_EQ(w.phase_index(49.9), 1u);
  EXPECT_EQ(w.phase_index(50.0), 0u);
}

TEST(PhasedWorkload, RateFollowsActivePhase) {
  Mesh2D mesh(4, 4);
  PhasedWorkload w(mesh, {{"uniform", 0.0, 1000.0, "bernoulli"},
                          {"uniform", 0.5, 1000.0, "bernoulli"}});
  util::Rng rng(3);
  int fired_phase0 = 0, fired_phase1 = 0;
  for (int i = 0; i < 2000; ++i) {
    if (w.generate(0, 500.0, rng) != kInvalidNode) ++fired_phase0;
    if (w.generate(0, 1500.0, rng) != kInvalidNode) ++fired_phase1;
  }
  EXPECT_EQ(fired_phase0, 0);
  EXPECT_NEAR(fired_phase1 / 2000.0, 0.5, 0.05);
}

TEST(PhasedWorkload, StandardPhasesSaneOnMeshAndRing) {
  Mesh2D mesh(4, 4);
  const auto mesh_phases = PhasedWorkload::standard_phases(mesh);
  ASSERT_EQ(mesh_phases.size(), 4u);
  EXPECT_EQ(mesh_phases[3].pattern, "transpose");  // square mesh
  for (const Phase& ph : mesh_phases) {
    EXPECT_GT(ph.duration_core_cycles, 0.0);
    EXPECT_GE(ph.rate, 0.0);
    EXPECT_LE(ph.rate, 0.2);
  }
  Ring ring(8);
  const auto ring_phases = PhasedWorkload::standard_phases(ring);
  EXPECT_EQ(ring_phases[3].pattern, "uniform");  // no transpose on a ring
  EXPECT_NO_THROW(PhasedWorkload(ring, ring_phases));
}

TEST(PhasedWorkload, MultiLoopWraparound) {
  Mesh2D mesh(4, 4);
  PhasedWorkload w(mesh, {{"uniform", 0.0, 100.0, "bernoulli"},
                          {"uniform", 0.5, 60.0, "bernoulli"}});
  ASSERT_DOUBLE_EQ(w.total_duration(), 160.0);
  // Several full loops, probing both phases each time around.
  for (int loop = 0; loop < 5; ++loop) {
    const double base = 160.0 * loop;
    EXPECT_EQ(w.phase_index(base), 0u) << "loop " << loop;
    EXPECT_EQ(w.phase_index(base + 99.9), 0u) << "loop " << loop;
    EXPECT_EQ(w.phase_index(base + 100.0), 1u) << "loop " << loop;
    EXPECT_EQ(w.phase_index(base + 159.9), 1u) << "loop " << loop;
  }
  // generate() must follow the wrapped phase, not the raw time: the silent
  // phase stays silent on every loop.
  util::Rng rng(5);
  int fired_silent = 0, fired_active = 0;
  for (int loop = 1; loop <= 20; ++loop) {
    const double base = 160.0 * loop;
    for (int i = 0; i < 50; ++i) {
      if (w.generate(0, base + 10.0, rng) != kInvalidNode) ++fired_silent;
      if (w.generate(0, base + 120.0, rng) != kInvalidNode) ++fired_active;
    }
  }
  EXPECT_EQ(fired_silent, 0);
  EXPECT_NEAR(fired_active / 1000.0, 0.5, 0.05);
  // Offset + wraparound compose: offset past several loops lands mid-cycle.
  w.set_start_offset(160.0 * 3 + 100.0);
  EXPECT_EQ(w.phase_index(0.0), 1u);
  EXPECT_EQ(w.phase_index(60.0), 0u);
}

TEST(PhasedWorkload, PerPhaseFlitsPerPacketOverride) {
  Mesh2D mesh(4, 4);
  Phase control{"uniform", 0.1, 100.0, "bernoulli"};
  control.flits_per_packet = 1;  // short control packets
  Phase data{"uniform", 0.1, 100.0, "bernoulli"};
  data.flits_per_packet = 9;  // long data packets
  Phase defaulted{"uniform", 0.1, 100.0, "bernoulli"};
  ASSERT_EQ(defaulted.flits_per_packet, 0);  // network default

  PhasedWorkload w(mesh, {control, data, defaulted});
  EXPECT_EQ(w.packet_length(0.0), 1);
  EXPECT_EQ(w.packet_length(150.0), 9);
  EXPECT_EQ(w.packet_length(250.0), 0);
  // Wraparound keeps the per-phase override.
  EXPECT_EQ(w.packet_length(300.0), 1);
  EXPECT_EQ(w.packet_length(460.0), 9);

  // End to end: the per-packet injector hook must deliver the override to
  // the NIC — packets generated in the data phase carry 9 flits.
  NetworkParams p;
  p.width = p.height = 4;
  p.flits_per_packet = 4;
  Network net(p);
  PhasedWorkload driver(net.topology(), {control, data, defaulted});
  for (int i = 0; i < 700; ++i) net.step(&driver);
  while (!net.drained()) net.step(nullptr);
  int seen[10] = {};
  for (const PacketRecord& rec : net.drain_records()) {
    ASSERT_LT(rec.length, 10);
    ++seen[rec.length];
    const std::size_t phase = driver.phase_index(rec.inject_time);
    const int expected = phase == 0 ? 1 : (phase == 1 ? 9 : 4);
    EXPECT_EQ(rec.length, expected)
        << "packet injected at " << rec.inject_time << " in phase " << phase;
  }
  EXPECT_GT(seen[1], 0);  // control phase
  EXPECT_GT(seen[9], 0);  // data phase
  EXPECT_GT(seen[4], 0);  // defaulted phase -> network flits_per_packet
}

TEST(PhasedWorkload, ScaleMultipliesRates) {
  Mesh2D mesh(4, 4);
  const auto base = PhasedWorkload::standard_phases(mesh, 1.0);
  const auto scaled = PhasedWorkload::standard_phases(mesh, 0.5);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(scaled[i].rate, 0.5 * base[i].rate, 1e-12);
  }
}

}  // namespace
}  // namespace drlnoc::noc
