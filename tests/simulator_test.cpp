#include <gtest/gtest.h>

#include "noc/simulator.h"
#include "noc/workload.h"

namespace drlnoc::noc {
namespace {

NetworkParams mesh4(std::uint64_t seed = 1) {
  NetworkParams p;
  p.width = p.height = 4;
  p.seed = seed;
  return p;
}

TEST(SteadyState, LowLoadIsUnsaturatedAndDrains) {
  const SteadyResult r = measure_point(mesh4(), "uniform", 0.03);
  EXPECT_FALSE(r.saturated);
  EXPECT_TRUE(r.drained);
  EXPECT_NEAR(r.stats.offered_rate, 0.03, 0.008);
  EXPECT_NEAR(r.stats.accepted_rate, r.stats.offered_rate, 0.01);
  EXPECT_GT(r.stats.avg_latency, 5.0);
  EXPECT_LT(r.stats.avg_latency, 40.0);
}

TEST(SteadyState, OverloadIsDetectedAsSaturated) {
  SteadyRunParams run;
  run.drain_limit = 30000;
  const SteadyResult r = measure_point(mesh4(), "uniform", 0.30, run);
  EXPECT_TRUE(r.saturated);
  // Accepted throughput plateaus well below offered.
  EXPECT_LT(r.stats.accepted_rate, 0.22);
}

TEST(SteadyState, AcceptedNeverExceedsOfferedSignificantly) {
  for (double rate : {0.02, 0.06, 0.10, 0.20}) {
    const SteadyResult r = measure_point(mesh4(7), "uniform", rate);
    EXPECT_LE(r.stats.accepted_rate, r.stats.offered_rate + 0.01) << rate;
  }
}

TEST(SteadyState, LatencyMonotoneInLoad) {
  double prev = 0.0;
  for (double rate : {0.02, 0.06, 0.10, 0.14}) {
    const SteadyResult r = measure_point(mesh4(9), "uniform", rate);
    EXPECT_GT(r.stats.avg_latency, prev) << rate;
    prev = r.stats.avg_latency;
  }
}

TEST(SteadyState, P95AtLeastMean) {
  const SteadyResult r = measure_point(mesh4(11), "uniform", 0.10);
  EXPECT_GE(r.stats.p95_latency, r.stats.avg_latency * 0.9);
  EXPECT_GE(r.stats.max_latency, r.stats.p95_latency);
}

TEST(SteadyState, DeterministicForSeed) {
  auto run = [] {
    const SteadyResult r = measure_point(mesh4(21), "transpose", 0.08);
    return std::tuple{r.stats.avg_latency, r.stats.packets_received,
                      r.stats.dynamic_energy_pj};
  };
  EXPECT_EQ(run(), run());
}

TEST(SteadyState, DifferentSeedsGiveDifferentTraces) {
  const SteadyResult a = measure_point(mesh4(1), "uniform", 0.08);
  const SteadyResult b = measure_point(mesh4(2), "uniform", 0.08);
  EXPECT_NE(a.stats.packets_received, b.stats.packets_received);
}

TEST(SteadyState, WarmupPacketsExcludedFromLatencyStats) {
  // With a warmup much longer than measurement, measured-packet count is
  // bounded by what the measurement window can generate.
  NetworkParams p = mesh4(5);
  Network net(p);
  SteadyWorkload w = SteadyWorkload::make(net.topology(), "uniform", 0.05);
  SteadyRunParams run;
  run.warmup_cycles = 6000;
  run.measure_cycles = 1000;
  const SteadyResult r = run_steady_state(net, w, run);
  // ~16 nodes * 1000 cycles * 0.05 = ~800 generated in-window.
  EXPECT_LE(r.stats.packets_offered, 1100u);
  EXPECT_GE(r.stats.packets_offered, 500u);
}

TEST(SteadyState, HopCountsMatchPattern) {
  // Neighbor traffic: 3 of 4 sources per row are 1 hop away, the row-wrap
  // source is 3 mesh hops -> mean 1.5 inter-router hops = 2.5 traversals.
  const SteadyResult r = measure_point(mesh4(13), "neighbor", 0.05);
  EXPECT_NEAR(r.stats.avg_hops, 2.5, 0.02);
  // Uniform on 4x4: mean Manhattan distance over distinct pairs is 8/3
  // -> 8/3 + 1 ~= 3.67 traversals.
  const SteadyResult u = measure_point(mesh4(13), "uniform", 0.05);
  EXPECT_NEAR(u.stats.avg_hops, 8.0 / 3.0 + 1.0, 0.12);
}

TEST(SteadyState, EnergyBalancesAcrossDvfs) {
  // Same work at lower DVFS: dynamic energy drops (V^2), static grows
  // (longer wall time), total power strictly lower.
  auto at_level = [](int level) {
    NetworkParams p = mesh4(15);
    p.initial_config.dvfs_level = level;
    return measure_point(p, "uniform", 0.02).stats;
  };
  const EpochStats hi = at_level(3);
  const EpochStats lo = at_level(1);
  EXPECT_LT(lo.dynamic_energy_pj / lo.flits_ejected,
            hi.dynamic_energy_pj / hi.flits_ejected);
  EXPECT_LT(lo.avg_power_mw(2.0), hi.avg_power_mw(2.0));
}

}  // namespace
}  // namespace drlnoc::noc
