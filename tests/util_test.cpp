#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/config.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace drlnoc::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowCoversRangeUniformly) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.below(10)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits, 3000, 200);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(acc.mean(), 2.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 3.0, 0.1);
}

TEST(Rng, WeightedSamplingProportional) {
  Rng rng(13);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.weighted(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0], 10000, 600);
  EXPECT_NEAR(counts[1], 30000, 900);
  EXPECT_NEAR(counts[3], 60000, 1000);
}

TEST(Rng, WeightedRejectsDegenerate) {
  Rng rng(1);
  std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(rng.weighted(zero), std::invalid_argument);
  std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(rng.weighted(negative), std::invalid_argument);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(21);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1() == c2()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 1.25, 1e-12);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
}

TEST(Accumulator, EmptyIsSafe) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesCombined) {
  Rng rng(17);
  Accumulator a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal();
    if (i % 2) a.add(v);
    else b.add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma e(0.5);
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e.value(7.0), 7.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.add(0.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.2);
  for (int i = 0; i < 200; ++i) e.add(3.0);
  EXPECT_NEAR(e.value(), 3.0, 1e-9);
}

TEST(Histogram, PercentilesOfUniformData) {
  Histogram h(100.0, 100);
  for (int i = 0; i < 10000; ++i) h.add(i % 100 + 0.5);
  EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.percentile(0.95), 95.0, 2.0);
  EXPECT_NEAR(h.mean(), 50.0, 1.0);
}

TEST(Histogram, OverflowBucket) {
  Histogram h(10.0, 10);
  h.add(5.0);
  h.add(50.0);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h(10.0, 10);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, SingleSamplePercentiles) {
  // With n = 1 every quantile lands in the sample's bucket; interpolation
  // must stay within that bucket's [lo, hi) span.
  Histogram h(100.0, 100);
  h.add(42.5);  // bucket [42, 43)
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    const double p = h.percentile(q);
    EXPECT_GE(p, 42.0) << "q=" << q;
    EXPECT_LE(p, 43.0) << "q=" << q;
  }
}

TEST(Histogram, AllEqualSamplesCollapseEveryPercentile) {
  Histogram h(100.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(7.25);  // bucket [7, 8)
  const double p50 = h.percentile(0.5);
  const double p95 = h.percentile(0.95);
  const double p99 = h.percentile(0.99);
  EXPECT_GE(p50, 7.0);
  EXPECT_LE(p99, 8.0);
  // A degenerate distribution has no spread: p50/p95/p99 agree to within
  // one bucket width.
  EXPECT_NEAR(p50, p95, 1.0);
  EXPECT_NEAR(p95, p99, 1.0);
}

TEST(Histogram, P95BoundaryInterpolation) {
  // 95 of 100 samples in bucket [0,1), 5 in bucket [9,10): the p95 target
  // (95 samples) is satisfied exactly at the first bucket's upper edge.
  Histogram h(10.0, 10);
  for (int i = 0; i < 95; ++i) h.add(0.5);
  for (int i = 0; i < 5; ++i) h.add(9.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.95), 1.0);
  // One sample past the boundary pushes p95 into the top bucket.
  h.add(9.5);
  EXPECT_GE(h.percentile(0.95), 9.0);
}

TEST(Histogram, PercentileClampsOutOfRangeQuantiles) {
  Histogram h(10.0, 10);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.percentile(-0.5), h.percentile(0.0));
  EXPECT_DOUBLE_EQ(h.percentile(1.5), h.percentile(1.0));
}

TEST(LogLevelParsing, AcceptsKnownNamesCaseInsensitively) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), std::nullopt);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
}

TEST(LogLevelParsing, InitLogAppliesOverrideAndRestores) {
  const LogLevel before = log_level();
  EXPECT_TRUE(init_log("debug"));
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  EXPECT_FALSE(init_log("not-a-level"));
  set_log_level(before);
}

TEST(Config, ParsesArgs) {
  const char* argv[] = {"prog", "width=8", "rate=0.1", "verbose=true"};
  Config cfg = Config::from_args(4, argv);
  EXPECT_EQ(cfg.get("width", 0), 8);
  EXPECT_DOUBLE_EQ(cfg.get("rate", 0.0), 0.1);
  EXPECT_TRUE(cfg.get("verbose", false));
  EXPECT_EQ(cfg.get("missing", 42), 42);
}

TEST(Config, RejectsMalformedArg) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Config::from_args(2, argv), std::invalid_argument);
}

TEST(Config, DashedFlagValueMayContainEquals) {
  // `--workload trace=app.drltrc`: the flag's value is the whole next token.
  const char* argv[] = {"prog", "--workload", "trace=app.drltrc", "--jobs",
                        "4"};
  Config cfg = Config::from_args(5, argv);
  EXPECT_EQ(cfg.get("workload", std::string{}), "trace=app.drltrc");
  EXPECT_EQ(cfg.get("jobs", 0), 4);
}

TEST(Config, ParsesTextWithComments) {
  Config cfg = Config::from_text("a=1\n# comment\n b = hello # trailing\n");
  EXPECT_EQ(cfg.get("a", 0), 1);
  EXPECT_EQ(cfg.get("b", std::string{}), "hello");
  EXPECT_EQ(cfg.keys().size(), 2u);
}

TEST(Config, BooleanParsing) {
  Config cfg = Config::from_text("x=on\ny=No\nz=maybe");
  EXPECT_TRUE(cfg.get("x", false));
  EXPECT_FALSE(cfg.get("y", true));
  EXPECT_THROW(cfg.get("z", false), std::invalid_argument);
}

// Captures the rejection message so each strict-parsing test can pin the
// exact wording users see for a bad flag.
template <typename Fn>
std::string rejection(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(Config, RejectsTrailingGarbageOnNumbers) {
  // std::stod("0.1x") silently returned 0.1; a typo'd unit suffix must be
  // a hard error, not a quietly truncated value.
  Config cfg = Config::from_text("rate=0.1x\njobs=8x\ndepth=4.0");
  EXPECT_EQ(rejection([&] { cfg.get("rate", 0.0); }),
            "bad number for rate: 0.1x (trailing characters)");
  EXPECT_EQ(rejection([&] { cfg.get("jobs", 0); }),
            "bad integer for jobs: 8x (trailing characters)");
  // "4.0" is a number but not an integer.
  EXPECT_EQ(rejection([&] { cfg.get("depth", 0); }),
            "bad integer for depth: 4.0 (trailing characters)");
}

TEST(Config, RejectsOverflow) {
  Config cfg =
      Config::from_text("wide=99999999999999999999999\nnarrow=3000000000\n"
                        "huge=1e999");
  EXPECT_EQ(rejection([&] { cfg.get("wide", 0LL); }),
            "bad integer for wide: 99999999999999999999999 (out of range)");
  // Fits in long long but not int: the int overload must not truncate.
  EXPECT_EQ(cfg.get("narrow", 0LL), 3000000000LL);
  EXPECT_EQ(rejection([&] { cfg.get("narrow", 0); }),
            "bad integer for narrow: 3000000000 (out of range)");
  EXPECT_EQ(rejection([&] { cfg.get("huge", 0.0); }),
            "bad number for huge: 1e999 (out of range)");
}

TEST(Config, RejectsNaNButKeepsInfinity) {
  Config cfg = Config::from_text("bad=nan\nstop=inf\nneg=-inf");
  EXPECT_EQ(rejection([&] { cfg.get("bad", 0.0); }),
            "bad number for bad: nan (NaN is never a valid knob value)");
  // Open-ended tenant stop times serialize as inf; it must stay parseable.
  EXPECT_TRUE(std::isinf(cfg.get("stop", 0.0)));
  EXPECT_LT(cfg.get("neg", 0.0), 0.0);
}

TEST(Config, RejectsEmptyAndSignOnlyValues) {
  Config cfg = Config::from_text("a=+\nb=-");
  EXPECT_EQ(rejection([&] { cfg.get("a", 0); }), "bad integer for a: +");
  EXPECT_EQ(rejection([&] { cfg.get("b", 0.0); }), "bad number for b: -");
  // Leading '+' on an otherwise valid number is accepted (shell habit).
  Config plus = Config::from_text("r=+0.5\nn=+12");
  EXPECT_DOUBLE_EQ(plus.get("r", 0.0), 0.5);
  EXPECT_EQ(plus.get("n", 0), 12);
}

TEST(Table, RowReturnsReferenceIntoTable) {
  // Regression: `util::Table& row = t.row()` must append to the table
  // itself; binding to `auto` (a copy) once silently produced empty tables.
  Table t({"a", "b"});
  Table& row = t.row();
  row.cell("x");
  row.cell("y");
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "a,b\nx,y\n");
}

TEST(Table, RendersAlignedAndCsv) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 2);
  t.row().cell("b").cell(static_cast<long long>(7));
  std::ostringstream text, csv;
  t.print(text);
  t.print_csv(csv);
  EXPECT_NE(text.str().find("alpha"), std::string::npos);
  EXPECT_NE(text.str().find("1.50"), std::string::npos);
  EXPECT_EQ(csv.str(), "name,value\nalpha,1.50\nb,7\n");
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace drlnoc::util
