// Trace subsystem tests: format round-trips, validation, dependency-gated
// task-graph replay (congestion feeds back into injection timing), the
// record -> replay bit-exactness loop, generators, and determinism.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

#include "core/env_noc.h"
#include "noc/network.h"
#include "noc/workload.h"
#include "trace/generators.h"
#include "trace/recorder.h"
#include "trace/trace_io.h"
#include "trace/trace_workload.h"

namespace drlnoc::trace {
namespace {

Trace small_trace() {
  Trace t;
  t.nodes = 16;
  t.default_length = 4;
  t.records = {
      {1, 0, 5, 0.0, 4, {}},
      {2, 1, 5, 2.5, 8, {}},
      {3, 5, 0, 10.0, 0, {1, 2}},
      {4, 5, 1, 3.0, 2, {3}},
  };
  return t;
}

// --- format round-trips ----------------------------------------------------

TEST(TraceIo, TextRoundTripIsExact) {
  const Trace t = small_trace();
  std::stringstream ss;
  TraceWriter::write_text(ss, t);
  EXPECT_EQ(TraceReader::read_text(ss), t);
}

TEST(TraceIo, TextRoundTripsAwkwardDoubles) {
  Trace t = small_trace();
  t.records[1].time = 0.1;              // not exactly representable
  t.records[2].time = 1e9 + 1.0 / 3.0;  // needs full precision
  std::stringstream ss;
  TraceWriter::write_text(ss, t);
  const Trace back = TraceReader::read_text(ss);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.records[1].time),
            std::bit_cast<std::uint64_t>(t.records[1].time));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.records[2].time),
            std::bit_cast<std::uint64_t>(t.records[2].time));
}

TEST(TraceIo, BinaryRoundTripIsExact) {
  const Trace t = small_trace();
  std::stringstream ss;
  TraceWriter::write_binary(ss, t);
  EXPECT_EQ(TraceReader::read_binary(ss), t);
}

TEST(TraceIo, BinaryRejectsCorruptInput) {
  std::stringstream bad_magic("nope, not a trace");
  EXPECT_THROW(TraceReader::read_binary(bad_magic), std::runtime_error);

  std::stringstream ss;
  TraceWriter::write_binary(ss, small_trace());
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(TraceReader::read_binary(truncated), std::runtime_error);
}

TEST(TraceIo, TextRejectsMalformedInput) {
  std::stringstream no_header("nodes 4\n1 0 1 0 4\n");
  EXPECT_THROW(TraceReader::read_text(no_header), std::runtime_error);
  std::stringstream bad_record("drltrc 1\nnodes 4\n1 0 oops\n");
  EXPECT_THROW(TraceReader::read_text(bad_record), std::runtime_error);
  // Deps must be one comma-separated token; space-separated deps would
  // otherwise be silently truncated to the first id.
  std::stringstream spaced_deps(
      "drltrc 1\nnodes 4\n1 0 1 0 4\n2 1 0 0 4\n3 0 1 5 4 1 2\n");
  EXPECT_THROW(TraceReader::read_text(spaced_deps), std::runtime_error);
}

TEST(TraceIo, TruncationNamesRecordIndex) {
  std::stringstream ss;
  TraceWriter::write_binary(ss, small_trace());
  const std::string full = ss.str();

  // Cut inside record 2 (header is 32 bytes, each record 32 bytes).
  std::stringstream mid_record(full.substr(0, 32 + 32 * 2 + 7));
  try {
    TraceReader::read_binary(mid_record);
    FAIL() << "truncated stream accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("ends inside record 2"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("declares 4 records"),
              std::string::npos)
        << e.what();
  }

  // Cut inside the dependency table (small_trace has 3 dep entries).
  std::stringstream mid_deps(full.substr(0, full.size() - 4));
  try {
    TraceReader::read_binary(mid_deps);
    FAIL() << "truncated dependency table accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("3 dependency entries"),
              std::string::npos)
        << e.what();
  }

  // A header shorter than 32 bytes is its own diagnostic.
  std::stringstream short_header(full.substr(0, 16));
  try {
    TraceReader::read_binary(short_header);
    FAIL() << "truncated header accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated header"),
              std::string::npos)
        << e.what();
  }
}

TEST(TraceIo, TruncatedFileErrorNamesFile) {
  const std::string path = ::testing::TempDir() + "trace_trunc.drltrb";
  std::stringstream ss;
  TraceWriter::write_binary(ss, small_trace());
  const std::string full = ss.str();
  {
    std::ofstream out(path, std::ios::binary);
    out.write(full.data(), static_cast<std::streamsize>(full.size() / 2));
  }
  try {
    TraceReader::read_file(path);
    FAIL() << "truncated file accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("ends inside record"), std::string::npos) << what;
  }
}

TEST(TraceIo, FileRoundTripBothFormats) {
  const Trace t = small_trace();
  const std::string text_path = ::testing::TempDir() + "trace_test.drltrc";
  const std::string bin_path = ::testing::TempDir() + "trace_test.drltrb";
  TraceWriter::write_file(text_path, t);
  TraceWriter::write_file(bin_path, t);
  EXPECT_EQ(TraceReader::read_file(text_path), t);
  EXPECT_EQ(TraceReader::read_file(bin_path), t);
}

// --- validation ------------------------------------------------------------

TEST(TraceValidate, CatchesStructuralErrors) {
  Trace t = small_trace();
  EXPECT_NO_THROW(t.validate());

  Trace dup = small_trace();
  dup.records[1].id = 1;
  EXPECT_THROW(dup.validate(), std::invalid_argument);

  Trace fwd = small_trace();
  fwd.records[0].deps = {4};  // forward reference: DAG order violated
  EXPECT_THROW(fwd.validate(), std::invalid_argument);

  Trace self_send = small_trace();
  self_send.records[0].dst = self_send.records[0].src;
  EXPECT_THROW(self_send.validate(), std::invalid_argument);

  Trace range = small_trace();
  range.records[0].dst = 16;
  EXPECT_THROW(range.validate(), std::invalid_argument);

  Trace neg_time = small_trace();
  neg_time.records[0].time = -1.0;
  EXPECT_THROW(neg_time.validate(), std::invalid_argument);
}

TEST(TraceSummaryTest, CountsShape) {
  const TraceSummary s = small_trace().summary();
  EXPECT_EQ(s.records, 4u);
  EXPECT_EQ(s.roots, 2u);
  EXPECT_EQ(s.dep_edges, 3u);
  EXPECT_DOUBLE_EQ(s.span, 2.5);
  EXPECT_EQ(s.total_flits, 4u + 8u + 4u + 2u);  // length 0 -> default 4
}

// --- timed replay ----------------------------------------------------------

std::vector<noc::PacketRecord> replay_records(const noc::NetworkParams& p,
                                              TraceWorkload& w,
                                              std::uint64_t limit = 200000) {
  noc::Network net(p);
  run_trace_replay(net, w, limit);
  return net.drain_records();
}

TEST(TraceWorkloadTest, TimedReplayHitsExactTicks) {
  Trace t;
  t.nodes = 16;
  t.records = {{1, 0, 5, 10.0, 4, {}},
               {2, 3, 7, 20.0, 4, {}},
               {3, 3, 7, 20.25, 4, {}}};  // fractional: next tick (21)

  noc::NetworkParams p;
  p.width = p.height = 4;
  TraceWorkload w(t);
  const auto records = replay_records(p, w);
  ASSERT_EQ(records.size(), 3u);
  // drain_records is in completion order; key by packet id (== trace order
  // here because ids are assigned in injection order).
  double inject_of[4] = {};
  for (const auto& r : records) {
    ASSERT_GE(r.packet_id, 1u);
    ASSERT_LE(r.packet_id, 3u);
    inject_of[r.packet_id] = r.inject_time;
  }
  EXPECT_DOUBLE_EQ(inject_of[1], 10.0);
  EXPECT_DOUBLE_EQ(inject_of[2], 20.0);
  EXPECT_DOUBLE_EQ(inject_of[3], 21.0);
}

TEST(TraceWorkloadTest, RateScaleCompressesReleases) {
  Trace t;
  t.nodes = 16;
  t.records = {{1, 0, 5, 10.0, 4, {}}, {2, 1, 6, 30.0, 4, {}}};
  noc::NetworkParams p;
  p.width = p.height = 4;
  TraceWorkloadParams tw;
  tw.rate_scale = 2.0;
  TraceWorkload w(t, tw);
  const auto records = replay_records(p, w);
  ASSERT_EQ(records.size(), 2u);
  for (const auto& r : records) {
    EXPECT_DOUBLE_EQ(r.inject_time, r.packet_id == 1 ? 5.0 : 15.0);
  }
}

TEST(TraceWorkloadTest, RejectsNonpositiveRateScale) {
  // A zero/negative/non-finite rate scale would turn release times into
  // inf/NaN; the constructor must refuse it with a clear error instead.
  const Trace t = small_trace();
  for (const double bad : {0.0, -1.0,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()}) {
    TraceWorkloadParams tw;
    tw.rate_scale = bad;
    EXPECT_THROW(TraceWorkload(t, tw), std::invalid_argument) << bad;
  }
}

TEST(TraceEnv, RejectsNonpositiveTraceRateScale) {
  core::NocEnvParams ep;
  ep.net.width = ep.net.height = 4;
  ep.trace = std::make_shared<const Trace>(small_trace());
  ep.trace_rate_scale = 0.0;
  EXPECT_THROW(core::NocConfigEnv{ep}, std::invalid_argument);
  ep.trace_rate_scale = -2.0;
  EXPECT_THROW(core::NocConfigEnv{ep}, std::invalid_argument);
}

TEST(TraceWorkloadTest, PerSourceQueueDrainsOnePerTick) {
  // Three same-tick releases from one source: emitted on consecutive ticks,
  // in declaration order.
  Trace t;
  t.nodes = 16;
  t.records = {{1, 0, 5, 4.0, 1, {}},
               {2, 0, 6, 4.0, 1, {}},
               {3, 0, 7, 4.0, 1, {}}};
  noc::NetworkParams p;
  p.width = p.height = 4;
  TraceWorkload w(t);
  const auto records = replay_records(p, w);
  ASSERT_EQ(records.size(), 3u);
  for (const auto& r : records) {
    EXPECT_DOUBLE_EQ(r.inject_time, 3.0 + static_cast<double>(r.packet_id));
  }
}

// --- dependency gating -----------------------------------------------------

TEST(TraceWorkloadTest, DependentNeverInjectsBeforeDelivery) {
  Trace t;
  t.nodes = 16;
  t.records = {{1, 0, 15, 0.0, 8, {}},        // long diagonal packet
               {2, 15, 0, 5.0, 4, {1}},       // reply, 5 cycles of compute
               {3, 7, 8, 2.0, 4, {1, 2}}};    // fan-in on both
  noc::NetworkParams p;
  p.width = p.height = 4;
  TraceWorkload w(t);
  noc::Network net(p);
  const auto result = run_trace_replay(net, w, 200000);
  EXPECT_TRUE(result.completed);
  const auto records = net.drain_records();
  ASSERT_EQ(records.size(), 3u);
  const noc::PacketRecord* by_id[4] = {};
  for (const auto& r : records) by_id[r.packet_id] = &r;
  ASSERT_TRUE(by_id[1] && by_id[2] && by_id[3]);
  // The reply waits for delivery plus its compute delay.
  EXPECT_GE(by_id[2]->inject_time, by_id[1]->eject_time + 5.0);
  // The fan-in waits for the *latest* of its dependencies.
  EXPECT_GE(by_id[3]->inject_time, by_id[2]->eject_time + 2.0);
}

TEST(TraceWorkloadTest, CongestionShiftsDependentInjection) {
  // The same task graph replayed on a fast and a throttled fabric: the
  // dependent record's injection time must move with simulated delivery
  // time — congestion feeds back into the injection process.
  Trace t;
  t.nodes = 16;
  t.records = {{1, 0, 15, 0.0, 16, {}}, {2, 15, 3, 0.0, 4, {1}}};

  const auto inject_time_of_dependent =
      [&](const noc::NocConfig& config) -> double {
    noc::NetworkParams p;
    p.width = p.height = 4;
    p.initial_config = config;
    TraceWorkload w(t);
    noc::Network net(p);
    EXPECT_TRUE(run_trace_replay(net, w, 400000).completed);
    for (const auto& r : net.drain_records()) {
      if (r.packet_id == 2) return r.inject_time;
    }
    return -1.0;
  };

  const double fast = inject_time_of_dependent({4, 8, 3});
  const double slow = inject_time_of_dependent({1, 1, 0});  // starved + slow
  ASSERT_GE(fast, 0.0);
  ASSERT_GE(slow, 0.0);
  EXPECT_GT(slow, fast);
}

TEST(TraceWorkloadTest, LoopRestartsAfterFullDelivery) {
  Trace t;
  t.nodes = 16;
  t.records = {{1, 0, 5, 0.0, 4, {}}, {2, 5, 0, 1.0, 4, {1}}};
  TraceWorkloadParams tw;
  tw.loop = true;
  TraceWorkload w(t, tw);
  noc::NetworkParams p;
  p.width = p.height = 4;
  noc::Network net(p);
  for (int i = 0; i < 2000; ++i) net.step(&w);
  EXPECT_FALSE(w.done());  // looping workloads never finish
  EXPECT_GT(w.iterations(), 3u);
  // Each completed iteration emitted both records; the current one may be
  // anywhere in flight.
  EXPECT_GE(w.emitted(), (w.iterations() - 1) * 2);
  EXPECT_LE(w.emitted(), w.iterations() * 2);
  EXPECT_GT(net.total_packets_received(), 4u);
}

// --- record -> replay ------------------------------------------------------

/// FNV-1a over the full delivered-packet stream.
std::uint64_t stream_hash(const std::vector<noc::PacketRecord>& records) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(records.size());
  for (const noc::PacketRecord& r : records) {
    mix(r.packet_id);
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(r.src)));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(r.dst)));
    mix(r.length);
    mix(std::bit_cast<std::uint64_t>(r.inject_time));
    mix(std::bit_cast<std::uint64_t>(r.eject_time));
    mix(r.hops);
    mix(r.measured ? 1u : 0u);
  }
  return h;
}

TEST(TraceRecorderTest, RecordReplayIsBitExact) {
  noc::NetworkParams p;
  p.width = p.height = 4;
  p.seed = 42;

  // Original run: synthetic traffic, run + drain so the capture is complete.
  noc::Network original(p);
  noc::SteadyWorkload synth =
      noc::SteadyWorkload::make(original.topology(), "uniform", 0.10);
  for (int i = 0; i < 1200; ++i) original.step(&synth);
  for (int i = 0; i < 50000 && !original.drained(); ++i)
    original.step(nullptr);
  ASSERT_TRUE(original.drained());
  const auto original_records = original.drain_records();
  ASSERT_GT(original_records.size(), 100u);

  TraceRecorder recorder(original.num_nodes());
  for (const auto& rec : original_records) recorder.add(rec);
  const Trace capture = recorder.build();
  EXPECT_EQ(recorder.captured(), original_records.size());

  // Round-trip the capture through the binary format, then replay it on an
  // identically-parameterised network.
  std::stringstream ss;
  TraceWriter::write_binary(ss, capture);
  TraceWorkload w(TraceReader::read_binary(ss));
  noc::Network replayed(p);
  const auto result = run_trace_replay(replayed, w, 500000);
  EXPECT_TRUE(result.completed);

  // The delivered-packet stream — ids, endpoints, lengths, per-packet
  // timestamps, hop counts — must be identical bit for bit.
  EXPECT_EQ(stream_hash(replayed.drain_records()),
            stream_hash(original_records));
}

TEST(TraceWorkloadTest, ReplayIsDeterministic) {
  const auto dnn = generate_dnn_pipeline({16, 4, 4, 3, 64.0, 32.0, 8});
  noc::NetworkParams p;
  p.width = p.height = 4;
  const auto run = [&] {
    TraceWorkload w(dnn);
    noc::Network net(p);
    run_trace_replay(net, w, 500000);
    return stream_hash(net.drain_records());
  };
  EXPECT_EQ(run(), run());
}

// --- generators ------------------------------------------------------------

TEST(Generators, DnnPipelineShape) {
  DnnPipelineParams p;
  p.nodes = 16;
  p.layers = 4;
  p.tiles_per_layer = 4;
  p.batches = 2;
  const Trace t = generate_dnn_pipeline(p);
  EXPECT_NO_THROW(t.validate());
  // 3 boundaries x 16 tile pairs x 2 batches, no wrapped self-sends on 16
  // nodes with 4x4 placement.
  EXPECT_EQ(t.records.size(), 96u);
  const TraceSummary s = t.summary();
  EXPECT_EQ(s.roots, 32u);  // layer-0 boundary packets
  EXPECT_TRUE(t.has_dependencies());
}

TEST(Generators, AllReduceRingShape) {
  AllReduceRingParams p;
  p.nodes = 8;
  p.rounds = 2;
  const Trace t = generate_allreduce_ring(p);
  EXPECT_NO_THROW(t.validate());
  // 2 rounds x 2(N-1) steps x N packets.
  EXPECT_EQ(t.records.size(), 2u * 14u * 8u);
  EXPECT_EQ(t.summary().roots, 8u);  // only round 0, step 0
}

TEST(Generators, AllToAllShape) {
  AllToAllParams p;
  p.nodes = 6;
  p.rounds = 3;
  const Trace t = generate_alltoall(p);
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.records.size(), 3u * 6u * 5u);
  // Each round-r>0 packet waits on all 5 packets its source received.
  EXPECT_EQ(t.summary().dep_edges, 2u * 6u * 5u * 5u);
}

// --- RL environment wiring -------------------------------------------------

TEST(TraceEnv, EpisodesRunOnTraceWorkloads) {
  core::NocEnvParams ep;
  ep.net.width = ep.net.height = 4;
  ep.trace = std::make_shared<const Trace>(
      generate_dnn_pipeline({16, 4, 4, 3, 64.0, 32.0, 8}));
  ep.epoch_cycles = 256;
  ep.epochs_per_episode = 4;
  core::NocConfigEnv env(ep);
  EXPECT_EQ(env.phased_workload(), nullptr);  // trace episodes, not phased

  const rl::State s0 = env.reset();
  EXPECT_EQ(s0.size(), env.state_size());
  EXPECT_NE(env.workload(), nullptr);
  EXPECT_NE(env.workload()->name().find("trace"), std::string::npos);
  double traffic = 0.0;
  for (int a = 0; a < 3; ++a) {
    const rl::StepResult r = env.step(a % env.num_actions());
    EXPECT_EQ(r.next_state.size(), env.state_size());
    traffic += static_cast<double>(env.last_stats().packets_offered);
  }
  EXPECT_GT(traffic, 0.0);  // the looping trace keeps every epoch fed

  // Trace episodes are reproducible: the injection process is the trace.
  core::NocConfigEnv env2(ep);
  const rl::State s0b = env2.reset();
  ASSERT_EQ(s0.size(), s0b.size());
  for (std::size_t i = 0; i < s0.size(); ++i) EXPECT_DOUBLE_EQ(s0[i], s0b[i]);
}

TEST(TraceEnv, RejectsTraceLargerThanNetwork) {
  core::NocEnvParams ep;
  ep.net.width = ep.net.height = 4;  // 16 nodes
  ep.trace = std::make_shared<const Trace>(
      generate_alltoall({64, 1, 8.0, 4, 0.0}));
  EXPECT_THROW(core::NocConfigEnv{ep}, std::invalid_argument);
}

TEST(Generators, CollectivesReplayToCompletion) {
  noc::NetworkParams p;
  p.width = p.height = 3;
  for (const Trace& t :
       {generate_allreduce_ring({9, 1, 16.0, 8, 0.0}),
        generate_alltoall({9, 2, 8.0, 4, 0.0})}) {
    TraceWorkload w(t);
    noc::Network net(p);
    const auto result = run_trace_replay(net, w, 500000);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(net.total_packets_received(), t.records.size());
  }
}

}  // namespace
}  // namespace drlnoc::trace
