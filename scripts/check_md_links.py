#!/usr/bin/env python3
"""Check intra-repo markdown links.

Scans every tracked-ish .md file under the repo root (skipping build/ and
hidden directories), extracts inline links and images, and verifies that
relative targets exist on disk. External schemes (http/https/mailto),
pure-anchor links, and paths that resolve outside the repo root (e.g. the
GitHub-relative CI badge `../../actions/...`) are skipped as unverifiable.

Exit 0 when every checked link resolves, 1 otherwise (one line per broken
link). Stdlib only; run from anywhere: paths are anchored to the repo root
(the parent of this script's directory).
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {"build", ".git", ".github"}
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

# Inline links/images: [text](target) — tolerates an optional "title".
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Fenced code blocks are stripped before link extraction.
FENCE_RE = re.compile(r"^(```|~~~)")


def md_files():
    for dirpath, dirnames, filenames in os.walk(REPO_ROOT):
        dirnames[:] = [
            d for d in dirnames if d not in SKIP_DIRS and not d.startswith(".")
        ]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def links_in(path):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                yield lineno, m.group(1)


def main():
    broken = []
    checked = 0
    for md in md_files():
        for lineno, target in links_in(md):
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            # Strip a trailing #anchor; anchor existence is not checked.
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = os.path.realpath(
                os.path.join(os.path.dirname(md), target_path)
            )
            if not resolved.startswith(REPO_ROOT + os.sep):
                continue  # outside the repo (e.g. GitHub badge links)
            checked += 1
            if not os.path.exists(resolved):
                rel_md = os.path.relpath(md, REPO_ROOT)
                broken.append(f"{rel_md}:{lineno}: broken link: {target}")
    for line in broken:
        print(line)
    print(
        f"check_md_links: {checked} intra-repo links checked, "
        f"{len(broken)} broken"
    )
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
