#!/usr/bin/env python3
"""Validate fleet scorecard JSON shape (stdlib only; CI gate).

Usage: check_scorecard.py SCORECARD.json [...] [--expect-complete]

Checks each file parses as JSON and carries the schema the fleet
subsystem promises (src/fleet/scorecard.h): schema/coverage fields,
aggregate metric summaries (mean/stddev/ci95 triples, all finite),
per-class SLO blocks with rates in [0, 1], non-negative degradation
counters, and a worst-k array whose entries name a scenario. With
--expect-complete, also fails when any scenario is missing (a resumed
fleet that never finished).
"""

import argparse
import json
import math
import sys

AGGREGATE_METRICS = ("reward", "latency", "p95", "power_mw", "edp")
DEGRADATION_KEYS = ("flits_dropped", "retries", "packets_lost",
                    "rerouted_hops")


def fail(path, msg):
    raise SystemExit(f"check_scorecard: {path}: {msg}")


def require(cond, path, msg):
    if not cond:
        fail(path, msg)


def check_finite(value, path, what):
    require(isinstance(value, (int, float)) and not isinstance(value, bool),
            path, f"{what} is not a number: {value!r}")
    require(math.isfinite(value), path, f"{what} is not finite: {value!r}")


def check_scorecard(path, expect_complete):
    with open(path, encoding="utf-8") as f:
        card = json.load(f)

    require(card.get("scorecard") == 1, path,
            f"unsupported scorecard schema: {card.get('scorecard')!r}")
    require(isinstance(card.get("spec"), str) and card["spec"], path,
            "spec name missing")
    for key in ("space_size", "scored", "missing"):
        value = card.get(key)
        require(isinstance(value, int) and value >= 0, path,
                f"{key} must be a non-negative integer, got {value!r}")
    require(card["scored"] + card["missing"] == card["space_size"], path,
            "scored + missing != space_size")
    if expect_complete:
        require(card["missing"] == 0, path,
                f"{card['missing']} of {card['space_size']} scenarios missing")

    aggregate = card.get("aggregate")
    require(isinstance(aggregate, dict), path, "aggregate block missing")
    for metric in AGGREGATE_METRICS:
        for suffix in ("mean", "stddev", "ci95"):
            key = f"{metric}_{suffix}"
            require(key in aggregate, path, f"aggregate.{key} missing")
            check_finite(aggregate[key], path, f"aggregate.{key}")
        check_finite(aggregate[f"{metric}_stddev"], path, "")
        require(aggregate[f"{metric}_stddev"] >= 0, path,
                f"aggregate.{metric}_stddev is negative")

    slo = card.get("slo")
    require(isinstance(slo, dict), path, "slo block missing")
    for cls, score in slo.items():
        require(isinstance(score, dict), path, f"slo.{cls} is not an object")
        require(isinstance(score.get("tenants"), int)
                and score["tenants"] >= 1, path,
                f"slo.{cls}.tenants must be a positive integer")
        for key in ("slo_hit_rate", "worst_slo_hit_rate"):
            check_finite(score.get(key), path, f"slo.{cls}.{key}")
            require(0.0 <= score[key] <= 1.0, path,
                    f"slo.{cls}.{key} outside [0, 1]: {score[key]}")
        require(score["worst_slo_hit_rate"] <= score["slo_hit_rate"], path,
                f"slo.{cls}: worst rate exceeds the mean rate")
        for key in ("p95_mean", "p95_p95"):
            check_finite(score.get(key), path, f"slo.{cls}.{key}")
            require(score[key] >= 0, path, f"slo.{cls}.{key} is negative")

    degradation = card.get("degradation")
    require(isinstance(degradation, dict), path, "degradation block missing")
    for key in DEGRADATION_KEYS:
        value = degradation.get(key)
        require(isinstance(value, int) and value >= 0, path,
                f"degradation.{key} must be a non-negative integer")

    worst = card.get("worst")
    require(isinstance(worst, list), path, "worst array missing")
    for i, entry in enumerate(worst):
        require(isinstance(entry, dict), path, f"worst[{i}] is not an object")
        require(isinstance(entry.get("index"), int) and entry["index"] >= 0,
                path, f"worst[{i}].index invalid")
        require(entry["index"] < card["space_size"], path,
                f"worst[{i}].index {entry['index']} outside the space")
        require(isinstance(entry.get("label"), str) and entry["label"], path,
                f"worst[{i}].label missing")
        check_finite(entry.get("min_slo_hit_rate"), path,
                     f"worst[{i}].min_slo_hit_rate")
        check_finite(entry.get("worst_p95"), path, f"worst[{i}].worst_p95")
    # Worst entries are sorted: lowest min SLO hit rate first.
    rates = [entry["min_slo_hit_rate"] for entry in worst]
    require(rates == sorted(rates), path, "worst array is not sorted")

    print(f"check_scorecard: {path}: OK "
          f"(spec '{card['spec']}', {card['scored']}/{card['space_size']} "
          f"scenarios, {len(slo)} QoS classes, {len(worst)} worst entries)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="scorecard JSON files")
    parser.add_argument("--expect-complete", action="store_true",
                        help="fail if any scenario is missing")
    args = parser.parse_args()
    for path in args.files:
        check_scorecard(path, args.expect_complete)


if __name__ == "__main__":
    sys.exit(main())
