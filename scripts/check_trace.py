#!/usr/bin/env python3
"""Validates drlnoc observability artifacts (stdlib only, CI-friendly).

Usage:
    check_trace.py TRACE.json [TRACE2.json ...] [--metrics METRICS.json ...]

Trace files must be Chrome trace-event JSON as written by
obs::FlightRecorder::write_chrome_trace (see docs/OBSERVABILITY.md):

    {"schema": 1, "metadata": {...}, "traceEvents": [...]}

Checks performed on each trace file:
  * top-level object with integer "schema" and a "traceEvents" list
  * traceEvents is non-empty (a smoke run that records nothing is a bug)
  * every event has "name" (str), "ph" (known phase letter), "ts" (number)
    and "pid" (int)
  * async packet events (ph in b/n/e) carry an "id" field

Deliberately NOT checked (both would be false positives by design):
  * b/e pairing — the flight recorder is a bounded ring, so the begin
    event of a long-lived packet may have been overwritten
  * timestamp ordering — ring eviction means the oldest surviving event
    is not necessarily the globally oldest

Metrics files (--metrics) must be obs JSON with "schema" and "kind" keys;
when a "metrics" registry is present its series lengths must match the
sample count.

Exits non-zero with a per-file diagnostic on the first failure.
"""

import argparse
import json
import sys

KNOWN_PHASES = {"B", "E", "X", "i", "I", "C", "b", "n", "e", "M"}
ASYNC_PHASES = {"b", "n", "e"}


def fail(path, message):
    print(f"check_trace: {path}: {message}", file=sys.stderr)
    return 1


def load_json(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_trace(path):
    try:
        doc = load_json(path)
    except (OSError, ValueError) as exc:
        return fail(path, f"cannot parse JSON ({exc})")
    if not isinstance(doc, dict):
        return fail(path, "top level is not a JSON object")
    if not isinstance(doc.get("schema"), int):
        return fail(path, 'missing integer "schema" field')
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, '"traceEvents" is missing or not a list')
    if not events:
        return fail(path, '"traceEvents" is empty — recorder captured nothing')
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            return fail(path, f"{where} is not an object")
        if not isinstance(event.get("name"), str) or not event["name"]:
            return fail(path, f'{where} has no "name"')
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            return fail(path, f'{where} has unknown phase {phase!r}')
        if not isinstance(event.get("ts"), (int, float)):
            return fail(path, f'{where} has no numeric "ts"')
        if not isinstance(event.get("pid"), int):
            return fail(path, f'{where} has no integer "pid"')
        if phase in ASYNC_PHASES and "id" not in event:
            return fail(path, f'{where} is async ({phase}) but has no "id"')
    print(f"check_trace: {path}: OK ({len(events)} events)")
    return 0


def check_metrics(path):
    try:
        doc = load_json(path)
    except (OSError, ValueError) as exc:
        return fail(path, f"cannot parse JSON ({exc})")
    if not isinstance(doc, dict):
        return fail(path, "top level is not a JSON object")
    if not isinstance(doc.get("schema"), int):
        return fail(path, 'missing integer "schema" field')
    if not isinstance(doc.get("kind"), str):
        return fail(path, 'missing string "kind" field')
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        registry = metrics.get("registry", {})
        samples = registry.get("samples")
        times = registry.get("times", [])
        series = registry.get("series", [])
        if not isinstance(samples, int):
            return fail(path, 'registry has no integer "samples"')
        if len(times) != samples:
            return fail(
                path, f'"times" has {len(times)} entries, expected {samples}')
        for entry in series:
            # One entry per sample; multi-instance series nest a list of
            # per-instance values inside each entry.
            values = entry.get("values", [])
            instances = entry.get("instances", 1)
            if len(values) != samples:
                return fail(
                    path,
                    f'series "{entry.get("name")}" has {len(values)} rows, '
                    f"expected samples={samples}")
            if instances > 1:
                for row in values:
                    if not isinstance(row, list) or len(row) != instances:
                        return fail(
                            path,
                            f'series "{entry.get("name")}" row width does '
                            f"not match instances={instances}")
    print(f"check_trace: {path}: metrics OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate drlnoc trace/metrics JSON artifacts")
    parser.add_argument("traces", nargs="*", help="Chrome trace JSON files")
    parser.add_argument("--metrics", nargs="*", default=[],
                        help="obs metrics JSON files")
    options = parser.parse_args(argv)
    if not options.traces and not options.metrics:
        parser.error("nothing to check: pass trace files and/or --metrics")
    status = 0
    for path in options.traces:
        status |= check_trace(path)
    for path in options.metrics:
        status |= check_metrics(path)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
