#!/usr/bin/env python3
"""Validate versioned policy checkpoints (stdlib only; CI gate).

Usage: check_policy.py POLICY.drlpol [...] [--fingerprint] [--expect-git]

Checks each file carries the `drlpol 1` header the RL subsystem promises
(src/rl/policy_io.h, spec in docs/FORMATS.md): magic + version, positive
obs/actions dimensions, a plausible hidden-layer list, known
activation/head tokens, a well-formed scenario hash (16 lowercase hex
digits or '-'), the `end` sentinel, and a raw `mlp` weight blob whose
declared boundary sizes match the header. With --fingerprint, prints each
file's policy version (FNV-1a 64 over the checkpoint bytes — the value
scenarioctl run pin= / fleetctl policy_pin= check against). With
--expect-git, fails when the git provenance line is `unknown` (a tarball
build slipped into a pipeline that should stamp commits).
"""

import argparse
import re
import sys

MAX_HIDDEN = 62
MAX_WIDTH = 1 << 20
SCENARIO_RE = re.compile(r"^[0-9a-f]{16}$")


def fail(path, msg):
    raise SystemExit(f"check_policy: {path}: {msg}")


def require(cond, path, msg):
    if not cond:
        fail(path, msg)


def fingerprint(blob):
    """FNV-1a 64 of the checkpoint bytes, matching rl::policy_fingerprint
    (same basis/prime as the repo's other content keys)."""
    h = 1469598103934665603
    for b in blob:
        h ^= b
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return f"{h:016x}"


def parse_header(path, text):
    """Returns the parsed header dict and the offset of the weight blob."""
    lines = []
    pos = 0
    while len(lines) < 9:
        nl = text.find("\n", pos)
        require(nl >= 0, path, "truncated header (no 'end' line)")
        lines.append(text[pos:nl])
        pos = nl + 1
    require(lines[0] == "drlpol 1", path,
            f"bad magic line {lines[0]!r} (expected 'drlpol 1')")
    header = {}
    for line, key in zip(lines[1:8], ("obs", "actions", "hidden",
                                      "activation", "head", "scenario",
                                      "git")):
        tokens = line.split()
        require(len(tokens) >= 2 and tokens[0] == key, path,
                f"malformed header line {line!r} (expected '{key} ...')")
        header[key] = tokens[1:]
    require(lines[8] == "end", path,
            f"bad sentinel line {lines[8]!r} (expected 'end')")
    return header, pos


def check_policy(path, expect_git):
    with open(path, "rb") as fh:
        blob = fh.read()
    require(blob, path, "empty file")
    try:
        text = blob.decode("ascii")
    except UnicodeDecodeError:
        # Weight bytes are ASCII decimal too; a decode failure means the
        # file is not a text checkpoint at all.
        fail(path, "not an ASCII policy checkpoint")
    header, blob_off = parse_header(path, text)

    obs = int(header["obs"][0])
    actions = int(header["actions"][0])
    require(obs > 0, path, f"obs must be > 0, got {obs}")
    require(actions > 0, path, f"actions must be > 0, got {actions}")
    hidden_count = int(header["hidden"][0])
    hidden = [int(tok) for tok in header["hidden"][1:]]
    require(hidden_count == len(hidden), path,
            f"hidden declares {hidden_count} sizes but lists {len(hidden)}")
    require(0 <= hidden_count <= MAX_HIDDEN, path,
            f"implausible hidden count {hidden_count}")
    for width in hidden:
        require(1 <= width <= MAX_WIDTH, path,
                f"implausible hidden width {width}")
    require(header["activation"][0] in ("relu", "tanh"), path,
            f"unknown activation {header['activation'][0]!r}")
    require(header["head"][0] in ("dueling", "plain"), path,
            f"unknown head {header['head'][0]!r}")
    scenario = header["scenario"][0]
    require(scenario == "-" or SCENARIO_RE.match(scenario), path,
            f"malformed scenario hash {scenario!r}")
    if expect_git:
        require(header["git"][0] != "unknown", path,
                "git provenance is 'unknown' (--expect-git)")

    # The embedded network: `mlp <n> <sizes...> <activation> <head>`, and
    # the boundary sizes must match the header's declared architecture.
    net_line = text[blob_off:text.find("\n", blob_off)]
    tokens = net_line.split()
    require(len(tokens) >= 2 and tokens[0] == "mlp", path,
            f"weight blob does not start with 'mlp': {net_line[:40]!r}")
    sizes = [int(tok) for tok in tokens[2:2 + int(tokens[1])]]
    require(sizes == [obs] + hidden + [actions], path,
            f"embedded network sizes {sizes} do not match the header "
            f"{[obs] + hidden + [actions]}")
    return header


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("policies", nargs="+", metavar="POLICY.drlpol")
    ap.add_argument("--fingerprint", action="store_true",
                    help="print each file's policy version (pin value)")
    ap.add_argument("--expect-git", action="store_true",
                    help="fail when git provenance is 'unknown'")
    opts = ap.parse_args()
    for path in opts.policies:
        header = check_policy(path, opts.expect_git)
        summary = (f"obs {header['obs'][0]} actions {header['actions'][0]} "
                   f"hidden {' '.join(header['hidden'][1:]) or '-'} "
                   f"{header['activation'][0]}/{header['head'][0]} "
                   f"scenario {header['scenario'][0]} git {header['git'][0]}")
        if opts.fingerprint:
            with open(path, "rb") as fh:
                print(f"{fingerprint(fh.read())}  {path}  # {summary}")
        else:
            print(f"OK: {path} ({summary})")


if __name__ == "__main__":
    main()
