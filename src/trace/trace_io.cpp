#include "trace/trace_io.h"

#include <bit>
#include <charconv>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace drlnoc::trace {

namespace {

constexpr char kMagic[4] = {'D', 'R', 'L', 'T'};
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kRecordBytes = 32;

// --- little-endian packing (portable, independent of host byte order) ------
void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

class ByteCursor {
 public:
  ByteCursor(const std::string& data, std::size_t offset)
      : data_(data), pos_(offset) {}

  std::uint16_t u16() { return static_cast<std::uint16_t>(uint_n(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(uint_n(4)); }
  std::uint64_t u64() { return uint_n(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }

 private:
  std::uint64_t uint_n(int bytes) {
    if (pos_ + static_cast<std::size_t>(bytes) > data_.size()) {
      throw std::runtime_error("trace binary: truncated file");
    }
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      const auto byte = static_cast<unsigned char>(
          data_[pos_ + static_cast<std::size_t>(i)]);
      v |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    pos_ += static_cast<std::size_t>(bytes);
    return v;
  }

  const std::string& data_;
  std::size_t pos_;
};

std::string format_double(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);  // shortest round-trip representation
}

double parse_double(const std::string& token, const char* what) {
  double v = 0.0;
  const auto res =
      std::from_chars(token.data(), token.data() + token.size(), v);
  if (res.ec != std::errc{} || res.ptr != token.data() + token.size()) {
    throw std::runtime_error(std::string("trace text: bad ") + what + ": " +
                             token);
  }
  return v;
}

std::uint64_t parse_u64(const std::string& token, const char* what) {
  std::uint64_t v = 0;
  const auto res =
      std::from_chars(token.data(), token.data() + token.size(), v);
  if (res.ec != std::errc{} || res.ptr != token.data() + token.size()) {
    throw std::runtime_error(std::string("trace text: bad ") + what + ": " +
                             token);
  }
  return v;
}

}  // namespace

void TraceWriter::write_text(std::ostream& os, const Trace& trace) {
  os << "drltrc " << kTraceFormatVersion << "\n";
  os << "nodes " << trace.nodes << "\n";
  os << "default_length " << trace.default_length << "\n";
  os << "records " << trace.records.size() << "\n";
  os << "# id src dst time flits [dep,dep,...]\n";
  for (const TraceRecord& r : trace.records) {
    os << r.id << ' ' << r.src << ' ' << r.dst << ' ' << format_double(r.time)
       << ' ' << r.length;
    for (std::size_t i = 0; i < r.deps.size(); ++i) {
      os << (i == 0 ? ' ' : ',') << r.deps[i];
    }
    os << '\n';
  }
}

Trace TraceReader::read_text(std::istream& is) {
  Trace trace;
  trace.default_length = 4;
  bool saw_version = false;
  bool saw_nodes = false;
  std::string line;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;  // blank / comment-only line

    if (!saw_version) {
      if (first != "drltrc") {
        throw std::runtime_error(
            "trace text: missing 'drltrc <version>' header");
      }
      int version = 0;
      if (!(ls >> version) || version != kTraceFormatVersion) {
        throw std::runtime_error("trace text: unsupported version");
      }
      saw_version = true;
      continue;
    }
    if (first == "nodes") {
      if (!(ls >> trace.nodes)) {
        throw std::runtime_error("trace text: bad nodes");
      }
      saw_nodes = true;
      continue;
    }
    if (first == "default_length") {
      if (!(ls >> trace.default_length)) {
        throw std::runtime_error("trace text: bad default_length");
      }
      continue;
    }
    if (first == "records") {
      std::size_t n = 0;
      if (ls >> n) trace.records.reserve(n);
      continue;
    }

    // A record line: id src dst time flits [deps]
    TraceRecord rec;
    rec.id = parse_u64(first, "record id");
    std::string time_token;
    if (!(ls >> rec.src >> rec.dst >> time_token >> rec.length)) {
      throw std::runtime_error("trace text: malformed record line: " + line);
    }
    rec.time = parse_double(time_token, "record time");
    std::string deps_token;
    if (ls >> deps_token) {
      std::size_t start = 0;
      while (start <= deps_token.size()) {
        const std::size_t comma = deps_token.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? deps_token.size() : comma;
        rec.deps.push_back(
            parse_u64(deps_token.substr(start, end - start), "dependency id"));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }
    std::string extra;
    if (ls >> extra) {
      // Deps are comma-separated in one token; trailing tokens would
      // otherwise be dropped silently (e.g. space-separated deps).
      throw std::runtime_error("trace text: unexpected trailing token '" +
                               extra + "' on record line: " + line);
    }
    trace.records.push_back(std::move(rec));
  }
  if (!saw_version) throw std::runtime_error("trace text: empty input");
  if (!saw_nodes) throw std::runtime_error("trace text: missing 'nodes' line");
  return trace;
}

void TraceWriter::write_binary(std::ostream& os, const Trace& trace) {
  std::uint64_t dep_total = 0;
  for (const TraceRecord& r : trace.records) {
    if (r.deps.size() > 0xffff) {
      throw std::runtime_error("trace binary: > 65535 dependencies on record " +
                               std::to_string(r.id));
    }
    dep_total += r.deps.size();
  }
  std::string buf;
  buf.reserve(kHeaderBytes + kRecordBytes * trace.records.size() +
              8 * static_cast<std::size_t>(dep_total));
  buf.append(kMagic, sizeof(kMagic));
  put_u16(buf, static_cast<std::uint16_t>(kTraceFormatVersion));
  put_u16(buf, 0);  // flags, reserved
  put_u32(buf, static_cast<std::uint32_t>(trace.nodes));
  put_u32(buf, static_cast<std::uint32_t>(trace.default_length));
  put_u64(buf, trace.records.size());
  put_u64(buf, dep_total);

  std::uint32_t dep_offset = 0;
  for (const TraceRecord& r : trace.records) {
    put_u64(buf, r.id);
    put_u32(buf, static_cast<std::uint32_t>(r.src));
    put_u32(buf, static_cast<std::uint32_t>(r.dst));
    put_u64(buf, std::bit_cast<std::uint64_t>(r.time));
    put_u16(buf, static_cast<std::uint16_t>(r.length));
    put_u16(buf, static_cast<std::uint16_t>(r.deps.size()));
    put_u32(buf, dep_offset);
    dep_offset += static_cast<std::uint32_t>(r.deps.size());
  }
  for (const TraceRecord& r : trace.records) {
    for (std::uint64_t dep : r.deps) put_u64(buf, dep);
  }
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

Trace TraceReader::read_binary(std::istream& is) {
  std::ostringstream ss;
  ss << is.rdbuf();
  const std::string data = ss.str();
  if (data.size() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("trace binary: bad magic");
  }
  if (data.size() < kHeaderBytes) {
    throw std::runtime_error("trace binary: truncated header: " +
                             std::to_string(data.size()) + " of " +
                             std::to_string(kHeaderBytes) + " bytes");
  }
  ByteCursor header(data, sizeof(kMagic));
  const std::uint16_t version = header.u16();
  if (version != kTraceFormatVersion) {
    throw std::runtime_error("trace binary: unsupported version " +
                             std::to_string(version));
  }
  header.u16();  // flags
  Trace trace;
  trace.nodes = static_cast<int>(header.u32());
  trace.default_length = static_cast<int>(header.u32());
  const std::uint64_t record_count = header.u64();
  const std::uint64_t dep_total = header.u64();

  const std::size_t deps_base =
      kHeaderBytes + kRecordBytes * static_cast<std::size_t>(record_count);
  if (data.size() < deps_base) {
    // Point at the first record the file ends inside of, so a corrupted
    // artifact is diagnosable without a hex dump.
    const std::size_t complete = (data.size() - kHeaderBytes) / kRecordBytes;
    throw std::runtime_error(
        "trace binary: truncated file: header declares " +
        std::to_string(record_count) + " records but the data ends inside "
        "record " + std::to_string(complete) + " (" +
        std::to_string(data.size()) + " of " +
        std::to_string(deps_base + 8 * static_cast<std::size_t>(dep_total)) +
        " bytes)");
  }
  if (data.size() < deps_base + 8 * static_cast<std::size_t>(dep_total)) {
    const std::size_t have = (data.size() - deps_base) / 8;
    throw std::runtime_error(
        "trace binary: truncated file: header declares " +
        std::to_string(dep_total) + " dependency entries but only " +
        std::to_string(have) + " fit in the data");
  }

  trace.records.resize(static_cast<std::size_t>(record_count));
  ByteCursor cur(data, kHeaderBytes);
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    TraceRecord& r = trace.records[i];
    r.id = cur.u64();
    r.src = cur.i32();
    r.dst = cur.i32();
    r.time = cur.f64();
    r.length = static_cast<int>(cur.u16());
    const std::uint16_t dep_count = cur.u16();
    const std::uint32_t dep_offset = cur.u32();
    if (static_cast<std::uint64_t>(dep_offset) + dep_count > dep_total) {
      throw std::runtime_error(
          "trace binary: dependency slice out of range on record " +
          std::to_string(i));
    }
    ByteCursor deps(data, deps_base + 8 * static_cast<std::size_t>(dep_offset));
    r.deps.resize(dep_count);
    for (std::uint64_t& dep : r.deps) dep = deps.u64();
  }
  return trace;
}

namespace {
bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}
}  // namespace

void TraceWriter::write_file(const std::string& path, const Trace& trace) {
  trace.validate();
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace: cannot open for write: " + path);
  if (has_suffix(path, kBinaryExtension)) {
    write_binary(out, trace);
  } else {
    write_text(out, trace);
  }
  if (!out) throw std::runtime_error("trace: write failed: " + path);
}

Trace TraceReader::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open: " + path);
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  in.clear();
  in.seekg(0);
  try {
    Trace trace = (in.gcount() == sizeof(magic) &&
                   std::memcmp(magic, kMagic, sizeof(kMagic)) == 0)
                      ? read_binary(in)
                      : read_text(in);
    trace.validate();
    return trace;
  } catch (const std::exception& e) {
    // Name the file: stream overloads can't know it, but every CLI-facing
    // failure should say which artifact is broken.
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace drlnoc::trace
