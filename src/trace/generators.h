// Trace generators: synthesize application-level task-graph traffic for
// scenarios the synthetic BookSim patterns cannot express.
//
// - DNN layer pipeline: layers mapped round-robin onto tiles; every
//   activation packet from layer l to layer l+1 depends on all of the
//   sending tile's inputs for that batch plus a compute delay, so multiple
//   in-flight batches pipeline through the fabric (SET-ISCA2023-style).
// - MPI-style collectives: ring all-reduce (2(N-1) dependency-chained
//   steps) and all-to-all rounds (per-node barrier between rounds).
//
// All generators produce validated DAG traces with sequential ids, roots
// first in dependency order, deterministic for fixed parameters.
#pragma once

#include "trace/trace.h"

namespace drlnoc::trace {

struct DnnPipelineParams {
  int nodes = 16;           ///< fabric endpoints available for placement
  int layers = 4;           ///< pipeline stages (>= 2)
  int tiles_per_layer = 4;  ///< nodes per stage, placed round-robin
  int batches = 4;          ///< inputs streamed through the pipeline
  double batch_interval = 64.0;  ///< core cycles between input releases
  double compute_delay = 32.0;   ///< per-task delay after inputs arrive
  int activation_flits = 8;      ///< packet length for activations
};

/// Layer-l tile u sends one activation packet to every layer-(l+1) tile v
/// (self-sends, possible under wrapped placement, are elided — on-chip
/// self-traffic is free). Layer-0 packets for batch b release at
/// b * batch_interval; deeper packets are dependency-gated.
Trace generate_dnn_pipeline(const DnnPipelineParams& p);

struct AllReduceRingParams {
  int nodes = 16;           ///< ring participants (>= 2)
  int rounds = 2;           ///< back-to-back all-reduce operations
  double compute_delay = 16.0;  ///< reduce-op delay per received chunk
  int chunk_flits = 8;          ///< packet length per chunk transfer
  double start_time = 0.0;      ///< release time of the first round's sends
};

/// Classic ring all-reduce: 2(N-1) steps; in step s node i forwards its
/// chunk to (i+1) mod N, gated on the chunk it received in step s-1. Round
/// r > 0 starts at each node once its final round-(r-1) chunk arrives.
Trace generate_allreduce_ring(const AllReduceRingParams& p);

struct AllToAllParams {
  int nodes = 16;      ///< participants (>= 2)
  int rounds = 3;      ///< exchange rounds, barrier-separated per node
  double compute_delay = 8.0;  ///< per-node delay after a round's inputs
  int flits = 4;               ///< packet length per exchange
  double start_time = 0.0;     ///< release time of round 0
};

/// Every node sends to every other node each round; a node's round-r sends
/// are gated on receiving all of its round-(r-1) packets (a per-node
/// barrier), so stragglers under congestion stall their sources.
Trace generate_alltoall(const AllToAllParams& p);

}  // namespace drlnoc::trace
