// TraceWorkload: a TrafficInjector that replays a Trace through a live
// Network. Root records release at their recorded core-time (divided by the
// rate-scaling knob, enabling fig1-style load sweeps of one trace);
// dependency records release only after every predecessor packet has been
// *delivered* in the simulation plus their compute delay — so congestion in
// the simulated fabric feeds back into injection timing, SET-ISCA2023-style
// task-graph semantics. With `loop` set the trace restarts after the last
// record of the previous iteration is delivered, making RL episodes of any
// length well-defined.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "noc/network.h"
#include "trace/trace.h"

namespace drlnoc::trace {

struct TraceWorkloadParams {
  /// All recorded times (root releases and compute delays) are divided by
  /// this: 2.0 replays twice as fast, 0.5 at half speed. Must be > 0.
  double rate_scale = 1.0;
  /// Restart the trace once every record of the current iteration has been
  /// delivered (the restarting iteration's roots release relative to that
  /// delivery time). Off by default: replay once and go quiet.
  bool loop = false;
};

class TraceWorkload : public noc::TrafficInjector {
 public:
  TraceWorkload(std::shared_ptr<const Trace> trace,
                TraceWorkloadParams params = {});
  /// Convenience: owns a copy of the trace.
  explicit TraceWorkload(Trace trace, TraceWorkloadParams params = {});

  noc::NodeId generate(noc::NodeId src, double core_time,
                       util::Rng& rng) override;
  int packet_length_for(noc::NodeId src, double core_time) const override;
  void on_packet_injected(noc::NodeId src, std::uint64_t packet_id,
                          double core_time) override;
  void on_packet_delivered(const noc::PacketRecord& rec) override;
  std::string name() const override;

  /// True when every record of the (non-looping) trace has been emitted and
  /// delivered. A looping workload is never done.
  bool done() const;

  const Trace& trace() const { return *trace_; }
  const TraceWorkloadParams& params() const { return params_; }
  std::uint64_t emitted() const { return total_emitted_; }
  std::uint64_t delivered() const { return total_delivered_; }
  std::uint64_t iterations() const { return iterations_; }
  /// Core-time each record of the current/last iteration was injected;
  /// negative while not yet injected. Indexed like trace().records.
  const std::vector<double>& injection_times() const { return inject_time_; }

 private:
  struct Ready {
    double ready_time;
    std::size_t idx;  ///< index into trace_->records
    bool operator>(const Ready& o) const {
      // Tie-break on declaration order so replay is fully deterministic.
      return ready_time > o.ready_time ||
             (ready_time == o.ready_time && idx > o.idx);
    }
  };
  using ReadyQueue =
      std::priority_queue<Ready, std::vector<Ready>, std::greater<Ready>>;

  void rearm(double base_time);
  void release(std::size_t idx, double ready_time);

  std::shared_ptr<const Trace> trace_;
  TraceWorkloadParams params_;

  // Static shape, built once from the trace.
  std::vector<std::vector<std::uint32_t>> dependents_;  ///< per record
  std::vector<std::uint32_t> initial_pending_;          ///< dep counts

  // Per-iteration replay state.
  std::vector<ReadyQueue> ready_;              ///< per source node
  std::vector<std::uint32_t> pending_;         ///< unmet deps per record
  std::vector<double> dep_ready_;              ///< latest dep delivery + delay
  std::vector<double> inject_time_;            ///< -1 until injected
  std::unordered_map<std::uint64_t, std::uint32_t> live_;  ///< pkt id -> idx
  std::uint64_t iter_emitted_ = 0;
  std::uint64_t iter_delivered_ = 0;

  // Scratch for the generate -> packet_length_for -> on_packet_injected
  // handshake the Network performs for each accepted packet.
  std::size_t pending_emit_ = SIZE_MAX;

  std::uint64_t total_emitted_ = 0;
  std::uint64_t total_delivered_ = 0;
  std::uint64_t iterations_ = 0;
};

/// Drives `net` with `workload` until the trace completes *and* the fabric
/// drains (or `cycle_limit` router cycles elapse). The workload stays
/// attached throughout so post-emission deliveries keep gating dependents.
struct TraceReplayResult {
  noc::EpochStats stats;
  bool completed = false;     ///< every record delivered and fabric drained
  std::uint64_t cycles = 0;   ///< router cycles consumed
};

TraceReplayResult run_trace_replay(noc::Network& net, TraceWorkload& workload,
                                   std::uint64_t cycle_limit = 1000000);

}  // namespace drlnoc::trace
