// TraceRecorder: captures a live simulation — synthetic, phased, or
// DRL-controlled — into a Trace for later bit-exact replay. It consumes the
// network's completed-packet records, so a run must be drained (all offered
// packets delivered) for the capture to be complete; the recorder reports
// how many packets it saw so callers can assert that.
//
// Replaying a capture with TraceWorkload on an identically-parameterised
// Network reproduces the identical delivered-packet stream, bit for bit:
// the capture preserves (source, destination, injection tick, length) and
// network packet ids are reassigned in the same (tick, node) order.
#pragma once

#include <vector>

#include "noc/network.h"
#include "trace/trace.h"

namespace drlnoc::trace {

class TraceRecorder {
 public:
  /// `nodes` must match the network being captured; `default_length` seeds
  /// the trace header (captured records always carry explicit lengths).
  explicit TraceRecorder(int nodes, int default_length = 4);

  /// Pulls everything the network completed since the last drain_records()
  /// call (by anyone) into the capture buffer.
  void capture(noc::Network& net);

  /// Adds one completed packet directly (for custom harvesting loops).
  void add(const noc::PacketRecord& rec);

  std::size_t captured() const { return records_.size(); }

  /// Builds the trace: records sorted into injection order (network packet
  /// ids are assigned at injection, so sorting by id restores it), ids
  /// preserved, times absolute, no dependencies.
  Trace build() const;

 private:
  int nodes_;
  int default_length_;
  std::vector<noc::PacketRecord> records_;
};

}  // namespace drlnoc::trace
