#include "trace/trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace drlnoc::trace {

void Trace::validate() const {
  if (nodes < 2) {
    throw std::invalid_argument("trace: needs >= 2 nodes, got " +
                                std::to_string(nodes));
  }
  if (default_length < 1 || default_length > 0xffff) {
    throw std::invalid_argument("trace: default_length out of range");
  }
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(records.size());
  for (const TraceRecord& r : records) {
    const std::string where = "trace record " + std::to_string(r.id) + ": ";
    if (r.id == 0) throw std::invalid_argument("trace: record id 0 reserved");
    if (r.src < 0 || r.src >= nodes || r.dst < 0 || r.dst >= nodes) {
      throw std::invalid_argument(where + "endpoint outside [0, nodes)");
    }
    if (r.src == r.dst) {
      throw std::invalid_argument(where + "self-send (src == dst)");
    }
    if (!std::isfinite(r.time) || r.time < 0.0) {
      throw std::invalid_argument(where + "time must be finite and >= 0");
    }
    if (r.length < 0 || r.length > 0xffff) {
      throw std::invalid_argument(where + "length outside [0, 65535] flits");
    }
    std::unordered_set<std::uint64_t> local;
    for (std::uint64_t dep : r.deps) {
      if (dep == r.id) throw std::invalid_argument(where + "depends on itself");
      // "Declared earlier" makes the graph acyclic by construction.
      if (seen.count(dep) == 0) {
        throw std::invalid_argument(where + "dependency " +
                                    std::to_string(dep) +
                                    " not declared earlier in the trace");
      }
      if (!local.insert(dep).second) {
        throw std::invalid_argument(where + "duplicate dependency " +
                                    std::to_string(dep));
      }
    }
    if (!seen.insert(r.id).second) {
      throw std::invalid_argument("trace: duplicate record id " +
                                  std::to_string(r.id));
    }
  }
}

bool Trace::has_dependencies() const {
  return std::any_of(records.begin(), records.end(),
                     [](const TraceRecord& r) { return !r.deps.empty(); });
}

TraceSummary Trace::summary() const {
  TraceSummary s;
  s.records = records.size();
  for (const TraceRecord& r : records) {
    if (r.deps.empty()) {
      ++s.roots;
      s.span = std::max(s.span, r.time);
    }
    s.dep_edges += r.deps.size();
    s.total_flits +=
        static_cast<std::uint64_t>(r.length > 0 ? r.length : default_length);
  }
  if (nodes > 0 && s.span > 0.0) {
    s.offered_rate = static_cast<double>(s.roots) /
                     (static_cast<double>(nodes) * s.span);
  }
  return s;
}

}  // namespace drlnoc::trace
