// Versioned trace serialisation: a human-readable text format (`.drltrc`)
// and a packed little-endian binary (`.drltrb`) with a fixed 32-byte header
// and fixed 32-byte record stride, so readers can compute offsets (or mmap)
// without parsing.
//
// Text format (lines; '#' starts a comment):
//   drltrc 1
//   nodes 16
//   default_length 4
//   records 3            # optional, preallocation hint
//   1 0 5 0 4            # id src dst time flits [dep,dep,...]
//   2 1 5 0 4
//   3 5 0 12.5 8 1,2
// Times are written with shortest-round-trip precision, so text round-trips
// are bit-exact.
//
// Binary layout (all little-endian):
//   header  : magic "DRLT" (4) | version u16 | flags u16 | nodes u32 |
//             default_length u32 | record_count u64 | dep_count u64
//   records : record_count x { id u64 | src i32 | dst i32 | time f64-bits |
//             length u16 | dep_count u16 | dep_offset u32 }
//   deps    : dep_count x u64 (record i's slice starts at its dep_offset)
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace drlnoc::trace {

inline constexpr int kTraceFormatVersion = 1;
inline constexpr char kTextExtension[] = ".drltrc";
inline constexpr char kBinaryExtension[] = ".drltrb";

class TraceWriter {
 public:
  static void write_text(std::ostream& os, const Trace& trace);
  static void write_binary(std::ostream& os, const Trace& trace);
  /// Writes by extension: `.drltrb` selects binary, anything else text.
  /// Validates the trace first; throws std::runtime_error on I/O failure.
  static void write_file(const std::string& path, const Trace& trace);
};

class TraceReader {
 public:
  static Trace read_text(std::istream& is);
  static Trace read_binary(std::istream& is);
  /// Sniffs the magic bytes to pick the decoder, then validates. Throws
  /// std::runtime_error on unreadable/corrupt files.
  static Trace read_file(const std::string& path);
};

}  // namespace drlnoc::trace
