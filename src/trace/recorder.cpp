#include "trace/recorder.h"

#include <algorithm>

namespace drlnoc::trace {

TraceRecorder::TraceRecorder(int nodes, int default_length)
    : nodes_(nodes), default_length_(default_length) {}

void TraceRecorder::capture(noc::Network& net) {
  for (const noc::PacketRecord& rec : net.drain_records()) add(rec);
}

void TraceRecorder::add(const noc::PacketRecord& rec) {
  records_.push_back(rec);
}

Trace TraceRecorder::build() const {
  Trace trace;
  trace.nodes = nodes_;
  trace.default_length = default_length_;
  trace.records.reserve(records_.size());
  for (const noc::PacketRecord& rec : records_) {
    TraceRecord r;
    r.id = rec.packet_id;
    r.src = rec.src;
    r.dst = rec.dst;
    r.time = rec.inject_time;
    r.length = rec.length;
    trace.records.push_back(std::move(r));
  }
  // Completion order -> injection order. Ids are assigned sequentially at
  // injection, so this also sorts by (inject_time, node).
  std::sort(trace.records.begin(), trace.records.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.id < b.id;
            });
  return trace;
}

}  // namespace drlnoc::trace
