// Application-level trace & task-graph workload model. A Trace is an ordered
// list of packet records; each record either releases at an absolute core
// time (a *root*) or after all of its declared predecessor packets have been
// delivered plus a compute delay (a *task-graph node*, SET-ISCA2023-style).
// Traces are produced by TraceRecorder (capturing a live run), by the
// generators in trace/generators.h (DNN pipelines, MPI-style collectives), or
// read from `.drltrc` / `.drltrb` files (trace/trace_io.h); TraceWorkload
// (trace/trace_workload.h) replays them through any Network.
#pragma once

#include <cstdint>
#include <vector>

#include "noc/types.h"

namespace drlnoc::trace {

/// One packet of a trace. `time` is the release core-time for roots (empty
/// `deps`); for dependent records it is the compute delay, in core cycles,
/// after the last predecessor packet is delivered.
struct TraceRecord {
  std::uint64_t id = 0;  ///< unique within the trace, nonzero
  noc::NodeId src = 0;
  noc::NodeId dst = 0;
  double time = 0.0;  ///< release time (roots) or post-dependency delay
  int length = 0;     ///< flits; 0 = the trace's default_length
  std::vector<std::uint64_t> deps;  ///< predecessor record ids

  bool operator==(const TraceRecord&) const = default;
};

/// Aggregate shape of a trace, used by `tracectl info` and for calibrating
/// replay-rate heuristics.
struct TraceSummary {
  std::size_t records = 0;
  std::size_t roots = 0;      ///< records with no dependencies
  std::size_t dep_edges = 0;  ///< total predecessor references
  double span = 0.0;          ///< latest root release time (core cycles)
  double offered_rate = 0.0;  ///< root packets / node / core cycle over span
  std::uint64_t total_flits = 0;  ///< 0-length records use default_length
};

/// A validated trace is a DAG by construction: every dependency must
/// reference a record declared *earlier* in `records`.
class Trace {
 public:
  int nodes = 0;           ///< number of endpoints the records address
  int default_length = 4;  ///< flits assumed for records with length 0
  std::vector<TraceRecord> records;

  bool operator==(const Trace&) const = default;

  /// Throws std::invalid_argument on malformed traces: nonpositive node
  /// count, zero/duplicate ids, out-of-range endpoints, self-sends,
  /// nonfinite/negative times, oversized lengths, or dependencies that are
  /// unknown, forward, duplicated, or self-referential.
  void validate() const;

  bool has_dependencies() const;
  TraceSummary summary() const;
};

}  // namespace drlnoc::trace
