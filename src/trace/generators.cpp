#include "trace/generators.h"

#include <stdexcept>
#include <utility>
#include <vector>

namespace drlnoc::trace {

namespace {
void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}
}  // namespace

Trace generate_dnn_pipeline(const DnnPipelineParams& p) {
  require(p.nodes >= 2, "dnn_pipeline: nodes must be >= 2");
  require(p.layers >= 2, "dnn_pipeline: layers must be >= 2");
  require(p.tiles_per_layer >= 1, "dnn_pipeline: tiles_per_layer must be >= 1");
  require(p.batches >= 1, "dnn_pipeline: batches must be >= 1");
  require(p.batch_interval >= 0.0, "dnn_pipeline: batch_interval must be >= 0");
  require(p.compute_delay >= 0.0, "dnn_pipeline: compute_delay must be >= 0");
  require(p.activation_flits >= 1,
          "dnn_pipeline: activation_flits must be >= 1");

  Trace trace;
  trace.nodes = p.nodes;
  trace.default_length = p.activation_flits;

  const auto node_of = [&](int layer, int tile) -> noc::NodeId {
    return (layer * p.tiles_per_layer + tile) % p.nodes;
  };

  std::uint64_t next_id = 1;
  // Packets delivered into each tile of the *receiving* layer for the batch
  // currently being generated; boundary l feeds the inputs of boundary l+1.
  const auto tiles = static_cast<std::size_t>(p.tiles_per_layer);
  for (int b = 0; b < p.batches; ++b) {
    std::vector<std::vector<std::uint64_t>> inputs(tiles);
    for (int l = 0; l + 1 < p.layers; ++l) {
      std::vector<std::vector<std::uint64_t>> next_inputs(tiles);
      for (int u = 0; u < p.tiles_per_layer; ++u) {
        const noc::NodeId src = node_of(l, u);
        for (int v = 0; v < p.tiles_per_layer; ++v) {
          const noc::NodeId dst = node_of(l + 1, v);
          if (src == dst) continue;  // wrapped placement: self-sends elided
          TraceRecord rec;
          rec.id = next_id++;
          rec.src = src;
          rec.dst = dst;
          rec.length = p.activation_flits;
          if (l == 0 || inputs[static_cast<std::size_t>(u)].empty()) {
            // Entry layer (or a tile starved by self-send elision): release
            // on the batch clock.
            rec.time = static_cast<double>(b) * p.batch_interval +
                       static_cast<double>(l) * p.compute_delay;
          } else {
            rec.deps = inputs[static_cast<std::size_t>(u)];
            rec.time = p.compute_delay;
          }
          next_inputs[static_cast<std::size_t>(v)].push_back(rec.id);
          trace.records.push_back(std::move(rec));
        }
      }
      inputs = std::move(next_inputs);
    }
  }
  trace.validate();
  return trace;
}

Trace generate_allreduce_ring(const AllReduceRingParams& p) {
  require(p.nodes >= 2, "allreduce_ring: nodes must be >= 2");
  require(p.rounds >= 1, "allreduce_ring: rounds must be >= 1");
  require(p.compute_delay >= 0.0, "allreduce_ring: compute_delay must be >= 0");
  require(p.chunk_flits >= 1, "allreduce_ring: chunk_flits must be >= 1");
  require(p.start_time >= 0.0, "allreduce_ring: start_time must be >= 0");

  Trace trace;
  trace.nodes = p.nodes;
  trace.default_length = p.chunk_flits;

  const int n = p.nodes;
  const int steps = 2 * (n - 1);  // reduce-scatter + all-gather
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> prev_step(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> prev_round_last(static_cast<std::size_t>(n), 0);
  for (int r = 0; r < p.rounds; ++r) {
    for (int s = 0; s < steps; ++s) {
      std::vector<std::uint64_t> this_step(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        const auto left = static_cast<std::size_t>((i + n - 1) % n);
        TraceRecord rec;
        rec.id = next_id++;
        rec.src = i;
        rec.dst = (i + 1) % n;
        rec.length = p.chunk_flits;
        if (s > 0) {
          // Forward once the chunk from the left neighbour has been reduced.
          rec.deps = {prev_step[left]};
          rec.time = p.compute_delay;
        } else if (r > 0) {
          // A new all-reduce starts at node i when its previous round ends.
          rec.deps = {prev_round_last[left]};
          rec.time = p.compute_delay;
        } else {
          rec.time = p.start_time;
        }
        this_step[static_cast<std::size_t>(i)] = rec.id;
        trace.records.push_back(std::move(rec));
      }
      prev_step = std::move(this_step);
    }
    prev_round_last = prev_step;
  }
  trace.validate();
  return trace;
}

Trace generate_alltoall(const AllToAllParams& p) {
  require(p.nodes >= 2, "alltoall: nodes must be >= 2");
  require(p.rounds >= 1, "alltoall: rounds must be >= 1");
  require(p.compute_delay >= 0.0, "alltoall: compute_delay must be >= 0");
  require(p.flits >= 1, "alltoall: flits must be >= 1");
  require(p.start_time >= 0.0, "alltoall: start_time must be >= 0");

  Trace trace;
  trace.nodes = p.nodes;
  trace.default_length = p.flits;

  const int n = p.nodes;
  std::uint64_t next_id = 1;
  // received[i] = the previous round's packets addressed to node i.
  std::vector<std::vector<std::uint64_t>> received(
      static_cast<std::size_t>(n));
  for (int r = 0; r < p.rounds; ++r) {
    std::vector<std::vector<std::uint64_t>> next_received(
        static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        TraceRecord rec;
        rec.id = next_id++;
        rec.src = i;
        rec.dst = j;
        rec.length = p.flits;
        if (r == 0) {
          rec.time = p.start_time;
        } else {
          rec.deps = received[static_cast<std::size_t>(i)];
          rec.time = p.compute_delay;
        }
        next_received[static_cast<std::size_t>(j)].push_back(rec.id);
        trace.records.push_back(std::move(rec));
      }
    }
    received = std::move(next_received);
  }
  trace.validate();
  return trace;
}

}  // namespace drlnoc::trace
