#include "trace/trace_workload.h"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace drlnoc::trace {

TraceWorkload::TraceWorkload(std::shared_ptr<const Trace> trace,
                             TraceWorkloadParams params)
    : trace_(std::move(trace)), params_(params) {
  if (!trace_) throw std::invalid_argument("TraceWorkload: null trace");
  trace_->validate();
  if (!(params_.rate_scale > 0.0) || !std::isfinite(params_.rate_scale)) {
    throw std::invalid_argument("TraceWorkload: rate_scale must be > 0");
  }

  const std::size_t n = trace_->records.size();
  std::unordered_map<std::uint64_t, std::uint32_t> index;
  index.reserve(n);
  dependents_.resize(n);
  initial_pending_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const TraceRecord& r = trace_->records[i];
    for (std::uint64_t dep : r.deps) {
      // validate() guarantees the dependency was declared earlier.
      dependents_[index.at(dep)].push_back(static_cast<std::uint32_t>(i));
    }
    initial_pending_[i] = static_cast<std::uint32_t>(r.deps.size());
    index.emplace(r.id, static_cast<std::uint32_t>(i));
  }

  ready_.resize(static_cast<std::size_t>(trace_->nodes));
  rearm(0.0);
}

TraceWorkload::TraceWorkload(Trace trace, TraceWorkloadParams params)
    : TraceWorkload(std::make_shared<const Trace>(std::move(trace)), params) {}

void TraceWorkload::rearm(double base_time) {
  const std::size_t n = trace_->records.size();
  pending_ = initial_pending_;
  dep_ready_.assign(n, 0.0);
  inject_time_.assign(n, -1.0);
  live_.clear();
  iter_emitted_ = 0;
  iter_delivered_ = 0;
  ++iterations_;
  for (auto& q : ready_) q = ReadyQueue();
  for (std::size_t i = 0; i < n; ++i) {
    const TraceRecord& r = trace_->records[i];
    if (r.deps.empty()) {
      release(i, base_time + r.time / params_.rate_scale);
    }
  }
}

void TraceWorkload::release(std::size_t idx, double ready_time) {
  const TraceRecord& r = trace_->records[idx];
  ready_[static_cast<std::size_t>(r.src)].push(Ready{ready_time, idx});
}

noc::NodeId TraceWorkload::generate(noc::NodeId src, double core_time,
                                    util::Rng& /*rng*/) {
  if (src < 0 || src >= trace_->nodes) return noc::kInvalidNode;
  ReadyQueue& q = ready_[static_cast<std::size_t>(src)];
  if (q.empty() || q.top().ready_time > core_time) return noc::kInvalidNode;
  assert(pending_emit_ == SIZE_MAX && "injection handshake out of order");
  pending_emit_ = q.top().idx;
  q.pop();
  ++iter_emitted_;
  ++total_emitted_;
  return trace_->records[pending_emit_].dst;
}

int TraceWorkload::packet_length_for(noc::NodeId /*src*/,
                                     double /*core_time*/) const {
  assert(pending_emit_ != SIZE_MAX);
  const int length = trace_->records[pending_emit_].length;
  return length > 0 ? length : trace_->default_length;
}

void TraceWorkload::on_packet_injected(noc::NodeId /*src*/,
                                       std::uint64_t packet_id,
                                       double core_time) {
  assert(pending_emit_ != SIZE_MAX && "on_packet_injected without generate");
  inject_time_[pending_emit_] = core_time;
  live_.emplace(packet_id, static_cast<std::uint32_t>(pending_emit_));
  pending_emit_ = SIZE_MAX;
}

void TraceWorkload::on_packet_delivered(const noc::PacketRecord& rec) {
  const auto it = live_.find(rec.packet_id);
  if (it == live_.end()) return;  // not one of ours (e.g. warm-up traffic)
  const std::uint32_t idx = it->second;
  live_.erase(it);
  ++iter_delivered_;
  ++total_delivered_;

  for (std::uint32_t dep_idx : dependents_[idx]) {
    double& gate = dep_ready_[dep_idx];
    if (rec.eject_time > gate) gate = rec.eject_time;
    assert(pending_[dep_idx] > 0);
    if (--pending_[dep_idx] == 0) {
      const TraceRecord& r = trace_->records[dep_idx];
      release(dep_idx, gate + r.time / params_.rate_scale);
    }
  }

  if (params_.loop && iter_delivered_ == trace_->records.size()) {
    rearm(rec.eject_time);
  }
}

bool TraceWorkload::done() const {
  if (params_.loop) return false;
  const std::uint64_t n = trace_->records.size();
  return iter_emitted_ == n && iter_delivered_ == n;
}

std::string TraceWorkload::name() const {
  std::ostringstream os;
  os << "trace[" << trace_->records.size() << "rec x" << params_.rate_scale
     << "]";
  return os.str();
}

TraceReplayResult run_trace_replay(noc::Network& net, TraceWorkload& workload,
                                   std::uint64_t cycle_limit) {
  if (net.num_nodes() < workload.trace().nodes) {
    throw std::invalid_argument(
        "run_trace_replay: trace addresses more nodes than the network has");
  }
  TraceReplayResult out;
  while (out.cycles < cycle_limit &&
         !(workload.done() && net.drained())) {
    net.step(&workload);
    ++out.cycles;
  }
  out.completed = workload.done() && net.drained();
  out.stats = net.drain_epoch_stats();
  return out;
}

}  // namespace drlnoc::trace
