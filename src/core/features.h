// Epoch-state feature extraction: turns EpochStats + the current
// configuration into the normalized feature vector the agents consume.
// Every feature is squashed into [0, 1] (the tabular baseline bins on that
// range, and bounded inputs keep the MLP well-conditioned).
//
// Tenant-aware mode: constructed with per-tenant QoS specs, the extractor
// appends three features per tenant (traffic share, SLO-relative p95,
// delivery shortfall) read from EpochStats.tenants, so the agent sees *who*
// is suffering, not just that someone is. Without specs the vector is
// unchanged from the pre-QoS layout.
#pragma once

#include <string>
#include <vector>

#include "core/action_space.h"
#include "core/reward.h"
#include "noc/network.h"
#include "rl/env.h"
#include "util/stats.h"

namespace drlnoc::core {

struct FeatureParams {
  double rate_scale = 0.25;    ///< offered/accepted rates saturate here
  double latency_soft = 100.0; ///< soft-scale for latency squashing x/(x+s)
  double backlog_soft = 8.0;   ///< per-node source backlog soft-scale
  double skew_soft = 4.0;      ///< hotspot skew soft-scale
  double ewma_alpha = 0.35;    ///< smoothing across epochs
};

class FeatureExtractor {
 public:
  /// `tenant_qos` non-empty switches on the per-tenant slices; extract()
  /// then requires one EpochStats tenant entry per spec.
  FeatureExtractor(const ActionSpace& space, int num_nodes,
                   FeatureParams params = {},
                   std::vector<TenantQosSpec> tenant_qos = {});

  /// Feature vector length (fixed for a given action space).
  std::size_t state_size() const;
  /// Names, index-aligned with the vector (docs/debugging).
  std::vector<std::string> feature_names() const;

  /// Resets the across-epoch EWMAs (new episode).
  void reset();
  /// Consumes one epoch and produces the agent state.
  rl::State extract(const noc::EpochStats& stats);

 private:
  const ActionSpace& space_;
  int num_nodes_;
  FeatureParams params_;
  std::vector<TenantQosSpec> tenant_qos_;
  util::Ewma load_ewma_;
  util::Ewma latency_ewma_;
  double prev_offered_norm_ = 0.0;
};

}  // namespace drlnoc::core
