// Training and evaluation protocol:
//   * train_dqn      — online DQN training across episodes of the epoch MDP,
//                      producing the learning curve (F3)
//   * evaluate       — one greedy / frozen-policy episode under any
//                      Controller, producing the comparison metrics (T1, T2)
//   * find_best_static — oracle sweep over all static configurations
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/env_noc.h"
#include "rl/dqn.h"

namespace drlnoc::core {

/// Per-tenant slice of one evaluated episode (multi-tenant scenarios only;
/// aggregated across epochs from the per-epoch TenantEpochStats).
struct TenantEpisodeSummary {
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t flits_ejected = 0;
  double mean_latency = 0.0;   ///< packet-weighted over measured deliveries
  double p95_latency = 0.0;    ///< max epoch p95 (worst window)
  double accepted_rate = 0.0;  ///< delivered packets / node / core-cycle
  // SLO accounting, populated when the scenario gives this tenant a
  // p95_target (latency-critical): an epoch counts when the tenant had
  // traffic (offered or measured), and hits when it had measured
  // deliveries whose p95 met the target — so a starved tenant scores
  // misses, matching the reward's full-violation convention.
  std::uint64_t slo_epochs = 0;  ///< epochs with traffic (target set)
  std::uint64_t slo_hits = 0;    ///< of those, epochs with p95 <= target
  double slo_hit_rate = 1.0;     ///< hits/epochs; 1 when no target or idle
  // Fault accounting (zero on a healthy fabric; see noc/faults.h).
  std::uint64_t flits_dropped = 0;
  std::uint64_t retries = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t rerouted_hops = 0;
};

/// Aggregate metrics for one evaluated episode.
struct EpisodeResult {
  std::string controller;
  double total_reward = 0.0;
  double mean_latency = 0.0;      ///< packet-weighted mean over epochs
  double p95_latency = 0.0;       ///< max epoch p95 (worst window)
  double mean_power_mw = 0.0;     ///< time-weighted mean
  double mean_edp = 0.0;          ///< mean epoch EDP
  double offered_rate = 0.0;
  double accepted_rate = 0.0;
  std::uint64_t backlog_end = 0;
  // Fault accounting summed over the episode (zero on a healthy fabric).
  std::uint64_t flits_dropped = 0;
  std::uint64_t retries = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t rerouted_hops = 0;
  std::vector<noc::EpochStats> epochs;  ///< per-epoch detail (F4 timeline)
  std::vector<int> actions;             ///< chosen action per epoch
  /// One entry per tenant when the environment tracks tenants (scenario
  /// episodes); empty otherwise.
  std::vector<TenantEpisodeSummary> tenants;
};

/// Runs one episode with `controller` choosing configurations; no learning.
EpisodeResult evaluate(NocConfigEnv& env, Controller& controller,
                       bool keep_epochs = false);

struct TrainParams {
  int episodes = 40;
  int eval_every = 10;       ///< 0 disables periodic greedy evals
  bool verbose = false;
};

struct TrainResult {
  std::vector<double> episode_returns;  ///< training return per episode
  std::vector<double> episode_loss;     ///< mean TD loss per episode
  std::vector<double> eval_rewards;     ///< greedy return at eval points
  std::vector<int> eval_episodes;       ///< episode index of each eval
};

/// Trains `agent` on `env` for `params.episodes` episodes.
TrainResult train_dqn(NocConfigEnv& env, rl::DqnAgent& agent,
                      const TrainParams& params);

/// Multi-actor rollout training (see docs/ARCHITECTURE.md, "Parallel
/// training"). Episodes are grouped into rounds of `round` lanes; within a
/// round all lanes step in lockstep, greedy actions come from ONE batched
/// forward across the lanes (the PR 2 workspace MLP), and the collected
/// transitions drain into the shared replay in a fixed round-robin order.
/// `round` is semantic — changing it changes the learning curve — while
/// `actors` is purely the worker-thread count fanning the environment
/// steps, so results are bit-identical at any `actors` value.
struct ParallelTrainParams {
  int episodes = 40;
  /// Lockstep environment lanes per round. Part of the experiment
  /// definition, like a seed: lane l of round r runs global episode
  /// r*round + l of the serial per-episode seed stream.
  int round = 8;
  /// Worker threads stepping the lanes; <= 0 means one per hardware
  /// thread. Never affects results.
  int actors = 0;
  int eval_every = 10;  ///< 0 disables periodic greedy evals
  bool verbose = false;
};

/// Trains `agent` over environments built from `base` (taps stripped,
/// power reference calibrated once — see with_calibrated_power_ref).
TrainResult train_dqn_parallel(const NocEnvParams& base, rl::DqnAgent& agent,
                               const ParallelTrainParams& params);

/// Evaluates every static configuration for one episode and returns results
/// sorted by mean EDP (oracle-static baseline; element 0 is the oracle).
/// Configurations are evaluated concurrently across `jobs` threads (<= 0
/// means one per hardware thread); results are bit-identical to a serial
/// sweep at any thread count.
std::vector<EpisodeResult> sweep_static(NocConfigEnv& env, int jobs = 1);

}  // namespace drlnoc::core
