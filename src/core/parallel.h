// Parallel experiment engine: fans independent simulations across hardware
// threads. Every point of the paper's artifacts (static-config sweeps,
// load-latency curves, multi-seed replications) is an independent `Network`
// simulation, so each task builds its own environment and draws from a
// deterministic per-task RNG stream (seed derived from base_seed +
// task_index). The determinism contract: parallel results are bit-identical
// to serial and invariant under thread count, because tasks share no mutable
// state and results are written to index-addressed slots.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/controller.h"
#include "core/env_noc.h"
#include "core/trainer.h"
#include "util/thread_pool.h"

namespace drlnoc::core {

/// Thin façade over util::parallel_for that carries a jobs count chosen once
/// (e.g. from a --jobs flag) through an experiment.
class ExperimentRunner {
 public:
  /// jobs > 0 is taken literally; jobs <= 0 means one per hardware thread.
  explicit ExperimentRunner(int jobs = 0)
      : jobs_(util::ThreadPool::resolve_jobs(jobs)) {}

  int jobs() const { return jobs_; }

  /// Runs fn(0) .. fn(n-1), blocking until all complete; first task
  /// exception propagates.
  void for_each(int n, const std::function<void(int)>& fn) const {
    util::parallel_for(n, jobs_, fn);
  }

  /// Order-preserving parallel map: out[i] = fn(i).
  template <typename R>
  std::vector<R> map(int n, const std::function<R(int)>& fn) const {
    return util::parallel_map<R>(n, jobs_, fn);
  }

 private:
  int jobs_;
};

/// Returns `params` with the observability taps stripped (they are
/// single-threaded; worker environments must never share them) and the
/// reward's power reference calibrated once up front — every worker's fresh
/// environment would deterministically recompute the same value from the
/// same parameters, at two max-config epochs each. Every fan-out entry
/// point (sweeps, replications, the parallel trainer) starts here.
NocEnvParams with_calibrated_power_ref(const NocEnvParams& params);

/// Evaluates every static configuration of `params.actions` — one fresh
/// environment per action, evaluated concurrently — and returns results
/// sorted by mean EDP (element 0 is the oracle static). Bit-identical to the
/// serial sweep because evaluation mode pins the traffic seed and phase
/// offset, making each action's episode independent of every other.
std::vector<EpisodeResult> sweep_static_parallel(
    const NocEnvParams& params, const ExperimentRunner& runner);

/// Builds the controller for one evaluation task. Called once per task on the
/// worker thread with that task's freshly built environment, so the factory
/// must be safe to invoke concurrently (it should only read shared state —
/// e.g. clone trained weights — never mutate it).
using ControllerFactory =
    std::function<std::unique_ptr<Controller>(const NocConfigEnv& env)>;

/// One replica of a multi-seed replication.
struct Replica {
  std::uint64_t seed = 0;
  EpisodeResult result;
};

/// Mean and half-width of the normal-approximation 95% confidence interval
/// for one metric across replicas.
struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;  ///< 1.96 * stddev / sqrt(n); 0 when n < 2
};

/// Mean + normal-approximation 95% CI of a metric across replica values.
/// n = 0 returns all zeros; n = 1 returns the value with zero spread;
/// zero-variance samples report stddev = ci95 = 0 exactly. NaN values are
/// rejected (std::invalid_argument) — a NaN metric is always an upstream
/// bug, and letting it poison a mean hides where it entered.
MetricSummary summarize_metric(const std::vector<double>& xs);

struct ReplicationResult {
  std::vector<Replica> replicas;  ///< ordered by task index
  MetricSummary reward;
  MetricSummary latency;
  MetricSummary power_mw;
  MetricSummary edp;
};

/// Evaluates `controller_factory`'s policy over `replicas` episodes whose
/// traffic seeds are `base.net.seed + task_index` (the deterministic
/// per-task RNG stream), in parallel, and aggregates confidence intervals.
ReplicationResult evaluate_many(const NocEnvParams& base,
                                const ControllerFactory& controller_factory,
                                int replicas, const ExperimentRunner& runner);

}  // namespace drlnoc::core
