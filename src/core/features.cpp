#include "core/features.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace drlnoc::core {

namespace {
double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }
double soft(double x, double scale) { return x <= 0.0 ? 0.0 : x / (x + scale); }
}  // namespace

FeatureExtractor::FeatureExtractor(const ActionSpace& space, int num_nodes,
                                   FeatureParams params,
                                   std::vector<TenantQosSpec> tenant_qos)
    : space_(space), num_nodes_(num_nodes), params_(params),
      tenant_qos_(std::move(tenant_qos)),
      load_ewma_(params.ewma_alpha), latency_ewma_(params.ewma_alpha) {}

std::size_t FeatureExtractor::state_size() const {
  return 10 + space_.vc_options().size() + space_.depth_options().size() +
         space_.dvfs_options().size() + 3 * tenant_qos_.size();
}

std::vector<std::string> FeatureExtractor::feature_names() const {
  std::vector<std::string> names = {
      "offered_rate", "accepted_rate", "load_ewma",   "avg_latency",
      "p95_latency",  "latency_ewma",  "occupancy",   "hotspot_skew",
      "backlog",      "load_delta",
  };
  for (int v : space_.vc_options()) names.push_back("cfg_vc" + std::to_string(v));
  for (int d : space_.depth_options())
    names.push_back("cfg_depth" + std::to_string(d));
  for (int f : space_.dvfs_options())
    names.push_back("cfg_dvfs" + std::to_string(f));
  for (std::size_t i = 0; i < tenant_qos_.size(); ++i) {
    const std::string p = "t" + std::to_string(i) + "_";
    names.push_back(p + "share");
    names.push_back(p + "p95");
    names.push_back(p + "shortfall");
  }
  return names;
}

void FeatureExtractor::reset() {
  load_ewma_.reset();
  latency_ewma_.reset();
  prev_offered_norm_ = 0.0;
}

rl::State FeatureExtractor::extract(const noc::EpochStats& stats) {
  rl::State s;
  s.reserve(state_size());

  const double offered = clamp01(stats.offered_rate / params_.rate_scale);
  const double accepted = clamp01(stats.accepted_rate / params_.rate_scale);
  load_ewma_.add(offered);
  const double lat = soft(stats.avg_latency, params_.latency_soft);
  const double p95 = soft(stats.p95_latency, params_.latency_soft);
  latency_ewma_.add(lat);
  const double backlog_per_node =
      static_cast<double>(stats.source_queue_total) /
      std::max(1, num_nodes_);

  s.push_back(offered);
  s.push_back(accepted);
  s.push_back(load_ewma_.value());
  s.push_back(lat);
  s.push_back(p95);
  s.push_back(latency_ewma_.value());
  s.push_back(clamp01(stats.avg_buffer_occupancy));
  s.push_back(soft(std::max(0.0, stats.hotspot_skew - 1.0), params_.skew_soft));
  s.push_back(soft(backlog_per_node, params_.backlog_soft));
  // Load trend, remapped from [-1, 1] to [0, 1].
  s.push_back(clamp01(0.5 + 0.5 * (offered - prev_offered_norm_)));
  prev_offered_norm_ = offered;

  for (int v : space_.vc_options())
    s.push_back(stats.config.active_vcs == v ? 1.0 : 0.0);
  for (int d : space_.depth_options())
    s.push_back(stats.config.active_depth == d ? 1.0 : 0.0);
  for (int f : space_.dvfs_options())
    s.push_back(stats.config.dvfs_level == f ? 1.0 : 0.0);

  if (!tenant_qos_.empty()) {
    if (stats.tenants.size() != tenant_qos_.size()) {
      throw std::invalid_argument(
          "features: QoS mode describes " +
          std::to_string(tenant_qos_.size()) +
          " tenants but the epoch carries " +
          std::to_string(stats.tenants.size()) + " tenant slices");
    }
    for (std::size_t i = 0; i < tenant_qos_.size(); ++i) {
      const TenantQosSpec& q = tenant_qos_[i];
      const noc::TenantEpochStats& ts = stats.tenants[i];
      // Share of the offered traffic this tenant accounts for.
      const double share =
          stats.packets_offered > 0
              ? static_cast<double>(ts.packets_offered) /
                    static_cast<double>(stats.packets_offered)
              : 0.0;
      s.push_back(clamp01(share));
      // Latency-critical tenants report p95 relative to the SLO (0.5 at the
      // target, saturating at 2x); others squash on the shared soft scale.
      if (q.cls == TenantQosClass::kLatencyCritical) {
        s.push_back(clamp01(ts.p95_latency / (2.0 * q.p95_target)));
      } else {
        s.push_back(soft(ts.p95_latency, params_.latency_soft));
      }
      // Delivery shortfall: offered-but-undelivered fraction this epoch.
      const double shortfall =
          ts.packets_offered > 0
              ? 1.0 - static_cast<double>(ts.packets_received) /
                          static_cast<double>(ts.packets_offered)
              : 0.0;
      s.push_back(clamp01(shortfall));
    }
  }
  return s;
}

}  // namespace drlnoc::core
