// The factored configuration action space: the cartesian product of the
// allowed VC counts, buffer depths and DVFS levels, flattened to a discrete
// action index for the DQN.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "noc/network.h"

namespace drlnoc::core {

class ActionSpace {
 public:
  ActionSpace(std::vector<int> vc_options, std::vector<int> depth_options,
              std::vector<int> dvfs_options);

  /// The default space used across the experiments: VCs {1,2,4},
  /// depth {2,4,8}, all DVFS levels — 36 actions.
  static ActionSpace standard(int num_dvfs_levels = 4);
  /// Torus/ring-safe variant (>= 2 VCs for the dateline classes).
  static ActionSpace standard_two_class(int num_dvfs_levels = 4);

  int size() const;
  noc::NocConfig decode(int action) const;
  int index_of(const noc::NocConfig& config) const;  ///< throws if absent
  /// Index of the most/least capable configuration (max/min everything).
  int max_action() const { return size() - 1; }
  int min_action() const { return 0; }

  const std::vector<int>& vc_options() const { return vcs_; }
  const std::vector<int>& depth_options() const { return depths_; }
  const std::vector<int>& dvfs_options() const { return dvfs_; }

  std::string describe(int action) const;

 private:
  std::vector<int> vcs_;
  std::vector<int> depths_;
  std::vector<int> dvfs_;
};

}  // namespace drlnoc::core
