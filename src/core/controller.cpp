#include "core/controller.h"

#include <algorithm>

namespace drlnoc::core {

StaticController::StaticController(const ActionSpace& space, int action,
                                   std::string label)
    : action_(action), label_(std::move(label)) {
  if (action < 0 || action >= space.size()) {
    throw std::out_of_range("static controller action out of range");
  }
}

std::unique_ptr<StaticController> StaticController::maximal(
    const ActionSpace& space) {
  return std::make_unique<StaticController>(space, space.max_action(),
                                            "static-max");
}

std::unique_ptr<StaticController> StaticController::minimal(
    const ActionSpace& space) {
  return std::make_unique<StaticController>(space, space.min_action(),
                                            "static-min");
}

HeuristicController::HeuristicController(const ActionSpace& space,
                                         HeuristicParams params)
    : space_(space), params_(params) {
  // Balanced escalation ladder: raise the cheap knobs (VCs, depth) before
  // the expensive one (DVFS). Built by walking option indices diagonally.
  const auto& vcs = space.vc_options();
  const auto& depths = space.depth_options();
  const auto& dvfs = space.dvfs_options();
  const int steps = static_cast<int>(
      std::max({vcs.size(), depths.size(), dvfs.size()}));
  auto pick = [](const std::vector<int>& v, int step, int steps) {
    const int idx = static_cast<int>(
        (static_cast<long long>(step) * (static_cast<long long>(v.size()) - 1)) /
        std::max(1, steps - 1));
    return v[static_cast<std::size_t>(idx)];
  };
  // Ladder rungs: min everything -> ... -> max everything, with buffers
  // leading DVFS by one step.
  const int rungs = 2 * steps;
  for (int r = 0; r < rungs; ++r) {
    noc::NocConfig c;
    const int buf_step = std::min(steps - 1, (r + 1) / 2);
    const int dvfs_step = std::min(steps - 1, r / 2);
    c.active_vcs = pick(vcs, buf_step, steps);
    c.active_depth = pick(depths, buf_step, steps);
    c.dvfs_level = pick(dvfs, dvfs_step, steps);
    const int action = space.index_of(c);
    if (ladder_.empty() || ladder_.back() != action) ladder_.push_back(action);
  }
  position_ = static_cast<int>(ladder_.size()) - 1;  // start fully provisioned
}

void HeuristicController::begin_episode() {
  position_ = static_cast<int>(ladder_.size()) - 1;
  calm_streak_ = 0;
}

int HeuristicController::decide(const noc::EpochStats& stats,
                                const rl::State& /*state*/) {
  // Pressure signals (raw stats; thresholds in natural units).
  const double backlog_per_node =
      static_cast<double>(stats.source_queue_total) /
      std::max(1, params_.num_nodes);
  const bool pressure =
      stats.avg_buffer_occupancy > params_.occupancy_hi ||
      stats.avg_latency > params_.latency_hi ||
      backlog_per_node > params_.backlog_hi;
  const bool calm = stats.avg_buffer_occupancy < params_.occupancy_lo &&
                    stats.avg_latency < 0.5 * params_.latency_hi &&
                    backlog_per_node < 0.2;

  if (pressure) {
    calm_streak_ = 0;
    position_ = std::min(position_ + 1, static_cast<int>(ladder_.size()) - 1);
  } else if (calm) {
    ++calm_streak_;
    if (calm_streak_ >= params_.calm_epochs_to_downshift) {
      calm_streak_ = 0;
      position_ = std::max(position_ - 1, 0);
    }
  } else {
    calm_streak_ = 0;
  }
  return ladder_[static_cast<std::size_t>(position_)];
}

DrlController::DrlController(const ActionSpace& /*space*/, rl::DqnAgent& agent,
                             std::string label)
    : agent_(agent), label_(std::move(label)) {}

int DrlController::decide(const noc::EpochStats&, const rl::State& state) {
  return agent_.act_greedy(state);
}

}  // namespace drlnoc::core
