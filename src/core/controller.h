// Configuration controllers — the policies compared in the experiments.
// A controller maps the observed epoch (stats + feature vector) to an action
// index in the shared ActionSpace:
//   * StaticController     — any fixed configuration (static-max/min etc.)
//   * HeuristicController  — threshold escalation ladder with hysteresis,
//                            the classic hand-tuned baseline
//   * DrlController        — greedy policy of a trained DQN agent
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/action_space.h"
#include "noc/network.h"
#include "rl/dqn.h"
#include "rl/env.h"

namespace drlnoc::core {

class Controller {
 public:
  virtual ~Controller() = default;
  virtual std::string name() const = 0;
  /// Chooses the next epoch's configuration (an ActionSpace index).
  virtual int decide(const noc::EpochStats& stats, const rl::State& state) = 0;
  /// Called at episode start.
  virtual void begin_episode() {}
};

/// Always the same configuration.
class StaticController : public Controller {
 public:
  StaticController(const ActionSpace& space, int action, std::string label);
  static std::unique_ptr<StaticController> maximal(const ActionSpace& space);
  static std::unique_ptr<StaticController> minimal(const ActionSpace& space);

  std::string name() const override { return label_; }
  int decide(const noc::EpochStats&, const rl::State&) override {
    return action_;
  }
  int action() const { return action_; }

 private:
  int action_;
  std::string label_;
};

/// Threshold rules with hysteresis over an escalation ladder: step the
/// configuration up under pressure (occupancy / backlog / latency high),
/// step it down after a streak of calm epochs. This is the hand-tuned
/// controller DRL must beat.
struct HeuristicParams {
  double occupancy_hi = 0.35;
  double occupancy_lo = 0.10;
  double latency_hi = 80.0;    ///< core cycles
  double backlog_hi = 2.0;     ///< packets per node
  int num_nodes = 64;          ///< normalizes the backlog threshold
  int calm_epochs_to_downshift = 3;
};

class HeuristicController : public Controller {
 public:
  HeuristicController(const ActionSpace& space, HeuristicParams params = {});

  std::string name() const override { return "heuristic"; }
  void begin_episode() override;
  int decide(const noc::EpochStats& stats, const rl::State& state) override;

  int ladder_position() const { return position_; }
  int ladder_size() const { return static_cast<int>(ladder_.size()); }

 private:
  const ActionSpace& space_;
  HeuristicParams params_;
  std::vector<int> ladder_;  ///< action indices, least -> most capable
  int position_ = 0;
  int calm_streak_ = 0;
};

/// Greedy policy of a (trained) DQN agent. Non-owning.
class DrlController : public Controller {
 public:
  DrlController(const ActionSpace& space, rl::DqnAgent& agent,
                std::string label = "drl");
  std::string name() const override { return label_; }
  int decide(const noc::EpochStats&, const rl::State& state) override;

 private:
  rl::DqnAgent& agent_;
  std::string label_;
};

/// DrlController that owns its agent — for parallel evaluation tasks, where
/// each worker carries a private frozen clone of the trained policy.
class OwningDrlController : public DrlController {
 public:
  OwningDrlController(const ActionSpace& space,
                      std::unique_ptr<rl::DqnAgent> agent,
                      std::string label = "drl")
      : DrlController(space, *agent, std::move(label)),
        agent_(std::move(agent)) {}

 private:
  std::unique_ptr<rl::DqnAgent> agent_;
};

}  // namespace drlnoc::core
