// NocConfigEnv: the epoch-level MDP over the cycle-accurate simulator.
// Each RL step = apply a configuration, simulate one epoch, observe features,
// receive the energy/latency reward. This is the glue between the RL
// substrate and the NoC substrate — the system the paper trains.
#pragma once

#include <memory>
#include <vector>

#include "core/action_space.h"
#include "core/features.h"
#include "core/reward.h"
#include "noc/network.h"
#include "noc/workload.h"
#include "rl/env.h"
#include "scenario/scenario.h"
#include "trace/trace.h"

namespace drlnoc::obs {
class FlightRecorder;
class NetworkMetrics;
}  // namespace drlnoc::obs

namespace drlnoc::scenario {
class CompositeWorkload;
}  // namespace drlnoc::scenario

namespace drlnoc::core {

struct NocEnvParams {
  noc::NetworkParams net{};
  noc::PowerParams power{};
  ActionSpace actions = ActionSpace::standard();
  std::vector<noc::Phase> phases{};  ///< empty => PhasedWorkload::standard
  /// When set, episodes replay this application trace (dependency-aware,
  /// looping — see trace/trace_workload.h) instead of the phased workload.
  /// Trace replay ignores the traffic seed and phase offset: the arrival
  /// process is the trace itself, modulated only by simulated congestion.
  std::shared_ptr<const trace::Trace> trace{};
  double trace_rate_scale = 1.0;  ///< load knob for trace episodes
  /// When set, episodes run this multi-tenant scenario: the fabric comes
  /// from the scenario (`net` is overridden by scenario->net — except the
  /// traffic seed, which stays with `net.seed` so the evaluation protocol's
  /// per-replica/per-episode seeding applies to scenarios too), the
  /// workload is the deterministic composite of the scenario's tenants, and
  /// epoch stats carry per-tenant slices. Mutually exclusive with `trace`.
  std::shared_ptr<const scenario::Scenario> scenario{};
  /// When true (default) a scenario's per-tenant QoS annotations switch the
  /// reward and feature extractor into tenant-aware mode (reward.tenant_qos
  /// is filled from the scenario unless already set). False ignores the
  /// annotations — the aggregate objective, i.e. the DRL-aggregate ablation
  /// in bench/table6_qos. QoS-free scenarios behave identically either way.
  bool scenario_qos = true;
  std::uint64_t epoch_cycles = 512;  ///< router cycles per epoch
  int epochs_per_episode = 48;
  RewardParams reward{};
  std::uint64_t seed = 1;
  /// When true (default) each reset() reseeds the traffic so the agent
  /// cannot overfit one arrival sequence.
  bool reseed_each_episode = true;
  /// When true (default), training episodes start at a random point of the
  /// phased workload; evaluation (see evaluate()) always starts at phase 0.
  bool random_phase_offset = true;
  /// Non-owning observability taps, re-attached to the fabric on every
  /// episode reset. Never copied into parallel experiment workers (the
  /// recorder is not thread-safe); core/parallel strips them per task.
  obs::FlightRecorder* recorder = nullptr;
  obs::NetworkMetrics* metrics = nullptr;
};

class NocConfigEnv : public rl::Environment {
 public:
  explicit NocConfigEnv(NocEnvParams params);
  ~NocConfigEnv() override;

  std::string name() const override { return "noc_config"; }
  std::size_t state_size() const override;
  int num_actions() const override { return params_.actions.size(); }
  rl::State reset() override;
  rl::StepResult step(int action) override;

  /// Evaluation mode: fixed traffic seed and phase offset 0, so different
  /// controllers see byte-identical workloads. evaluate() toggles this.
  void set_eval_mode(bool eval) { eval_mode_ = eval; }
  bool eval_mode() const { return eval_mode_; }

  const ActionSpace& actions() const { return params_.actions; }
  const RewardFunction& reward() const { return reward_; }
  const NocEnvParams& params() const { return params_; }
  /// Stats of the epoch the last step() simulated.
  const noc::EpochStats& last_stats() const { return last_stats_; }
  /// The active episode's injector; null before the first reset().
  const noc::TrafficInjector* workload() const { return workload_.get(); }
  /// Non-null when the episode runs a PhasedWorkload (i.e. no trace set).
  const noc::PhasedWorkload* phased_workload() const { return phased_; }
  /// Non-null when the episode runs a multi-tenant scenario.
  const scenario::CompositeWorkload* composite_workload() const {
    return composite_;
  }
  int episode() const { return episode_; }
  /// Positions the episode counter so the NEXT reset() runs global episode
  /// `episode` (0-based) of the serial seed stream: reset() pre-increments,
  /// so after seek_episode(g) + reset() the traffic seed is exactly what a
  /// serial trainer would use on its (g+1)-th episode. Parallel training
  /// lanes use this to interleave the one serial episode sequence.
  void seek_episode(int episode) { episode_ = episode; }
  /// The auto-calibrated power normalizer (max-config power at the
  /// workload's busiest phase), in mW.
  double power_ref_mw() const { return power_ref_mw_; }

 private:
  void build_network();
  double calibrate_power_ref();

  NocEnvParams params_;
  FeatureExtractor features_;
  RewardFunction reward_;
  std::unique_ptr<noc::Network> net_;
  std::unique_ptr<noc::TrafficInjector> workload_;
  noc::PhasedWorkload* phased_ = nullptr;  ///< non-null for phased episodes
  scenario::CompositeWorkload* composite_ = nullptr;  ///< scenario episodes
  noc::EpochStats last_stats_{};
  int episode_ = 0;
  int epoch_in_episode_ = 0;
  double power_ref_mw_ = 0.0;
  bool eval_mode_ = false;
};

}  // namespace drlnoc::core
