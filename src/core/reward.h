// The self-configuration reward: a negated weighted energy/latency objective
// with a saturation penalty. Normalizers are fixed references so rewards are
// comparable across epochs and configurations.
#pragma once

#include "noc/network.h"

namespace drlnoc::core {

struct RewardParams {
  double w_latency = 1.0;
  double w_power = 1.0;
  double w_saturation = 4.0;
  double latency_ref = 60.0;   ///< core cycles; typical low-load latency
  double power_ref_mw = 0.0;   ///< 0 => auto-calibrated by the environment
  double core_freq_ghz = 2.0;
};

class RewardFunction {
 public:
  explicit RewardFunction(RewardParams params) : params_(params) {}

  const RewardParams& params() const { return params_; }
  void set_power_ref(double mw) { params_.power_ref_mw = mw; }

  /// Reward for one epoch. Typically in [-w_lat - w_pow - w_sat, 0).
  double compute(const noc::EpochStats& stats) const;

  /// Components, for inspection / reward-weight ablation (T3).
  struct Breakdown {
    double latency_term = 0.0;     ///< already weighted, >= 0
    double power_term = 0.0;
    double saturation_term = 0.0;
    double reward = 0.0;
  };
  Breakdown breakdown(const noc::EpochStats& stats) const;

 private:
  RewardParams params_;
};

}  // namespace drlnoc::core
