// The self-configuration reward: a negated weighted energy/latency objective
// with a saturation penalty. Normalizers are fixed references so rewards are
// comparable across epochs and configurations.
//
// Tenant-aware QoS mode: when `RewardParams::tenant_qos` is non-empty the
// reward additionally shapes over the per-tenant epoch slices
// (EpochStats.tenants, one spec per tenant) — latency-critical tenants add
// an SLO-violation penalty when their p95 exceeds its target, background
// tenants earn back part of the power objective when the fabric runs below
// the power reference while carrying their traffic ("squeeze background
// energy, protect latency-critical latency"). With `tenant_qos` empty the
// function is bit-identical to the pre-QoS aggregate objective.
#pragma once

#include <vector>

#include "noc/network.h"

namespace drlnoc::core {

/// QoS class of one tenant, as the reward sees it (core-side mirror of
/// scenario::QosClass — core/reward must not depend on the scenario layer).
enum class TenantQosClass {
  kLatencyCritical,  ///< SLO-violation penalty against p95_target
  kBestEffort,       ///< no extra term
  kBackground,       ///< energy credit for throttling
};

/// Per-tenant QoS spec; index-aligned with EpochStats.tenants.
struct TenantQosSpec {
  TenantQosClass cls = TenantQosClass::kBestEffort;
  /// p95 latency SLO in core cycles; required (> 0) for latency-critical
  /// tenants, must stay 0 for every other class.
  double p95_target = 0.0;
};

struct RewardParams {
  double w_latency = 1.0;
  double w_power = 1.0;
  double w_saturation = 4.0;
  double latency_ref = 60.0;   ///< core cycles; typical low-load latency
  double power_ref_mw = 0.0;   ///< 0 => auto-calibrated by the environment
  double core_freq_ghz = 2.0;

  // Tenant-aware QoS mode (empty tenant_qos = aggregate objective).
  double w_slo = 4.0;  ///< weight of each tenant's SLO-violation penalty
  /// Weight of the background energy credit: earned in proportion to how
  /// far power runs below the reference and the background share of traffic.
  double w_background_energy = 0.5;
  std::vector<TenantQosSpec> tenant_qos;

  /// Throws std::invalid_argument on negative/nonfinite weights, refs, or
  /// QoS targets (checked by the RewardFunction constructor).
  void validate() const;
};

class RewardFunction {
 public:
  /// Validates `params` (std::invalid_argument on bad weights/refs/targets).
  explicit RewardFunction(RewardParams params);

  const RewardParams& params() const { return params_; }
  void set_power_ref(double mw) { params_.power_ref_mw = mw; }

  /// Reward for one epoch. Typically in [-w_lat - w_pow - w_sat, 0) in
  /// aggregate mode; QoS mode adds [-w_slo, 0] per latency-critical tenant
  /// and up to +w_background_energy of credit. In QoS mode the epoch must
  /// carry exactly one tenant slice per spec (std::invalid_argument).
  double compute(const noc::EpochStats& stats) const;

  /// Components, for inspection / reward-weight ablation (T3).
  struct TenantTerms {
    double slo_term = 0.0;       ///< already weighted, >= 0 (penalty)
    double energy_credit = 0.0;  ///< already weighted, >= 0 (credit)
  };
  struct Breakdown {
    double latency_term = 0.0;     ///< already weighted, >= 0
    double power_term = 0.0;
    double saturation_term = 0.0;
    /// One entry per tenant_qos spec (empty in aggregate mode). The scalar
    /// satisfies exactly:
    ///   reward == -(latency_term + power_term + saturation_term
    ///               + sum(slo_term) - sum(energy_credit))
    /// with the sums accumulated in tenant order.
    std::vector<TenantTerms> tenants;
    double reward = 0.0;
  };
  Breakdown breakdown(const noc::EpochStats& stats) const;

 private:
  RewardParams params_;
};

}  // namespace drlnoc::core
