#include "core/reward.h"

#include <algorithm>
#include <cmath>

namespace drlnoc::core {

RewardFunction::Breakdown RewardFunction::breakdown(
    const noc::EpochStats& stats) const {
  Breakdown b;

  // Latency: squashed so saturated epochs don't dominate the scale; an
  // epoch with no completed packets is treated as fully saturated.
  double lat_norm;
  if (stats.packets_received == 0 && stats.packets_offered > 0) {
    lat_norm = 1.0;
  } else {
    const double l = stats.avg_latency / params_.latency_ref;
    lat_norm = l / (l + 1.0);  // in [0, 1)
  }
  b.latency_term = params_.w_latency * lat_norm;

  const double power = stats.avg_power_mw(params_.core_freq_ghz);
  const double ref = params_.power_ref_mw > 0.0 ? params_.power_ref_mw : 1.0;
  b.power_term = params_.w_power * std::min(2.0, power / ref);

  // Saturation: offered load the network failed to carry, plus standing
  // backlog (so the agent cannot park packets at the sources for free).
  double sat = 0.0;
  if (stats.offered_rate > 1e-9) {
    sat = std::max(0.0, stats.offered_rate - stats.accepted_rate) /
          stats.offered_rate;
  }
  const double backlog_pressure =
      static_cast<double>(stats.source_queue_total) /
      std::max<double>(1.0, static_cast<double>(stats.packets_offered) + 1.0);
  sat = std::min(1.0, sat + 0.5 * std::min(1.0, backlog_pressure));
  b.saturation_term = params_.w_saturation * sat;

  b.reward = -(b.latency_term + b.power_term + b.saturation_term);
  return b;
}

double RewardFunction::compute(const noc::EpochStats& stats) const {
  return breakdown(stats).reward;
}

}  // namespace drlnoc::core
