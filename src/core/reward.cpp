#include "core/reward.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace drlnoc::core {

namespace {

void check_weight(const char* name, double v, bool positive = false) {
  const bool ok = std::isfinite(v) && (positive ? v > 0.0 : v >= 0.0);
  if (!ok) {
    throw std::invalid_argument(
        std::string("reward: ") + name + " must be finite and " +
        (positive ? "> 0" : ">= 0") + " (got " + std::to_string(v) + ")");
  }
}

}  // namespace

void RewardParams::validate() const {
  check_weight("w_latency", w_latency);
  check_weight("w_power", w_power);
  check_weight("w_saturation", w_saturation);
  check_weight("w_slo", w_slo);
  check_weight("w_background_energy", w_background_energy);
  check_weight("latency_ref", latency_ref, /*positive=*/true);
  check_weight("power_ref_mw", power_ref_mw);
  check_weight("core_freq_ghz", core_freq_ghz, /*positive=*/true);
  for (std::size_t i = 0; i < tenant_qos.size(); ++i) {
    const TenantQosSpec& q = tenant_qos[i];
    const std::string who = "reward: tenant_qos[" + std::to_string(i) + "] ";
    if (q.cls == TenantQosClass::kLatencyCritical) {
      if (!(q.p95_target > 0.0) || !std::isfinite(q.p95_target)) {
        throw std::invalid_argument(
            who + "is latency_critical and requires a finite p95_target > 0 "
            "core cycles (got " + std::to_string(q.p95_target) + ")");
      }
    } else if (q.p95_target != 0.0) {
      throw std::invalid_argument(
          who + "has a p95_target but is not latency_critical (targets are "
          "only meaningful for latency_critical tenants)");
    }
  }
}

RewardFunction::RewardFunction(RewardParams params)
    : params_(std::move(params)) {
  params_.validate();
}

RewardFunction::Breakdown RewardFunction::breakdown(
    const noc::EpochStats& stats) const {
  Breakdown b;

  // Latency: squashed so saturated epochs don't dominate the scale; an
  // epoch with no completed packets is treated as fully saturated.
  double lat_norm;
  if (stats.packets_received == 0 && stats.packets_offered > 0) {
    lat_norm = 1.0;
  } else {
    const double l = stats.avg_latency / params_.latency_ref;
    lat_norm = l / (l + 1.0);  // in [0, 1)
  }
  b.latency_term = params_.w_latency * lat_norm;

  const double power = stats.avg_power_mw(params_.core_freq_ghz);
  const double ref = params_.power_ref_mw > 0.0 ? params_.power_ref_mw : 1.0;
  b.power_term = params_.w_power * std::min(2.0, power / ref);

  // Saturation: offered load the network failed to carry, plus standing
  // backlog (so the agent cannot park packets at the sources for free).
  double sat = 0.0;
  if (stats.offered_rate > 1e-9) {
    sat = std::max(0.0, stats.offered_rate - stats.accepted_rate) /
          stats.offered_rate;
  }
  const double backlog_pressure =
      static_cast<double>(stats.source_queue_total) /
      std::max<double>(1.0, static_cast<double>(stats.packets_offered) + 1.0);
  sat = std::min(1.0, sat + 0.5 * std::min(1.0, backlog_pressure));
  b.saturation_term = params_.w_saturation * sat;

  if (params_.tenant_qos.empty()) {
    // Aggregate mode: bit-identical to the pre-QoS objective.
    b.reward = -(b.latency_term + b.power_term + b.saturation_term);
    return b;
  }

  if (stats.tenants.size() != params_.tenant_qos.size()) {
    throw std::invalid_argument(
        "reward: QoS mode describes " +
        std::to_string(params_.tenant_qos.size()) +
        " tenants but the epoch carries " +
        std::to_string(stats.tenants.size()) +
        " tenant slices (was tenant tracking enabled?)");
  }

  // Background credit scale: how far the fabric runs below the power
  // reference. A tenant's credit is that saving times its share of the
  // delivered flits, so throttling only pays when background traffic is
  // actually what the fabric carries.
  const double power_saving = std::max(0.0, 1.0 - power / ref);
  std::uint64_t total_flits = 0;
  for (const noc::TenantEpochStats& ts : stats.tenants) {
    total_flits += ts.flits_ejected;
  }

  b.tenants.resize(params_.tenant_qos.size());
  double slo_sum = 0.0;
  double credit_sum = 0.0;
  for (std::size_t i = 0; i < params_.tenant_qos.size(); ++i) {
    const TenantQosSpec& q = params_.tenant_qos[i];
    const noc::TenantEpochStats& ts = stats.tenants[i];
    TenantTerms& terms = b.tenants[i];
    switch (q.cls) {
      case TenantQosClass::kLatencyCritical: {
        if (ts.packets_offered > 0 && ts.packets_measured == 0) {
          // Offered traffic, nothing delivered: a full violation, like the
          // aggregate latency term's zero-delivery convention.
          terms.slo_term = params_.w_slo;
        } else if (ts.packets_measured > 0) {
          const double excess =
              std::max(0.0, ts.p95_latency / q.p95_target - 1.0);
          terms.slo_term = params_.w_slo * (excess / (excess + 1.0));
        }
        slo_sum += terms.slo_term;
        break;
      }
      case TenantQosClass::kBackground: {
        const double share =
            total_flits > 0 ? static_cast<double>(ts.flits_ejected) /
                                  static_cast<double>(total_flits)
                            : 0.0;
        terms.energy_credit =
            params_.w_background_energy * power_saving * share;
        credit_sum += terms.energy_credit;
        break;
      }
      case TenantQosClass::kBestEffort:
        break;
    }
  }

  b.reward = -(b.latency_term + b.power_term + b.saturation_term + slo_sum -
               credit_sum);
  return b;
}

double RewardFunction::compute(const noc::EpochStats& stats) const {
  return breakdown(stats).reward;
}

}  // namespace drlnoc::core
