#include "core/action_space.h"

#include <algorithm>

namespace drlnoc::core {

ActionSpace::ActionSpace(std::vector<int> vc_options,
                         std::vector<int> depth_options,
                         std::vector<int> dvfs_options)
    : vcs_(std::move(vc_options)), depths_(std::move(depth_options)),
      dvfs_(std::move(dvfs_options)) {
  if (vcs_.empty() || depths_.empty() || dvfs_.empty()) {
    throw std::invalid_argument("ActionSpace: empty option list");
  }
  // Sorted options make action 0 the least capable configuration and the
  // last action the most capable one (the escalation ladder relies on this).
  std::sort(vcs_.begin(), vcs_.end());
  std::sort(depths_.begin(), depths_.end());
  std::sort(dvfs_.begin(), dvfs_.end());
}

ActionSpace ActionSpace::standard(int num_dvfs_levels) {
  std::vector<int> dvfs(static_cast<std::size_t>(num_dvfs_levels));
  for (int i = 0; i < num_dvfs_levels; ++i) dvfs[static_cast<std::size_t>(i)] = i;
  return ActionSpace({1, 2, 4}, {2, 4, 8}, dvfs);
}

ActionSpace ActionSpace::standard_two_class(int num_dvfs_levels) {
  std::vector<int> dvfs(static_cast<std::size_t>(num_dvfs_levels));
  for (int i = 0; i < num_dvfs_levels; ++i) dvfs[static_cast<std::size_t>(i)] = i;
  return ActionSpace({2, 4}, {2, 4, 8}, dvfs);
}

int ActionSpace::size() const {
  return static_cast<int>(vcs_.size() * depths_.size() * dvfs_.size());
}

noc::NocConfig ActionSpace::decode(int action) const {
  if (action < 0 || action >= size()) {
    throw std::out_of_range("action index out of range");
  }
  const int nd = static_cast<int>(dvfs_.size());
  const int ndepth = static_cast<int>(depths_.size());
  noc::NocConfig c;
  c.dvfs_level = dvfs_[static_cast<std::size_t>(action % nd)];
  c.active_depth = depths_[static_cast<std::size_t>((action / nd) % ndepth)];
  c.active_vcs = vcs_[static_cast<std::size_t>(action / (nd * ndepth))];
  return c;
}

int ActionSpace::index_of(const noc::NocConfig& config) const {
  auto find = [](const std::vector<int>& v, int x, const char* what) {
    const auto it = std::find(v.begin(), v.end(), x);
    if (it == v.end()) {
      throw std::invalid_argument(std::string("config value not in action "
                                              "space: ") + what);
    }
    return static_cast<int>(it - v.begin());
  };
  const int vi = find(vcs_, config.active_vcs, "vcs");
  const int di = find(depths_, config.active_depth, "depth");
  const int fi = find(dvfs_, config.dvfs_level, "dvfs");
  const int nd = static_cast<int>(dvfs_.size());
  const int ndepth = static_cast<int>(depths_.size());
  return vi * nd * ndepth + di * nd + fi;
}

std::string ActionSpace::describe(int action) const {
  return noc::to_string(decode(action));
}

}  // namespace drlnoc::core
