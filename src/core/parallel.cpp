#include "core/parallel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace drlnoc::core {

// Calibrating the power reference costs two max-config epochs; do it once
// up front instead of once per task (every task's fresh environment would
// deterministically recompute the same value from the same parameters).
NocEnvParams with_calibrated_power_ref(const NocEnvParams& params) {
  NocEnvParams p = params;
  // Observability taps are single-threaded; parallel workers must never
  // share them, so every task environment runs untapped.
  p.recorder = nullptr;
  p.metrics = nullptr;
  if (p.reward.power_ref_mw <= 0.0) {
    p.reward.power_ref_mw = NocConfigEnv(p).power_ref_mw();
  }
  return p;
}

std::vector<EpisodeResult> sweep_static_parallel(
    const NocEnvParams& base, const ExperimentRunner& runner) {
  const NocEnvParams params = with_calibrated_power_ref(base);
  const int n = params.actions.size();
  std::vector<EpisodeResult> results =
      runner.map<EpisodeResult>(n, [&params](int a) {
        NocConfigEnv env(params);
        StaticController controller(
            env.actions(), a, "static[" + env.actions().describe(a) + "]");
        return evaluate(env, controller);
      });
  std::sort(results.begin(), results.end(),
            [](const EpisodeResult& x, const EpisodeResult& y) {
              return x.mean_edp < y.mean_edp;
            });
  return results;
}

MetricSummary summarize_metric(const std::vector<double>& xs) {
  MetricSummary s;
  const std::size_t n = xs.size();
  if (n == 0) return s;
  double sum = 0.0;
  for (double x : xs) {
    if (std::isnan(x)) {
      throw std::invalid_argument(
          "summarize_metric: NaN sample (a NaN metric is an upstream bug)");
    }
    sum += x;
  }
  s.mean = sum / static_cast<double>(n);
  if (n < 2) return s;
  double sq = 0.0;
  for (double x : xs) {
    const double d = x - s.mean;
    sq += d * d;
  }
  s.stddev = std::sqrt(sq / static_cast<double>(n - 1));
  s.ci95 = 1.96 * s.stddev / std::sqrt(static_cast<double>(n));
  return s;
}

namespace {

MetricSummary summarize(const std::vector<Replica>& replicas,
                        double (*metric)(const EpisodeResult&)) {
  std::vector<double> xs;
  xs.reserve(replicas.size());
  for (const Replica& r : replicas) xs.push_back(metric(r.result));
  return summarize_metric(xs);
}

}  // namespace

ReplicationResult evaluate_many(const NocEnvParams& base,
                                const ControllerFactory& controller_factory,
                                int replicas, const ExperimentRunner& runner) {
  // All replicas share the base seed's power calibration so their rewards
  // are computed against one common reference (and each task skips the
  // calibration epochs).
  const NocEnvParams calibrated = with_calibrated_power_ref(base);
  ReplicationResult out;
  out.replicas = runner.map<Replica>(replicas, [&](int i) {
    Replica rep;
    // The deterministic per-task RNG stream: evaluation mode uses net.seed
    // verbatim, so offsetting it by the task index gives each replica an
    // independent, reproducible traffic sequence.
    NocEnvParams p = calibrated;
    p.net.seed = base.net.seed + static_cast<std::uint64_t>(i);
    rep.seed = p.net.seed;
    NocConfigEnv env(p);
    std::unique_ptr<Controller> controller = controller_factory(env);
    rep.result = evaluate(env, *controller);
    return rep;
  });
  out.reward = summarize(
      out.replicas, [](const EpisodeResult& r) { return r.total_reward; });
  out.latency = summarize(
      out.replicas, [](const EpisodeResult& r) { return r.mean_latency; });
  out.power_mw = summarize(
      out.replicas, [](const EpisodeResult& r) { return r.mean_power_mw; });
  out.edp = summarize(out.replicas,
                      [](const EpisodeResult& r) { return r.mean_edp; });
  return out;
}

}  // namespace drlnoc::core
