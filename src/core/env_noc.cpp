#include "core/env_noc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "noc/simulator.h"
#include "scenario/runtime.h"
#include "trace/trace_workload.h"

namespace drlnoc::core {

namespace {
/// Applied before member construction: a scenario overrides the network
/// section so the feature extractor and action-space checks see the
/// scenario's fabric. The traffic seed stays with NocEnvParams — the RL
/// evaluation protocol (per-replica seeds, per-episode reseeding) owns it;
/// the scenario's own seed governs standalone scenarioctl-style runs.
NocEnvParams resolve_scenario(NocEnvParams p) {
  if (p.scenario) {
    if (p.trace) {
      throw std::invalid_argument(
          "NocEnvParams: set either trace or scenario, not both");
    }
    p.scenario->validate();
    const std::uint64_t seed = p.net.seed;
    p.net = p.scenario->net;
    p.net.seed = seed;
    // QoS annotations switch reward + features into tenant-aware mode.
    // Explicitly provided reward.tenant_qos wins over the scenario's.
    if (p.scenario_qos && p.reward.tenant_qos.empty() &&
        p.scenario->has_qos()) {
      p.reward.tenant_qos.reserve(p.scenario->tenants.size());
      for (const scenario::TenantSpec& t : p.scenario->tenants) {
        TenantQosSpec q;
        switch (t.qos) {
          case scenario::QosClass::kLatencyCritical:
            q.cls = TenantQosClass::kLatencyCritical;
            break;
          case scenario::QosClass::kBestEffort:
            q.cls = TenantQosClass::kBestEffort;
            break;
          case scenario::QosClass::kBackground:
            q.cls = TenantQosClass::kBackground;
            break;
        }
        q.p95_target = t.p95_target;
        p.reward.tenant_qos.push_back(q);
      }
    }
  }
  if (!p.reward.tenant_qos.empty()) {
    if (!p.scenario) {
      throw std::invalid_argument(
          "NocEnvParams: reward.tenant_qos requires a scenario (only "
          "scenario episodes carry per-tenant epoch slices)");
    }
    if (p.reward.tenant_qos.size() != p.scenario->tenants.size()) {
      throw std::invalid_argument(
          "NocEnvParams: reward.tenant_qos describes " +
          std::to_string(p.reward.tenant_qos.size()) +
          " tenants but the scenario has " +
          std::to_string(p.scenario->tenants.size()));
    }
  }
  return p;
}
}  // namespace

NocConfigEnv::NocConfigEnv(NocEnvParams params)
    : params_(resolve_scenario(std::move(params))),
      features_(params_.actions, params_.net.width * params_.net.height,
                FeatureParams{}, params_.reward.tenant_qos),
      reward_(params_.reward) {
  // Validate the action space against the hardware limits.
  for (int a = 0; a < params_.actions.size(); ++a) {
    const noc::NocConfig c = params_.actions.decode(a);
    if (c.active_vcs > params_.net.max_vcs ||
        c.active_depth > params_.net.max_depth) {
      throw std::invalid_argument(
          "action space exceeds physical resources: " + noc::to_string(c));
    }
  }
  if (params_.trace) {
    params_.trace->validate();
    if (!(params_.trace_rate_scale > 0.0) ||
        !std::isfinite(params_.trace_rate_scale)) {
      throw std::invalid_argument(
          "trace_rate_scale must be finite and > 0, got " +
          std::to_string(params_.trace_rate_scale));
    }
    if (params_.trace->nodes > params_.net.width * params_.net.height) {
      throw std::invalid_argument(
          "trace addresses " + std::to_string(params_.trace->nodes) +
          " nodes but the network has only " +
          std::to_string(params_.net.width * params_.net.height));
    }
  } else if (params_.scenario) {
    // Already validated by resolve_scenario; nothing phased to default.
  } else if (params_.phases.empty()) {
    const auto topo = noc::make_topology(params_.net.topology,
                                         params_.net.width,
                                         params_.net.height);
    params_.phases = noc::PhasedWorkload::standard_phases(*topo);
  }
  power_ref_mw_ = calibrate_power_ref();
  reward_.set_power_ref(power_ref_mw_);
}

NocConfigEnv::~NocConfigEnv() = default;

double NocConfigEnv::calibrate_power_ref() {
  if (params_.reward.power_ref_mw > 0.0) return params_.reward.power_ref_mw;
  // Reference = power of the *most capable* configuration under the
  // workload's busiest phase; "power saving" numbers are relative to it.
  noc::NetworkParams np = params_.net;
  np.initial_config = params_.actions.decode(params_.actions.max_action());
  noc::Network net(np, params_.power);
  double max_rate = 0.0;
  if (params_.scenario) {
    max_rate =
        std::clamp(scenario::peak_offered_rate(*params_.scenario), 0.01, 0.5);
  } else if (params_.trace) {
    // Rough equivalent offered load of the trace's root packets, after the
    // rate-scale knob; a coarse normalizer is fine here.
    max_rate = std::clamp(
        params_.trace->summary().offered_rate * params_.trace_rate_scale,
        0.01, 0.5);
  }
  for (const noc::Phase& ph : params_.phases)
    max_rate = std::max(max_rate, ph.rate);
  noc::SteadyWorkload workload =
      noc::SteadyWorkload::make(net.topology(), "uniform", max_rate);
  net.run_epoch(&workload, 2000);  // warm-up, discard
  const noc::EpochStats stats = net.run_epoch(&workload, 2000);
  return std::max(1e-3, stats.avg_power_mw(params_.power.core_freq_ghz));
}

std::size_t NocConfigEnv::state_size() const {
  return features_.state_size();
}

void NocConfigEnv::build_network() {
  noc::NetworkParams np = params_.net;
  if (!eval_mode_ && params_.reseed_each_episode) {
    np.seed = params_.net.seed + 0x9e3779b9ULL * static_cast<std::uint64_t>(episode_);
  }
  workload_.reset();
  phased_ = nullptr;
  composite_ = nullptr;
  net_ = std::make_unique<noc::Network>(np, params_.power);
  // Observability taps survive episode resets: the rebuilt fabric re-attaches
  // the same recorder/metrics, so one trace spans a whole training run.
  if (params_.recorder != nullptr) net_->set_flight_recorder(params_.recorder);
  if (params_.metrics != nullptr) net_->set_metrics(params_.metrics);
  if (params_.scenario) {
    // Each episode gets its own fault model at the same seed, so fault
    // timing is reproducible per episode and independent of how many
    // episodes (or parallel experiment threads) ran before this one.
    if (params_.scenario->faults.enabled()) {
      net_->set_fault_model(params_.scenario->faults);
    }
    auto composite =
        scenario::build_workload(*params_.scenario, net_->topology());
    composite_ = composite.get();
    workload_ = std::move(composite);
    net_->set_tenant_tracking(params_.scenario->num_tenants());
    return;
  }
  if (params_.trace) {
    trace::TraceWorkloadParams tw;
    tw.rate_scale = params_.trace_rate_scale;
    tw.loop = true;  // RL episodes of any length stay well-defined
    workload_ = std::make_unique<trace::TraceWorkload>(params_.trace, tw);
    return;
  }
  auto phased = std::make_unique<noc::PhasedWorkload>(net_->topology(),
                                                      params_.phases);
  if (!eval_mode_ && params_.random_phase_offset) {
    util::Rng offset_rng(np.seed ^ 0xabcdef123456ULL);
    phased->set_start_offset(offset_rng.uniform() *
                             phased->total_duration());
  }
  phased_ = phased.get();
  workload_ = std::move(phased);
}

rl::State NocConfigEnv::reset() {
  ++episode_;
  epoch_in_episode_ = 0;
  build_network();
  features_.reset();
  last_stats_ = net_->run_epoch(workload_.get(), params_.epoch_cycles);
  return features_.extract(last_stats_);
}

rl::StepResult NocConfigEnv::step(int action) {
  if (!net_) throw std::logic_error("step() before reset()");
  net_->apply_config(params_.actions.decode(action));
  last_stats_ = net_->run_epoch(workload_.get(), params_.epoch_cycles);
  ++epoch_in_episode_;

  rl::StepResult out;
  out.reward = reward_.compute(last_stats_);
  out.next_state = features_.extract(last_stats_);
  out.done = epoch_in_episode_ >= params_.epochs_per_episode;
  return out;
}

}  // namespace drlnoc::core
