#include "core/trainer.h"

#include <algorithm>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "core/parallel.h"
#include "obs/profiler.h"

namespace drlnoc::core {

EpisodeResult evaluate(NocConfigEnv& env, Controller& controller,
                       bool keep_epochs) {
  obs::ScopedPhase prof(obs::Phase::kEvaluate);
  EpisodeResult out;
  out.controller = controller.name();
  controller.begin_episode();

  env.set_eval_mode(true);
  rl::State state = env.reset();
  noc::EpochStats stats = env.last_stats();
  const double core_freq = env.params().power.core_freq_ghz;

  double latency_weighted = 0.0;
  double power_time = 0.0;
  double edp_sum = 0.0;
  double time_sum = 0.0;
  std::uint64_t packets = 0, offered = 0;
  double node_cycles = 0.0;
  int epochs = 0;
  std::vector<double> tenant_latency_weighted;
  std::vector<std::uint64_t> tenant_measured;

  bool done = false;
  while (!done) {
    const int action = controller.decide(stats, state);
    const rl::StepResult r = env.step(action);
    stats = env.last_stats();
    state = r.next_state;
    done = r.done;

    out.total_reward += r.reward;
    latency_weighted +=
        stats.avg_latency * static_cast<double>(stats.packets_received);
    packets += stats.packets_received;
    offered += stats.packets_offered;
    power_time += stats.avg_power_mw(core_freq) * stats.core_cycles;
    time_sum += stats.core_cycles;
    edp_sum += stats.edp();
    node_cycles += stats.core_cycles *
                   static_cast<double>(env.params().net.width *
                                       env.params().net.height);
    out.p95_latency = std::max(out.p95_latency, stats.p95_latency);
    out.backlog_end = stats.source_queue_total;
    out.flits_dropped += stats.flits_dropped;
    out.retries += stats.retries;
    out.packets_lost += stats.packets_lost;
    out.rerouted_hops += stats.rerouted_hops;
    if (!stats.tenants.empty()) {
      out.tenants.resize(stats.tenants.size());
      tenant_latency_weighted.resize(stats.tenants.size(), 0.0);
      tenant_measured.resize(stats.tenants.size(), 0);
      const scenario::Scenario* scn = env.params().scenario.get();
      for (std::size_t i = 0; i < stats.tenants.size(); ++i) {
        const noc::TenantEpochStats& ts = stats.tenants[i];
        TenantEpisodeSummary& sum = out.tenants[i];
        sum.packets_offered += ts.packets_offered;
        sum.packets_received += ts.packets_received;
        sum.flits_ejected += ts.flits_ejected;
        sum.flits_dropped += ts.flits_dropped;
        sum.retries += ts.retries;
        sum.packets_lost += ts.packets_lost;
        sum.rerouted_hops += ts.rerouted_hops;
        sum.p95_latency = std::max(sum.p95_latency, ts.p95_latency);
        tenant_latency_weighted[i] +=
            ts.avg_latency * static_cast<double>(ts.packets_measured);
        tenant_measured[i] += ts.packets_measured;
        // SLO accounting against the scenario's declared target (if any) —
        // independent of whether the reward runs in QoS mode, so the
        // DRL-aggregate ablation reports hit rates too.
        const double target =
            scn && i < scn->tenants.size() ? scn->tenants[i].p95_target : 0.0;
        // An epoch counts when the tenant had traffic; starvation (offered
        // but nothing measured) is a miss, matching the reward path's
        // full-violation convention — only truly idle epochs are excused.
        if (target > 0.0 &&
            (ts.packets_measured > 0 || ts.packets_offered > 0)) {
          ++sum.slo_epochs;
          if (ts.packets_measured > 0 && ts.p95_latency <= target) {
            ++sum.slo_hits;
          }
        }
      }
    }
    if (keep_epochs) out.epochs.push_back(stats);
    out.actions.push_back(action);
    ++epochs;
  }

  env.set_eval_mode(false);
  out.mean_latency =
      packets > 0 ? latency_weighted / static_cast<double>(packets) : 0.0;
  out.mean_power_mw = time_sum > 0.0 ? power_time / time_sum : 0.0;
  out.mean_edp = epochs > 0 ? edp_sum / epochs : 0.0;
  out.offered_rate =
      node_cycles > 0.0 ? static_cast<double>(offered) / node_cycles : 0.0;
  out.accepted_rate =
      node_cycles > 0.0 ? static_cast<double>(packets) / node_cycles : 0.0;
  for (std::size_t i = 0; i < out.tenants.size(); ++i) {
    TenantEpisodeSummary& sum = out.tenants[i];
    sum.mean_latency =
        tenant_measured[i] > 0
            ? tenant_latency_weighted[i] /
                  static_cast<double>(tenant_measured[i])
            : 0.0;
    sum.accepted_rate =
        node_cycles > 0.0
            ? static_cast<double>(sum.packets_received) / node_cycles
            : 0.0;
    sum.slo_hit_rate =
        sum.slo_epochs > 0 ? static_cast<double>(sum.slo_hits) /
                                 static_cast<double>(sum.slo_epochs)
                           : 1.0;
  }
  return out;
}

TrainResult train_dqn(NocConfigEnv& env, rl::DqnAgent& agent,
                      const TrainParams& params) {
  TrainResult result;
  for (int ep = 0; ep < params.episodes; ++ep) {
    rl::State state = env.reset();
    double ep_return = 0.0;
    double loss_sum = 0.0;
    int loss_count = 0;
    bool done = false;
    while (!done) {
      int action;
      {
        obs::ScopedPhase rollout(obs::Phase::kRollout);
        action = agent.act(state);
      }
      rl::StepResult r;
      {
        obs::ScopedPhase env_step(obs::Phase::kEnvStep);
        r = env.step(action);
      }
      rl::Transition t;
      t.state = state;
      t.action = action;
      t.reward = r.reward;
      t.next_state = r.next_state;
      t.done = r.done;
      {
        obs::ScopedPhase learn(obs::Phase::kLearn);
        if (const auto loss = agent.observe(t)) {
          loss_sum += *loss;
          ++loss_count;
        }
      }
      ep_return += r.reward;
      state = r.next_state;
      done = r.done;
    }
    result.episode_returns.push_back(ep_return);
    result.episode_loss.push_back(loss_count ? loss_sum / loss_count : 0.0);

    if (params.eval_every > 0 && (ep + 1) % params.eval_every == 0) {
      DrlController greedy(env.actions(), agent);
      const EpisodeResult eval = evaluate(env, greedy);
      result.eval_rewards.push_back(eval.total_reward);
      result.eval_episodes.push_back(ep + 1);
      if (params.verbose) {
        std::cout << "episode " << ep + 1 << " return=" << ep_return
                  << " eval=" << eval.total_reward
                  << " eps=" << agent.epsilon() << '\n';
      }
    }
  }
  return result;
}

TrainResult train_dqn_parallel(const NocEnvParams& base, rl::DqnAgent& agent,
                               const ParallelTrainParams& params) {
  if (params.episodes < 0) {
    throw std::invalid_argument("train_dqn_parallel: episodes must be >= 0");
  }
  if (params.round < 1) {
    throw std::invalid_argument("train_dqn_parallel: round must be >= 1");
  }
  TrainResult result;
  if (params.episodes == 0) return result;

  const NocEnvParams calibrated = with_calibrated_power_ref(base);
  const int max_lanes = std::min(params.round, params.episodes);
  const ExperimentRunner runner(params.actors);

  // Lane environments persist across rounds; seek_episode() re-pins each
  // onto the serial per-episode seed stream before every reset, so lane l
  // of round r replays exactly the traffic a serial trainer would see on
  // episode r*round + l.
  std::vector<std::unique_ptr<NocConfigEnv>> envs;
  envs.reserve(static_cast<std::size_t>(max_lanes));
  for (int l = 0; l < max_lanes; ++l) {
    envs.push_back(std::make_unique<NocConfigEnv>(calibrated));
  }
  NocConfigEnv eval_env(calibrated);

  const int steps = calibrated.epochs_per_episode;
  const int num_actions = envs[0]->num_actions();
  std::vector<rl::State> states(static_cast<std::size_t>(max_lanes));
  std::vector<std::vector<rl::Transition>> collected(
      static_cast<std::size_t>(max_lanes));
  std::vector<double> returns(static_cast<std::size_t>(max_lanes), 0.0);
  std::vector<util::Rng> lane_rng;
  nn::Matrix batch_states;
  std::vector<int> greedy_actions;
  std::vector<int> actions(static_cast<std::size_t>(max_lanes), 0);

  const int rounds = (params.episodes + params.round - 1) / params.round;
  for (int r = 0; r < rounds; ++r) {
    const int first = r * params.round;
    const int lanes = std::min(params.round, params.episodes - first);

    // Episode resets simulate a warm-up epoch each, so they fan out too.
    runner.for_each(lanes, [&](int l) {
      envs[l]->seek_episode(first + l);
      states[l] = envs[l]->reset();
    });
    lane_rng.clear();
    for (int l = 0; l < lanes; ++l) {
      // Per-episode exploration sub-seed: a pure function of the global
      // episode index, so the exploration sequence is independent of both
      // the actor count and the round size a lane happens to land in.
      lane_rng.emplace_back(agent.params().seed +
                            0x9e3779b97f4a7c15ULL *
                                (static_cast<std::uint64_t>(first + l) + 1));
      collected[l].clear();
      returns[l] = 0.0;
    }

    for (int s = 0; s < steps; ++s) {
      {
        // ONE batched forward selects greedy actions for every lane — the
        // workspace MLP turns N per-lane matmuls into one N-row matmul.
        // Greedy values are computed for exploring lanes too: the forward
        // consumes no randomness, so it cannot perturb determinism.
        obs::ScopedPhase rollout(obs::Phase::kRollout);
        batch_states.resize_fast(static_cast<std::size_t>(lanes),
                                 states[0].size());
        for (int l = 0; l < lanes; ++l) batch_states.set_row(l, states[l]);
        agent.act_greedy_batch(batch_states, greedy_actions);
        for (int l = 0; l < lanes; ++l) {
          // Epsilon at the lane's GLOBAL step index — fixed-length episodes
          // make the serial step count a closed form — with the draw order
          // of DqnAgent::act (chance, then below only when exploring).
          const std::uint64_t global_step =
              static_cast<std::uint64_t>(first + l) *
                  static_cast<std::uint64_t>(steps) +
              static_cast<std::uint64_t>(s);
          const double eps = agent.epsilon_at(global_step);
          actions[l] =
              lane_rng[l].chance(eps)
                  ? static_cast<int>(lane_rng[l].below(
                        static_cast<std::uint64_t>(num_actions)))
                  : greedy_actions[l];
        }
      }
      runner.for_each(lanes, [&](int l) {
        obs::ScopedPhase env_step(obs::Phase::kEnvStep);
        const rl::StepResult sr = envs[l]->step(actions[l]);
        rl::Transition t;
        t.state = states[l];
        t.action = actions[l];
        t.reward = sr.reward;
        t.next_state = sr.next_state;
        t.done = sr.done;
        collected[l].push_back(std::move(t));
        returns[l] += sr.reward;
        states[l] = sr.next_state;
      });
    }

    // Deterministic merge: transitions drain step-major / lane-minor, the
    // fixed round-robin order the design doc pins. Learn steps fire inside
    // observe() exactly as in serial training; the online net was frozen
    // through the rollout above, so which thread stepped which lane can
    // never leak into the weights.
    std::vector<double> loss_sum(static_cast<std::size_t>(lanes), 0.0);
    std::vector<int> loss_count(static_cast<std::size_t>(lanes), 0);
    {
      obs::ScopedPhase learn(obs::Phase::kLearn);
      for (int s = 0; s < steps; ++s) {
        for (int l = 0; l < lanes; ++l) {
          if (const auto loss = agent.observe(collected[l][s])) {
            loss_sum[l] += *loss;
            ++loss_count[l];
          }
        }
      }
    }
    for (int l = 0; l < lanes; ++l) {
      result.episode_returns.push_back(returns[l]);
      result.episode_loss.push_back(
          loss_count[l] ? loss_sum[l] / loss_count[l] : 0.0);
    }

    // Greedy evals at the same global-episode milestones as the serial
    // trainer, run after the round's drain so they see the updated policy.
    if (params.eval_every > 0) {
      for (int l = 0; l < lanes; ++l) {
        const int g = first + l;
        if ((g + 1) % params.eval_every != 0) continue;
        DrlController greedy(eval_env.actions(), agent);
        const EpisodeResult eval = evaluate(eval_env, greedy);
        result.eval_rewards.push_back(eval.total_reward);
        result.eval_episodes.push_back(g + 1);
        if (params.verbose) {
          std::cout << "episode " << g + 1 << " return=" << returns[l]
                    << " eval=" << eval.total_reward
                    << " eps=" << agent.epsilon() << '\n';
        }
      }
    }
  }
  return result;
}

std::vector<EpisodeResult> sweep_static(NocConfigEnv& env, int jobs) {
  // Evaluation mode pins the traffic seed and phase offset, so a fresh
  // environment per action reproduces exactly what a shared environment
  // would see — which is what lets the sweep fan out across threads.
  const ExperimentRunner runner(jobs);
  return sweep_static_parallel(env.params(), runner);
}

}  // namespace drlnoc::core
