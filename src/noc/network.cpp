#include "noc/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/network_metrics.h"
#include "obs/profiler.h"

namespace drlnoc::noc {

std::string to_string(const NocConfig& c) {
  return "vc=" + std::to_string(c.active_vcs) +
         " depth=" + std::to_string(c.active_depth) +
         " dvfs=" + std::to_string(c.dvfs_level);
}

double EpochStats::avg_power_mw(double core_freq_ghz) const {
  if (core_cycles <= 0.0) return 0.0;
  const double wall_ns = core_cycles / core_freq_ghz;
  return total_energy_pj() / wall_ns;  // pJ / ns == mW
}

Network::Network(NetworkParams params, PowerParams power_params,
                 std::vector<DvfsLevel> levels)
    : params_(std::move(params)),
      power_(power_params, std::move(levels)),
      config_(params_.initial_config),
      topology_(make_topology(params_.topology, params_.width,
                              params_.height)),
      routing_(make_routing(params_.routing, *topology_)),
      epoch_latency_hist_(/*limit=*/16384.0, /*buckets=*/8192),
      epoch_node_recv_(static_cast<std::size_t>(topology_->num_nodes()), 0) {
  if (config_.active_vcs < 1 || config_.active_vcs > params_.max_vcs ||
      config_.active_depth < 1 || config_.active_depth > params_.max_depth ||
      config_.dvfs_level < 0 || config_.dvfs_level >= power_.num_levels()) {
    throw std::invalid_argument("initial NocConfig out of range");
  }
  if (topology_->required_vc_classes() > params_.max_vcs) {
    throw std::invalid_argument(
        "topology needs more VC classes than physical VCs");
  }

  util::Rng master(params_.seed);
  const int n = topology_->num_nodes();
  node_rngs_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) node_rngs_.push_back(master.fork());

  RouterParams rp;
  rp.num_ports = topology_->radix();
  rp.max_vcs = params_.max_vcs;
  rp.max_depth = params_.max_depth;
  rp.vc_classes = topology_->required_vc_classes();
  rp.active_vcs = config_.active_vcs;
  rp.active_depth = config_.active_depth;
  rp.pipeline_stages = params_.pipeline_stages;

  NicParams np;
  np.max_vcs = params_.max_vcs;
  np.max_depth = params_.max_depth;
  np.vc_classes = rp.vc_classes;
  np.active_vcs = config_.active_vcs;
  np.flits_per_packet = params_.flits_per_packet;

  routers_.reserve(static_cast<std::size_t>(n));
  nics_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    routers_.push_back(std::make_unique<Router>(i, rp, *routing_));
    nics_.push_back(std::make_unique<Nic>(i, np));
  }
  // The SoA hot-state vectors must reach their final size before wire()
  // hands out pointers into them; everything starts armed.
  node_active_.assign(static_cast<std::size_t>(n), 1);
  inflight_flits_.assign(static_cast<std::size_t>(n), 0);
  inflight_credits_.assign(static_cast<std::size_t>(n), 0);
  node_buffered_.assign(static_cast<std::size_t>(n), 0);
  wire();
  per_router_configs_.assign(static_cast<std::size_t>(n), config_);
  refresh_active_capacity();
}

Network::~Network() = default;

void Network::wire() {
  struct PortChans {
    FlitChannel* in_flits = nullptr;
    CreditChannel* out_credits = nullptr;
    FlitChannel* out_flits = nullptr;
    CreditChannel* in_credits = nullptr;
    bool to_router = false;  ///< downstream endpoint is another router
  };
  const int radix = topology_->radix();
  const int n = topology_->num_nodes();
  std::vector<PortChans> chans(static_cast<std::size_t>(n * radix));
  auto at = [&](NodeId node, PortId port) -> PortChans& {
    return chans[static_cast<std::size_t>(node * radix + port)];
  };

  // Inter-router links: one flit channel downstream + one credit channel back.
  links_ = topology_->links();
  num_links_ = static_cast<int>(links_.size());
  auto sink = [&](auto& chan, NodeId node, std::vector<std::uint32_t>& count) {
    chan->set_sink(&node_active_[static_cast<std::size_t>(node)],
                   &count[static_cast<std::size_t>(node)]);
  };
  for (const Link& link : links_) {
    auto fc = std::make_unique<FlitChannel>(params_.link_latency);
    auto cc = std::make_unique<CreditChannel>(params_.link_latency);
    sink(fc, link.to.node, inflight_flits_);
    sink(cc, link.from.node, inflight_credits_);
    at(link.from.node, link.from.port).out_flits = fc.get();
    at(link.from.node, link.from.port).in_credits = cc.get();
    at(link.from.node, link.from.port).to_router = true;
    at(link.to.node, link.to.port).in_flits = fc.get();
    at(link.to.node, link.to.port).out_credits = cc.get();
    flit_channels_.push_back(std::move(fc));
    credit_channels_.push_back(std::move(cc));
  }

  // NIC links (injection + ejection), latency 1.
  for (int i = 0; i < n; ++i) {
    auto inj_f = std::make_unique<FlitChannel>(1);
    auto inj_c = std::make_unique<CreditChannel>(1);
    auto ej_f = std::make_unique<FlitChannel>(1);
    auto ej_c = std::make_unique<CreditChannel>(1);
    // All four NIC channels terminate at node i (router or its own NIC).
    sink(inj_f, i, inflight_flits_);
    sink(ej_f, i, inflight_flits_);
    sink(inj_c, i, inflight_credits_);
    sink(ej_c, i, inflight_credits_);
    at(i, kLocalPort).in_flits = inj_f.get();
    at(i, kLocalPort).out_credits = inj_c.get();
    at(i, kLocalPort).out_flits = ej_f.get();
    at(i, kLocalPort).in_credits = ej_c.get();
    nics_[static_cast<std::size_t>(i)]->connect(inj_f.get(), inj_c.get(),
                                                ej_f.get(), ej_c.get());
    nics_[static_cast<std::size_t>(i)]->init_credits(config_.active_depth);
    flit_channels_.push_back(std::move(inj_f));
    flit_channels_.push_back(std::move(ej_f));
    credit_channels_.push_back(std::move(inj_c));
    credit_channels_.push_back(std::move(ej_c));
  }

  for (int i = 0; i < n; ++i) {
    for (int p = 0; p < radix; ++p) {
      const PortChans& pc = at(i, p);
      routers_[static_cast<std::size_t>(i)]->connect(
          p, pc.in_flits, pc.out_credits, pc.out_flits, pc.in_credits);
      if (pc.out_flits != nullptr) {
        // Credits for a downstream router reflect its active depth; the NIC
        // ejection buffer is never gated, so it advertises full depth.
        const int credits =
            pc.to_router ? config_.active_depth : params_.max_depth;
        routers_[static_cast<std::size_t>(i)]->init_output_credits(p, credits);
      }
    }
  }
}

namespace {
void validate_config(const NocConfig& config, const NetworkParams& params,
                     int num_levels) {
  if (config.active_vcs < 1 || config.active_vcs > params.max_vcs ||
      config.active_depth < 1 || config.active_depth > params.max_depth ||
      config.dvfs_level < 0 || config.dvfs_level >= num_levels) {
    throw std::invalid_argument("NocConfig out of range: " +
                                to_string(config));
  }
}
}  // namespace

void Network::apply_config(const NocConfig& config) {
  validate_config(config, params_, power_.num_levels());
  for (auto& r : routers_) {
    r->set_active_vcs(config.active_vcs, cycle_);
    r->set_active_depth(config.active_depth, cycle_);
  }
  for (auto& nic : nics_) nic->set_active_vcs(config.active_vcs);
  config_ = config;
  per_router_configs_.assign(static_cast<std::size_t>(num_nodes()), config);
  refresh_active_capacity();
  if (recorder_ != nullptr) {
    recorder_->record(obs::EventKind::kConfigApply, core_time_, cycle_, 0,
                      config.active_vcs, config.active_depth,
                      config.dvfs_level);
  }
  // Reconfiguration touches every router (gating, depth, clock) — even
  // quiescent ones must re-run under the new configuration. Depth growth
  // also floods bonus credits, whose sink hooks alone would only wake
  // upstream neighbors.
  wake_all();
}

void Network::apply_per_router(const std::vector<NocConfig>& configs) {
  if (static_cast<int>(configs.size()) != num_nodes()) {
    throw std::invalid_argument("apply_per_router: need one config per node");
  }
  for (const NocConfig& c : configs) {
    validate_config(c, params_, power_.num_levels());
    if (c.dvfs_level != configs.front().dvfs_level) {
      throw std::invalid_argument(
          "apply_per_router: routers share one clock domain; DVFS levels "
          "must match");
    }
  }
  NocConfig representative = configs.front();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    auto& r = routers_[i];
    r->set_active_vcs(configs[i].active_vcs, cycle_);
    r->set_active_depth(configs[i].active_depth, cycle_);
    nics_[i]->set_active_vcs(configs[i].active_vcs);
    representative.active_vcs =
        std::max(representative.active_vcs, configs[i].active_vcs);
    representative.active_depth =
        std::max(representative.active_depth, configs[i].active_depth);
  }
  // VC allocation gates on the *downstream* router's active VC set.
  for (const Link& link : links_) {
    routers_[static_cast<std::size_t>(link.from.node)]->set_output_active_vcs(
        link.from.port,
        configs[static_cast<std::size_t>(link.to.node)].active_vcs);
  }
  config_ = representative;
  per_router_configs_ = configs;
  refresh_active_capacity();
  if (recorder_ != nullptr) {
    recorder_->record(obs::EventKind::kConfigApply, core_time_, cycle_, 0,
                      representative.active_vcs, representative.active_depth,
                      representative.dvfs_level);
  }
  wake_all();
}

void Network::set_flight_recorder(obs::FlightRecorder* recorder) {
  recorder_ = recorder;
  // Attach through routers_ directly: the mutable router() accessor would
  // re-arm quiescent nodes and perturb the event-driven schedule.
  for (auto& r : routers_) r->set_flight_recorder(recorder);
}

void Network::set_metrics(obs::NetworkMetrics* metrics) {
  if (metrics != nullptr && metrics->num_nodes() != num_nodes()) {
    throw std::invalid_argument(
        "set_metrics: metrics sink sized for a different fabric");
  }
  metrics_ = metrics;
}

void Network::wake_all() {
  std::fill(node_active_.begin(), node_active_.end(), std::uint8_t{1});
}

int Network::active_nodes() const {
  int count = 0;
  for (std::uint8_t a : node_active_) count += a;
  return count;
}

void Network::inject_due_traffic(TrafficInjector* injector) {
  // Core ticks scheduled strictly before the *end* of this router cycle.
  const double divisor = power_.clock_divisor(config_.dvfs_level);
  const double end_time = core_time_ + divisor;
  const int n = num_nodes();
  while (static_cast<double>(next_core_tick_) < end_time) {
    const auto t = static_cast<double>(next_core_tick_);
    if (injector != nullptr) {
      for (int node = 0; node < n; ++node) {
        const NodeId dst =
            injector->generate(node, t, node_rngs_[static_cast<std::size_t>(node)]);
        if (dst == kInvalidNode) continue;
        assert(dst >= 0 && dst < n);
        const int length = injector->packet_length_for(node, t);
        // Clamp so a misbehaving injector cannot split its accounting
        // between slot 0 (offered) and the uint16_t-wrapped last slot
        // (received).
        const int tenant = std::max(0, injector->tenant_for(node, t));
        const std::uint64_t packet_id = next_packet_id_++;
        nics_[static_cast<std::size_t>(node)]->offer_packet(
            dst, t, measuring_, packet_id, length, tenant);
        wake(node);  // source NIC has work now
        injector->on_packet_injected(node, packet_id, t);
        if (recorder_ != nullptr && recorder_->sampled(packet_id)) {
          recorder_->record(
              obs::EventKind::kPacketInject, t, cycle_, packet_id, node, dst,
              length > 0 ? length : params_.flits_per_packet);
        }
        ++epoch_offered_;
        ++total_offered_;
        if (!tenant_offered_.empty()) {
          ++tenant_offered_[tenant_slot(tenant)];
        }
      }
    }
    ++next_core_tick_;
  }
}

void Network::set_fault_model(const FaultParams& params) {
  // Construction validates the params against the topology, including the
  // fail-fast connectivity check for cycle-0 link deaths.
  fault_model_ = std::make_unique<FaultModel>(params, *topology_);
  fault_routing_ = std::make_unique<FaultAwareRouting>(*routing_, *topology_);
  node_step_divisor_.assign(static_cast<std::size_t>(num_nodes()), 1);
  for (auto& r : routers_) {
    r->set_routing(*fault_routing_);
    r->set_fault_model(fault_model_.get());
  }
  // The model may fire events on the very next cycle; everyone re-arms.
  wake_all();
}

void Network::service_faults() {
  while (const FaultEvent* e = fault_model_->next_due_event(cycle_)) {
    if (e->kind == FaultEvent::Kind::kLinkDown) {
      if (fault_model_->kill_link(e->node, e->port)) {
        if (recorder_ != nullptr) {
          recorder_->record(obs::EventKind::kFaultLinkDown, core_time_,
                            cycle_, 0, e->node, e->port);
        }
        // Throws when the surviving links disconnect the topology.
        fault_routing_->recompute(fault_model_->dead_links());
        // Minimal paths changed fabric-wide: every router — including
        // quiescent ones holding stale route candidates — must re-run under
        // the new table, mirroring apply_config's wake discipline.
        wake_all();
      }
    } else {
      node_step_divisor_[static_cast<std::size_t>(e->node)] =
          static_cast<std::uint32_t>(std::max(1, e->factor));
      if (recorder_ != nullptr) {
        recorder_->record(obs::EventKind::kFaultSlowdown, core_time_, cycle_,
                          0, e->node, std::max(1, e->factor));
      }
      // A slowdown affects exactly one node; waking it suffices (its
      // neighbors re-arm through channel sink hooks as backpressure forms).
      wake(e->node);
    }
  }
  FaultModel::Retry retry;
  while (fault_model_->pop_due_retry(cycle_, retry)) {
    // Retries re-enter through the source NIC with the original packet id
    // and inject time: latency spans the retry delay, dependency-gated
    // workloads keep their id maps, and offered counts are not re-inflated.
    nics_[static_cast<std::size_t>(retry.src)]->offer_packet(
        retry.dst, retry.inject_time, retry.measured, retry.packet_id,
        retry.length, retry.tenant);
    wake(retry.src);
    if (recorder_ != nullptr && recorder_->sampled(retry.packet_id)) {
      recorder_->record(obs::EventKind::kPacketRetry, core_time_, cycle_,
                        retry.packet_id, retry.src, retry.dst);
    }
    ++epoch_retries_;
    if (!tenant_retries_.empty()) ++tenant_retries_[tenant_slot(retry.tenant)];
  }
}

bool Network::account_faulted_record(const PacketRecord& rec) {
  const bool tracking = !tenant_offered_.empty();
  if (rec.corrupted) {
    epoch_flits_dropped_ += rec.length;
    if (tracking) tenant_flits_dropped_[tenant_slot(rec.tenant)] += rec.length;
    const bool lost = fault_model_->on_corrupt_delivery(rec, cycle_) ==
                      FaultModel::RetryVerdict::kLost;
    if (recorder_ != nullptr && recorder_->sampled(rec.packet_id)) {
      recorder_->record(obs::EventKind::kPacketDiscard, rec.eject_time,
                        cycle_, rec.packet_id, rec.src, rec.dst,
                        static_cast<std::int32_t>(rec.hops));
      if (lost) {
        recorder_->record(obs::EventKind::kPacketLost, rec.eject_time, cycle_,
                          rec.packet_id, rec.src, rec.dst);
      }
    }
    if (lost) {
      ++epoch_packets_lost_;
      if (tracking) ++tenant_packets_lost_[tenant_slot(rec.tenant)];
    }
    return true;
  }
  if (fault_model_->attempts_of(rec.packet_id) > 0) {
    epoch_retry_latency_.add(rec.eject_time - rec.inject_time);
    fault_model_->forget(rec.packet_id);
  }
  if (fault_routing_->degraded()) {
    const auto minimal = static_cast<std::uint32_t>(
        topology_->min_hops(rec.src, rec.dst) + 1);
    if (rec.hops > minimal) {
      const std::uint64_t extra = rec.hops - minimal;
      epoch_rerouted_hops_ += extra;
      if (tracking) tenant_rerouted_hops_[tenant_slot(rec.tenant)] += extra;
    }
  }
  return false;
}

void Network::step(TrafficInjector* injector) {
  obs::ScopedPhase prof(obs::Phase::kNetStep);
  if (fault_model_ != nullptr) service_faults();
  inject_due_traffic(injector);
  const double divisor = power_.clock_divisor(config_.dvfs_level);
  core_time_ += divisor;

  // Event-driven sweep: only armed nodes are stepped. Skipping a quiescent
  // node is provably a no-op — its router holds no flits, nothing is in
  // flight toward it (channel sink counters), and its NIC is idle — and
  // channel latency >= 1 makes the per-node NIC/router interleaving
  // indistinguishable from the old all-NICs-then-all-routers order, so the
  // simulated behavior is bit-identical to cycle stepping. Records are
  // harvested inline, still in ascending node order.
  const int n = num_nodes();
  int stepped = 0;
  for (int node = 0; node < n; ++node) {
    const auto idx = static_cast<std::size_t>(node);
    if (node_active_[idx] == 0) continue;
    if (fault_model_ != nullptr) {
      // Router slowdown: a degraded node runs only every `div` router
      // cycles. It stays armed (its work is deferred, not done) and the
      // credit protocol bounds what can pile up on its inbound channels.
      const std::uint32_t div = node_step_divisor_[idx];
      if (div > 1 && cycle_ % div != 0) continue;
    }
    ++stepped;
    Nic& nic = *nics_[idx];
    Router& router = *routers_[idx];
    nic.step(cycle_, core_time_);
    router.step(cycle_);

    const int buffered = router.buffered_flits();
    buffered_total_ += buffered - static_cast<long long>(node_buffered_[idx]);
    node_buffered_[idx] = static_cast<std::uint32_t>(buffered);

    auto& recs = nic.records();
    for (PacketRecord& rec : recs) {
      // Corrupted deliveries never count as received: they are dropped here
      // and either retried or declared lost. Clean deliveries additionally
      // account retry latency and detour hops while faults are active.
      if (fault_model_ != nullptr && account_faulted_record(rec)) continue;
      if (recorder_ != nullptr && recorder_->sampled(rec.packet_id)) {
        recorder_->record(obs::EventKind::kPacketEject, rec.eject_time,
                          cycle_, rec.packet_id, rec.dst,
                          static_cast<std::int32_t>(rec.hops), rec.tenant);
      }
      ++epoch_received_;
      ++total_received_;
      ++epoch_node_recv_[static_cast<std::size_t>(rec.dst)];
      if (rec.measured) {
        const double latency = rec.eject_time - rec.inject_time;
        epoch_latency_.add(latency);
        epoch_latency_hist_.add(latency);
        epoch_hops_.add(static_cast<double>(rec.hops));
      }
      if (!tenant_received_.empty()) {
        const std::size_t slot = tenant_slot(rec.tenant);
        ++tenant_received_[slot];
        tenant_flits_out_[slot] += rec.length;
        if (rec.measured) {
          const double latency = rec.eject_time - rec.inject_time;
          tenant_latency_[slot].add(latency);
          tenant_latency_hist_[slot].add(latency);
        }
      }
      if (injector != nullptr) injector->on_packet_delivered(rec);
      pending_records_.push_back(rec);
    }
    recs.clear();

    // Quiescence test after the node's own activity; a send from a
    // later-indexed neighbor re-arms the flag for the *next* cycle, which
    // is exactly when its item can first become ready.
    if (buffered == 0 && inflight_flits_[idx] == 0 &&
        inflight_credits_[idx] == 0 && nic.idle()) {
      node_active_[idx] = 0;
    }
  }

  // Occupancy over *all* nodes: quiescent routers hold zero flits, so the
  // incrementally maintained integer total is exact.
  epoch_occupancy_.add(static_cast<double>(buffered_total_) /
                       active_capacity_);
  epoch_active_.add(static_cast<double>(stepped) / static_cast<double>(n));
  ++cycle_;
}

EpochStats Network::run_epoch(TrafficInjector* injector,
                              std::uint64_t router_cycles) {
  for (std::uint64_t i = 0; i < router_cycles; ++i) step(injector);
  return drain_epoch_stats();
}

int Network::active_capacity() const {
  int slots = 0;
  for (const NocConfig& c : per_router_configs_) {
    slots += topology_->radix() * c.active_vcs * c.active_depth;
  }
  return std::max(1, slots);
}

void Network::refresh_active_capacity() {
  active_capacity_ = static_cast<double>(active_capacity());
}

void Network::set_tenant_tracking(int num_tenants) {
  if (num_tenants < 0) {
    throw std::invalid_argument("set_tenant_tracking: negative tenant count");
  }
  const auto n = static_cast<std::size_t>(num_tenants);
  tenant_offered_.assign(n, 0);
  tenant_received_.assign(n, 0);
  tenant_flits_out_.assign(n, 0);
  tenant_flits_dropped_.assign(n, 0);
  tenant_retries_.assign(n, 0);
  tenant_packets_lost_.assign(n, 0);
  tenant_rerouted_hops_.assign(n, 0);
  tenant_latency_.assign(n, util::Accumulator{});
  tenant_latency_hist_.clear();
  tenant_latency_hist_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tenant_latency_hist_.emplace_back(/*limit=*/16384.0, /*buckets=*/8192);
  }
}

EpochStats Network::drain_epoch_stats() {
  EpochStats s;
  s.core_cycles = core_time_ - epoch_start_core_time_;
  s.router_cycles = cycle_ - epoch_start_cycle_;
  s.packets_offered = epoch_offered_;
  s.packets_received = epoch_received_;
  s.avg_latency = epoch_latency_.mean();
  s.p95_latency = epoch_latency_hist_.percentile(0.95);
  s.max_latency = epoch_latency_.count() ? epoch_latency_.max() : 0.0;
  s.avg_hops = epoch_hops_.mean();
  const double node_cycles =
      s.core_cycles * static_cast<double>(num_nodes());
  s.offered_rate = node_cycles > 0.0
                       ? static_cast<double>(epoch_offered_) / node_cycles
                       : 0.0;
  s.accepted_rate = node_cycles > 0.0
                        ? static_cast<double>(epoch_received_) / node_cycles
                        : 0.0;
  s.avg_buffer_occupancy = epoch_occupancy_.mean();
  s.max_buffer_occupancy =
      epoch_occupancy_.count() ? epoch_occupancy_.max() : 0.0;
  s.avg_active_fraction = epoch_active_.mean();

  double recv_max = 0.0, recv_sum = 0.0;
  for (std::uint64_t c : epoch_node_recv_) {
    recv_max = std::max(recv_max, static_cast<double>(c));
    recv_sum += static_cast<double>(c);
  }
  const double recv_mean = recv_sum / static_cast<double>(num_nodes());
  s.hotspot_skew = recv_mean > 0.0 ? recv_max / recv_mean : 1.0;

  RouterActivity activity;
  std::uint64_t fin = 0, fout = 0;
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    Router& r = *routers_[i];
    // Per-router metrics snapshot must happen before the activity reset.
    if (metrics_ != nullptr) {
      metrics_->sample_node(static_cast<int>(i), r.activity().link_flits,
                            r.buffered_flits(), r.max_vc_occupancy(),
                            nics_[i]->source_queue_len());
    }
    activity += r.activity();
    r.reset_activity();
  }
  for (auto& nic : nics_) {
    fin += nic->injected_flits();
    fout += nic->ejected_flits();
  }
  s.flits_injected = fin - epoch_flits_in_;
  s.flits_ejected = fout - epoch_flits_out_;
  epoch_flits_in_ = fin;
  epoch_flits_out_ = fout;

  s.dynamic_energy_pj = power_.dynamic_energy(activity, config_.dvfs_level);
  const double wall_ns = s.core_cycles / power_.params().core_freq_ghz;
  s.static_energy_pj = power_.static_energy_slots(
      num_nodes(), num_links_, static_cast<double>(active_capacity()),
      config_.dvfs_level, wall_ns);

  std::uint64_t backlog = 0;
  for (auto& nic : nics_) backlog += nic->source_queue_len();
  s.source_queue_total = backlog;
  s.flits_dropped = epoch_flits_dropped_;
  s.retries = epoch_retries_;
  s.packets_lost = epoch_packets_lost_;
  s.retry_latency = epoch_retry_latency_.mean();
  s.rerouted_hops = epoch_rerouted_hops_;
  s.config = config_;

  s.tenants.resize(tenant_offered_.size());
  for (std::size_t i = 0; i < tenant_offered_.size(); ++i) {
    TenantEpochStats& ts = s.tenants[i];
    ts.packets_offered = tenant_offered_[i];
    ts.packets_received = tenant_received_[i];
    ts.packets_measured = tenant_latency_[i].count();
    ts.flits_ejected = tenant_flits_out_[i];
    ts.avg_latency = tenant_latency_[i].mean();
    ts.p95_latency = tenant_latency_hist_[i].percentile(0.95);
    ts.max_latency = tenant_latency_[i].count() ? tenant_latency_[i].max() : 0.0;
    ts.flits_dropped = tenant_flits_dropped_[i];
    ts.retries = tenant_retries_[i];
    ts.packets_lost = tenant_packets_lost_[i];
    ts.rerouted_hops = tenant_rerouted_hops_[i];
    tenant_offered_[i] = 0;
    tenant_received_[i] = 0;
    tenant_flits_out_[i] = 0;
    tenant_flits_dropped_[i] = 0;
    tenant_retries_[i] = 0;
    tenant_packets_lost_[i] = 0;
    tenant_rerouted_hops_[i] = 0;
    tenant_latency_[i].reset();
    tenant_latency_hist_[i].reset();
  }

  // Reset the window.
  epoch_start_core_time_ = core_time_;
  epoch_start_cycle_ = cycle_;
  epoch_offered_ = 0;
  epoch_received_ = 0;
  epoch_flits_dropped_ = 0;
  epoch_retries_ = 0;
  epoch_packets_lost_ = 0;
  epoch_rerouted_hops_ = 0;
  epoch_retry_latency_.reset();
  epoch_latency_.reset();
  epoch_latency_hist_.reset();
  epoch_hops_.reset();
  epoch_occupancy_.reset();
  epoch_active_.reset();
  std::fill(epoch_node_recv_.begin(), epoch_node_recv_.end(), 0);

  if (metrics_ != nullptr) metrics_->commit_epoch(core_time_, s);
  if (recorder_ != nullptr) {
    recorder_->record(obs::EventKind::kEpochBoundary, core_time_, cycle_, 0,
                      static_cast<std::int32_t>(s.packets_received),
                      static_cast<std::int32_t>(s.packets_offered));
  }
  return s;
}

std::vector<PacketRecord> Network::drain_records() {
  // Copy-then-clear (rather than std::exchange with a fresh vector) so the
  // accumulator keeps its capacity: per-cycle harvesting stays
  // allocation-free once a window's worth of records has been seen.
  std::vector<PacketRecord> out(pending_records_.begin(),
                                pending_records_.end());
  pending_records_.clear();
  return out;
}

bool Network::drained() const {
  // A retransmission waiting on its timeout is still in the system: the
  // fabric may be momentarily empty, but the packet will re-enter.
  if (fault_model_ != nullptr && fault_model_->retries_pending()) return false;
  for (const auto& nic : nics_)
    if (!nic->idle()) return false;
  for (const auto& r : routers_)
    if (!r->idle()) return false;
  for (const auto& fc : flit_channels_)
    if (!fc->empty()) return false;
  return true;
}

std::uint64_t Network::total_flits_injected() const {
  std::uint64_t total = 0;
  for (const auto& nic : nics_) total += nic->injected_flits();
  return total;
}

std::uint64_t Network::total_flits_ejected() const {
  std::uint64_t total = 0;
  for (const auto& nic : nics_) total += nic->ejected_flits();
  return total;
}

}  // namespace drlnoc::noc
