// Steady-state measurement methodology (warm-up -> measurement -> drain),
// the standard protocol behind load-latency and throughput curves.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "noc/network.h"
#include "noc/workload.h"

namespace drlnoc::noc {

struct SteadyRunParams {
  std::uint64_t warmup_cycles = 2000;    ///< router cycles, unmeasured
  std::uint64_t measure_cycles = 8000;   ///< router cycles, measured window
  std::uint64_t drain_limit = 100000;    ///< max extra cycles waiting to drain
};

struct SteadyResult {
  EpochStats stats;           ///< the measurement window
  bool saturated = false;     ///< backlog kept growing: offered > capacity
  bool drained = false;       ///< all measured packets retired in the limit
  double offered_rate = 0.0;  ///< configured packets/node/core-cycle
};

/// Runs the full warm-up / measure / drain protocol on `net` with `workload`.
/// The measurement window's statistics cover packets *generated* during the
/// window (latency recorded at ejection, including post-window ejections).
SteadyResult run_steady_state(Network& net, TrafficInjector& workload,
                              const SteadyRunParams& params = {});

/// Convenience wrapper: builds a fresh network with the given parameters,
/// runs a steady-state experiment at `rate` on `pattern`, returns stats.
/// A non-default `faults` (FaultParams::enabled()) attaches a deterministic
/// fault model to the fresh network before the run.
SteadyResult measure_point(const NetworkParams& net_params,
                           const std::string& pattern, double rate,
                           const SteadyRunParams& run_params = {},
                           const FaultParams& faults = {});

/// One point of a load sweep: the network/pattern/rate triple measured by
/// measure_points. Curves mix topologies (e.g. mesh vs torus per rate), so
/// each point carries its own network parameters.
struct SweepPoint {
  NetworkParams net{};
  std::string pattern = "uniform";
  double rate = 0.0;
  SteadyRunParams run{};
  FaultParams faults{};  ///< attached when enabled(); default = healthy
};

/// Measures every point concurrently across `jobs` threads (the default 1
/// is serial, matching measure_point in a loop; <= 0 means one per hardware
/// thread). Each point builds a private Network seeded only by its own
/// parameters, so results are bit-identical to calling measure_point
/// serially, independent of thread count. Output order matches input order.
std::vector<SteadyResult> measure_points(const std::vector<SweepPoint>& points,
                                         int jobs = 1);

}  // namespace drlnoc::noc
