// Network: topology + routers + channels + NICs assembled into a steppable
// cycle-accurate simulation, with run-time reconfiguration (the knobs the DRL
// controller drives) and per-epoch statistics extraction.
//
// Clocking model: the *core* clock (PowerParams::core_freq_ghz) is the time
// reference; packet latencies are reported in core cycles. Routers and links
// run at the DVFS level's frequency, i.e. one router cycle spans
// `clock_divisor(level) >= 1` core cycles. Traffic is generated per core
// cycle, so lowering the NoC clock raises the per-router-cycle load — the
// latency/power trade-off the RL agent must learn.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "noc/channel.h"
#include "noc/faults.h"
#include "noc/nic.h"
#include "noc/power.h"
#include "noc/router.h"
#include "noc/routing.h"
#include "noc/topology.h"
#include "noc/traffic.h"
#include "util/rng.h"
#include "util/stats.h"

namespace drlnoc::obs {
class FlightRecorder;
class NetworkMetrics;
}  // namespace drlnoc::obs

namespace drlnoc::noc {

/// The run-time configuration the self-configuration controller selects.
struct NocConfig {
  int active_vcs = 4;
  int active_depth = 8;
  int dvfs_level = 3;

  bool operator==(const NocConfig&) const = default;
};

std::string to_string(const NocConfig& config);

struct NetworkParams {
  std::string topology = "mesh";
  int width = 8;
  int height = 8;
  std::string routing = "auto";
  int max_vcs = 4;
  int max_depth = 8;
  int flits_per_packet = 4;
  Cycle link_latency = 1;
  int pipeline_stages = 1;  ///< router pipeline depth (see RouterParams)
  std::uint64_t seed = 1;
  NocConfig initial_config{};
};

/// Pulls traffic out of a workload: one call per node per core cycle.
/// Returns the destination node or kInvalidNode for "no packet".
class TrafficInjector {
 public:
  virtual ~TrafficInjector() = default;
  virtual NodeId generate(NodeId src, double core_time, util::Rng& rng) = 0;
  /// Length in flits of the packet being generated at `core_time`;
  /// 0 means "use the network's default flits_per_packet".
  virtual int packet_length(double /*core_time*/) const { return 0; }
  /// Per-packet variant, consulted right after generate() accepts for
  /// `src`. Trace replay overrides this (records carry individual lengths);
  /// the default defers to the per-tick length above.
  virtual int packet_length_for(NodeId /*src*/, double core_time) const {
    return packet_length(core_time);
  }
  /// Tenant id of the packet being generated, consulted right after
  /// generate() accepts for `src` (like packet_length_for). Multi-tenant
  /// scenario workloads override this so delivered-packet records carry
  /// per-tenant attribution; single-tenant workloads stay tenant 0.
  virtual int tenant_for(NodeId /*src*/, double /*core_time*/) const {
    return 0;
  }
  /// Called right after the generated packet is queued at the source NIC,
  /// with the network-assigned packet id. Lets dependency-aware workloads
  /// map their records onto live packets (see trace/trace_workload.h).
  virtual void on_packet_injected(NodeId /*src*/, std::uint64_t /*packet_id*/,
                                  double /*core_time*/) {}
  /// Called once per packet when its tail flit ejects at the destination,
  /// in ejection order. Only fires while this injector is driving the step
  /// (drain-only stepping with a null injector notifies nobody).
  virtual void on_packet_delivered(const PacketRecord& /*rec*/) {}
  virtual std::string name() const = 0;
};

/// Per-tenant slice of one epoch, populated only when tenant tracking is
/// enabled (see Network::set_tenant_tracking). Latency fields cover
/// *measured* packets, matching the aggregate statistics.
struct TenantEpochStats {
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t packets_measured = 0;  ///< measured deliveries (latency n)
  std::uint64_t flits_ejected = 0;
  double avg_latency = 0.0;  ///< core cycles, over measured deliveries
  double p95_latency = 0.0;
  double max_latency = 0.0;
  // Fault accounting (zero on a healthy fabric; see noc/faults.h).
  std::uint64_t flits_dropped = 0;  ///< flits of corrupted deliveries
  std::uint64_t retries = 0;        ///< retransmissions re-injected
  std::uint64_t packets_lost = 0;   ///< retry budget exhausted
  std::uint64_t rerouted_hops = 0;  ///< extra hops vs fault-free minimum
};

/// Aggregate statistics over one measurement window (epoch).
struct EpochStats {
  double core_cycles = 0.0;
  std::uint64_t router_cycles = 0;
  std::uint64_t packets_offered = 0;   ///< generated at sources
  std::uint64_t packets_received = 0;  ///< fully ejected
  std::uint64_t flits_injected = 0;
  std::uint64_t flits_ejected = 0;
  double avg_latency = 0.0;  ///< core cycles, over packets received in epoch
  double p95_latency = 0.0;
  double max_latency = 0.0;
  double avg_hops = 0.0;
  double offered_rate = 0.0;   ///< packets / node / core cycle
  double accepted_rate = 0.0;  ///< packets / node / core cycle
  double avg_buffer_occupancy = 0.0;  ///< fraction of *active* capacity
  double max_buffer_occupancy = 0.0;
  double hotspot_skew = 1.0;  ///< max node receive count / mean
  /// Mean fraction of nodes actually stepped per router cycle — the
  /// event-driven core's skip rate (1.0 means fully cycle-stepped).
  double avg_active_fraction = 0.0;
  double dynamic_energy_pj = 0.0;
  double static_energy_pj = 0.0;
  std::uint64_t source_queue_total = 0;  ///< backlog at epoch end
  // Fault accounting (all zero on a healthy fabric; see noc/faults.h).
  std::uint64_t flits_dropped = 0;  ///< flits of corrupted (discarded) packets
  std::uint64_t retries = 0;        ///< end-to-end retransmissions re-injected
  std::uint64_t packets_lost = 0;   ///< retry budget exhausted
  double retry_latency = 0.0;  ///< mean latency of retried-then-delivered
  std::uint64_t rerouted_hops = 0;  ///< extra hops vs fault-free minimal paths
  NocConfig config{};
  /// One entry per tenant when tenant tracking is enabled; empty otherwise.
  std::vector<TenantEpochStats> tenants;

  double total_energy_pj() const {
    return dynamic_energy_pj + static_energy_pj;
  }
  /// Average power in mW over the epoch's wall time.
  double avg_power_mw(double core_freq_ghz) const;
  /// Energy-delay product (pJ * core-cycle); the scalar the experiments
  /// compare controllers on.
  double edp() const { return total_energy_pj() * avg_latency; }
};

class Network {
 public:
  explicit Network(NetworkParams params, PowerParams power_params = {},
                   std::vector<DvfsLevel> levels = default_dvfs_levels());
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Applies a configuration; takes effect immediately and never drops
  /// in-flight flits (DESIGN.md invariant 6).
  void apply_config(const NocConfig& config);
  const NocConfig& config() const { return config_; }

  /// Spatially heterogeneous configuration: one NocConfig per router
  /// (extension feature — per-region self-configuration). All entries must
  /// share the same DVFS level (routers are clocked by one domain in this
  /// model); VC/depth may differ per router. VC-allocation gating follows
  /// the *downstream* router's active VCs on every link.
  void apply_per_router(const std::vector<NocConfig>& configs);
  const NocConfig& config_of(NodeId node) const {
    return per_router_configs_[static_cast<std::size_t>(node)];
  }

  /// One router-clock cycle: generates due core-cycle traffic via
  /// `injector` (may be null for drain-only stepping), steps NICs and
  /// routers, accumulates statistics.
  void step(TrafficInjector* injector);

  /// Runs `router_cycles` steps and returns the window's statistics.
  EpochStats run_epoch(TrafficInjector* injector, std::uint64_t router_cycles);

  /// When false, generated packets are not tagged `measured` and are
  /// excluded from latency statistics (warm-up convention).
  void set_measuring(bool measuring) { measuring_ = measuring; }

  /// Enables per-tenant epoch accounting for `num_tenants` tenants (ids
  /// 0..num_tenants-1, as reported by the injector's tenant_for). Epoch
  /// stats then carry one TenantEpochStats per tenant; ids at or above
  /// `num_tenants` fold into the last slot. 0 disables tracking (default).
  void set_tenant_tracking(int num_tenants);
  int num_tenants() const { return static_cast<int>(tenant_offered_.size()); }

  /// Attaches a deterministic fault model built from `params` (replacing any
  /// previous one). Installs fault-aware routing on every router and arms
  /// the per-node slowdown bookkeeping. With no model attached (the
  /// default), every fault branch in the stepping hot path is behind a null
  /// check and the simulation is bit-identical to a fault-free build.
  void set_fault_model(const FaultParams& params);
  const FaultModel* fault_model() const { return fault_model_.get(); }

  /// Attaches a (non-owning) flight recorder for sampled packet-lifecycle
  /// and fault/config trace events; null detaches. Propagated to every
  /// router. The recorder never consumes RNG state nor arms nodes, so an
  /// attached recorder leaves the simulation bit-identical (pinned by the
  /// observability golden tests).
  void set_flight_recorder(obs::FlightRecorder* recorder);
  const obs::FlightRecorder* flight_recorder() const { return recorder_; }

  /// Attaches a (non-owning) metrics sink sampled at every epoch drain;
  /// null detaches. Throws std::invalid_argument on a node-count mismatch.
  void set_metrics(obs::NetworkMetrics* metrics);
  const obs::NetworkMetrics* metrics() const { return metrics_; }

  /// Statistics accumulated since the previous drain (or construction).
  EpochStats drain_epoch_stats();

  /// All completed-packet records since the previous call.
  std::vector<PacketRecord> drain_records();

  bool drained() const;  ///< no flit anywhere in the system

  // --- accessors ------------------------------------------------------------
  double core_time() const { return core_time_; }
  Cycle cycle() const { return cycle_; }
  const Topology& topology() const { return *topology_; }
  const NetworkParams& params() const { return params_; }
  const PowerModel& power() const { return power_; }
  int num_nodes() const { return topology_->num_nodes(); }
  std::uint64_t total_packets_offered() const { return total_offered_; }
  std::uint64_t total_packets_received() const { return total_received_; }
  std::uint64_t total_flits_injected() const;
  std::uint64_t total_flits_ejected() const;
  /// Mutable component access re-arms the node: external mutation (tests,
  /// tools poking microarchitectural state) invalidates the quiescence proof.
  Router& router(NodeId id) {
    wake(id);
    return *routers_[static_cast<std::size_t>(id)];
  }
  Nic& nic(NodeId id) {
    wake(id);
    return *nics_[static_cast<std::size_t>(id)];
  }
  /// Number of nodes currently armed (stepped next cycle). Observability for
  /// tests and benchmarks; a drained network decays to 0.
  int active_nodes() const;
  /// Whether one specific node is armed. Const observability — unlike
  /// router()/nic() it does not re-arm the node, so tests can pin *which*
  /// nodes an external event (fault, retry, reconfig) woke.
  bool node_armed(NodeId node) const {
    return node_active_[static_cast<std::size_t>(node)] != 0;
  }

 private:
  void wire();
  void wake(NodeId node) { node_active_[static_cast<std::size_t>(node)] = 1; }
  void wake_all();
  void inject_due_traffic(TrafficInjector* injector);
  /// Fires due fault events and re-offers due retransmissions; called at the
  /// top of step() only while a fault model is attached.
  void service_faults();
  /// Fault-path record handling: corrupted deliveries (drop + retry/lose)
  /// and the retry/reroute accounting of clean deliveries. Returns true when
  /// the record was corrupted and must not count as received.
  bool account_faulted_record(const PacketRecord& rec);
  int active_capacity() const;
  void refresh_active_capacity();
  /// Accumulator index for a tenant id; ids at or above the tracked count
  /// fold into the last slot (negatives are clamped to 0 at injection, so
  /// both the offered and received sides see the same id). Only called when
  /// tracking is enabled (vectors non-empty).
  std::size_t tenant_slot(int tenant) const {
    const std::size_t n = tenant_offered_.size();
    const auto t = static_cast<std::size_t>(tenant < 0 ? 0 : tenant);
    return t < n ? t : n - 1;
  }

  NetworkParams params_;
  PowerModel power_;
  NocConfig config_;
  std::unique_ptr<Topology> topology_;
  std::unique_ptr<RoutingAlgorithm> routing_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<Nic>> nics_;
  // Channel storage; routers/NICs hold raw non-owning pointers into these.
  std::vector<std::unique_ptr<FlitChannel>> flit_channels_;
  std::vector<std::unique_ptr<CreditChannel>> credit_channels_;
  std::vector<Link> links_;
  int num_links_ = 0;
  // Fault machinery; all null/empty (and all hot-path branches dead) until
  // set_fault_model() installs them.
  std::unique_ptr<FaultModel> fault_model_;
  std::unique_ptr<FaultAwareRouting> fault_routing_;
  // Observability taps; null (and every hook branch dead) until attached.
  obs::FlightRecorder* recorder_ = nullptr;
  obs::NetworkMetrics* metrics_ = nullptr;
  std::vector<std::uint32_t> node_step_divisor_;  ///< slowdown gating (>= 1)
  std::vector<NocConfig> per_router_configs_;
  double active_capacity_ = 1.0;  ///< cached; refreshed on reconfiguration

  // Event-driven stepping core: per-node hot state as struct-of-arrays so
  // the active sweep is cache-linear. A node is skipped while its flag is 0,
  // which requires all three quiescence legs: router empty
  // (node_buffered_ == 0), nothing in flight toward it on any channel
  // (inflight_* == 0, maintained by Channel sink hooks), and an idle NIC.
  // Channels re-arm the flag on send; injection, reconfiguration, and the
  // mutable accessors re-arm explicitly. The vectors never resize after
  // construction — channels hold raw pointers into them.
  std::vector<std::uint8_t> node_active_;
  std::vector<std::uint32_t> inflight_flits_;    ///< inbound flits per node
  std::vector<std::uint32_t> inflight_credits_;  ///< inbound credits per node
  std::vector<std::uint32_t> node_buffered_;  ///< router buffered-flit mirror
  long long buffered_total_ = 0;  ///< sum of node_buffered_ (exact, integer)

  std::vector<util::Rng> node_rngs_;
  std::uint64_t next_packet_id_ = 1;
  bool measuring_ = true;

  Cycle cycle_ = 0;
  double core_time_ = 0.0;
  std::uint64_t next_core_tick_ = 0;

  // Epoch accumulators.
  double epoch_start_core_time_ = 0.0;
  Cycle epoch_start_cycle_ = 0;
  std::uint64_t epoch_offered_ = 0;
  std::uint64_t epoch_received_ = 0;
  std::uint64_t epoch_flits_in_ = 0;
  std::uint64_t epoch_flits_out_ = 0;
  util::Accumulator epoch_latency_;
  util::Histogram epoch_latency_hist_;
  util::Accumulator epoch_hops_;
  util::Accumulator epoch_occupancy_;
  util::Accumulator epoch_active_;  ///< stepped-node fraction per cycle
  std::vector<std::uint64_t> epoch_node_recv_;
  std::vector<PacketRecord> pending_records_;
  // Fault epoch accumulators (only touched while a fault model is attached).
  std::uint64_t epoch_flits_dropped_ = 0;
  std::uint64_t epoch_retries_ = 0;
  std::uint64_t epoch_packets_lost_ = 0;
  std::uint64_t epoch_rerouted_hops_ = 0;
  util::Accumulator epoch_retry_latency_;

  // Per-tenant epoch accumulators; empty unless tenant tracking is enabled.
  std::vector<std::uint64_t> tenant_offered_;
  std::vector<std::uint64_t> tenant_received_;
  std::vector<std::uint64_t> tenant_flits_out_;
  std::vector<util::Accumulator> tenant_latency_;
  std::vector<util::Histogram> tenant_latency_hist_;
  std::vector<std::uint64_t> tenant_flits_dropped_;
  std::vector<std::uint64_t> tenant_retries_;
  std::vector<std::uint64_t> tenant_packets_lost_;
  std::vector<std::uint64_t> tenant_rerouted_hops_;

  std::uint64_t total_offered_ = 0;
  std::uint64_t total_received_ = 0;
};

}  // namespace drlnoc::noc
