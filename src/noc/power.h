// Analytical NoC power model in the DSENT/ORION tradition, plus the DVFS
// operating-point table. Dynamic energy is event-based (per buffer access,
// allocation, crossbar and link traversal) and scales with V²; static power
// scales with V and with the amount of un-gated storage (active VCs × active
// depth). Absolute numbers are representative, not calibrated silicon — the
// experiments report *relative* savings, which only need the monotonic
// structure (power grows with V, f, and enabled resources).
#pragma once

#include <string>
#include <vector>

#include "noc/router.h"

namespace drlnoc::noc {

/// One DVFS operating point.
struct DvfsLevel {
  double freq_ghz = 1.0;
  double voltage = 1.0;
  std::string label;
};

/// Default 4-level table; the core clock runs at the top frequency.
std::vector<DvfsLevel> default_dvfs_levels();

struct PowerParams {
  double core_freq_ghz = 2.0;  ///< reference clock for core time / latency
  double v_nom = 1.0;          ///< voltage the energy coefficients assume

  // Dynamic energy per event, in pJ at v_nom.
  double e_buffer_write = 1.2;
  double e_buffer_read = 1.0;
  double e_vc_alloc = 0.4;
  double e_sw_arb = 0.3;
  double e_xbar = 1.6;
  double e_link = 2.1;

  // Static power, in mW at v_nom.
  double p_static_router_base = 0.8;   ///< per router, un-gateable logic
  double p_static_per_vc_slot = 0.06;  ///< per active buffer slot per port
  double p_static_link = 0.4;          ///< per inter-router link
};

class PowerModel {
 public:
  PowerModel(PowerParams params, std::vector<DvfsLevel> levels);

  const PowerParams& params() const { return params_; }
  const std::vector<DvfsLevel>& levels() const { return levels_; }
  int num_levels() const { return static_cast<int>(levels_.size()); }
  const DvfsLevel& level(int idx) const;

  /// Core cycles elapsed per router cycle at the given DVFS level (>= 1).
  double clock_divisor(int level_idx) const;

  /// Dynamic energy (pJ) for the given activity at a DVFS level.
  double dynamic_energy(const RouterActivity& activity, int level_idx) const;

  /// Static energy (pJ) burned over `wall_ns` nanoseconds by a network of
  /// `routers` routers (each `ports` ports) and `links` links, with the
  /// given gating configuration.
  double static_energy(int routers, int ports, int links, int active_vcs,
                       int active_depth, int level_idx, double wall_ns) const;

  /// Heterogeneous variant: `total_vc_slots` is the sum over all routers of
  /// ports x active_vcs x active_depth (per-router configurations differ).
  double static_energy_slots(int routers, int links, double total_vc_slots,
                             int level_idx, double wall_ns) const;

 private:
  PowerParams params_;
  std::vector<DvfsLevel> levels_;
};

}  // namespace drlnoc::noc
