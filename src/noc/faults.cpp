#include "noc/faults.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace drlnoc::noc {

namespace {

/// BFS live-hop distances toward every destination over the surviving
/// directed links. dist[dst * n + node] is the hop count from `node` to
/// `dst`; throws when any pair is disconnected. Shared by
/// FaultAwareRouting::recompute and the fail-fast scenario validation.
void build_fault_distances(const Topology& topo,
                           const std::vector<std::uint8_t>& dead,
                           std::vector<std::int16_t>& dist) {
  const int n = topo.num_nodes();
  const int radix = topo.radix();
  constexpr std::int16_t kUnreachable = -1;
  dist.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
              kUnreachable);

  // Reverse adjacency of the surviving links: rev[v] lists the nodes u with
  // a live directed link u -> v. Built once; reused by every BFS.
  std::vector<std::vector<NodeId>> rev(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    for (PortId p = 1; p < radix; ++p) {
      if (dead[static_cast<std::size_t>(u * radix + p)] != 0) continue;
      const auto nb = topo.neighbor(u, p);
      if (!nb) continue;
      rev[static_cast<std::size_t>(nb->node)].push_back(u);
    }
  }

  std::vector<NodeId> queue;
  queue.reserve(static_cast<std::size_t>(n));
  for (NodeId dst = 0; dst < n; ++dst) {
    std::int16_t* d = &dist[static_cast<std::size_t>(dst) *
                            static_cast<std::size_t>(n)];
    queue.clear();
    d[dst] = 0;
    queue.push_back(dst);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId v = queue[head];
      for (const NodeId u : rev[static_cast<std::size_t>(v)]) {
        if (d[u] != kUnreachable) continue;
        d[u] = static_cast<std::int16_t>(d[v] + 1);
        queue.push_back(u);
      }
    }
    if (queue.size() != static_cast<std::size_t>(n)) {
      for (NodeId u = 0; u < n; ++u) {
        if (d[u] == kUnreachable) {
          throw std::runtime_error(
              "fault model: link failures disconnect the topology: node " +
              std::to_string(u) + " cannot reach node " + std::to_string(dst));
        }
      }
    }
  }
}

}  // namespace

std::string to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kLinkDown: return "link_down";
    case FaultEvent::Kind::kSlowdown: return "slowdown";
  }
  return "unknown";
}

void FaultParams::validate() const {
  if (!std::isfinite(link_fault_rate) || link_fault_rate < 0.0 ||
      link_fault_rate > 1.0) {
    throw std::invalid_argument(
        "faults: link_fault_rate must be finite in [0, 1]");
  }
  if (retry_timeout < 1) {
    throw std::invalid_argument("faults: retry_timeout must be >= 1");
  }
  if (!std::isfinite(retry_backoff) || retry_backoff < 1.0) {
    throw std::invalid_argument(
        "faults: retry_backoff must be finite and >= 1");
  }
  if (retry_budget < 0) {
    throw std::invalid_argument("faults: retry_budget must be >= 0");
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    const std::string where = "faults: event" + std::to_string(i) + ": ";
    if (e.kind == FaultEvent::Kind::kLinkDown && e.port == kLocalPort) {
      throw std::invalid_argument(where +
                                  "link_down cannot target the local port");
    }
    if (e.kind == FaultEvent::Kind::kSlowdown && e.factor < 1) {
      throw std::invalid_argument(where + "slowdown factor must be >= 1");
    }
  }
}

void FaultParams::validate(const Topology& topo) const {
  validate();
  const int n = topo.num_nodes();
  const int radix = topo.radix();
  std::vector<std::uint8_t> dead_at_zero(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(radix), 0);
  bool any_at_zero = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    const std::string where = "faults: event" + std::to_string(i) + ": ";
    if (e.node < 0 || e.node >= n) {
      throw std::invalid_argument(where + "node outside [0, " +
                                  std::to_string(n) + ")");
    }
    if (e.kind == FaultEvent::Kind::kLinkDown) {
      if (e.port < 1 || e.port >= radix) {
        throw std::invalid_argument(where + "port outside [1, " +
                                    std::to_string(radix) + ")");
      }
      if (!topo.neighbor(e.node, e.port)) {
        throw std::invalid_argument(where + "port is not a connected link");
      }
      if (e.at_cycle == 0) {
        dead_at_zero[static_cast<std::size_t>(e.node * radix + e.port)] = 1;
        any_at_zero = true;
      }
    }
  }
  if (any_at_zero) {
    std::vector<std::int16_t> dist;
    try {
      build_fault_distances(topo, dead_at_zero, dist);
    } catch (const std::runtime_error& err) {
      throw std::invalid_argument(
          std::string("faults: cycle-0 events reject: ") + err.what());
    }
  }
}

// --- FaultAwareRouting ------------------------------------------------------

FaultAwareRouting::FaultAwareRouting(const RoutingAlgorithm& base,
                                     const Topology& topo)
    : base_(base), topo_(topo) {}

void FaultAwareRouting::recompute(const std::vector<std::uint8_t>& dead) {
  build_fault_distances(topo_, dead, dist_);
  dead_ = dead;
  degraded_ = true;
}

void FaultAwareRouting::route(const Flit& flit, NodeId node, PortId in_port,
                              std::vector<RouteChoice>& out) const {
  if (!degraded_) {
    base_.route(flit, node, in_port, out);
    return;
  }
  if (node == flit.dst) {
    out.push_back(RouteChoice{kLocalPort, flit.vc_class});
    return;
  }
  const auto n = static_cast<std::size_t>(topo_.num_nodes());
  const std::int16_t* d = &dist_[static_cast<std::size_t>(flit.dst) * n];
  const int radix = topo_.radix();
  // Lowest-numbered live port on a minimal surviving path. Ascending port
  // order is east/west before north/south on meshes, biasing the detour
  // toward dimension order. A U-turn is only admissible as a last resort:
  // it can appear transiently when a recompute flips distances under a
  // packet already past `node`.
  PortId u_turn = -1;
  for (PortId p = 1; p < radix; ++p) {
    if (dead_[static_cast<std::size_t>(node * radix + p)] != 0) continue;
    const auto nb = topo_.neighbor(node, p);
    if (!nb) continue;
    if (d[nb->node] + 1 != d[node]) continue;
    // Dateline classes never reset under degraded routing: detours may mix
    // dimensions mid-path, so the conservative rule (escalate on every
    // dateline crossing, never de-escalate) keeps ring/torus wrap cycles
    // broken at the cost of restricting detoured packets to class 1.
    std::uint8_t cls = flit.vc_class;
    if (topo_.crosses_dateline(node, p)) cls = 1;
    if (p == in_port) {
      u_turn = p;
      continue;
    }
    out.push_back(RouteChoice{p, cls});
    return;
  }
  if (u_turn >= 0) {
    std::uint8_t cls = flit.vc_class;
    if (topo_.crosses_dateline(node, u_turn)) cls = 1;
    out.push_back(RouteChoice{u_turn, cls});
    return;
  }
  throw std::runtime_error(
      "fault routing: no live minimal port at node " + std::to_string(node) +
      " toward " + std::to_string(flit.dst));
}

// --- FaultModel -------------------------------------------------------------

FaultModel::FaultModel(FaultParams params, const Topology& topo)
    : params_(std::move(params)), radix_(topo.radix()) {
  params_.validate(topo);
  dead_.assign(static_cast<std::size_t>(topo.num_nodes()) *
                   static_cast<std::size_t>(radix_),
               0);
  // Deterministic firing order: by cycle, ties in declaration order.
  std::stable_sort(params_.events.begin(), params_.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_cycle < b.at_cycle;
                   });
}

bool FaultModel::corrupt_on_link(NodeId node, PortId port, const Flit& flit,
                                 Cycle cycle) const {
  const std::size_t li = link_index(node, port);
  if (dead_count_ > 0 && dead_[li] != 0) return true;
  if (params_.link_fault_rate <= 0.0) return false;
  // Stateless decision: a hash of (seed, link, cycle, packet, seq) so the
  // outcome is independent of node visit order and flit interleaving.
  std::uint64_t state =
      params_.seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(li) + 1));
  state ^= util::splitmix64(state) + cycle;
  state ^= 0x632be59bd9b4e019ULL * flit.packet_id + flit.seq;
  const std::uint64_t h = util::splitmix64(state);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < params_.link_fault_rate;
}

bool FaultModel::kill_link(NodeId node, PortId port) {
  std::uint8_t& flag = dead_[link_index(node, port)];
  if (flag != 0) return false;
  flag = 1;
  ++dead_count_;
  return true;
}

const FaultEvent* FaultModel::next_due_event(Cycle cycle) {
  if (next_event_ >= params_.events.size()) return nullptr;
  const FaultEvent& e = params_.events[next_event_];
  if (e.at_cycle > cycle) return nullptr;
  ++next_event_;
  return &e;
}

int FaultModel::attempts_of(std::uint64_t packet_id) const {
  for (const auto& [id, count] : attempts_) {
    if (id == packet_id) return count;
  }
  return 0;
}

void FaultModel::forget(std::uint64_t packet_id) {
  for (auto& entry : attempts_) {
    if (entry.first == packet_id) {
      entry = attempts_.back();
      attempts_.pop_back();
      return;
    }
  }
}

FaultModel::RetryVerdict FaultModel::on_corrupt_delivery(
    const PacketRecord& rec, Cycle cycle) {
  int attempts = 0;
  std::pair<std::uint64_t, int>* slot = nullptr;
  for (auto& entry : attempts_) {
    if (entry.first == rec.packet_id) {
      slot = &entry;
      attempts = entry.second;
      break;
    }
  }
  if (attempts >= params_.retry_budget) {
    if (slot != nullptr) forget(rec.packet_id);
    return RetryVerdict::kLost;
  }
  if (slot == nullptr) {
    attempts_.emplace_back(rec.packet_id, 0);
    slot = &attempts_.back();
  }
  ++slot->second;
  // timeout * backoff^attempt, clamped so an extreme budget cannot push the
  // due cycle past any practical horizon.
  double delay = static_cast<double>(params_.retry_timeout) *
                 std::pow(params_.retry_backoff, static_cast<double>(attempts));
  delay = std::min(delay, 1.0e15);
  const Cycle due =
      cycle + std::max<Cycle>(1, static_cast<Cycle>(std::llround(delay)));

  HeapEntry entry;
  entry.due = due;
  entry.seq = retry_seq_++;
  entry.retry.packet_id = rec.packet_id;
  entry.retry.src = rec.src;
  entry.retry.dst = rec.dst;
  entry.retry.inject_time = rec.inject_time;
  entry.retry.length = rec.length;
  entry.retry.tenant = rec.tenant;
  entry.retry.measured = rec.measured;
  retry_heap_.push_back(entry);
  std::push_heap(retry_heap_.begin(), retry_heap_.end(), heap_after);
  return RetryVerdict::kRetryScheduled;
}

bool FaultModel::pop_due_retry(Cycle cycle, Retry& out) {
  if (retry_heap_.empty() || retry_heap_.front().due > cycle) return false;
  std::pop_heap(retry_heap_.begin(), retry_heap_.end(), heap_after);
  out = retry_heap_.back().retry;
  retry_heap_.pop_back();
  return true;
}

}  // namespace drlnoc::noc
