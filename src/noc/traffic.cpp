#include "noc/traffic.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace drlnoc::noc {

namespace {
int log2_exact(int n, const char* what) {
  if (n <= 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument(std::string(what) +
                                " requires a power-of-two node count");
  }
  return std::countr_zero(static_cast<unsigned>(n));
}

// Geometry of a topology for grid-based patterns; ring is treated as Nx1.
struct Grid {
  int width;
  int height;
};

Grid grid_of(const Topology& topo) {
  if (const auto* m = dynamic_cast<const Mesh2D*>(&topo))
    return {m->width(), m->height()};
  if (const auto* t = dynamic_cast<const Torus2D*>(&topo))
    return {t->width(), t->height()};
  return {topo.num_nodes(), 1};
}
}  // namespace

NodeId UniformTraffic::dest(NodeId src, util::Rng& rng) const {
  if (nodes_ < 2) return kInvalidNode;
  // Uniform over the other nodes_ - 1 nodes.
  auto d = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(nodes_ - 1)));
  if (d >= src) ++d;
  return d;
}

TransposeTraffic::TransposeTraffic(int width, int height) : width_(width) {
  if (width != height) {
    throw std::invalid_argument("transpose requires a square grid");
  }
}

NodeId TransposeTraffic::dest(NodeId src, util::Rng& /*rng*/) const {
  const int x = src % width_, y = src / width_;
  const NodeId d = x * width_ + y;
  return d == src ? kInvalidNode : d;
}

BitComplementTraffic::BitComplementTraffic(int nodes)
    : bits_(log2_exact(nodes, "bitcomp")) {}

NodeId BitComplementTraffic::dest(NodeId src, util::Rng& /*rng*/) const {
  return (~src) & ((1 << bits_) - 1);
}

BitReverseTraffic::BitReverseTraffic(int nodes)
    : bits_(log2_exact(nodes, "bitrev")) {}

NodeId BitReverseTraffic::dest(NodeId src, util::Rng& /*rng*/) const {
  int d = 0;
  for (int b = 0; b < bits_; ++b) {
    if (src & (1 << b)) d |= 1 << (bits_ - 1 - b);
  }
  return d == src ? kInvalidNode : d;
}

ShuffleTraffic::ShuffleTraffic(int nodes)
    : bits_(log2_exact(nodes, "shuffle")) {}

NodeId ShuffleTraffic::dest(NodeId src, util::Rng& /*rng*/) const {
  const int mask = (1 << bits_) - 1;
  const int d = ((src << 1) | (src >> (bits_ - 1))) & mask;
  return d == src ? kInvalidNode : d;
}

TornadoTraffic::TornadoTraffic(int width, int height)
    : width_(width), height_(height) {}

NodeId TornadoTraffic::dest(NodeId src, util::Rng& /*rng*/) const {
  const int x = src % width_, y = src / width_;
  const int dx = (x + (width_ + 1) / 2 - 1) % width_;
  const int dy = (y + (height_ + 1) / 2 - 1) % height_;
  const NodeId d = dy * width_ + dx;
  return d == src ? kInvalidNode : d;
}

NeighborTraffic::NeighborTraffic(int width, int height)
    : width_(width), height_(height) {}

NodeId NeighborTraffic::dest(NodeId src, util::Rng& /*rng*/) const {
  const int x = src % width_, y = src / width_;
  (void)height_;
  const NodeId d = y * width_ + (x + 1) % width_;
  return d == src ? kInvalidNode : d;
}

HotspotTraffic::HotspotTraffic(int nodes, std::vector<NodeId> hotspots,
                               double hot_fraction)
    : nodes_(nodes), hotspots_(std::move(hotspots)),
      hot_fraction_(hot_fraction) {
  if (hotspots_.empty())
    throw std::invalid_argument("hotspot pattern needs >= 1 hotspot");
  for (NodeId h : hotspots_) {
    if (h < 0 || h >= nodes_)
      throw std::invalid_argument("hotspot node out of range");
  }
}

NodeId HotspotTraffic::dest(NodeId src, util::Rng& rng) const {
  if (rng.chance(hot_fraction_)) {
    const NodeId d = hotspots_[rng.below(hotspots_.size())];
    if (d != src) return d;
    // Source is itself a hotspot: fall through to uniform.
  }
  if (nodes_ < 2) return kInvalidNode;
  auto d = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(nodes_ - 1)));
  if (d >= src) ++d;
  return d;
}

std::unique_ptr<TrafficPattern> make_pattern(const std::string& kind,
                                             const Topology& topo) {
  const int n = topo.num_nodes();
  const Grid g = grid_of(topo);
  if (kind == "uniform") return std::make_unique<UniformTraffic>(n);
  if (kind == "transpose")
    return std::make_unique<TransposeTraffic>(g.width, g.height);
  if (kind == "bitcomp") return std::make_unique<BitComplementTraffic>(n);
  if (kind == "bitrev") return std::make_unique<BitReverseTraffic>(n);
  if (kind == "shuffle") return std::make_unique<ShuffleTraffic>(n);
  if (kind == "tornado")
    return std::make_unique<TornadoTraffic>(g.width, g.height);
  if (kind == "neighbor")
    return std::make_unique<NeighborTraffic>(g.width, g.height);
  if (kind == "hotspot") {
    // Default hotspots: a 2x2 block near the grid centre (or first nodes).
    std::vector<NodeId> hs;
    if (g.height > 1) {
      const int cx = g.width / 2, cy = g.height / 2;
      hs = {cy * g.width + cx, cy * g.width + cx - 1,
            (cy - 1) * g.width + cx, (cy - 1) * g.width + cx - 1};
    } else {
      hs = {0, n / 2};
    }
    return std::make_unique<HotspotTraffic>(n, hs, 0.5);
  }
  throw std::invalid_argument("unknown traffic pattern: " + kind);
}

BernoulliInjection::BernoulliInjection(int /*nodes*/) {}

bool BernoulliInjection::fire(NodeId /*src*/, double rate, util::Rng& rng) {
  return rng.chance(rate);
}

BurstInjection::BurstInjection(int nodes, double alpha, double beta)
    : alpha_(alpha), beta_(beta), duty_(alpha / (alpha + beta)),
      on_(static_cast<std::size_t>(nodes), false) {
  if (alpha <= 0.0 || beta <= 0.0 || alpha > 1.0 || beta > 1.0) {
    throw std::invalid_argument("burst injection needs alpha, beta in (0,1]");
  }
}

bool BurstInjection::fire(NodeId src, double rate, util::Rng& rng) {
  auto idx = static_cast<std::size_t>(src);
  if (on_[idx]) {
    if (rng.chance(beta_)) on_[idx] = false;
  } else {
    if (rng.chance(alpha_)) on_[idx] = true;
  }
  if (!on_[idx]) return false;
  const double on_rate = std::min(1.0, rate / duty_);
  return rng.chance(on_rate);
}

void BurstInjection::reset() { on_.assign(on_.size(), false); }

std::unique_ptr<InjectionProcess> make_injection(const std::string& kind,
                                                 int nodes) {
  if (kind == "bernoulli") return std::make_unique<BernoulliInjection>(nodes);
  if (kind == "burst")
    return std::make_unique<BurstInjection>(nodes, 0.02, 0.08);
  throw std::invalid_argument("unknown injection process: " + kind);
}

}  // namespace drlnoc::noc
