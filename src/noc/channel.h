// Fixed-latency point-to-point delay lines. All inter-router (and
// router<->NIC) communication flows through channels, which is what makes the
// per-cycle router update order immaterial: nothing sent in cycle t can be
// observed before t + latency, latency >= 1.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <utility>

#include "noc/types.h"

namespace drlnoc::noc {

/// FIFO delay line carrying items of type T with a fixed latency in cycles.
template <typename T>
class Channel {
 public:
  explicit Channel(Cycle latency = 1) : latency_(latency) {
    assert(latency >= 1 && "zero-latency channels would create same-cycle "
                           "visibility between routers");
  }

  Cycle latency() const { return latency_; }

  void send(T item, Cycle now) {
    entries_.push_back(Entry{now + latency_, std::move(item)});
  }

  /// True if an item is deliverable at `now`.
  bool ready(Cycle now) const {
    return !entries_.empty() && entries_.front().due <= now;
  }

  T receive([[maybe_unused]] Cycle now) {
    assert(ready(now));
    T item = std::move(entries_.front().item);
    entries_.pop_front();
    return item;
  }

  bool empty() const { return entries_.empty(); }
  std::size_t in_flight() const { return entries_.size(); }

 private:
  struct Entry {
    Cycle due;
    T item;
  };
  Cycle latency_;
  std::deque<Entry> entries_;
};

using FlitChannel = Channel<Flit>;
using CreditChannel = Channel<Credit>;

}  // namespace drlnoc::noc
