// Fixed-latency point-to-point delay lines. All inter-router (and
// router<->NIC) communication flows through channels, which is what makes the
// per-cycle router update order immaterial: nothing sent in cycle t can be
// observed before t + latency, latency >= 1.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>

#include "noc/types.h"
#include "util/ring_buffer.h"

namespace drlnoc::noc {

/// FIFO delay line carrying items of type T with a fixed latency in cycles.
///
/// Entries live in a ring buffer sized for the credit-protocol steady state
/// (at most one send per cycle, drained within `latency` cycles), so the
/// per-cycle send/receive path never touches the heap; the ring only grows
/// on bursts such as the bonus credits of a depth reconfiguration.
template <typename T>
class Channel {
 public:
  explicit Channel(Cycle latency = 1)
      : latency_(latency), entries_(static_cast<std::size_t>(latency) + 1) {
    assert(latency >= 1 && "zero-latency channels would create same-cycle "
                           "visibility between routers");
  }

  Cycle latency() const { return latency_; }

  /// Event-driven wake hook (see Network): registers the *receiving* node's
  /// activity flag and in-flight counter. Every send bumps the counter and
  /// re-arms the flag, every receive drops the counter, so a zero counter
  /// proves nothing is in flight toward that node — one leg of the
  /// network-level quiescence test. Unregistered channels behave as before.
  void set_sink(std::uint8_t* active, std::uint32_t* inflight) {
    sink_active_ = active;
    sink_inflight_ = inflight;
  }

  void send(T item, Cycle now) {
    entries_.push_back(Entry{now + latency_, std::move(item)});
    notify_sink();
  }

  /// True if an item is deliverable at `now`.
  bool ready(Cycle now) const {
    return !entries_.empty() && entries_.front().due <= now;
  }

  T receive([[maybe_unused]] Cycle now) {
    assert(ready(now));
    T item = std::move(entries_.front().item);
    entries_.pop_front();
    if (sink_inflight_ != nullptr) --*sink_inflight_;
    return item;
  }

  /// Single-copy variants of send/receive for the per-flit hot path.
  const T& peek([[maybe_unused]] Cycle now) const {
    assert(ready(now));
    return entries_.front().item;
  }
  void receive_into(T& dst, [[maybe_unused]] Cycle now) {
    assert(ready(now));
    dst = std::move(entries_.front().item);
    entries_.pop_front();
    if (sink_inflight_ != nullptr) --*sink_inflight_;
  }
  void send_from(const T& item, Cycle now) {
    auto& slot = entries_.push_back_slot();
    slot.due = now + latency_;
    slot.item = item;
    notify_sink();
  }

  bool empty() const { return entries_.empty(); }
  std::size_t in_flight() const { return entries_.size(); }

 private:
  void notify_sink() {
    if (sink_inflight_ != nullptr) {
      ++*sink_inflight_;
      *sink_active_ = 1;
    }
  }

  struct Entry {
    Cycle due = 0;
    T item{};
  };
  Cycle latency_;
  util::RingBuffer<Entry> entries_;
  std::uint8_t* sink_active_ = nullptr;
  std::uint32_t* sink_inflight_ = nullptr;
};

using FlitChannel = Channel<Flit>;
using CreditChannel = Channel<Credit>;

}  // namespace drlnoc::noc
