// Synthetic spatial traffic patterns and temporal injection processes —
// the standard BookSim-style workload vocabulary.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "noc/topology.h"
#include "noc/types.h"
#include "util/rng.h"

namespace drlnoc::noc {

/// Spatial pattern: which destination a given source sends to.
/// Returns kInvalidNode when the pattern maps a source to itself
/// (e.g. transpose diagonal); such sources generate no traffic.
class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;
  virtual std::string name() const = 0;
  virtual NodeId dest(NodeId src, util::Rng& rng) const = 0;
};

/// Uniform random over all nodes except the source.
class UniformTraffic : public TrafficPattern {
 public:
  explicit UniformTraffic(int nodes) : nodes_(nodes) {}
  std::string name() const override { return "uniform"; }
  NodeId dest(NodeId src, util::Rng& rng) const override;

 private:
  int nodes_;
};

/// Matrix transpose on a W×H grid: (x, y) -> (y, x); requires W == H.
class TransposeTraffic : public TrafficPattern {
 public:
  TransposeTraffic(int width, int height);
  std::string name() const override { return "transpose"; }
  NodeId dest(NodeId src, util::Rng& rng) const override;

 private:
  int width_;
};

/// dest = ~src over log2(N) bits; requires power-of-two node count.
class BitComplementTraffic : public TrafficPattern {
 public:
  explicit BitComplementTraffic(int nodes);
  std::string name() const override { return "bitcomp"; }
  NodeId dest(NodeId src, util::Rng& rng) const override;

 private:
  int bits_;
};

/// dest = bit-reversal of src; requires power-of-two node count.
class BitReverseTraffic : public TrafficPattern {
 public:
  explicit BitReverseTraffic(int nodes);
  std::string name() const override { return "bitrev"; }
  NodeId dest(NodeId src, util::Rng& rng) const override;

 private:
  int bits_;
};

/// Perfect shuffle: rotate the address bits left by one.
class ShuffleTraffic : public TrafficPattern {
 public:
  explicit ShuffleTraffic(int nodes);
  std::string name() const override { return "shuffle"; }
  NodeId dest(NodeId src, util::Rng& rng) const override;

 private:
  int bits_;
};

/// Tornado on a W×H grid: half-way around each dimension.
class TornadoTraffic : public TrafficPattern {
 public:
  TornadoTraffic(int width, int height);
  std::string name() const override { return "tornado"; }
  NodeId dest(NodeId src, util::Rng& rng) const override;

 private:
  int width_;
  int height_;
};

/// Nearest neighbour: (x+1 mod W, y).
class NeighborTraffic : public TrafficPattern {
 public:
  NeighborTraffic(int width, int height);
  std::string name() const override { return "neighbor"; }
  NodeId dest(NodeId src, util::Rng& rng) const override;

 private:
  int width_;
  int height_;
};

/// With probability `hot_fraction` the destination is a uniformly chosen
/// hotspot node; otherwise uniform random.
class HotspotTraffic : public TrafficPattern {
 public:
  HotspotTraffic(int nodes, std::vector<NodeId> hotspots, double hot_fraction);
  std::string name() const override { return "hotspot"; }
  NodeId dest(NodeId src, util::Rng& rng) const override;
  const std::vector<NodeId>& hotspots() const { return hotspots_; }

 private:
  int nodes_;
  std::vector<NodeId> hotspots_;
  double hot_fraction_;
};

/// Factory by name: uniform, transpose, bitcomp, bitrev, shuffle, tornado,
/// neighbor, hotspot. Grid patterns need the topology geometry; hotspot
/// defaults to 4 corner-adjacent nodes with hot_fraction 0.5.
std::unique_ptr<TrafficPattern> make_pattern(const std::string& kind,
                                             const Topology& topo);

/// Temporal injection process: decides, per node and per core cycle, whether
/// a packet is generated. Stateful (per-node burst state lives inside).
class InjectionProcess {
 public:
  virtual ~InjectionProcess() = default;
  virtual std::string name() const = 0;
  /// `rate` is the target mean injection (packets/node/core-cycle).
  virtual bool fire(NodeId src, double rate, util::Rng& rng) = 0;
  virtual void reset() {}
};

/// Independent Bernoulli trials at the given rate.
class BernoulliInjection : public InjectionProcess {
 public:
  explicit BernoulliInjection(int nodes);
  std::string name() const override { return "bernoulli"; }
  bool fire(NodeId src, double rate, util::Rng& rng) override;
};

/// Two-state Markov-modulated on/off process. In the ON state packets are
/// generated at `rate / duty`, in OFF none; transitions keep the long-run
/// mean at `rate`. Produces the bursty arrivals self-configuration must ride.
class BurstInjection : public InjectionProcess {
 public:
  /// alpha = P(off->on), beta = P(on->off); duty = alpha / (alpha + beta).
  BurstInjection(int nodes, double alpha, double beta);
  std::string name() const override { return "burst"; }
  bool fire(NodeId src, double rate, util::Rng& rng) override;
  void reset() override;

 private:
  double alpha_;
  double beta_;
  double duty_;
  std::vector<bool> on_;
};

std::unique_ptr<InjectionProcess> make_injection(const std::string& kind,
                                                 int nodes);

}  // namespace drlnoc::noc
