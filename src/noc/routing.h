// Routing algorithms. A routing function maps (current router, input port,
// head flit) to an ordered list of candidate output ports, each with the VC
// *class* the packet must use on that hop (dateline deadlock avoidance on
// rings/tori). Deterministic algorithms return one candidate; adaptive ones
// return several and the router picks by downstream credit availability.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "noc/topology.h"
#include "noc/types.h"

namespace drlnoc::noc {

struct RouteChoice {
  PortId port = kLocalPort;
  std::uint8_t vc_class = 0;  ///< admissible VC class on the chosen link
};

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;
  virtual std::string name() const = 0;
  /// Appends candidates (preference order) for `flit` at router `node`
  /// arriving via `in_port` (kLocalPort for freshly injected packets).
  /// Must always produce at least one candidate; candidates must never
  /// include the inbound port (no U-turns).
  virtual void route(const Flit& flit, NodeId node, PortId in_port,
                     std::vector<RouteChoice>& out) const = 0;
  /// True when the algorithm may return more than one candidate.
  virtual bool adaptive() const { return false; }
};

/// Deterministic dimension-order X-then-Y routing on a 2-D mesh.
class MeshXY : public RoutingAlgorithm {
 public:
  explicit MeshXY(const Mesh2D& mesh) : mesh_(mesh) {}
  std::string name() const override { return "xy"; }
  void route(const Flit& flit, NodeId node, PortId in_port,
             std::vector<RouteChoice>& out) const override;

 private:
  const Mesh2D& mesh_;
};

/// Deterministic Y-then-X routing on a 2-D mesh.
class MeshYX : public RoutingAlgorithm {
 public:
  explicit MeshYX(const Mesh2D& mesh) : mesh_(mesh) {}
  std::string name() const override { return "yx"; }
  void route(const Flit& flit, NodeId node, PortId in_port,
             std::vector<RouteChoice>& out) const override;

 private:
  const Mesh2D& mesh_;
};

/// West-first turn-model adaptive routing on a 2-D mesh (Glass & Ni).
/// Westward hops are taken first and deterministically; east/north/south
/// segments are fully adaptive.
class MeshWestFirst : public RoutingAlgorithm {
 public:
  explicit MeshWestFirst(const Mesh2D& mesh) : mesh_(mesh) {}
  std::string name() const override { return "westfirst"; }
  bool adaptive() const override { return true; }
  void route(const Flit& flit, NodeId node, PortId in_port,
             std::vector<RouteChoice>& out) const override;

 private:
  const Mesh2D& mesh_;
};

/// Odd-even turn-model adaptive routing on a 2-D mesh (Chiu 2000).
class MeshOddEven : public RoutingAlgorithm {
 public:
  explicit MeshOddEven(const Mesh2D& mesh) : mesh_(mesh) {}
  std::string name() const override { return "oddeven"; }
  bool adaptive() const override { return true; }
  void route(const Flit& flit, NodeId node, PortId in_port,
             std::vector<RouteChoice>& out) const override;

 private:
  const Mesh2D& mesh_;
};

/// Dimension-order routing on a 2-D torus with minimal wrap direction and
/// dateline VC classes: a packet moves to class 1 after crossing the wrap
/// link of the dimension it is travelling in, and resets to class 0 when it
/// enters a new dimension.
class TorusDor : public RoutingAlgorithm {
 public:
  explicit TorusDor(const Torus2D& torus) : torus_(torus) {}
  std::string name() const override { return "torus_dor"; }
  void route(const Flit& flit, NodeId node, PortId in_port,
             std::vector<RouteChoice>& out) const override;

 private:
  const Torus2D& torus_;
};

/// Shortest-direction routing on a bidirectional ring with dateline classes.
class RingShortest : public RoutingAlgorithm {
 public:
  explicit RingShortest(const Ring& ring) : ring_(ring) {}
  std::string name() const override { return "ring_shortest"; }
  void route(const Flit& flit, NodeId node, PortId in_port,
             std::vector<RouteChoice>& out) const override;

 private:
  const Ring& ring_;
};

/// Factory. `kind`: "xy", "yx", "westfirst", "oddeven" (mesh);
/// "torus_dor" (torus); "ring_shortest" (ring). "auto" picks the natural
/// deterministic algorithm for the topology.
std::unique_ptr<RoutingAlgorithm> make_routing(const std::string& kind,
                                               const Topology& topo);

}  // namespace drlnoc::noc
