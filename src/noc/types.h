// Fundamental value types of the flit-level NoC simulator: flits, credits,
// and packet descriptors. Everything here is a plain value type; identity and
// ownership live in the router/NIC classes.
#pragma once

#include <cstdint>
#include <string>

namespace drlnoc::noc {

using NodeId = int;       ///< router / tile index
using PortId = int;       ///< router port index (0 is always the local port)
using VcId = int;         ///< virtual-channel index within a port
using Cycle = std::uint64_t;

inline constexpr PortId kLocalPort = 0;
inline constexpr NodeId kInvalidNode = -1;
inline constexpr VcId kInvalidVc = -1;

enum class FlitType : std::uint8_t {
  kHead,      ///< first flit of a multi-flit packet; carries routing info
  kBody,
  kTail,      ///< last flit; releases the virtual channel
  kHeadTail,  ///< single-flit packet
};

inline bool is_head(FlitType t) {
  return t == FlitType::kHead || t == FlitType::kHeadTail;
}
inline bool is_tail(FlitType t) {
  return t == FlitType::kTail || t == FlitType::kHeadTail;
}

/// One flow-control unit. Copied by value through channels and buffers.
struct Flit {
  std::uint64_t packet_id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  FlitType type = FlitType::kHeadTail;
  std::uint16_t seq = 0;          ///< position within the packet
  std::uint16_t packet_len = 1;   ///< total flits in the packet
  double inject_time = 0.0;       ///< core-clock time at generation
  std::uint8_t vc_class = 0;      ///< dateline class (ring/torus deadlock)
  VcId vc = 0;                    ///< VC on the link it currently occupies
  bool measured = false;          ///< true if within the measurement window
  std::uint32_t hops = 0;         ///< router traversals so far
  std::uint16_t tenant = 0;       ///< originating tenant (multi-tenant runs)
  /// Set when the flit crossed a faulted link (see noc/faults.h). Corrupted
  /// flits keep flowing — credits and quiescence counters stay exact — and
  /// the packet is discarded end-to-end at the destination NIC.
  bool corrupted = false;
};

/// Credit returned upstream when a buffer slot frees.
struct Credit {
  VcId vc = 0;
};

/// Human-readable flit description, used in error paths and tests.
std::string to_string(const Flit& flit);

}  // namespace drlnoc::noc
