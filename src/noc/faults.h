// Deterministic fault injection: transient link faults (per-flit corruption
// with end-to-end retry), permanent link failures (minimal-path rerouting
// around dead links), and router slowdowns (per-node clock-divisor
// degradation).
//
// Fail-corrupt semantics: a faulted link never *drops* a flit — it marks it
// corrupted and lets it complete its wormhole journey. Credits, VC state and
// the event-driven quiescence counters therefore stay exact (a dead link's
// in-flight flits drain normally); the destination NIC discards the corrupted
// packet and the FaultModel schedules a source retransmission with timeout,
// exponential backoff and a bounded retry budget. Retries reuse the original
// packet id and inject time, so trace-replay dependency maps keep working and
// reported latency includes the retry delay.
//
// Determinism: transient corruption is a pure hash of
// (seed, link, cycle, packet, seq) — no RNG stream is consumed, so fault
// decisions are independent of node visit order and a faulted run is
// bit-identical across repeated runs and any experiment-thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "noc/nic.h"
#include "noc/routing.h"
#include "noc/topology.h"
#include "noc/types.h"

namespace drlnoc::noc {

/// One scheduled (deterministic) fault event.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kLinkDown,  ///< directed link (node, port) goes permanently dead
    kSlowdown,  ///< node steps only every `factor` router cycles
  };
  Cycle at_cycle = 0;
  Kind kind = Kind::kLinkDown;
  NodeId node = 0;  ///< link: upstream node; slowdown: the affected node
  PortId port = 1;  ///< link events: output port at `node` (never kLocalPort)
  int factor = 2;   ///< slowdown divisor >= 1; 1 restores full speed
};

/// Scenario-scriptable fault configuration (the `.drlsc` `[faults]` section).
struct FaultParams {
  std::uint64_t seed = 1;
  /// Per-flit, per-link-traversal corruption probability in [0, 1].
  double link_fault_rate = 0.0;
  /// Router cycles from corrupted delivery to the first retransmission.
  Cycle retry_timeout = 64;
  /// Multiplier applied to the timeout on each subsequent attempt (>= 1).
  double retry_backoff = 2.0;
  /// Maximum retransmissions per packet; exhausting it loses the packet.
  int retry_budget = 4;
  std::vector<FaultEvent> events;

  bool enabled() const { return link_fault_rate > 0.0 || !events.empty(); }

  /// Range/shape checks that need no topology (rates, factors, budgets).
  /// Throws std::invalid_argument with a message naming the bad key.
  void validate() const;
  /// Topology-dependent checks: event node/port bounds, and — for events at
  /// cycle 0 — that the surviving links still connect every (src, dst) pair
  /// (fail fast instead of mid-run).
  void validate(const Topology& topo) const;
};

std::string to_string(FaultEvent::Kind kind);

/// Minimal-path rerouting around dead links. Healthy (no dead links) it
/// delegates verbatim to the wrapped base algorithm, so installing it does
/// not perturb routing decisions; after the first link death it switches to
/// a BFS shortest-path table over the surviving directed links.
class FaultAwareRouting : public RoutingAlgorithm {
 public:
  FaultAwareRouting(const RoutingAlgorithm& base, const Topology& topo);

  std::string name() const override { return base_.name() + "+fault"; }
  bool adaptive() const override { return base_.adaptive(); }
  void route(const Flit& flit, NodeId node, PortId in_port,
             std::vector<RouteChoice>& out) const override;

  /// Rebuilds the distance tables around `dead` (indexed node*radix+port,
  /// nonzero = dead). Throws std::runtime_error naming an unreachable
  /// (src, dst) pair when the surviving links disconnect the topology.
  void recompute(const std::vector<std::uint8_t>& dead);
  bool degraded() const { return degraded_; }

 private:
  const RoutingAlgorithm& base_;
  const Topology& topo_;
  bool degraded_ = false;
  std::vector<std::uint8_t> dead_;  ///< copy of the live dead-link flags
  /// dist_[dst * n + node]: live hop count from `node` to `dst`.
  std::vector<std::int16_t> dist_;
};

/// Seeded deterministic fault state for one Network instance.
class FaultModel {
 public:
  /// What happened to a corrupted delivery.
  enum class RetryVerdict : std::uint8_t {
    kRetryScheduled,  ///< retransmission queued (timeout * backoff^attempt)
    kLost,            ///< retry budget exhausted; packet dropped for good
  };

  FaultModel(FaultParams params, const Topology& topo);

  const FaultParams& params() const { return params_; }

  /// Per-flit corruption test at the router's link-traversal (ST) stage.
  /// True when the flit must be marked corrupted: always on a dead link,
  /// else with probability link_fault_rate via a stateless hash.
  bool corrupt_on_link(NodeId node, PortId port, const Flit& flit,
                       Cycle cycle) const;

  bool link_dead(NodeId node, PortId port) const {
    return dead_[link_index(node, port)] != 0;
  }
  bool any_link_dead() const { return dead_count_ > 0; }
  const std::vector<std::uint8_t>& dead_links() const { return dead_; }

  /// Marks a directed link dead. Returns true when this is a state change
  /// (the caller then recomputes routing and wakes the fabric).
  bool kill_link(NodeId node, PortId port);

  /// First not-yet-fired scheduled event at or before `cycle`; nullptr when
  /// none. Call repeatedly until it returns nullptr, acting on each.
  const FaultEvent* next_due_event(Cycle cycle);

  /// Handles a corrupted packet arriving at its destination: schedules a
  /// retransmission or declares the packet lost once the budget is spent.
  RetryVerdict on_corrupt_delivery(const PacketRecord& rec, Cycle cycle);

  /// A retransmission whose timer expired; `*this` pops it. Ordered by
  /// (due cycle, schedule sequence) so drain order is deterministic.
  struct Retry {
    std::uint64_t packet_id = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    double inject_time = 0.0;  ///< original injection (latency spans retries)
    std::uint16_t length = 1;
    std::uint16_t tenant = 0;
    bool measured = false;
  };
  bool pop_due_retry(Cycle cycle, Retry& out);

  /// Retransmissions already issued for a live packet (0 for the common
  /// fault-free case). O(1) when no packet has ever been retried.
  int attempts_of(std::uint64_t packet_id) const;
  /// Drops retry bookkeeping after a packet finally delivers clean.
  void forget(std::uint64_t packet_id);

  /// True while any retransmission is waiting on its timer — the network
  /// cannot be considered drained before these re-enter the fabric.
  bool retries_pending() const { return !retry_heap_.empty(); }
  /// Earliest pending retry due cycle (only valid when retries_pending()).
  Cycle next_retry_due() const { return retry_heap_.front().due; }

 private:
  std::size_t link_index(NodeId node, PortId port) const {
    return static_cast<std::size_t>(node) * static_cast<std::size_t>(radix_) +
           static_cast<std::size_t>(port);
  }

  struct HeapEntry {
    Cycle due = 0;
    std::uint64_t seq = 0;  ///< schedule order; ties broken first-scheduled
    Retry retry;
  };
  static bool heap_after(const HeapEntry& a, const HeapEntry& b) {
    return a.due != b.due ? a.due > b.due : a.seq > b.seq;
  }

  FaultParams params_;
  int radix_ = 0;
  std::vector<std::uint8_t> dead_;
  int dead_count_ = 0;
  std::size_t next_event_ = 0;  ///< events_ already sorted by at_cycle
  std::vector<HeapEntry> retry_heap_;  ///< min-heap on (due, seq)
  std::uint64_t retry_seq_ = 0;
  /// packet_id -> retransmissions issued; entries removed on clean delivery
  /// or loss, so the map stays proportional to in-flight faulted packets.
  std::vector<std::pair<std::uint64_t, int>> attempts_;
};

}  // namespace drlnoc::noc
