#include "noc/routing.h"

#include <cassert>
#include <stdexcept>

namespace drlnoc::noc {

namespace {
constexpr PortId kEast = 1;
constexpr PortId kWest = 2;
constexpr PortId kNorth = 3;
constexpr PortId kSouth = 4;
constexpr PortId kCw = 1;
constexpr PortId kCcw = 2;

// Dimension of a mesh/torus port: 0 = x, 1 = y, -1 = local.
int dim_of(PortId p) {
  if (p == kEast || p == kWest) return 0;
  if (p == kNorth || p == kSouth) return 1;
  return -1;
}
}  // namespace

void MeshXY::route(const Flit& flit, NodeId node, PortId /*in_port*/,
                   std::vector<RouteChoice>& out) const {
  const int cx = mesh_.x_of(node), cy = mesh_.y_of(node);
  const int dx = mesh_.x_of(flit.dst) - cx, dy = mesh_.y_of(flit.dst) - cy;
  if (dx > 0) out.push_back({kEast, 0});
  else if (dx < 0) out.push_back({kWest, 0});
  else if (dy > 0) out.push_back({kNorth, 0});
  else if (dy < 0) out.push_back({kSouth, 0});
  else out.push_back({kLocalPort, 0});
}

void MeshYX::route(const Flit& flit, NodeId node, PortId /*in_port*/,
                   std::vector<RouteChoice>& out) const {
  const int cx = mesh_.x_of(node), cy = mesh_.y_of(node);
  const int dx = mesh_.x_of(flit.dst) - cx, dy = mesh_.y_of(flit.dst) - cy;
  if (dy > 0) out.push_back({kNorth, 0});
  else if (dy < 0) out.push_back({kSouth, 0});
  else if (dx > 0) out.push_back({kEast, 0});
  else if (dx < 0) out.push_back({kWest, 0});
  else out.push_back({kLocalPort, 0});
}

void MeshWestFirst::route(const Flit& flit, NodeId node, PortId /*in_port*/,
                          std::vector<RouteChoice>& out) const {
  const int cx = mesh_.x_of(node), cy = mesh_.y_of(node);
  const int dx = mesh_.x_of(flit.dst) - cx, dy = mesh_.y_of(flit.dst) - cy;
  if (dx == 0 && dy == 0) {
    out.push_back({kLocalPort, 0});
    return;
  }
  if (dx < 0) {
    // West-first rule: all westward hops are taken before anything else.
    out.push_back({kWest, 0});
    return;
  }
  // Adaptive among the remaining minimal directions (east / north / south).
  if (dx > 0) out.push_back({kEast, 0});
  if (dy > 0) out.push_back({kNorth, 0});
  if (dy < 0) out.push_back({kSouth, 0});
}

void MeshOddEven::route(const Flit& flit, NodeId node, PortId /*in_port*/,
                        std::vector<RouteChoice>& out) const {
  // Chiu's ROUTE function. Even columns forbid E->N and E->S turns; odd
  // columns forbid N->W and S->W turns; the candidate set below respects
  // both restrictions and stays minimal.
  const int cx = mesh_.x_of(node), cy = mesh_.y_of(node);
  const int sx = mesh_.x_of(flit.src);
  const int dxl = mesh_.x_of(flit.dst), dyl = mesh_.y_of(flit.dst);
  const int ex = dxl - cx, ey = dyl - cy;
  if (ex == 0 && ey == 0) {
    out.push_back({kLocalPort, 0});
    return;
  }
  auto vertical = [&] { out.push_back({ey > 0 ? kNorth : kSouth, 0}); };
  if (ex == 0) {
    vertical();
    return;
  }
  if (ex > 0) {  // eastbound
    if (ey == 0) {
      out.push_back({kEast, 0});
      return;
    }
    if ((cx % 2 == 1) || cx == sx) vertical();
    if ((dxl % 2 == 1) || ex != 1) out.push_back({kEast, 0});
  } else {  // westbound
    out.push_back({kWest, 0});
    if (cx % 2 == 0 && ey != 0) vertical();
  }
  assert(!out.empty());
}

void TorusDor::route(const Flit& flit, NodeId node, PortId in_port,
                     std::vector<RouteChoice>& out) const {
  const int w = torus_.width(), h = torus_.height();
  const int cx = torus_.x_of(node), cy = torus_.y_of(node);
  const int dx = torus_.x_of(flit.dst), dy = torus_.y_of(flit.dst);

  PortId port;
  if (cx != dx) {
    // Minimal direction in x; ties go east.
    const int fwd = (dx - cx + w) % w;  // hops going east
    port = (fwd <= w - fwd) ? kEast : kWest;
  } else if (cy != dy) {
    const int fwd = (dy - cy + h) % h;
    port = (fwd <= h - fwd) ? kNorth : kSouth;
  } else {
    out.push_back({kLocalPort, 0});
    return;
  }

  // Dateline class: reset to 0 when entering a new dimension, escalate to 1
  // when this hop crosses the wrap link of the current dimension.
  std::uint8_t cls =
      (dim_of(in_port) == dim_of(port)) ? flit.vc_class : std::uint8_t{0};
  if (torus_.crosses_dateline(node, port)) cls = 1;
  out.push_back({port, cls});
}

void RingShortest::route(const Flit& flit, NodeId node, PortId /*in_port*/,
                         std::vector<RouteChoice>& out) const {
  const int n = ring_.num_nodes();
  if (node == flit.dst) {
    out.push_back({kLocalPort, 0});
    return;
  }
  const int fwd = (flit.dst - node + n) % n;  // hops clockwise
  const PortId port = (fwd <= n - fwd) ? kCw : kCcw;
  std::uint8_t cls = flit.vc_class;  // one dimension: class persists
  if (ring_.crosses_dateline(node, port)) cls = 1;
  out.push_back({port, cls});
}

std::unique_ptr<RoutingAlgorithm> make_routing(const std::string& kind,
                                               const Topology& topo) {
  const auto* mesh = dynamic_cast<const Mesh2D*>(&topo);
  const auto* torus = dynamic_cast<const Torus2D*>(&topo);
  const auto* ring = dynamic_cast<const Ring*>(&topo);

  std::string k = kind;
  if (k == "auto") {
    if (mesh) k = "xy";
    else if (torus) k = "torus_dor";
    else if (ring) k = "ring_shortest";
  }

  if (k == "xy" && mesh) return std::make_unique<MeshXY>(*mesh);
  if (k == "yx" && mesh) return std::make_unique<MeshYX>(*mesh);
  if (k == "westfirst" && mesh) return std::make_unique<MeshWestFirst>(*mesh);
  if (k == "oddeven" && mesh) return std::make_unique<MeshOddEven>(*mesh);
  if (k == "torus_dor" && torus) return std::make_unique<TorusDor>(*torus);
  if (k == "ring_shortest" && ring) return std::make_unique<RingShortest>(*ring);
  throw std::invalid_argument("routing '" + kind +
                              "' incompatible with topology " + topo.name());
}

}  // namespace drlnoc::noc
