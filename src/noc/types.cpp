#include "noc/types.h"

#include <sstream>

namespace drlnoc::noc {

namespace {
const char* type_name(FlitType t) {
  switch (t) {
    case FlitType::kHead: return "H";
    case FlitType::kBody: return "B";
    case FlitType::kTail: return "T";
    case FlitType::kHeadTail: return "HT";
  }
  return "?";
}
}  // namespace

std::string to_string(const Flit& flit) {
  std::ostringstream oss;
  oss << "flit{pkt=" << flit.packet_id << " " << type_name(flit.type)
      << " seq=" << flit.seq << "/" << flit.packet_len << " " << flit.src
      << "->" << flit.dst << " vc=" << flit.vc
      << " cls=" << static_cast<int>(flit.vc_class)
      << " hops=" << flit.hops << "}";
  return oss.str();
}

}  // namespace drlnoc::noc
