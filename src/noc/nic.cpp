#include "noc/nic.h"

#include <algorithm>
#include <cassert>

namespace drlnoc::noc {

Nic::Nic(NodeId id, NicParams params)
    : id_(id), params_(params),
      credits_(static_cast<std::size_t>(params.max_vcs), params.max_depth),
      tx_(static_cast<std::size_t>(params.max_vcs)),
      rx_(static_cast<std::size_t>(params.max_vcs)) {
  // Injection credits start at the router input unit's initially advertised
  // capacity (its active depth); Network overrides via init pattern below.
}

void Nic::init_credits(int per_vc) {
  assert(per_vc >= 0 && per_vc <= params_.max_depth);
  std::fill(credits_.begin(), credits_.end(), per_vc);
}

void Nic::connect(FlitChannel* inject_flits, CreditChannel* inject_credits,
                  FlitChannel* eject_flits, CreditChannel* eject_credits) {
  inject_flits_ = inject_flits;
  inject_credits_ = inject_credits;
  eject_flits_ = eject_flits;
  eject_credits_ = eject_credits;
}

void Nic::offer_packet(NodeId dst, double core_time, bool measured,
                       std::uint64_t packet_id, int length, int tenant) {
  if (length <= 0) length = params_.flits_per_packet;
  assert(length >= 1 && length <= 0xffff);
  assert(tenant >= 0 && tenant <= 0xffff);
  source_queue_.push_back(PendingPacket{packet_id, dst, core_time, measured,
                                        static_cast<std::uint16_t>(length),
                                        static_cast<std::uint16_t>(tenant)});
}

int Nic::pick_injection_vc() const {
  // Injected packets always start in VC class 0.
  const int per_class_phys = params_.max_vcs / params_.vc_classes;
  const int per_class_active =
      std::max(1, params_.active_vcs / params_.vc_classes);
  const int end = std::min(per_class_active, per_class_phys);
  int best = -1;
  int best_credits = 0;  // require at least one credit
  for (int v = 0; v < end; ++v) {
    if (tx_[static_cast<std::size_t>(v)].active) continue;
    if (credits_[static_cast<std::size_t>(v)] > best_credits) {
      best_credits = credits_[static_cast<std::size_t>(v)];
      best = v;
    }
  }
  return best;
}

void Nic::step(Cycle cycle, double core_time) {
  // 1. Ejection: drain every deliverable flit, return credits immediately.
  if (eject_flits_) {
    while (eject_flits_->ready(cycle)) {
      const Flit flit = eject_flits_->receive(cycle);
      assert(flit.dst == id_ && "flit ejected at wrong node");
      RxState& rx = rx_[static_cast<std::size_t>(flit.vc)];
      if (is_head(flit.type)) {
        assert(!rx.active && "head flit interleaved into busy ejection VC");
        rx.active = true;
        rx.corrupted = false;
        rx.expected_seq = 0;
      }
      assert(rx.active);
      rx.corrupted = rx.corrupted || flit.corrupted;
      assert(flit.seq == rx.expected_seq && "flit reordering within a VC");
      ++rx.expected_seq;
      ++ejected_flits_;
      if (eject_credits_) eject_credits_->send(Credit{flit.vc}, cycle);
      if (is_tail(flit.type)) {
        rx.active = false;
        PacketRecord rec;
        rec.packet_id = flit.packet_id;
        rec.src = flit.src;
        rec.dst = flit.dst;
        rec.length = flit.packet_len;
        rec.inject_time = flit.inject_time;
        rec.eject_time = core_time;
        rec.hops = flit.hops;
        rec.measured = flit.measured;
        rec.tenant = flit.tenant;
        rec.corrupted = rx.corrupted;
        records_.push_back(rec);
        ++received_packets_;
      }
    }
  }

  // 2. Credits from the router's local input unit.
  if (inject_credits_) {
    while (inject_credits_->ready(cycle)) {
      const Credit c = inject_credits_->receive(cycle);
      ++credits_[static_cast<std::size_t>(c.vc)];
      assert(credits_[static_cast<std::size_t>(c.vc)] <= params_.max_depth);
    }
  }

  if (!inject_flits_) return;

  // 3. Injection: the local link carries one flit per router cycle.
  //    Round-robin across in-progress transmissions first; start a new
  //    packet only when no transmission can make progress.
  int send_vc = -1;
  for (int k = 0; k < params_.max_vcs; ++k) {
    int v = rr_vc_ + k;
    if (v >= params_.max_vcs) v -= params_.max_vcs;
    if (tx_[static_cast<std::size_t>(v)].active &&
        credits_[static_cast<std::size_t>(v)] > 0) {
      send_vc = v;
      break;
    }
  }
  if (send_vc < 0 && !source_queue_.empty()) {
    const int v = pick_injection_vc();
    if (v >= 0) {
      TxState& tx = tx_[static_cast<std::size_t>(v)];
      tx.active = true;
      tx.packet = source_queue_.front();
      source_queue_.pop_front();
      tx.next_seq = 0;
      tx.length = tx.packet.length;
      send_vc = v;
    }
  }
  if (send_vc < 0) return;

  TxState& tx = tx_[static_cast<std::size_t>(send_vc)];
  Flit flit;
  flit.packet_id = tx.packet.packet_id;
  flit.src = id_;
  flit.dst = tx.packet.dst;
  flit.seq = tx.next_seq;
  flit.packet_len = tx.length;
  flit.inject_time = tx.packet.inject_time;
  flit.measured = tx.packet.measured;
  flit.tenant = tx.packet.tenant;
  flit.vc_class = 0;
  flit.vc = static_cast<VcId>(send_vc);
  const bool head = tx.next_seq == 0;
  const bool tail = tx.next_seq + 1 == tx.length;
  flit.type = head && tail ? FlitType::kHeadTail
              : head       ? FlitType::kHead
              : tail       ? FlitType::kTail
                           : FlitType::kBody;
  inject_flits_->send_from(flit, cycle);
  --credits_[static_cast<std::size_t>(send_vc)];
  ++injected_flits_;
  ++tx.next_seq;
  if (tail) tx.active = false;
  rr_vc_ = send_vc + 1 == params_.max_vcs ? 0 : send_vc + 1;
  (void)core_time;
}

bool Nic::idle() const {
  if (!source_queue_.empty()) return false;
  for (const auto& tx : tx_)
    if (tx.active) return false;
  for (const auto& rx : rx_)
    if (rx.active) return false;
  return true;
}

}  // namespace drlnoc::noc
