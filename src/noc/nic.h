// Network interface controller: packetizes traffic into flits, injects them
// into the router's local port under credit flow control, reassembles
// ejected packets, and records per-packet latency.
#pragma once

#include <cstdint>
#include <vector>

#include "noc/channel.h"
#include "noc/types.h"
#include "util/ring_buffer.h"

namespace drlnoc::noc {

/// A completed (ejected) packet, as recorded at the destination NIC.
struct PacketRecord {
  std::uint64_t packet_id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint16_t length = 1;       ///< flits
  double inject_time = 0.0;       ///< core-clock cycles at generation
  double eject_time = 0.0;        ///< core-clock cycles when the tail arrived
  std::uint32_t hops = 0;         ///< router traversals of the tail flit
  bool measured = false;
  std::uint16_t tenant = 0;       ///< originating tenant (0 outside
                                  ///< multi-tenant scenarios)
  /// True when any flit of the packet crossed a faulted link; the packet
  /// does not count as received (the fault model retries or drops it).
  bool corrupted = false;
};

struct NicParams {
  int max_vcs = 4;
  int max_depth = 8;
  int vc_classes = 1;
  int active_vcs = 4;      ///< mirrors the network configuration
  int flits_per_packet = 4;
};

class Nic {
 public:
  Nic(NodeId id, NicParams params);

  /// Wires the injection link (NIC -> router local input) and the ejection
  /// link (router local output -> NIC).
  void connect(FlitChannel* inject_flits, CreditChannel* inject_credits,
               FlitChannel* eject_flits, CreditChannel* eject_credits);

  /// Sets initial per-VC injection credits to the capacity advertised by the
  /// router's local input unit (its initial active depth).
  void init_credits(int per_vc);

  /// Queues a new packet for injection; timestamps are core-clock time.
  /// Latency therefore includes source-queue waiting time. `length` in
  /// flits; 0 uses the configured default flits_per_packet. `tenant` tags
  /// the packet for per-tenant attribution in multi-tenant scenarios.
  void offer_packet(NodeId dst, double core_time, bool measured,
                    std::uint64_t packet_id, int length = 0, int tenant = 0);

  /// One router-clock cycle: drain ejection link, then inject up to one flit.
  void step(Cycle cycle, double core_time);

  /// Tracks the network's active-VC configuration so injection only starts
  /// packets on VCs the routers will service.
  void set_active_vcs(int vcs) { params_.active_vcs = vcs; }

  // --- observability --------------------------------------------------------
  /// Packets completed since the last drain_records() call.
  std::vector<PacketRecord>& records() { return records_; }
  std::size_t source_queue_len() const { return source_queue_.size(); }
  std::uint64_t injected_flits() const { return injected_flits_; }
  std::uint64_t ejected_flits() const { return ejected_flits_; }
  std::uint64_t received_packets() const { return received_packets_; }
  /// True when nothing is pending at this NIC (source queue, partial
  /// transmissions, reassembly).
  bool idle() const;
  NodeId id() const { return id_; }

 private:
  struct PendingPacket {
    std::uint64_t packet_id;
    NodeId dst;
    double inject_time;
    bool measured;
    std::uint16_t length;
    std::uint16_t tenant;
  };

  /// In-progress transmission on one injection VC.
  struct TxState {
    bool active = false;
    PendingPacket packet{};
    std::uint16_t next_seq = 0;
    std::uint16_t length = 1;
  };

  /// Reassembly progress for the packet currently arriving on one
  /// ejection VC.
  struct RxState {
    bool active = false;
    bool corrupted = false;  ///< any flit so far carried a fault mark
    std::uint16_t expected_seq = 0;
  };

  int pick_injection_vc() const;

  NodeId id_;
  NicParams params_;
  FlitChannel* inject_flits_ = nullptr;
  CreditChannel* inject_credits_ = nullptr;
  FlitChannel* eject_flits_ = nullptr;
  CreditChannel* eject_credits_ = nullptr;

  util::RingBuffer<PendingPacket> source_queue_;
  std::vector<int> credits_;   ///< per injection VC
  std::vector<TxState> tx_;    ///< per injection VC
  std::vector<RxState> rx_;    ///< per ejection VC
  int rr_vc_ = 0;              ///< round-robin over active transmissions

  std::vector<PacketRecord> records_;
  std::uint64_t injected_flits_ = 0;
  std::uint64_t ejected_flits_ = 0;
  std::uint64_t received_packets_ = 0;
};

}  // namespace drlnoc::noc
