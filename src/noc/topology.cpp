#include "noc/topology.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace drlnoc::noc {

namespace {
// Shared port convention for the 2-D topologies.
constexpr PortId kEast = 1;
constexpr PortId kWest = 2;
constexpr PortId kNorth = 3;
constexpr PortId kSouth = 4;
constexpr PortId kCw = 1;
constexpr PortId kCcw = 2;
}  // namespace

void Topology::build_cache() const {
  if (cache_built_) return;
  const int slots = num_nodes() * radix();
  neighbor_cache_.assign(static_cast<std::size_t>(slots), std::nullopt);
  dateline_cache_.assign(static_cast<std::size_t>(slots), false);
  for (const Link& link : links()) {
    const auto idx =
        static_cast<std::size_t>(link.from.node * radix() + link.from.port);
    neighbor_cache_[idx] = link.to;
    dateline_cache_[idx] = link.dateline;
  }
  cache_built_ = true;
}

std::optional<LinkEnd> Topology::neighbor(NodeId node, PortId out_port) const {
  build_cache();
  return neighbor_cache_[static_cast<std::size_t>(node * radix() + out_port)];
}

bool Topology::crosses_dateline(NodeId node, PortId out_port) const {
  build_cache();
  return dateline_cache_[static_cast<std::size_t>(node * radix() + out_port)];
}

Mesh2D::Mesh2D(int width, int height) : width_(width), height_(height) {
  if (width < 2 || height < 1) {
    throw std::invalid_argument("Mesh2D requires width >= 2, height >= 1");
  }
}

std::string Mesh2D::name() const {
  return "mesh" + std::to_string(width_) + "x" + std::to_string(height_);
}

std::vector<Link> Mesh2D::links() const {
  std::vector<Link> out;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const NodeId n = node_at(x, y);
      if (x + 1 < width_) {
        out.push_back({{n, kEast}, {node_at(x + 1, y), kWest}, false});
        out.push_back({{node_at(x + 1, y), kWest}, {n, kEast}, false});
      }
      if (y + 1 < height_) {
        out.push_back({{n, kNorth}, {node_at(x, y + 1), kSouth}, false});
        out.push_back({{node_at(x, y + 1), kSouth}, {n, kNorth}, false});
      }
    }
  }
  return out;
}

int Mesh2D::min_hops(NodeId src, NodeId dst) const {
  return std::abs(x_of(src) - x_of(dst)) + std::abs(y_of(src) - y_of(dst));
}

Torus2D::Torus2D(int width, int height) : width_(width), height_(height) {
  if (width < 3 || height < 3) {
    // Width-2 torus dimensions would create duplicate parallel links with
    // the mesh port convention; require >= 3 to keep wiring unambiguous.
    throw std::invalid_argument("Torus2D requires width, height >= 3");
  }
}

std::string Torus2D::name() const {
  return "torus" + std::to_string(width_) + "x" + std::to_string(height_);
}

std::vector<Link> Torus2D::links() const {
  std::vector<Link> out;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const NodeId n = node_at(x, y);
      const int xe = (x + 1) % width_;
      const int yn = (y + 1) % height_;
      // +x direction; the wrap (x = width-1 -> 0) is the x dateline.
      out.push_back({{n, kEast}, {node_at(xe, y), kWest}, x + 1 == width_});
      // -x direction; wrap (0 -> width-1) is also a dateline crossing.
      out.push_back({{node_at(xe, y), kWest}, {n, kEast}, x + 1 == width_});
      out.push_back({{n, kNorth}, {node_at(x, yn), kSouth}, y + 1 == height_});
      out.push_back({{node_at(x, yn), kSouth}, {n, kNorth}, y + 1 == height_});
    }
  }
  return out;
}

int Torus2D::min_hops(NodeId src, NodeId dst) const {
  const int dx = std::abs(x_of(src) - x_of(dst));
  const int dy = std::abs(y_of(src) - y_of(dst));
  return std::min(dx, width_ - dx) + std::min(dy, height_ - dy);
}

Ring::Ring(int nodes) : nodes_(nodes) {
  if (nodes < 3) throw std::invalid_argument("Ring requires >= 3 nodes");
}

std::string Ring::name() const { return "ring" + std::to_string(nodes_); }

std::vector<Link> Ring::links() const {
  std::vector<Link> out;
  for (int n = 0; n < nodes_; ++n) {
    const int next = (n + 1) % nodes_;
    out.push_back({{n, kCw}, {next, kCcw}, n + 1 == nodes_});
    out.push_back({{next, kCcw}, {n, kCw}, n + 1 == nodes_});
  }
  return out;
}

int Ring::min_hops(NodeId src, NodeId dst) const {
  const int d = std::abs(src - dst);
  return std::min(d, nodes_ - d);
}

std::unique_ptr<Topology> make_topology(const std::string& kind, int width,
                                        int height) {
  if (kind == "mesh") return std::make_unique<Mesh2D>(width, height);
  if (kind == "torus") return std::make_unique<Torus2D>(width, height);
  if (kind == "ring") return std::make_unique<Ring>(width * height);
  throw std::invalid_argument("unknown topology: " + kind);
}

}  // namespace drlnoc::noc
