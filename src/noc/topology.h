// Topology descriptions: who connects to whom and through which ports.
// A topology is a static graph; routers and channels are instantiated from it
// by Network. Port 0 of every router is the local (NIC) port.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "noc/types.h"

namespace drlnoc::noc {

/// Endpoint of a directed inter-router link.
struct LinkEnd {
  NodeId node = kInvalidNode;
  PortId port = 0;
};

/// Directed inter-router link (used by Network when wiring channels).
struct Link {
  LinkEnd from;  ///< output side
  LinkEnd to;    ///< input side
  /// True when the link wraps around a torus/ring dimension (dateline);
  /// packets crossing it must switch VC class to stay deadlock-free.
  bool dateline = false;
};

/// Abstract interconnect topology.
class Topology {
 public:
  virtual ~Topology() = default;

  virtual std::string name() const = 0;
  virtual int num_nodes() const = 0;
  /// Number of ports per router, including the local port (uniform radix).
  virtual int radix() const = 0;
  /// All directed inter-router links.
  virtual std::vector<Link> links() const = 0;
  /// Minimal router-to-router hop count (for latency lower bounds and
  /// oracle checks). Returns 0 when src == dst.
  virtual int min_hops(NodeId src, NodeId dst) const = 0;
  /// Number of VC classes required for deadlock freedom (1 for mesh,
  /// 2 for ring/torus dateline scheme).
  virtual int required_vc_classes() const = 0;

  /// Downstream endpoint of (node, out_port); nullopt for the local port or
  /// an unconnected port.
  std::optional<LinkEnd> neighbor(NodeId node, PortId out_port) const;
  /// Whether (node, out_port) crosses a dateline.
  bool crosses_dateline(NodeId node, PortId out_port) const;

 protected:
  /// Lazily built adjacency cache keyed by node*radix+port.
  void build_cache() const;

 private:
  mutable std::vector<std::optional<LinkEnd>> neighbor_cache_;
  mutable std::vector<bool> dateline_cache_;
  mutable bool cache_built_ = false;
};

/// 2-D mesh; ports: 0=local, 1=east(+x), 2=west(-x), 3=north(+y), 4=south(-y).
class Mesh2D : public Topology {
 public:
  Mesh2D(int width, int height);

  std::string name() const override;
  int num_nodes() const override { return width_ * height_; }
  int radix() const override { return 5; }
  std::vector<Link> links() const override;
  int min_hops(NodeId src, NodeId dst) const override;
  int required_vc_classes() const override { return 1; }

  int width() const { return width_; }
  int height() const { return height_; }
  int x_of(NodeId n) const { return n % width_; }
  int y_of(NodeId n) const { return n / width_; }
  NodeId node_at(int x, int y) const { return y * width_ + x; }

 private:
  int width_;
  int height_;
};

/// 2-D torus; same port convention as Mesh2D, wrap links marked as datelines
/// on the (max -> 0) crossing in each dimension.
class Torus2D : public Topology {
 public:
  Torus2D(int width, int height);

  std::string name() const override;
  int num_nodes() const override { return width_ * height_; }
  int radix() const override { return 5; }
  std::vector<Link> links() const override;
  int min_hops(NodeId src, NodeId dst) const override;
  int required_vc_classes() const override { return 2; }

  int width() const { return width_; }
  int height() const { return height_; }
  int x_of(NodeId n) const { return n % width_; }
  int y_of(NodeId n) const { return n / width_; }
  NodeId node_at(int x, int y) const { return y * width_ + x; }

 private:
  int width_;
  int height_;
};

/// Bidirectional ring; ports: 0=local, 1=clockwise(+), 2=counter-clockwise(-).
class Ring : public Topology {
 public:
  explicit Ring(int nodes);

  std::string name() const override;
  int num_nodes() const override { return nodes_; }
  int radix() const override { return 3; }
  std::vector<Link> links() const override;
  int min_hops(NodeId src, NodeId dst) const override;
  int required_vc_classes() const override { return 2; }

 private:
  int nodes_;
};

/// Factory: "mesh" (width,height), "torus" (width,height), "ring" (nodes).
std::unique_ptr<Topology> make_topology(const std::string& kind, int width,
                                        int height);

}  // namespace drlnoc::noc
