#include "noc/power.h"

#include <cassert>
#include <stdexcept>

namespace drlnoc::noc {

std::vector<DvfsLevel> default_dvfs_levels() {
  return {
      {0.5, 0.70, "L0-0.5GHz"},
      {1.0, 0.85, "L1-1.0GHz"},
      {1.5, 1.00, "L2-1.5GHz"},
      {2.0, 1.20, "L3-2.0GHz"},
  };
}

PowerModel::PowerModel(PowerParams params, std::vector<DvfsLevel> levels)
    : params_(params), levels_(std::move(levels)) {
  if (levels_.empty()) throw std::invalid_argument("empty DVFS table");
  for (const auto& l : levels_) {
    if (l.freq_ghz <= 0.0 || l.freq_ghz > params_.core_freq_ghz + 1e-9) {
      throw std::invalid_argument(
          "DVFS frequency must be in (0, core_freq]; router clocks faster "
          "than the core clock are not modelled");
    }
  }
}

const DvfsLevel& PowerModel::level(int idx) const {
  assert(idx >= 0 && idx < num_levels());
  return levels_[static_cast<std::size_t>(idx)];
}

double PowerModel::clock_divisor(int level_idx) const {
  return params_.core_freq_ghz / level(level_idx).freq_ghz;
}

double PowerModel::dynamic_energy(const RouterActivity& a,
                                  int level_idx) const {
  const double v = level(level_idx).voltage / params_.v_nom;
  const double scale = v * v;
  const double pj =
      static_cast<double>(a.buffer_writes) * params_.e_buffer_write +
      static_cast<double>(a.buffer_reads) * params_.e_buffer_read +
      static_cast<double>(a.vc_allocs) * params_.e_vc_alloc +
      static_cast<double>(a.sw_arbs) * params_.e_sw_arb +
      static_cast<double>(a.xbar_traversals) * params_.e_xbar +
      static_cast<double>(a.link_flits) * params_.e_link;
  return pj * scale;
}

double PowerModel::static_energy(int routers, int ports, int links,
                                 int active_vcs, int active_depth,
                                 int level_idx, double wall_ns) const {
  const double slots = static_cast<double>(routers) *
                       static_cast<double>(ports) *
                       static_cast<double>(active_vcs) *
                       static_cast<double>(active_depth);
  return static_energy_slots(routers, links, slots, level_idx, wall_ns);
}

double PowerModel::static_energy_slots(int routers, int links,
                                       double total_vc_slots, int level_idx,
                                       double wall_ns) const {
  const double v = level(level_idx).voltage / params_.v_nom;
  const double mw =
      v * (static_cast<double>(routers) * params_.p_static_router_base +
           total_vc_slots * params_.p_static_per_vc_slot +
           static_cast<double>(links) * params_.p_static_link);
  // mW * ns = pJ.
  return mw * wall_ns;
}

}  // namespace drlnoc::noc
