#include "noc/workload.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace drlnoc::noc {

SteadyWorkload::SteadyWorkload(std::unique_ptr<TrafficPattern> pattern,
                               std::unique_ptr<InjectionProcess> process,
                               double rate)
    : pattern_(std::move(pattern)), process_(std::move(process)),
      rate_(rate) {
  if (!pattern_ || !process_)
    throw std::invalid_argument("SteadyWorkload needs pattern and process");
  if (rate < 0.0 || rate > 1.0)
    throw std::invalid_argument("rate must be within [0, 1] packets/cycle");
}

SteadyWorkload SteadyWorkload::make(const Topology& topo,
                                    const std::string& pattern, double rate,
                                    const std::string& process) {
  return SteadyWorkload(make_pattern(pattern, topo),
                        make_injection(process, topo.num_nodes()), rate);
}

NodeId SteadyWorkload::generate(NodeId src, double /*core_time*/,
                                util::Rng& rng) {
  if (!process_->fire(src, rate_, rng)) return kInvalidNode;
  return pattern_->dest(src, rng);
}

std::string SteadyWorkload::name() const {
  return pattern_->name() + "@" + std::to_string(rate_);
}

PhasedWorkload::PhasedWorkload(const Topology& topo, std::vector<Phase> phases)
    : phases_(std::move(phases)) {
  if (phases_.empty())
    throw std::invalid_argument("PhasedWorkload needs >= 1 phase");
  for (const Phase& ph : phases_) {
    if (ph.duration_core_cycles <= 0.0)
      throw std::invalid_argument("phase duration must be positive");
    Compiled c;
    c.pattern = make_pattern(ph.pattern, topo);
    c.process = make_injection(ph.process, topo.num_nodes());
    compiled_.push_back(std::move(c));
    total_duration_ += ph.duration_core_cycles;
  }
}

std::size_t PhasedWorkload::phase_index(double core_time) const {
  double t = std::fmod(core_time + offset_, total_duration_);
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (t < phases_[i].duration_core_cycles) return i;
    t -= phases_[i].duration_core_cycles;
  }
  return phases_.size() - 1;
}

int PhasedWorkload::packet_length(double core_time) const {
  return phases_[phase_index(core_time)].flits_per_packet;
}

NodeId PhasedWorkload::generate(NodeId src, double core_time,
                                util::Rng& rng) {
  const std::size_t idx = phase_index(core_time);
  const Phase& ph = phases_[idx];
  Compiled& c = compiled_[idx];
  if (!c.process->fire(src, ph.rate, rng)) return kInvalidNode;
  return c.pattern->dest(src, rng);
}

std::vector<Phase> PhasedWorkload::standard_phases(const Topology& topo,
                                                   double scale) {
  const auto* mesh = dynamic_cast<const Mesh2D*>(&topo);
  const bool square = mesh && mesh->width() == mesh->height();
  const std::string third = square ? "transpose" : "uniform";
  // Rates are chosen so the burst phase transiently oversubscribes the
  // hotspots (on-state rate is 5x the mean) but stays drainable on average:
  // the controller is rewarded for riding bursts, not doomed by them.
  return {
      {"uniform", 0.005 * scale, 6e3, "bernoulli"},   // near-idle trickle
      {"uniform", 0.08 * scale, 6e3, "bernoulli"},    // moderate phase
      {"hotspot", 0.05 * scale, 6e3, "burst"},        // bursty hotspot phase
      {third, 0.06 * scale, 6e3, "bernoulli"},        // structured moderate
  };
}

}  // namespace drlnoc::noc
