#include "noc/router.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "noc/faults.h"
#include "obs/flight_recorder.h"

namespace drlnoc::noc {

RouterActivity& RouterActivity::operator+=(const RouterActivity& o) {
  buffer_writes += o.buffer_writes;
  buffer_reads += o.buffer_reads;
  vc_allocs += o.vc_allocs;
  sw_arbs += o.sw_arbs;
  xbar_traversals += o.xbar_traversals;
  link_flits += o.link_flits;
  return *this;
}

Router::Router(NodeId id, RouterParams params, const RoutingAlgorithm& routing)
    : id_(id), params_(params), routing_(&routing),
      ports_(static_cast<std::size_t>(params.num_ports)),
      inputs_(static_cast<std::size_t>(params.num_ports * params.max_vcs)),
      outputs_(static_cast<std::size_t>(params.num_ports * params.max_vcs)),
      out_active_vcs_(static_cast<std::size_t>(params.num_ports),
                      params.active_vcs),
      va_rr_(static_cast<std::size_t>(params.num_ports * params.max_vcs), 0),
      sa_in_rr_(static_cast<std::size_t>(params.num_ports), 0),
      sa_out_rr_(static_cast<std::size_t>(params.num_ports), 0),
      va_head_(static_cast<std::size_t>(params.num_ports * params.max_vcs),
               -1),
      va_next_(static_cast<std::size_t>(params.num_ports * params.max_vcs),
               -1),
      vc_meta_(static_cast<std::size_t>(params.num_ports * params.max_vcs)) {
  // Hard limits of the compact pipeline state: VcMeta packs ports/VCs/depth
  // into int8 and SA stage 2 tracks output ports in a 32-bit mask. Checked
  // unconditionally — exceeding them in a Release build would silently
  // corrupt arbitration.
  if (params.num_ports > 32 || params.max_vcs > 127 ||
      params.max_depth > 127) {
    throw std::invalid_argument(
        "Router: num_ports must be <= 32 and max_vcs/max_depth <= 127");
  }
  const auto num_inputs =
      static_cast<std::size_t>(params.num_ports * params.max_vcs);
  va_touched_.reserve(num_inputs);
  route_ready_.reserve(num_inputs);
  va_list_.reserve(num_inputs);
  sa_winners_.reserve(static_cast<std::size_t>(params.num_ports));
  port_active_.assign(static_cast<std::size_t>(params.num_ports), 0);
  assert(params.max_vcs % params.vc_classes == 0);
  assert(params.active_vcs >= 1 && params.active_vcs <= params.max_vcs);
  assert(params.active_depth >= 1 && params.active_depth <= params.max_depth);
  for (auto& in : inputs_) {
    in.advertised = params_.active_depth;
    in.fifo.reserve(static_cast<std::size_t>(params_.max_depth));
    // Adaptive algorithms return at most 3 candidates; pre-sizing keeps
    // even a VC's first-ever route_compute allocation-free.
    in.candidates.reserve(4);
  }
  vcs_per_class_ = params_.max_vcs / params_.vc_classes;
  adm_begin_.resize(
      static_cast<std::size_t>(params_.num_ports * params_.vc_classes));
  adm_end_.resize(
      static_cast<std::size_t>(params_.num_ports * params_.vc_classes));
  refresh_admissible_cache();
}

void Router::refresh_admissible_cache() {
  for (int p = 0; p < params_.num_ports; ++p) {
    for (int c = 0; c < params_.vc_classes; ++c) {
      const auto [begin, end] =
          admissible_range(static_cast<std::uint8_t>(c), p);
      adm_begin_[static_cast<std::size_t>(adm_index(p, c))] = begin;
      adm_end_[static_cast<std::size_t>(adm_index(p, c))] = end;
    }
  }
}

void Router::connect(PortId port, FlitChannel* in_flits,
                     CreditChannel* out_credits, FlitChannel* out_flits,
                     CreditChannel* in_credits) {
  auto& w = ports_[static_cast<std::size_t>(port)];
  w.in_flits = in_flits;
  w.out_credits = out_credits;
  w.out_flits = out_flits;
  w.in_credits = in_credits;
}

void Router::init_output_credits(PortId port, int credits_per_vc) {
  assert(credits_per_vc >= 0 && credits_per_vc <= params_.max_depth);
  for (int v = 0; v < params_.max_vcs; ++v) {
    ovc(port, v).credits = credits_per_vc;
  }
}

void Router::set_output_active_vcs(PortId port, int vcs) {
  assert(vcs >= 1 && vcs <= params_.max_vcs);
  out_active_vcs_[static_cast<std::size_t>(port)] = vcs;
  refresh_admissible_cache();
}

int Router::output_active_vcs(PortId port) const {
  return out_active_vcs_[static_cast<std::size_t>(port)];
}

std::pair<VcId, VcId> Router::admissible_range(std::uint8_t vc_class,
                                               PortId out_port) const {
  const int active = out_active_vcs_[static_cast<std::size_t>(out_port)];
  const int per_class_phys = params_.max_vcs / params_.vc_classes;
  const int per_class_active = std::max(1, active / params_.vc_classes);
  const VcId begin = static_cast<VcId>(vc_class) * per_class_phys;
  const VcId end = begin + std::min(per_class_active, per_class_phys);
  return {begin, end};
}

void Router::step(Cycle cycle) {
  receive_phase(cycle);
  route_compute();
  vc_allocate(cycle);
  switch_allocate_and_traverse(cycle);
}

void Router::receive_phase(Cycle cycle) {
  for (int p = 0; p < params_.num_ports; ++p) {
    auto& w = ports_[static_cast<std::size_t>(p)];
    if (w.in_flits) {
      while (w.in_flits->ready(cycle)) {
        const VcId vc = w.in_flits->peek(cycle).vc;
        assert(vc >= 0 && vc < params_.max_vcs);
        InputVc& in = ivc(p, vc);
        assert(static_cast<int>(in.fifo.size()) < params_.max_depth &&
               "credit protocol violated: input buffer overflow");
        // Single copy: channel slot straight into the input FIFO slot.
        w.in_flits->receive_into(in.fifo.push_back_slot(), cycle);
        const int idx = p * params_.max_vcs + vc;
        VcMeta& meta = vc_meta_[static_cast<std::size_t>(idx)];
        ++meta.occ;
        // A flit landing in an empty idle VC is a freshly routable head
        // (an idle VC with older flits was listed when its tail departed).
        if (meta.state == VcState::kIdle && meta.occ == 1) {
          route_ready_.push_back(static_cast<std::int16_t>(idx));
        }
        ++buffered_total_;
        ++activity_.buffer_writes;
      }
    }
    if (w.in_credits) {
      while (w.in_credits->ready(cycle)) {
        const Credit c = w.in_credits->receive(cycle);
        OutputVc& out = ovc(p, c.vc);
        ++out.credits;
        assert(out.credits <= params_.max_depth &&
               "credit protocol violated: credit overflow");
      }
    }
  }
}

void Router::route_compute() {
  // Event-driven: route_ready_ lists exactly the idle VCs whose head-of-line
  // flit is an unrouted packet head (filled by receive_phase and tail
  // departures). Routing-call order across VCs has no shared state, so the
  // event order is as good as the old ascending scan.
  for (const std::int16_t idx : route_ready_) {
    VcMeta& meta = vc_meta_[static_cast<std::size_t>(idx)];
    assert(meta.state == VcState::kIdle && meta.occ > 0);
    InputVc& in = inputs_[static_cast<std::size_t>(idx)];
    const Flit& head = in.fifo.front();
    assert(is_head(head.type) &&
           "input VC idle but head-of-line flit is not a packet head");
    in.candidates.clear();
    routing_->route(head, id_, idx / params_.max_vcs, in.candidates);
    assert(!in.candidates.empty());
    meta.state = VcState::kVcAlloc;
    va_list_.push_back(idx);
  }
  route_ready_.clear();
}

void Router::vc_allocate(Cycle cycle) {
  // Stage 1: each waiting input VC nominates its single preferred
  // (out_port, out_vc): among route candidates, the free admissible VC with
  // the most downstream credits (adaptive routing's congestion signal).
  // Requests are bucketed per output VC slot in the persistent
  // va_head_/va_next_ intrusive lists — no per-cycle heap traffic. Only the
  // slots touched this cycle (va_touched_) are visited and reset, so a
  // cycle with no waiting packets costs one counter check.
  if (va_list_.empty()) return;
  const int num_inputs = params_.num_ports * params_.max_vcs;
  va_touched_.clear();

  for (const std::int16_t idx : va_list_) {
    assert(vc_meta_[static_cast<std::size_t>(idx)].state ==
           VcState::kVcAlloc);
    const InputVc& in = inputs_[static_cast<std::size_t>(idx)];
    int best_slot = -1;
    int best_credits = -1;
    for (const RouteChoice& cand : in.candidates) {
      const auto adm =
          static_cast<std::size_t>(adm_index(cand.port, cand.vc_class));
      const VcId begin = adm_begin_[adm];
      const VcId end = adm_end_[adm];
      for (VcId ov = begin; ov < end; ++ov) {
        const OutputVc& out = ovc(cand.port, ov);
        if (out.busy) continue;
        if (out.credits > best_credits) {
          best_credits = out.credits;
          best_slot = cand.port * params_.max_vcs + ov;
        }
      }
      // Deterministic algorithms have one candidate; adaptive ones are
      // compared purely on credits, so keep scanning all candidates.
    }
    if (best_slot >= 0) {
      if (va_head_[static_cast<std::size_t>(best_slot)] < 0) {
        va_touched_.push_back(best_slot);
      }
      va_next_[static_cast<std::size_t>(idx)] =
          va_head_[static_cast<std::size_t>(best_slot)];
      va_head_[static_cast<std::size_t>(best_slot)] = idx;
    }
  }

  // Stage 2: round-robin grant per output VC. The winner is the requester
  // with the minimum cyclic distance from the round-robin pointer; input
  // slot indices are unique, so list order is immaterial — and so is the
  // slot visit order, because each input requests exactly one slot and the
  // grants touch disjoint state.
  for (const int touched : va_touched_) {
    const auto slot = static_cast<std::size_t>(touched);
    int req = va_head_[slot];
    assert(req >= 0);
    OutputVc& out = outputs_[slot];
    assert(!out.busy);
    int& rr = va_rr_[slot];
    int winner = -1;
    int best_distance = num_inputs + 1;
    for (; req >= 0; req = va_next_[static_cast<std::size_t>(req)]) {
      int dist = req - rr;  // cyclic distance without the integer divide
      if (dist < 0) dist += num_inputs;
      if (dist < best_distance) {
        best_distance = dist;
        winner = req;
      }
    }
    VcMeta& wmeta = vc_meta_[static_cast<std::size_t>(winner)];
    wmeta.out_port = static_cast<std::int8_t>(touched / params_.max_vcs);
    wmeta.out_vc = static_cast<std::int8_t>(touched % params_.max_vcs);
    wmeta.state = VcState::kActive;
    for (std::size_t i = 0; i < va_list_.size(); ++i) {  // tiny list
      if (va_list_[i] == winner) {
        va_list_[i] = va_list_.back();
        va_list_.pop_back();
        break;
      }
    }
    ++port_active_[static_cast<std::size_t>(winner / params_.max_vcs)];
    ++sa_active_;
    out.busy = true;
    rr = winner + 1 == num_inputs ? 0 : winner + 1;
    ++activity_.vc_allocs;
    if (recorder_ != nullptr) {
      const Flit& head =
          inputs_[static_cast<std::size_t>(winner)].fifo.front();
      if (recorder_->sampled(head.packet_id)) {
        recorder_->record(obs::EventKind::kPacketVcAlloc,
                          static_cast<double>(cycle), cycle, head.packet_id,
                          id_, wmeta.out_port, wmeta.out_vc);
      }
    }
    va_head_[slot] = -1;  // reset for the next cycle
  }
}

void Router::switch_allocate_and_traverse(Cycle cycle) {
  // Stage 1: per input port, round-robin across its ACTIVE VCs that have a
  // flit and a downstream credit. Ports with no active VC (port_active_)
  // are skipped outright; winners land in the small sa_winners_ scratch.
  if (sa_active_ == 0) return;  // no packet owns an output VC
  sa_winners_.clear();
  std::uint32_t op_mask = 0;
  for (int p = 0; p < params_.num_ports; ++p) {
    if (port_active_[static_cast<std::size_t>(p)] == 0) continue;
    const int rr = sa_in_rr_[static_cast<std::size_t>(p)];
    const int base = p * params_.max_vcs;
    for (int k = 0; k < params_.max_vcs; ++k) {
      int v = rr + k;
      if (v >= params_.max_vcs) v -= params_.max_vcs;
      const VcMeta& meta = vc_meta_[static_cast<std::size_t>(base + v)];
      if (meta.state != VcState::kActive || meta.occ == 0) continue;
      const OutputVc& out = ovc(meta.out_port, meta.out_vc);
      if (out.credits <= 0) continue;
      sa_winners_.push_back(SaWinner{static_cast<std::int8_t>(p),
                                     static_cast<std::int8_t>(v),
                                     meta.out_port});
      op_mask |= 1u << meta.out_port;
      ++activity_.sw_arbs;
      break;
    }
  }

  // Stage 2: per output port with winners (ascending, via the bit mask),
  // round-robin across the requesting input ports; one flit per output per
  // cycle, then switch + link traversal. Each input port targets exactly
  // one output port, so the minimum-cyclic-distance winner over the
  // stage-1 winner list reproduces the old full bucketed scan.
  while (op_mask != 0) {
    const int op = std::countr_zero(op_mask);
    op_mask &= op_mask - 1;
    int& rr = sa_out_rr_[static_cast<std::size_t>(op)];
    int grant_port = -1;
    int grant_vc = -1;
    int best_distance = params_.num_ports + 1;
    for (const SaWinner& w : sa_winners_) {
      if (w.out_port != op) continue;
      int dist = w.in_port - rr;
      if (dist < 0) dist += params_.num_ports;
      if (dist < best_distance) {
        best_distance = dist;
        grant_port = w.in_port;
        grant_vc = w.in_vc;
      }
    }
    assert(grant_port >= 0);
    rr = grant_port + 1 == params_.num_ports ? 0 : grant_port + 1;
    // Advance the granted input port's VC round-robin so one persistently
    // busy VC cannot starve its siblings across back-to-back packets.
    sa_in_rr_[static_cast<std::size_t>(grant_port)] =
        grant_vc + 1 == params_.max_vcs ? 0 : grant_vc + 1;

    const auto grant_idx =
        static_cast<std::size_t>(grant_port * params_.max_vcs + grant_vc);
    InputVc& in = inputs_[grant_idx];
    VcMeta& gmeta = vc_meta_[grant_idx];
    const VcId out_vc = gmeta.out_vc;
    OutputVc& out = ovc(op, out_vc);
    // Update the flit in its FIFO slot and copy it once, straight into the
    // output channel slot.
    Flit& flit = in.fifo.front();
    flit.vc = out_vc;
    // The VC class of the link actually taken; consumed by the next router's
    // routing function for dateline bookkeeping.
    flit.vc_class = static_cast<std::uint8_t>(out_vc / vcs_per_class_);
    ++flit.hops;
    // Link-fault hook: inter-router traversals may corrupt the flit (dead
    // link, or transient at link_fault_rate). The flit keeps flowing so
    // credits and quiescence counters stay exact; the destination NIC
    // discards the corrupted packet end to end.
    if (fault_model_ != nullptr && op != kLocalPort && !flit.corrupted &&
        fault_model_->corrupt_on_link(id_, op, flit, cycle)) {
      flit.corrupted = true;
    }
    // Trace hook: one hop event per packet per link (head flits only),
    // ejections are traced at the NIC harvest instead of kLocalPort here.
    if (recorder_ != nullptr && op != kLocalPort && is_head(flit.type) &&
        recorder_->sampled(flit.packet_id)) {
      recorder_->record(obs::EventKind::kPacketHop,
                        static_cast<double>(cycle), cycle, flit.packet_id,
                        id_, op, static_cast<std::int32_t>(flit.hops));
    }
    const bool tail = is_tail(flit.type);
    ++activity_.buffer_reads;
    ++activity_.xbar_traversals;

    --out.credits;
    assert(out.credits >= 0);
    auto& w = ports_[static_cast<std::size_t>(op)];
    assert(w.out_flits && "port with traffic must be wired");
    // Extra pipeline stages delay link entry; the channel keeps FIFO order
    // because every flit gets the same extra delay.
    w.out_flits->send_from(
        flit, cycle + static_cast<Cycle>(params_.pipeline_stages - 1));
    in.fifo.pop_front();
    --gmeta.occ;
    --buffered_total_;
    ++activity_.link_flits;

    release_slot(grant_port, grant_vc, cycle);

    if (tail) {
      out.busy = false;
      gmeta.state = VcState::kIdle;
      --sa_active_;
      --port_active_[static_cast<std::size_t>(grant_port)];
      gmeta.out_port = -1;
      gmeta.out_vc = -1;
      in.candidates.clear();
      // Flits already queued behind the departed tail start the next
      // packet: its head becomes routable next cycle.
      if (gmeta.occ > 0) {
        route_ready_.push_back(static_cast<std::int16_t>(grant_idx));
      }
    }
  }
}

void Router::release_slot(PortId port, VcId vc, Cycle cycle) {
  InputVc& in = ivc(port, vc);
  if (in.advertised > params_.active_depth) {
    // Shrinking: withhold this credit; advertised capacity drops by one.
    --in.advertised;
    return;
  }
  auto& w = ports_[static_cast<std::size_t>(port)];
  if (w.out_credits) w.out_credits->send(Credit{vc}, cycle);
}

void Router::set_active_vcs(int vcs, Cycle /*now*/) {
  assert(vcs >= 1 && vcs <= params_.max_vcs);
  params_.active_vcs = vcs;
  // Default assumption: a homogeneous network. Network overrides the
  // per-port downstream gating right after when configs are heterogeneous.
  std::fill(out_active_vcs_.begin(), out_active_vcs_.end(), vcs);
  refresh_admissible_cache();
}

void Router::set_active_depth(int depth, Cycle now) {
  assert(depth >= 1 && depth <= params_.max_depth);
  params_.active_depth = depth;
  for (int p = 0; p < params_.num_ports; ++p) {
    auto& w = ports_[static_cast<std::size_t>(p)];
    for (int v = 0; v < params_.max_vcs; ++v) {
      InputVc& in = ivc(p, v);
      // Growth: grant bonus credits immediately. Shrink happens lazily via
      // credit withholding in release_slot().
      while (in.advertised < depth) {
        ++in.advertised;
        if (w.out_credits) w.out_credits->send(Credit{v}, now);
      }
    }
  }
}

int Router::max_vc_occupancy() const {
  int best = 0;
  for (const auto& in : inputs_)
    best = std::max(best, static_cast<int>(in.fifo.size()));
  return best;
}

int Router::advertised_capacity(PortId port, VcId vc) const {
  return ivc(port, vc).advertised;
}

int Router::output_credits(PortId port, VcId vc) const {
  return outputs_[static_cast<std::size_t>(port * params_.max_vcs + vc)]
      .credits;
}

int Router::input_occupancy(PortId port, VcId vc) const {
  return static_cast<int>(ivc(port, vc).fifo.size());
}

}  // namespace drlnoc::noc
