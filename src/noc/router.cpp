#include "noc/router.h"

#include <algorithm>
#include <cassert>

namespace drlnoc::noc {

RouterActivity& RouterActivity::operator+=(const RouterActivity& o) {
  buffer_writes += o.buffer_writes;
  buffer_reads += o.buffer_reads;
  vc_allocs += o.vc_allocs;
  sw_arbs += o.sw_arbs;
  xbar_traversals += o.xbar_traversals;
  link_flits += o.link_flits;
  return *this;
}

Router::Router(NodeId id, RouterParams params, const RoutingAlgorithm& routing)
    : id_(id), params_(params), routing_(routing),
      ports_(static_cast<std::size_t>(params.num_ports)),
      inputs_(static_cast<std::size_t>(params.num_ports * params.max_vcs)),
      outputs_(static_cast<std::size_t>(params.num_ports * params.max_vcs)),
      out_active_vcs_(static_cast<std::size_t>(params.num_ports),
                      params.active_vcs),
      va_rr_(static_cast<std::size_t>(params.num_ports * params.max_vcs), 0),
      sa_in_rr_(static_cast<std::size_t>(params.num_ports), 0),
      sa_out_rr_(static_cast<std::size_t>(params.num_ports), 0) {
  assert(params.max_vcs % params.vc_classes == 0);
  assert(params.active_vcs >= 1 && params.active_vcs <= params.max_vcs);
  assert(params.active_depth >= 1 && params.active_depth <= params.max_depth);
  for (auto& in : inputs_) in.advertised = params_.active_depth;
}

void Router::connect(PortId port, FlitChannel* in_flits,
                     CreditChannel* out_credits, FlitChannel* out_flits,
                     CreditChannel* in_credits) {
  auto& w = ports_[static_cast<std::size_t>(port)];
  w.in_flits = in_flits;
  w.out_credits = out_credits;
  w.out_flits = out_flits;
  w.in_credits = in_credits;
}

void Router::init_output_credits(PortId port, int credits_per_vc) {
  assert(credits_per_vc >= 0 && credits_per_vc <= params_.max_depth);
  for (int v = 0; v < params_.max_vcs; ++v) {
    ovc(port, v).credits = credits_per_vc;
  }
}

void Router::set_output_active_vcs(PortId port, int vcs) {
  assert(vcs >= 1 && vcs <= params_.max_vcs);
  out_active_vcs_[static_cast<std::size_t>(port)] = vcs;
}

int Router::output_active_vcs(PortId port) const {
  return out_active_vcs_[static_cast<std::size_t>(port)];
}

std::pair<VcId, VcId> Router::admissible_range(std::uint8_t vc_class,
                                               PortId out_port) const {
  const int active = out_active_vcs_[static_cast<std::size_t>(out_port)];
  const int per_class_phys = params_.max_vcs / params_.vc_classes;
  const int per_class_active = std::max(1, active / params_.vc_classes);
  const VcId begin = static_cast<VcId>(vc_class) * per_class_phys;
  const VcId end = begin + std::min(per_class_active, per_class_phys);
  return {begin, end};
}

void Router::step(Cycle cycle) {
  receive_phase(cycle);
  route_compute();
  vc_allocate();
  switch_allocate_and_traverse(cycle);
}

void Router::receive_phase(Cycle cycle) {
  for (int p = 0; p < params_.num_ports; ++p) {
    auto& w = ports_[static_cast<std::size_t>(p)];
    if (w.in_flits) {
      while (w.in_flits->ready(cycle)) {
        Flit flit = w.in_flits->receive(cycle);
        assert(flit.vc >= 0 && flit.vc < params_.max_vcs);
        InputVc& in = ivc(p, flit.vc);
        assert(static_cast<int>(in.fifo.size()) < params_.max_depth &&
               "credit protocol violated: input buffer overflow");
        in.fifo.push_back(flit);
        ++activity_.buffer_writes;
      }
    }
    if (w.in_credits) {
      while (w.in_credits->ready(cycle)) {
        const Credit c = w.in_credits->receive(cycle);
        OutputVc& out = ovc(p, c.vc);
        ++out.credits;
        assert(out.credits <= params_.max_depth &&
               "credit protocol violated: credit overflow");
      }
    }
  }
}

void Router::route_compute() {
  for (int p = 0; p < params_.num_ports; ++p) {
    for (int v = 0; v < params_.max_vcs; ++v) {
      InputVc& in = ivc(p, v);
      if (in.state != InputVc::State::kIdle || in.fifo.empty()) continue;
      const Flit& head = in.fifo.front();
      assert(is_head(head.type) &&
             "input VC idle but head-of-line flit is not a packet head");
      in.candidates.clear();
      routing_.route(head, id_, p, in.candidates);
      assert(!in.candidates.empty());
      in.state = InputVc::State::kVcAlloc;
    }
  }
}

void Router::vc_allocate() {
  // Stage 1: each waiting input VC nominates its single preferred
  // (out_port, out_vc): among route candidates, the free admissible VC with
  // the most downstream credits (adaptive routing's congestion signal).
  struct Request {
    PortId in_port;
    VcId in_vc;
  };
  // Requests bucketed per output VC slot.
  std::vector<std::vector<Request>> requests(outputs_.size());

  for (int p = 0; p < params_.num_ports; ++p) {
    for (int v = 0; v < params_.max_vcs; ++v) {
      InputVc& in = ivc(p, v);
      if (in.state != InputVc::State::kVcAlloc) continue;
      int best_slot = -1;
      int best_credits = -1;
      for (const RouteChoice& cand : in.candidates) {
        const auto [begin, end] = admissible_range(cand.vc_class, cand.port);
        for (VcId ov = begin; ov < end; ++ov) {
          const OutputVc& out = ovc(cand.port, ov);
          if (out.busy) continue;
          if (out.credits > best_credits) {
            best_credits = out.credits;
            best_slot = cand.port * params_.max_vcs + ov;
          }
        }
        // Deterministic algorithms have one candidate; adaptive ones are
        // compared purely on credits, so keep scanning all candidates.
      }
      if (best_slot >= 0) {
        requests[static_cast<std::size_t>(best_slot)].push_back(
            Request{p, v});
      }
    }
  }

  // Stage 2: round-robin grant per output VC.
  for (std::size_t slot = 0; slot < requests.size(); ++slot) {
    auto& reqs = requests[slot];
    if (reqs.empty()) continue;
    OutputVc& out = outputs_[slot];
    assert(!out.busy);
    int& rr = va_rr_[slot];
    // Pick the first requester at or after the round-robin pointer, keyed by
    // input slot index.
    const int num_inputs = params_.num_ports * params_.max_vcs;
    const Request* winner = nullptr;
    int best_distance = num_inputs + 1;
    for (const Request& r : reqs) {
      const int idx = r.in_port * params_.max_vcs + r.in_vc;
      const int dist = (idx - rr + num_inputs) % num_inputs;
      if (dist < best_distance) {
        best_distance = dist;
        winner = &r;
      }
    }
    InputVc& in = ivc(winner->in_port, winner->in_vc);
    in.out_port = static_cast<PortId>(slot) / params_.max_vcs;
    in.out_vc = static_cast<VcId>(slot) % params_.max_vcs;
    in.state = InputVc::State::kActive;
    out.busy = true;
    rr = (winner->in_port * params_.max_vcs + winner->in_vc + 1) % num_inputs;
    ++activity_.vc_allocs;
  }
}

void Router::switch_allocate_and_traverse(Cycle cycle) {
  // Stage 1: per input port, round-robin across its ACTIVE VCs that have a
  // flit and a downstream credit.
  struct Winner {
    PortId in_port;
    VcId in_vc;
  };
  std::vector<std::vector<Winner>> per_output(
      static_cast<std::size_t>(params_.num_ports));

  for (int p = 0; p < params_.num_ports; ++p) {
    const int rr = sa_in_rr_[static_cast<std::size_t>(p)];
    int chosen = -1;
    for (int k = 0; k < params_.max_vcs; ++k) {
      const int v = (rr + k) % params_.max_vcs;
      InputVc& in = ivc(p, v);
      if (in.state != InputVc::State::kActive || in.fifo.empty()) continue;
      OutputVc& out = ovc(in.out_port, in.out_vc);
      if (out.credits <= 0) continue;
      chosen = v;
      break;
    }
    if (chosen >= 0) {
      ++activity_.sw_arbs;
      const InputVc& in = ivc(p, chosen);
      per_output[static_cast<std::size_t>(in.out_port)].push_back(
          Winner{p, chosen});
    }
  }

  // Stage 2: per output port, round-robin across input ports; one flit per
  // output per cycle, then switch + link traversal.
  for (int op = 0; op < params_.num_ports; ++op) {
    auto& winners = per_output[static_cast<std::size_t>(op)];
    if (winners.empty()) continue;
    int& rr = sa_out_rr_[static_cast<std::size_t>(op)];
    const Winner* grant = nullptr;
    int best_distance = params_.num_ports + 1;
    for (const Winner& w : winners) {
      const int dist = (w.in_port - rr + params_.num_ports) % params_.num_ports;
      if (dist < best_distance) {
        best_distance = dist;
        grant = &w;
      }
    }
    rr = (grant->in_port + 1) % params_.num_ports;
    // Advance the granted input port's VC round-robin so one persistently
    // busy VC cannot starve its siblings across back-to-back packets.
    sa_in_rr_[static_cast<std::size_t>(grant->in_port)] =
        (grant->in_vc + 1) % params_.max_vcs;

    InputVc& in = ivc(grant->in_port, grant->in_vc);
    OutputVc& out = ovc(op, in.out_vc);
    Flit flit = in.fifo.front();
    in.fifo.pop_front();
    ++activity_.buffer_reads;
    ++activity_.xbar_traversals;

    flit.vc = in.out_vc;
    // The VC class of the link actually taken; consumed by the next router's
    // routing function for dateline bookkeeping.
    flit.vc_class = static_cast<std::uint8_t>(
        in.out_vc / (params_.max_vcs / params_.vc_classes));
    ++flit.hops;

    --out.credits;
    assert(out.credits >= 0);
    auto& w = ports_[static_cast<std::size_t>(op)];
    assert(w.out_flits && "port with traffic must be wired");
    // Extra pipeline stages delay link entry; the channel keeps FIFO order
    // because every flit gets the same extra delay.
    w.out_flits->send(flit,
                      cycle + static_cast<Cycle>(params_.pipeline_stages - 1));
    ++activity_.link_flits;

    release_slot(grant->in_port, grant->in_vc, cycle);

    if (is_tail(flit.type)) {
      out.busy = false;
      in.state = InputVc::State::kIdle;
      in.out_port = -1;
      in.out_vc = kInvalidVc;
      in.candidates.clear();
    }
  }
}

void Router::release_slot(PortId port, VcId vc, Cycle cycle) {
  InputVc& in = ivc(port, vc);
  if (in.advertised > params_.active_depth) {
    // Shrinking: withhold this credit; advertised capacity drops by one.
    --in.advertised;
    return;
  }
  auto& w = ports_[static_cast<std::size_t>(port)];
  if (w.out_credits) w.out_credits->send(Credit{vc}, cycle);
}

void Router::set_active_vcs(int vcs, Cycle /*now*/) {
  assert(vcs >= 1 && vcs <= params_.max_vcs);
  params_.active_vcs = vcs;
  // Default assumption: a homogeneous network. Network overrides the
  // per-port downstream gating right after when configs are heterogeneous.
  std::fill(out_active_vcs_.begin(), out_active_vcs_.end(), vcs);
}

void Router::set_active_depth(int depth, Cycle now) {
  assert(depth >= 1 && depth <= params_.max_depth);
  params_.active_depth = depth;
  for (int p = 0; p < params_.num_ports; ++p) {
    auto& w = ports_[static_cast<std::size_t>(p)];
    for (int v = 0; v < params_.max_vcs; ++v) {
      InputVc& in = ivc(p, v);
      // Growth: grant bonus credits immediately. Shrink happens lazily via
      // credit withholding in release_slot().
      while (in.advertised < depth) {
        ++in.advertised;
        if (w.out_credits) w.out_credits->send(Credit{v}, now);
      }
    }
  }
}

int Router::buffered_flits() const {
  int total = 0;
  for (const auto& in : inputs_) total += static_cast<int>(in.fifo.size());
  return total;
}

int Router::max_vc_occupancy() const {
  int best = 0;
  for (const auto& in : inputs_)
    best = std::max(best, static_cast<int>(in.fifo.size()));
  return best;
}

int Router::advertised_capacity(PortId port, VcId vc) const {
  return ivc(port, vc).advertised;
}

int Router::output_credits(PortId port, VcId vc) const {
  return outputs_[static_cast<std::size_t>(port * params_.max_vcs + vc)]
      .credits;
}

int Router::input_occupancy(PortId port, VcId vc) const {
  return static_cast<int>(ivc(port, vc).fifo.size());
}

}  // namespace drlnoc::noc
