// Workloads: traffic injectors combining a spatial pattern, a temporal
// injection process and a rate. SteadyWorkload drives the classic
// load-latency methodology; PhasedWorkload emulates the phase behaviour of
// real applications with synthetic patterns. For actual application-level
// traffic — recorded runs, DNN layer pipelines, MPI-style collectives,
// dependency-aware task-graph replay — see the trace subsystem
// (trace/trace_workload.h, trace/recorder.h, trace/generators.h).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "noc/network.h"
#include "noc/traffic.h"

namespace drlnoc::noc {

/// Fixed pattern + rate for the whole run.
class SteadyWorkload : public TrafficInjector {
 public:
  SteadyWorkload(std::unique_ptr<TrafficPattern> pattern,
                 std::unique_ptr<InjectionProcess> process, double rate);

  /// Convenience: pattern/process by name for a topology.
  static SteadyWorkload make(const Topology& topo, const std::string& pattern,
                             double rate,
                             const std::string& process = "bernoulli");

  NodeId generate(NodeId src, double core_time, util::Rng& rng) override;
  std::string name() const override;

  void set_rate(double rate) { rate_ = rate; }
  double rate() const { return rate_; }

 private:
  std::unique_ptr<TrafficPattern> pattern_;
  std::unique_ptr<InjectionProcess> process_;
  double rate_;
};

/// One segment of a phased workload.
struct Phase {
  std::string pattern = "uniform";
  double rate = 0.05;                 ///< packets/node/core-cycle
  double duration_core_cycles = 1e4;
  std::string process = "bernoulli";
  /// Packet length in flits for this phase; 0 = the network default.
  /// Lets traces mix short control packets with long data packets.
  int flits_per_packet = 0;
};

/// A sequence of phases played back over core time; loops when it reaches
/// the end (so RL episodes of any length are well-defined).
class PhasedWorkload : public TrafficInjector {
 public:
  PhasedWorkload(const Topology& topo, std::vector<Phase> phases);

  NodeId generate(NodeId src, double core_time, util::Rng& rng) override;
  int packet_length(double core_time) const override;
  std::string name() const override { return "phased"; }

  /// Shifts the playback position: phase lookups use core_time + offset.
  /// Used to start training episodes at random points of the workload so
  /// every phase is seen at every episode position.
  void set_start_offset(double offset) { offset_ = offset; }
  double start_offset() const { return offset_; }

  /// Index of the phase active at the given core time (offset applied).
  std::size_t phase_index(double core_time) const;
  const std::vector<Phase>& phases() const { return phases_; }
  double total_duration() const { return total_duration_; }

  /// The canonical 4-phase workload used throughout the experiments:
  /// idle trickle -> moderate uniform -> hotspot burst -> moderate transpose
  /// (transpose only on square meshes; falls back to uniform otherwise).
  static std::vector<Phase> standard_phases(const Topology& topo,
                                            double scale = 1.0);

 private:
  struct Compiled {
    std::unique_ptr<TrafficPattern> pattern;
    std::unique_ptr<InjectionProcess> process;
  };
  std::vector<Phase> phases_;
  std::vector<Compiled> compiled_;
  double total_duration_ = 0.0;
  double offset_ = 0.0;
};

}  // namespace drlnoc::noc
