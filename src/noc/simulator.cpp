#include "noc/simulator.h"

#include "util/thread_pool.h"

namespace drlnoc::noc {

SteadyResult run_steady_state(Network& net, TrafficInjector& workload,
                              const SteadyRunParams& params) {
  SteadyResult result;

  // Warm-up: populate queues, do not measure.
  net.set_measuring(false);
  for (std::uint64_t i = 0; i < params.warmup_cycles; ++i) net.step(&workload);
  const std::uint64_t backlog_pre = net.drain_epoch_stats().source_queue_total;

  // Measurement: tag generated packets. Throughput counts deliveries inside
  // the window only (drain-phase deliveries would otherwise inflate it).
  const std::uint64_t recv_before = net.total_packets_received();
  const std::uint64_t offered_before = net.total_packets_offered();
  net.set_measuring(true);
  for (std::uint64_t i = 0; i < params.measure_cycles; ++i)
    net.step(&workload);
  const std::uint64_t recv_in_window =
      net.total_packets_received() - recv_before;
  const std::uint64_t offered_in_window =
      net.total_packets_offered() - offered_before;

  // Saturation heuristic: source backlog grew substantially across the
  // measured window (offered load beyond sustainable throughput).
  // Peek at the live counters before the drain phase perturbs them.
  std::uint64_t backlog_post = 0;
  for (int node = 0; node < net.num_nodes(); ++node)
    backlog_post += net.nic(node).source_queue_len();
  const double per_node_growth =
      (static_cast<double>(backlog_post) - static_cast<double>(backlog_pre)) /
      static_cast<double>(net.num_nodes());
  result.saturated = per_node_growth > 4.0;

  // Drain: stop generating, let measured packets retire so their latencies
  // are recorded. Under saturation the backlog itself must also clear, which
  // the drain limit caps.
  net.set_measuring(false);
  std::uint64_t extra = 0;
  while (!net.drained() && extra < params.drain_limit) {
    net.step(nullptr);
    ++extra;
  }
  result.drained = net.drained();

  result.stats = net.drain_epoch_stats();
  // The drain phase is excluded from rate computations: recompute rates over
  // the measurement window only.
  const double node_cycles =
      static_cast<double>(params.measure_cycles) *
      net.power().clock_divisor(net.config().dvfs_level) *
      static_cast<double>(net.num_nodes());
  if (node_cycles > 0.0) {
    result.stats.offered_rate =
        static_cast<double>(offered_in_window) / node_cycles;
    result.stats.accepted_rate =
        static_cast<double>(recv_in_window) / node_cycles;
  }
  return result;
}

SteadyResult measure_point(const NetworkParams& net_params,
                           const std::string& pattern, double rate,
                           const SteadyRunParams& run_params,
                           const FaultParams& faults) {
  Network net(net_params);
  if (faults.enabled()) net.set_fault_model(faults);
  SteadyWorkload workload =
      SteadyWorkload::make(net.topology(), pattern, rate);
  SteadyResult result = run_steady_state(net, workload, run_params);
  result.offered_rate = rate;
  return result;
}

std::vector<SteadyResult> measure_points(const std::vector<SweepPoint>& points,
                                         int jobs) {
  return util::parallel_map<SteadyResult>(
      static_cast<int>(points.size()), jobs, [&points](int i) {
        const SweepPoint& p = points[static_cast<std::size_t>(i)];
        return measure_point(p.net, p.pattern, p.rate, p.run, p.faults);
      });
}

}  // namespace drlnoc::noc
