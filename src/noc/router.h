// Input-queued virtual-channel router with credit-based flow control, in the
// BookSim microarchitectural tradition:
//
//   RC  -> head flits compute route candidates
//   VA  -> separable virtual-channel allocation (round-robin)
//   SA  -> two-stage separable switch allocation (round-robin)
//   ST  -> crossbar + link traversal into the output channel
//
// The router is *run-time reconfigurable* along the two axes the DRL
// controller drives:
//   * active VC count   — VA stops allocating gated VCs; in-flight packets
//                         drain, so no flit is ever dropped;
//   * active buffer depth — implemented exactly with credit withholding:
//                         the downstream input unit withholds credits to
//                         shrink advertised capacity, or grants bonus
//                         credits to grow it (see DESIGN.md §4).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "noc/channel.h"
#include "noc/routing.h"
#include "noc/topology.h"
#include "noc/types.h"

namespace drlnoc::noc {

/// Energy-event counters; consumed by the power model and reset per epoch.
struct RouterActivity {
  std::uint64_t buffer_writes = 0;
  std::uint64_t buffer_reads = 0;
  std::uint64_t vc_allocs = 0;
  std::uint64_t sw_arbs = 0;
  std::uint64_t xbar_traversals = 0;
  std::uint64_t link_flits = 0;

  void reset() { *this = RouterActivity{}; }
  RouterActivity& operator+=(const RouterActivity& o);
};

struct RouterParams {
  int num_ports = 5;
  int max_vcs = 4;       ///< physical VCs per port
  int max_depth = 8;     ///< physical buffer slots per VC
  int vc_classes = 1;    ///< 1 (mesh) or 2 (ring/torus dateline)
  int active_vcs = 4;    ///< initial configuration
  int active_depth = 8;  ///< initial configuration
  /// Router pipeline depth in cycles. 1 models an aggressive single-cycle
  /// router; larger values delay each flit's link entry by (stages - 1)
  /// cycles, modelling RC/VA/SA/ST as separate stages.
  int pipeline_stages = 1;
};

class Router {
 public:
  Router(NodeId id, RouterParams params, const RoutingAlgorithm& routing);

  /// Wires one port. `in_flits`/`out_credits` form the upstream link
  /// (flits arrive, credits go back); `out_flits`/`in_credits` form the
  /// downstream link. Any pointer may be shared with a NIC.
  void connect(PortId port, FlitChannel* in_flits, CreditChannel* out_credits,
               FlitChannel* out_flits, CreditChannel* in_credits);

  /// Sets the initial credit count of every VC of an output port to the
  /// capacity advertised by the downstream input unit. Called once by
  /// Network after wiring, before the first step().
  void init_output_credits(PortId port, int credits_per_vc);

  /// One router-clock cycle.
  void step(Cycle cycle);

  /// Reconfiguration (safe at any cycle; never drops flits).
  void set_active_vcs(int vcs, Cycle now);
  void set_active_depth(int depth, Cycle now);
  int active_vcs() const { return params_.active_vcs; }
  int active_depth() const { return params_.active_depth; }

  /// VC gating is a property of the *downstream* buffers: when per-router
  /// configurations differ, the VA stage must restrict allocations to the
  /// VCs the next-hop router keeps active. Network propagates this after
  /// every (re)configuration; defaults to this router's own active_vcs.
  void set_output_active_vcs(PortId port, int vcs);
  int output_active_vcs(PortId port) const;

  NodeId id() const { return id_; }
  const RouterParams& params() const { return params_; }

  // --- observability -------------------------------------------------------
  const RouterActivity& activity() const { return activity_; }
  void reset_activity() { activity_.reset(); }
  /// Total flits currently buffered in this router's input units.
  int buffered_flits() const;
  /// Occupancy of the fullest single input VC (congestion feature).
  int max_vc_occupancy() const;
  bool idle() const { return buffered_flits() == 0; }

  /// Test hook: downstream-advertised capacity of one input VC
  /// (must always equal upstream credits + credits in flight + occupancy).
  int advertised_capacity(PortId port, VcId vc) const;
  /// Test hook: credits this router currently holds for a downstream VC.
  int output_credits(PortId port, VcId vc) const;
  /// Test hook: occupancy of one input VC buffer.
  int input_occupancy(PortId port, VcId vc) const;

 private:
  struct InputVc {
    std::deque<Flit> fifo;
    enum class State : std::uint8_t { kIdle, kVcAlloc, kActive } state =
        State::kIdle;
    std::vector<RouteChoice> candidates;
    PortId out_port = -1;
    VcId out_vc = kInvalidVc;
    int advertised = 0;  ///< capacity advertised upstream (credit protocol)
  };

  struct OutputVc {
    int credits = 0;    ///< downstream slots this router may still consume
    bool busy = false;  ///< owned by an in-flight packet
  };

  struct PortWiring {
    FlitChannel* in_flits = nullptr;
    CreditChannel* out_credits = nullptr;
    FlitChannel* out_flits = nullptr;
    CreditChannel* in_credits = nullptr;
  };

  InputVc& ivc(PortId p, VcId v) {
    return inputs_[static_cast<std::size_t>(p * params_.max_vcs + v)];
  }
  const InputVc& ivc(PortId p, VcId v) const {
    return inputs_[static_cast<std::size_t>(p * params_.max_vcs + v)];
  }
  OutputVc& ovc(PortId p, VcId v) {
    return outputs_[static_cast<std::size_t>(p * params_.max_vcs + v)];
  }

  /// Admissible out-VC index range [begin, end) for a VC class, gated by
  /// the downstream router's active-VC configuration for `out_port`.
  std::pair<VcId, VcId> admissible_range(std::uint8_t vc_class,
                                         PortId out_port) const;

  void receive_phase(Cycle cycle);
  void route_compute();
  void vc_allocate();
  void switch_allocate_and_traverse(Cycle cycle);
  /// Frees one input slot: sends a credit upstream or withholds it when the
  /// advertised capacity must shrink toward the configured depth.
  void release_slot(PortId port, VcId vc, Cycle cycle);

  NodeId id_;
  RouterParams params_;
  const RoutingAlgorithm& routing_;
  std::vector<PortWiring> ports_;
  std::vector<InputVc> inputs_;
  std::vector<OutputVc> outputs_;
  std::vector<int> out_active_vcs_;  ///< per output port (downstream gating)
  // Round-robin pointers.
  std::vector<int> va_rr_;       // per output VC
  std::vector<int> sa_in_rr_;    // per input port
  std::vector<int> sa_out_rr_;   // per output port
  RouterActivity activity_;
};

}  // namespace drlnoc::noc
