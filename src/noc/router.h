// Input-queued virtual-channel router with credit-based flow control, in the
// BookSim microarchitectural tradition:
//
//   RC  -> head flits compute route candidates
//   VA  -> separable virtual-channel allocation (round-robin)
//   SA  -> two-stage separable switch allocation (round-robin)
//   ST  -> crossbar + link traversal into the output channel
//
// The router is *run-time reconfigurable* along the two axes the DRL
// controller drives:
//   * active VC count   — VA stops allocating gated VCs; in-flight packets
//                         drain, so no flit is ever dropped;
//   * active buffer depth — implemented exactly with credit withholding:
//                         the downstream input unit withholds credits to
//                         shrink advertised capacity, or grants bonus
//                         credits to grow it (see DESIGN.md §4).
#pragma once

#include <cstdint>
#include <vector>

#include "noc/channel.h"
#include "noc/routing.h"
#include "noc/topology.h"
#include "noc/types.h"
#include "util/ring_buffer.h"

namespace drlnoc::obs {
class FlightRecorder;
}  // namespace drlnoc::obs

namespace drlnoc::noc {

class FaultModel;

/// Energy-event counters; consumed by the power model and reset per epoch.
struct RouterActivity {
  std::uint64_t buffer_writes = 0;
  std::uint64_t buffer_reads = 0;
  std::uint64_t vc_allocs = 0;
  std::uint64_t sw_arbs = 0;
  std::uint64_t xbar_traversals = 0;
  std::uint64_t link_flits = 0;

  void reset() { *this = RouterActivity{}; }
  RouterActivity& operator+=(const RouterActivity& o);
};

struct RouterParams {
  int num_ports = 5;
  int max_vcs = 4;       ///< physical VCs per port
  int max_depth = 8;     ///< physical buffer slots per VC
  int vc_classes = 1;    ///< 1 (mesh) or 2 (ring/torus dateline)
  int active_vcs = 4;    ///< initial configuration
  int active_depth = 8;  ///< initial configuration
  /// Router pipeline depth in cycles. 1 models an aggressive single-cycle
  /// router; larger values delay each flit's link entry by (stages - 1)
  /// cycles, modelling RC/VA/SA/ST as separate stages.
  int pipeline_stages = 1;
};

class Router {
 public:
  Router(NodeId id, RouterParams params, const RoutingAlgorithm& routing);

  /// Wires one port. `in_flits`/`out_credits` form the upstream link
  /// (flits arrive, credits go back); `out_flits`/`in_credits` form the
  /// downstream link. Any pointer may be shared with a NIC.
  void connect(PortId port, FlitChannel* in_flits, CreditChannel* out_credits,
               FlitChannel* out_flits, CreditChannel* in_credits);

  /// Sets the initial credit count of every VC of an output port to the
  /// capacity advertised by the downstream input unit. Called once by
  /// Network after wiring, before the first step().
  void init_output_credits(PortId port, int credits_per_vc);

  /// One router-clock cycle.
  void step(Cycle cycle);

  /// Reconfiguration (safe at any cycle; never drops flits).
  void set_active_vcs(int vcs, Cycle now);
  void set_active_depth(int depth, Cycle now);
  int active_vcs() const { return params_.active_vcs; }
  int active_depth() const { return params_.active_depth; }

  /// VC gating is a property of the *downstream* buffers: when per-router
  /// configurations differ, the VA stage must restrict allocations to the
  /// VCs the next-hop router keeps active. Network propagates this after
  /// every (re)configuration; defaults to this router's own active_vcs.
  void set_output_active_vcs(PortId port, int vcs);
  int output_active_vcs(PortId port) const;

  /// Swaps the routing function (e.g. for fault-aware rerouting). The new
  /// algorithm must outlive the router; takes effect from the next RC stage.
  void set_routing(const RoutingAlgorithm& routing) { routing_ = &routing; }
  /// Attaches a fault model consulted at link traversal (null detaches).
  /// With no model attached the ST stage is unchanged (healthy fast path).
  void set_fault_model(const FaultModel* model) { fault_model_ = model; }
  /// Attaches a flight recorder for sampled per-hop / VC-allocation trace
  /// events (null detaches). Mirrors the fault-model discipline: with no
  /// recorder the hot path pays one null check per event site and the
  /// simulated behavior is bit-identical.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

  NodeId id() const { return id_; }
  const RouterParams& params() const { return params_; }

  // --- observability -------------------------------------------------------
  const RouterActivity& activity() const { return activity_; }
  void reset_activity() { activity_.reset(); }
  /// Total flits currently buffered in this router's input units. O(1):
  /// maintained incrementally on every buffer write/read.
  int buffered_flits() const { return buffered_total_; }
  /// Occupancy of the fullest single input VC (congestion feature).
  int max_vc_occupancy() const;
  bool idle() const { return buffered_flits() == 0; }

  /// Test hook: downstream-advertised capacity of one input VC
  /// (must always equal upstream credits + credits in flight + occupancy).
  int advertised_capacity(PortId port, VcId vc) const;
  /// Test hook: credits this router currently holds for a downstream VC.
  int output_credits(PortId port, VcId vc) const;
  /// Test hook: occupancy of one input VC buffer.
  int input_occupancy(PortId port, VcId vc) const;

 private:
  /// Per input VC pipeline state. Kept OUT of InputVc in one compact
  /// side array: the per-cycle allocator loops scan every input VC, and
  /// with ~100-byte InputVc records those scans were L1-miss bound; at four
  /// bytes per VC a router's whole scan state fits in one or two cache
  /// lines.
  enum class VcState : std::uint8_t { kIdle, kVcAlloc, kActive };

  struct VcMeta {
    VcState state = VcState::kIdle;
    std::int8_t occ = 0;       ///< mirror of fifo.size() (max_depth <= 127)
    std::int8_t out_port = -1; ///< allocated output port (radix <= 127)
    std::int8_t out_vc = -1;   ///< allocated output VC (max_vcs <= 127)
  };

  struct InputVc {
    util::RingBuffer<Flit> fifo;  ///< occupancy bounded by max_depth
    std::vector<RouteChoice> candidates;
    int advertised = 0;  ///< capacity advertised upstream (credit protocol)
  };

  struct OutputVc {
    int credits = 0;    ///< downstream slots this router may still consume
    bool busy = false;  ///< owned by an in-flight packet
  };

  struct PortWiring {
    FlitChannel* in_flits = nullptr;
    CreditChannel* out_credits = nullptr;
    FlitChannel* out_flits = nullptr;
    CreditChannel* in_credits = nullptr;
  };

  InputVc& ivc(PortId p, VcId v) {
    return inputs_[static_cast<std::size_t>(p * params_.max_vcs + v)];
  }
  const InputVc& ivc(PortId p, VcId v) const {
    return inputs_[static_cast<std::size_t>(p * params_.max_vcs + v)];
  }
  OutputVc& ovc(PortId p, VcId v) {
    return outputs_[static_cast<std::size_t>(p * params_.max_vcs + v)];
  }

  /// Admissible out-VC index range [begin, end) for a VC class, gated by
  /// the downstream router's active-VC configuration for `out_port`.
  std::pair<VcId, VcId> admissible_range(std::uint8_t vc_class,
                                         PortId out_port) const;
  /// Rebuilds the cached admissible ranges (adm_begin_/adm_end_) after any
  /// change to out_active_vcs_ — keeps the integer divides of
  /// admissible_range() out of the per-cycle VA loop.
  void refresh_admissible_cache();
  int adm_index(PortId port, std::uint8_t vc_class) const {
    return port * params_.vc_classes + static_cast<int>(vc_class);
  }

  void receive_phase(Cycle cycle);
  void route_compute();
  void vc_allocate(Cycle cycle);
  void switch_allocate_and_traverse(Cycle cycle);
  /// Frees one input slot: sends a credit upstream or withholds it when the
  /// advertised capacity must shrink toward the configured depth.
  void release_slot(PortId port, VcId vc, Cycle cycle);

  NodeId id_;
  RouterParams params_;
  const RoutingAlgorithm* routing_;
  const FaultModel* fault_model_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  std::vector<PortWiring> ports_;
  std::vector<InputVc> inputs_;
  std::vector<OutputVc> outputs_;
  std::vector<int> out_active_vcs_;  ///< per output port (downstream gating)
  // Round-robin pointers.
  std::vector<int> va_rr_;       // per output VC
  std::vector<int> sa_in_rr_;    // per input port
  std::vector<int> sa_out_rr_;   // per output port
  // Persistent allocation scratch for the per-cycle allocators. The VA
  // requester lists are intrusive singly-linked lists keyed by input slot
  // index (head per output VC, next per input slot), reset by a fill each
  // cycle; SA stage 1 records at most one winning VC per input port.
  std::vector<int> va_head_;       // per output VC: first requester, or -1
  std::vector<int> va_next_;       // per input slot: next requester, or -1
  std::vector<int> va_touched_;    // output VC slots with requests this cycle
  // Event-driven pipeline worklists: the allocator stages iterate only the
  // input VCs that can actually make progress instead of scanning every
  // (port, VC) slot each cycle. List order never affects results — every
  // arbitration picks the minimum cyclic distance over unique indices.
  std::vector<std::int16_t> route_ready_;  // kIdle VCs with a waiting head
  std::vector<std::int16_t> va_list_;      // VCs in state kVcAlloc
  struct SaWinner {
    std::int8_t in_port;
    std::int8_t in_vc;
    std::int8_t out_port;
  };
  std::vector<SaWinner> sa_winners_;       // SA stage-1 scratch
  std::vector<std::int8_t> port_active_;   // per input port: VCs in kActive
  // Incremental occupancy / pipeline-state counters: they make the common
  // idle case O(1) — a quiet router's step() skips VA and SA entirely, and
  // Network's per-cycle statistics need no buffer walks.
  int buffered_total_ = 0;   // flits across all input VC FIFOs
  int sa_active_ = 0;        // input VCs in state kActive
  int vcs_per_class_ = 1;    // max_vcs / vc_classes, precomputed
  std::vector<VcId> adm_begin_, adm_end_;  // per (port, class); see above
  // Compact per-input-VC pipeline state (see VcMeta above). Indexed like
  // inputs_: port * max_vcs + vc.
  std::vector<VcMeta> vc_meta_;
  RouterActivity activity_;
};

}  // namespace drlnoc::noc
