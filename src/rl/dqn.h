// Deep Q-Network agent (Mnih et al. 2015) with the standard stabilizers:
// experience replay (uniform or prioritized), a periodically synced target
// network, Huber loss, gradient clipping, epsilon-greedy exploration, and an
// optional Double-DQN target (van Hasselt et al. 2016).
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "rl/env.h"
#include "rl/policy_io.h"
#include "rl/replay.h"
#include "rl/schedule.h"
#include "util/ring_buffer.h"
#include "util/rng.h"

namespace drlnoc::rl {

struct DqnParams {
  std::vector<std::size_t> hidden = {64, 64};
  double gamma = 0.9;
  double lr = 1e-3;
  std::string optimizer = "adam";
  std::size_t replay_capacity = 20000;
  std::size_t batch_size = 32;
  std::size_t min_replay = 256;        ///< learning starts after this many
  std::uint64_t target_sync_every = 250;  ///< learn steps between hard syncs
  double grad_clip = 10.0;
  bool double_dqn = true;
  bool dueling = false;       ///< dueling V/A head (Wang et al. 2016)
  int n_step = 1;             ///< n-step return aggregation
  double tau = 0.0;           ///< >0: Polyak soft target update per learn
                              ///< step (disables periodic hard sync)
  bool prioritized = false;
  double per_alpha = 0.6;
  double per_beta = 0.4;
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  std::uint64_t epsilon_decay_steps = 4000;
  std::uint64_t seed = 7;

  /// Throws std::invalid_argument naming the offending field when a value is
  /// out of range. Notably rejects the `target_sync_every == 0 && tau == 0`
  /// combination, which would leave the target network with no update rule
  /// at all (and used to crash learn() with a modulo by zero).
  void validate() const;
};

class DqnAgent {
 public:
  DqnAgent(std::size_t state_size, int num_actions, DqnParams params);

  /// Epsilon-greedy action for training.
  int act(const State& state);
  /// Greedy action (evaluation).
  int act_greedy(const State& state);
  /// Greedy actions for a batch of states (one row per state): a single
  /// matmul through the online net instead of `rows` separate forwards.
  /// Row r of `states` yields `actions[r]`; bit-identical to calling
  /// act_greedy on each row.
  void act_greedy_batch(const nn::Matrix& states, std::vector<int>& actions);
  /// Q-values of a state (evaluation / inspection).
  std::vector<double> q_values(const State& state);

  /// Stores a transition and performs one learning step when ready.
  /// Returns the loss if a gradient step happened.
  std::optional<double> observe(const Transition& t);

  double epsilon() const;
  /// Exploration rate at an arbitrary env-step count. Parallel rollout
  /// collection uses this to evaluate the schedule at a lane's *global*
  /// step index without mutating the agent.
  double epsilon_at(std::uint64_t steps) const { return epsilon_.value(steps); }
  std::uint64_t steps() const { return env_steps_; }
  std::uint64_t learn_steps() const { return learn_steps_; }
  std::size_t replay_size() const;
  const DqnParams& params() const { return params_; }

  /// Writes a versioned `drlpol 1` checkpoint: header (dims, architecture,
  /// optional training-scenario hash and git provenance) followed by the
  /// raw weight blob. Pass a default-constructed PolicyMeta for an
  /// anonymous checkpoint.
  void save(std::ostream& os, const PolicyMeta& meta = {}) const;
  /// Loads a checkpoint written by save() — or a legacy bare `mlp` blob —
  /// rejecting dimension mismatches against this agent's state/action
  /// space with errors naming both sides.
  void load_weights(std::istream& is);
  /// Adopts an already-deserialized policy network (e.g. one probed for
  /// dimension checks) as the online net; the target net is synced to it.
  void load_weights(nn::Mlp net);

 private:
  /// Folds the n-step window into aggregated transitions pushed to replay.
  void push_n_step(const Transition& t);
  void store(const Transition& t);
  double learn();
  /// Regression target for one transition, per DQN / Double-DQN rule.
  double td_target(const Transition& t, const nn::Matrix& q_next_online,
                   const nn::Matrix& q_next_target, std::size_t row) const;

  std::size_t state_size_;
  int num_actions_;
  DqnParams params_;
  util::Rng rng_;
  nn::Mlp online_;
  nn::Mlp target_;
  std::unique_ptr<nn::Optimizer> optimizer_;
  LinearSchedule epsilon_;
  std::unique_ptr<ReplayBuffer> uniform_replay_;
  std::unique_ptr<PrioritizedReplayBuffer> prioritized_replay_;
  util::RingBuffer<Transition> n_step_window_;
  std::uint64_t env_steps_ = 0;
  std::uint64_t learn_steps_ = 0;

  // Persistent learn-step workspace: act(), q_values() and learn() reuse
  // these buffers so the steady-state hot path performs no heap allocation.
  nn::Matrix ws_state_;          ///< 1×state input for act / q_values
  nn::Matrix ws_states_;         ///< stacked batch states
  nn::Matrix ws_next_states_;    ///< stacked batch next-states
  nn::Matrix ws_q_next_online_;  ///< copied out of the online net workspace
  nn::MaskedLossResult ws_loss_;
  SampledBatch ws_batch_;
  Transition ws_store_;          ///< discount-defaulted copy staged for push
  Transition ws_agg_;            ///< n-step aggregation scratch
  std::vector<int> ws_actions_;
  std::vector<double> ws_targets_;
};

}  // namespace drlnoc::rl
