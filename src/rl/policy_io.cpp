#include "rl/policy_io.h"

#include <cstdint>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace drlnoc::rl {

namespace {

constexpr std::size_t kMaxHidden = 62;  // mlp layer cap (64) minus in/out
constexpr std::size_t kMaxWidth = 1u << 20;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("drlpol: " + what);
}

/// Reads one whitespace-delimited token, failing with the expected key name.
std::string token(std::istream& is, const std::string& expect) {
  std::string t;
  if (!(is >> t)) fail("truncated header (expected '" + expect + "')");
  return t;
}

/// Header lines are fixed-order `key value...` pairs; a wrong key is a
/// hard error naming both sides so corrupt or reordered files are loud.
void expect_key(std::istream& is, const std::string& key) {
  const std::string got = token(is, key);
  if (got != key) fail("expected key '" + key + "', found '" + got + "'");
}

std::size_t read_size(std::istream& is, const std::string& key) {
  expect_key(is, key);
  long long v = -1;
  if (!(is >> v)) fail("key '" + key + "' has no numeric value");
  if (v < 1 || static_cast<std::size_t>(v) > kMaxWidth) {
    fail("key '" + key + "' value " + std::to_string(v) +
         " out of range (expected 1.." + std::to_string(kMaxWidth) + ")");
  }
  return static_cast<std::size_t>(v);
}

bool is_hex16(const std::string& s) {
  if (s.size() != 16) return false;
  for (char c : s) {
    const bool ok =
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) return false;
  }
  return true;
}

std::string activation_token(const nn::Mlp& net) {
  return net.activation() == nn::Activation::kTanh ? "tanh" : "relu";
}

std::string head_token(const nn::Mlp& net) {
  return net.dueling() ? "dueling" : "plain";
}

}  // namespace

bool is_versioned_policy(std::istream& is) {
  const std::istream::pos_type pos = is.tellg();
  std::string magic;
  is >> magic;
  is.clear();
  is.seekg(pos);
  return magic == "drlpol";
}

void write_policy(std::ostream& os, const nn::Mlp& net,
                  const PolicyMeta& meta) {
  const std::vector<std::size_t>& sizes = net.sizes();
  if (sizes.size() < 2) fail("cannot save an uninitialized network");
  os << "drlpol 1\n";
  os << "obs " << sizes.front() << "\n";
  os << "actions " << sizes.back() << "\n";
  os << "hidden " << (sizes.size() - 2);
  for (std::size_t i = 1; i + 1 < sizes.size(); ++i) os << ' ' << sizes[i];
  os << "\n";
  os << "activation " << activation_token(net) << "\n";
  os << "head " << head_token(net) << "\n";
  os << "scenario "
     << (meta.scenario_hash.empty() ? "-" : meta.scenario_hash) << "\n";
  os << "git " << (meta.git.empty() ? "unknown" : meta.git) << "\n";
  os << "end\n";
  net.save(os);
}

PolicyCheckpoint read_policy(std::istream& is) {
  PolicyCheckpoint ckpt;
  if (!is_versioned_policy(is)) {
    // Legacy bare weight blob: no header to check, Mlp::load does the
    // structural validation.
    ckpt.net = nn::Mlp::load(is);
    return ckpt;
  }

  PolicyHeader h;
  expect_key(is, "drlpol");
  if (!(is >> h.version)) fail("missing version number after magic");
  if (h.version != 1) {
    fail("unsupported version " + std::to_string(h.version) +
         " (this build reads version 1)");
  }
  h.obs = read_size(is, "obs");
  h.actions = read_size(is, "actions");
  expect_key(is, "hidden");
  std::size_t n_hidden = 0;
  if (!(is >> n_hidden)) fail("key 'hidden' has no count");
  if (n_hidden > kMaxHidden) {
    fail("implausible hidden layer count " + std::to_string(n_hidden) +
         " (expected 0.." + std::to_string(kMaxHidden) + ")");
  }
  h.hidden.resize(n_hidden);
  for (std::size_t i = 0; i < n_hidden; ++i) {
    long long v = -1;
    if (!(is >> v)) {
      fail("truncated hidden size list (got " + std::to_string(i) + " of " +
           std::to_string(n_hidden) + ")");
    }
    if (v < 1 || static_cast<std::size_t>(v) > kMaxWidth) {
      fail("implausible hidden size " + std::to_string(v) + " at index " +
           std::to_string(i));
    }
    h.hidden[i] = static_cast<std::size_t>(v);
  }
  expect_key(is, "activation");
  h.activation = token(is, "activation value");
  if (h.activation != "relu" && h.activation != "tanh") {
    fail("unknown activation '" + h.activation + "' (expected relu|tanh)");
  }
  expect_key(is, "head");
  h.head = token(is, "head value");
  if (h.head != "dueling" && h.head != "plain") {
    fail("unknown head '" + h.head + "' (expected dueling|plain)");
  }
  expect_key(is, "scenario");
  h.scenario_hash = token(is, "scenario hash");
  if (h.scenario_hash == "-") {
    h.scenario_hash.clear();
  } else if (!is_hex16(h.scenario_hash)) {
    fail("malformed scenario hash '" + h.scenario_hash +
         "' (expected 16 lowercase hex digits or '-')");
  }
  expect_key(is, "git");
  h.git = token(is, "git describe");
  if (h.git == "unknown") h.git.clear();
  expect_key(is, "end");

  ckpt.net = nn::Mlp::load(is);

  // The header must agree with the blob it wraps — a mismatch means the
  // file was assembled from parts or corrupted in a way Mlp::load cannot
  // see, and trusting either half silently would serve the wrong policy.
  const std::vector<std::size_t>& sizes = ckpt.net.sizes();
  if (sizes.front() != h.obs) {
    fail("header obs " + std::to_string(h.obs) +
         " does not match embedded network input " +
         std::to_string(sizes.front()));
  }
  if (sizes.back() != h.actions) {
    fail("header actions " + std::to_string(h.actions) +
         " does not match embedded network output " +
         std::to_string(sizes.back()));
  }
  if (sizes.size() - 2 != h.hidden.size()) {
    fail("header declares " + std::to_string(h.hidden.size()) +
         " hidden layers but embedded network has " +
         std::to_string(sizes.size() - 2));
  }
  for (std::size_t i = 0; i < h.hidden.size(); ++i) {
    if (sizes[i + 1] != h.hidden[i]) {
      fail("header hidden[" + std::to_string(i) + "] = " +
           std::to_string(h.hidden[i]) + " does not match embedded width " +
           std::to_string(sizes[i + 1]));
    }
  }
  if (h.activation != activation_token(ckpt.net)) {
    fail("header activation '" + h.activation +
         "' does not match embedded network ('" +
         activation_token(ckpt.net) + "')");
  }
  if (h.head != head_token(ckpt.net)) {
    fail("header head '" + h.head + "' does not match embedded network ('" +
         head_token(ckpt.net) + "')");
  }
  ckpt.header = std::move(h);
  return ckpt;
}

PolicyCheckpoint read_policy_blob(const std::string& blob) {
  std::istringstream is(blob);
  return read_policy(is);
}

std::string policy_fingerprint(const std::string& blob) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : blob) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

}  // namespace drlnoc::rl
