// The discrete-action RL environment interface (episodic MDP) and small
// shared types. Kept deliberately minimal: states are dense feature vectors,
// actions are indices — exactly what the NoC configuration MDP needs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace drlnoc::rl {

using State = std::vector<double>;

struct StepResult {
  State next_state;
  double reward = 0.0;
  bool done = false;
};

class Environment {
 public:
  virtual ~Environment() = default;
  virtual std::string name() const = 0;
  virtual std::size_t state_size() const = 0;
  virtual int num_actions() const = 0;
  /// Starts a new episode and returns the initial state.
  virtual State reset() = 0;
  /// Applies an action.
  virtual StepResult step(int action) = 0;
};

/// One transition for replay. `discount` is the bootstrap discount applied
/// to the next-state value — gamma for 1-step transitions, gamma^n for
/// n-step aggregates; 0.0 means "use the agent's gamma" (default).
struct Transition {
  State state;
  int action = 0;
  double reward = 0.0;
  State next_state;
  bool done = false;
  double discount = 0.0;
};

}  // namespace drlnoc::rl
