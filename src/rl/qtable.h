// Tabular Q-learning baseline over a discretized feature space. Used by the
// ablation study (T3) to quantify what the deep function approximator buys.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rl/env.h"
#include "util/rng.h"

namespace drlnoc::rl {

struct QTableParams {
  int bins_per_feature = 4;     ///< each state feature is discretized into
                                ///< this many uniform bins over [0, 1]
  double gamma = 0.9;
  double alpha = 0.2;           ///< learning rate
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  std::uint64_t epsilon_decay_steps = 4000;
  std::uint64_t seed = 11;
};

class QTableAgent {
 public:
  QTableAgent(std::size_t state_size, int num_actions, QTableParams params);

  int act(const State& state);
  int act_greedy(const State& state);
  /// One Q-learning backup.
  void observe(const Transition& t);

  double epsilon() const;
  std::size_t table_size() const { return table_.size(); }
  std::uint64_t steps() const { return steps_; }

  /// Test hook: discretized key of a state.
  std::uint64_t key_of(const State& state) const;

 private:
  std::vector<double>& q_row(std::uint64_t key);

  std::size_t state_size_;
  int num_actions_;
  QTableParams params_;
  util::Rng rng_;
  std::unordered_map<std::uint64_t, std::vector<double>> table_;
  std::uint64_t steps_ = 0;
};

}  // namespace drlnoc::rl
