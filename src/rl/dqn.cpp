#include "rl/dqn.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "nn/loss.h"
#include "obs/profiler.h"

namespace drlnoc::rl {

namespace {
std::vector<std::size_t> layer_sizes(std::size_t in,
                                     const std::vector<std::size_t>& hidden,
                                     int out) {
  std::vector<std::size_t> sizes;
  sizes.push_back(in);
  for (std::size_t h : hidden) sizes.push_back(h);
  sizes.push_back(static_cast<std::size_t>(out));
  return sizes;
}

void to_matrix_into(nn::Matrix& m, const State& s) {
  m.resize_fast(1, s.size());
  m.set_row(0, s);
}

void stack_states_into(nn::Matrix& m, const std::vector<Transition>& batch,
                       bool next) {
  assert(!batch.empty());
  const std::size_t cols =
      next ? batch.front().next_state.size() : batch.front().state.size();
  m.resize_fast(batch.size(), cols);
  for (std::size_t r = 0; r < batch.size(); ++r) {
    m.set_row(r, next ? batch[r].next_state : batch[r].state);
  }
}

using nn::argmax_row;

[[noreturn]] void bad_param(const std::string& field, double value) {
  throw std::invalid_argument("DqnParams: " + field + " = " +
                              std::to_string(value) + " is out of range");
}
}  // namespace

void DqnParams::validate() const {
  if (!std::isfinite(gamma) || gamma <= 0.0 || gamma > 1.0) {
    bad_param("gamma (expected in (0, 1])", gamma);
  }
  if (!std::isfinite(lr) || lr <= 0.0) bad_param("lr (expected > 0)", lr);
  if (batch_size < 1) {
    bad_param("batch_size (expected >= 1)", static_cast<double>(batch_size));
  }
  if (replay_capacity < batch_size) {
    bad_param("replay_capacity (expected >= batch_size)",
              static_cast<double>(replay_capacity));
  }
  if (n_step < 1) bad_param("n_step (expected >= 1)", n_step);
  if (!std::isfinite(tau) || tau < 0.0 || tau > 1.0) {
    bad_param("tau (expected in [0, 1])", tau);
  }
  if (target_sync_every == 0 && tau == 0.0) {
    throw std::invalid_argument(
        "DqnParams: target_sync_every = 0 with tau = 0 leaves the target "
        "network with no update rule; set target_sync_every > 0 for "
        "periodic hard syncs or tau > 0 for Polyak updates");
  }
  if (!std::isfinite(grad_clip) || grad_clip <= 0.0) {
    bad_param("grad_clip (expected > 0)", grad_clip);
  }
  if (!std::isfinite(epsilon_start) || epsilon_start < 0.0 ||
      epsilon_start > 1.0) {
    bad_param("epsilon_start (expected in [0, 1])", epsilon_start);
  }
  if (!std::isfinite(epsilon_end) || epsilon_end < 0.0 || epsilon_end > 1.0) {
    bad_param("epsilon_end (expected in [0, 1])", epsilon_end);
  }
}

DqnAgent::DqnAgent(std::size_t state_size, int num_actions, DqnParams params)
    : state_size_(state_size), num_actions_(num_actions),
      params_(std::move(params)), rng_(params_.seed),
      online_(layer_sizes(state_size, params_.hidden, num_actions),
              nn::Activation::kReLU, rng_, params_.dueling),
      target_(online_),
      optimizer_(nn::make_optimizer(params_.optimizer, params_.lr)),
      epsilon_(params_.epsilon_start, params_.epsilon_end,
               params_.epsilon_decay_steps) {
  if (num_actions < 1) throw std::invalid_argument("need >= 1 action");
  params_.validate();
  if (params_.prioritized) {
    prioritized_replay_ = std::make_unique<PrioritizedReplayBuffer>(
        params_.replay_capacity, params_.per_alpha, params_.per_beta);
  } else {
    uniform_replay_ = std::make_unique<ReplayBuffer>(params_.replay_capacity);
  }
}

double DqnAgent::epsilon() const { return epsilon_.value(env_steps_); }

std::size_t DqnAgent::replay_size() const {
  return params_.prioritized ? prioritized_replay_->size()
                             : uniform_replay_->size();
}

int DqnAgent::act(const State& state) {
  assert(state.size() == state_size_);
  if (rng_.chance(epsilon())) {
    return static_cast<int>(rng_.below(static_cast<std::uint64_t>(num_actions_)));
  }
  return act_greedy(state);
}

int DqnAgent::act_greedy(const State& state) {
  to_matrix_into(ws_state_, state);
  const nn::Matrix& q = online_.infer_ws(ws_state_);
  return static_cast<int>(argmax_row(q, 0));
}

void DqnAgent::act_greedy_batch(const nn::Matrix& states,
                                std::vector<int>& actions) {
  assert(states.cols() == state_size_);
  const nn::Matrix& q = online_.infer_ws(states);
  actions.resize(states.rows());
  for (std::size_t r = 0; r < states.rows(); ++r) {
    actions[r] = static_cast<int>(argmax_row(q, r));
  }
}

std::vector<double> DqnAgent::q_values(const State& state) {
  to_matrix_into(ws_state_, state);
  return online_.infer_ws(ws_state_).row(0);
}

void DqnAgent::store(const Transition& t) {
  // Staged through a member copy (vector capacities are reused) so the
  // discount default can be applied without mutating the caller's object.
  ws_store_ = t;
  if (ws_store_.discount == 0.0) ws_store_.discount = params_.gamma;
  if (params_.prioritized) prioritized_replay_->push(ws_store_);
  else uniform_replay_->push(ws_store_);
}

void DqnAgent::push_n_step(const Transition& t) {
  n_step_window_.push_back(t);
  auto emit_front = [&] {
    // Aggregate from the window head: R = sum_i gamma^i r_i, bootstrapping
    // from the last reached state with discount gamma^k.
    Transition& agg = ws_agg_;
    agg = n_step_window_.front();
    double discount = params_.gamma;
    double reward = agg.reward;
    double g = params_.gamma;
    for (std::size_t i = 1; i < n_step_window_.size(); ++i) {
      const Transition& step = n_step_window_[i];
      reward += g * step.reward;
      g *= params_.gamma;
      discount *= params_.gamma;
      agg.next_state = step.next_state;
      agg.done = step.done;
      if (step.done) break;
    }
    agg.reward = reward;
    agg.discount = discount;
    store(agg);
    n_step_window_.pop_front();
  };
  if (t.done) {
    while (!n_step_window_.empty()) emit_front();
  } else if (n_step_window_.size() >=
             static_cast<std::size_t>(params_.n_step)) {
    emit_front();
  }
}

std::optional<double> DqnAgent::observe(const Transition& t) {
  assert(t.state.size() == state_size_ && t.next_state.size() == state_size_);
  if (params_.n_step > 1) push_n_step(t);
  else store(t);
  ++env_steps_;
  if (replay_size() < std::max<std::size_t>(params_.min_replay,
                                            params_.batch_size)) {
    return std::nullopt;
  }
  return learn();
}

double DqnAgent::td_target(const Transition& t,
                           const nn::Matrix& q_next_online,
                           const nn::Matrix& q_next_target,
                           std::size_t row) const {
  if (t.done) return t.reward;
  double bootstrap;
  if (params_.double_dqn) {
    // Online net selects, target net evaluates.
    const std::size_t a_star = argmax_row(q_next_online, row);
    bootstrap = q_next_target.at(row, a_star);
  } else {
    bootstrap = q_next_target.at(row, argmax_row(q_next_target, row));
  }
  const double discount = t.discount > 0.0 ? t.discount : params_.gamma;
  return t.reward + discount * bootstrap;
}

double DqnAgent::learn() {
  SampledBatch& batch = ws_batch_;
  {
    obs::ScopedPhase prof(obs::Phase::kReplaySample);
    if (params_.prioritized) {
      prioritized_replay_->sample_into(batch, params_.batch_size, rng_);
    } else {
      uniform_replay_->sample_into(batch, params_.batch_size, rng_);
    }
  }

  stack_states_into(ws_next_states_, batch.transitions, true);
  // Next-state values are inference-only: infer_ws skips the backward
  // caches, so the training forward below is free to own them. The target
  // net's workspace is untouched until its next forward, so its result can
  // be used by reference; the online net's next-state values must be copied
  // out before the training forward overwrites the shared workspace.
  const nn::Matrix& q_next_target = target_.infer_ws(ws_next_states_);
  // For Double-DQN the online net's next-state values pick the action.
  if (params_.double_dqn) {
    ws_q_next_online_ = online_.infer_ws(ws_next_states_);
  }

  ws_actions_.resize(batch.transitions.size());
  ws_targets_.resize(batch.transitions.size());
  for (std::size_t i = 0; i < batch.transitions.size(); ++i) {
    ws_actions_[i] = batch.transitions[i].action;
    ws_targets_[i] = td_target(batch.transitions[i], ws_q_next_online_,
                               q_next_target, i);
  }

  stack_states_into(ws_states_, batch.transitions, false);
  const nn::Matrix& q = online_.forward_ws(ws_states_);
  nn::masked_huber_loss_into(ws_loss_, q, ws_actions_, ws_targets_,
                             batch.weights);

  online_.zero_grads();
  online_.backward_params_ws(ws_loss_.grad);
  online_.clip_grad_norm(params_.grad_clip);
  optimizer_->step(online_.params(), online_.grads());

  if (params_.prioritized) {
    prioritized_replay_->update_priorities(batch.indices, ws_loss_.td_abs);
  }

  ++learn_steps_;
  if (params_.tau > 0.0) {
    target_.soft_update_from(online_, params_.tau);
  } else if (params_.target_sync_every > 0 &&
             learn_steps_ % params_.target_sync_every == 0) {
    target_.copy_weights_from(online_);
  }
  return ws_loss_.loss;
}

void DqnAgent::save(std::ostream& os, const PolicyMeta& meta) const {
  write_policy(os, online_, meta);
}

void DqnAgent::load_weights(std::istream& is) {
  PolicyCheckpoint ckpt = read_policy(is);
  if (ckpt.net.input_size() != state_size_) {
    throw std::runtime_error(
        "DqnAgent::load_weights: policy expects " +
        std::to_string(ckpt.net.input_size()) +
        " observations but this agent's state size is " +
        std::to_string(state_size_));
  }
  if (ckpt.net.output_size() != static_cast<std::size_t>(num_actions_)) {
    throw std::runtime_error(
        "DqnAgent::load_weights: policy has " +
        std::to_string(ckpt.net.output_size()) +
        " actions but this agent has " + std::to_string(num_actions_));
  }
  load_weights(std::move(ckpt.net));
}

void DqnAgent::load_weights(nn::Mlp net) {
  online_ = std::move(net);
  // Clone rather than copy_weights_from: the checkpoint's architecture may
  // differ from the one this agent was constructed with (serving loads any
  // compatible-dimension policy), and the stale target structure would
  // reject it.
  target_ = online_;
}

}  // namespace drlnoc::rl
