// Experience replay: uniform ring buffer and proportional prioritized replay
// (Schaul et al. 2016) backed by a sum tree.
#pragma once

#include <cstddef>
#include <vector>

#include "rl/env.h"
#include "util/rng.h"

namespace drlnoc::rl {

struct SampledBatch {
  std::vector<Transition> transitions;
  std::vector<std::size_t> indices;   ///< buffer slots (for priority updates)
  std::vector<double> weights;        ///< importance-sampling weights (max 1)
};

/// Uniform FIFO replay buffer.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  /// Copy-assigns into the FIFO slot, so a full buffer reuses each slot's
  /// state-vector capacity (no steady-state allocation).
  void push(const Transition& t);
  SampledBatch sample(std::size_t batch, util::Rng& rng) const;
  /// Allocation-free sampling into a persistent batch workspace; identical
  /// RNG consumption and results as sample().
  void sample_into(SampledBatch& out, std::size_t batch, util::Rng& rng) const;
  std::size_t size() const { return data_.size(); }
  std::size_t capacity() const { return capacity_; }
  const Transition& at(std::size_t i) const { return data_[i]; }

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< FIFO cursor once full
  std::vector<Transition> data_;
};

/// Binary-indexed sum tree over leaf priorities; supports O(log n) prefix
/// sampling and point updates.
class SumTree {
 public:
  explicit SumTree(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  double total() const { return tree_[1]; }
  double priority(std::size_t leaf) const;
  double max_priority() const;
  double min_nonzero_priority() const;
  void update(std::size_t leaf, double priority);
  /// Leaf whose cumulative range contains `mass` in [0, total()).
  std::size_t find(double mass) const;

 private:
  std::size_t capacity_;   ///< leaf count, power of two
  std::vector<double> tree_;
};

/// Proportional prioritized replay: P(i) ∝ (|td_i| + eps)^alpha, with
/// importance-sampling weights annealed by beta.
class PrioritizedReplayBuffer {
 public:
  PrioritizedReplayBuffer(std::size_t capacity, double alpha = 0.6,
                          double beta = 0.4, double eps = 1e-3);

  void push(const Transition& t);
  SampledBatch sample(std::size_t batch, util::Rng& rng) const;
  /// Allocation-free sampling into a persistent batch workspace; identical
  /// RNG consumption and results as sample().
  void sample_into(SampledBatch& out, std::size_t batch, util::Rng& rng) const;
  void update_priorities(const std::vector<std::size_t>& indices,
                         const std::vector<double>& td_abs);
  void set_beta(double beta) { beta_ = beta; }
  double beta() const { return beta_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  double alpha_, beta_, eps_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
  std::vector<Transition> data_;
  SumTree tree_;
  double max_seen_priority_ = 1.0;
};

}  // namespace drlnoc::rl
