#include "rl/replay.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace drlnoc::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("replay capacity must be > 0");
  data_.reserve(capacity);
}

void ReplayBuffer::push(const Transition& t) {
  if (data_.size() < capacity_) {
    data_.push_back(t);
  } else {
    data_[next_] = t;  // copy-assign reuses the slot's vector capacity
    next_ = (next_ + 1) % capacity_;
  }
}

SampledBatch ReplayBuffer::sample(std::size_t batch, util::Rng& rng) const {
  SampledBatch out;
  sample_into(out, batch, rng);
  return out;
}

void ReplayBuffer::sample_into(SampledBatch& out, std::size_t batch,
                               util::Rng& rng) const {
  assert(!data_.empty());
  out.transitions.resize(batch);
  out.indices.resize(batch);
  out.weights.assign(batch, 1.0);
  for (std::size_t i = 0; i < batch; ++i) {
    const std::size_t idx = static_cast<std::size_t>(rng.below(data_.size()));
    out.indices[i] = idx;
    out.transitions[i] = data_[idx];
  }
}

SumTree::SumTree(std::size_t capacity) {
  if (capacity == 0) throw std::invalid_argument("sum tree capacity > 0");
  capacity_ = std::bit_ceil(capacity);
  tree_.assign(2 * capacity_, 0.0);
}

double SumTree::priority(std::size_t leaf) const {
  assert(leaf < capacity_);
  return tree_[capacity_ + leaf];
}

double SumTree::max_priority() const {
  double best = 0.0;
  for (std::size_t i = capacity_; i < tree_.size(); ++i)
    best = std::max(best, tree_[i]);
  return best;
}

double SumTree::min_nonzero_priority() const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = capacity_; i < tree_.size(); ++i) {
    if (tree_[i] > 0.0) best = std::min(best, tree_[i]);
  }
  return std::isinf(best) ? 0.0 : best;
}

void SumTree::update(std::size_t leaf, double priority) {
  assert(leaf < capacity_ && priority >= 0.0);
  std::size_t i = capacity_ + leaf;
  const double delta = priority - tree_[i];
  while (i >= 1) {
    tree_[i] += delta;
    i /= 2;
  }
}

std::size_t SumTree::find(double mass) const {
  assert(mass >= 0.0);
  std::size_t i = 1;
  while (i < capacity_) {
    const std::size_t left = 2 * i;
    if (mass < tree_[left]) {
      i = left;
    } else {
      mass -= tree_[left];
      i = left + 1;
    }
  }
  return i - capacity_;
}

PrioritizedReplayBuffer::PrioritizedReplayBuffer(std::size_t capacity,
                                                 double alpha, double beta,
                                                 double eps)
    : capacity_(capacity), alpha_(alpha), beta_(beta), eps_(eps),
      data_(capacity), tree_(capacity) {
  if (capacity == 0) throw std::invalid_argument("replay capacity must be > 0");
}

void PrioritizedReplayBuffer::push(const Transition& t) {
  data_[next_] = t;  // copy-assign reuses the slot's vector capacity
  // New experience gets the maximum priority seen so far, guaranteeing it is
  // replayed at least once with high probability.
  tree_.update(next_, max_seen_priority_);
  next_ = (next_ + 1) % capacity_;
  size_ = std::min(size_ + 1, capacity_);
}

SampledBatch PrioritizedReplayBuffer::sample(std::size_t batch,
                                             util::Rng& rng) const {
  SampledBatch out;
  sample_into(out, batch, rng);
  return out;
}

void PrioritizedReplayBuffer::sample_into(SampledBatch& out, std::size_t batch,
                                          util::Rng& rng) const {
  assert(size_ > 0);
  out.transitions.resize(batch);
  out.indices.resize(batch);
  out.weights.resize(batch);
  const double total = tree_.total();
  assert(total > 0.0);
  // Stratified sampling across equal mass segments.
  const double segment = total / static_cast<double>(batch);
  const double n = static_cast<double>(size_);
  double max_weight = 0.0;
  for (std::size_t i = 0; i < batch; ++i) {
    const double lo = segment * static_cast<double>(i);
    const double mass = lo + rng.uniform() * segment;
    std::size_t leaf = tree_.find(std::min(mass, total * (1.0 - 1e-12)));
    if (leaf >= size_) leaf = size_ - 1;  // zero-priority padding guard
    const double p = tree_.priority(leaf) / total;
    const double w = std::pow(n * std::max(p, 1e-12), -beta_);
    out.indices[i] = leaf;
    out.transitions[i] = data_[leaf];
    out.weights[i] = w;
    max_weight = std::max(max_weight, w);
  }
  // Normalize weights to at most 1 for stability.
  if (max_weight > 0.0) {
    for (double& w : out.weights) w /= max_weight;
  }
}

void PrioritizedReplayBuffer::update_priorities(
    const std::vector<std::size_t>& indices,
    const std::vector<double>& td_abs) {
  assert(indices.size() == td_abs.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const double p = std::pow(td_abs[i] + eps_, alpha_);
    tree_.update(indices[i], p);
    max_seen_priority_ = std::max(max_seen_priority_, p);
  }
}

}  // namespace drlnoc::rl
