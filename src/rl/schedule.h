// Exploration / annealing schedules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace drlnoc::rl {

/// Linear anneal from `start` to `end` over `steps` calls to value(t).
class LinearSchedule {
 public:
  LinearSchedule(double start, double end, std::uint64_t steps)
      : start_(start), end_(end), steps_(steps == 0 ? 1 : steps) {}

  double value(std::uint64_t t) const {
    const double frac =
        std::min(1.0, static_cast<double>(t) / static_cast<double>(steps_));
    return start_ + frac * (end_ - start_);
  }

 private:
  double start_, end_;
  std::uint64_t steps_;
};

/// Exponential decay: start * decay^t, floored at end.
class ExponentialSchedule {
 public:
  ExponentialSchedule(double start, double end, double decay)
      : start_(start), end_(end), decay_(decay) {}

  double value(std::uint64_t t) const {
    const double v = start_ * std::pow(decay_, static_cast<double>(t));
    return std::max(v, end_);
  }

 private:
  double start_, end_, decay_;
};

}  // namespace drlnoc::rl
