#include "rl/qtable.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace drlnoc::rl {

QTableAgent::QTableAgent(std::size_t state_size, int num_actions,
                         QTableParams params)
    : state_size_(state_size), num_actions_(num_actions),
      params_(params), rng_(params.seed) {}

std::uint64_t QTableAgent::key_of(const State& state) const {
  assert(state.size() == state_size_);
  // FNV-style mixing of per-feature bin indices; features are expected to be
  // roughly normalized, values outside [0,1] clamp to the edge bins.
  std::uint64_t key = 1469598103934665603ULL;
  for (double v : state) {
    const double clamped = std::clamp(v, 0.0, 1.0);
    auto bin = static_cast<std::uint64_t>(
        std::min<double>(params_.bins_per_feature - 1,
                         clamped * params_.bins_per_feature));
    key ^= bin + 0x9e3779b97f4a7c15ULL + (key << 6) + (key >> 2);
  }
  return key;
}

std::vector<double>& QTableAgent::q_row(std::uint64_t key) {
  auto it = table_.find(key);
  if (it == table_.end()) {
    it = table_.emplace(key, std::vector<double>(
                                 static_cast<std::size_t>(num_actions_), 0.0))
             .first;
  }
  return it->second;
}

double QTableAgent::epsilon() const {
  const double frac = std::min(
      1.0, static_cast<double>(steps_) /
               static_cast<double>(params_.epsilon_decay_steps));
  return params_.epsilon_start +
         frac * (params_.epsilon_end - params_.epsilon_start);
}

int QTableAgent::act(const State& state) {
  if (rng_.chance(epsilon())) {
    return static_cast<int>(rng_.below(static_cast<std::uint64_t>(num_actions_)));
  }
  return act_greedy(state);
}

int QTableAgent::act_greedy(const State& state) {
  auto& row = q_row(key_of(state));
  return static_cast<int>(
      std::max_element(row.begin(), row.end()) - row.begin());
}

void QTableAgent::observe(const Transition& t) {
  auto& row = q_row(key_of(t.state));
  double bootstrap = 0.0;
  if (!t.done) {
    const auto& next_row = q_row(key_of(t.next_state));
    bootstrap = *std::max_element(next_row.begin(), next_row.end());
  }
  const double target = t.reward + params_.gamma * bootstrap;
  auto a = static_cast<std::size_t>(t.action);
  row[a] += params_.alpha * (target - row[a]);
  ++steps_;
}

}  // namespace drlnoc::rl
