// Versioned policy checkpoints: the `drlpol 1` format wraps a raw Mlp
// weight blob with a header recording the policy's interface (observation
// and action dimensions), its architecture (hidden sizes, activation,
// head), and its provenance (training-scenario content hash, git
// describe). Serving paths check the header against the target environment
// BEFORE deserializing weights, so a policy trained for one fabric can
// never be silently installed on an incompatible one, and fleet result
// files can record exactly which policy version produced them.
//
// Legacy bare `mlp ...` blobs (pre-versioning DqnAgent::save output) are
// still readable everywhere a drlpol checkpoint is — they simply carry no
// header, so only post-load dimension checks apply.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "nn/layers.h"

namespace drlnoc::rl {

/// Provenance stamped into a drlpol header at save time. Either field may
/// be empty (serialized as "-" / "unknown").
struct PolicyMeta {
  std::string scenario_hash;  ///< 16-hex content hash of the training scenario
  std::string git;            ///< git describe of the producing build
};

/// Parsed drlpol header. `hidden`, `activation`, and `head` describe the
/// embedded network and are cross-checked against it on read.
struct PolicyHeader {
  int version = 1;
  std::size_t obs = 0;
  std::size_t actions = 0;
  std::vector<std::size_t> hidden;
  std::string activation;     ///< "relu" | "tanh"
  std::string head;           ///< "dueling" | "plain"
  std::string scenario_hash;  ///< empty when saved without one
  std::string git;            ///< empty when saved from an unknown build
};

struct PolicyCheckpoint {
  /// Absent for legacy bare `mlp` blobs.
  std::optional<PolicyHeader> header;
  nn::Mlp net;
};

/// True when the stream (at its current position, which is restored)
/// begins a versioned `drlpol` checkpoint rather than a bare `mlp` blob.
bool is_versioned_policy(std::istream& is);

/// Writes a `drlpol 1` checkpoint: header then the raw weight blob.
void write_policy(std::ostream& os, const nn::Mlp& net, const PolicyMeta& meta);

/// Reads a drlpol checkpoint or a legacy bare `mlp` blob. Throws
/// std::runtime_error naming the offending key or token on malformed
/// headers, and rejects checkpoints whose header disagrees with the
/// embedded network's actual architecture.
PolicyCheckpoint read_policy(std::istream& is);

/// Convenience overload for in-memory blobs (scenario / fleet serving path).
PolicyCheckpoint read_policy_blob(const std::string& blob);

/// 16-hex FNV-1a fingerprint of the checkpoint bytes — the "policy
/// version" recorded in fleet result files and matched against
/// `policy_pin=`. Stable across machines (pure function of the bytes).
std::string policy_fingerprint(const std::string& blob);

}  // namespace drlnoc::rl
