// Dense row-major matrix with the handful of operations an MLP needs.
// Double precision keeps finite-difference gradient checks tight.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace drlnoc::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

  void fill(double value);
  void resize(std::size_t rows, std::size_t cols, double fill = 0.0);

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Row r as a vector copy (convenience for Q-value extraction).
  std::vector<double> row(std::size_t r) const;
  /// Sets row r from a vector of length cols().
  void set_row(std::size_t r, const std::vector<double>& values);

  /// Frobenius norm.
  double norm() const;

  void save(std::ostream& os) const;
  static Matrix load(std::istream& is);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A (m×k) * B (k×n).
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = Aᵀ (k×m) * B (k×n) — used for weight gradients.
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// C = A (m×k) * Bᵀ (n×k) — used for input gradients.
Matrix matmul_nt(const Matrix& a, const Matrix& b);
/// Adds a 1×n row vector to every row of a (m×n).
void add_row_inplace(Matrix& a, const Matrix& row);
/// 1×n column sums of a (m×n) — bias gradient.
Matrix column_sums(const Matrix& a);

}  // namespace drlnoc::nn
