// Dense row-major matrix with the handful of operations an MLP needs.
// Double precision keeps finite-difference gradient checks tight.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace drlnoc::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

  void fill(double value);
  void resize(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Reshapes without initialising contents — for destinations every
  /// element of which is about to be overwritten.
  void resize_fast(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Row r as a vector copy (convenience for Q-value extraction).
  std::vector<double> row(std::size_t r) const;
  /// Non-allocating view of row r: pointer to its cols() contiguous values.
  const double* row_data(std::size_t r) const { return data() + r * cols_; }
  double* row_data(std::size_t r) { return data() + r * cols_; }
  /// Sets row r from a vector of length cols().
  void set_row(std::size_t r, const std::vector<double>& values);

  /// Frobenius norm.
  double norm() const;

  void save(std::ostream& os) const;
  static Matrix load(std::istream& is);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Index of the largest element of row r (ties: lowest index) — the
/// allocation-free argmax path used by greedy action selection.
std::size_t argmax_row(const Matrix& m, std::size_t r);

// Matmul kernels. The `_into` forms reshape `c` and overwrite it, reusing
// its storage — the allocation-free workspace path; the value-returning
// forms are thin wrappers. All kernels accumulate each output element in
// ascending-k order with a skip of exact-zero left-hand factors, exactly
// like the original naive loops, so results are bit-identical whichever
// form is used (the determinism contract's kernel summation-order rule; see
// README "Performance"). `c` must not alias `a` or `b`.

/// C = A (m×k) * B (k×n).
Matrix matmul(const Matrix& a, const Matrix& b);
void matmul_into(Matrix& c, const Matrix& a, const Matrix& b);
/// C = Aᵀ (k×m) * B (k×n) — used for weight gradients.
Matrix matmul_tn(const Matrix& a, const Matrix& b);
void matmul_tn_into(Matrix& c, const Matrix& a, const Matrix& b);
/// C = A (m×k) * Bᵀ (n×k) — used for input gradients.
Matrix matmul_nt(const Matrix& a, const Matrix& b);
void matmul_nt_into(Matrix& c, const Matrix& a, const Matrix& b);
/// dst = srcᵀ (dst reshaped in place; must not alias src).
void transpose_into(Matrix& dst, const Matrix& src);
/// Adds a 1×n row vector to every row of a (m×n).
void add_row_inplace(Matrix& a, const Matrix& row);
/// 1×n column sums of a (m×n) — bias gradient.
Matrix column_sums(const Matrix& a);
void column_sums_into(Matrix& s, const Matrix& a);

}  // namespace drlnoc::nn
