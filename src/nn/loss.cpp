#include "nn/loss.h"

#include <cassert>
#include <cmath>

namespace drlnoc::nn {

LossResult mse_loss(const Matrix& pred, const Matrix& target) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  LossResult out;
  out.grad = Matrix(pred.rows(), pred.cols());
  const double n = static_cast<double>(pred.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.raw().size(); ++i) {
    const double d = pred.raw()[i] - target.raw()[i];
    acc += d * d;
    out.grad.raw()[i] = 2.0 * d / n;
  }
  out.loss = acc / n;
  return out;
}

LossResult huber_loss(const Matrix& pred, const Matrix& target, double delta) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  LossResult out;
  out.grad = Matrix(pred.rows(), pred.cols());
  const double n = static_cast<double>(pred.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.raw().size(); ++i) {
    const double d = pred.raw()[i] - target.raw()[i];
    const double ad = std::abs(d);
    if (ad <= delta) {
      acc += 0.5 * d * d;
      out.grad.raw()[i] = d / n;
    } else {
      acc += delta * (ad - 0.5 * delta);
      out.grad.raw()[i] = (d > 0.0 ? delta : -delta) / n;
    }
  }
  out.loss = acc / n;
  return out;
}

MaskedLossResult masked_huber_loss(const Matrix& pred,
                                   const std::vector<int>& action,
                                   const std::vector<double>& target,
                                   const std::vector<double>& weight,
                                   double delta) {
  MaskedLossResult out;
  masked_huber_loss_into(out, pred, action, target, weight, delta);
  return out;
}

void masked_huber_loss_into(MaskedLossResult& out, const Matrix& pred,
                            const std::vector<int>& action,
                            const std::vector<double>& target,
                            const std::vector<double>& weight,
                            double delta) {
  assert(action.size() == pred.rows());
  assert(target.size() == pred.rows());
  assert(weight.size() == pred.rows());
  out.grad.resize(pred.rows(), pred.cols(), 0.0);
  out.td_abs.resize(pred.rows());
  const double n = static_cast<double>(pred.rows());
  double acc = 0.0;
  for (std::size_t r = 0; r < pred.rows(); ++r) {
    const auto a = static_cast<std::size_t>(action[r]);
    assert(a < pred.cols());
    const double d = pred.at(r, a) - target[r];
    out.td_abs[r] = std::abs(d);
    const double w = weight[r];
    if (std::abs(d) <= delta) {
      acc += w * 0.5 * d * d;
      out.grad.at(r, a) = w * d / n;
    } else {
      acc += w * delta * (std::abs(d) - 0.5 * delta);
      out.grad.at(r, a) = w * (d > 0.0 ? delta : -delta) / n;
    }
  }
  out.loss = acc / n;
}

}  // namespace drlnoc::nn
