#include "nn/matrix.h"

#include <cassert>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace drlnoc::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::resize(std::size_t rows, std::size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

std::vector<double> Matrix::row(std::size_t r) const {
  assert(r < rows_);
  return std::vector<double>(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                             data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

void Matrix::set_row(std::size_t r, const std::vector<double>& values) {
  assert(r < rows_ && values.size() == cols_);
  std::copy(values.begin(), values.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

double Matrix::norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

void Matrix::save(std::ostream& os) const {
  os << rows_ << ' ' << cols_ << '\n';
  os.precision(17);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    os << data_[i] << (i + 1 == data_.size() ? '\n' : ' ');
  }
}

Matrix Matrix::load(std::istream& is) {
  std::size_t rows = 0, cols = 0;
  if (!(is >> rows >> cols)) throw std::runtime_error("Matrix::load: header");
  Matrix m(rows, cols);
  for (double& v : m.data_) {
    if (!(is >> v)) throw std::runtime_error("Matrix::load: payload");
  }
  return m;
}

std::size_t argmax_row(const Matrix& m, std::size_t r) {
  assert(r < m.rows() && m.cols() > 0);
  const double* row = m.row_data(r);
  std::size_t best = 0;
  for (std::size_t c = 1; c < m.cols(); ++c) {
    if (row[c] > row[best]) best = c;
  }
  return best;
}

// The kernels below are raw-pointer, register-blocked rewrites of the
// original index-based loops. __restrict__ lets the compiler vectorise the
// contiguous inner loops (it cannot otherwise prove the output rows don't
// alias the inputs). Each output row accumulates FOUR nonzero rank-1 terms
// per pass, with the four adds written as a sequential chain — so every
// output element still sums its terms in ascending-k order with the
// exact-zero skip of the naive loops, and every result bit matches. The
// blocking matters because the naive form reloads and restores the whole C
// row once per k; the zero skip is also a real win on post-ReLU sparsity.

namespace {

/// Nonzero-term slab size (indices + coefficients staged on the stack) and
/// the register-tile width of the accumulation loop: 8 doubles = 4 SSE2 /
/// 2 AVX2 accumulator registers, held across the whole slab.
constexpr std::size_t kSlab = 256;
constexpr std::size_t kJTile = 8;

/// Accumulates `nnz` rank-1 terms into one C row: for each staged k (in
/// ascending order), ci[j] += av[t] * b(k, j). The j-tile keeps eight
/// output elements in registers across the whole slab, so C is loaded and
/// stored once per slab instead of once per term, and each element still
/// receives its terms one by one in ascending-k order (bit-exact).
inline void accumulate_row(double* __restrict__ ci, std::size_t n,
                           const double* __restrict__ pb,
                           const std::size_t* __restrict__ nz,
                           const double* __restrict__ av, std::size_t nnz) {
  std::size_t j = 0;
  for (; j + kJTile <= n; j += kJTile) {
    double acc[kJTile];
    for (std::size_t u = 0; u < kJTile; ++u) acc[u] = ci[j + u];
    for (std::size_t t = 0; t < nnz; ++t) {
      const double a = av[t];
      const double* bk = pb + nz[t] * n + j;
      for (std::size_t u = 0; u < kJTile; ++u) acc[u] += a * bk[u];
    }
    for (std::size_t u = 0; u < kJTile; ++u) ci[j + u] = acc[u];
  }
  for (; j < n; ++j) {
    double acc = ci[j];
    for (std::size_t t = 0; t < nnz; ++t) acc += av[t] * pb[nz[t] * n + j];
    ci[j] = acc;
  }
}

}  // namespace

void matmul_into(Matrix& c, const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  assert(&c != &a && &c != &b);
  const std::size_t m = a.rows(), kk = a.cols(), n = b.cols();
  c.resize(m, n, 0.0);
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c.data();
  for (std::size_t i = 0; i < m; ++i) {
    const double* ai = pa + i * kk;
    double* ci = pc + i * n;
    // Per A row: stage the nonzero k's (ascending, slab at a time) with a
    // branchless cursor — the zero test is data-dependent and would
    // mispredict — then accumulate the slab into the C row.
    for (std::size_t k0 = 0; k0 < kk; k0 += kSlab) {
      const std::size_t k1 = std::min(kk, k0 + kSlab);
      std::size_t nz[kSlab];
      double av[kSlab];
      std::size_t nnz = 0;
      for (std::size_t k = k0; k < k1; ++k) {
        nz[nnz] = k;
        av[nnz] = ai[k];
        nnz += ai[k] != 0.0 ? 1 : 0;
      }
      if (nnz > 0) accumulate_row(ci, n, pb, nz, av, nnz);
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_into(c, a, b);
  return c;
}

void matmul_tn_into(Matrix& c, const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  assert(&c != &a && &c != &b);
  const std::size_t rows = a.rows(), m = a.cols(), n = b.cols();
  c.resize(m, n, 0.0);
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c.data();
  // Interchanged loops (i outer) leave each element's ascending-k term
  // order untouched — only k varies per element — and enable the same
  // slab staging over A's column i (stride-m reads happen once, into the
  // contiguous coefficient buffer).
  for (std::size_t i = 0; i < m; ++i) {
    const double* acol = pa + i;
    double* ci = pc + i * n;
    for (std::size_t k0 = 0; k0 < rows; k0 += kSlab) {
      const std::size_t k1 = std::min(rows, k0 + kSlab);
      std::size_t nz[kSlab];
      double av[kSlab];
      std::size_t nnz = 0;
      for (std::size_t k = k0; k < k1; ++k) {
        const double v = acol[k * m];
        nz[nnz] = k;
        av[nnz] = v;
        nnz += v != 0.0 ? 1 : 0;
      }
      if (nnz > 0) accumulate_row(ci, n, pb, nz, av, nnz);
    }
  }
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_tn_into(c, a, b);
  return c;
}

void matmul_nt_into(Matrix& c, const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  assert(&c != &a && &c != &b);
  const std::size_t m = a.rows(), n = b.rows(), kk = a.cols();
  c.resize(m, n, 0.0);
  const double* __restrict__ pa = a.data();
  const double* __restrict__ pb = b.data();
  double* __restrict__ pc = c.data();
  for (std::size_t i = 0; i < m; ++i) {
    const double* ai = pa + i * kk;
    double* ci = pc + i * n;
    // Four dot products at a time: independent scalar accumulators break
    // the FP-add dependency chain while each element still sums ascending-k.
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = pb + j * kk;
      const double* b1 = b0 + kk;
      const double* b2 = b1 + kk;
      const double* b3 = b2 + kk;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t k = 0; k < kk; ++k) {
        const double av = ai[k];
        s0 += av * b0[k];
        s1 += av * b1[k];
        s2 += av * b2[k];
        s3 += av * b3[k];
      }
      ci[j] = s0;
      ci[j + 1] = s1;
      ci[j + 2] = s2;
      ci[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const double* bj = pb + j * kk;
      double acc = 0.0;
      for (std::size_t k = 0; k < kk; ++k) acc += ai[k] * bj[k];
      ci[j] = acc;
    }
  }
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  Matrix c;
  matmul_nt_into(c, a, b);
  return c;
}

void transpose_into(Matrix& dst, const Matrix& src) {
  assert(&dst != &src);
  const std::size_t m = src.rows(), n = src.cols();
  dst.resize(n, m);
  const double* __restrict__ ps = src.data();
  double* __restrict__ pd = dst.data();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) pd[j * m + i] = ps[i * n + j];
  }
}

void add_row_inplace(Matrix& a, const Matrix& row) {
  assert(row.rows() == 1 && row.cols() == a.cols());
  assert(&a != &row);
  const double* __restrict__ pr = row.data();
  double* __restrict__ pa = a.data();
  const std::size_t n = a.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* ai = pa + i * n;
    for (std::size_t j = 0; j < n; ++j) ai[j] += pr[j];
  }
}

void column_sums_into(Matrix& s, const Matrix& a) {
  assert(&s != &a);
  const std::size_t n = a.cols();
  s.resize(1, n, 0.0);
  const double* __restrict__ pa = a.data();
  double* __restrict__ ps = s.data();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ai = pa + i * n;
    for (std::size_t j = 0; j < n; ++j) ps[j] += ai[j];
  }
}

Matrix column_sums(const Matrix& a) {
  Matrix s;
  column_sums_into(s, a);
  return s;
}

}  // namespace drlnoc::nn
