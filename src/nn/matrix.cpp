#include "nn/matrix.h"

#include <cassert>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace drlnoc::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::resize(std::size_t rows, std::size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

std::vector<double> Matrix::row(std::size_t r) const {
  assert(r < rows_);
  return std::vector<double>(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                             data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

void Matrix::set_row(std::size_t r, const std::vector<double>& values) {
  assert(r < rows_ && values.size() == cols_);
  std::copy(values.begin(), values.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

double Matrix::norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

void Matrix::save(std::ostream& os) const {
  os << rows_ << ' ' << cols_ << '\n';
  os.precision(17);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    os << data_[i] << (i + 1 == data_.size() ? '\n' : ' ');
  }
}

Matrix Matrix::load(std::istream& is) {
  std::size_t rows = 0, cols = 0;
  if (!(is >> rows >> cols)) throw std::runtime_error("Matrix::load: header");
  Matrix m(rows, cols);
  for (double& v : m.data_) {
    if (!(is >> v)) throw std::runtime_error("Matrix::load: payload");
  }
  return m;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols(), 0.0);
  for (std::size_t k = 0; k < a.rows(); ++k) {
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = a.at(k, i);
      if (aki == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aki * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc += a.at(i, k) * b.at(j, k);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

void add_row_inplace(Matrix& a, const Matrix& row) {
  assert(row.rows() == 1 && row.cols() == a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      a.at(i, j) += row.at(0, j);
    }
  }
}

Matrix column_sums(const Matrix& a) {
  Matrix s(1, a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      s.at(0, j) += a.at(i, j);
    }
  }
  return s;
}

}  // namespace drlnoc::nn
