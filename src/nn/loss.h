// Loss functions. Each returns the scalar loss (mean over contributing
// elements) and the gradient matrix dL/dpred to feed Mlp::backward().
// The masked variants update only the chosen-action entries — the DQN
// training signal, where the network outputs all Q(s,·) but only Q(s,a) has
// a regression target.
#pragma once

#include <utility>
#include <vector>

#include "nn/matrix.h"

namespace drlnoc::nn {

struct LossResult {
  double loss = 0.0;
  Matrix grad;  ///< same shape as pred
};

/// Mean squared error over all elements.
LossResult mse_loss(const Matrix& pred, const Matrix& target);

/// Huber (smooth-L1) with threshold delta over all elements.
LossResult huber_loss(const Matrix& pred, const Matrix& target,
                      double delta = 1.0);

/// Per-row masked Huber: row i contributes only column action[i], with
/// target value target[i] and importance weight weight[i]. Returns the
/// weighted mean loss; grad rows are zero outside the selected column.
/// Also reports per-row absolute TD errors (for prioritized replay).
struct MaskedLossResult {
  double loss = 0.0;
  Matrix grad;
  std::vector<double> td_abs;  ///< |pred - target| per row
};

MaskedLossResult masked_huber_loss(const Matrix& pred,
                                   const std::vector<int>& action,
                                   const std::vector<double>& target,
                                   const std::vector<double>& weight,
                                   double delta = 1.0);

/// Allocation-free variant: reuses `out`'s grad matrix and td_abs vector
/// (the DQN learn step calls this every gradient step with a persistent
/// workspace). Results are bit-identical to masked_huber_loss().
void masked_huber_loss_into(MaskedLossResult& out, const Matrix& pred,
                            const std::vector<int>& action,
                            const std::vector<double>& target,
                            const std::vector<double>& weight,
                            double delta = 1.0);

}  // namespace drlnoc::nn
