#include "nn/optimizer.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace drlnoc::nn {

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {
  if (lr <= 0.0) throw std::invalid_argument("learning rate must be > 0");
}

void Sgd::step(const std::vector<Matrix*>& params,
               const std::vector<Matrix*>& grads) {
  assert(params.size() == grads.size());
  if (velocity_.size() != params.size()) {
    velocity_.assign(params.size(), {});
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& p = params[i]->raw();
    const auto& g = grads[i]->raw();
    assert(p.size() == g.size());
    if (momentum_ > 0.0) {
      auto& v = velocity_[i];
      if (v.size() != p.size()) v.assign(p.size(), 0.0);
      for (std::size_t j = 0; j < p.size(); ++j) {
        v[j] = momentum_ * v[j] - lr_ * g[j];
        p[j] += v[j];
      }
    } else {
      for (std::size_t j = 0; j < p.size(); ++j) p[j] -= lr_ * g[j];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  if (lr <= 0.0) throw std::invalid_argument("learning rate must be > 0");
}

void Adam::reset() {
  t_ = 0;
  m_.clear();
  v_.clear();
}

void Adam::step(const std::vector<Matrix*>& params,
                const std::vector<Matrix*>& grads) {
  assert(params.size() == grads.size());
  if (m_.size() != params.size()) {
    m_.assign(params.size(), {});
    v_.assign(params.size(), {});
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& p = params[i]->raw();
    const auto& g = grads[i]->raw();
    assert(p.size() == g.size());
    auto& m = m_[i];
    auto& v = v_[i];
    if (m.size() != p.size()) {
      m.assign(p.size(), 0.0);
      v.assign(p.size(), 0.0);
    }
    for (std::size_t j = 0; j < p.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j];
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      p[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& kind, double lr) {
  if (kind == "sgd") return std::make_unique<Sgd>(lr);
  if (kind == "sgdm") return std::make_unique<Sgd>(lr, 0.9);
  if (kind == "adam") return std::make_unique<Adam>(lr);
  throw std::invalid_argument("unknown optimizer: " + kind);
}

}  // namespace drlnoc::nn
