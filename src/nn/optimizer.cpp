#include "nn/optimizer.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace drlnoc::nn {

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {
  if (lr <= 0.0) throw std::invalid_argument("learning rate must be > 0");
}

void Sgd::step(const std::vector<Matrix*>& params,
               const std::vector<Matrix*>& grads) {
  assert(params.size() == grads.size());
  if (velocity_.size() != params.size()) {
    velocity_.assign(params.size(), {});
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& p = params[i]->raw();
    const auto& g = grads[i]->raw();
    assert(p.size() == g.size());
    if (momentum_ > 0.0) {
      auto& vel = velocity_[i];
      if (vel.size() != p.size()) vel.assign(p.size(), 0.0);
      double* __restrict__ pp = p.data();
      const double* __restrict__ pg = g.data();
      double* __restrict__ pv = vel.data();
      for (std::size_t j = 0; j < p.size(); ++j) {
        pv[j] = momentum_ * pv[j] - lr_ * pg[j];
        pp[j] += pv[j];
      }
    } else {
      double* __restrict__ pp = p.data();
      const double* __restrict__ pg = g.data();
      for (std::size_t j = 0; j < p.size(); ++j) pp[j] -= lr_ * pg[j];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  if (lr <= 0.0) throw std::invalid_argument("learning rate must be > 0");
}

void Adam::reset() {
  t_ = 0;
  m_.clear();
  v_.clear();
}

void Adam::step(const std::vector<Matrix*>& params,
                const std::vector<Matrix*>& grads) {
  assert(params.size() == grads.size());
  if (m_.size() != params.size()) {
    m_.assign(params.size(), {});
    v_.assign(params.size(), {});
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& p = params[i]->raw();
    const auto& g = grads[i]->raw();
    assert(p.size() == g.size());
    auto& m = m_[i];
    auto& v = v_[i];
    if (m.size() != p.size()) {
      m.assign(p.size(), 0.0);
      v.assign(p.size(), 0.0);
    }
    // Restrict pointers let the per-element div/sqrt chain vectorise
    // (divpd/sqrtpd are exactly rounded, so results are bit-identical to
    // the scalar loop).
    double* __restrict__ pp = p.data();
    const double* __restrict__ pg = g.data();
    double* __restrict__ pm = m.data();
    double* __restrict__ pv = v.data();
    for (std::size_t j = 0; j < p.size(); ++j) {
      pm[j] = beta1_ * pm[j] + (1.0 - beta1_) * pg[j];
      pv[j] = beta2_ * pv[j] + (1.0 - beta2_) * pg[j] * pg[j];
      const double mhat = pm[j] / bc1;
      const double vhat = pv[j] / bc2;
      pp[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& kind, double lr) {
  if (kind == "sgd") return std::make_unique<Sgd>(lr);
  if (kind == "sgdm") return std::make_unique<Sgd>(lr, 0.9);
  if (kind == "adam") return std::make_unique<Adam>(lr);
  throw std::invalid_argument("unknown optimizer: " + kind);
}

}  // namespace drlnoc::nn
