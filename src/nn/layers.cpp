#include "nn/layers.h"

#include <cassert>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace drlnoc::nn {

Linear::Linear(std::size_t in, std::size_t out)
    : w_(in, out), b_(1, out), gw_(in, out), gb_(1, out) {}

void Linear::init_he(util::Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(w_.rows()));
  for (double& v : w_.raw()) v = rng.uniform(-bound, bound);
  b_.fill(0.0);
}

void Linear::init_xavier(util::Rng& rng) {
  const double bound =
      std::sqrt(6.0 / static_cast<double>(w_.rows() + w_.cols()));
  for (double& v : w_.raw()) v = rng.uniform(-bound, bound);
  b_.fill(0.0);
}

void Linear::forward_into(const Matrix& x, Matrix& y) {
  assert(x.cols() == w_.rows());
  assert(&x != &y);
  cache_x_ = x;
  matmul_into(y, x, w_);
  add_row_inplace(y, b_);
}

Matrix Linear::forward(const Matrix& x) {
  Matrix y;
  forward_into(x, y);
  return y;
}

void Linear::infer_into(const Matrix& x, Matrix& y) {
  assert(x.cols() == w_.rows());
  assert(&x != &y);
  matmul_into(y, x, w_);
  add_row_inplace(y, b_);
}

namespace {

/// Nonzero count (also reports whether every entry is finite); one cheap
/// pass used to pick the cheaper, equally bit-exact formulation of the
/// weight-gradient matmul below.
std::size_t count_nonzero(const Matrix& m, bool& all_finite) {
  std::size_t nnz = 0;
  bool finite = true;
  const double* p = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) {
    nnz += p[i] != 0.0 ? 1 : 0;
    finite &= std::isfinite(p[i]);
  }
  all_finite = finite;
  return nnz;
}

/// stage = xᵀ·g, computed either directly (kernel skips zero x entries) or
/// as (gᵀ·x)ᵀ (kernel skips zero g entries), whichever formulation visits
/// fewer nonzero rank-1 terms. With finite operands both orders sum each
/// output element in ascending batch order over the same nonzero products,
/// so the result bits are identical — the masked DQN loss makes g extremely
/// sparse, and ReLU makes x sparse, so the winner varies per layer. A
/// non-finite entry could make the two skip sets observable (NaN·0), so
/// that case pins the direct (pre-refactor) formulation.
void weight_grad_into(Matrix& stage, Matrix& scratch, const Matrix& x,
                      const Matrix& g) {
  bool x_finite = true, g_finite = true;
  const std::size_t direct_cost = count_nonzero(x, x_finite) * g.cols();
  const std::size_t swapped_cost =
      count_nonzero(g, g_finite) * x.cols() + x.cols() * g.cols();
  if (x_finite && g_finite && swapped_cost < direct_cost) {
    matmul_tn_into(scratch, g, x);
    transpose_into(stage, scratch);
  } else {
    matmul_tn_into(stage, x, g);
  }
}

}  // namespace

void Linear::backward_params_only(const Matrix& grad_out,
                                  Matrix& /*scratch*/) {
  assert(grad_out.rows() == cache_x_.rows() && grad_out.cols() == w_.cols());
  weight_grad_into(gw_stage_, w_t_, cache_x_, grad_out);
  gw_ += gw_stage_;
  column_sums_into(gb_stage_, grad_out);
  gb_ += gb_stage_;
}

void Linear::backward_into(const Matrix& grad_out, Matrix& grad_in) {
  assert(grad_out.rows() == cache_x_.rows() && grad_out.cols() == w_.cols());
  assert(&grad_out != &grad_in);
  weight_grad_into(gw_stage_, w_t_, cache_x_, grad_out);
  gw_ += gw_stage_;
  column_sums_into(gb_stage_, grad_out);
  gb_ += gb_stage_;
  transpose_into(w_t_, w_);
  matmul_into(grad_in, grad_out, w_t_);
}

Matrix Linear::backward(const Matrix& grad_out) {
  Matrix grad_in;
  backward_into(grad_out, grad_in);
  return grad_in;
}

void Linear::zero_grads() {
  gw_.fill(0.0);
  gb_.fill(0.0);
}

std::unique_ptr<Layer> Linear::clone() const {
  auto copy = std::make_unique<Linear>(w_.rows(), w_.cols());
  copy->w_ = w_;
  copy->b_ = b_;
  return copy;
}

void ReLU::forward_into(const Matrix& x, Matrix& y) {
  assert(&x != &y);
  cache_x_ = x;
  y.resize_fast(x.rows(), x.cols());
  const double* __restrict__ px = x.data();
  double* __restrict__ py = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) py[i] = px[i] > 0.0 ? px[i] : 0.0;
}

Matrix ReLU::forward(const Matrix& x) {
  Matrix y;
  forward_into(x, y);
  return y;
}

void ReLU::infer_into(const Matrix& x, Matrix& y) {
  assert(&x != &y);
  y.resize_fast(x.rows(), x.cols());
  const double* __restrict__ px = x.data();
  double* __restrict__ py = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) py[i] = px[i] > 0.0 ? px[i] : 0.0;
}

void ReLU::backward_into(const Matrix& grad_out, Matrix& grad_in) {
  assert(grad_out.rows() == cache_x_.rows());
  assert(&grad_out != &grad_in);
  grad_in.resize_fast(grad_out.rows(), grad_out.cols());
  const double* __restrict__ pg = grad_out.data();
  const double* __restrict__ pc = cache_x_.data();
  double* __restrict__ pi = grad_in.data();
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    pi[i] = pc[i] <= 0.0 ? 0.0 : pg[i];
  }
}

Matrix ReLU::backward(const Matrix& grad_out) {
  Matrix grad_in;
  backward_into(grad_out, grad_in);
  return grad_in;
}

void Tanh::forward_into(const Matrix& x, Matrix& y) {
  assert(&x != &y);
  y.resize_fast(x.rows(), x.cols());
  const double* __restrict__ px = x.data();
  double* __restrict__ py = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) py[i] = std::tanh(px[i]);
  cache_y_ = y;
}

Matrix Tanh::forward(const Matrix& x) {
  Matrix y;
  forward_into(x, y);
  return y;
}

void Tanh::infer_into(const Matrix& x, Matrix& y) {
  assert(&x != &y);
  y.resize_fast(x.rows(), x.cols());
  const double* __restrict__ px = x.data();
  double* __restrict__ py = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) py[i] = std::tanh(px[i]);
}

void Tanh::backward_into(const Matrix& grad_out, Matrix& grad_in) {
  assert(&grad_out != &grad_in);
  grad_in.resize_fast(grad_out.rows(), grad_out.cols());
  const double* __restrict__ pg = grad_out.data();
  const double* __restrict__ pc = cache_y_.data();
  double* __restrict__ pi = grad_in.data();
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    pi[i] = pg[i] * (1.0 - pc[i] * pc[i]);
  }
}

Matrix Tanh::backward(const Matrix& grad_out) {
  Matrix grad_in;
  backward_into(grad_out, grad_in);
  return grad_in;
}

DuelingHead::DuelingHead(std::size_t in, std::size_t actions)
    : value_(in, 1), advantage_(in, actions) {}

void DuelingHead::init_he(util::Rng& rng) {
  value_.init_he(rng);
  advantage_.init_he(rng);
}

void DuelingHead::forward_into(const Matrix& x, Matrix& y) {
  assert(&x != &y);
  value_.forward_into(x, v_ws_);      // (batch, 1)
  advantage_.forward_into(x, a_ws_);  // (batch, n)
  y.resize_fast(a_ws_.rows(), a_ws_.cols());
  const auto n = static_cast<double>(a_ws_.cols());
  for (std::size_t r = 0; r < a_ws_.rows(); ++r) {
    double mean = 0.0;
    for (std::size_t c = 0; c < a_ws_.cols(); ++c) mean += a_ws_.at(r, c);
    mean /= n;
    for (std::size_t c = 0; c < a_ws_.cols(); ++c) {
      y.at(r, c) = v_ws_.at(r, 0) + a_ws_.at(r, c) - mean;
    }
  }
}

Matrix DuelingHead::forward(const Matrix& x) {
  Matrix y;
  forward_into(x, y);
  return y;
}

void DuelingHead::infer_into(const Matrix& x, Matrix& y) {
  assert(&x != &y);
  value_.infer_into(x, v_ws_);
  advantage_.infer_into(x, a_ws_);
  y.resize_fast(a_ws_.rows(), a_ws_.cols());
  const auto n = static_cast<double>(a_ws_.cols());
  for (std::size_t r = 0; r < a_ws_.rows(); ++r) {
    double mean = 0.0;
    for (std::size_t c = 0; c < a_ws_.cols(); ++c) mean += a_ws_.at(r, c);
    mean /= n;
    for (std::size_t c = 0; c < a_ws_.cols(); ++c) {
      y.at(r, c) = v_ws_.at(r, 0) + a_ws_.at(r, c) - mean;
    }
  }
}

void DuelingHead::split_grad(const Matrix& grad_out) {
  // q_rc = v_r + a_rc - mean_c(a_r) =>
  //   dv_r  = sum_c dq_rc
  //   da_rc = dq_rc - mean_c(dq_r)
  dv_ws_.resize(grad_out.rows(), 1);
  da_ws_ = grad_out;
  const auto n = static_cast<double>(grad_out.cols());
  for (std::size_t r = 0; r < grad_out.rows(); ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < grad_out.cols(); ++c)
      total += grad_out.at(r, c);
    dv_ws_.at(r, 0) = total;
    const double mean = total / n;
    for (std::size_t c = 0; c < grad_out.cols(); ++c)
      da_ws_.at(r, c) = grad_out.at(r, c) - mean;
  }
}

void DuelingHead::backward_into(const Matrix& grad_out, Matrix& grad_in) {
  assert(&grad_out != &grad_in);
  split_grad(grad_out);
  value_.backward_into(dv_ws_, grad_in);
  advantage_.backward_into(da_ws_, dx_ws_);
  grad_in += dx_ws_;
}

Matrix DuelingHead::backward(const Matrix& grad_out) {
  Matrix grad_in;
  backward_into(grad_out, grad_in);
  return grad_in;
}

void DuelingHead::backward_params_only(const Matrix& grad_out,
                                       Matrix& scratch) {
  split_grad(grad_out);
  value_.backward_params_only(dv_ws_, scratch);
  advantage_.backward_params_only(da_ws_, scratch);
}

std::vector<Matrix*> DuelingHead::params() {
  std::vector<Matrix*> out = value_.params();
  for (Matrix* p : advantage_.params()) out.push_back(p);
  return out;
}

std::vector<Matrix*> DuelingHead::grads() {
  std::vector<Matrix*> out = value_.grads();
  for (Matrix* g : advantage_.grads()) out.push_back(g);
  return out;
}

std::vector<const Matrix*> DuelingHead::params() const {
  std::vector<const Matrix*> out = value_.params();
  for (const Matrix* p : advantage_.params()) out.push_back(p);
  return out;
}

std::vector<const Matrix*> DuelingHead::grads() const {
  std::vector<const Matrix*> out = value_.grads();
  for (const Matrix* g : advantage_.grads()) out.push_back(g);
  return out;
}

void DuelingHead::zero_grads() {
  value_.zero_grads();
  advantage_.zero_grads();
}

std::unique_ptr<Layer> DuelingHead::clone() const {
  auto copy = std::make_unique<DuelingHead>(fan_in(), actions());
  const std::vector<const Matrix*> src = params();
  const std::vector<Matrix*> dst = copy->params();
  for (std::size_t i = 0; i < src.size(); ++i) *dst[i] = *src[i];
  return copy;
}

Mlp::Mlp(const std::vector<std::size_t>& sizes, Activation act,
         util::Rng& rng, bool dueling)
    : activation_(act), dueling_(dueling), sizes_(sizes) {
  if (sizes.size() < 2) throw std::invalid_argument("Mlp needs >= 2 sizes");
  input_size_ = sizes.front();
  output_size_ = sizes.back();
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    const bool last = i + 2 == sizes.size();
    if (last && dueling) {
      auto head = std::make_unique<DuelingHead>(sizes[i], sizes[i + 1]);
      head->init_he(rng);
      layers_.push_back(std::move(head));
      break;
    }
    auto linear = std::make_unique<Linear>(sizes[i], sizes[i + 1]);
    if (act == Activation::kReLU) linear->init_he(rng);
    else linear->init_xavier(rng);
    layers_.push_back(std::move(linear));
    if (!last) {
      if (act == Activation::kReLU) layers_.push_back(std::make_unique<ReLU>());
      else layers_.push_back(std::make_unique<Tanh>());
    }
  }
}

Mlp::Mlp(const Mlp& other)
    : input_size_(other.input_size_), output_size_(other.output_size_),
      activation_(other.activation_), dueling_(other.dueling_),
      sizes_(other.sizes_) {
  // Workspace buffers and pointer caches are intentionally not copied; they
  // rebuild lazily against this copy's own layers.
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
}

Mlp& Mlp::operator=(const Mlp& other) {
  if (this == &other) return *this;
  Mlp copy(other);
  *this = std::move(copy);
  return *this;
}

Matrix Mlp::forward(const Matrix& x) {
  Matrix h = x;
  for (auto& layer : layers_) h = layer->forward(h);
  return h;
}

Matrix Mlp::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

const Matrix& Mlp::forward_ws(const Matrix& x) {
  assert(!layers_.empty());
  acts_.resize(layers_.size());  // no-op after the first call
  const Matrix* in = &x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->forward_into(*in, acts_[i]);
    in = &acts_[i];
  }
  return *in;
}

const Matrix& Mlp::backward_ws(const Matrix& grad_out) {
  assert(!layers_.empty());
  const Matrix* g = &grad_out;
  bool ping = true;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    Matrix& dst = ping ? grad_ping_ : grad_pong_;
    (*it)->backward_into(*g, dst);
    g = &dst;
    ping = !ping;
  }
  return *g;
}

const Matrix& Mlp::infer_ws(const Matrix& x) {
  assert(!layers_.empty());
  acts_.resize(layers_.size());  // no-op after the first call
  const Matrix* in = &x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->infer_into(*in, acts_[i]);
    in = &acts_[i];
  }
  return *in;
}

void Mlp::backward_params_ws(const Matrix& grad_out) {
  assert(!layers_.empty());
  const Matrix* g = &grad_out;
  bool ping = true;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    Matrix& dst = ping ? grad_ping_ : grad_pong_;
    if (it + 1 == layers_.rend()) {
      // First layer of the stack: its input gradient has no consumer.
      (*it)->backward_params_only(*g, dst);
      return;
    }
    (*it)->backward_into(*g, dst);
    g = &dst;
    ping = !ping;
  }
}

void Mlp::zero_grads() {
  for (auto& layer : layers_) layer->zero_grads();
}

const std::vector<Matrix*>& Mlp::params() {
  if (params_cache_.empty()) {
    for (auto& layer : layers_) {
      for (Matrix* p : layer->params()) params_cache_.push_back(p);
    }
  }
  return params_cache_;
}

const std::vector<Matrix*>& Mlp::grads() {
  if (grads_cache_.empty()) {
    for (auto& layer : layers_) {
      for (Matrix* g : layer->grads()) grads_cache_.push_back(g);
    }
  }
  return grads_cache_;
}

std::vector<const Matrix*> Mlp::params() const {
  std::vector<const Matrix*> out;
  for (const auto& layer : layers_) {
    for (const Matrix* p :
         static_cast<const Layer&>(*layer).params()) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<const Matrix*> Mlp::grads() const {
  std::vector<const Matrix*> out;
  for (const auto& layer : layers_) {
    for (const Matrix* g : static_cast<const Layer&>(*layer).grads()) {
      out.push_back(g);
    }
  }
  return out;
}

std::size_t Mlp::num_parameters() const {
  std::size_t total = 0;
  for (const Matrix* p : params()) total += p->size();
  return total;
}

void Mlp::copy_weights_from(const Mlp& other) {
  const std::vector<Matrix*>& dst = params();
  const std::vector<const Matrix*> src = other.params();
  if (dst.size() != src.size())
    throw std::invalid_argument("copy_weights_from: structure mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (dst[i]->rows() != src[i]->rows() || dst[i]->cols() != src[i]->cols())
      throw std::invalid_argument("copy_weights_from: shape mismatch");
    *dst[i] = *src[i];
  }
}

void Mlp::soft_update_from(const Mlp& other, double tau) {
  const std::vector<Matrix*>& dst = params();
  const std::vector<const Matrix*> src = other.params();
  assert(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) {
    auto& d = dst[i]->raw();
    const auto& s = src[i]->raw();
    for (std::size_t j = 0; j < d.size(); ++j) {
      d[j] = tau * s[j] + (1.0 - tau) * d[j];
    }
  }
}

double Mlp::clip_grad_norm(double max_norm) {
  double total_sq = 0.0;
  for (Matrix* g : grads()) {
    for (double v : g->raw()) total_sq += v * v;
  }
  const double norm = std::sqrt(total_sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (Matrix* g : grads()) *g *= scale;
  }
  return norm;
}

void Mlp::save(std::ostream& os) const {
  os << "mlp " << sizes_.size() << ' ';
  for (std::size_t s : sizes_) os << s << ' ';
  os << (activation_ == Activation::kReLU ? "relu" : "tanh") << ' '
     << (dueling_ ? "dueling" : "plain") << '\n';
  for (const Matrix* p : params()) p->save(os);
}

Mlp Mlp::load(std::istream& is) {
  // A blob from outside the process is untrusted: the layer count and every
  // layer width are range-checked BEFORE any allocation sized by them, and
  // unknown tokens are hard errors — the old silent ReLU/non-dueling
  // fallback could load a tanh or dueling policy as the wrong architecture
  // with plausible-looking (wrong) Q-values.
  constexpr std::size_t kMaxLayers = 64;
  constexpr std::size_t kMaxWidth = 1u << 20;
  std::string magic;
  if (!(is >> magic) || magic != "mlp") {
    throw std::runtime_error("Mlp::load: bad magic '" + magic +
                             "' (expected 'mlp')");
  }
  std::size_t n = 0;
  if (!(is >> n)) throw std::runtime_error("Mlp::load: missing layer count");
  if (n < 2 || n > kMaxLayers) {
    throw std::runtime_error("Mlp::load: implausible layer count " +
                             std::to_string(n) + " (expected 2.." +
                             std::to_string(kMaxLayers) + ")");
  }
  std::vector<std::size_t> sizes(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(is >> sizes[i])) {
      throw std::runtime_error("Mlp::load: truncated size list (got " +
                               std::to_string(i) + " of " +
                               std::to_string(n) + " sizes)");
    }
    if (sizes[i] < 1 || sizes[i] > kMaxWidth) {
      throw std::runtime_error("Mlp::load: implausible layer size " +
                               std::to_string(sizes[i]) + " at index " +
                               std::to_string(i) + " (expected 1.." +
                               std::to_string(kMaxWidth) + ")");
    }
  }
  std::string act, head;
  if (!(is >> act >> head)) throw std::runtime_error("Mlp::load: header tail");
  Activation activation;
  if (act == "relu") {
    activation = Activation::kReLU;
  } else if (act == "tanh") {
    activation = Activation::kTanh;
  } else {
    throw std::runtime_error("Mlp::load: unknown activation '" + act +
                             "' (expected relu|tanh)");
  }
  bool dueling;
  if (head == "dueling") {
    dueling = true;
  } else if (head == "plain") {
    dueling = false;
  } else {
    throw std::runtime_error("Mlp::load: unknown head '" + head +
                             "' (expected dueling|plain)");
  }
  util::Rng dummy(0);
  Mlp mlp(sizes, activation, dummy, dueling);
  const std::vector<Matrix*>& params = mlp.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    Matrix loaded;
    try {
      loaded = Matrix::load(is);
    } catch (const std::exception& e) {
      throw std::runtime_error("Mlp::load: parameter " + std::to_string(i) +
                               " of " + std::to_string(params.size()) + ": " +
                               e.what());
    }
    if (loaded.rows() != params[i]->rows() ||
        loaded.cols() != params[i]->cols()) {
      throw std::runtime_error(
          "Mlp::load: parameter " + std::to_string(i) + " of " +
          std::to_string(params.size()) + " is " +
          std::to_string(loaded.rows()) + "x" + std::to_string(loaded.cols()) +
          " but the declared sizes require " +
          std::to_string(params[i]->rows()) + "x" +
          std::to_string(params[i]->cols()));
    }
    *params[i] = std::move(loaded);
  }
  return mlp;
}

}  // namespace drlnoc::nn
