#include "nn/layers.h"

#include <cassert>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace drlnoc::nn {

Linear::Linear(std::size_t in, std::size_t out)
    : w_(in, out), b_(1, out), gw_(in, out), gb_(1, out) {}

void Linear::init_he(util::Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(w_.rows()));
  for (double& v : w_.raw()) v = rng.uniform(-bound, bound);
  b_.fill(0.0);
}

void Linear::init_xavier(util::Rng& rng) {
  const double bound =
      std::sqrt(6.0 / static_cast<double>(w_.rows() + w_.cols()));
  for (double& v : w_.raw()) v = rng.uniform(-bound, bound);
  b_.fill(0.0);
}

Matrix Linear::forward(const Matrix& x) {
  assert(x.cols() == w_.rows());
  cache_x_ = x;
  Matrix y = matmul(x, w_);
  add_row_inplace(y, b_);
  return y;
}

Matrix Linear::backward(const Matrix& grad_out) {
  assert(grad_out.rows() == cache_x_.rows() && grad_out.cols() == w_.cols());
  gw_ += matmul_tn(cache_x_, grad_out);
  gb_ += column_sums(grad_out);
  return matmul_nt(grad_out, w_);
}

void Linear::zero_grads() {
  gw_.fill(0.0);
  gb_.fill(0.0);
}

std::unique_ptr<Layer> Linear::clone() const {
  auto copy = std::make_unique<Linear>(w_.rows(), w_.cols());
  copy->w_ = w_;
  copy->b_ = b_;
  return copy;
}

Matrix ReLU::forward(const Matrix& x) {
  cache_x_ = x;
  Matrix y = x;
  for (double& v : y.raw()) v = v > 0.0 ? v : 0.0;
  return y;
}

Matrix ReLU::backward(const Matrix& grad_out) {
  assert(grad_out.rows() == cache_x_.rows());
  Matrix g = grad_out;
  for (std::size_t i = 0; i < g.raw().size(); ++i) {
    if (cache_x_.raw()[i] <= 0.0) g.raw()[i] = 0.0;
  }
  return g;
}

Matrix Tanh::forward(const Matrix& x) {
  Matrix y = x;
  for (double& v : y.raw()) v = std::tanh(v);
  cache_y_ = y;
  return y;
}

Matrix Tanh::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  for (std::size_t i = 0; i < g.raw().size(); ++i) {
    const double y = cache_y_.raw()[i];
    g.raw()[i] *= 1.0 - y * y;
  }
  return g;
}

DuelingHead::DuelingHead(std::size_t in, std::size_t actions)
    : value_(in, 1), advantage_(in, actions) {}

void DuelingHead::init_he(util::Rng& rng) {
  value_.init_he(rng);
  advantage_.init_he(rng);
}

Matrix DuelingHead::forward(const Matrix& x) {
  const Matrix v = value_.forward(x);        // (batch, 1)
  const Matrix a = advantage_.forward(x);    // (batch, n)
  Matrix q = a;
  const auto n = static_cast<double>(a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double mean = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) mean += a.at(r, c);
    mean /= n;
    for (std::size_t c = 0; c < a.cols(); ++c) {
      q.at(r, c) = v.at(r, 0) + a.at(r, c) - mean;
    }
  }
  return q;
}

Matrix DuelingHead::backward(const Matrix& grad_out) {
  // q_rc = v_r + a_rc - mean_c(a_r) =>
  //   dv_r  = sum_c dq_rc
  //   da_rc = dq_rc - mean_c(dq_r)
  Matrix dv(grad_out.rows(), 1);
  Matrix da = grad_out;
  const auto n = static_cast<double>(grad_out.cols());
  for (std::size_t r = 0; r < grad_out.rows(); ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < grad_out.cols(); ++c)
      total += grad_out.at(r, c);
    dv.at(r, 0) = total;
    const double mean = total / n;
    for (std::size_t c = 0; c < grad_out.cols(); ++c)
      da.at(r, c) = grad_out.at(r, c) - mean;
  }
  Matrix dx = value_.backward(dv);
  dx += advantage_.backward(da);
  return dx;
}

std::vector<Matrix*> DuelingHead::params() {
  std::vector<Matrix*> out = value_.params();
  for (Matrix* p : advantage_.params()) out.push_back(p);
  return out;
}

std::vector<Matrix*> DuelingHead::grads() {
  std::vector<Matrix*> out = value_.grads();
  for (Matrix* g : advantage_.grads()) out.push_back(g);
  return out;
}

void DuelingHead::zero_grads() {
  value_.zero_grads();
  advantage_.zero_grads();
}

std::unique_ptr<Layer> DuelingHead::clone() const {
  auto copy = std::make_unique<DuelingHead>(fan_in(), actions());
  auto src = const_cast<DuelingHead*>(this)->params();
  auto dst = copy->params();
  for (std::size_t i = 0; i < src.size(); ++i) *dst[i] = *src[i];
  return copy;
}

Mlp::Mlp(const std::vector<std::size_t>& sizes, Activation act,
         util::Rng& rng, bool dueling)
    : activation_(act), dueling_(dueling), sizes_(sizes) {
  if (sizes.size() < 2) throw std::invalid_argument("Mlp needs >= 2 sizes");
  input_size_ = sizes.front();
  output_size_ = sizes.back();
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    const bool last = i + 2 == sizes.size();
    if (last && dueling) {
      auto head = std::make_unique<DuelingHead>(sizes[i], sizes[i + 1]);
      head->init_he(rng);
      layers_.push_back(std::move(head));
      break;
    }
    auto linear = std::make_unique<Linear>(sizes[i], sizes[i + 1]);
    if (act == Activation::kReLU) linear->init_he(rng);
    else linear->init_xavier(rng);
    layers_.push_back(std::move(linear));
    if (!last) {
      if (act == Activation::kReLU) layers_.push_back(std::make_unique<ReLU>());
      else layers_.push_back(std::make_unique<Tanh>());
    }
  }
}

Mlp::Mlp(const Mlp& other)
    : input_size_(other.input_size_), output_size_(other.output_size_),
      activation_(other.activation_), dueling_(other.dueling_),
      sizes_(other.sizes_) {
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
}

Mlp& Mlp::operator=(const Mlp& other) {
  if (this == &other) return *this;
  Mlp copy(other);
  *this = std::move(copy);
  return *this;
}

Matrix Mlp::forward(const Matrix& x) {
  Matrix h = x;
  for (auto& layer : layers_) h = layer->forward(h);
  return h;
}

Matrix Mlp::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Mlp::zero_grads() {
  for (auto& layer : layers_) layer->zero_grads();
}

std::vector<Matrix*> Mlp::params() {
  std::vector<Matrix*> out;
  for (auto& layer : layers_) {
    for (Matrix* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::vector<Matrix*> Mlp::grads() {
  std::vector<Matrix*> out;
  for (auto& layer : layers_) {
    for (Matrix* g : layer->grads()) out.push_back(g);
  }
  return out;
}

std::size_t Mlp::num_parameters() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    for (Matrix* p : const_cast<Layer&>(*layer).params()) total += p->size();
  }
  return total;
}

void Mlp::copy_weights_from(const Mlp& other) {
  auto dst = params();
  auto src = const_cast<Mlp&>(other).params();
  if (dst.size() != src.size())
    throw std::invalid_argument("copy_weights_from: structure mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (dst[i]->rows() != src[i]->rows() || dst[i]->cols() != src[i]->cols())
      throw std::invalid_argument("copy_weights_from: shape mismatch");
    *dst[i] = *src[i];
  }
}

void Mlp::soft_update_from(const Mlp& other, double tau) {
  auto dst = params();
  auto src = const_cast<Mlp&>(other).params();
  assert(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) {
    auto& d = dst[i]->raw();
    const auto& s = src[i]->raw();
    for (std::size_t j = 0; j < d.size(); ++j) {
      d[j] = tau * s[j] + (1.0 - tau) * d[j];
    }
  }
}

double Mlp::clip_grad_norm(double max_norm) {
  double total_sq = 0.0;
  for (Matrix* g : grads()) {
    for (double v : g->raw()) total_sq += v * v;
  }
  const double norm = std::sqrt(total_sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (Matrix* g : grads()) *g *= scale;
  }
  return norm;
}

void Mlp::save(std::ostream& os) const {
  os << "mlp " << sizes_.size() << ' ';
  for (std::size_t s : sizes_) os << s << ' ';
  os << (activation_ == Activation::kReLU ? "relu" : "tanh") << ' '
     << (dueling_ ? "dueling" : "plain") << '\n';
  for (const auto& layer : layers_) {
    for (Matrix* p : const_cast<Layer&>(*layer).params()) p->save(os);
  }
}

Mlp Mlp::load(std::istream& is) {
  std::string magic;
  std::size_t n = 0;
  if (!(is >> magic >> n) || magic != "mlp")
    throw std::runtime_error("Mlp::load: bad header");
  std::vector<std::size_t> sizes(n);
  for (auto& s : sizes) {
    if (!(is >> s)) throw std::runtime_error("Mlp::load: sizes");
  }
  std::string act, head;
  if (!(is >> act >> head)) throw std::runtime_error("Mlp::load: header tail");
  util::Rng dummy(0);
  Mlp mlp(sizes, act == "tanh" ? Activation::kTanh : Activation::kReLU,
          dummy, head == "dueling");
  for (Matrix* p : mlp.params()) *p = Matrix::load(is);
  return mlp;
}

}  // namespace drlnoc::nn
