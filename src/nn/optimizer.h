// First-order optimizers over (parameter, gradient) matrix pairs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.h"

namespace drlnoc::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;
  /// Applies one update; params[i] is updated in place from grads[i].
  /// Shapes must stay identical across calls (state is per-slot).
  virtual void step(const std::vector<Matrix*>& params,
                    const std::vector<Matrix*>& grads) = 0;
  virtual void reset() {}
};

/// SGD with optional classical momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0);
  std::string name() const override { return "sgd"; }
  void step(const std::vector<Matrix*>& params,
            const std::vector<Matrix*>& grads) override;
  void reset() override { velocity_.clear(); }

 private:
  double lr_;
  double momentum_;
  std::vector<std::vector<double>> velocity_;
};

/// Adam (Kingma & Ba, 2015).
class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  std::string name() const override { return "adam"; }
  void step(const std::vector<Matrix*>& params,
            const std::vector<Matrix*>& grads) override;
  void reset() override;

 private:
  double lr_, beta1_, beta2_, eps_;
  long long t_ = 0;
  std::vector<std::vector<double>> m_, v_;
};

std::unique_ptr<Optimizer> make_optimizer(const std::string& kind, double lr);

}  // namespace drlnoc::nn
