// Layers and the MLP container. Forward caches what backward needs; backward
// accumulates parameter gradients and returns the input gradient, so layers
// compose by simple chaining.
//
// Every layer offers two equivalent compute paths: the value-returning
// forward()/backward() convenience API, and the allocation-free
// forward_into()/backward_into() workspace API that writes into caller-owned
// buffers (used by Mlp::forward_ws / Mlp::backward_ws and the DQN learn
// step). Both paths produce bit-identical results.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.h"
#include "util/rng.h"

namespace drlnoc::nn {

class Layer {
 public:
  virtual ~Layer() = default;
  virtual std::string name() const = 0;
  /// x: (batch, in) -> (batch, out).
  virtual Matrix forward(const Matrix& x) = 0;
  /// grad wrt output -> grad wrt input; accumulates parameter grads.
  virtual Matrix backward(const Matrix& grad_out) = 0;
  /// Allocation-free paths: write the result into `y` / `grad_in`, which
  /// must not alias the input. The defaults fall back to the value API;
  /// concrete layers override with zero-allocation implementations.
  virtual void forward_into(const Matrix& x, Matrix& y) { y = forward(x); }
  virtual void backward_into(const Matrix& grad_out, Matrix& grad_in) {
    grad_in = backward(grad_out);
  }
  /// Inference-only forward: same outputs as forward_into, but skips the
  /// backward caches (target-network evaluation, greedy action selection).
  virtual void infer_into(const Matrix& x, Matrix& y) { forward_into(x, y); }
  /// Backward that only accumulates parameter gradients, skipping the
  /// input-gradient matmul — valid for the FIRST layer of a network, whose
  /// input gradient nobody consumes. `scratch` is workspace for the
  /// default fallback.
  virtual void backward_params_only(const Matrix& grad_out, Matrix& scratch) {
    backward_into(grad_out, scratch);
  }
  /// Parameter / gradient views (empty for activations).
  virtual std::vector<Matrix*> params() { return {}; }
  virtual std::vector<Matrix*> grads() { return {}; }
  virtual std::vector<const Matrix*> params() const { return {}; }
  virtual std::vector<const Matrix*> grads() const { return {}; }
  virtual void zero_grads() {}
  virtual std::unique_ptr<Layer> clone() const = 0;
};

/// Fully connected: y = x W + b, W is (in, out), b is (1, out).
class Linear : public Layer {
 public:
  Linear(std::size_t in, std::size_t out);
  /// He-uniform initialisation (good default for ReLU nets).
  void init_he(util::Rng& rng);
  /// Xavier-uniform initialisation (tanh nets).
  void init_xavier(util::Rng& rng);

  std::string name() const override { return "linear"; }
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  void forward_into(const Matrix& x, Matrix& y) override;
  void backward_into(const Matrix& grad_out, Matrix& grad_in) override;
  void infer_into(const Matrix& x, Matrix& y) override;
  void backward_params_only(const Matrix& grad_out, Matrix& scratch) override;
  std::vector<Matrix*> params() override { return {&w_, &b_}; }
  std::vector<Matrix*> grads() override { return {&gw_, &gb_}; }
  std::vector<const Matrix*> params() const override { return {&w_, &b_}; }
  std::vector<const Matrix*> grads() const override { return {&gw_, &gb_}; }
  void zero_grads() override;
  std::unique_ptr<Layer> clone() const override;

  Matrix& weights() { return w_; }
  Matrix& bias() { return b_; }
  std::size_t fan_in() const { return w_.rows(); }
  std::size_t fan_out() const { return w_.cols(); }

 private:
  Matrix w_, b_, gw_, gb_, cache_x_;
  // Gradient staging: matmul results land here, then accumulate into
  // gw_/gb_ with the same element-wise add as the value API (bit-identity
  // even when gradients are accumulated across multiple backward calls).
  Matrix gw_stage_, gb_stage_;
  // Wᵀ scratch: the input gradient grad_out·Wᵀ runs through the
  // vectorisable row-major matmul kernel instead of scalar dot products.
  // Bit-identical to matmul_nt: each element's terms stay in ascending-k
  // order, and the kernel's ±0-term skip cannot change a +0-seeded
  // accumulator (x + ±0 == x for every x the skip path can see).
  Matrix w_t_;
};

class ReLU : public Layer {
 public:
  std::string name() const override { return "relu"; }
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  void forward_into(const Matrix& x, Matrix& y) override;
  void backward_into(const Matrix& grad_out, Matrix& grad_in) override;
  void infer_into(const Matrix& x, Matrix& y) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>();
  }

 private:
  Matrix cache_x_;
};

class Tanh : public Layer {
 public:
  std::string name() const override { return "tanh"; }
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  void forward_into(const Matrix& x, Matrix& y) override;
  void backward_into(const Matrix& grad_out, Matrix& grad_in) override;
  void infer_into(const Matrix& x, Matrix& y) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Tanh>();
  }

 private:
  Matrix cache_y_;
};

/// Dueling head (Wang et al. 2016): splits the representation into a state
/// value V and advantages A, combining as Q = V + A - mean(A). Drop-in last
/// layer replacement for the plain Linear output in a Q-network.
class DuelingHead : public Layer {
 public:
  DuelingHead(std::size_t in, std::size_t actions);
  void init_he(util::Rng& rng);

  std::string name() const override { return "dueling"; }
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  void forward_into(const Matrix& x, Matrix& y) override;
  void backward_into(const Matrix& grad_out, Matrix& grad_in) override;
  void infer_into(const Matrix& x, Matrix& y) override;
  void backward_params_only(const Matrix& grad_out, Matrix& scratch) override;
  std::vector<Matrix*> params() override;
  std::vector<Matrix*> grads() override;
  std::vector<const Matrix*> params() const override;
  std::vector<const Matrix*> grads() const override;
  void zero_grads() override;
  std::unique_ptr<Layer> clone() const override;

  std::size_t fan_in() const { return value_.fan_in(); }
  std::size_t actions() const { return advantage_.fan_out(); }

 private:
  /// Splits dL/dq into the value gradient (dv_ws_) and the mean-centred
  /// advantage gradient (da_ws_): dv_r = Σ_c dq_rc, da_rc = dq_rc - mean.
  void split_grad(const Matrix& grad_out);

  Linear value_;      ///< in -> 1
  Linear advantage_;  ///< in -> actions
  // Workspace for the allocation-free paths.
  Matrix v_ws_, a_ws_, dv_ws_, da_ws_, dx_ws_;
};

enum class Activation { kReLU, kTanh };

/// Multi-layer perceptron: Linear (+activation) stack; the last Linear has no
/// activation (Q-values are unbounded).
class Mlp {
 public:
  Mlp() = default;
  /// sizes = {in, hidden..., out}. With `dueling`, the final layer is a
  /// DuelingHead instead of a plain Linear.
  Mlp(const std::vector<std::size_t>& sizes, Activation act, util::Rng& rng,
      bool dueling = false);

  Mlp(const Mlp& other);
  Mlp& operator=(const Mlp& other);
  Mlp(Mlp&&) = default;
  Mlp& operator=(Mlp&&) = default;

  Matrix forward(const Matrix& x);
  /// Gradient wrt network input (parameter grads accumulated inside).
  Matrix backward(const Matrix& grad_out);

  /// Workspace paths: identical math to forward()/backward(), but all
  /// intermediate activations/gradients live in persistent per-layer
  /// buffers, so steady-state calls perform zero heap allocations. The
  /// returned reference is valid until the next *_ws call on this Mlp.
  const Matrix& forward_ws(const Matrix& x);
  const Matrix& backward_ws(const Matrix& grad_out);
  /// Inference-only workspace forward: same values as forward_ws but no
  /// backward caches are written (safe for target nets / greedy eval).
  const Matrix& infer_ws(const Matrix& x);
  /// backward_ws minus the first layer's input-gradient matmul — for
  /// training steps that never consume the gradient wrt the network input.
  void backward_params_ws(const Matrix& grad_out);

  void zero_grads();

  /// Cached parameter / gradient pointer lists (built once; the layer
  /// structure of an Mlp never changes after construction).
  const std::vector<Matrix*>& params();
  const std::vector<Matrix*>& grads();
  std::vector<const Matrix*> params() const;
  std::vector<const Matrix*> grads() const;
  std::size_t num_parameters() const;

  /// Hard copy of all weights (target-network sync).
  void copy_weights_from(const Mlp& other);
  /// Polyak soft update: θ ← τ·θ_other + (1-τ)·θ.
  void soft_update_from(const Mlp& other, double tau);

  /// Global L2 gradient-norm clipping; returns the pre-clip norm.
  double clip_grad_norm(double max_norm);

  void save(std::ostream& os) const;
  /// Deserializes a save() blob. Strict: unknown activation/head tokens,
  /// implausible layer counts or widths, and truncated or reshaped parameter
  /// matrices are all rejected with errors naming the offending token or
  /// parameter index — a corrupt file never silently becomes a ReLU net.
  static Mlp load(std::istream& is);

  std::size_t input_size() const { return input_size_; }
  std::size_t output_size() const { return output_size_; }
  /// {in, hidden..., out} as passed at construction.
  const std::vector<std::size_t>& sizes() const { return sizes_; }
  Activation activation() const { return activation_; }
  bool dueling() const { return dueling_; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::size_t input_size_ = 0;
  std::size_t output_size_ = 0;
  Activation activation_ = Activation::kReLU;
  bool dueling_ = false;
  std::vector<std::size_t> sizes_;
  // Workspace (not copied; rebuilt lazily). acts_[i] holds layer i's
  // output; gradients ping-pong between two buffers through backward_ws.
  std::vector<Matrix> acts_;
  Matrix grad_ping_, grad_pong_;
  std::vector<Matrix*> params_cache_, grads_cache_;
};

}  // namespace drlnoc::nn
