// Layers and the MLP container. Forward caches what backward needs; backward
// accumulates parameter gradients and returns the input gradient, so layers
// compose by simple chaining.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.h"
#include "util/rng.h"

namespace drlnoc::nn {

class Layer {
 public:
  virtual ~Layer() = default;
  virtual std::string name() const = 0;
  /// x: (batch, in) -> (batch, out).
  virtual Matrix forward(const Matrix& x) = 0;
  /// grad wrt output -> grad wrt input; accumulates parameter grads.
  virtual Matrix backward(const Matrix& grad_out) = 0;
  /// Parameter / gradient views (empty for activations).
  virtual std::vector<Matrix*> params() { return {}; }
  virtual std::vector<Matrix*> grads() { return {}; }
  virtual void zero_grads() {}
  virtual std::unique_ptr<Layer> clone() const = 0;
};

/// Fully connected: y = x W + b, W is (in, out), b is (1, out).
class Linear : public Layer {
 public:
  Linear(std::size_t in, std::size_t out);
  /// He-uniform initialisation (good default for ReLU nets).
  void init_he(util::Rng& rng);
  /// Xavier-uniform initialisation (tanh nets).
  void init_xavier(util::Rng& rng);

  std::string name() const override { return "linear"; }
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Matrix*> params() override { return {&w_, &b_}; }
  std::vector<Matrix*> grads() override { return {&gw_, &gb_}; }
  void zero_grads() override;
  std::unique_ptr<Layer> clone() const override;

  Matrix& weights() { return w_; }
  Matrix& bias() { return b_; }
  std::size_t fan_in() const { return w_.rows(); }
  std::size_t fan_out() const { return w_.cols(); }

 private:
  Matrix w_, b_, gw_, gb_, cache_x_;
};

class ReLU : public Layer {
 public:
  std::string name() const override { return "relu"; }
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>();
  }

 private:
  Matrix cache_x_;
};

class Tanh : public Layer {
 public:
  std::string name() const override { return "tanh"; }
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Tanh>();
  }

 private:
  Matrix cache_y_;
};

/// Dueling head (Wang et al. 2016): splits the representation into a state
/// value V and advantages A, combining as Q = V + A - mean(A). Drop-in last
/// layer replacement for the plain Linear output in a Q-network.
class DuelingHead : public Layer {
 public:
  DuelingHead(std::size_t in, std::size_t actions);
  void init_he(util::Rng& rng);

  std::string name() const override { return "dueling"; }
  Matrix forward(const Matrix& x) override;
  Matrix backward(const Matrix& grad_out) override;
  std::vector<Matrix*> params() override;
  std::vector<Matrix*> grads() override;
  void zero_grads() override;
  std::unique_ptr<Layer> clone() const override;

  std::size_t fan_in() const { return value_.fan_in(); }
  std::size_t actions() const { return advantage_.fan_out(); }

 private:
  Linear value_;      ///< in -> 1
  Linear advantage_;  ///< in -> actions
};

enum class Activation { kReLU, kTanh };

/// Multi-layer perceptron: Linear (+activation) stack; the last Linear has no
/// activation (Q-values are unbounded).
class Mlp {
 public:
  Mlp() = default;
  /// sizes = {in, hidden..., out}. With `dueling`, the final layer is a
  /// DuelingHead instead of a plain Linear.
  Mlp(const std::vector<std::size_t>& sizes, Activation act, util::Rng& rng,
      bool dueling = false);

  Mlp(const Mlp& other);
  Mlp& operator=(const Mlp& other);
  Mlp(Mlp&&) = default;
  Mlp& operator=(Mlp&&) = default;

  Matrix forward(const Matrix& x);
  /// Gradient wrt network input (parameter grads accumulated inside).
  Matrix backward(const Matrix& grad_out);
  void zero_grads();

  std::vector<Matrix*> params();
  std::vector<Matrix*> grads();
  std::size_t num_parameters() const;

  /// Hard copy of all weights (target-network sync).
  void copy_weights_from(const Mlp& other);
  /// Polyak soft update: θ ← τ·θ_other + (1-τ)·θ.
  void soft_update_from(const Mlp& other, double tau);

  /// Global L2 gradient-norm clipping; returns the pre-clip norm.
  double clip_grad_norm(double max_norm);

  void save(std::ostream& os) const;
  static Mlp load(std::istream& is);

  std::size_t input_size() const { return input_size_; }
  std::size_t output_size() const { return output_size_; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::size_t input_size_ = 0;
  std::size_t output_size_ = 0;
  Activation activation_ = Activation::kReLU;
  bool dueling_ = false;
  std::vector<std::size_t> sizes_;
};

}  // namespace drlnoc::nn
