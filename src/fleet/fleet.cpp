#include "fleet/fleet.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "core/env_noc.h"
#include "core/trainer.h"
#include "rl/policy_io.h"
#include "scenario/runtime.h"
#include "scenario/scenario_io.h"
#include "util/config.h"

namespace drlnoc::fleet {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("fleet: " + what);
}

std::uint64_t fnv1a64(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

void check_params(const FleetParams& params) {
  if (params.controller != "heuristic" && params.controller != "static-max" &&
      params.controller != "static-min" && params.controller != "drl") {
    fail("controller must be drl|heuristic|static-max|static-min, got '" +
         params.controller + "'");
  }
  if (params.controller == "drl" && params.policy_blob.empty()) {
    fail("drl fleet requires a trained policy (policy_blob empty)");
  }
  if (!params.policy_pin.empty()) {
    if (params.controller != "drl") {
      fail("policy_pin is only meaningful with controller=drl");
    }
    // Check the pin up front so a stale pin aborts before any scenario
    // work (the per-scenario schedule build re-checks it too).
    const std::string fp = rl::policy_fingerprint(params.policy_blob);
    if (fp != params.policy_pin) {
      fail("policy fingerprint " + fp + " does not match the pinned version " +
           params.policy_pin + " (the policy file changed since it was "
           "pinned)");
    }
  }
  if (params.epoch_cycles == 0) fail("epoch_cycles must be > 0");
  if (params.epochs <= 0) fail("epochs must be > 0");
  if (params.shards < 1) fail("shards must be >= 1");
  if (params.shard < 0 || params.shard >= params.shards) {
    fail("shard must be in [0, shards), got " + std::to_string(params.shard) +
         " of " + std::to_string(params.shards));
  }
  if (params.results_dir.empty()) fail("results_dir is required");
}

}  // namespace

std::string result_key(const ScenarioSpace& space, std::size_t index,
                       const FleetParams& params) {
  // Everything that determines the outcome feeds the hash, each field
  // separated by an out-of-band byte so concatenations cannot collide.
  std::uint64_t h = 1469598103934665603ULL;
  h = fnv1a64(h, space.spec_text);
  h = fnv1a64(h, std::string(1, '\0') + std::to_string(index));
  h = fnv1a64(h, std::string(1, '\0') + params.controller);
  h = fnv1a64(h, std::string(1, '\0') + params.policy_blob);
  h = fnv1a64(h, std::string(1, '\0') + std::to_string(params.epoch_cycles));
  h = fnv1a64(h, std::string(1, '\0') + std::to_string(params.epochs));
  h = fnv1a64(h, std::string(1, '\0') +
                     (params.qos_features ? "qos" : "aggregate"));
  return hex16(h);
}

std::string result_path(const std::string& results_dir, std::size_t index,
                        const std::string& key) {
  return results_dir + "/result-" + std::to_string(index) + "-" + key +
         kFleetResultExtension;
}

void write_result_file(const std::string& path,
                       const FleetScenarioResult& r) {
  // tmp + rename: a killed run leaves either the complete file or no file
  // with the final name, so resume never trusts a torn write.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp);
    if (!os) throw std::runtime_error("fleet: cannot write " + tmp);
    os.precision(17);
    os << "drlfr " << kFleetResultFormatVersion << "\n";
    os << "index = " << r.index << "\n";
    os << "label = " << r.label << "\n";
    os << "seed = " << r.seed << "\n";
    os << "reward = " << r.reward << "\n";
    os << "mean_latency = " << r.mean_latency << "\n";
    os << "p95_latency = " << r.p95_latency << "\n";
    os << "mean_power_mw = " << r.mean_power_mw << "\n";
    os << "mean_edp = " << r.mean_edp << "\n";
    os << "flits_dropped = " << r.flits_dropped << "\n";
    os << "retries = " << r.retries << "\n";
    os << "packets_lost = " << r.packets_lost << "\n";
    os << "rerouted_hops = " << r.rerouted_hops << "\n";
    // Only drl results carry a policy version; omitting the key otherwise
    // keeps policy-free result files byte-identical to the PR 9 format.
    if (!r.policy_version.empty()) {
      os << "policy_version = " << r.policy_version << "\n";
    }
    os << "tenants = " << r.tenants.size() << "\n";
    for (std::size_t i = 0; i < r.tenants.size(); ++i) {
      const FleetTenantOutcome& t = r.tenants[i];
      const std::string p = "tenant" + std::to_string(i) + ".";
      os << p << "name = " << t.name << "\n";
      os << p << "qos = " << t.qos << "\n";
      os << p << "slo_hit_rate = " << t.slo_hit_rate << "\n";
      os << p << "p95_latency = " << t.p95_latency << "\n";
      os << p << "accepted_rate = " << t.accepted_rate << "\n";
    }
    if (!os.flush()) throw std::runtime_error("fleet: write failed for " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("fleet: cannot rename " + tmp + " -> " + path +
                             ": " + ec.message());
  }
}

std::optional<FleetScenarioResult> read_result_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const auto nl = text.find('\n');
  const std::string magic = text.substr(0, nl == std::string::npos ? 0 : nl);
  if (magic != "drlfr " + std::to_string(kFleetResultFormatVersion)) {
    throw std::runtime_error("fleet: " + path +
                             ": missing magic line (expected 'drlfr 1')");
  }
  const util::Config cfg = util::Config::from_text(text.substr(nl + 1));
  FleetScenarioResult r;
  r.index = static_cast<std::size_t>(cfg.get("index", 0LL));
  r.label = cfg.get("label", std::string());
  r.seed = static_cast<std::uint64_t>(cfg.get("seed", 0LL));
  r.reward = cfg.get("reward", 0.0);
  r.mean_latency = cfg.get("mean_latency", 0.0);
  r.p95_latency = cfg.get("p95_latency", 0.0);
  r.mean_power_mw = cfg.get("mean_power_mw", 0.0);
  r.mean_edp = cfg.get("mean_edp", 0.0);
  r.flits_dropped = static_cast<std::uint64_t>(cfg.get("flits_dropped", 0LL));
  r.retries = static_cast<std::uint64_t>(cfg.get("retries", 0LL));
  r.packets_lost = static_cast<std::uint64_t>(cfg.get("packets_lost", 0LL));
  r.rerouted_hops = static_cast<std::uint64_t>(cfg.get("rerouted_hops", 0LL));
  r.policy_version = cfg.get("policy_version", std::string());
  const int tenants = cfg.get("tenants", 0);
  for (int i = 0; i < tenants; ++i) {
    const std::string p = "tenant" + std::to_string(i) + ".";
    FleetTenantOutcome t;
    t.name = cfg.get(p + "name", t.name);
    t.qos = cfg.get(p + "qos", t.qos);
    t.slo_hit_rate = cfg.get(p + "slo_hit_rate", t.slo_hit_rate);
    t.p95_latency = cfg.get(p + "p95_latency", t.p95_latency);
    t.accepted_rate = cfg.get(p + "accepted_rate", t.accepted_rate);
    r.tenants.push_back(t);
  }
  return r;
}

FleetScenarioResult evaluate_scenario(const ExpandedScenario& point,
                                      const FleetParams& params,
                                      obs::FlightRecorder* recorder,
                                      obs::NetworkMetrics* metrics) {
  check_params(params);
  // Install the fleet's controller as the scenario's schedule, so the same
  // build path (and the same policy-vs-environment dimension check) serves
  // standalone scheduled runs and fleets.
  scenario::Scenario scn = point.scenario;
  scn.controller = scenario::ControllerSchedule{};
  scn.controller.type = params.controller;
  scn.controller.epoch_cycles = params.epoch_cycles;
  scn.controller.epochs = params.epochs;
  if (params.controller == "drl") {
    scn.controller.policy_file =
        params.policy_file.empty() ? "<fleet policy>" : params.policy_file;
    scn.controller.policy_blob = params.policy_blob;
    // The pin rides through the same schedule-build path as standalone
    // runs, so one check covers both.
    scn.controller.policy_pin = params.policy_pin;
  }

  core::NocEnvParams ep;
  ep.scenario = std::make_shared<scenario::Scenario>(scn);
  ep.net.seed = scn.net.seed;
  ep.scenario_qos = params.qos_features;
  ep.epoch_cycles = params.epoch_cycles;
  ep.epochs_per_episode = params.epochs;
  ep.recorder = recorder;
  ep.metrics = metrics;
  core::NocConfigEnv env(ep);
  const auto controller = scenario::build_scheduled_controller(scn, env);
  const core::EpisodeResult episode = core::evaluate(env, *controller);

  FleetScenarioResult r;
  r.index = point.index;
  r.label = point.label;
  r.seed = scn.net.seed;
  r.reward = episode.total_reward;
  r.mean_latency = episode.mean_latency;
  r.p95_latency = episode.p95_latency;
  r.mean_power_mw = episode.mean_power_mw;
  r.mean_edp = episode.mean_edp;
  r.flits_dropped = episode.flits_dropped;
  r.retries = episode.retries;
  r.packets_lost = episode.packets_lost;
  r.rerouted_hops = episode.rerouted_hops;
  if (params.controller == "drl") {
    r.policy_version = rl::policy_fingerprint(params.policy_blob);
  }
  for (std::size_t i = 0; i < episode.tenants.size(); ++i) {
    const core::TenantEpisodeSummary& s = episode.tenants[i];
    FleetTenantOutcome t;
    t.name = scn.tenants[i].name;
    t.qos = scenario::to_string(scn.tenants[i].qos);
    t.slo_hit_rate = s.slo_hit_rate;
    t.p95_latency = s.p95_latency;
    t.accepted_rate = s.accepted_rate;
    r.tenants.push_back(t);
  }
  return r;
}

FleetRunOutcome run_fleet(const ScenarioSpace& space, const FleetParams& params,
                          const core::ExperimentRunner& runner) {
  check_params(params);
  space.validate();
  std::error_code ec;
  std::filesystem::create_directories(params.results_dir, ec);
  if (ec) {
    throw std::runtime_error("fleet: cannot create results dir " +
                             params.results_dir + ": " + ec.message());
  }

  FleetRunOutcome outcome;
  std::vector<std::size_t> todo;
  for (std::size_t index = 0; index < space.size(); ++index) {
    if (index % static_cast<std::size_t>(params.shards) !=
        static_cast<std::size_t>(params.shard)) {
      continue;
    }
    ++outcome.owned;
    const std::string path =
        result_path(params.results_dir, index, result_key(space, index, params));
    if (std::filesystem::exists(path)) {
      ++outcome.skipped;
      continue;
    }
    todo.push_back(index);
  }

  // Each scenario is an independent simulation with its own seed and its own
  // index-addressed result file, so results are bit-identical at any jobs
  // count. Taps stay detached here (they are single-threaded); the worst-k
  // heatmap reruns attach them serially afterwards.
  runner.for_each(static_cast<int>(todo.size()), [&](int i) {
    const std::size_t index = todo[static_cast<std::size_t>(i)];
    const ExpandedScenario point = space.expand(index);
    const FleetScenarioResult r = evaluate_scenario(point, params);
    write_result_file(
        result_path(params.results_dir, index, result_key(space, index, params)),
        r);
  });
  outcome.ran = todo.size();
  return outcome;
}

std::vector<FleetScenarioResult> load_results(const ScenarioSpace& space,
                                              const FleetParams& params) {
  check_params(params);
  std::vector<FleetScenarioResult> out;
  for (std::size_t index = 0; index < space.size(); ++index) {
    const std::string path =
        result_path(params.results_dir, index, result_key(space, index, params));
    if (auto r = read_result_file(path)) out.push_back(std::move(*r));
  }
  return out;
}

}  // namespace drlnoc::fleet
