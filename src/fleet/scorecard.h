// Fleet scorecard: aggregates a fleet's per-scenario result files into one
// JSON artifact — per-QoS-class SLO hit rates and p95 distributions, mean
// power/energy with confidence intervals, degradation counters, and the
// worst-k scenarios named so an engineer knows exactly which corner of the
// space to look at. The scorecard is a pure function of the parsed result
// files (doubles round-trip at precision 17, no timestamps, no git state),
// so a resumed fleet produces a byte-identical scorecard to an
// uninterrupted one.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "fleet/fleet.h"

namespace drlnoc::fleet {

inline constexpr int kScorecardSchema = 1;

/// Aggregate over every tenant of one QoS class across the fleet.
struct ClassScore {
  std::size_t tenants = 0;        ///< tenant slices of this class
  double slo_hit_rate = 1.0;      ///< mean of per-tenant SLO hit rates
  double worst_slo_hit_rate = 1.0;
  double p95_mean = 0.0;          ///< mean of per-tenant p95 latencies
  double p95_p95 = 0.0;           ///< 95th percentile of those p95s
};

/// One named worst-case scenario.
struct WorstEntry {
  std::size_t index = 0;
  std::string label;
  double min_slo_hit_rate = 1.0;  ///< worst tenant SLO hit rate in it
  double worst_p95 = 0.0;         ///< worst tenant p95 latency in it
};

struct Scorecard {
  std::string spec_name;
  std::size_t space_size = 0;
  std::size_t scored = 0;   ///< result files found
  std::size_t missing = 0;  ///< space_size - scored
  core::MetricSummary reward;
  core::MetricSummary latency;
  core::MetricSummary p95;
  core::MetricSummary power_mw;
  core::MetricSummary edp;
  std::map<std::string, ClassScore> classes;  ///< by QoS class name
  std::uint64_t flits_dropped = 0;
  std::uint64_t retries = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t rerouted_hops = 0;
  std::vector<WorstEntry> worst;  ///< worst first, at most worst_k entries
};

/// Linear-interpolated quantile of a sample (q in [0,1]); 0 on empty input.
/// Exposed for tests.
double quantile(std::vector<double> xs, double q);

/// Aggregates `results` (any order; sorted internally by index) for a space
/// of `space_size` points. Scenarios rank into `worst` by lowest tenant SLO
/// hit rate, ties broken by highest worst-tenant p95 then by index, so the
/// ranking is deterministic.
Scorecard score_fleet(const std::vector<FleetScenarioResult>& results,
                      std::size_t space_size, const std::string& spec_name,
                      int worst_k = 4);

/// Writes the scorecard JSON: schema, coverage, aggregate metric summaries,
/// per-class SLO block, degradation counters, worst-k array. Doubles at
/// precision 17; no timestamps or environment state, so equal scorecards
/// serialise byte-identically.
void write_scorecard_json(std::ostream& os, const Scorecard& card);

}  // namespace drlnoc::fleet
