// Fleet harness: evaluates one controller across every scenario of a
// ScenarioSpace on the parallel experiment engine, with sharded, resumable
// runs. Each scenario's outcome lands in its own result file under
// `results_dir`, named `result-<index>-<key>.drlfr` where <key> is a content
// hash of everything that determines the outcome — spec text, index,
// controller type + policy bytes, epoch schedule, feature mode. A killed run
// restarted over the same directory skips every scenario whose result file
// already exists (and a changed spec or policy changes the key, so stale
// results are never reused). The scorecard (scorecard.h) is always computed
// from the parsed result files — never from in-memory results — so a
// resumed fleet scores byte-identically to an uninterrupted one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "fleet/scenario_space.h"

namespace drlnoc::obs {
class FlightRecorder;
class NetworkMetrics;
}  // namespace drlnoc::obs

namespace drlnoc::fleet {

inline constexpr int kFleetResultFormatVersion = 1;
inline constexpr char kFleetResultExtension[] = ".drlfr";

/// How the fleet drives every scenario.
struct FleetParams {
  /// Controller evaluated across the fleet: heuristic | static-max |
  /// static-min | drl (requires policy_blob).
  std::string controller = "heuristic";
  std::string policy_file;  ///< provenance (drl)
  std::string policy_blob;  ///< DqnAgent::save bytes, loaded by the caller
  /// Optional pinned policy version (16-hex rl::policy_fingerprint): when
  /// set, every scenario build re-checks the served blob against it, so a
  /// fleet can prove exactly which policy produced its result files.
  std::string policy_pin;
  std::uint64_t epoch_cycles = 512;  ///< router cycles between decisions
  int epochs = 24;                   ///< decision epochs per scenario
  /// Per-tenant QoS feature slices scale the state with the tenant count, so
  /// a fixed policy cannot span scenarios whose churn populations differ;
  /// fleets therefore default to the aggregate feature set. SLO hit rates
  /// are still scored — evaluation reads the scenario's p95 targets
  /// regardless of the feature mode.
  bool qos_features = false;
  std::string results_dir;  ///< required; created if missing
  /// Shard `shard` of `shards` owns the indices with index % shards ==
  /// shard. Every shard writes into the same results_dir.
  int shard = 0;
  int shards = 1;
};

/// Per-tenant slice of one fleet result.
struct FleetTenantOutcome {
  std::string name;
  std::string qos;  ///< scenario::QosClass name
  double slo_hit_rate = 1.0;
  double p95_latency = 0.0;
  double accepted_rate = 0.0;
};

/// One scenario's outcome, as persisted in its result file.
struct FleetScenarioResult {
  std::size_t index = 0;
  std::string label;
  std::uint64_t seed = 0;
  double reward = 0.0;
  double mean_latency = 0.0;
  double p95_latency = 0.0;
  double mean_power_mw = 0.0;
  double mean_edp = 0.0;
  // Degradation counters (zero on a healthy fabric).
  std::uint64_t flits_dropped = 0;
  std::uint64_t retries = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t rerouted_hops = 0;
  /// rl::policy_fingerprint of the served policy (drl fleets); empty for
  /// policy-free controllers and in result files written before PR 10
  /// (the reader is tolerant: the key is simply absent).
  std::string policy_version;
  std::vector<FleetTenantOutcome> tenants;
};

/// Content hash (16 hex chars, FNV-1a 64) of everything that determines
/// index's outcome under `params`.
std::string result_key(const ScenarioSpace& space, std::size_t index,
                       const FleetParams& params);

/// `<results_dir>/result-<index>-<key>.drlfr`.
std::string result_path(const std::string& results_dir, std::size_t index,
                        const std::string& key);

/// Serialises `result` atomically (tmp file + rename), doubles at precision
/// 17 so a reparse is bit-exact. Throws std::runtime_error on I/O failure.
void write_result_file(const std::string& path,
                       const FleetScenarioResult& result);

/// Parses a result file; std::nullopt when the file is missing. Malformed
/// files (e.g. a crash mid-write outside the atomic protocol) throw.
std::optional<FleetScenarioResult> read_result_file(const std::string& path);

/// Evaluates one expanded scenario under `params` (optionally with
/// observability taps attached — used for the worst-k heatmap reruns).
/// Deterministic in (scenario, params): the traffic seed is the expanded
/// scenario's net.seed.
FleetScenarioResult evaluate_scenario(const ExpandedScenario& point,
                                      const FleetParams& params,
                                      obs::FlightRecorder* recorder = nullptr,
                                      obs::NetworkMetrics* metrics = nullptr);

struct FleetRunOutcome {
  std::size_t owned = 0;    ///< indices this shard owns
  std::size_t ran = 0;      ///< evaluated this invocation
  std::size_t skipped = 0;  ///< result file already present (resume)
};

/// Runs this shard's slice of the space in parallel on `runner`, skipping
/// scenarios whose result file already exists. Results are bit-identical at
/// any jobs count (each scenario is an independent simulation with its own
/// seed; files are index-addressed). Throws on an invalid params/space
/// combination or when results_dir cannot be created.
FleetRunOutcome run_fleet(const ScenarioSpace& space, const FleetParams& params,
                          const core::ExperimentRunner& runner);

/// Loads the result files of ALL indices of the space (not just one shard's)
/// by recomputing each index's expected key — stale files under other keys
/// are ignored. Missing indices are simply absent from the returned vector
/// (ordered by index).
std::vector<FleetScenarioResult> load_results(const ScenarioSpace& space,
                                              const FleetParams& params);

}  // namespace drlnoc::fleet
