#include "fleet/scorecard.h"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace drlnoc::fleet {

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

Scorecard score_fleet(const std::vector<FleetScenarioResult>& results,
                      std::size_t space_size, const std::string& spec_name,
                      int worst_k) {
  Scorecard card;
  card.spec_name = spec_name;
  card.space_size = space_size;
  card.scored = results.size();
  card.missing = space_size > results.size() ? space_size - results.size() : 0;

  std::vector<FleetScenarioResult> sorted = results;
  std::sort(sorted.begin(), sorted.end(),
            [](const FleetScenarioResult& a, const FleetScenarioResult& b) {
              return a.index < b.index;
            });

  std::vector<double> reward, latency, p95, power, edp;
  std::map<std::string, std::vector<double>> class_slo, class_p95;
  std::vector<WorstEntry> ranked;
  for (const FleetScenarioResult& r : sorted) {
    reward.push_back(r.reward);
    latency.push_back(r.mean_latency);
    p95.push_back(r.p95_latency);
    power.push_back(r.mean_power_mw);
    edp.push_back(r.mean_edp);
    card.flits_dropped += r.flits_dropped;
    card.retries += r.retries;
    card.packets_lost += r.packets_lost;
    card.rerouted_hops += r.rerouted_hops;
    WorstEntry w;
    w.index = r.index;
    w.label = r.label;
    for (const FleetTenantOutcome& t : r.tenants) {
      class_slo[t.qos].push_back(t.slo_hit_rate);
      class_p95[t.qos].push_back(t.p95_latency);
      w.min_slo_hit_rate = std::min(w.min_slo_hit_rate, t.slo_hit_rate);
      w.worst_p95 = std::max(w.worst_p95, t.p95_latency);
    }
    ranked.push_back(w);
  }

  card.reward = core::summarize_metric(reward);
  card.latency = core::summarize_metric(latency);
  card.p95 = core::summarize_metric(p95);
  card.power_mw = core::summarize_metric(power);
  card.edp = core::summarize_metric(edp);

  for (const auto& [cls, slos] : class_slo) {
    ClassScore score;
    score.tenants = slos.size();
    score.slo_hit_rate = core::summarize_metric(slos).mean;
    score.worst_slo_hit_rate = *std::min_element(slos.begin(), slos.end());
    const std::vector<double>& p95s = class_p95[cls];
    score.p95_mean = core::summarize_metric(p95s).mean;
    score.p95_p95 = quantile(p95s, 0.95);
    card.classes[cls] = score;
  }

  std::sort(ranked.begin(), ranked.end(),
            [](const WorstEntry& a, const WorstEntry& b) {
              if (a.min_slo_hit_rate != b.min_slo_hit_rate) {
                return a.min_slo_hit_rate < b.min_slo_hit_rate;
              }
              if (a.worst_p95 != b.worst_p95) return a.worst_p95 > b.worst_p95;
              return a.index < b.index;
            });
  const std::size_t k =
      std::min(ranked.size(), static_cast<std::size_t>(std::max(worst_k, 0)));
  card.worst.assign(ranked.begin(),
                    ranked.begin() + static_cast<std::ptrdiff_t>(k));
  return card;
}

namespace {

void summary_fields(std::ostream& os, const std::string& name,
                    const core::MetricSummary& s, bool last = false) {
  os << "    \"" << name << "_mean\": " << s.mean << ",\n";
  os << "    \"" << name << "_stddev\": " << s.stddev << ",\n";
  os << "    \"" << name << "_ci95\": " << s.ci95 << (last ? "\n" : ",\n");
}

}  // namespace

void write_scorecard_json(std::ostream& os, const Scorecard& card) {
  const std::streamsize old_precision = os.precision(17);
  os << "{\n";
  os << "  \"scorecard\": " << kScorecardSchema << ",\n";
  os << "  \"spec\": \"" << card.spec_name << "\",\n";
  os << "  \"space_size\": " << card.space_size << ",\n";
  os << "  \"scored\": " << card.scored << ",\n";
  os << "  \"missing\": " << card.missing << ",\n";
  os << "  \"aggregate\": {\n";
  summary_fields(os, "reward", card.reward);
  summary_fields(os, "latency", card.latency);
  summary_fields(os, "p95", card.p95);
  summary_fields(os, "power_mw", card.power_mw);
  summary_fields(os, "edp", card.edp, /*last=*/true);
  os << "  },\n";
  os << "  \"slo\": {\n";
  std::size_t i = 0;
  for (const auto& [cls, score] : card.classes) {
    os << "    \"" << cls << "\": {\n";
    os << "      \"tenants\": " << score.tenants << ",\n";
    os << "      \"slo_hit_rate\": " << score.slo_hit_rate << ",\n";
    os << "      \"worst_slo_hit_rate\": " << score.worst_slo_hit_rate
       << ",\n";
    os << "      \"p95_mean\": " << score.p95_mean << ",\n";
    os << "      \"p95_p95\": " << score.p95_p95 << "\n";
    os << "    }" << (++i == card.classes.size() ? "\n" : ",\n");
  }
  os << "  },\n";
  os << "  \"degradation\": {\n";
  os << "    \"flits_dropped\": " << card.flits_dropped << ",\n";
  os << "    \"retries\": " << card.retries << ",\n";
  os << "    \"packets_lost\": " << card.packets_lost << ",\n";
  os << "    \"rerouted_hops\": " << card.rerouted_hops << "\n";
  os << "  },\n";
  os << "  \"worst\": [\n";
  for (std::size_t j = 0; j < card.worst.size(); ++j) {
    const WorstEntry& w = card.worst[j];
    os << "    {\"index\": " << w.index << ", \"label\": \"" << w.label
       << "\", \"min_slo_hit_rate\": " << w.min_slo_hit_rate
       << ", \"worst_p95\": " << w.worst_p95 << "}"
       << (j + 1 == card.worst.size() ? "\n" : ",\n");
  }
  os << "  ]\n";
  os << "}\n";
  os.precision(old_precision);
}

}  // namespace drlnoc::fleet
