#include "fleet/scenario_space.h"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "scenario/scenario_io.h"
#include "util/config.h"

namespace drlnoc::fleet {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("fleet spec: " + what);
}

std::string join_path(const std::string& base_dir, const std::string& path) {
  if (base_dir.empty() || path.empty() || path.front() == '/') return path;
  return base_dir + "/" + path;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    const auto b = item.find_first_not_of(" \t");
    if (b == std::string::npos) fail("empty entry in values list '" + text +
                                     "'");
    const auto e = item.find_last_not_of(" \t");
    out.push_back(item.substr(b, e - b + 1));
  }
  return out;
}

}  // namespace

std::size_t ScenarioSpace::size() const {
  std::size_t n = static_cast<std::size_t>(seeds);
  for (const SpaceAxis& axis : axes) n *= axis.values.size();
  return n;
}

void ScenarioSpace::validate() const {
  if (seeds < 1) fail("seeds must be >= 1");
  if (base_text.empty()) fail("no base scenario text");
  std::set<std::string> keys;
  for (std::size_t i = 0; i < axes.size(); ++i) {
    const SpaceAxis& axis = axes[i];
    const std::string who = "axis" + std::to_string(i) + ": ";
    if (axis.key.empty()) fail(who + "key is required");
    if (axis.values.empty()) fail(who + "no values");
    if (!keys.insert(axis.key).second) {
      fail(who + "duplicate axis key '" + axis.key + "'");
    }
  }
  constexpr std::size_t kMaxPoints = 1000000;
  if (size() > kMaxPoints) {
    fail("space has " + std::to_string(size()) +
         " points, over the sanity cap of " + std::to_string(kMaxPoints));
  }
}

ExpandedScenario ScenarioSpace::point(std::size_t index) const {
  if (index >= size()) {
    throw std::out_of_range("fleet spec: index " + std::to_string(index) +
                            " out of range (space has " +
                            std::to_string(size()) + " points)");
  }
  ExpandedScenario out;
  out.index = index;
  // Mixed-radix decode: seed replica innermost, then axes in order.
  std::size_t rem = index;
  out.seed_offset = rem % static_cast<std::size_t>(seeds);
  rem /= static_cast<std::size_t>(seeds);
  std::ostringstream label;
  label << name << "[" << index << "]";
  for (const SpaceAxis& axis : axes) {
    const std::size_t pick = rem % axis.values.size();
    rem /= axis.values.size();
    out.overrides[axis.key] = axis.values[pick];
    label << " " << axis.key << "=" << axis.values[pick];
  }
  label << " seed+" << out.seed_offset;
  out.label = label.str();
  return out;
}

ExpandedScenario ScenarioSpace::expand(std::size_t index) const {
  ExpandedScenario out = point(index);
  try {
    out.scenario = scenario::ScenarioReader::read_text(base_text, base_dir,
                                                       out.overrides);
  } catch (const std::exception& e) {
    throw std::invalid_argument("fleet spec: " + out.label + ": " + e.what());
  }
  out.scenario.name = out.label;
  out.scenario.net.seed += out.seed_offset;
  return out;
}

ScenarioSpace ScenarioSpaceReader::read_text(const std::string& text,
                                             const std::string& base_dir) {
  // Same line-tracked scan as the `.drlsc` reader (minus sections), so parse
  // errors cite "(line N)" next to the key name.
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool magic_seen = false;
  util::Config cfg;
  while (std::getline(in, line)) {
    ++lineno;
    std::string stripped = line;
    const auto hash = stripped.find('#');
    if (hash != std::string::npos) stripped.erase(hash);
    const auto b = stripped.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = stripped.find_last_not_of(" \t\r");
    stripped = stripped.substr(b, e - b + 1);
    if (!magic_seen) {
      std::istringstream ls(stripped);
      std::string magic;
      int version = 0;
      if (!(ls >> magic >> version) || magic != "drlfs") {
        throw std::runtime_error(
            "fleet spec: missing magic line (expected 'drlfs 1')");
      }
      if (version != kFleetSpecFormatVersion) {
        throw std::runtime_error("fleet spec: unsupported format version " +
                                 std::to_string(version));
      }
      magic_seen = true;
      continue;
    }
    const auto eq = stripped.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("fleet spec: bad config line " +
                                  std::to_string(lineno) + ": " + stripped);
    }
    auto trim = [](std::string s) {
      const auto sb = s.find_first_not_of(" \t");
      if (sb == std::string::npos) return std::string();
      const auto se = s.find_last_not_of(" \t");
      return s.substr(sb, se - sb + 1);
    };
    const std::string key = trim(stripped.substr(0, eq));
    cfg.set(key, trim(stripped.substr(eq + 1)));
    cfg.set_line(key, lineno);
  }
  if (!magic_seen) {
    throw std::runtime_error(
        "fleet spec: missing magic line (expected 'drlfs 1')");
  }

  std::set<std::string> consumed;
  auto str = [&](const std::string& key, const std::string& fallback) {
    if (cfg.has(key)) consumed.insert(key);
    return cfg.get(key, fallback);
  };
  auto num = [&](const std::string& key, int fallback) {
    if (cfg.has(key)) consumed.insert(key);
    return cfg.get(key, fallback);
  };

  ScenarioSpace space;
  space.spec_text = text;
  space.name = str("name", space.name);
  space.base_file = str("base", "");
  if (space.base_file.empty()) {
    fail("base = <scenario.drlsc> is required");
  }
  space.seeds = num("seeds", space.seeds);
  const int axes = num("axes", 0);
  if (axes < 0) fail("axes must be >= 0");
  for (int i = 0; i < axes; ++i) {
    const std::string p = "axis" + std::to_string(i) + ".";
    SpaceAxis axis;
    axis.key = str(p + "key", "");
    const bool has_csv = cfg.has(p + "values");
    const bool has_count = cfg.has(p + "count");
    if (has_csv && has_count) {
      fail(p + "values and " + p + "count are mutually exclusive" +
           cfg.location_suffix(p + "count"));
    }
    if (has_csv) {
      axis.values = split_csv(str(p + "values", ""));
    } else if (has_count) {
      const int count = num(p + "count", 0);
      if (count < 1) fail(p + "count must be >= 1");
      for (int k = 0; k < count; ++k) {
        const std::string vk = p + "value" + std::to_string(k);
        if (!cfg.has(vk)) fail(vk + " is missing");
        axis.values.push_back(str(vk, ""));
      }
    } else {
      fail(p + "values (comma list) or " + p + "count + " + p +
           "valueK is required");
    }
    space.axes.push_back(axis);
  }

  for (const std::string& key : cfg.keys()) {
    if (!consumed.count(key)) {
      throw std::invalid_argument("fleet spec: unknown key '" + key + "'" +
                                  cfg.location_suffix(key));
    }
  }

  const std::string base_path = join_path(base_dir, space.base_file);
  std::ifstream base_in(base_path);
  if (!base_in) fail("cannot open base scenario " + base_path);
  std::stringstream ss;
  ss << base_in.rdbuf();
  space.base_text = ss.str();
  // Traces/policies inside the base scenario resolve relative to the base
  // scenario's own directory, exactly as a direct ScenarioReader::read_file
  // of it would.
  const auto base_slash = base_path.find_last_of('/');
  space.base_dir = base_slash == std::string::npos
                       ? ""
                       : base_path.substr(0, base_slash);

  space.validate();
  // Smoke-expand one point so a spec whose overrides misspell a key (or
  // whose base scenario is broken) fails at load time, not mid-fleet.
  space.expand(0);
  return space;
}

ScenarioSpace ScenarioSpaceReader::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("fleet spec: cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  const auto slash = path.find_last_of('/');
  const std::string base_dir =
      slash == std::string::npos ? "" : path.substr(0, slash);
  try {
    return read_text(ss.str(), base_dir);
  } catch (const std::exception& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

}  // namespace drlnoc::fleet
