// Fleet scenario spaces: a versioned `.drlfs` spec that names a base
// `.drlsc` scenario and sweeps axes over it (tenant mixes, QoS ratios,
// injection rates, placements, fault severities, churn intensities),
// producing a family of hundreds of concrete scenarios. Every point of the
// space is reproducible from `(spec, index)` alone — expansion applies the
// index's axis values as key overrides on the base scenario text and
// re-parses it, so a fleet run can be sharded, killed and resumed without
// ever shipping expanded scenario files around.
//
//   drlfs 1
//   name = qos_churn_sweep
//   base = base.drlsc          # path relative to the spec file
//   seeds = 3                  # seed replicas per point (net.seed + 0..N-1)
//   axes = 2
//   axis0.key = tenant1.rate   # any flattened .drlsc key
//   axis0.values = 0.02,0.05,0.08
//   axis1.key = churn.arrival_rate
//   axis1.count = 2            # indexed form, for values containing commas
//   axis1.value0 = 0.0005
//   axis1.value1 = 0.002
//
// Index layout is mixed-radix with the seed replica innermost (fastest),
// then axes in declaration order: index = ((axisN..axis0) * seeds) + seed.
// Unknown keys are rejected with their line number, like `.drlsc` files.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "scenario/scenario.h"

namespace drlnoc::fleet {

inline constexpr int kFleetSpecFormatVersion = 1;
inline constexpr char kFleetSpecExtension[] = ".drlfs";

/// One sweep axis: a flattened `.drlsc` key and the values it takes.
struct SpaceAxis {
  std::string key;
  std::vector<std::string> values;
};

/// One expanded point of a scenario space.
struct ExpandedScenario {
  std::size_t index = 0;
  /// Stable human name: "<spec>[<index>] key=value ... seed+<k>".
  std::string label;
  /// The axis overrides this index applied to the base scenario.
  std::map<std::string, std::string> overrides;
  /// Seed replica number in [0, seeds); the scenario's net.seed is already
  /// offset by it.
  std::uint64_t seed_offset = 0;
  scenario::Scenario scenario;
};

/// A parsed `.drlfs` spec plus the eagerly loaded base scenario text.
class ScenarioSpace {
 public:
  std::string name = "fleet";
  std::string base_file;  ///< provenance, as written in the spec
  std::string base_text;  ///< the base `.drlsc` contents, loaded eagerly
  std::string base_dir;   ///< traces/policies resolve relative to this
  std::string spec_text;  ///< the raw spec text (content-hash input)
  int seeds = 1;
  std::vector<SpaceAxis> axes;

  /// Number of concrete scenarios: product of axis sizes times `seeds`.
  std::size_t size() const;

  /// Overrides + seed offset for `index` without parsing the scenario —
  /// cheap enough for describe/progress tooling.
  ExpandedScenario point(std::size_t index) const;

  /// Fully expands index: applies the overrides to the base text, parses,
  /// churn-expands and validates the scenario, and offsets net.seed by the
  /// seed replica. Throws std::out_of_range past size() and propagates
  /// scenario parse errors (annotated with the point's label).
  ExpandedScenario expand(std::size_t index) const;

  /// Throws std::invalid_argument on malformed specs: no axes values,
  /// duplicate axis keys, seeds < 1, or a space bigger than the sanity cap
  /// (1e6 points — a fleet is hundreds of scenarios, not millions).
  void validate() const;
};

class ScenarioSpaceReader {
 public:
  /// Parses spec text; `base_dir` resolves the base scenario path (empty =
  /// working directory). The base scenario file is read eagerly; index 0 is
  /// expanded once as a smoke check so obviously broken specs fail at load
  /// time, not mid-fleet.
  static ScenarioSpace read_text(const std::string& text,
                                 const std::string& base_dir = "");
  static ScenarioSpace read_file(const std::string& path);
};

}  // namespace drlnoc::fleet
