// Minimal key=value configuration store. Examples and bench binaries parse
// command-line overrides ("key=value" tokens) into this, so every experiment
// is reproducible from its printed parameter block.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace drlnoc::util {

class Config {
 public:
  Config() = default;

  /// Parses tokens of the form "key=value"; throws std::invalid_argument on
  /// malformed tokens.
  static Config from_args(int argc, const char* const* argv);
  /// Parses newline-separated "key=value" text; '#' starts a comment.
  static Config from_text(const std::string& text);

  void set(const std::string& key, const std::string& value);

  bool has(const std::string& key) const;
  std::optional<std::string> raw(const std::string& key) const;

  std::string get(const std::string& key, const std::string& fallback) const;
  long long get(const std::string& key, long long fallback) const;
  int get(const std::string& key, int fallback) const;
  double get(const std::string& key, double fallback) const;
  bool get(const std::string& key, bool fallback) const;

  /// Keys in insertion-independent (sorted) order, for printing.
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace drlnoc::util
