// Minimal key=value configuration store. Examples and bench binaries parse
// command-line overrides ("key=value" tokens) into this, so every experiment
// is reproducible from its printed parameter block.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace drlnoc::util {

class Config {
 public:
  Config() = default;

  /// Parses tokens of the form "key=value"; throws std::invalid_argument on
  /// malformed tokens.
  static Config from_args(int argc, const char* const* argv);
  /// Parses newline-separated "key=value" text; '#' starts a comment.
  static Config from_text(const std::string& text);

  void set(const std::string& key, const std::string& value);

  /// Records the 1-based source line `key` came from. File-format loaders
  /// (the `.drlsc`/`.drlfs` readers) call this while scanning their input so
  /// the typed getters below can cite the offending line alongside the key
  /// name; configs built from argv carry no lines and report as before.
  void set_line(const std::string& key, int line);
  /// The recorded source line of `key`, or 0 when unknown.
  int line_of(const std::string& key) const;
  /// " (line N)" when a source line is recorded for `key`, else "".
  std::string location_suffix(const std::string& key) const;

  bool has(const std::string& key) const;
  std::optional<std::string> raw(const std::string& key) const;

  std::string get(const std::string& key, const std::string& fallback) const;
  long long get(const std::string& key, long long fallback) const;
  int get(const std::string& key, int fallback) const;
  double get(const std::string& key, double fallback) const;
  bool get(const std::string& key, bool fallback) const;

  /// Keys in insertion-independent (sorted) order, for printing.
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, int> lines_;
};

}  // namespace drlnoc::util
