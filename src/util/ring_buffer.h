// Flat FIFO ring buffer: the allocation-free replacement for std::deque in
// the simulator's hot paths (channel delay lines, input-VC FIFOs, NIC source
// queues, the DQN n-step window).
//
// Capacity is a power of two and grows by doubling only when a push finds
// the ring full, so a buffer whose occupancy is bounded (credit-protocol
// FIFOs, fixed-latency channels) performs zero heap allocations in steady
// state. Popped slots keep their element constructed; a later push
// copy-assigns into the slot, which lets element types that own heap memory
// (e.g. rl::Transition's state vectors) reuse their capacity.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace drlnoc::util {

template <typename T>
class RingBuffer {
 public:
  /// `capacity_hint` pre-sizes the ring (rounded up to a power of two) so
  /// bounded-occupancy buffers never grow after construction.
  explicit RingBuffer(std::size_t capacity_hint = 0) {
    if (capacity_hint > 0) reserve(capacity_hint);
  }

  void reserve(std::size_t n) {
    if (n > slots_.size()) grow_to(std::bit_ceil(n));
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return slots_.size(); }

  T& front() {
    assert(count_ > 0);
    return slots_[head_];
  }
  const T& front() const {
    assert(count_ > 0);
    return slots_[head_];
  }
  T& back() {
    assert(count_ > 0);
    return slots_[(head_ + count_ - 1) & mask_];
  }
  const T& back() const {
    assert(count_ > 0);
    return slots_[(head_ + count_ - 1) & mask_];
  }

  /// i-th element from the front (0 == front()).
  T& operator[](std::size_t i) {
    assert(i < count_);
    return slots_[(head_ + i) & mask_];
  }
  const T& operator[](std::size_t i) const {
    assert(i < count_);
    return slots_[(head_ + i) & mask_];
  }

  void push_back(const T& value) { push_back_slot() = value; }
  void push_back(T&& value) { push_back_slot() = std::move(value); }

  /// Appends a slot and returns it for in-place filling (single-copy
  /// receive paths). The slot holds a stale element the caller must
  /// overwrite.
  T& push_back_slot() {
    if (count_ == slots_.size()) {
      grow_to(slots_.empty() ? 8 : 2 * slots_.size());
    }
    T& slot = slots_[(head_ + count_) & mask_];
    ++count_;
    return slot;
  }

  void pop_front() {
    assert(count_ > 0);
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  /// Drops all elements; capacity (and slot-owned heap memory) is retained.
  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  void grow_to(std::size_t cap) {
    assert(std::has_single_bit(cap) && cap > slots_.size());
    std::vector<T> bigger(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_ = std::move(bigger);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;  ///< capacity - 1 (capacity is a power of two)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace drlnoc::util
