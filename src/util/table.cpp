#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace drlnoc::util {

std::string fmt(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  return cell(fmt(value, precision));
}

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << text;
    }
    os << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace drlnoc::util
