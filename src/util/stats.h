// Statistics primitives used by the simulator and the benchmark harnesses:
// running accumulators, exponentially-weighted moving averages, and
// fixed-bucket histograms with percentile queries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace drlnoc::util {

/// Running mean / variance / min / max with Welford's algorithm.
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);
  void reset();

  std::size_t count() const { return n_; }
  double sum() const { return mean_ * static_cast<double>(n_); }
  double mean() const;           ///< 0 when empty.
  double variance() const;       ///< population variance; 0 when n < 2.
  double stddev() const;
  double min() const;            ///< +inf when empty.
  double max() const;            ///< -inf when empty.

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially weighted moving average, alpha in (0, 1].
/// The first sample initialises the average directly.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.1);

  void add(double x);
  void reset();
  bool empty() const { return !initialized_; }
  /// Current average; `fallback` when no samples seen yet.
  double value(double fallback = 0.0) const;

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Histogram over [0, limit) with uniform buckets plus an overflow bucket.
/// Percentiles are linearly interpolated within buckets.
class Histogram {
 public:
  Histogram(double limit, std::size_t buckets);

  void add(double x);
  void reset();

  std::size_t count() const { return total_; }
  double mean() const;
  /// q in [0, 1]; returns 0 when empty. Overflow bucket reports `limit`.
  double percentile(double q) const;
  const std::vector<std::uint64_t>& buckets() const { return counts_; }
  std::uint64_t overflow() const { return overflow_; }

 private:
  double limit_;
  double bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::size_t total_ = 0;
  double sum_ = 0.0;
};

/// Simple named-series container used to dump benchmark data as CSV.
struct Series {
  std::string name;
  std::vector<double> values;
};

}  // namespace drlnoc::util
