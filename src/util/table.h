// Fixed-width console tables and CSV emission for the benchmark harnesses.
// Every bench binary prints its paper table/figure through this formatter so
// the output stays uniform and machine-greppable.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace drlnoc::util {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  Table& cell(long long value);
  Table& cell(int value) { return cell(static_cast<long long>(value)); }
  Table& cell(std::size_t value) {
    return cell(static_cast<long long>(value));
  }

  /// Renders with column padding and a header underline.
  void print(std::ostream& os) const;
  /// Renders as CSV (headers + rows).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared with log lines).
std::string fmt(double value, int precision = 3);

}  // namespace drlnoc::util
