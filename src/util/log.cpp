#include "util/log.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>

namespace drlnoc::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

std::optional<LogLevel> parse_log_level(const std::string& text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

bool init_log(const std::string& override_level) {
  bool ok = true;
  if (const char* env = std::getenv("DRLNOC_LOG"); env != nullptr && *env) {
    if (const auto level = parse_log_level(env)) {
      set_log_level(*level);
    } else {
      log_line(LogLevel::kWarn,
               std::string("unknown DRLNOC_LOG level '") + env +
                   "' (want debug|info|warn|error|off)");
      ok = false;
    }
  }
  if (!override_level.empty()) {
    if (const auto level = parse_log_level(override_level)) {
      set_log_level(*level);
    } else {
      log_line(LogLevel::kWarn, "unknown log level '" + override_level +
                                    "' (want debug|info|warn|error|off)");
      ok = false;
    }
  }
  return ok;
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed))
    return;
  std::ostream& os =
      level >= LogLevel::kWarn ? std::cerr : std::cout;
  os << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace drlnoc::util
