#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace drlnoc::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed with splitmix64 as recommended by the xoshiro authors;
  // guarantees the all-zero state cannot occur.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lowbits = static_cast<std::uint64_t>(m);
  if (lowbits < n) {
    std::uint64_t threshold = (0 - n) % n;
    while (lowbits < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lowbits = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::size_t Rng::weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::weighted: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument("Rng::weighted: all weights are zero");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: last positive weight wins
}

Rng Rng::fork() { return Rng((*this)()); }

}  // namespace drlnoc::util
