#include "util/thread_pool.h"

#include <atomic>
#include <utility>

namespace drlnoc::util {

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

int ThreadPool::resolve_jobs(int n) {
  if (n > 0) return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void parallel_for(int n, int jobs, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  jobs = ThreadPool::resolve_jobs(jobs);
  if (jobs > n) jobs = n;
  if (jobs <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  // One shared index counter; workers pull the next undone index. Assignment
  // of indices to threads varies run to run, but results are stored by index
  // so the caller never observes the difference. Once any index throws, the
  // remaining indices are abandoned (tasks can be minutes-long simulations;
  // the caller should see the failure now, not after the full sweep).
  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  ThreadPool pool(jobs);
  for (int w = 0; w < jobs; ++w) {
    pool.submit([&] {
      for (int i = next.fetch_add(1); i < n && !failed.load();
           i = next.fetch_add(1)) {
        try {
          fn(i);
        } catch (...) {
          failed.store(true);
          throw;
        }
      }
    });
  }
  pool.wait();
}

}  // namespace drlnoc::util
