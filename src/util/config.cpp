#include "util/config.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace drlnoc::util {

namespace {
std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}
}  // namespace

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    // Flag spelling: "--key=value" or "--key value" normalize to "key=value".
    const bool dashed = token.rfind("--", 0) == 0;
    if (dashed) token.erase(0, 2);
    const auto eq = token.find('=');
    if (eq != std::string::npos && eq != 0) {
      cfg.set(token.substr(0, eq), token.substr(eq + 1));
      continue;
    }
    if (dashed && !token.empty() && eq == std::string::npos && i + 1 < argc) {
      // Consume the next token as this flag's value unless it is itself a
      // flag. Values may contain '=' (e.g. `--workload trace=app.drltrc`).
      const std::string next = argv[i + 1];
      if (next.rfind("--", 0) != 0) {
        cfg.set(token, argv[++i]);
        continue;
      }
    }
    throw std::invalid_argument("expected key=value, got: " +
                                std::string(argv[i]));
  }
  return cfg;
}

Config Config::from_text(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("bad config line: " + line);
    }
    cfg.set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

void Config::set_line(const std::string& key, int line) {
  lines_[key] = line;
}

int Config::line_of(const std::string& key) const {
  auto it = lines_.find(key);
  return it == lines_.end() ? 0 : it->second;
}

std::string Config::location_suffix(const std::string& key) const {
  const int line = line_of(key);
  return line > 0 ? " (line " + std::to_string(line) + ")" : std::string();
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Config::raw(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get(const std::string& key,
                        const std::string& fallback) const {
  auto v = raw(key);
  return v ? *v : fallback;
}

long long Config::get(const std::string& key, long long fallback) const {
  auto v = raw(key);
  if (!v) return fallback;
  // Strict full-string parse: unlike std::stoll, trailing garbage
  // ("8x", "1.5") and out-of-range magnitudes are hard errors, so a typo
  // in a flag or config file can't silently truncate to a valid number.
  const std::string& s = *v;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  if (first != last && *first == '+') ++first;  // from_chars rejects '+'
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range) {
    throw std::invalid_argument("bad integer for " + key +
                                location_suffix(key) + ": " + s +
                                " (out of range)");
  }
  if (ec != std::errc() || first == last) {
    throw std::invalid_argument("bad integer for " + key +
                                location_suffix(key) + ": " + s);
  }
  if (ptr != last) {
    throw std::invalid_argument("bad integer for " + key +
                                location_suffix(key) + ": " + s +
                                " (trailing characters)");
  }
  return value;
}

int Config::get(const std::string& key, int fallback) const {
  const long long wide = get(key, static_cast<long long>(fallback));
  if (wide < std::numeric_limits<int>::min() ||
      wide > std::numeric_limits<int>::max()) {
    throw std::invalid_argument("bad integer for " + key +
                                location_suffix(key) + ": " + *raw(key) +
                                " (out of range)");
  }
  return static_cast<int>(wide);
}

double Config::get(const std::string& key, double fallback) const {
  auto v = raw(key);
  if (!v) return fallback;
  // Strict full-string parse; "inf" stays accepted (open-ended tenant stop
  // times serialize as inf) but NaN never names a meaningful knob value.
  const std::string& s = *v;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  if (first != last && *first == '+') ++first;  // from_chars rejects '+'
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range) {
    throw std::invalid_argument("bad number for " + key +
                                location_suffix(key) + ": " + s +
                                " (out of range)");
  }
  if (ec != std::errc() || first == last) {
    throw std::invalid_argument("bad number for " + key +
                                location_suffix(key) + ": " + s);
  }
  if (ptr != last) {
    throw std::invalid_argument("bad number for " + key +
                                location_suffix(key) + ": " + s +
                                " (trailing characters)");
  }
  if (std::isnan(value)) {
    throw std::invalid_argument("bad number for " + key +
                                location_suffix(key) + ": " + s +
                                " (NaN is never a valid knob value)");
  }
  return value;
}

bool Config::get(const std::string& key, bool fallback) const {
  auto v = raw(key);
  if (!v) return fallback;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  throw std::invalid_argument("bad boolean for " + key +
                              location_suffix(key) + ": " + *v);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace drlnoc::util
