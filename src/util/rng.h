// Deterministic, seedable pseudo-random number generation.
//
// The whole repository routes randomness through util::Rng so that a single
// 64-bit seed reproduces an entire simulation + training run bit-for-bit
// (DESIGN.md invariant 9). The generator is xoshiro256**, seeded via
// splitmix64; both are public-domain algorithms by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace drlnoc::util {

/// splitmix64 step; used to expand a single seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator with convenience sampling helpers.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Raw 64 random bits.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Standard normal via Box-Muller (cached second sample).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Sample an index proportional to the (non-negative) weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Deterministically derive an independent child stream (e.g. one per
  /// router) from this generator's seed lineage.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace drlnoc::util
