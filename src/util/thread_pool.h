// Fixed-size thread pool for fanning independent experiment tasks across
// hardware threads. Deliberately work-stealing-free: tasks are pulled from a
// single FIFO queue, and every task is addressed by its index, so results are
// written to pre-sized slots and parallel output is bit-identical to serial
// regardless of scheduling order or thread count (DESIGN.md invariant 9
// extended to the experiment layer).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace drlnoc::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; values < 1 are clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not touch shared mutable state unless they
  /// synchronize it themselves.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw, the
  /// first exception (in task-submission order as observed) is rethrown here
  /// and the rest are dropped.
  void wait();

  /// Resolves a jobs request: n > 0 is taken literally, n <= 0 means "one
  /// per hardware thread" (at least 1).
  static int resolve_jobs(int n);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< signals workers: work or shutdown
  std::condition_variable done_cv_;   ///< signals wait(): all tasks finished
  std::size_t in_flight_ = 0;         ///< queued + currently running tasks
  std::exception_ptr first_error_;
  bool stop_ = false;
};

/// Runs fn(0) .. fn(n-1) across `jobs` threads and blocks until all finish.
/// jobs <= 1 (after resolve) runs inline on the caller's thread with no pool.
/// The first exception thrown by any invocation propagates to the caller.
/// Because each index is independent and the caller indexes its own output
/// slots, the observable result is identical for every thread count.
void parallel_for(int n, int jobs, const std::function<void(int)>& fn);

/// Maps fn over [0, n) into an order-preserving vector, in parallel.
template <typename R>
std::vector<R> parallel_map(int n, int jobs, const std::function<R(int)>& fn) {
  std::vector<R> out(static_cast<std::size_t>(n < 0 ? 0 : n));
  parallel_for(n, jobs,
               [&](int i) { out[static_cast<std::size_t>(i)] = fn(i); });
  return out;
}

}  // namespace drlnoc::util
