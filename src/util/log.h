// Tiny leveled logger. The simulator is hot-loop code, so logging is opt-in
// and entirely skipped below the active level.
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace drlnoc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; default kWarn so tests/benches stay quiet.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug" | "info" | "warn" | "error" | "off" (case-insensitive);
/// nullopt on anything else.
std::optional<LogLevel> parse_log_level(const std::string& text);

/// Tool-entry log setup: applies the DRLNOC_LOG environment variable when
/// set, then `override_level` (typically a --log=LEVEL flag) when non-empty.
/// Returns false — after warning — when either names an unknown level.
bool init_log(const std::string& override_level = "");

void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define DRLNOC_LOG(level)                                   \
  if (static_cast<int>(level) <                             \
      static_cast<int>(::drlnoc::util::log_level())) {      \
  } else                                                    \
    ::drlnoc::util::detail::LogStream(level)

#define LOG_DEBUG DRLNOC_LOG(::drlnoc::util::LogLevel::kDebug)
#define LOG_INFO DRLNOC_LOG(::drlnoc::util::LogLevel::kInfo)
#define LOG_WARN DRLNOC_LOG(::drlnoc::util::LogLevel::kWarn)
#define LOG_ERROR DRLNOC_LOG(::drlnoc::util::LogLevel::kError)

}  // namespace drlnoc::util
