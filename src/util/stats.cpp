#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace drlnoc::util {

void Accumulator::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Accumulator::reset() { *this = Accumulator{}; }

double Accumulator::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const { return min_; }
double Accumulator::max() const { return max_; }

Ewma::Ewma(double alpha) : alpha_(alpha) {
  assert(alpha > 0.0 && alpha <= 1.0);
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ += alpha_ * (x - value_);
  }
}

void Ewma::reset() {
  value_ = 0.0;
  initialized_ = false;
}

double Ewma::value(double fallback) const {
  return initialized_ ? value_ : fallback;
}

Histogram::Histogram(double limit, std::size_t buckets)
    : limit_(limit), bucket_width_(limit / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(limit > 0.0 && buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  sum_ += x;
  if (x < 0.0) x = 0.0;
  if (x >= limit_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>(x / bucket_width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  overflow_ = 0;
  total_ = 0;
  sum_ = 0.0;
}

double Histogram::mean() const {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

double Histogram::percentile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double running = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = running + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac =
          (target - running) / static_cast<double>(counts_[i]);
      return (static_cast<double>(i) + std::clamp(frac, 0.0, 1.0)) *
             bucket_width_;
    }
    running = next;
  }
  return limit_;  // target falls in the overflow bucket
}

}  // namespace drlnoc::util
