// CompositeWorkload: a TrafficInjector that deterministically merges N
// per-tenant child injectors onto one fabric. Each tenant owns a child
// injector, a node binding, and an activity window; the composite translates
// the network's global (node, time) view into each child's local view and
// back, tags every generated packet with its tenant id (tenant_for), and
// routes delivery notifications to the owning child so dependency-gated
// trace tenants keep their congestion feedback.
//
// Determinism contract: per node and per core tick tenants are polled in
// ascending tenant-id order and the first accepting tenant wins the slot;
// losing tenants are simply not polled that tick, so their state (including
// any RNG draws) is untouched. A single-tenant composite with the identity
// binding forwards every call unchanged and is bit-identical to driving the
// child injector directly.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "noc/network.h"
#include "trace/trace_workload.h"

namespace drlnoc::scenario {

/// One tenant mounted into a CompositeWorkload.
struct TenantBinding {
  std::string name = "tenant";
  std::unique_ptr<noc::TrafficInjector> injector;
  /// Node binding. Empty = the whole fabric, no remapping. Non-empty with
  /// `remap` set = the child addresses local ids 0..nodes.size()-1 placed on
  /// these global ids (trace placement). Non-empty without `remap` = the
  /// child sees global ids but only these nodes act as sources (synthetic
  /// source restriction).
  std::vector<noc::NodeId> nodes;
  bool remap = false;
  /// Activity window in global core time; the child observes a local clock
  /// that starts at 0 at `start`.
  double start = 0.0;
  double stop = std::numeric_limits<double>::infinity();
  /// Set when `injector` is a TraceWorkload: enables completion tracking
  /// (quiescent()) without the composite probing types.
  const trace::TraceWorkload* trace = nullptr;
};

class CompositeWorkload : public noc::TrafficInjector {
 public:
  /// `num_nodes` is the fabric size; bindings keep their index as tenant id.
  CompositeWorkload(int num_nodes, std::vector<TenantBinding> bindings);

  noc::NodeId generate(noc::NodeId src, double core_time,
                       util::Rng& rng) override;
  int packet_length_for(noc::NodeId src, double core_time) const override;
  int tenant_for(noc::NodeId src, double core_time) const override;
  void on_packet_injected(noc::NodeId src, std::uint64_t packet_id,
                          double core_time) override;
  void on_packet_delivered(const noc::PacketRecord& rec) override;
  std::string name() const override;

  /// Caps every tenant's window at `horizon` (global core time); used by
  /// duration-bounded scenario runs so injection stops at the horizon.
  void set_horizon(double horizon) { horizon_ = horizon; }
  double horizon() const { return horizon_; }

  /// True when no tenant will ever inject again at or after `core_time`:
  /// trace tenants have delivered every record (a looping trace never
  /// finishes) and windowed tenants have passed min(stop, horizon).
  bool quiescent(double core_time) const;

  int num_tenants() const { return static_cast<int>(tenants_.size()); }
  const TenantBinding& tenant(int id) const {
    return tenants_[static_cast<std::size_t>(id)];
  }
  /// Packets injected so far on behalf of tenant `id`.
  std::uint64_t emitted(int id) const {
    return emitted_[static_cast<std::size_t>(id)];
  }
  /// Packets delivered so far to tenant `id`.
  std::uint64_t delivered(int id) const {
    return delivered_[static_cast<std::size_t>(id)];
  }

 private:
  bool window_active(const TenantBinding& b, double t) const {
    return t >= b.start && t < b.stop && t < horizon_;
  }

  std::vector<TenantBinding> tenants_;
  /// Per global node: tenant ids that may source there, ascending.
  std::vector<std::vector<int>> sources_;
  /// Per tenant: global node id -> local id (kInvalidNode when not bound);
  /// empty for tenants that do not remap.
  std::vector<std::vector<noc::NodeId>> local_of_;
  std::vector<std::uint64_t> emitted_;
  std::vector<std::uint64_t> delivered_;
  /// Live packet -> owning tenant, for delivery routing.
  std::unordered_map<std::uint64_t, int> live_;
  /// generate() -> packet_length_for()/tenant_for() -> on_packet_injected()
  /// handshake scratch.
  int pending_tenant_ = -1;
  double horizon_ = std::numeric_limits<double>::infinity();
};

}  // namespace drlnoc::scenario
