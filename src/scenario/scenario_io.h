// Versioned `.drlsc` scenario description format: a text file whose first
// non-comment line is the magic `drlsc 1`, followed by Config-style
// `key = value` lines ('#' starts a comment). One file captures a whole
// multi-tenant experiment — topology, tenants, workloads, run horizon — so
// experiments are reproducible from a single artifact.
//
//   drlsc 1
//   name = dnn_plus_background
//   topology = mesh          # mesh | torus | ring
//   width = 8
//   height = 8
//   seed = 42
//   duration = 0             # core cycles; 0 = run until tenants finish
//
//   tenants = 2
//   tenant0.name = dnn
//   tenant0.workload = trace # trace | steady | phased
//   tenant0.trace = dnn.drltrc   # path relative to the scenario file
//   tenant0.rate_scale = 1.0
//   tenant0.nodes = 0-15     # node set: "all", ids, inclusive ranges
//   tenant0.qos = latency_critical   # latency_critical|best_effort|background
//   tenant0.p95_target = 350         # p95 SLO, core cycles (critical only)
//   tenant1.name = background
//   tenant1.workload = steady
//   tenant1.pattern = uniform
//   tenant1.rate = 0.04
//   tenant1.start = 500      # activity window [start, stop) in core cycles
//   tenant1.stop = 30000
//   tenant1.qos = background
//
//   [controller]             # optional: controller schedule for `run`
//   type = drl               # drl | heuristic | static-max | static-min
//   policy = mix.policy      # drl only: DqnAgent::save output, relative path
//   epoch_cycles = 512       # router cycles between controller decisions
//   epochs = 48              # decision epochs per scheduled run
//
//   [churn]                  # optional: seeded tenant arrival/departure
//   seed = 11                # dedicated churn stream (splitmix64)
//   arrival_rate = 0.0002    # Poisson arrivals per core cycle
//   capacity = 3             # FIFO admission cap; 0 = unlimited
//   templates = 1
//   template0.tenant = 1     # arrivals clone this declared tenant
//   template0.lifetime = exponential   # exponential | fixed | uniform
//   template0.lifetime_mean = 8000
//
// Unknown keys and duplicate/unknown `[...]` sections are rejected (typo
// safety), with parse errors citing the offending line number; referenced
// traces and policies are loaded eagerly so a parsed Scenario is
// self-contained. A `[churn]` block is expanded into concrete windowed
// tenants at load time (see scenario/churn.h); the writer emits only the
// declared tenants plus the block, and re-reading re-expands identically.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "scenario/scenario.h"

namespace drlnoc::scenario {

inline constexpr int kScenarioFormatVersion = 1;
inline constexpr char kScenarioExtension[] = ".drlsc";

class ScenarioReader {
 public:
  /// Parses scenario text; trace paths resolve relative to `base_dir`
  /// (empty = the working directory). Throws std::runtime_error on
  /// missing/wrong magic and std::invalid_argument on bad keys or values;
  /// the returned scenario is validated.
  static Scenario read_text(const std::string& text,
                            const std::string& base_dir = "");
  /// Like read_text, but applies `overrides` (flattened key -> value, e.g.
  /// "tenant0.rate" or "churn.capacity") on top of the file's keys before
  /// parsing — the mechanism `.drlfs` scenario spaces use to sweep axes.
  /// Override keys that nothing consumes are rejected like typos.
  static Scenario read_text(const std::string& text,
                            const std::string& base_dir,
                            const std::map<std::string, std::string>& overrides);
  /// Reads and parses `path`; trace paths resolve relative to its directory.
  static Scenario read_file(const std::string& path);
};

class ScenarioWriter {
 public:
  /// Emits the canonical `.drlsc` text. Trace tenants must carry a
  /// `trace_file` (in-memory-only traces cannot be serialised by reference).
  static void write_text(std::ostream& os, const Scenario& scenario);
  static void write_file(const std::string& path, const Scenario& scenario);
};

}  // namespace drlnoc::scenario
