#include "scenario/churn.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "scenario/scenario.h"
#include "util/rng.h"

namespace drlnoc::scenario {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("churn: " + what);
}

/// Uniform double in [0, 1) from the dedicated splitmix64 stream — the same
/// 53-bit construction util::Rng uses, but fed directly from splitmix64 so
/// churn never instantiates (or perturbs) a traffic generator.
double u01(std::uint64_t& state) {
  return static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
}

double resolve_horizon(const ChurnParams& churn, double scenario_duration) {
  return churn.horizon > 0.0 ? churn.horizon : scenario_duration;
}

double draw_lifetime(const ChurnTemplate& t, std::uint64_t& state) {
  if (t.lifetime == "fixed") return t.lifetime_mean;
  if (t.lifetime == "uniform") {
    return t.lifetime_min + u01(state) * (t.lifetime_max - t.lifetime_min);
  }
  // exponential; 1 - u > 0 because u < 1, so log() stays finite.
  return -t.lifetime_mean * std::log(1.0 - u01(state));
}

}  // namespace

void ChurnParams::validate(std::size_t declared_tenants,
                           double scenario_duration) const {
  if (!std::isfinite(arrival_rate) || arrival_rate < 0.0) {
    fail("arrival_rate must be finite and >= 0");
  }
  if (!enabled()) {
    if (!templates.empty()) {
      fail("templates declared without an arrival_rate > 0");
    }
    return;
  }
  if (!std::isfinite(horizon) || horizon < 0.0) {
    fail("horizon must be finite and >= 0");
  }
  const double h = resolve_horizon(*this, scenario_duration);
  if (!(h > 0.0) || !std::isfinite(h)) {
    fail("churn needs a finite arrival window: set churn.horizon or give "
         "the scenario a finite duration");
  }
  if (capacity < 0) fail("capacity must be >= 0");
  if (max_arrivals < 1) fail("max_arrivals must be >= 1");
  if (templates.empty()) {
    fail("at least one template is required (templates = N + "
         "templateN.tenant = ...)");
  }
  for (std::size_t i = 0; i < templates.size(); ++i) {
    const ChurnTemplate& t = templates[i];
    const std::string who = "template " + std::to_string(i) + ": ";
    if (t.tenant < 0 ||
        static_cast<std::size_t>(t.tenant) >= declared_tenants) {
      fail(who + "tenant " + std::to_string(t.tenant) +
           " out of range (scenario declares " +
           std::to_string(declared_tenants) + " tenants)");
    }
    if (!(t.weight > 0.0) || !std::isfinite(t.weight)) {
      fail(who + "weight must be finite and > 0");
    }
    if (t.lifetime == "exponential" || t.lifetime == "fixed") {
      if (!(t.lifetime_mean > 0.0) || !std::isfinite(t.lifetime_mean)) {
        fail(who + "lifetime_mean must be finite and > 0 for " + t.lifetime +
             " lifetimes");
      }
    } else if (t.lifetime == "uniform") {
      if (!(t.lifetime_min > 0.0) || !std::isfinite(t.lifetime_max) ||
          t.lifetime_max < t.lifetime_min) {
        fail(who + "uniform lifetimes need 0 < lifetime_min <= lifetime_max");
      }
    } else {
      fail(who + "lifetime must be exponential|fixed|uniform, got '" +
           t.lifetime + "'");
    }
  }
}

std::vector<ChurnInstance> expand_churn_windows(const ChurnParams& churn,
                                                double scenario_duration) {
  std::vector<ChurnInstance> out;
  if (!churn.enabled()) return out;
  const double horizon = resolve_horizon(churn, scenario_duration);

  double total_weight = 0.0;
  for (const ChurnTemplate& t : churn.templates) total_weight += t.weight;

  // Arrival generation draws template + lifetime immediately, so the stream
  // consumed per arrival is fixed: changing capacity (or dropping queued-
  // past-horizon instances) never shifts later arrivals' draws.
  std::uint64_t state = churn.seed;
  double t = 0.0;
  std::vector<ChurnInstance> arrivals;
  std::vector<double> lifetimes;
  while (static_cast<int>(arrivals.size()) < churn.max_arrivals) {
    t += -std::log(1.0 - u01(state)) / churn.arrival_rate;
    if (!(t < horizon)) break;
    // Weighted template pick: walk the cumulative weights.
    double r = u01(state) * total_weight;
    std::size_t pick = 0;
    for (; pick + 1 < churn.templates.size(); ++pick) {
      r -= churn.templates[pick].weight;
      if (r < 0.0) break;
    }
    ChurnInstance inst;
    inst.template_index = static_cast<int>(pick);
    inst.arrival = t;
    arrivals.push_back(inst);
    lifetimes.push_back(draw_lifetime(churn.templates[pick], state));
  }

  // FIFO admission under the capacity cap: an arrival that finds `capacity`
  // instances active starts when the earliest departs (min-heap of stop
  // times). capacity 0 = unlimited.
  std::priority_queue<double, std::vector<double>, std::greater<>> active;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    ChurnInstance inst = arrivals[i];
    double start = inst.arrival;
    bool queued = false;
    if (churn.capacity > 0) {
      while (!active.empty() && active.top() <= inst.arrival) active.pop();
      if (static_cast<int>(active.size()) >= churn.capacity) {
        start = std::max(start, active.top());
        queued = true;
      }
    }
    // Dropped instances must not consume the slot they were waiting for —
    // the occupant departs at active.top(), not at the drop — so the heap
    // is only updated once the instance is actually admitted.
    if (!(start < horizon)) continue;  // queued past the churn window
    inst.start = start;
    inst.stop = start + lifetimes[i];
    if (churn.capacity > 0) {
      if (queued) active.pop();
      active.push(inst.stop);
    }
    out.push_back(inst);
  }
  return out;
}

void expand_churn(Scenario& scenario) {
  // Idempotent: drop any previously expanded instances first, so repeated
  // loads (or re-expansion after editing churn params in code) never stack.
  auto& tenants = scenario.tenants;
  tenants.erase(std::remove_if(tenants.begin(), tenants.end(),
                               [](const TenantSpec& t) { return t.churned; }),
                tenants.end());
  if (!scenario.churn.enabled()) return;
  scenario.churn.validate(tenants.size(), scenario.duration);

  const std::vector<ChurnInstance> instances =
      expand_churn_windows(scenario.churn, scenario.duration);
  const std::size_t declared = tenants.size();
  tenants.reserve(declared + instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const ChurnInstance& inst = instances[i];
    const ChurnTemplate& tmpl =
        scenario.churn.templates[static_cast<std::size_t>(
            inst.template_index)];
    TenantSpec clone = tenants[static_cast<std::size_t>(tmpl.tenant)];
    // '@' rather than '#': instance names flow into Config-style artifacts
    // (fleet result files) where '#' would start a comment.
    clone.name += "@" + std::to_string(i);
    clone.start = inst.start;
    clone.stop = inst.stop;
    clone.churned = true;
    tenants.push_back(std::move(clone));
  }
}

}  // namespace drlnoc::scenario
